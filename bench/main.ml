(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (DESIGN.md experiment index EXP-F4 .. EXP-H), then
   runs Bechamel micro-benchmarks of the framework's hot kernels (PERF).

   Run: dune exec bench/main.exe
   Fast mode (CI-sized sample counts): dune exec bench/main.exe -- --fast *)

let ppf = Format.std_formatter

let section title =
  Format.fprintf ppf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let () =
  let fast = Array.exists (fun a -> a = "--fast") Sys.argv in
  let scale n = if fast then max 200 (n / 10) else n in
  let t0 = Unix.gettimeofday () in
  section "Setup: processor build + system pre-characterization";
  let ctx = Fmc.Experiments.context () in
  let circuit = Fmc.Experiments.circuit ctx in
  Format.fprintf ppf "%a@." Fmc_netlist.Netlist.pp_summary circuit.Fmc_cpu.Circuit.net;
  Format.fprintf ppf "pre-characterization done in %.1fs@." (Unix.gettimeofday () -. t0);

  section "EXP-F4 (Fig 4): register characterization parameters";
  Format.fprintf ppf "%a@." Fmc.Report.fig4 (Fmc.Experiments.fig4 ctx);

  section "EXP-F7 (Fig 7): gate-level bit-error patterns";
  Format.fprintf ppf "%a@." Fmc.Report.fig7 (Fmc.Experiments.fig7 ~strikes:(scale 3000) ctx);

  section "EXP-F8 (Fig 8): importance-sampling distribution and sample space";
  Format.fprintf ppf "%a@." Fmc.Report.fig8 (Fmc.Experiments.fig8 ctx);

  section "EXP-F9 (Fig 9): convergence of sampling strategies";
  Format.fprintf ppf "%a@." Fmc.Report.fig9 (Fmc.Experiments.fig9 ~samples:(scale 10_000) ctx);

  section "EXP-F9b: all three security policies (mixed strategy)";
  List.iter
    (fun (benchmark : Fmc_isa.Programs.t) ->
      let engine = Fmc.Experiments.engine_for ctx benchmark in
      let prep =
        Fmc.Sampler.prepare
          ~static_vuln:(Fmc.Engine.static_vulnerable engine)
          Fmc.Sampler.default_mixed
          (Fmc.Experiments.default_attack ctx)
          (Fmc.Experiments.precharac ctx)
          ~placement:(Fmc.Engine.placement engine)
      in
      let r = Fmc.Ssf.estimate engine prep ~samples:(scale 6000) ~seed:7 in
      let top =
        match r.Fmc.Ssf.contributions with
        | ((g, b), _) :: _ -> Printf.sprintf "%s[%d]" g b
        | [] -> "-"
      in
      Format.fprintf ppf "  %-14s SSF %.4f  var %.3e  successes %4d  top causal bit %s@."
        benchmark.Fmc_isa.Programs.name r.Fmc.Ssf.ssf r.Fmc.Ssf.variance r.Fmc.Ssf.successes top)
    [ Fmc_isa.Programs.illegal_write; Fmc_isa.Programs.illegal_read; Fmc_isa.Programs.illegal_exec ];

  section "EXP-F10 (Fig 10): combinational vs sequential strikes";
  Format.fprintf ppf "%a@." Fmc.Report.fig10 (Fmc.Experiments.fig10 ~samples:(scale 8000) ctx);

  section "EXP-F11 (Fig 11): impact of temporal and spatial accuracy";
  Format.fprintf ppf "%a@." Fmc.Report.fig11 (Fmc.Experiments.fig11 ~samples:(scale 4000) ctx);

  section "EXP-H: critical registers and hardening trade-off";
  Format.fprintf ppf "%a@." Fmc.Report.headline (Fmc.Experiments.headline ~samples:(scale 10_000) ctx);

  section "EXP-ABL: ablations of the framework's design choices";
  let abl_engine = Fmc.Experiments.engine_for ctx Fmc_isa.Programs.illegal_write in
  let abl_placement = Fmc.Engine.placement abl_engine in
  let abl_attack = Fmc.Experiments.default_attack ctx in
  let abl_pre = Fmc.Experiments.precharac ctx in
  let abl_sv = Fmc.Engine.static_vulnerable abl_engine in
  let abl_n = scale 6000 in
  let run_strategy strat =
    let prep = Fmc.Sampler.prepare ~static_vuln:abl_sv strat abl_attack abl_pre ~placement:abl_placement in
    Fmc.Ssf.estimate ~causal:false abl_engine prep ~samples:abl_n ~seed:7
  in
  Format.fprintf ppf "-- correlation bonus alpha (Mixed, %d samples) --@." abl_n;
  List.iter
    (fun alpha ->
      let r = run_strategy (Fmc.Sampler.Mixed { alpha; beta = 1.; dead_weight = 0.1; v_allocation = 0.5 }) in
      Format.fprintf ppf "  alpha=%5.1f : SSF %.4f  var %.3e@." alpha r.Fmc.Ssf.ssf r.Fmc.Ssf.variance)
    [ 0.; 8.; 30. ];
  Format.fprintf ppf "-- vulnerable-stratum allocation (Mixed) --@.";
  List.iter
    (fun va ->
      let r = run_strategy (Fmc.Sampler.Mixed { alpha = 8.; beta = 1.; dead_weight = 0.1; v_allocation = va }) in
      Format.fprintf ppf "  v_alloc=%.2f : SSF %.4f  var %.3e@." va r.Fmc.Ssf.ssf r.Fmc.Ssf.variance)
    [ 0.25; 0.5; 0.75 ];
  Format.fprintf ppf "-- lifetime gate beta / dead-cell down-weighting (Importance) --@.";
  List.iter
    (fun (beta, dw) ->
      let r =
        run_strategy (Fmc.Sampler.Importance { alpha = 8.; beta; dead_weight = dw; gamma = 60. })
      in
      Format.fprintf ppf "  beta=%.1f dead_weight=%.2f : SSF %.4f  var %.3e@." beta dw r.Fmc.Ssf.ssf
        r.Fmc.Ssf.variance)
    [ (1., 1.); (1., 0.1); (2., 0.1) ];
  Format.fprintf ppf "-- static-vulnerability prior gamma (Importance) --@.";
  List.iter
    (fun gamma ->
      let r =
        run_strategy (Fmc.Sampler.Importance { alpha = 8.; beta = 1.; dead_weight = 0.1; gamma })
      in
      Format.fprintf ppf "  gamma=%5.1f : SSF %.4f  var %.3e@." gamma r.Fmc.Ssf.ssf r.Fmc.Ssf.variance)
    [ 0.; 60.; 300. ];

  Format.fprintf ppf "-- multi-cycle impact window (Random, %d samples) --@." abl_n;
  List.iter
    (fun k ->
      let prep =
        Fmc.Sampler.prepare ~static_vuln:abl_sv Fmc.Sampler.Random abl_attack abl_pre
          ~placement:abl_placement
      in
      let r = Fmc.Ssf.estimate ~causal:false ~impact_cycles:k abl_engine prep ~samples:abl_n ~seed:7 in
      Format.fprintf ppf "  impact=%d cycle(s) : SSF %.4f@." k r.Fmc.Ssf.ssf)
    [ 1; 2; 4 ];

  section "EXP-GLITCH: clock-glitch technique (holistic-model extension)";
  let critical = Fmc.Engine.glitch_critical_path abl_engine in
  let tt = Fmc.Golden.target_cycle (Fmc.Engine.golden abl_engine) in
  Format.fprintf ppf "critical path: %.0f ps (nominal period %.0f ps)@." critical
    (Fmc.Engine.transient_config abl_engine).Fmc_gatesim.Transient.clock_period;
  let glitch_rng = Fmc_prelude.Rng.create 5 in
  List.iter
    (fun frac ->
      let period = frac *. critical in
      let n = scale 2000 in
      let succ = ref 0 and stale_total = ref 0 in
      for _ = 1 to n do
        let te = max 1 (tt - Fmc_prelude.Rng.int glitch_rng 50) in
        let r = Fmc.Engine.run_glitch abl_engine ~te ~period in
        if r.Fmc.Engine.g_success then incr succ;
        stale_total := !stale_total + List.length r.Fmc.Engine.g_stale
      done;
      Format.fprintf ppf "  period %4.0f%% of critical : SSF %.4f  avg stale bits %.1f@."
        (100. *. frac)
        (float_of_int !succ /. float_of_int n)
        (float_of_int !stale_total /. float_of_int n))
    [ 1.05; 0.95; 0.85; 0.7; 0.5 ];

  section "EXP-DFA: scenario 2 — key leakage from the TOYSPN crypto core";
  let ccirc = Fmc_crypto.Core_circuit.build () in
  let charness = Fmc_crypto.Harness.create ccirc in
  let ckey = 0x7E57 and cpt = 0x1234 in
  let ccorrect = Fmc_crypto.Cipher.encrypt ~key:ckey cpt in
  let cplacement = Fmc_layout.Placement.place ~seed:2 ccirc.Fmc_crypto.Core_circuit.net in
  let cconfig = Fmc_gatesim.Transient.default_config ccirc.Fmc_crypto.Core_circuit.net in
  let ccells = Fmc_layout.Placement.cells cplacement in
  let crng = Fmc_prelude.Rng.create 11 in
  let ctrials = scale 6000 in
  let cinfo = ref 0 in
  for _ = 1 to ctrials do
    let center = Fmc_prelude.Rng.choose crng ccells in
    let strikes =
      Array.to_list
        (Fmc_layout.Placement.within cplacement ~center
           ~radius:(0.8 +. Fmc_prelude.Rng.float crng 1.4))
      |> List.map (fun node ->
             {
               Fmc_gatesim.Transient.node;
               time = Fmc_prelude.Rng.float crng cconfig.Fmc_gatesim.Transient.clock_period;
               width = 100. +. Fmc_prelude.Rng.float crng 250.;
             })
    in
    let cycle = 1 + Fmc_prelude.Rng.int crng Fmc_crypto.Cipher.rounds in
    let faulty =
      Fmc_crypto.Harness.encrypt_with_strikes charness ~key:ckey ~plaintext:cpt ~cycle ~strikes
        cconfig
    in
    if Fmc_crypto.Dfa.informative ~correct:ccorrect ~faulty then incr cinfo
  done;
  Format.fprintf ppf "blind-strike leakage SSF: %.3f (%d / %d DFA-usable faulty ciphertexts)@."
    (float_of_int !cinfo /. float_of_int ctrials)
    !cinfo ctrials;
  let xr = Fmc_crypto.Core_circuit.last_round_xor_gates ccirc in
  let st = ref (Fmc_crypto.Dfa.start ~correct:ccorrect) in
  let shots = ref 0 in
  let recovered = ref None in
  while !recovered = None && !shots < 20_000 do
    incr shots;
    let node = Fmc_prelude.Rng.choose crng xr in
    let faulty =
      Fmc_crypto.Harness.encrypt_with_strikes charness ~key:ckey ~plaintext:cpt
        ~cycle:Fmc_crypto.Cipher.rounds
        ~strikes:
          [
            {
              Fmc_gatesim.Transient.node;
              time = Fmc_prelude.Rng.float crng cconfig.Fmc_gatesim.Transient.clock_period;
              width = 120. +. Fmc_prelude.Rng.float crng 200.;
            };
          ]
        cconfig
    in
    if Fmc_crypto.Dfa.informative ~correct:ccorrect ~faulty then
      st := Fmc_crypto.Dfa.observe !st ~faulty;
    recovered := Fmc_crypto.Dfa.recovered_whitening_key !st
  done;
  (match !recovered with
  | Some wk ->
      Format.fprintf ppf "targeted last-round DFA: master key recovered after %d strikes (%s)@."
        !shots
        (if Fmc_crypto.Dfa.master_key_of_whitening wk = ckey then "correct" else "WRONG")
  | None -> Format.fprintf ppf "targeted DFA did not converge in %d strikes@." !shots);

  section "PERF: Bechamel micro-benchmarks of the hot kernels";
  let open Bechamel in
  let engine = Fmc.Experiments.engine_for ctx Fmc_isa.Programs.illegal_write in
  let placement = Fmc.Engine.placement engine in
  let attack = Fmc.Experiments.default_attack ctx in
  let pre = Fmc.Experiments.precharac ctx in
  let prep =
    Fmc.Sampler.prepare
      ~static_vuln:(Fmc.Engine.static_vulnerable engine)
      Fmc.Sampler.default_mixed attack pre ~placement
  in
  let netsys = Fmc_cpu.Netsys.create circuit Fmc_isa.Programs.illegal_write in
  let tconfig = Fmc.Engine.transient_config engine in
  let rng = Fmc_prelude.Rng.create 99 in
  let cells = Fmc_layout.Placement.cells placement in
  let bv_a = Fmc_prelude.Bitvec.create 600 and bv_b = Fmc_prelude.Bitvec.create 600 in
  for i = 0 to 599 do
    if i mod 3 = 0 then Fmc_prelude.Bitvec.set bv_a i true;
    if i mod 5 = 0 then Fmc_prelude.Bitvec.set bv_b i true
  done;
  let tests =
    [
      Test.make ~name:"rtl-model-cycle"
        (Staged.stage (fun () ->
             let sys = Fmc_cpu.System.create Fmc_isa.Programs.illegal_write in
             ignore (Fmc_cpu.System.run sys ~max_cycles:200)));
      Test.make ~name:"gate-level-cycle"
        (Staged.stage (fun () -> Fmc_cpu.Netsys.step netsys));
      Test.make ~name:"transient-inject"
        (Staged.stage (fun () ->
             Fmc_gatesim.Cycle_sim.eval_comb (Fmc_cpu.Netsys.sim netsys);
             let g = Fmc_prelude.Rng.choose rng cells in
             ignore
               (Fmc_gatesim.Transient.inject (Fmc_cpu.Netsys.sim netsys) tconfig
                  ~strikes:
                    [ { Fmc_gatesim.Transient.node = g; time = 5000.; width = 150. } ])));
      Test.make ~name:"signature-correlation"
        (Staged.stage (fun () -> ignore (Fmc_prelude.Bitvec.correlation bv_a bv_b ~shift:7)));
      Test.make ~name:"sampler-draw"
        (Staged.stage (fun () -> ignore (Fmc.Sampler.draw prep rng)));
      Test.make ~name:"engine-run-sample"
        (Staged.stage (fun () ->
             let s = Fmc.Sampler.draw prep rng in
             ignore (Fmc.Engine.run_sample engine rng s)));
    ]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let quota = Time.second (if fast then 0.25 else 1.0) in
    Benchmark.all (Benchmark.cfg ~limit:2000 ~quota ()) [ clock ] test
  in
  let analyze raw =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) clock raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ time_per_run ] -> Format.fprintf ppf "  %-24s %12.1f ns/run@." name time_per_run
          | _ -> Format.fprintf ppf "  %-24s (no estimate)@." name)
        results)
    tests;
  Format.fprintf ppf "@.total bench time: %.1fs@." (Unix.gettimeofday () -. t0)
