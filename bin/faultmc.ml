(* faultmc — command-line front end of the cross-level Monte Carlo
   fault-attack evaluation framework.

   Subcommands:
     info          processor netlist and pre-characterization summary
     evaluate      estimate the System Security Factor
     characterize  per-register lifetime/contamination statistics (Fig 4)
     sweep         temporal / spatial attack-accuracy sweeps (Fig 11)
     harden        critical registers and hardening trade-off
     lint          static-analysis passes over the benchmark netlists
     sva           sound masking certificates (workload constants, observability windows)
     bench         standard benchmarks under full observability (BENCH_<rev>.json)
     serve         distributed-campaign coordinator (shard leases over TCP/Unix sockets)
     worker        distributed-campaign worker (leases shards from a coordinator or pool)
     sched         multi-campaign scheduler (durable WAL queue, crash recovery, shedding)
     submit        queue a campaign on a scheduler (and optionally wait for its report)
     status        a scheduler's queue, progress and ETAs
     cancel        cancel a queued or running campaign
     experiments   regenerate every paper figure and table *)

open Cmdliner

let ppf = Format.std_formatter

(* Shared argument definitions. *)

let samples_arg default =
  let doc = "Number of Monte Carlo fault-attack runs." in
  Arg.(value & opt int default & info [ "n"; "samples" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed (runs are fully deterministic for a fixed seed)." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

(* Name → value resolution shared by the arg parsers and the pool
   worker's spec resolver (specs carry names over the wire). *)
let benchmark_of_name = function
  | "write" | "illegal-write" -> Some Fmc_isa.Programs.illegal_write
  | "read" | "illegal-read" -> Some Fmc_isa.Programs.illegal_read
  | "exec" | "illegal-exec" -> Some Fmc_isa.Programs.illegal_exec
  | _ -> None

let strategy_of_name = function
  | "random" -> Some Fmc.Sampler.Random
  | "cone" | "fanin-cone" -> Some Fmc.Sampler.Fanin_cone
  | "importance" -> Some Fmc.Sampler.default_importance
  | "mixed" -> Some Fmc.Sampler.default_mixed
  | _ -> None

let benchmark_arg =
  let doc =
    "Benchmark program: $(b,write) (illegal memory write), $(b,read) (illegal memory read) or \
     $(b,exec) (illegal execution of privileged code)."
  in
  let parse s =
    match benchmark_of_name s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown benchmark %S (expected write|read|exec)" s))
  in
  let print fmt (p : Fmc_isa.Programs.t) = Format.fprintf fmt "%s" p.Fmc_isa.Programs.name in
  Arg.(
    value
    & opt (conv (parse, print)) Fmc_isa.Programs.illegal_write
    & info [ "b"; "benchmark" ] ~docv:"BENCH" ~doc)

let strategy_arg =
  let doc =
    "Sampling strategy: $(b,random), $(b,cone) (fan-in-cone restricted), $(b,importance), or \
     $(b,mixed) (the paper's hybrid of importance sampling and analytical evaluation)."
  in
  let parse s =
    match strategy_of_name s with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print fmt s = Format.fprintf fmt "%s" (Fmc.Sampler.strategy_name s) in
  Arg.(value & opt (conv (parse, print)) Fmc.Sampler.default_mixed & info [ "s"; "strategy" ] ~docv:"STRAT" ~doc)

(* Observability arguments, shared by evaluate and bench. *)

let metrics_out_arg =
  let doc =
    "Write the run's final metrics to $(docv): Prometheus text exposition format, or JSON when \
     $(docv) ends in $(b,.json)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Write the run's phase spans as Chrome trace_event JSON to $(docv) (loadable in Perfetto or \
     chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Convergence telemetry on stderr: $(b,jsonl) (one JSON object per trace tick), $(b,human) (a \
     status line per tick), or $(b,off)."
  in
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("human", `Human); ("off", `Off) ]) `Off
    & info [ "progress" ] ~docv:"MODE" ~doc)

let build_obs ~metrics_out ~trace_out ~progress =
  let metrics = Option.map (fun _ -> Fmc_obs.Metrics.create ()) metrics_out in
  let tracer = Option.map (fun _ -> Fmc_obs.Span.create ()) trace_out in
  let progress =
    match progress with
    | `Off -> None
    | `Jsonl -> Some (Fmc_obs.Progress.jsonl_sink stderr)
    | `Human -> Some (Fmc_obs.Progress.human_sink stderr)
  in
  Fmc_obs.Obs.create ?metrics ?tracer ?progress ()

(* Fleet commands (serve/worker/sched) always carry an in-memory
   registry and tracer: the v4 telemetry piggyback and the --http-port
   scrape surface read them even when no --metrics-out/--trace-out file
   was requested. Observation-only — reports are byte-identical either
   way. *)
let fleet_obs ~progress =
  let progress =
    match progress with
    | `Off -> None
    | `Jsonl -> Some (Fmc_obs.Progress.jsonl_sink stderr)
    | `Human -> Some (Fmc_obs.Progress.human_sink stderr)
  in
  Fmc_obs.Obs.create
    ~metrics:(Fmc_obs.Metrics.create ())
    ~tracer:(Fmc_obs.Span.create ())
    ?progress ()

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let flush_obs_outputs ~metrics_out ~trace_out (obs : Fmc_obs.Obs.t) =
  (match (metrics_out, obs.Fmc_obs.Obs.metrics) with
  | Some path, Some reg ->
      let snap = Fmc_obs.Metrics.snapshot reg in
      let body =
        if Filename.check_suffix path ".json" then Fmc_obs.Metrics.to_json snap
        else Fmc_obs.Metrics.to_prometheus snap
      in
      write_file path body;
      (* Notice goes to stderr so `--json` stdout stays machine-parseable. *)
      Format.eprintf "wrote %s@." path
  | _ -> ());
  match (trace_out, obs.Fmc_obs.Obs.tracer) with
  | Some path, Some tr ->
      write_file path (Fmc_obs.Span.to_chrome_json (Fmc_obs.Span.events tr));
      Format.eprintf "wrote %s (%d spans, %d dropped)@." path (Fmc_obs.Span.recorded tr)
        (Fmc_obs.Span.dropped tr)
  | _ -> ()

(* Context construction is shared by all commands. *)
let with_context f =
  let ctx = Fmc.Experiments.context () in
  f ctx;
  0

let prepared ctx benchmark strategy =
  let engine = Fmc.Experiments.engine_for ctx benchmark in
  let prep =
    Fmc.Sampler.prepare
      ~static_vuln:(Fmc.Engine.static_vulnerable engine)
      strategy
      (Fmc.Experiments.default_attack ctx)
      (Fmc.Experiments.precharac ctx)
      ~placement:(Fmc.Engine.placement engine)
  in
  (engine, prep)

(* info *)

let info_cmd =
  let run () =
    with_context @@ fun ctx ->
    let circuit = Fmc.Experiments.circuit ctx in
    Format.fprintf ppf "%a@." Fmc_netlist.Netlist.pp_summary circuit.Fmc_cpu.Circuit.net;
    let pre = Fmc.Experiments.precharac ctx in
    let lt = Fmc.Precharac.lifetimes pre in
    Format.fprintf ppf "responding signals: %d@.cone registers: %d@.memory-type fraction: %.1f%%@."
      (List.length (Fmc.Precharac.responding_signals pre))
      (Array.length (Fmc.Precharac.cone_registers pre))
      (100. *. Fmc.Lifetime.memory_fraction lt);
    let engine = Fmc.Experiments.engine_for ctx Fmc_isa.Programs.illegal_write in
    let g = Fmc.Engine.golden engine in
    Format.fprintf ppf "illegal-write golden run: target cycle %d, halt cycle %d@."
      (Fmc.Golden.target_cycle g) (Fmc.Golden.halt_cycle g)
  in
  Cmd.v (Cmd.info "info" ~doc:"Show the evaluated system and its pre-characterization.")
    Term.(const run $ const ())

(* Distributed-campaign plumbing shared by evaluate/serve/worker. *)

let default_shard_size = 1000

let dist_fingerprint ?fault_model ~benchmark ~strategy ~samples ~seed ~shard_size
    ~sample_budget () =
  Fmc_dist.Protocol.fingerprint ?fault_model
    ~strategy:(Fmc.Sampler.strategy_name strategy)
    ~benchmark:benchmark.Fmc_isa.Programs.name ~samples ~seed ~shard_size ~sample_budget ()

let spec_of_args ?(fault_model = Fmc_fault.Registry.default) ~benchmark ~strategy ~samples
    ~seed ~shard_size ~sample_budget () =
  {
    Fmc_dist.Protocol.sp_benchmark = benchmark.Fmc_isa.Programs.name;
    sp_strategy = Fmc.Sampler.strategy_name strategy;
    sp_samples = samples;
    sp_seed = seed;
    sp_shard_size = shard_size;
    sp_sample_budget = sample_budget;
    sp_fault_model = fault_model;
  }

(* --fault-model: parse at option-processing time so an unknown model or
   a bad parameter is a usage error (exit 2) with the registry's typed
   message, not a mid-campaign crash. *)
let fault_model_of_arg_or_die spec =
  match Fmc_fault.Registry.parse spec with
  | Ok model -> model
  | Error e ->
      Format.eprintf "faultmc: %s@." (Fmc_fault.Registry.error_message e);
      exit 2

let list_fault_models ppf =
  Format.fprintf ppf "registered fault models:@.";
  List.iter
    (fun (name, doc) -> Format.fprintf ppf "  %-16s %s@." name doc)
    (Fmc_fault.Registry.list ())

let parse_addr_or_die s =
  match Fmc_dist.Wire.parse_addr s with
  | Ok a -> a
  | Error msg ->
      Format.eprintf "faultmc: %s@." msg;
      exit 2

let addr_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Fmc_dist.Wire.parse_addr s) in
  let print fmt a = Format.fprintf fmt "%s" (Fmc_dist.Wire.addr_to_string a) in
  Arg.conv (parse, print)

(* Durations: a bare number is seconds; "ms"/"s"/"m"/"h" suffixes scale. *)
let parse_duration s =
  let scaled num unit =
    match float_of_string_opt num with
    | Some v when v >= 0. -> Ok (v *. unit)
    | _ -> Error (Printf.sprintf "bad duration %S (want e.g. 30, 30s, 500ms, 5m, 1h)" s)
  in
  let n = String.length s in
  if n = 0 then Error "empty duration"
  else if n >= 2 && String.sub s (n - 2) 2 = "ms" then scaled (String.sub s 0 (n - 2)) 0.001
  else
    match s.[n - 1] with
    | 's' -> scaled (String.sub s 0 (n - 1)) 1.
    | 'm' -> scaled (String.sub s 0 (n - 1)) 60.
    | 'h' -> scaled (String.sub s 0 (n - 1)) 3600.
    | _ -> scaled s 1.

let duration_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (parse_duration s) in
  let print fmt v = Format.fprintf fmt "%gs" v in
  Arg.conv (parse, print)

let shard_size_arg =
  let doc =
    "Shard size in samples: the campaign is cut into contiguous shards of $(docv), each evaluated \
     under its own RNG substream. Must agree between coordinator, workers and any local reference \
     run for the reports to be bit-identical."
  in
  Arg.(value & opt int default_shard_size & info [ "shard-size" ] ~docv:"N" ~doc)

(* Campaign-status rendering, shared by `status`, `top` and the scrape
   endpoint's text routes. *)

let state_name = function
  | Fmc_dist.Protocol.Queued -> "queued"
  | Fmc_dist.Protocol.Running -> "running"
  | Fmc_dist.Protocol.Finished -> "finished"
  | Fmc_dist.Protocol.Parked -> "parked"
  | Fmc_dist.Protocol.Cancelled -> "cancelled"

let eta_string eta = if eta < 0. then "-" else Printf.sprintf "%.0fs" eta

let render_status_entry ppf (e : Fmc_dist.Protocol.status_entry) =
  let position =
    if e.Fmc_dist.Protocol.st_position < 0 then "-"
    else
      Printf.sprintf "%d/%d" e.Fmc_dist.Protocol.st_position e.Fmc_dist.Protocol.st_queue_len
  in
  Format.fprintf ppf "%-9s pos %s  %d/%d samples  %.0f samples/s  eta %s  %s%s"
    (state_name e.Fmc_dist.Protocol.st_state)
    position
    e.Fmc_dist.Protocol.st_samples_done e.Fmc_dist.Protocol.st_samples_total
    (Float.max 0. e.Fmc_dist.Protocol.st_rate)
    (eta_string e.Fmc_dist.Protocol.st_eta_s)
    e.Fmc_dist.Protocol.st_fingerprint
    (if e.Fmc_dist.Protocol.st_detail = "" then ""
     else Printf.sprintf "  (%s)" e.Fmc_dist.Protocol.st_detail)

let breaker_state_name = function
  | Fmc_dist.Breaker.Closed -> "closed"
  | Fmc_dist.Breaker.Open -> "open"
  | Fmc_dist.Breaker.Half_open -> "half-open"

let status_entry_json (e : Fmc_dist.Protocol.status_entry) =
  Printf.sprintf
    "{\"fingerprint\":\"%s\",\"state\":\"%s\",\"position\":%d,\"queue_len\":%d,\"samples_done\":%d,\"samples_total\":%d,\"rate\":%.3f,\"eta_s\":%.3f,\"detail\":\"%s\"}"
    (Fmc_obs.Jsonx.escape e.Fmc_dist.Protocol.st_fingerprint)
    (state_name e.Fmc_dist.Protocol.st_state)
    e.Fmc_dist.Protocol.st_position e.Fmc_dist.Protocol.st_queue_len
    e.Fmc_dist.Protocol.st_samples_done e.Fmc_dist.Protocol.st_samples_total
    e.Fmc_dist.Protocol.st_rate e.Fmc_dist.Protocol.st_eta_s
    (Fmc_obs.Jsonx.escape e.Fmc_dist.Protocol.st_detail)

(* The --http-port scrape endpoint (ISSUE 8): /metrics, /healthz,
   /readyz, /campaigns (JSON), /campaigns.txt + /workers.txt (the
   whitespace-separated tables `faultmc top` polls) and /trace (the
   stitched fleet trace). Route handlers are thunks over the view the
   coordinator/scheduler hands us via ?on_view — every one
   observation-only. *)

let http_port_arg what =
  Arg.(
    value
    & opt (some int) None
    & info [ "http-port" ] ~docv:"PORT"
        ~doc:
          (Printf.sprintf
             "Serve a read-only scrape endpoint for the %s on $(docv): $(b,/metrics) (Prometheus \
              text, the local registry merged with every worker's piggybacked snapshot), \
              $(b,/healthz), $(b,/readyz), $(b,/campaigns) (JSON), $(b,/campaigns.txt), \
              $(b,/workers.txt) and $(b,/trace) (stitched fleet trace). Port 0 binds an ephemeral \
              port (printed on stderr)."
             what))

let fleet_trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fleet-trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the stitched fleet trace (this process plus every v4 worker on its own track, \
           Chrome trace_event JSON) to $(docv) on exit.")

let bool_json b = if b then "true" else "false"

let coordinator_routes (v : Fmc_dist.Coordinator.view) =
  let open Fmc_dist.Coordinator in
  let health_body () =
    let h = v.vw_health () in
    Printf.sprintf
      "{\"finished\":%s,\"shards_done\":%d,\"shards_total\":%d,\"in_flight\":%d,\"connected\":%d,\"healthy_workers\":%d,\"breakers_open\":%d,\"leasing_paused\":%s,\"audits_pending\":%d,\"quarantined_workers\":%d}"
      (bool_json h.h_finished) h.h_shards_done h.h_shards_total h.h_in_flight h.h_connected
      h.h_healthy_workers h.h_breakers_open (bool_json h.h_leasing_paused) h.h_audits_pending
      h.h_quarantined_workers
  in
  let workers_txt () =
    let b = Buffer.create 256 in
    Buffer.add_string b "# worker breaker conns samples_per_sec spans last_wall quarantined mismatches\n";
    List.iter
      (fun w ->
        Buffer.add_string b
          (Printf.sprintf "%s %s %d %.1f %d %.3f %s %d\n" w.w_name
             (breaker_state_name w.w_breaker) w.w_connections w.w_rate w.w_spans w.w_last_wall
             (if w.w_quarantined then "yes" else "no")
             w.w_mismatches))
      (v.vw_workers ());
    Buffer.contents b
  in
  [
    ("/metrics", fun () -> Fmc_obs.Httpd.text (v.vw_metrics ()));
    ("/healthz", fun () -> Fmc_obs.Httpd.json (health_body ()));
    ( "/readyz",
      fun () ->
        let h = v.vw_health () in
        let status = if h.h_leasing_paused then 503 else 200 in
        Fmc_obs.Httpd.json ~status (health_body ()) );
    ("/campaigns", fun () -> Fmc_obs.Httpd.json ("[" ^ status_entry_json (v.vw_status ()) ^ "]"));
    ( "/campaigns.txt",
      fun () -> Fmc_obs.Httpd.text (Format.asprintf "%a@." render_status_entry (v.vw_status ())) );
    ("/workers.txt", fun () -> Fmc_obs.Httpd.text (workers_txt ()));
    ("/trace", fun () -> Fmc_obs.Httpd.json (v.vw_trace_json ()));
  ]

let scheduler_routes (v : Fmc_sched.Service.view) =
  let open Fmc_sched.Service in
  let health_body () =
    let h = v.vw_health () in
    Printf.sprintf
      "{\"draining\":%s,\"queue_depth\":%d,\"in_flight\":%d,\"connected\":%d,\"wal_torn\":%d}"
      (bool_json h.h_draining) h.h_queue_depth h.h_in_flight h.h_connected h.h_wal_torn
  in
  let workers_txt () =
    let b = Buffer.create 256 in
    Buffer.add_string b "# worker spans last_wall trace\n";
    List.iter
      (fun (name, (wi : Fmc_obs.Fleet.worker_info)) ->
        Buffer.add_string b
          (Printf.sprintf "%s %d %.3f %s\n" name wi.Fmc_obs.Fleet.wi_span_count
             wi.Fmc_obs.Fleet.wi_last_wall
             (if wi.Fmc_obs.Fleet.wi_trace_id = "" then "-" else wi.Fmc_obs.Fleet.wi_trace_id)))
      (v.vw_workers ());
    Buffer.contents b
  in
  [
    ("/metrics", fun () -> Fmc_obs.Httpd.text (v.vw_metrics ()));
    ("/healthz", fun () -> Fmc_obs.Httpd.json (health_body ()));
    ( "/readyz",
      fun () ->
        let h = v.vw_health () in
        let status = if h.h_draining then 503 else 200 in
        Fmc_obs.Httpd.json ~status (health_body ()) );
    ( "/campaigns",
      fun () ->
        Fmc_obs.Httpd.json
          ("[" ^ String.concat "," (List.map status_entry_json (v.vw_status ())) ^ "]") );
    ( "/campaigns.txt",
      fun () ->
        Fmc_obs.Httpd.text
          (String.concat ""
             (List.map (fun e -> Format.asprintf "%a@." render_status_entry e) (v.vw_status ()))) );
    ("/workers.txt", fun () -> Fmc_obs.Httpd.text (workers_txt ()));
    ("/trace", fun () -> Fmc_obs.Httpd.json (v.vw_trace_json ()));
  ]

let start_endpoint ?registry ~what ~routes = function
  | None -> None
  | Some port ->
      let h = Fmc_obs.Httpd.start ?registry ~port ~routes () in
      (* stderr so --json stdout stays machine-parseable. *)
      Format.eprintf "%s scrape endpoint on port %d (/metrics /healthz /readyz /campaigns /trace)@."
        what (Fmc_obs.Httpd.port h);
      Some h

let stop_endpoint h = Option.iter Fmc_obs.Httpd.stop h

let write_fleet_trace ~fleet_trace_out trace_json =
  match (fleet_trace_out, trace_json) with
  | Some path, Some json ->
      write_file path (json ());
      Format.eprintf "wrote %s@." path
  | _ -> ()

(* Chaos harness plumbing (serve/worker): interpose the deterministic
   fault-injection proxy on the campaign's transport. The hidden side of
   the proxy always uses a private Unix-domain socket, so no ephemeral
   TCP port needs picking. *)

let chaos_plan_arg cmd =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos-plan" ] ~docv:"PLAN"
        ~doc:
          (Printf.sprintf
             "Run the %s behind the deterministic fault-injection proxy executing $(docv): either \
              a plan file or inline clauses (e.g. \"bitflip p=0.02; drop p=0.01\"). See the chaos \
              plan grammar in DESIGN.md."
             cmd))

let chaos_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:
          "Seed for the chaos proxy's fault decisions; the same (seed, plan) pair replays the \
           same fault stream.")

let chaos_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos-log" ] ~docv:"FILE" ~doc:"Append one line per injected chaos fault to $(docv).")

let load_chaos_plan spec =
  let result =
    if Sys.file_exists spec then Fmc_chaos.Plan.load ~path:spec else Fmc_chaos.Plan.parse spec
  in
  match result with
  | Ok plan when not (Fmc_chaos.Plan.is_empty plan) -> plan
  | Ok _ ->
      Format.eprintf "faultmc: --chaos-plan %S contains no fault clauses@." spec;
      exit 2
  | Error msg ->
      Format.eprintf "faultmc: bad chaos plan: %s@." msg;
      exit 2

(* A thread-safe line logger for the chaos event log (pump threads call
   it concurrently); returns the sink and a close hook. *)
let chaos_logger = function
  | None -> ((fun _ -> ()), fun () -> ())
  | Some path ->
      let oc = open_out path in
      let m = Mutex.create () in
      let log line =
        Mutex.lock m;
        output_string oc line;
        output_char oc '\n';
        flush oc;
        Mutex.unlock m
      in
      (log, fun () -> close_out_noerr oc)

let chaos_socket_path prefix =
  Filename.temp_file ("faultmc-" ^ prefix) ".sock"

(* Start the proxy between [public] (where clients dial) and [upstream];
   returns a stop hook that also reports the injected-fault tally. *)
let start_chaos_proxy ~obs ~plan ~seed ~log ~close_log ~public ~upstream =
  let proxy =
    Fmc_chaos.Proxy.start ~obs ~on_event:log ~listen:public ~upstream ~plan
      ~seed:(Int64.of_int seed) ()
  in
  fun () ->
    Fmc_chaos.Proxy.stop proxy;
    let tally = Fmc_chaos.Proxy.fault_counts proxy in
    if tally <> [] then
      Format.eprintf "chaos: %s over %d connection(s)@."
        (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) tally))
        (Fmc_chaos.Proxy.connections proxy)
    else
      Format.eprintf "chaos: no faults fired over %d connection(s)@."
        (Fmc_chaos.Proxy.connections proxy);
    close_log ()

(* evaluate *)

let fault_model_arg =
  Arg.(
    value
    & opt string Fmc_fault.Registry.default
    & info [ "fault-model" ] ~docv:"MODEL"
        ~doc:
          "Evaluate under fault model $(docv), written NAME or NAME:k=v,... (e.g. \
           $(b,seu-burst:bits=4)). An unknown model or a bad parameter is a usage error. See \
           $(b,--list-fault-models).")

let list_fault_models_flag =
  Arg.(
    value & flag
    & info [ "list-fault-models" ] ~doc:"List the registered fault models and exit.")

let evaluate_cmd =
  let run benchmark strategy samples seed half_width json csv_prefix checkpoint checkpoint_every
      resume journal sample_budget connect shard_size prune_flag fault_model list_models
      metrics_out trace_out progress =
    if list_models then begin
      list_fault_models ppf;
      exit 0
    end;
    let model = fault_model_of_arg_or_die fault_model in
    let inject = model.Fmc_fault.Model.inject in
    if prune_flag && not model.Fmc_fault.Model.prunable then begin
      Format.eprintf
        "faultmc: --prune is only sound for the disc-transient model (masking certificates do \
         not cover %s)@."
        (Fmc_fault.Model.canonical model);
      exit 2
    end;
    let obs = build_obs ~metrics_out ~trace_out ~progress in
    let render report =
      if json then print_endline (Fmc.Export.report_json report)
      else begin
        Format.fprintf ppf "benchmark: %s@.%a@." benchmark.Fmc_isa.Programs.name
          Fmc.Report.ssf_report report;
        let lo, hi = Fmc.Ssf.confidence_interval report ~z:1.96 in
        Format.fprintf ppf "95%% confidence interval: [%.5f, %.5f]@." lo hi
      end;
      (match csv_prefix with
      | None -> ()
      | Some prefix ->
          let write name contents =
            write_file name contents;
            Format.fprintf ppf "wrote %s@." name
          in
          write (prefix ^ "-trace.csv") (Fmc.Export.trace_csv report);
          write (prefix ^ "-contributions.csv") (Fmc.Export.contributions_csv report));
      flush_obs_outputs ~metrics_out ~trace_out obs
    in
    let campaign_mode = checkpoint <> None || resume <> None || journal <> None in
    match connect with
    | Some addrstr ->
        (* Report client: no engine, no context — fetch the finished
           campaign's shard blobs from the coordinator and merge locally
           through the same Merge path the coordinator itself uses. *)
        if campaign_mode || half_width <> None then begin
          prerr_endline "faultmc: --connect only combines with the campaign-identity options";
          exit 2
        end;
        if prune_flag then begin
          prerr_endline "faultmc: --prune needs local evaluation; it cannot combine with --connect";
          exit 2
        end;
        let addr = parse_addr_or_die addrstr in
        let fingerprint =
          dist_fingerprint
            ~fault_model:(Fmc_fault.Model.canonical model)
            ~benchmark ~strategy ~samples ~seed
            ~shard_size:(Option.value shard_size ~default:default_shard_size)
            ~sample_budget ()
        in
        let config = Fmc_dist.Worker.default_config ~addr ~worker_name:"report-client" in
        (match Fmc_dist.Worker.fetch_report ~obs config ~fingerprint with
        | Error err ->
            Format.eprintf "faultmc: %s@." (Fmc_dist.Worker.fetch_error_message err);
            exit 1
        | Ok (shards, quarantined, elapsed_s) -> (
            match
              Fmc_dist.Merge.report_of_blobs ~strategy:(Fmc.Sampler.strategy_name strategy) shards
            with
            | Error msg ->
                Format.eprintf "faultmc: %s@." msg;
                exit 1
            | Ok report ->
                let q = List.length quarantined in
                if q > 0 then Format.eprintf "%d sample(s) quarantined@." q;
                if not json then
                  Format.fprintf ppf "campaign wall clock: %.2f s (distributed)@." elapsed_s;
                render report;
                0))
    | None -> (
        with_context @@ fun ctx ->
        let engine, prep = prepared ctx benchmark strategy in
        (* The analytical pruner: sound per-sample masking certificates
           (Fmc_sva). A covered sample skips simulation and is tallied as
           masked with its original weight — the report stays
           byte-identical to the unpruned run, only faster. *)
        let pruner = if prune_flag then Some (Fmc_sva.Pruner.create ~obs engine) else None in
        let prune = Option.map (fun p sample -> Fmc_sva.Pruner.check p sample) pruner in
        let clock_suffix () =
          match pruner with
          | None -> ""
          | Some p -> Printf.sprintf ", prune ratio %.1f%%" (100. *. Fmc_sva.Pruner.prune_ratio p)
        in
        let report =
          match (half_width, shard_size, campaign_mode) with
          | Some hw, None, false when sample_budget = None ->
              Fmc.Ssf.estimate_until ~obs ?prune ?inject engine prep ~half_width:hw ~z:1.96
                ~seed
          | Some _, _, _ ->
              prerr_endline "faultmc: --half-width cannot be combined with campaign options";
              exit 2
          | None, Some sz, _ ->
              if campaign_mode then begin
                prerr_endline
                  "faultmc: --shard-size cannot be combined with --checkpoint/--resume/--journal";
                exit 2
              end;
              (* The single-process reference for a distributed run with
                 the same (samples, seed, shard size): bit-identical. *)
              let result =
                Fmc.Campaign.estimate_sharded ~obs ?sample_budget ?prune ?inject engine prep
                  ~samples ~seed ~shard_size:sz
              in
              let q = List.length result.Fmc.Campaign.quarantined in
              if q > 0 then Format.eprintf "%d sample(s) quarantined@." q;
              if not json then
                Format.fprintf ppf "campaign wall clock: %.2f s (%.0f samples/s%s)@."
                  result.Fmc.Campaign.elapsed_s result.Fmc.Campaign.samples_per_sec
                  (clock_suffix ());
              result.Fmc.Campaign.report
          | None, None, false when sample_budget = None ->
              Fmc.Ssf.estimate ~obs ?prune ?inject engine prep ~samples ~seed
          | None, None, _ ->
              if checkpoint_every <= 0 then begin
                prerr_endline "faultmc: --checkpoint-every must be positive";
                exit 2
              end;
              let config =
                {
                  Fmc.Campaign.checkpoint_path = checkpoint;
                  checkpoint_every;
                  journal_path = journal;
                  sample_budget;
                  handle_signals = true;
                }
              in
              let result =
                try
                  match resume with
                  | Some path ->
                      Fmc.Campaign.resume ~config ~obs ?prune ?inject engine prep ~path
                  | None ->
                      Fmc.Campaign.run ~config ~obs ?prune ?inject engine prep ~samples ~seed
                with
                | Fmc.Campaign.Checkpoint_corrupt { path; reason } ->
                    Format.eprintf "faultmc: unusable checkpoint %s: %s@." path reason;
                    exit 2
                | Sys_error msg ->
                    Format.eprintf "faultmc: %s@." msg;
                    exit 2
              in
              (match result.Fmc.Campaign.status with
              | Fmc.Campaign.Completed -> ()
              | Fmc.Campaign.Interrupted ->
                  Format.eprintf "campaign interrupted after %d samples%s@."
                    result.Fmc.Campaign.report.Fmc.Ssf.n
                    (match checkpoint with
                    | Some p -> Printf.sprintf "; resume with --resume %s" p
                    | None -> " (no checkpoint was configured)"));
              let q = List.length result.Fmc.Campaign.quarantined in
              if q > 0 then
                Format.eprintf "%d sample(s) quarantined%s@." q
                  (match journal with Some p -> Printf.sprintf "; details in %s" p | None -> "");
              if not json then
                Format.fprintf ppf "campaign wall clock: %.2f s (%.0f samples/s%s)@."
                  result.Fmc.Campaign.elapsed_s result.Fmc.Campaign.samples_per_sec
                  (clock_suffix ());
              result.Fmc.Campaign.report
        in
        (match pruner with
        | None -> ()
        | Some p ->
            let st = Fmc_sva.Pruner.stats p in
            Format.eprintf "sva prune: %d/%d samples pruned (%.1f%%), %d certificates@."
              st.Fmc_sva.Pruner.pruned st.checked
              (100. *. Fmc_sva.Pruner.prune_ratio p)
              st.certificates);
        render report)
  in
  let half_width =
    Arg.(
      value
      & opt (some float) None
      & info [ "half-width" ] ~docv:"HW"
          ~doc:"Sample until the 95% confidence half-width drops below $(docv) (overrides -n).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let csv_prefix =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PREFIX" ~doc:"Also write PREFIX-trace.csv and PREFIX-contributions.csv.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Periodically write a durable campaign checkpoint to $(docv) (atomic rename-on-write); \
             an interrupted run continues bit-exactly with $(b,--resume).")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt int 1000
      & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Checkpoint period in samples.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume a checkpointed campaign from $(docv). The benchmark and strategy must match \
             the original run; $(b,-n) and $(b,--seed) are taken from the checkpoint.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Append one JSON line per quarantined (crashed or timed-out) sample to $(docv).")
  in
  let sample_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-budget" ] ~docv:"CYCLES"
          ~doc:
            "Per-sample RTL cycle budget: a sample whose resumed simulation exceeds $(docv) cycles \
             is quarantined as timed out instead of aborting the campaign.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Fetch a distributed campaign's report from the coordinator at $(docv) (HOST:PORT or \
             unix:PATH) instead of evaluating locally. The campaign-identity options (benchmark, \
             strategy, -n, --seed, --sample-budget) must match the coordinator's.")
  in
  let shard_size_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-size" ] ~docv:"N"
          ~doc:
            "Evaluate locally through the sharded path: cut the campaign into shards of $(docv) \
             samples, each under its own RNG substream, and merge — the bit-exact single-process \
             reference for a distributed run with the same shard size.")
  in
  let prune_flag =
    Arg.(
      value & flag
      & info [ "prune" ]
          ~doc:
            "Skip simulating samples covered by a sound Fmc_sva masking certificate and tally \
             them analytically as masked with their original weight. The report is byte-identical \
             to the unpruned run for the same seed — only faster. Cannot combine with \
             $(b,--connect).")
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Estimate the System Security Factor of a benchmark.")
    Term.(
      const run $ benchmark_arg $ strategy_arg $ samples_arg 5000 $ seed_arg $ half_width $ json
      $ csv_prefix $ checkpoint $ checkpoint_every $ resume $ journal $ sample_budget $ connect
      $ shard_size_opt $ prune_flag $ fault_model_arg $ list_fault_models_flag $ metrics_out_arg
      $ trace_out_arg $ progress_arg)

(* characterize *)

let characterize_cmd =
  let run verbose =
    with_context @@ fun ctx ->
    Format.fprintf ppf "%a@." Fmc.Report.fig4 (Fmc.Experiments.fig4 ctx);
    if verbose then begin
      let pre = Fmc.Experiments.precharac ctx in
      Format.fprintf ppf "per-register statistics:@.";
      Array.iter
        (fun (s : Fmc.Lifetime.stats) ->
          Format.fprintf ppf "  %-16s lifetime %6.1f  contamination %5.1f  %s@."
            (Printf.sprintf "%s[%d]" s.Fmc.Lifetime.group s.Fmc.Lifetime.bit)
            s.Fmc.Lifetime.lifetime s.Fmc.Lifetime.contamination
            (if s.Fmc.Lifetime.memory_type then "memory-type" else "computation-type"))
        (Fmc.Lifetime.all (Fmc.Precharac.lifetimes pre))
    end
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-register statistics.") in
  Cmd.v
    (Cmd.info "characterize" ~doc:"Register error-lifetime / contamination characterization (Fig 4).")
    Term.(const run $ verbose)

(* sweep *)

let sweep_cmd =
  let run samples seed =
    with_context @@ fun ctx ->
    Format.fprintf ppf "%a@." Fmc.Report.fig11 (Fmc.Experiments.fig11 ~samples ~seed ctx)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Temporal and spatial attack-accuracy sweeps (Fig 11).")
    Term.(const run $ samples_arg 3000 $ seed_arg)

(* harden *)

let harden_cmd =
  let run samples seed =
    with_context @@ fun ctx ->
    Format.fprintf ppf "%a@." Fmc.Report.headline (Fmc.Experiments.headline ~samples ~seed ctx)
  in
  Cmd.v
    (Cmd.info "harden" ~doc:"Identify critical registers and evaluate hardening plans.")
    Term.(const run $ samples_arg 6000 $ seed_arg)

(* trace *)

let trace_cmd =
  let run benchmark cycles out =
    with_context @@ fun ctx ->
    let circuit = Fmc.Experiments.circuit ctx in
    let netsys = Fmc_cpu.Netsys.create circuit benchmark in
    let sim = Fmc_cpu.Netsys.sim netsys in
    let net = circuit.Fmc_cpu.Circuit.net in
    let signals =
      List.map
        (fun (name, _) -> { Fmc_gatesim.Vcd.name; nodes = Fmc_netlist.Netlist.register_group net name })
        Fmc_cpu.Arch.groups
      @ [
          { Fmc_gatesim.Vcd.name = "data_viol"; nodes = [| circuit.Fmc_cpu.Circuit.data_viol |] };
          { Fmc_gatesim.Vcd.name = "instr_viol"; nodes = [| circuit.Fmc_cpu.Circuit.instr_viol |] };
          { Fmc_gatesim.Vcd.name = "dmem_addr"; nodes = circuit.Fmc_cpu.Circuit.dmem_addr };
          { Fmc_gatesim.Vcd.name = "dmem_we"; nodes = [| circuit.Fmc_cpu.Circuit.dmem_we |] };
        ]
    in
    (* Drive the instruction/memory ports per cycle exactly like Netsys,
       and commit the data-memory write before each clock edge. *)
    let drive _ _ = Fmc_cpu.Netsys.settle netsys in
    let before_latch _ sim =
      if Fmc_gatesim.Cycle_sim.value sim circuit.Fmc_cpu.Circuit.dmem_we then begin
        let dmem = Fmc_cpu.Netsys.dmem netsys in
        let addr = Fmc_gatesim.Cycle_sim.read_bus sim circuit.Fmc_cpu.Circuit.dmem_addr in
        dmem.(addr land (Array.length dmem - 1)) <-
          Fmc_gatesim.Cycle_sim.read_bus sim circuit.Fmc_cpu.Circuit.dmem_wdata
      end
    in
    let vcd = Fmc_gatesim.Vcd.record ~before_latch sim ~cycles ~drive ~signals in
    let oc = open_out out in
    output_string oc vcd;
    close_out oc;
    Format.fprintf ppf "wrote %d cycles of %s to %s@." cycles benchmark.Fmc_isa.Programs.name out
  in
  let cycles = Arg.(value & opt int 200 & info [ "c"; "cycles" ] ~docv:"N" ~doc:"Cycles to trace.") in
  let out = Arg.(value & opt string "trace.vcd" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output VCD file.") in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump a gate-level VCD waveform of a benchmark run.")
    Term.(const run $ benchmark_arg $ cycles $ out)

(* dot *)

let dot_cmd =
  let run depth out =
    with_context @@ fun ctx ->
    let circuit = Fmc.Experiments.circuit ctx in
    let net = circuit.Fmc_cpu.Circuit.net in
    let dot =
      if depth = 0 then
        Fmc_netlist.Dot.cone_to_dot net
          (Fmc_netlist.Cone.fanin net ~roots:(Fmc_cpu.Circuit.responding_signals circuit))
      else Fmc_netlist.Dot.to_dot net
    in
    let oc = open_out out in
    output_string oc dot;
    close_out oc;
    Format.fprintf ppf "wrote %s (%d bytes); render with: dot -Tsvg %s -o out.svg@." out
      (String.length dot) out
  in
  let full = Arg.(value & opt int 0 & info [ "full" ] ~docv:"0|1" ~doc:"1 = whole netlist, 0 = responding-signal cone.") in
  let out = Arg.(value & opt string "netlist.dot" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output dot file.") in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export the responding-signal cone (or whole netlist) as Graphviz.")
    Term.(const run $ full $ out)

(* lint *)

let lint_targets = function
  | "cpu" | "crypto" | "all" -> true
  | _ -> false

let build_lint_target = function
  | "cpu" ->
      let circuit = Fmc_cpu.Circuit.build () in
      Fmc_analysis.Pass.target ~name:"cpu"
        ~responding:(Fmc_cpu.Circuit.responding_signals circuit)
        circuit.Fmc_cpu.Circuit.net
  | "crypto" ->
      let core = Fmc_crypto.Core_circuit.build () in
      (* TOYSPN has no in-circuit detection mechanism: certify against the
         primary outputs (ciphertext, done, busy). *)
      Fmc_analysis.Pass.target ~name:"crypto" core.Fmc_crypto.Core_circuit.net
  | t -> invalid_arg ("build_lint_target: " ^ t)

let lint_cmd =
  let run target passes json fail_on list_passes =
    if list_passes then begin
      List.iter
        (fun p ->
          Format.fprintf ppf "%-22s %-5s %s@." p.Fmc_analysis.Pass.name
            (Fmc_analysis.Diagnostic.severity_to_string p.Fmc_analysis.Pass.default_severity)
            p.Fmc_analysis.Pass.doc)
        Fmc_analysis.Registry.all;
      0
    end
    else if not (lint_targets target) then begin
      Format.eprintf "faultmc lint: unknown target %S (expected cpu|crypto|all)@." target;
      2
    end
    else
      match Fmc_analysis.Registry.select passes with
      | Error msg ->
          Format.eprintf "faultmc lint: %s@." msg;
          2
      | Ok selected ->
          let names = if target = "all" then [ "cpu"; "crypto" ] else [ target ] in
          let worst = ref 0 in
          let reports =
            List.map
              (fun name ->
                let tgt = build_lint_target name in
                let diags = Fmc_analysis.Reporter.run selected tgt in
                worst := max !worst (Fmc_analysis.Reporter.exit_code ~fail_on diags);
                (tgt, diags))
              names
          in
          if json then begin
            let bodies =
              List.map (fun (tgt, diags) -> Fmc_analysis.Reporter.to_json ~target:tgt diags) reports
            in
            print_endline ("[" ^ String.concat "," bodies ^ "]")
          end
          else
            List.iter
              (fun (tgt, diags) ->
                Format.fprintf ppf "%a@." (fun ppf -> Fmc_analysis.Reporter.pp_report ppf ~target:tgt) diags)
              reports;
          !worst
  in
  let target =
    Arg.(
      value & opt string "all"
      & info [ "t"; "target" ] ~docv:"TARGET"
          ~doc:"Netlist to lint: $(b,cpu), $(b,crypto), or $(b,all).")
  in
  let passes =
    Arg.(
      value & opt_all string []
      & info [ "p"; "pass" ] ~docv:"PASS"
          ~doc:"Run only the named pass (repeatable; default: every registered pass).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the reports as a JSON array.") in
  let fail_on =
    let parse s =
      match Fmc_analysis.Diagnostic.severity_of_string s with
      | Some sev -> Ok sev
      | None -> Error (`Msg (Printf.sprintf "unknown severity %S (expected info|warn|error)" s))
    in
    let print fmt s = Format.fprintf fmt "%s" (Fmc_analysis.Diagnostic.severity_to_string s) in
    Arg.(
      value
      & opt (conv (parse, print)) Fmc_analysis.Diagnostic.Error
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:"Exit non-zero when a finding reaches $(docv): $(b,info), $(b,warn) or $(b,error).")
  in
  let list_passes =
    Arg.(value & flag & info [ "list" ] ~doc:"List the registered passes and exit.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis passes (structural lints, security coverage certificate, TMR \
          verifier) over the benchmark netlists.")
    Term.(const run $ target $ passes $ json $ fail_on $ list_passes)

(* sva *)

let sva_cmd =
  let run benchmark json check =
    with_context @@ fun ctx ->
    let engine = Fmc.Experiments.engine_for ctx benchmark in
    let cert = Fmc_sva.Cert.build engine in
    if json then print_endline (Fmc_sva.Cert.to_json cert)
    else Format.fprintf ppf "%a" Fmc_sva.Cert.summary cert;
    match check with
    | None -> ()
    | Some points ->
        let pruner = Fmc_sva.Pruner.create engine in
        let claimed, violations = Fmc_sva.Pruner.self_check ~points pruner in
        if violations = [] then
          Format.eprintf
            "sva check: %d/%d random (cell, cycle) points claimed masked; every claim confirmed \
             by full simulation@."
            claimed points
        else begin
          Format.eprintf
            "sva check: UNSOUND — %d of %d claimed-masked points were NOT masked under full \
             simulation:@."
            (List.length violations) claimed;
          List.iter
            (fun (dff, te) -> Format.eprintf "  node %d at injection cycle %d@." dff te)
            violations;
          exit 1
        end
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the certificate under the faultmc-sva-v1 schema.")
  in
  let check =
    Arg.(
      value
      & opt (some int) None
      & info [ "check" ] ~docv:"N"
          ~doc:
            "Soundness cross-check: draw $(docv) random (cell, cycle) points the certificates \
             claim masked, run the full engine on each, and exit non-zero on any disagreement.")
  in
  Cmd.v
    (Cmd.info "sva"
       ~doc:
         "Compute the sound masking certificates (workload constants, observability don't-cares, \
          temporal masking bounds) for a benchmark.")
    Term.(const run $ benchmark_arg $ json $ check)

(* bench *)

let bench_rev () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha when String.length sha >= 7 -> String.sub sha 0 7
  | Some sha when sha <> "" -> sha
  | _ -> (
      try
        let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
        let line = try input_line ic with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> line
        | _ -> "dev"
      with _ -> "dev")

let bench_cmd =
  let run samples out_dir seed rev_override =
    with_context @@ fun ctx ->
    (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let strategy = Fmc.Sampler.default_mixed in
    let bench_one idx (program : Fmc_isa.Programs.t) =
      let name = program.Fmc_isa.Programs.name in
      let engine, prep = prepared ctx program strategy in
      let reg = Fmc_obs.Metrics.create () in
      let tracer = Fmc_obs.Span.create ~tid:(idx + 1) () in
      let conv_path = Filename.concat out_dir ("convergence-" ^ name ^ ".jsonl") in
      let conv_oc = open_out conv_path in
      let obs =
        Fmc_obs.Obs.create ~metrics:reg ~tracer
          ~progress:(Fmc_obs.Progress.jsonl_sink conv_oc) ()
      in
      let t0 = Unix.gettimeofday () in
      let report = Fmc.Ssf.estimate ~obs engine prep ~samples ~seed in
      let elapsed = Unix.gettimeofday () -. t0 in
      close_out conv_oc;
      let sps = if elapsed > 0. then float_of_int samples /. elapsed else 0. in
      Format.fprintf ppf "bench %s: SSF %.5f, %.2f s (%.0f samples/s); wrote %s@." name
        report.Fmc.Ssf.ssf elapsed sps conv_path;
      (* Pruned re-run with the same seed under the same sink kinds (so the
         timing comparison is apples to apples): must be byte-identical —
         this is the in-tree soundness assertion of the --prune path. *)
      let preg = Fmc_obs.Metrics.create () in
      let ptracer = Fmc_obs.Span.create ~tid:(100 + idx + 1) () in
      let pconv_oc = open_out (Filename.concat out_dir ("convergence-" ^ name ^ "-pruned.jsonl")) in
      let pobs =
        Fmc_obs.Obs.create ~metrics:preg ~tracer:ptracer
          ~progress:(Fmc_obs.Progress.jsonl_sink pconv_oc) ()
      in
      let pruner = Fmc_sva.Pruner.create ~obs:pobs engine in
      let t1 = Unix.gettimeofday () in
      let pruned_report =
        Fmc.Ssf.estimate ~obs:pobs
          ~prune:(fun s -> Fmc_sva.Pruner.check pruner s)
          engine prep ~samples ~seed
      in
      let pruned_elapsed = Unix.gettimeofday () -. t1 in
      close_out pconv_oc;
      if Fmc.Export.report_json pruned_report <> Fmc.Export.report_json report then begin
        Format.eprintf
          "faultmc bench: pruned report diverged from the reference on %s — certificate unsound@."
          name;
        exit 1
      end;
      let psps = if pruned_elapsed > 0. then float_of_int samples /. pruned_elapsed else 0. in
      let pstats = Fmc_sva.Pruner.stats pruner in
      Format.fprintf ppf
        "bench %s (pruned): byte-identical report, %.2f s (%.0f samples/s, prune ratio %.1f%%, \
         speedup %.2fx)@."
        name pruned_elapsed psps
        (100. *. Fmc_sva.Pruner.prune_ratio pruner)
        (if sps > 0. then psps /. sps else 0.);
      (* v4: one row per registered fault model. The disc-transient row
         reuses the headline run (same spec, same bytes); the synthetic
         models are timed on their own estimate with the same seed. *)
      let model_rows =
        List.map
          (fun mname ->
            let m = Fmc_fault.Registry.parse_exn mname in
            match m.Fmc_fault.Model.inject with
            | None -> (m, report, elapsed)
            | Some _ as inject ->
                let t = Unix.gettimeofday () in
                let r = Fmc.Ssf.estimate ?inject engine prep ~samples ~seed in
                let e = Unix.gettimeofday () -. t in
                Format.fprintf ppf "bench %s [%s]: SSF %.5f, %.2f s@." name mname r.Fmc.Ssf.ssf
                  e;
                (m, r, e))
          Fmc_fault.Registry.names
      in
      (* v5: audit overhead — the same sharded campaign digested twice,
         as a v5 worker digests every shard result: once with auditing
         off, once re-executing a seeded --audit-rate 0.1 selection and
         comparing digests (the coordinator's quorum check, minus the
         wire). Also asserts shard-level determinism: a digest that
         diverges between identical runs would make auditing useless. *)
      let audit_rate = 0.1 in
      let audit_shard_size = 250 in
      let aplan = Fmc.Ssf.shard_plan ~samples ~shard_size:audit_shard_size in
      let run_digest shard (start, len) =
        let sh = Fmc.Campaign.run_shard engine prep ~seed ~shard ~start ~len in
        Fmc_audit.Audit.Check.result_digest
          ~tally:(Fmc.Ssf.Tally.to_string sh.Fmc.Campaign.sh_snapshot)
          ~quarantined:sh.Fmc.Campaign.sh_quarantined
      in
      let t_off = Unix.gettimeofday () in
      let digests = Array.mapi run_digest aplan in
      let audit_off_s = Unix.gettimeofday () -. t_off in
      let audit_seed = Int64.of_int seed in
      let audited = ref 0 in
      let t_on = Unix.gettimeofday () in
      let digests_on = Array.mapi run_digest aplan in
      Array.iteri
        (fun shard d ->
          if Fmc_audit.Audit.selected_pure ~rate:audit_rate ~seed:audit_seed ~shard then begin
            incr audited;
            if run_digest shard aplan.(shard) <> d then begin
              Format.eprintf
                "faultmc bench: audit re-execution diverged on %s shard %d — digests unsound@."
                name shard;
              exit 1
            end
          end)
        digests_on;
      let audit_on_s = Unix.gettimeofday () -. t_on in
      if digests_on <> digests then begin
        Format.eprintf "faultmc bench: shard digests diverged between runs on %s@." name;
        exit 1
      end;
      Format.fprintf ppf "bench %s (audit): %d/%d shards audited at rate %g, overhead %.2fx@." name
        !audited (Array.length aplan) audit_rate
        (if audit_off_s > 0. then audit_on_s /. audit_off_s else 0.);
      let audit_row =
        (audit_rate, audit_shard_size, Array.length aplan, !audited, audit_off_s, audit_on_s)
      in
      ( name,
        report,
        elapsed,
        (pruned_elapsed, Fmc_sva.Pruner.prune_ratio pruner, pstats.Fmc_sva.Pruner.certificates),
        model_rows,
        audit_row,
        Fmc_obs.Metrics.merge (Fmc_obs.Metrics.snapshot reg) (Fmc_obs.Metrics.snapshot preg),
        Fmc_obs.Span.events tracer,
        Fmc_obs.Span.totals tracer )
    in
    let results =
      List.mapi bench_one [ Fmc_isa.Programs.illegal_write; Fmc_isa.Programs.illegal_read ]
    in
    let rev = match rev_override with Some r -> r | None -> bench_rev () in
    let buf = Buffer.create 2048 in
    let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pr "{\"schema\":\"faultmc-bench-v5\",\"rev\":\"%s\",\"strategy\":\"%s\",\"samples\":%d,\"seed\":%d,\"benchmarks\":["
      (Fmc_obs.Jsonx.escape rev)
      (Fmc_obs.Jsonx.escape (Fmc.Sampler.strategy_name strategy))
      samples seed;
    List.iteri
      (fun i
           ( name,
             (report : Fmc.Ssf.report),
             elapsed,
             (pelapsed, pratio, certs),
             model_rows,
             (arate, ashard_size, ashards, aaudited, aoff, aon),
             snap,
             _,
             totals ) ->
        if i > 0 then pr ",";
        let lo, hi = Fmc.Ssf.confidence_interval report ~z:1.96 in
        let sps = if elapsed > 0. then float_of_int report.Fmc.Ssf.n /. elapsed else 0. in
        let psps = if pelapsed > 0. then float_of_int report.Fmc.Ssf.n /. pelapsed else 0. in
        (* v3: the pruner's own fmc_sva_prune_ratio gauge, read back from
           the merged metrics snapshot — lets CI cross-check the derived
           ratio against the live metric. *)
        let prune_ratio_gauge =
          match Fmc_obs.Metrics.find snap "fmc_sva_prune_ratio" with
          | Some (Fmc_obs.Metrics.Gauge g) -> g
          | _ -> 0.
        in
        pr
          "{\"name\":\"%s\",\"samples\":%d,\"elapsed_s\":%.6f,\"samples_per_sec\":%.2f,\"ssf\":%.8f,\"ci95\":[%.8f,%.8f],\"ess\":%.2f,"
          (Fmc_obs.Jsonx.escape name) report.Fmc.Ssf.n elapsed sps report.Fmc.Ssf.ssf lo hi
          report.Fmc.Ssf.ess;
        pr
          "\"pruned\":{\"elapsed_s\":%.6f,\"samples_per_sec\":%.2f,\"prune_ratio\":%.4f,\"prune_ratio_gauge\":%.4f,\"certificates\":%d,\"speedup\":%.3f},"
          pelapsed psps pratio prune_ratio_gauge certs
          (if sps > 0. then psps /. sps else 0.);
        (* v5 audit-overhead block: audit-off vs --audit-rate 0.1 *)
        pr
          "\"audit\":{\"rate\":%.4f,\"shard_size\":%d,\"shards\":%d,\"audited_shards\":%d,\"elapsed_off_s\":%.6f,\"elapsed_on_s\":%.6f,\"overhead_ratio\":%.4f},"
          arate ashard_size ashards aaudited aoff aon
          (if aoff > 0. then aon /. aoff else 0.);
        (* v4 per-model rows *)
        pr "\"models\":[";
        List.iteri
          (fun j ((m : Fmc_fault.Model.t), (r : Fmc.Ssf.report), e) ->
            if j > 0 then pr ",";
            let mlo, mhi = Fmc.Ssf.confidence_interval r ~z:1.96 in
            pr
              "{\"model\":\"%s\",\"ssf\":%.8f,\"ci95\":[%.8f,%.8f],\"successes\":%d,\"ess\":%.2f,\"elapsed_s\":%.6f,\"samples_per_sec\":%.2f}"
              (Fmc_obs.Jsonx.escape (Fmc_fault.Model.canonical m))
              r.Fmc.Ssf.ssf mlo mhi r.Fmc.Ssf.successes r.Fmc.Ssf.ess e
              (if e > 0. then float_of_int r.Fmc.Ssf.n /. e else 0.))
          model_rows;
        pr "],";
        pr "\"phases\":[";
        List.iteri
          (fun j (span, (count, total_us)) ->
            if j > 0 then pr ",";
            pr "{\"span\":\"%s\",\"count\":%d,\"total_us\":%.3f,\"mean_us\":%.3f}"
              (Fmc_obs.Jsonx.escape span) count total_us
              (if count > 0 then total_us /. float_of_int count else 0.))
          totals;
        pr "]}")
      results;
    pr "]}";
    let bench_path = Filename.concat out_dir (Printf.sprintf "BENCH_%s.json" rev) in
    write_file bench_path (Buffer.contents buf);
    Format.fprintf ppf "wrote %s@." bench_path;
    let merged_metrics =
      List.fold_left
        (fun acc (_, _, _, _, _, _, snap, _, _) -> Fmc_obs.Metrics.merge acc snap)
        [] results
    in
    let prom_path = Filename.concat out_dir "metrics.prom" in
    let mjson_path = Filename.concat out_dir "metrics.json" in
    write_file prom_path (Fmc_obs.Metrics.to_prometheus merged_metrics);
    write_file mjson_path (Fmc_obs.Metrics.to_json merged_metrics);
    let all_events = List.concat_map (fun (_, _, _, _, _, _, _, events, _) -> events) results in
    let trace_path = Filename.concat out_dir "trace.json" in
    write_file trace_path (Fmc_obs.Span.to_chrome_json all_events);
    Format.fprintf ppf "wrote %s, %s, %s@." prom_path mjson_path trace_path
  in
  let samples =
    let doc = "Samples per benchmark: an integer, or $(b,small) (300, the CI smoke size)." in
    let parse = function
      | "small" -> Ok 300
      | s -> (
          match int_of_string_opt s with
          | Some n when n > 0 -> Ok n
          | _ -> Error (`Msg (Printf.sprintf "expected a positive integer or \"small\", got %S" s)))
    in
    let print fmt n = Format.fprintf fmt "%d" n in
    Arg.(value & opt (conv (parse, print)) 2000 & info [ "n"; "samples" ] ~docv:"N" ~doc)
  in
  let out_dir =
    Arg.(
      value & opt string "."
      & info [ "out-dir" ] ~docv:"DIR" ~doc:"Directory for the bench artifacts (created if missing).")
  in
  let rev_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rev" ] ~docv:"REV"
          ~doc:
            "Override the revision tag in the artifact name and JSON (default: the current git \
             revision). Used to commit a stable $(b,BENCH_baseline.json).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the standard benchmarks under full observability — each once unpruned and once with \
          the Fmc_sva analytical pruner (asserting byte-identical reports) — and write \
          BENCH_<rev>.json (per-phase timings, throughput, prune ratio, speedup, SSF + CI) plus \
          metrics, trace and convergence artifacts.")
    Term.(const run $ samples $ out_dir $ seed_arg $ rev_arg)

(* serve *)

let audit_rate_arg =
  Arg.(
    value & opt float 0.
    & info [ "audit-rate" ] ~docv:"RATE"
        ~doc:
          "Fraction of accepted shards re-executed on a different worker and digest-compared \
           (untrusted-worker defense, DESIGN.md §16). Disagreement triggers a third, arbitrating \
           execution; the outvoted worker is quarantined and its unaudited results re-run. \
           Selection is a pure function of the campaign fingerprint — restart-stable, and \
           consuming zero engine-stream randomness. 0 disables auditing.")

let speculate_factor_arg =
  Arg.(
    value & opt float 0.
    & info [ "speculate-factor" ] ~docv:"K"
        ~doc:
          "Straggler speculation: duplicate a leased shard onto an idle worker once its holder's \
           projected completion exceeds $(docv) times the fleet's per-shard EWMA. First valid \
           result wins; the loser is fenced by the lease epoch. 0 disables.")

let serve_cmd =
  let run benchmark strategy samples seed addr shard_size ttl linger max_idle checkpoint
      sample_budget require_workers io_deadline breaker_failures breaker_cooldown audit_rate
      speculate_factor chaos_plan chaos_seed chaos_log http_port fleet_trace_out json fault_model
      metrics_out trace_out =
    let model = fault_model_of_arg_or_die fault_model in
    let obs = fleet_obs ~progress:`Off in
    let plan =
      try Fmc.Ssf.shard_plan ~samples ~shard_size
      with Invalid_argument msg ->
        Format.eprintf "faultmc: %s@." msg;
        exit 2
    in
    let fingerprint =
      dist_fingerprint
        ~fault_model:(Fmc_fault.Model.canonical model)
        ~benchmark ~strategy ~samples ~seed ~shard_size ~sample_budget ()
    in
    if not json then
      Format.fprintf ppf "serving %d samples as %d shard(s) of <=%d on %s@." samples
        (Array.length plan) shard_size (Fmc_dist.Wire.addr_to_string addr);
    (* Under --chaos-plan the coordinator binds a private Unix socket and
       the fault-injection proxy takes over the public address, so every
       worker byte crosses the chaos layer. *)
    let listen_addr, stop_chaos =
      match chaos_plan with
      | None -> (addr, fun () -> ())
      | Some spec ->
          let cplan = load_chaos_plan spec in
          let hidden = Fmc_dist.Wire.Unix_path (chaos_socket_path "serve") in
          let log, close_log = chaos_logger chaos_log in
          (hidden, start_chaos_proxy ~obs ~plan:cplan ~seed:chaos_seed ~log ~close_log
                     ~public:addr ~upstream:hidden)
    in
    let config =
      {
        Fmc_dist.Coordinator.addr = listen_addr;
        ttl_s = ttl;
        checkpoint_path = checkpoint;
        linger_s = linger;
        io_deadline_s = io_deadline;
        require_workers;
        max_idle_s = max_idle;
        breaker =
          { Fmc_dist.Breaker.failure_threshold = breaker_failures; cooldown_s = breaker_cooldown };
        audit_rate;
        speculate_factor;
      }
    in
    let endpoint = ref None in
    let fleet_view = ref None in
    let on_view (v : Fmc_dist.Coordinator.view) =
      fleet_view := Some v;
      endpoint :=
        start_endpoint ?registry:obs.Fmc_obs.Obs.metrics ~what:"coordinator"
          ~routes:(coordinator_routes v) http_port
    in
    let finish_observability () =
      stop_endpoint !endpoint;
      write_fleet_trace ~fleet_trace_out
        (Option.map (fun v -> v.Fmc_dist.Coordinator.vw_trace_json) !fleet_view)
    in
    let outcome =
      match Fmc_dist.Coordinator.serve ~obs ~on_view config ~fingerprint ~plan with
      | outcome ->
          finish_observability ();
          stop_chaos ();
          outcome
      | exception Failure msg ->
          finish_observability ();
          stop_chaos ();
          Format.eprintf "faultmc: %s@." msg;
          exit 2
    in
    match
      Fmc_dist.Merge.report_of_blobs
        ~strategy:(Fmc.Sampler.strategy_name strategy)
        outcome.Fmc_dist.Coordinator.oc_shards
    with
    | Error msg ->
        Format.eprintf "faultmc: %s@." msg;
        exit 1
    | Ok report ->
        let q = List.length outcome.Fmc_dist.Coordinator.oc_quarantined in
        if q > 0 then Format.eprintf "%d sample(s) quarantined@." q;
        if json then print_endline (Fmc.Export.report_json report)
        else begin
          Format.fprintf ppf "benchmark: %s@.%a@." benchmark.Fmc_isa.Programs.name
            Fmc.Report.ssf_report report;
          let lo, hi = Fmc.Ssf.confidence_interval report ~z:1.96 in
          Format.fprintf ppf "95%% confidence interval: [%.5f, %.5f]@." lo hi;
          Format.fprintf ppf "campaign wall clock: %.2f s@."
            outcome.Fmc_dist.Coordinator.oc_elapsed_s
        end;
        flush_obs_outputs ~metrics_out ~trace_out obs;
        0
  in
  let addr =
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "listen" ] ~docv:"ADDR" ~doc:"Listen address: HOST:PORT or unix:PATH.")
  in
  let ttl =
    Arg.(
      value & opt float 30.
      & info [ "lease-ttl" ] ~docv:"SECONDS"
          ~doc:
            "Lease lifetime without a heartbeat; an expired lease's shard is re-issued to another \
             worker under a bumped epoch.")
  in
  let linger =
    Arg.(
      value
      & opt duration_conv 5.
      & info [ "linger" ] ~docv:"DURATION"
          ~doc:
            "Keep answering report fetches this long after the campaign completes (a bare number \
             is seconds; $(b,ms)/$(b,s)/$(b,m)/$(b,h) suffixes work, e.g. $(b,5m)).")
  in
  let max_idle =
    Arg.(
      value
      & opt duration_conv 0.
      & info [ "max-idle" ] ~docv:"DURATION"
          ~doc:
            "Exit with an error if the campaign is unfinished and no worker has been connected \
             for $(docv) (same duration syntax as $(b,--linger)); 0 waits forever.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Durable coordinator state, written after every accepted shard; restarting with a \
             matching campaign resumes without re-running finished shards.")
  in
  let sample_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-budget" ] ~docv:"CYCLES"
          ~doc:"Per-sample RTL cycle budget workers must apply (part of the campaign identity).")
  in
  let require_workers =
    Arg.(
      value & opt int 0
      & info [ "require-workers" ] ~docv:"N"
          ~doc:
            "Pause shard leasing (answering $(b,No_work)) while fewer than $(docv) healthy workers \
             are connected; 0 disables the floor. Visible on the fmc_dist_leasing_paused gauge.")
  in
  let io_deadline =
    Arg.(
      value & opt float 120.
      & info [ "io-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-connection socket read/write deadline; a peer stalling a frame longer than this \
             is disconnected.")
  in
  let breaker_failures =
    Arg.(
      value & opt int 5
      & info [ "breaker-failures" ] ~docv:"N"
          ~doc:
            "Consecutive protocol errors, corrupt frames or lease expiries that trip a worker's \
             circuit breaker.")
  in
  let breaker_cooldown =
    Arg.(
      value & opt float 10.
      & info [ "breaker-cooldown" ] ~docv:"SECONDS"
          ~doc:
            "How long a tripped breaker parks its worker (connections answered with Retry_later) \
             before admitting a probe.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the final report as JSON.") in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Coordinate a distributed campaign: lease sample shards to workers, fence stale results, \
          merge bit-exactly.")
    Term.(
      const run $ benchmark_arg $ strategy_arg $ samples_arg 5000 $ seed_arg $ addr
      $ shard_size_arg $ ttl $ linger $ max_idle $ checkpoint $ sample_budget $ require_workers
      $ io_deadline $ breaker_failures $ breaker_cooldown $ audit_rate_arg $ speculate_factor_arg
      $ chaos_plan_arg "coordinator" $ chaos_seed_arg $ chaos_log_arg $ http_port_arg "campaign"
      $ fleet_trace_out_arg $ json $ fault_model_arg $ metrics_out_arg $ trace_out_arg)

(* worker *)

let worker_cmd =
  let run benchmark strategy samples seed addr pool shard_size sample_budget fault_model
      name heartbeat_every io_deadline reconnect_attempts reconnect_budget no_result_digest
      chaos_plan chaos_seed chaos_log metrics_out trace_out progress =
    let model = fault_model_of_arg_or_die fault_model in
    with_context @@ fun ctx ->
    let obs = fleet_obs ~progress in
    let name =
      match name with Some n -> n | None -> Printf.sprintf "worker-%d" (Unix.getpid ())
    in
    (* Under --chaos-plan the worker dials a local fault-injection proxy
       that forwards to the real coordinator. *)
    let connect_addr, stop_chaos =
      match chaos_plan with
      | None -> (addr, fun () -> ())
      | Some spec ->
          let cplan = load_chaos_plan spec in
          let public = Fmc_dist.Wire.Unix_path (chaos_socket_path "worker") in
          let log, close_log = chaos_logger chaos_log in
          (public, start_chaos_proxy ~obs ~plan:cplan ~seed:chaos_seed ~log ~close_log
                     ~public ~upstream:addr)
    in
    let config =
      {
        (Fmc_dist.Worker.default_config ~addr:connect_addr ~worker_name:name) with
        heartbeat_every;
        io_deadline_s = io_deadline;
        send_digest = not no_result_digest;
        retry =
          {
            Fmc_dist.Worker.default_retry with
            max_attempts = reconnect_attempts;
            budget_s = reconnect_budget;
          };
      }
    in
    let on_reconnect ~attempt ~sleep_s ~reason =
      Format.eprintf "worker %s: reconnect #%d in %.2fs (%s)@." name attempt sleep_s reason
    in
    let finish code =
      stop_chaos ();
      if code <> 0 then exit code
    in
    let campaign () =
      if pool then
        (* Pool mode: the scheduler names each job's campaign in its
           spec; resolve benchmarks/strategies from those names. *)
        let resolve (spec : Fmc_dist.Protocol.spec) =
          match
            (benchmark_of_name spec.Fmc_dist.Protocol.sp_benchmark,
             strategy_of_name spec.Fmc_dist.Protocol.sp_strategy,
             Fmc_fault.Registry.parse spec.Fmc_dist.Protocol.sp_fault_model)
          with
          | None, _, _ ->
              Error (Printf.sprintf "unknown benchmark %S" spec.Fmc_dist.Protocol.sp_benchmark)
          | _, None, _ ->
              Error (Printf.sprintf "unknown strategy %S" spec.Fmc_dist.Protocol.sp_strategy)
          | _, _, Error e -> Error (Fmc_fault.Registry.error_message e)
          | Some b, Some s, Ok m ->
              let engine, prep = prepared ctx b s in
              Ok (engine, prep, m.Fmc_fault.Model.inject)
        in
        Fmc_dist.Worker.run_pool ~obs ~on_reconnect config ~resolve ()
      else begin
        let engine, prep = prepared ctx benchmark strategy in
        let fingerprint =
          dist_fingerprint
            ~fault_model:(Fmc_fault.Model.canonical model)
            ~benchmark ~strategy ~samples ~seed ~shard_size ~sample_budget ()
        in
        Fmc_dist.Worker.run ~obs ?sample_budget ?inject:model.Fmc_fault.Model.inject
          ~on_reconnect config ~fingerprint engine prep ~seed
      end
    in
    match campaign () with
    | accepted ->
        Format.fprintf ppf "worker %s: %d shard result(s) accepted@." name accepted;
        flush_obs_outputs ~metrics_out ~trace_out obs;
        finish 0
    | exception Fmc_dist.Worker.Rejected reason ->
        Format.eprintf "faultmc: coordinator rejected us: %s@." reason;
        finish 2
    | exception Failure msg ->
        Format.eprintf "faultmc: %s@." msg;
        flush_obs_outputs ~metrics_out ~trace_out obs;
        finish 1
    | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "faultmc: coordinator connection failed: %s@." (Unix.error_message e);
        finish 1
  in
  let addr =
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "connect" ] ~docv:"ADDR" ~doc:"Coordinator address: HOST:PORT or unix:PATH.")
  in
  let pool =
    Arg.(
      value & flag
      & info [ "pool" ]
          ~doc:
            "Shared-pool mode against a multi-campaign scheduler ($(b,faultmc sched)): lease \
             shards from whichever campaign the scheduler picks (its job messages carry the \
             campaign spec), until it drains. The campaign-identity options are ignored.")
  in
  let sample_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-budget" ] ~docv:"CYCLES"
          ~doc:"Per-sample RTL cycle budget (must match the coordinator's).")
  in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"NAME"
          ~doc:"Worker name for leases and metrics (default: worker-<pid>).")
  in
  let heartbeat_every =
    Arg.(
      value & opt int 100
      & info [ "heartbeat-every" ] ~docv:"N"
          ~doc:"Samples between lease heartbeats (0 disables heartbeating).")
  in
  let io_deadline =
    Arg.(
      value & opt float 120.
      & info [ "io-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Socket read/write deadline; a stalled coordinator link times out (and triggers a \
             reconnect) after this long.")
  in
  let reconnect_attempts =
    Arg.(
      value & opt int 10
      & info [ "reconnect-attempts" ] ~docv:"N"
          ~doc:"Consecutive failed reconnect attempts before the worker gives up.")
  in
  let reconnect_budget =
    Arg.(
      value & opt float 300.
      & info [ "reconnect-budget" ] ~docv:"SECONDS"
          ~doc:"Total backoff sleep allowed across the whole run before the worker gives up.")
  in
  let no_result_digest =
    Arg.(
      value & flag
      & info [ "no-result-digest" ]
          ~doc:
            "Do not attach the canonical result digest to shard results (testing aid). A v5 \
             coordinator then falls back to recomputing the digest itself, exactly as for a v4 \
             peer.")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run distributed-campaign shards for a coordinator. The benchmark, strategy, -n, --seed, \
          --shard-size, --sample-budget and --fault-model must match the coordinator's campaign.")
    Term.(
      const run $ benchmark_arg $ strategy_arg $ samples_arg 5000 $ seed_arg $ addr $ pool
      $ shard_size_arg $ sample_budget $ fault_model_arg $ name_arg $ heartbeat_every
      $ io_deadline $ reconnect_attempts $ reconnect_budget $ no_result_digest
      $ chaos_plan_arg "worker's coordinator link" $ chaos_seed_arg $ chaos_log_arg
      $ metrics_out_arg $ trace_out_arg $ progress_arg)

(* sched / submit / status / cancel — the multi-campaign scheduler *)

let connect_arg what =
  Arg.(
    required
    & opt (some addr_conv) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:(Printf.sprintf "%s address: HOST:PORT or unix:PATH." what))

let client_config addr =
  Fmc_dist.Worker.default_config ~addr
    ~worker_name:(Printf.sprintf "client-%d" (Unix.getpid ()))

let sched_cmd =
  let run addr state_dir queue_depth ttl wall_budget retry_after max_idle io_deadline audit_rate
      speculate_factor chaos_plan chaos_seed chaos_log http_port fleet_trace_out metrics_out
      trace_out =
    let obs = fleet_obs ~progress:`Off in
    (* Under --chaos-plan the scheduler binds a private Unix socket and
       the fault-injection proxy takes over the public address, exactly
       as `faultmc serve` does. *)
    let listen_addr, stop_chaos =
      match chaos_plan with
      | None -> (addr, fun () -> ())
      | Some spec ->
          let cplan = load_chaos_plan spec in
          let hidden = Fmc_dist.Wire.Unix_path (chaos_socket_path "sched") in
          let log, close_log = chaos_logger chaos_log in
          (hidden, start_chaos_proxy ~obs ~plan:cplan ~seed:chaos_seed ~log ~close_log
                     ~public:addr ~upstream:hidden)
    in
    let config =
      {
        Fmc_sched.Service.addr = listen_addr;
        state_dir;
        sched =
          {
            Fmc_sched.Sched.default_config with
            queue_depth;
            ttl_s = ttl;
            wall_budget_s = wall_budget;
            retry_after_s = retry_after;
            audit_rate;
            speculate_factor;
          };
        max_idle_s = max_idle;
        io_deadline_s = io_deadline;
        handle_signals = true;
      }
    in
    Format.eprintf "scheduler on %s, state in %s@." (Fmc_dist.Wire.addr_to_string addr) state_dir;
    let endpoint = ref None in
    let fleet_view = ref None in
    let on_view (v : Fmc_sched.Service.view) =
      fleet_view := Some v;
      endpoint :=
        start_endpoint ?registry:obs.Fmc_obs.Obs.metrics ~what:"scheduler"
          ~routes:(scheduler_routes v) http_port
    in
    let finish_observability () =
      stop_endpoint !endpoint;
      write_fleet_trace ~fleet_trace_out
        (Option.map (fun v -> v.Fmc_sched.Service.vw_trace_json) !fleet_view);
      stop_chaos ()
    in
    match Fmc_sched.Service.serve ~obs ~on_view config with
    | outcome ->
        Format.fprintf ppf "scheduler exiting: %s@."
          (match outcome.Fmc_sched.Service.sv_reason with
          | Fmc_sched.Service.Drained -> "drained"
          | Fmc_sched.Service.Idle -> "idle past --max-idle");
        finish_observability ();
        flush_obs_outputs ~metrics_out ~trace_out obs;
        0
    | exception Failure msg ->
        Format.eprintf "faultmc: %s@." msg;
        finish_observability ();
        flush_obs_outputs ~metrics_out ~trace_out obs;
        exit 2
  in
  let addr =
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "listen" ] ~docv:"ADDR" ~doc:"Listen address: HOST:PORT or unix:PATH.")
  in
  let state_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Durable scheduler state: the submission-queue WAL and per-campaign checkpoints. \
             Restarting with the same $(docv) recovers every queued, running and finished \
             campaign — even after kill -9.")
  in
  let queue_depth =
    Arg.(
      value & opt int 16
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission control: submissions beyond $(docv) queued-or-running campaigns are shed \
             with a typed rejection and a retry-after hint; 0 disables.")
  in
  let ttl =
    Arg.(
      value & opt float 30.
      & info [ "lease-ttl" ] ~docv:"SECONDS"
          ~doc:"Shard lease lifetime without a heartbeat, as for $(b,faultmc serve).")
  in
  let wall_budget =
    Arg.(
      value
      & opt duration_conv 0.
      & info [ "wall-budget" ] ~docv:"DURATION"
          ~doc:
            "Park any campaign still unfinished this long after its first lease (it stops \
             consuming the pool; the scheduler lives on). 0 disables.")
  in
  let retry_after =
    Arg.(
      value
      & opt duration_conv 5.
      & info [ "retry-after" ] ~docv:"DURATION"
          ~doc:"Retry hint carried by queue-full rejections.")
  in
  let max_idle =
    Arg.(
      value
      & opt duration_conv 0.
      & info [ "max-idle" ] ~docv:"DURATION"
          ~doc:
            "Exit once the queue has been empty (nothing queued or running) this long; 0 serves \
             forever. Same duration syntax as $(b,--linger) on $(b,serve).")
  in
  let io_deadline =
    Arg.(
      value & opt float 120.
      & info [ "io-deadline" ] ~docv:"SECONDS"
          ~doc:"Per-connection socket read/write deadline.")
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:
         "Run the multi-campaign scheduler: a durable WAL-backed submission queue leasing shards \
          of every active campaign to a shared worker pool, with crash recovery, report caching \
          and overload shedding.")
    Term.(
      const run $ addr $ state_dir $ queue_depth $ ttl $ wall_budget $ retry_after $ max_idle
      $ io_deadline $ audit_rate_arg $ speculate_factor_arg $ chaos_plan_arg "scheduler"
      $ chaos_seed_arg $ chaos_log_arg $ http_port_arg "fleet" $ fleet_trace_out_arg
      $ metrics_out_arg $ trace_out_arg)

let submit_cmd =
  let run benchmark strategy samples seed shard_size sample_budget fault_model list_models addr
      wait timeout json metrics_out trace_out =
    if list_models then begin
      list_fault_models ppf;
      exit 0
    end;
    let model = fault_model_of_arg_or_die fault_model in
    let obs = build_obs ~metrics_out ~trace_out ~progress:`Off in
    let spec =
      spec_of_args
        ~fault_model:(Fmc_fault.Model.canonical model)
        ~benchmark ~strategy ~samples ~seed ~shard_size ~sample_budget ()
    in
    let config = client_config addr in
    match Fmc_dist.Worker.submit ~obs config spec with
    | Error msg ->
        Format.eprintf "faultmc: %s@." msg;
        exit 1
    | Ok (Fmc_dist.Worker.Submit_rejected { retry_after_s; reason }) ->
        (* Typed shed: exit 3 so scripts can tell "try later" from
           real failures, as the retry-after hint suggests. *)
        Format.eprintf "faultmc: submission rejected: %s; retry in %.0fs@." reason retry_after_s;
        exit 3
    | Ok reply -> (
        (match reply with
        | Fmc_dist.Worker.Submit_cached ->
            Format.eprintf "campaign already finished; report is cached@."
        | Fmc_dist.Worker.Submit_queued position ->
            Format.eprintf "queued at position %d@." position
        | Fmc_dist.Worker.Submit_rejected _ -> assert false);
        if not wait then 0
        else begin
          (* Wait for the report on a campaign-scoped connection,
             surfacing queue position and ETA while it is pending. *)
          let last = ref "" in
          let on_pending e =
            let line = Format.asprintf "%a" render_status_entry e in
            if line <> !last then begin
              last := line;
              Format.eprintf "%s@." line
            end
          in
          let fingerprint = Fmc_dist.Protocol.spec_fingerprint spec in
          match
            Fmc_dist.Worker.fetch_report ~obs ~timeout_s:timeout ~on_pending config ~fingerprint
          with
          | Error err ->
              Format.eprintf "faultmc: %s@." (Fmc_dist.Worker.fetch_error_message err);
              exit 1
          | Ok (shards, quarantined, elapsed_s) -> (
              match
                Fmc_dist.Merge.report_of_blobs
                  ~strategy:(Fmc.Sampler.strategy_name strategy)
                  shards
              with
              | Error msg ->
                  Format.eprintf "faultmc: %s@." msg;
                  exit 1
              | Ok report ->
                  let q = List.length quarantined in
                  if q > 0 then Format.eprintf "%d sample(s) quarantined@." q;
                  if json then print_endline (Fmc.Export.report_json report)
                  else begin
                    Format.fprintf ppf "benchmark: %s@.%a@." benchmark.Fmc_isa.Programs.name
                      Fmc.Report.ssf_report report;
                    let lo, hi = Fmc.Ssf.confidence_interval report ~z:1.96 in
                    Format.fprintf ppf "95%% confidence interval: [%.5f, %.5f]@." lo hi;
                    Format.fprintf ppf "campaign wall clock: %.2f s (scheduled)@." elapsed_s
                  end;
                  flush_obs_outputs ~metrics_out ~trace_out obs;
                  0)
        end)
  in
  let wait =
    Arg.(
      value & flag
      & info [ "wait" ]
          ~doc:"Block until the campaign finishes and print its report (like $(b,evaluate)).")
  in
  let timeout =
    Arg.(
      value
      & opt duration_conv 600.
      & info [ "timeout" ] ~docv:"DURATION" ~doc:"Give up waiting after this long (with --wait).")
  in
  let sample_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-budget" ] ~docv:"CYCLES"
          ~doc:"Per-sample RTL cycle budget (part of the campaign identity).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON (with --wait).") in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a campaign to a multi-campaign scheduler. Resubmitting a finished campaign is \
          free: the scheduler answers from its report cache.")
    Term.(
      const run $ benchmark_arg $ strategy_arg $ samples_arg 5000 $ seed_arg $ shard_size_arg
      $ sample_budget $ fault_model_arg $ list_fault_models_flag $ connect_arg "Scheduler"
      $ wait $ timeout $ json $ metrics_out_arg $ trace_out_arg)

let status_cmd =
  let run addr fingerprint =
    let config = client_config addr in
    match Fmc_dist.Worker.sched_status config ~fingerprint with
    | Error msg ->
        Format.eprintf "faultmc: %s@." msg;
        exit 1
    | Ok [] ->
        Format.fprintf ppf "no campaigns@.";
        0
    | Ok entries ->
        List.iter (fun e -> Format.fprintf ppf "%a@." render_status_entry e) entries;
        0
  in
  let fingerprint =
    Arg.(
      value & opt string ""
      & info [ "fingerprint" ] ~docv:"FP"
          ~doc:
            "Show only this campaign (the fingerprint $(b,submit) printed); default lists every \
             campaign in submission order.")
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Show a multi-campaign scheduler's queue, progress and ETAs.")
    Term.(const run $ connect_arg "Scheduler" $ fingerprint)

let cancel_cmd =
  let run benchmark strategy samples seed shard_size sample_budget fault_model addr fingerprint =
    let config = client_config addr in
    let fingerprint =
      match fingerprint with
      | Some fp -> fp
      | None ->
          let model = fault_model_of_arg_or_die fault_model in
          Fmc_dist.Protocol.spec_fingerprint
            (spec_of_args
               ~fault_model:(Fmc_fault.Model.canonical model)
               ~benchmark ~strategy ~samples ~seed ~shard_size ~sample_budget ())
    in
    match Fmc_dist.Worker.cancel config ~fingerprint with
    | Error msg ->
        Format.eprintf "faultmc: %s@." msg;
        exit 1
    | Ok (true, _) ->
        Format.fprintf ppf "cancelled@.";
        0
    | Ok (false, reason) ->
        Format.eprintf "faultmc: not cancelled: %s@." reason;
        exit 1
  in
  let fingerprint =
    Arg.(
      value
      & opt (some string) None
      & info [ "fingerprint" ] ~docv:"FP"
          ~doc:
            "Cancel by exact fingerprint instead of recomputing it from the campaign-identity \
             options.")
  in
  let sample_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-budget" ] ~docv:"CYCLES"
          ~doc:"Per-sample RTL cycle budget (part of the campaign identity).")
  in
  Cmd.v
    (Cmd.info "cancel"
       ~doc:
         "Cancel a queued or running campaign on a multi-campaign scheduler. Resubmitting the \
          same spec later starts it from scratch.")
    Term.(
      const run $ benchmark_arg $ strategy_arg $ samples_arg 5000 $ seed_arg $ shard_size_arg
      $ sample_budget $ fault_model_arg $ connect_arg "Scheduler" $ fingerprint)

(* matrix — cross-model campaign sweep *)

let matrix_cmd =
  let run models_csv benchmarks_csv strategies_csv samples seed shard_size fast json report_dir
      connect list_models =
    if list_models then begin
      list_fault_models ppf;
      exit 0
    end;
    let split csv =
      List.filter (fun s -> s <> "") (List.map String.trim (String.split_on_char ',' csv))
    in
    (* Comma also separates model parameters, so model specs are split
       on '+' instead: "seu-burst:bits=4+instr-skip". *)
    let split_models csv =
      List.filter (fun s -> s <> "") (List.map String.trim (String.split_on_char '+' csv))
    in
    let models = List.map fault_model_of_arg_or_die (split_models models_csv) in
    let benchmarks =
      List.map
        (fun name ->
          match benchmark_of_name name with
          | Some b -> b
          | None ->
              Format.eprintf "faultmc: unknown benchmark %S@." name;
              exit 2)
        (split benchmarks_csv)
    in
    let strategies =
      List.map
        (fun name ->
          match strategy_of_name name with
          | Some s -> s
          | None ->
              Format.eprintf "faultmc: unknown strategy %S@." name;
              exit 2)
        (split strategies_csv)
    in
    if models = [] || benchmarks = [] || strategies = [] then begin
      prerr_endline "faultmc: matrix needs at least one model, benchmark and strategy";
      exit 2
    end;
    let samples = if fast then min samples 300 else samples in
    let shard_size = if fast then min shard_size 100 else shard_size in
    Option.iter
      (fun d -> try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
      report_dir;
    let cells =
      List.concat_map
        (fun (m : Fmc_fault.Model.t) ->
          List.concat_map
            (fun b -> List.map (fun s -> (m, b, s)) strategies)
            benchmarks)
        models
    in
    (* Each cell is exactly an `evaluate --shard-size` campaign (same
       spec → same bytes), locally or through a scheduler's pool. *)
    let eval_cell =
      match connect with
      | Some addr ->
          let config = client_config addr in
          fun (model, benchmark, strategy) ->
            let spec =
              spec_of_args
                ~fault_model:(Fmc_fault.Model.canonical model)
                ~benchmark ~strategy ~samples ~seed ~shard_size ~sample_budget:None ()
            in
            let fail msg =
              Format.eprintf "faultmc: %s@." msg;
              exit 1
            in
            (match Fmc_dist.Worker.submit config spec with
            | Error msg -> fail msg
            | Ok (Fmc_dist.Worker.Submit_rejected { retry_after_s; reason }) ->
                Format.eprintf "faultmc: submission rejected: %s; retry in %.0fs@." reason
                  retry_after_s;
                exit 3
            | Ok _ -> ());
            let fingerprint = Fmc_dist.Protocol.spec_fingerprint spec in
            (match Fmc_dist.Worker.fetch_report config ~fingerprint with
            | Error err -> fail (Fmc_dist.Worker.fetch_error_message err)
            | Ok (shards, quarantined, elapsed_s) -> (
                match
                  Fmc_dist.Merge.report_of_blobs
                    ~strategy:(Fmc.Sampler.strategy_name strategy)
                    shards
                with
                | Error msg -> fail msg
                | Ok report -> (report, List.length quarantined, elapsed_s)))
      | None ->
          let ctx = lazy (Fmc.Experiments.context ()) in
          fun (model, benchmark, strategy) ->
            let engine, prep = prepared (Lazy.force ctx) benchmark strategy in
            let result =
              Fmc.Campaign.estimate_sharded ?inject:model.Fmc_fault.Model.inject engine prep
                ~samples ~seed ~shard_size
            in
            ( result.Fmc.Campaign.report,
              List.length result.Fmc.Campaign.quarantined,
              result.Fmc.Campaign.elapsed_s )
    in
    let rows =
      List.map
        (fun ((model, benchmark, strategy) as cell) ->
          let report, quarantined, elapsed_s = eval_cell cell in
          (match report_dir with
          | None -> ()
          | Some dir ->
              (* The per-cell report, verbatim Export.report_json bytes —
                 what CI diffs against `evaluate --shard-size --json`. *)
              let path =
                Filename.concat dir
                  (Printf.sprintf "%s-%s-%s.json"
                     (Fmc_fault.Model.metric_name model)
                     benchmark.Fmc_isa.Programs.name
                     (Fmc.Sampler.strategy_name strategy))
              in
              write_file path (Fmc.Export.report_json report ^ "\n");
              Format.eprintf "wrote %s@." path);
          (model, benchmark, strategy, report, quarantined, elapsed_s))
        cells
    in
    if json then begin
      let buf = Buffer.create 2048 in
      let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      pr "{\"schema\":\"faultmc-matrix-v1\",\"samples\":%d,\"seed\":%d,\"shard_size\":%d,\"rows\":["
        samples seed shard_size;
      List.iteri
        (fun i (model, benchmark, strategy, (report : Fmc.Ssf.report), quarantined, elapsed_s) ->
          if i > 0 then pr ",";
          let lo, hi = Fmc.Ssf.confidence_interval report ~z:1.96 in
          pr
            "{\"model\":\"%s\",\"benchmark\":\"%s\",\"strategy\":\"%s\",\"ssf\":%.8f,\"ci95\":[%.8f,%.8f],\"samples\":%d,\"successes\":%d,\"ess\":%.2f,\"quarantined\":%d,\"elapsed_s\":%.6f}"
            (Fmc_obs.Jsonx.escape (Fmc_fault.Model.canonical model))
            (Fmc_obs.Jsonx.escape benchmark.Fmc_isa.Programs.name)
            (Fmc_obs.Jsonx.escape (Fmc.Sampler.strategy_name strategy))
            report.Fmc.Ssf.ssf lo hi report.Fmc.Ssf.n report.Fmc.Ssf.successes
            report.Fmc.Ssf.ess quarantined elapsed_s)
        rows;
      pr "]}";
      print_endline (Buffer.contents buf)
    end
    else begin
      Format.fprintf ppf "%-24s %-10s %-10s %10s %21s %7s %9s@." "model" "benchmark" "strategy"
        "ssf" "ci95" "n" "ess";
      List.iter
        (fun (model, benchmark, strategy, (report : Fmc.Ssf.report), quarantined, elapsed_s) ->
          let lo, hi = Fmc.Ssf.confidence_interval report ~z:1.96 in
          Format.fprintf ppf "%-24s %-10s %-10s %10.5f [%9.5f,%9.5f] %7d %9.1f"
            (Fmc_fault.Model.canonical model)
            benchmark.Fmc_isa.Programs.name
            (Fmc.Sampler.strategy_name strategy)
            report.Fmc.Ssf.ssf lo hi report.Fmc.Ssf.n report.Fmc.Ssf.ess;
          if quarantined > 0 then Format.fprintf ppf "  (%d quarantined)" quarantined;
          Format.fprintf ppf "  %.2fs@." elapsed_s)
        rows
    end;
    0
  in
  let models_csv =
    Arg.(
      value
      & opt string "disc-transient+seu-burst+instr-skip+double-strike"
      & info [ "models" ] ~docv:"MODELS"
          ~doc:
            "'+'-separated fault models to sweep, each NAME or NAME:k=v,... (default: all four \
             registered models). See $(b,--list-fault-models).")
  in
  let benchmarks_csv =
    Arg.(
      value & opt string "write,read"
      & info [ "benchmarks" ] ~docv:"NAMES" ~doc:"Comma-separated benchmarks to sweep.")
  in
  let strategies_csv =
    Arg.(
      value & opt string "mixed"
      & info [ "strategies" ] ~docv:"NAMES" ~doc:"Comma-separated sampling strategies to sweep.")
  in
  let fast =
    Arg.(
      value & flag
      & info [ "fast" ]
          ~doc:"CI smoke preset: caps samples at 300 and the shard size at 100 per cell.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the table under the faultmc-matrix-v1 schema.")
  in
  let report_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "report-dir" ] ~docv:"DIR"
          ~doc:
            "Also write each cell's full campaign report (verbatim $(b,evaluate --json) bytes) \
             to DIR/<model>-<benchmark>-<strategy>.json.")
  in
  let connect =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Run each cell through the multi-campaign scheduler at $(docv) (HOST:PORT or \
             unix:PATH) instead of evaluating locally; cells are submitted and collected one at \
             a time.")
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Sweep fault models x benchmarks x strategies in one command: each cell is a full \
          sharded campaign (bit-exact with $(b,evaluate --shard-size)), reported as a per-model \
          SSF/CI table in text or JSON.")
    Term.(
      const run $ models_csv $ benchmarks_csv $ strategies_csv $ samples_arg 2000 $ seed_arg
      $ shard_size_arg $ fast $ json $ report_dir $ connect $ list_fault_models_flag)

(* top — live fleet view over the --http-port scrape endpoint *)

let top_cmd =
  let run addr interval once =
    let host, port =
      match addr with
      | Fmc_dist.Wire.Tcp (h, p) -> (h, p)
      | Fmc_dist.Wire.Unix_path _ ->
          Format.eprintf "faultmc: top polls an HTTP scrape endpoint — use HOST:PORT@.";
          exit 2
    in
    let fetch path = Fmc_obs.Httpd.get ~deadline_s:5. ~host ~port ~path () in
    (* Plain single-value series only (no '{' labels) — enough for the
       handful of fleet gauges/counters top surfaces. *)
    let metric_value body name =
      List.find_map
        (fun line ->
          match String.index_opt line ' ' with
          | Some i
            when String.sub line 0 i = name
                 && (String.length line = 0 || line.[0] <> '#')
                 && not (String.contains (String.sub line 0 i) '{') ->
              float_of_string_opt (String.sub line (i + 1) (String.length line - i - 1))
          | _ -> None)
        (String.split_on_char '\n' body)
    in
    (* An unreachable endpoint is a typed one-line failure (exit 1), not
       a screenful of "unreachable" rows: scripts probing a fleet with
       `top --once` need the distinction, and an interactive top whose
       endpoint vanished has nothing left to watch. *)
    let screen () =
      let b = Buffer.create 1024 in
      let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      let now = Unix.localtime (Unix.gettimeofday ()) in
      add "faultmc top — %s:%d — %02d:%02d:%02d\n\n" host port now.Unix.tm_hour now.Unix.tm_min
        now.Unix.tm_sec;
      (match fetch "/healthz" with
      | Ok (status, body) -> add "health   HTTP %d  %s\n" status (String.trim body)
      | Error msg ->
          Format.eprintf "faultmc: scrape endpoint unreachable at %s:%d: %s@." host port msg;
          exit 1);
      (match fetch "/campaigns.txt" with
      | Ok (200, body) ->
          add "\ncampaigns:\n";
          String.split_on_char '\n' body
          |> List.iter (fun l -> if String.trim l <> "" then add "  %s\n" l)
      | Ok (status, _) -> add "\ncampaigns: HTTP %d\n" status
      | Error msg -> add "\ncampaigns: unreachable (%s)\n" msg);
      (match fetch "/workers.txt" with
      | Ok (200, body) ->
          add "\nworkers:\n";
          String.split_on_char '\n' body
          |> List.iter (fun l -> if String.trim l <> "" then add "  %s\n" l)
      | Ok (status, _) -> add "\nworkers: HTTP %d\n" status
      | Error msg -> add "\nworkers: unreachable (%s)\n" msg);
      (match fetch "/metrics" with
      | Ok (200, body) ->
          let interesting =
            [
              ("fmc_sva_prune_ratio", "prune ratio");
              ("fmc_dist_leasing_paused", "leasing paused");
              ("fmc_dist_reconnects_total", "worker reconnects");
              ("fmc_dist_lease_expirations_total", "lease expiries");
              ("fmc_sched_wal_torn_records_total", "torn WAL records");
            ]
          in
          let found =
            List.filter_map
              (fun (name, label) ->
                Option.map (fun v -> Printf.sprintf "%s %g" label v) (metric_value body name))
              interesting
          in
          if found <> [] then add "\nfleet:   %s\n" (String.concat "  |  " found)
      | Ok _ | Error _ -> ());
      Buffer.contents b
    in
    if once then begin
      print_string (screen ());
      flush stdout;
      0
    end
    else
      let rec loop () =
        (* Clear + home, then repaint in place. *)
        print_string "\027[2J\027[H";
        print_string (screen ());
        flush stdout;
        Unix.sleepf interval;
        loop ()
      in
      loop ()
  in
  let interval =
    Arg.(
      value
      & opt duration_conv 2.
      & info [ "interval" ] ~docv:"DURATION" ~doc:"Refresh period (same syntax as $(b,--linger)).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Print one snapshot and exit instead of refreshing in place.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live fleet view: poll a coordinator's or scheduler's $(b,--http-port) scrape endpoint \
          and show campaign progress, ETAs, per-worker lease/breaker state and fleet gauges, \
          refreshed in place.")
    Term.(const run $ connect_arg "Scrape-endpoint" $ interval $ once)

(* experiments *)

let experiments_cmd =
  let run fast =
    with_context @@ fun ctx ->
    let scale n = if fast then max 200 (n / 10) else n in
    Format.fprintf ppf "%a@.%a@.%a@.%a@.%a@.%a@.%a@." Fmc.Report.fig4 (Fmc.Experiments.fig4 ctx)
      Fmc.Report.fig7
      (Fmc.Experiments.fig7 ~strikes:(scale 3000) ctx)
      Fmc.Report.fig8 (Fmc.Experiments.fig8 ctx) Fmc.Report.fig9
      (Fmc.Experiments.fig9 ~samples:(scale 10_000) ctx)
      Fmc.Report.fig10
      (Fmc.Experiments.fig10 ~samples:(scale 8000) ctx)
      Fmc.Report.fig11
      (Fmc.Experiments.fig11 ~samples:(scale 4000) ctx)
      Fmc.Report.headline
      (Fmc.Experiments.headline ~samples:(scale 10_000) ctx)
  in
  let fast = Arg.(value & flag & info [ "fast" ] ~doc:"Reduced sample counts (smoke test).") in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate every figure and table of the paper's evaluation.")
    Term.(const run $ fast)

let () =
  let doc = "cross-level Monte Carlo fault-attack vulnerability evaluation" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit (Cmd.eval' (Cmd.group ~default (Cmd.info "faultmc" ~version:"1.0.0" ~doc)
    [ info_cmd; evaluate_cmd; characterize_cmd; sweep_cmd; harden_cmd; lint_cmd; sva_cmd;
      bench_cmd; matrix_cmd; serve_cmd; worker_cmd; sched_cmd; submit_cmd; status_cmd;
      cancel_cmd; top_cmd; trace_cmd; dot_cmd; experiments_cmd ]))
