(* Attack-technique sweep: how the intrinsic uncertainty of the attack
   process (temporal accuracy and spatial aim) changes the system's
   vulnerability — the experiment behind Fig. 11 of the paper, here with
   user-controlled sweep points.

   Run: dune exec examples/attack_sweep.exe *)

module Programs = Fmc_isa.Programs

let () =
  let ctx = Fmc.Experiments.context () in
  let engine = Fmc.Experiments.engine_for ctx Programs.illegal_write in
  let placement = Fmc.Engine.placement engine in
  let pre = Fmc.Experiments.precharac ctx in
  let base = Fmc.Experiments.default_attack ctx in
  let samples = 3000 in

  let ssf attack =
    let prep = Fmc.Sampler.prepare Fmc.Sampler.Random attack pre ~placement in
    (Fmc.Ssf.estimate engine prep ~samples ~seed:7).Fmc.Ssf.ssf
  in

  (* Sweep 1: temporal accuracy. The attacker wants to inject one cycle
     before the malicious access (t = 1); a less accurate technique spreads
     the injection over a window centered there, wasting the shots that
     land after the target. *)
  Format.printf "== temporal accuracy (window width -> SSF) ==@.";
  List.iter
    (fun w ->
      let lo = 1 - (w / 2) in
      let attack = { base with Fmc.Attack.temporal = Fmc.Dist.Uniform_int (lo, lo + w - 1) } in
      Format.printf "  window %3d cycles : SSF %.4f@." w (ssf attack))
    [ 1; 5; 20; 50; 100 ];

  (* Sweep 2: spatial accuracy. From a blind uniform aim over the die block
     down to a perfectly aimed shot at the most vulnerable register the
     pre-characterization identified. *)
  let net = (Fmc.Experiments.circuit ctx).Fmc_cpu.Circuit.net in
  let vuln = Fmc.Engine.static_vulnerable engine in
  let target =
    match List.find_opt vuln (Array.to_list (Fmc_netlist.Netlist.dffs net)) with
    | Some d -> d
    | None -> failwith "no statically vulnerable register found"
  in
  let group, bit = Fmc_netlist.Netlist.dff_group net target in
  Format.printf "== spatial accuracy (aim -> SSF); best target: %s[%d] ==@." group bit;
  List.iter
    (fun (label, spatial) ->
      let attack = { base with Fmc.Attack.spatial = spatial } in
      Format.printf "  %-12s : SSF %.4f@." label (ssf attack))
    [
      ("uniform", base.Fmc.Attack.spatial);
      ("1/8 block", Fmc.Attack.Uniform_cells (Fmc.Attack.block_around placement ~roots:[ target ] ~fraction:0.0625));
      ("delta", Fmc.Attack.Delta_cell target);
    ];

  (* Sweep 3: radiation spot size. *)
  Format.printf "== radiation radius (cell pitches -> SSF) ==@.";
  List.iter
    (fun (lo, hi) ->
      let attack = { base with Fmc.Attack.radius = Fmc.Dist.Uniform_float (lo, hi) } in
      Format.printf "  r in [%.1f, %.1f] : SSF %.4f@." lo hi (ssf attack))
    [ (0., 0.9); (0.8, 2.2); (2., 4.) ]
