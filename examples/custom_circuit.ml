(* Using the framework's substrate layers on your own circuit.

   The bundled processor is just one system; every layer underneath —
   structural HDL, cycle simulation, placement, voltage-transient injection,
   cone analysis — is generic. This example builds a small "password
   unlock" block from scratch and measures how likely a radiation strike is
   to force the sticky [unlocked] flag:

     unlocked <- unlocked OR (attempt == SECRET)

   Run: dune exec examples/custom_circuit.exe *)

module Hdl = Fmc_hdl.Hdl
module Vec = Fmc_hdl.Vec
module N = Fmc_netlist.Netlist
module Sim = Fmc_gatesim.Cycle_sim
module Transient = Fmc_gatesim.Transient
module Placement = Fmc_layout.Placement
module Cone = Fmc_netlist.Cone
module Rng = Fmc_prelude.Rng

let secret = 0xB5A3

let () =
  (* 1. Describe the circuit structurally. *)
  let ctx = Hdl.create () in
  let attempt = Hdl.input ctx "attempt" 16 in
  let unlocked = Hdl.reg ctx ~group:"unlocked" ~width:1 ~init:0 in
  let matched = Vec.eq attempt (Vec.of_int ctx ~width:16 secret) in
  let next = Hdl.(q unlocked).(0) |> fun q -> Hdl.( |: ) q matched in
  Hdl.connect unlocked [| next |];
  Hdl.output1 ctx "unlocked" Hdl.(q unlocked).(0);
  let net = Hdl.elaborate ctx in
  Format.printf "%a@." N.pp_summary net;

  (* 2. The security-critical cone: what feeds the unlock decision? *)
  let flag_dff = (N.register_group net "unlocked").(0) in
  let cone = Cone.fanin net ~roots:[ N.dff_d net flag_dff ] in
  Format.printf "unlock cone: %d gates, %d frontier registers, %d inputs@."
    (Array.length cone.Cone.gates)
    (Array.length cone.Cone.registers)
    (Array.length cone.Cone.inputs);

  (* 3. Place the netlist and inject transients: how often does a random
     strike force the flag high while a wrong password is applied? *)
  let placement = Placement.place ~seed:3 net in
  let config = Transient.default_config net in
  let sim = Sim.create net in
  Sim.set_input_bus sim (Hdl.input_bus net "attempt" 16) 0x1234 (* wrong password *);
  Sim.eval_comb sim;
  let rng = Rng.create 9 in
  let cells = Placement.cells placement in
  let trials = 20_000 in
  let forced = ref 0 in
  for _ = 1 to trials do
    let center = Rng.choose rng cells in
    let strikes =
      Array.to_list (Placement.within placement ~center ~radius:1.5)
      |> List.filter_map (fun c ->
             match N.kind net c with
             | Fmc_netlist.Kind.Gate _ ->
                 Some
                   {
                     Transient.node = c;
                     time = Rng.float rng config.Transient.clock_period;
                     width = 100. +. Rng.float rng 250.;
                   }
             | _ -> None)
    in
    let result = Transient.inject sim config ~strikes in
    (* The flag latches a wrong value => unauthorized unlock. A direct
       strike on the flag cell itself flips it too. *)
    let direct_hit =
      Array.exists (fun c -> c = flag_dff) (Placement.within placement ~center ~radius:1.5)
    in
    if Array.mem flag_dff result.Transient.latched || direct_hit then incr forced
  done;
  Format.printf "unauthorized unlock probability per strike: %.4f (%d / %d)@."
    (float_of_int !forced /. float_of_int trials)
    !forced trials;

  (* 4. Compare against a hardened variant: triplicated comparator with a
     majority vote (classic TMR on the decision logic). *)
  let ctx = Hdl.create () in
  let attempt = Hdl.input ctx "attempt" 16 in
  let unlocked = Hdl.reg ctx ~group:"unlocked" ~width:1 ~init:0 in
  let vote =
    let m () = Vec.eq attempt (Vec.of_int ctx ~width:16 secret) in
    let a = m () and b = m () and c = m () in
    Hdl.(a &: b |: (b &: c) |: (a &: c))
  in
  Hdl.connect unlocked [| Hdl.( |: ) (Hdl.q unlocked).(0) vote |];
  Hdl.output1 ctx "unlocked" (Hdl.q unlocked).(0);
  let net2 = Hdl.elaborate ctx in
  let placement2 = Placement.place ~seed:3 net2 in
  let config2 = Transient.default_config net2 in
  let sim2 = Sim.create net2 in
  Sim.set_input_bus sim2 (Hdl.input_bus net2 "attempt" 16) 0x1234;
  Sim.eval_comb sim2;
  let flag2 = (N.register_group net2 "unlocked").(0) in
  let cells2 = Placement.cells placement2 in
  let forced2 = ref 0 in
  for _ = 1 to trials do
    let center = Rng.choose rng cells2 in
    let disc = Placement.within placement2 ~center ~radius:1.5 in
    let strikes =
      Array.to_list disc
      |> List.filter_map (fun c ->
             match N.kind net2 c with
             | Fmc_netlist.Kind.Gate _ ->
                 Some
                   {
                     Transient.node = c;
                     time = Rng.float rng config2.Transient.clock_period;
                     width = 100. +. Rng.float rng 250.;
                   }
             | _ -> None)
    in
    let result = Transient.inject sim2 config2 ~strikes in
    if Array.mem flag2 result.Transient.latched || Array.exists (fun c -> c = flag2) disc then
      incr forced2
  done;
  Format.printf "with TMR comparator: %.4f (%d / %d)@."
    (float_of_int !forced2 /. float_of_int trials)
    !forced2 trials
