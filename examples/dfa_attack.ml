(* Scenario 2 of the paper's attack model: information leakage.

   The attacker encrypts a known plaintext on the TOYSPN crypto core while
   striking the die with radiation (Te = injection during the encryption,
   Tt = observation of the faulty ciphertext). Each faulty ciphertext that
   is consistent with a single-bit perturbation of the last S-box layer
   narrows the whitening-key candidates (classic last-round DFA); enough of
   them recover the full master key.

   Reported numbers:
   - leakage SSF: the probability that one random strike yields a
     DFA-usable faulty ciphertext (the scenario-2 analogue of the MPU
     benchmark's SSF);
   - attack cost: how many strikes the full key recovery needed.

   Run: dune exec examples/dfa_attack.exe *)

module Cipher = Fmc_crypto.Cipher
module Circuit = Fmc_crypto.Core_circuit
module Harness = Fmc_crypto.Harness
module Dfa = Fmc_crypto.Dfa
module Transient = Fmc_gatesim.Transient
module Placement = Fmc_layout.Placement
module N = Fmc_netlist.Netlist
module Rng = Fmc_prelude.Rng

let () =
  let circuit = Circuit.build () in
  Format.printf "%a@." N.pp_summary circuit.Circuit.net;
  let harness = Harness.create circuit in
  let key = 0x7E57 and pt = 0x1234 in
  let correct = Cipher.encrypt ~key pt in
  assert (Harness.encrypt harness ~key pt = correct);
  Format.printf "plaintext %04x, correct ciphertext %04x (key hidden from the attacker)@.@." pt
    correct;

  let placement = Placement.place ~seed:2 circuit.Circuit.net in
  let config = Transient.default_config circuit.Circuit.net in
  let cells = Placement.cells placement in
  let rng = Rng.create 11 in

  (* Phase 1: blind strikes anywhere on the die, any cycle of the
     encryption — measure the leakage probability. *)
  let trials = 8000 in
  let informative = ref 0 and corrupted = ref 0 in
  for _ = 1 to trials do
    let center = Rng.choose rng cells in
    let strikes =
      Array.to_list (Placement.within placement ~center ~radius:(0.8 +. Rng.float rng 1.4))
      |> List.map (fun node ->
             {
               Transient.node;
               time = Rng.float rng config.Transient.clock_period;
               width = 100. +. Rng.float rng 250.;
             })
    in
    let cycle = 1 + Rng.int rng Cipher.rounds in
    let faulty = Harness.encrypt_with_strikes harness ~key ~plaintext:pt ~cycle ~strikes config in
    if faulty <> correct then incr corrupted;
    if Dfa.informative ~correct ~faulty then incr informative
  done;
  Format.printf "blind strikes: %d/%d corrupted the ciphertext, %d/%d (%.1f%%) were DFA-usable@."
    !corrupted trials !informative trials
    (100. *. float_of_int !informative /. float_of_int trials);

  (* Phase 2: an informed attacker aims at the last-round xor layer in the
     final cycle and keeps striking until the key falls out. *)
  let xr = Circuit.last_round_xor_gates circuit in
  let st = ref (Dfa.start ~correct) in
  let shots = ref 0 in
  let recovered = ref None in
  while !recovered = None && !shots < 20_000 do
    incr shots;
    let node = Rng.choose rng xr in
    let faulty =
      Harness.encrypt_with_strikes harness ~key ~plaintext:pt ~cycle:Cipher.rounds
        ~strikes:
          [
            {
              Transient.node;
              time = Rng.float rng config.Transient.clock_period;
              width = 120. +. Rng.float rng 200.;
            };
          ]
        config
    in
    if Dfa.informative ~correct ~faulty then st := Dfa.observe !st ~faulty;
    recovered := Dfa.recovered_whitening_key !st
  done;
  (match !recovered with
  | Some wk ->
      Format.printf
        "targeted DFA: whitening key %04x recovered after %d strikes -> master key %04x (truth %04x)@."
        wk !shots (Dfa.master_key_of_whitening wk) key
  | None -> Format.printf "targeted DFA did not converge within %d strikes@." !shots);

  (* The per-nibble candidate narrowing, for the curious. *)
  Array.iteri
    (fun nibble set -> Format.printf "  nibble %d candidates: %d@." nibble (List.length set))
    (Dfa.candidates !st)
