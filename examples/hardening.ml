(* Design-optimization loop: identify the security-critical registers of
   the MPU-protected processor and quantify the hardening trade-off — the
   paper's §6 headline ("3% of registers carry >95% of the SSF; hardening
   them buys ~6.5x security for <2% area").

   Run: dune exec examples/hardening.exe *)


let () =
  let ctx = Fmc.Experiments.context () in
  let engine = Fmc.Experiments.engine_for ctx Fmc_isa.Programs.illegal_write in
  let net = (Fmc.Experiments.circuit ctx).Fmc_cpu.Circuit.net in
  let prepared =
    Fmc.Sampler.prepare
      ~static_vuln:(Fmc.Engine.static_vulnerable engine)
      Fmc.Sampler.default_mixed
      (Fmc.Experiments.default_attack ctx)
      (Fmc.Experiments.precharac ctx)
      ~placement:(Fmc.Engine.placement engine)
  in

  (* Pilot run: attribute successful attacks to the register bits they
     corrupted. *)
  let pilot = Fmc.Ssf.estimate engine prepared ~samples:6000 ~seed:1 in
  Format.printf "baseline SSF: %.4f (%d successes / %d runs)@.@." pilot.Fmc.Ssf.ssf
    pilot.Fmc.Ssf.successes pilot.Fmc.Ssf.n;

  Format.printf "critical register bits (covering 95%% of the success weight):@.";
  List.iter
    (fun ((group, bit), w) -> Format.printf "  %-16s weight %.4f@." (Printf.sprintf "%s[%d]" group bit) w)
    (Fmc.Ssf.contribution_coverage pilot ~fraction:0.95);

  (* Evaluate hardening plans of growing coverage. *)
  Format.printf "@.%-10s %-6s %-10s %-10s %-11s %-9s@." "coverage" "#regs" "SSF before" "SSF after"
    "reduction" "area +%";
  List.iter
    (fun coverage ->
      let plan = Fmc.Harden.default_plan net pilot ~coverage in
      let ev = Fmc.Harden.evaluate engine prepared ~plan ~samples:6000 ~seed:2 in
      Format.printf "%-10.2f %-6d %-10.4f %-10.4f %-11.1f %-9.2f@." coverage
        (Array.length plan.Fmc.Harden.registers)
        ev.Fmc.Harden.baseline.Fmc.Ssf.ssf ev.Fmc.Harden.hardened.Fmc.Ssf.ssf
        ev.Fmc.Harden.ssf_reduction
        (100. *. ev.Fmc.Harden.area_overhead))
    [ 0.5; 0.75; 0.95 ]
