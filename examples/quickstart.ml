(* Quickstart: evaluate the System Security Factor of the bundled
   MPU-protected processor against radiation fault attacks, using the
   paper's full pipeline — pre-characterization, importance sampling and
   cross-level simulation.

   Run: dune exec examples/quickstart.exe *)

let () =
  (* 1. One-time setup: build the processor netlist and pre-characterize it
     (responding-signal cones, switching signatures, error lifetimes). *)
  let ctx = Fmc.Experiments.context () in

  (* 2. An evaluation engine for the illegal-memory-write benchmark: golden
     run with checkpoints, placement, transient timing. *)
  let engine = Fmc.Experiments.engine_for ctx Fmc_isa.Programs.illegal_write in

  (* 3. The attack model f_{T,P}: uniform timing over 50 cycles, radiation
     aimed uniformly at the half of the die around the MPU logic. *)
  let attack = Fmc.Experiments.default_attack ctx in

  (* 4. Prepare the paper's mixed strategy (importance sampling + analytical
     stratum) and estimate SSF from 2000 fault-attack runs. *)
  let prepared =
    Fmc.Sampler.prepare
      ~static_vuln:(Fmc.Engine.static_vulnerable engine)
      Fmc.Sampler.default_mixed attack
      (Fmc.Experiments.precharac ctx)
      ~placement:(Fmc.Engine.placement engine)
  in
  let report = Fmc.Ssf.estimate engine prepared ~samples:2000 ~seed:42 in

  Format.printf "%a@." Fmc.Report.ssf_report report;
  Format.printf "A random strike on this system bypasses the MPU with probability %.3f%%.@."
    (100. *. report.Fmc.Ssf.ssf)
