type severity = Info | Warning | Error

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let severity_compare a b = compare (severity_rank a) (severity_rank b)

let severity_to_string = function Info -> "info" | Warning -> "warn" | Error -> "error"

let severity_of_string s =
  match String.lowercase_ascii s with
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

type t = {
  pass : string;
  severity : severity;
  message : string;
  nodes : Fmc_netlist.Netlist.node list;
  groups : string list;
  data : (string * float) list;
}

let make ~pass ~severity ?(nodes = []) ?(groups = []) ?(data = []) message =
  { pass; severity; message; nodes; groups; data }

let max_severity = function
  | [] -> None
  | d :: ds ->
      Some
        (List.fold_left
           (fun acc d -> if severity_compare d.severity acc > 0 then d.severity else acc)
           d.severity ds)

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let pp ppf d =
  Format.fprintf ppf "%-5s %-22s %s" (severity_to_string d.severity) d.pass d.message;
  if d.nodes <> [] then
    Format.fprintf ppf " [nodes: %s]"
      (String.concat ", " (List.map string_of_int d.nodes));
  if d.groups <> [] then Format.fprintf ppf " [groups: %s]" (String.concat ", " d.groups)

(* Minimal JSON rendering, mirroring [Fmc.Export]: every emitted string is a
   pass name, group name or a message we format ourselves, so escaping is a
   formality. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"pass\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"" (json_escape d.pass)
       (severity_to_string d.severity) (json_escape d.message));
  Buffer.add_string buf ",\"nodes\":[";
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int n))
    d.nodes;
  Buffer.add_string buf "],\"groups\":[";
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape g)))
    d.groups;
  Buffer.add_char buf ']';
  if d.data <> [] then begin
    Buffer.add_string buf ",\"data\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%.8g" (json_escape k) v))
      d.data;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf
