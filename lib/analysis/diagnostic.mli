(** Findings emitted by static-analysis passes.

    A diagnostic ties a human-readable message to its provenance in the
    netlist: the offending node ids and the register-group names involved,
    plus optional numeric facts (used by certificate-style passes whose
    JSON output is consumed by other tools and by the cross-check tests). *)

type severity = Info | Warning | Error

val severity_compare : severity -> severity -> int
(** Orders [Info < Warning < Error]. *)

val severity_to_string : severity -> string
(** ["info"], ["warn"], ["error"]. *)

val severity_of_string : string -> severity option
(** Accepts the {!severity_to_string} forms plus ["warning"],
    case-insensitively. *)

type t = {
  pass : string;  (** name of the pass that produced the finding *)
  severity : severity;
  message : string;
  nodes : Fmc_netlist.Netlist.node list;  (** offending node ids, if any *)
  groups : string list;  (** register groups involved, if any *)
  data : (string * float) list;  (** machine-readable facts (certificates) *)
}

val make :
  pass:string ->
  severity:severity ->
  ?nodes:Fmc_netlist.Netlist.node list ->
  ?groups:string list ->
  ?data:(string * float) list ->
  string ->
  t

val max_severity : t list -> severity option
(** [None] on an empty list. *)

val count : severity -> t list -> int

val pp : Format.formatter -> t -> unit
(** One finding, single line plus optional provenance suffix. *)

val to_json : t -> string
(** One finding as a JSON object. *)
