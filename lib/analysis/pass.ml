type target = {
  name : string;
  net : Fmc_netlist.Netlist.t;
  responding : Fmc_netlist.Netlist.node list;
}

let target ?(responding = []) ~name net = { name; net; responding }

let roots t =
  match t.responding with
  | [] -> List.map snd (Fmc_netlist.Netlist.outputs t.net)
  | rs -> rs

type t = {
  name : string;
  doc : string;
  default_severity : Diagnostic.severity;
  run : target -> Diagnostic.t list;
}

let run p target = p.run target
