(** The pass interface of the static-analysis framework.

    A pass is a pure function from an analysis {!target} (a frozen netlist
    plus the security metadata the netlist itself does not carry) to a list
    of {!Diagnostic.t}. Passes must not mutate the netlist and must be
    deterministic: the lint CLI and CI depend on reproducible output. *)

type target = {
  name : string;  (** display name, e.g. ["cpu"] or ["crypto"] *)
  net : Fmc_netlist.Netlist.t;
  responding : Fmc_netlist.Netlist.node list;
      (** roots of the security cones (paper §4, Observation 1): the
          responding signals whose fan-in/fan-out cones bound where a fault
          can affect SSF. May be empty when the target has no designated
          security mechanism; cone-based passes then fall back to the
          primary outputs. *)
}

val target :
  ?responding:Fmc_netlist.Netlist.node list -> name:string -> Fmc_netlist.Netlist.t -> target

val roots : target -> Fmc_netlist.Netlist.node list
(** [responding] if non-empty, otherwise the primary-output nodes. *)

type t = {
  name : string;  (** unique registry key, kebab-case *)
  doc : string;  (** one-line description shown by [faultmc lint --list] *)
  default_severity : Diagnostic.severity;
      (** severity of this pass's ordinary findings (certificate passes may
          additionally emit [Error] findings for outright violations) *)
  run : target -> Diagnostic.t list;
}

val run : t -> target -> Diagnostic.t list
(** Run one pass; diagnostics are returned in a deterministic order. *)
