let all = Structural.all @ Security.all @ Sva_passes.all

let find name = List.find_opt (fun p -> p.Pass.name = name) all

let names () = List.map (fun p -> p.Pass.name) all

let select = function
  | [] -> Ok all
  | requested ->
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | name :: rest -> (
            match find name with
            | Some p -> resolve (p :: acc) rest
            | None ->
                Error
                  (Printf.sprintf "unknown pass %S (available: %s)" name
                     (String.concat ", " (names ()))))
      in
      resolve [] requested
