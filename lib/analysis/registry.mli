(** The pass registry: every pass the lint driver knows about.

    Order is significant only for reporting (structural lints first, then
    the security analyses); passes are independent of each other. *)

val all : Pass.t list

val find : string -> Pass.t option
(** Look up a pass by its registry name. *)

val names : unit -> string list
(** Registry names, in registry order. *)

val select : string list -> (Pass.t list, string) result
(** Resolve a list of pass names; [Error] names the first unknown pass and
    the valid names. An empty selection means every pass. *)
