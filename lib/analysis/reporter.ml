module D = Diagnostic

let run passes target = List.concat_map (fun p -> Pass.run p target) passes

let pp_report ppf ~(target : Pass.target) diags =
  Format.fprintf ppf "@[<v>lint: target %s (%d nodes, %d flip-flops)@," target.Pass.name
    (Fmc_netlist.Netlist.num_nodes target.Pass.net)
    (Array.length (Fmc_netlist.Netlist.dffs target.Pass.net));
  List.iter (fun d -> Format.fprintf ppf "  %a@," D.pp d) diags;
  Format.fprintf ppf "  %d error(s), %d warning(s), %d info@]" (D.count D.Error diags)
    (D.count D.Warning diags) (D.count D.Info diags)

let to_json ~(target : Pass.target) diags =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"target\":\"%s\",\"nodes\":%d,\"flip_flops\":%d,\"diagnostics\":["
       target.Pass.name
       (Fmc_netlist.Netlist.num_nodes target.Pass.net)
       (Array.length (Fmc_netlist.Netlist.dffs target.Pass.net)));
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (D.to_json d))
    diags;
  Buffer.add_string buf
    (Printf.sprintf "],\"summary\":{\"error\":%d,\"warn\":%d,\"info\":%d}}"
       (D.count D.Error diags) (D.count D.Warning diags) (D.count D.Info diags));
  Buffer.contents buf

let exceeds ~fail_on diags =
  List.exists (fun d -> D.severity_compare d.D.severity fail_on >= 0) diags

let exit_code ~fail_on diags = if exceeds ~fail_on diags then 1 else 0
