(** Driving passes over a target and rendering the findings.

    Exit-code convention (used by [faultmc lint] and CI): [0] when no
    diagnostic reaches the [fail_on] severity, [1] otherwise; argument
    errors use the CLI's own codes. *)

val run : Pass.t list -> Pass.target -> Diagnostic.t list
(** Run the passes in order and concatenate their findings. *)

val pp_report : Format.formatter -> target:Pass.target -> Diagnostic.t list -> unit
(** Human-readable report: header, one line per finding, severity totals. *)

val to_json : target:Pass.target -> Diagnostic.t list -> string
(** [{"target":..., "nodes":..., "diagnostics":[...], "summary":{...}}]. *)

val exceeds : fail_on:Diagnostic.severity -> Diagnostic.t list -> bool
(** True when some finding is at least as severe as [fail_on]. *)

val exit_code : fail_on:Diagnostic.severity -> Diagnostic.t list -> int
(** [1] when {!exceeds}, else [0]. *)
