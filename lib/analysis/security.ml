module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind
module Cone = Fmc_netlist.Cone
module Tmr = Fmc_netlist.Tmr
module D = Diagnostic

(* ------------------------------------------------------------------ *)
(* Coverage certificate *)

(* Backward sequential closure: registers that can influence [roots] within
   [depth] cycles ([None] = any number: iterate to the fixpoint). Each round
   roots the single-cycle fan-in cone at the D drivers of the registers
   found in the previous round. *)
let backward_closure ?depth net ~roots =
  let visible = Hashtbl.create 64 in
  let frontier = ref roots in
  let rounds = ref 0 in
  while !frontier <> [] && (match depth with Some d -> !rounds < d | None -> true) do
    incr rounds;
    let cone = Cone.fanin net ~roots:!frontier in
    let fresh =
      Array.to_list cone.Cone.registers |> List.filter (fun r -> not (Hashtbl.mem visible r))
    in
    List.iter (fun r -> Hashtbl.replace visible r ()) fresh;
    frontier := List.map (N.dff_d net) fresh
  done;
  visible

(* Forward dual: registers that [roots] can influence. [Cone.fanout] spreads
   through a register root's consumers directly, so the next round roots at
   the fresh registers themselves. *)
let forward_closure ?depth net ~roots =
  let visible = Hashtbl.create 64 in
  let frontier = ref roots in
  let rounds = ref 0 in
  while !frontier <> [] && (match depth with Some d -> !rounds < d | None -> true) do
    incr rounds;
    let cone = Cone.fanout net ~roots:!frontier in
    let fresh =
      Array.to_list cone.Cone.registers |> List.filter (fun r -> not (Hashtbl.mem visible r))
    in
    List.iter (fun r -> Hashtbl.replace visible r ()) fresh;
    frontier := fresh
  done;
  visible

let visible_registers ?fanin_depth ?fanout_depth net ~roots =
  let bwd = backward_closure ?depth:fanin_depth net ~roots in
  let fwd = forward_closure ?depth:fanout_depth net ~roots in
  N.dffs net |> Array.to_list
  |> List.filter (fun r -> Hashtbl.mem bwd r || Hashtbl.mem fwd r)
  |> Array.of_list

type coverage = { group : string; total : int; invisible : int }

let coverage (t : Pass.target) =
  let net = t.Pass.net in
  let visible = visible_registers net ~roots:(Pass.roots t) in
  let vis = Hashtbl.create (Array.length visible) in
  Array.iter (fun r -> Hashtbl.replace vis r ()) visible;
  List.map
    (fun (group, members) ->
      let invisible =
        Array.fold_left (fun acc m -> if Hashtbl.mem vis m then acc else acc + 1) 0 members
      in
      { group; total = Array.length members; invisible })
    (N.register_groups net)

let coverage_certificate =
  let run (t : Pass.target) =
    let covs = coverage t in
    let preamble =
      if t.Pass.responding = [] then
        [
          D.make ~pass:"coverage-certificate" ~severity:D.Info
            "target declares no responding signals; certifying against the primary outputs";
        ]
      else []
    in
    let per_group =
      List.map
        (fun c ->
          D.make ~pass:"coverage-certificate" ~severity:D.Info ~groups:[ c.group ]
            ~data:
              [
                ("total", float_of_int c.total);
                ("invisible", float_of_int c.invisible);
                ("fraction_invisible", float_of_int c.invisible /. float_of_int (max 1 c.total));
              ]
            (Printf.sprintf "group %s: %d/%d flip-flops provably SSF-invisible" c.group c.invisible
               c.total))
        covs
    in
    let total = List.fold_left (fun acc c -> acc + c.total) 0 covs in
    let invisible = List.fold_left (fun acc c -> acc + c.invisible) 0 covs in
    let summary =
      D.make ~pass:"coverage-certificate" ~severity:D.Info
        ~data:
          [
            ("total", float_of_int total);
            ("invisible", float_of_int invisible);
            ("fraction_invisible", float_of_int invisible /. float_of_int (max 1 total));
          ]
        (Printf.sprintf
           "certificate: %d/%d flip-flops are outside the responding-signal cones (faults there \
            cannot affect SSF)"
           invisible total)
    in
    preamble @ per_group @ [ summary ]
  in
  {
    Pass.name = "coverage-certificate";
    doc = "per-group count of flip-flops provably outside the responding-signal cones";
    default_severity = D.Info;
    run;
  }

(* ------------------------------------------------------------------ *)
(* TMR verifier *)

let strip_suffix name k =
  let suf = Tmr.voter_suffix k in
  let nl = String.length name and sl = String.length suf in
  if nl > sl && String.sub name (nl - sl) sl = suf then Some (String.sub name 0 (nl - sl))
  else None

let is_shadow name = strip_suffix name 1 <> None || strip_suffix name 2 <> None

(* The AND gate combining exactly copies [a] and [b], if any. *)
let pair_and net a b =
  let want = List.sort compare [ a; b ] in
  Array.to_list (N.fanouts net a)
  |> List.find_opt (fun g ->
         match N.kind net g with
         | K.Gate K.And -> List.sort compare (Array.to_list (N.fanins net g)) = want
         | _ -> false)

let majority_voter net p s1 s2 =
  match (pair_and net p s1, pair_and net p s2, pair_and net s1 s2) with
  | Some ab, Some ac, Some bc -> (
      let want = List.sort compare [ ab; ac; bc ] in
      Array.to_list (N.fanouts net ab)
      |> List.find_opt (fun g ->
             match N.kind net g with
             | K.Gate K.Or -> List.sort compare (Array.to_list (N.fanins net g)) = want
             | _ -> false)
      |> function
      | Some voter -> Some (voter, [ ab; ac; bc ])
      | None -> None)
  | _ -> None

let tmr_verifier =
  let err msg ~nodes ~groups = D.make ~pass:"tmr-verifier" ~severity:D.Error ~nodes ~groups msg in
  let run (t : Pass.target) =
    let net = t.Pass.net in
    let groups = N.register_groups net in
    let find g = List.assoc_opt g groups in
    let is_output i = List.exists (fun (_, o) -> o = i) (N.outputs net) in
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    (* Orphan shadows: a ##tmr copy whose base group is gone. *)
    List.iter
      (fun (name, members) ->
        match (strip_suffix name 1, strip_suffix name 2) with
        | Some base, _ | _, Some base ->
            if find base = None then
              emit
                (err ~nodes:(Array.to_list members) ~groups:[ name ]
                   (Printf.sprintf "shadow group %s has no base group %s" name base))
        | None, None -> ())
      groups;
    List.iter
      (fun (base, primary) ->
        if not (is_shadow base) then
          match (find (base ^ Tmr.voter_suffix 1), find (base ^ Tmr.voter_suffix 2)) with
          | None, None -> ()
          | Some _, None | None, Some _ ->
              emit
                (err ~nodes:(Array.to_list primary) ~groups:[ base ]
                   (Printf.sprintf "group %s has only one shadow copy: not a triplication" base))
          | Some s1, Some s2 ->
              let w = Array.length primary in
              if Array.length s1 <> w || Array.length s2 <> w then
                emit
                  (err ~nodes:(Array.to_list primary) ~groups:[ base ]
                     (Printf.sprintf "group %s: replica widths differ (%d, %d, %d)" base w
                        (Array.length s1) (Array.length s2)))
              else begin
                let clean = ref true in
                for i = 0 to w - 1 do
                  let p = primary.(i) and a = s1.(i) and b = s2.(i) in
                  let bit = Printf.sprintf "%s[%d]" base i in
                  if N.dff_init net a <> N.dff_init net p || N.dff_init net b <> N.dff_init net p
                  then begin
                    clean := false;
                    emit
                      (err ~nodes:[ p; a; b ] ~groups:[ base ]
                         (Printf.sprintf "%s: replica init values differ" bit))
                  end;
                  if N.dff_d net a <> N.dff_d net p || N.dff_d net b <> N.dff_d net p then begin
                    clean := false;
                    emit
                      (err ~nodes:[ p; a; b ] ~groups:[ base ]
                         (Printf.sprintf "%s: replicas do not latch the same D signal" bit))
                  end;
                  match majority_voter net p a b with
                  | None ->
                      clean := false;
                      emit
                        (err ~nodes:[ p; a; b ] ~groups:[ base ]
                           (Printf.sprintf "%s: missing or degenerate 2-of-3 majority voter" bit))
                  | Some (_, voter_ands) ->
                      List.iter
                        (fun copy ->
                          let bypassers =
                            Array.to_list (N.fanouts net copy)
                            |> List.filter (fun g -> not (List.mem g voter_ands))
                          in
                          let exported = is_output copy in
                          if bypassers <> [] || exported then begin
                            clean := false;
                            emit
                              (err ~nodes:(copy :: bypassers) ~groups:[ base ]
                                 (Printf.sprintf
                                    "%s: replica Q consumed outside its voter%s — single point of \
                                     failure bypasses the vote"
                                    bit
                                    (if exported then " (exported as a primary output)" else "")))
                          end)
                        [ p; a; b ]
                done;
                if !clean then
                  emit
                    (D.make ~pass:"tmr-verifier" ~severity:D.Info ~groups:[ base ]
                       ~data:[ ("width", float_of_int w) ]
                       (Printf.sprintf
                          "group %s: true triplication verified (%d bits, independent voters, no \
                           bypass)"
                          base w))
              end)
      groups;
    List.rev !diags
  in
  {
    Pass.name = "tmr-verifier";
    doc = "structural verification of TMR-protected register groups";
    default_severity = D.Error;
    run;
  }

let all = [ coverage_certificate; tmr_verifier ]
