(** Security analyses over the netlist (paper §4, Observation 1).

    {2 Coverage certificate}

    The paper's pre-characterization proves that a fault outside the
    fan-in/fan-out cones of the responding signals cannot affect the System
    Security Factor: it can neither change whether a violation is flagged
    (fan-in side) nor be influenced by the flagging logic (fan-out side).
    The sampler uses this dynamically to restrict its sample space; the
    certificate pass surfaces the same fact as a checkable artifact: for
    each register group, how many flip-flops are {e provably SSF-invisible}
    — outside both the backward and the forward sequential closure of the
    responding signals. The closures iterate {!Fmc_netlist.Cone.fanin} /
    {!Fmc_netlist.Cone.fanout} through the register boundary to a fixpoint,
    so the certificate holds at any attack depth (it is a superset-proof of
    the depth-bounded [Fmc.Precharac] cone).

    {2 TMR verifier}

    Structurally checks a {!Fmc_netlist.Tmr}-protected netlist: every
    register group with shadow copies must be truly triplicated (three
    copies, same width, same init, latching the same D), voted through a
    dedicated 2-of-3 majority voter per bit, with no consumer bypassing the
    voter (a bypass is a single point of failure that voids the
    protection). *)

type coverage = {
  group : string;
  total : int;  (** flip-flops in the group *)
  invisible : int;  (** provably SSF-invisible flip-flops *)
}

val coverage : Pass.target -> coverage list
(** Per-group certificate data, sorted by group name. Uses
    {!Pass.roots} — the responding signals, or the primary outputs when the
    target declares none. *)

val visible_registers :
  ?fanin_depth:int ->
  ?fanout_depth:int ->
  Fmc_netlist.Netlist.t ->
  roots:Fmc_netlist.Netlist.node list ->
  Fmc_netlist.Netlist.node array
(** The union of the backward and forward sequential closures of [roots]:
    every flip-flop a fault must touch (directly or transitively) to affect
    logic observable at the roots. Ascending node order. The optional
    depths bound the number of register-boundary crossings per direction
    (mirroring [Fmc.Precharac]'s [depth]/[fanout_depth]); omitted means
    iterate to the fixpoint, which is what the certificate pass uses. *)

val coverage_certificate : Pass.t
val tmr_verifier : Pass.t

val all : Pass.t list
