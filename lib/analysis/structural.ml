module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind
module D = Diagnostic

let describe net i = Printf.sprintf "%s#%d" (K.to_string (N.kind net i)) i

(* ------------------------------------------------------------------ *)
(* dead-gate *)

let dead_gate =
  let run (t : Pass.target) =
    let net = t.Pass.net in
    let n = N.num_nodes net in
    let useful = Array.make n false in
    let rec mark i =
      if not useful.(i) then begin
        useful.(i) <- true;
        Array.iter mark (N.fanins net i)
      end
    in
    List.iter (fun (_, o) -> mark o) (N.outputs net);
    Array.iter mark (N.dffs net);
    let diags = ref [] in
    Array.iter
      (fun g ->
        if not useful.(g) then
          diags :=
            D.make ~pass:"dead-gate" ~severity:D.Warning ~nodes:[ g ]
              (Printf.sprintf "gate %s has no path to any flip-flop or primary output"
                 (describe net g))
            :: !diags)
      (N.gates net);
    List.rev !diags
  in
  {
    Pass.name = "dead-gate";
    doc = "combinational gates that cannot reach any flip-flop or primary output";
    default_severity = D.Warning;
    run;
  }

(* ------------------------------------------------------------------ *)
(* const-gate: bounded constant propagation + identity folds *)

(* Three-valued evaluation: [None] is unknown, [Some b] a proven constant.
   Shared with the Fmc_sva abstract interpreter. *)
let eval3 = K.eval3

(* If the gate output provably equals one of its fan-ins given the known
   constants, return that fan-in. *)
let identity_fanin kind fanins (vals : bool option array) =
  let unknowns = ref [] in
  Array.iteri (fun i v -> if v = None then unknowns := i :: !unknowns) vals;
  match (kind, !unknowns) with
  | (K.And | K.Or), [ i ] ->
      (* All other fan-ins known and non-controlling, else eval3 was const. *)
      Some fanins.(i)
  | K.Xor, [ i ] ->
      let parity =
        Array.fold_left (fun acc v -> match v with Some b -> acc <> b | None -> acc) false vals
      in
      if not parity then Some fanins.(i) else None
  | K.Buf, _ -> Some fanins.(0)
  | K.Mux, _ -> (
      match vals.(0) with
      | Some sel -> Some (if sel then fanins.(2) else fanins.(1))
      | None -> if fanins.(1) = fanins.(2) then Some fanins.(1) else None)
  | (K.And | K.Or), _ ->
      (* x AND x AND ... x folds to x. *)
      let first = fanins.(0) in
      if Array.for_all (fun f -> f = first) fanins then Some first else None
  | _ -> None

let const_gate =
  let run (t : Pass.target) =
    let net = t.Pass.net in
    let n = N.num_nodes net in
    let value = Array.make n None in
    Array.iter
      (fun c -> match N.kind net c with K.Const v -> value.(c) <- Some v | _ -> ())
      (N.consts net);
    let diags = ref [] in
    Array.iter
      (fun g ->
        match N.kind net g with
        | K.Gate kind -> (
            let fanins = N.fanins net g in
            let vals = Array.map (fun f -> value.(f)) fanins in
            match eval3 kind vals with
            | Some v ->
                value.(g) <- Some v;
                diags :=
                  D.make ~pass:"const-gate" ~severity:D.Warning ~nodes:[ g ]
                    (Printf.sprintf "gate %s always outputs %b" (describe net g) v)
                  :: !diags
            | None -> (
                match identity_fanin kind fanins vals with
                | Some f ->
                    diags :=
                      D.make ~pass:"const-gate" ~severity:D.Info ~nodes:[ g; f ]
                        (Printf.sprintf "gate %s is identity-foldable to its fan-in node %d"
                           (describe net g) f)
                      :: !diags
                | None -> ()))
        | _ -> ())
      (N.gates net);
    List.rev !diags
  in
  {
    Pass.name = "const-gate";
    doc = "constant-driven gates (bounded constant propagation) and identity folds";
    default_severity = D.Warning;
    run;
  }

(* ------------------------------------------------------------------ *)
(* floating-input *)

let floating_input =
  let run (t : Pass.target) =
    let net = t.Pass.net in
    let is_output i = List.exists (fun (_, o) -> o = i) (N.outputs net) in
    let diags = ref [] in
    Array.iter
      (fun i ->
        if Array.length (N.fanouts net i) = 0 && not (is_output i) then
          let name = match N.input_name net i with Some s -> s | None -> Printf.sprintf "#%d" i in
          diags :=
            D.make ~pass:"floating-input" ~severity:D.Warning ~nodes:[ i ]
              (Printf.sprintf "primary input %s drives nothing" name)
            :: !diags)
      (N.inputs net);
    List.rev !diags
  in
  {
    Pass.name = "floating-input";
    doc = "primary inputs that drive no logic and no output";
    default_severity = D.Warning;
    run;
  }

(* ------------------------------------------------------------------ *)
(* unread-register *)

let unread_register =
  let run (t : Pass.target) =
    let net = t.Pass.net in
    let is_output i = List.exists (fun (_, o) -> o = i) (N.outputs net) in
    List.filter_map
      (fun (group, members) ->
        let in_group = Hashtbl.create (Array.length members) in
        Array.iter (fun m -> Hashtbl.replace in_group m ()) members;
        let observable =
          Array.exists
            (fun m ->
              is_output m
              || Array.exists (fun r -> not (Hashtbl.mem in_group r)) (N.fanouts net m))
            members
        in
        if observable then None
        else
          Some
            (D.make ~pass:"unread-register" ~severity:D.Warning ~groups:[ group ]
               ~nodes:(Array.to_list members)
               (Printf.sprintf
                  "register group %s (%d bits) is never read outside itself: write-only state"
                  group (Array.length members))))
      (N.register_groups net)
  in
  {
    Pass.name = "unread-register";
    doc = "register groups whose outputs are consumed by nothing outside the group";
    default_severity = D.Warning;
    run;
  }

(* ------------------------------------------------------------------ *)
(* duplicate-gate *)

let commutative = function
  | K.And | K.Or | K.Nand | K.Nor | K.Xor | K.Xnor -> true
  | K.Not | K.Buf | K.Mux -> false

(* And/Or/Nand/Nor are idempotent: a repeated operand does not change the
   function, so [and(a,a,b)] and [and(a,b)] are the same gate. Xor/Xnor are
   NOT ([xor(a,a,b) = b], a different arity-1 function), so they only get
   the commutative sort. *)
let idempotent = function
  | K.And | K.Or | K.Nand | K.Nor -> true
  | K.Xor | K.Xnor | K.Not | K.Buf | K.Mux -> false

let canonical_operands kind fanins =
  let fanins = Array.copy fanins in
  if commutative kind then Array.sort compare fanins;
  if idempotent kind then
    Array.of_list
      (List.fold_right
         (fun f acc -> match acc with g :: _ when g = f -> acc | _ -> f :: acc)
         (Array.to_list fanins) [])
  else fanins

let duplicate_gate =
  let run (t : Pass.target) =
    let net = t.Pass.net in
    let seen = Hashtbl.create 256 in
    Array.iter
      (fun g ->
        match N.kind net g with
        | K.Gate kind ->
            let fanins = canonical_operands kind (N.fanins net g) in
            let key =
              K.gate_to_string kind ^ ":"
              ^ String.concat "," (List.map string_of_int (Array.to_list fanins))
            in
            let cur = try Hashtbl.find seen key with Not_found -> [] in
            Hashtbl.replace seen key (g :: cur)
        | _ -> ())
      (N.gates net);
    let sets =
      Hashtbl.fold (fun _ nodes acc -> if List.length nodes > 1 then List.rev nodes :: acc else acc)
        seen []
      |> List.sort compare
    in
    List.map
      (fun nodes ->
        let rep = List.hd nodes in
        D.make ~pass:"duplicate-gate" ~severity:D.Info ~nodes
          (Printf.sprintf "%d structurally identical %s gates (representative %s): sharing opportunity"
             (List.length nodes)
             (K.to_string (N.kind net rep))
             (describe net rep)))
      sets
  in
  {
    Pass.name = "duplicate-gate";
    doc = "structurally identical gates that could share one instance";
    default_severity = D.Info;
    run;
  }

(* ------------------------------------------------------------------ *)
(* fanout-hotspot *)

let hotspot_threshold net =
  let cells = Array.append (N.gates net) (N.dffs net) in
  let counts = Array.map (fun c -> float_of_int (Array.length (N.fanouts net c))) cells in
  let n = float_of_int (max 1 (Array.length counts)) in
  let mean = Array.fold_left ( +. ) 0. counts /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. counts /. n
  in
  max 32 (int_of_float (ceil (mean +. (8. *. sqrt var))))

let fanout_hotspot =
  let run (t : Pass.target) =
    let net = t.Pass.net in
    let threshold = hotspot_threshold net in
    let diags = ref [] in
    Array.iter
      (fun c ->
        let fo = Array.length (N.fanouts net c) in
        if fo > threshold then
          diags :=
            D.make ~pass:"fanout-hotspot" ~severity:D.Warning ~nodes:[ c ]
              ~data:[ ("fanout", float_of_int fo); ("threshold", float_of_int threshold) ]
              (Printf.sprintf
                 "cell %s fans out to %d consumers (threshold %d): a single strike has reach the \
                  disc-radius model under-represents"
                 (describe net c) fo threshold)
            :: !diags)
      (Array.append (N.gates net) (N.dffs net));
    List.rev !diags
  in
  {
    Pass.name = "fanout-hotspot";
    doc = "cells whose fan-out count is a statistical outlier for the placement";
    default_severity = D.Warning;
    run;
  }

let all =
  [ dead_gate; const_gate; floating_input; unread_register; duplicate_gate; fanout_hotspot ]
