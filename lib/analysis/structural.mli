(** Structural lint passes: netlist hygiene defects that the frozen-netlist
    validation of [Netlist.of_builder] (connectivity, acyclicity) does not
    catch, but that waste simulation work or distort the fault model.

    - [dead_gate]: combinational gates from which no flip-flop D input and
      no primary output is reachable — dead logic that still gets placed
      and simulated, diluting the radiation-strike sample space.
    - [const_gate]: gates whose output is provably constant under bounded
      constant propagation from the [Const] nodes, plus gates foldable to
      one of their fan-ins (identity folds).
    - [floating_input]: primary inputs driving nothing.
    - [unread_register]: register groups whose flip-flop outputs are never
      consumed — write-only state, invisible to every observable.
    - [duplicate_gate]: structurally identical gates (same kind, same
      fan-in multiset for commutative kinds) — sharing opportunities.
    - [fanout_hotspot]: cells whose fan-out count is a statistical outlier;
      a single strike on such a cell has a reach the disc-radius model
      under-represents (the disc covers neighbours, not the fan-out tree). *)

val dead_gate : Pass.t
val const_gate : Pass.t
val floating_input : Pass.t
val unread_register : Pass.t
val duplicate_gate : Pass.t
val fanout_hotspot : Pass.t

val hotspot_threshold : Fmc_netlist.Netlist.t -> int
(** The fan-out count above which [fanout_hotspot] flags a cell:
    [max 32 (mean + 8 * stddev)] over all placed cells (gates and
    flip-flops). Exposed for the test suite. *)

val all : Pass.t list
(** The passes above, in the order listed. *)
