(* Registry adapters for the Fmc_sva certificate analyses.

   These passes run on a bare netlist target, so they expose the
   workload-independent slice of the certificates: reset-constant logic
   ([sva-const], inputs unconstrained) and cycle-aware observability
   distances ([sva-masking]). The workload-seeded variants — and the
   pruner the certificates feed — live behind [faultmc sva], which has
   the benchmark context a lint target lacks. *)

module N = Fmc_netlist.Netlist
module Seqconst = Fmc_sva.Seqconst
module Window = Fmc_sva.Window
module D = Diagnostic

let sva_const =
  let run (t : Pass.target) =
    let net = t.Pass.net in
    let r = Seqconst.analyze net in
    let stuck = Seqconst.stuck_dffs net r in
    let const_gates = Seqconst.constant_gates net r in
    let summary =
      D.make ~pass:"sva-const" ~severity:D.Info
        ~data:
          [
            ("stuck_dff_bits", float_of_int (List.length stuck));
            ("constant_gates", float_of_int (List.length const_gates));
            ("iterations", float_of_int r.Seqconst.iterations);
          ]
        (Printf.sprintf
           "sequential constant propagation: %d flip-flop bits and %d gates provably hold their \
            reset-derived value at every cycle (%d fixpoint rounds)"
           (List.length stuck) (List.length const_gates) r.Seqconst.iterations)
    in
    let per_group =
      List.filter_map
        (fun (group, members) ->
          let n =
            Array.fold_left
              (fun acc m -> if Seqconst.constant r m <> None then acc + 1 else acc)
              0 members
          in
          if n = 0 then None
          else
            Some
              (D.make ~pass:"sva-const" ~severity:D.Info ~groups:[ group ]
                 ~data:[ ("stuck_bits", float_of_int n) ]
                 (Printf.sprintf
                    "register group %s: %d/%d bits stuck at reset value — faults there can only \
                     matter through transient pulses, never through retained state"
                    group n (Array.length members))))
        (N.register_groups net)
    in
    summary :: per_group
  in
  {
    Pass.name = "sva-const";
    doc = "sequential (multi-cycle) constant propagation: provably stuck registers and gates";
    default_severity = D.Info;
    run;
  }

let sva_masking =
  let run (t : Pass.target) =
    let net = t.Pass.net in
    let win = Window.distances net ~roots:(Pass.roots t) in
    List.map
      (fun (group, members) ->
        match Window.group_distance win members with
        | None ->
            D.make ~pass:"sva-masking" ~severity:D.Info ~groups:[ group ]
              (Printf.sprintf
                 "register group %s can never influence the observables in any number of cycles: \
                  every fault there is provably masked (SSF-invisible)"
                 group)
        | Some d ->
            D.make ~pass:"sva-masking" ~severity:D.Info ~groups:[ group ]
              ~data:[ ("min_cycles_to_observable", float_of_int d) ]
              (Printf.sprintf
                 "register group %s needs >= %d cycle%s to reach an observable: errors injected \
                  with fewer than %d cycles left before halt are provably dead by deadline"
                 group d
                 (if d = 1 then "" else "s")
                 d))
      (N.register_groups net)
  in
  {
    Pass.name = "sva-masking";
    doc = "cycle-aware observability: per-group minimum error-propagation distance to the roots";
    default_severity = D.Info;
    run;
  }

let all = [ sva_const; sva_masking ]
