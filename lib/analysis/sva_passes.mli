(** Registered lint passes backed by the {!Fmc_sva} certificate engine.

    [sva-const] reports sequential (multi-cycle) constant propagation:
    flip-flop bits and gates provably stuck at their reset-derived value
    at every reachable cycle ({!Fmc_sva.Seqconst} with unconstrained
    inputs). [sva-masking] reports the cycle-aware observability
    distances of {!Fmc_sva.Window} per register group — the temporal
    refinement of the coverage certificate's visible/invisible split. *)

val sva_const : Pass.t
val sva_masking : Pass.t
val all : Pass.t list
