(* Untrusted-worker defense: canonical result digests, seeded shard
   audits with quorum arbitration, and the bookkeeping the coordinator
   and scheduler share to quarantine lying workers.

   Like Lease, this module is a pure state machine: no clock, no
   threads, no I/O. The caller (coordinator or scheduler) holds its own
   lock around every call and injects [now]. Audit selection is drawn
   from [Rng.substream ~seed ~shard] where the seed derives from the
   campaign fingerprint, so which shards get audited is a pure function
   of (campaign, audit rate) — restart-stable, and consuming zero
   randomness from the engine's sample streams.

   Lifecycle of one audited shard:

     Clear --accept--> Due [primary]
     Due --lease--> Auditing --complete--> Passed          (digests agree)
                                       \-> Due (2 execs)   (dispute: needs arbiter)
     Due (2 execs) --lease--> Auditing --complete--> Settled + verdict

   A verdict names the minority executions (the liars). The caller
   quarantines those workers and, via [victims], invalidates every
   still-unaudited shard whose accepted result came from a liar. *)

type exec = { ax_worker : string; ax_digest : string }

type slot =
  | Clear
  | Due of exec list
  | Auditing of { execs : exec list; auditor : string; epoch : int; deadline : float }
  | Passed
  | Settled

type config = { rate : float; seed : int64; ttl_s : float }

type t = {
  config : config;
  slots : slot array;
  primaries : (int, exec) Hashtbl.t;
}

let default_ttl_s = 60.

let selected_pure ~rate ~seed ~shard =
  rate > 0.0
  && (rate >= 1.0
     || Fmc_prelude.Rng.float (Fmc_prelude.Rng.substream ~seed ~shard) 1.0 < rate)

let create config ~nshards =
  if config.rate < 0.0 || config.rate > 1.0 then
    invalid_arg "Audit.create: rate must be in [0,1]";
  { config; slots = Array.make (max nshards 0) Clear; primaries = Hashtbl.create 64 }

let rate t = t.config.rate
let selected t ~shard = selected_pure ~rate:t.config.rate ~seed:t.config.seed ~shard

let note_accept t ~shard ~worker ~digest =
  let exec = { ax_worker = worker; ax_digest = digest } in
  Hashtbl.replace t.primaries shard exec;
  if selected t ~shard then (
    t.slots.(shard) <- Due [ exec ];
    true)
  else (
    t.slots.(shard) <- Clear;
    false)

let ran_in execs worker = List.exists (fun e -> e.ax_worker = worker) execs

let next_due t ~worker ~allow_self =
  let n = Array.length t.slots in
  let rec go i =
    if i >= n then None
    else
      match t.slots.(i) with
      | Due execs when allow_self || not (ran_in execs worker) -> Some i
      | _ -> go (i + 1)
  in
  go 0

let lease t ~shard ~auditor ~epoch ~now =
  match t.slots.(shard) with
  | Due execs ->
      t.slots.(shard) <-
        Auditing { execs; auditor; epoch; deadline = now +. t.config.ttl_s }
  | _ -> invalid_arg "Audit.lease: shard is not due for audit"

let audit_epoch t ~shard ~epoch =
  shard >= 0 && shard < Array.length t.slots
  &&
  match t.slots.(shard) with
  | Auditing a -> a.epoch = epoch
  | _ -> false

let heartbeat t ~shard ~epoch ~now =
  match t.slots.(shard) with
  | Auditing a when a.epoch = epoch ->
      t.slots.(shard) <- Auditing { a with deadline = now +. t.config.ttl_s };
      true
  | _ -> false

let release t ~shard ~epoch =
  match t.slots.(shard) with
  | Auditing a when a.epoch = epoch -> t.slots.(shard) <- Due a.execs
  | _ -> ()

let sweep t ~now =
  let expired = ref 0 in
  Array.iteri
    (fun i slot ->
      match slot with
      | Auditing a when a.deadline < now ->
          incr expired;
          t.slots.(i) <- Due a.execs
      | _ -> ())
    t.slots;
  !expired

type verdict = { vd_liars : string list; vd_replace : bool }

let complete t ~shard ~epoch ~worker ~digest =
  match t.slots.(shard) with
  | Auditing a when a.epoch = epoch -> (
      let exec = { ax_worker = worker; ax_digest = digest } in
      let execs = a.execs @ [ exec ] in
      match execs with
      | [ e1; e2 ] ->
          if e1.ax_digest = e2.ax_digest then (
            t.slots.(shard) <- Passed;
            `Pass)
          else (
            (* Two-way disagreement: a third, independent execution
               arbitrates by majority. *)
            t.slots.(shard) <- Due execs;
            `Dispute)
      | [ e1; _; e3 ] ->
          (* The first two executions disagree (else we'd have passed),
             so if the arbiter matches either it holds a 2-of-3
             majority. On a three-way split nobody does; the freshest
             independent execution wins and both earlier executors are
             treated as minority — conservative, since an honest fleet
             can only split three ways if two workers are broken. *)
          let majority = e3.ax_digest in
          let liars =
            List.filter_map
              (fun e ->
                if e.ax_digest <> majority && e.ax_worker <> "" then
                  Some e.ax_worker
                else None)
              execs
          in
          let replace = e1.ax_digest <> majority in
          t.slots.(shard) <- Settled;
          `Verdict { vd_liars = liars; vd_replace = replace }
      | _ -> invalid_arg "Audit.complete: impossible execution count")
  | _ -> `Stale

let invalidate t ~shard =
  t.slots.(shard) <- Clear;
  Hashtbl.remove t.primaries shard

let victims t ~worker =
  Hashtbl.fold
    (fun shard exec acc ->
      if
        exec.ax_worker = worker
        && (match t.slots.(shard) with Passed | Settled -> false | _ -> true)
      then shard :: acc
      else acc)
    t.primaries []
  |> List.sort compare

let pending t =
  Array.fold_left
    (fun acc slot -> match slot with Due _ | Auditing _ -> acc + 1 | _ -> acc)
    0 t.slots

let finished t = pending t = 0

type entry = { au_shard : int; au_worker : string; au_digest : string; au_passed : bool }

let export t =
  let entries = ref [] in
  Hashtbl.iter
    (fun shard exec ->
      let passed =
        match t.slots.(shard) with Passed | Settled -> true | _ -> false
      in
      entries :=
        { au_shard = shard; au_worker = exec.ax_worker; au_digest = exec.ax_digest;
          au_passed = passed }
        :: !entries)
    t.primaries;
  List.sort (fun a b -> compare a.au_shard b.au_shard) !entries

let restore config ~nshards entries =
  let t = create config ~nshards in
  List.iter
    (fun e ->
      if e.au_shard >= 0 && e.au_shard < nshards then (
        let exec = { ax_worker = e.au_worker; ax_digest = e.au_digest } in
        Hashtbl.replace t.primaries e.au_shard exec;
        t.slots.(e.au_shard) <-
          (if e.au_passed then Passed
           else if selected t ~shard:e.au_shard then Due [ exec ]
           else Clear)))
    entries;
  t

module Check = struct
  let result_digest ~tally ~quarantined =
    let buf = Buffer.create (String.length tally + 64) in
    Buffer.add_string buf tally;
    List.iter
      (fun e ->
        Buffer.add_string buf (Fmc.Campaign.quarantine_entry_to_string e);
        Buffer.add_char buf '\n')
      quarantined;
    Fmc.Ssf.Tally.digest_hex (Buffer.contents buf)
end
