(** Untrusted-worker defense for distributed campaigns.

    Three mechanisms, shared by the coordinator ([Fmc_dist]) and the
    multi-campaign scheduler ([Fmc_sched]):

    - {b Result digests} ({!Check.result_digest}): every shard result
      carries an MD5 digest over its canonical tally encoding plus its
      quarantine entries, computed worker-side and recomputed on accept.
      A mismatch is a corrupt frame, charged to the worker's breaker.
    - {b Seeded audits}: a restart-stable fraction of accepted shards
      (drawn from [Rng.substream], zero engine-stream randomness) is
      re-leased to a different worker. Digest disagreement triggers a
      third, arbitrating execution; the minority worker is quarantined
      and its unaudited accepted shards invalidated.
    - {b Bookkeeping for speculation}: audit epochs ride the existing
      lease epoch fence, so a straggler's late result and a speculative
      duplicate resolve exactly like any other stale completion.

    Pure state machine: no clock, threads or I/O. The caller holds its
    own lock around every call and injects [now]. *)

(** One execution of a shard: who ran it, what digest they reported. *)
type exec = { ax_worker : string; ax_digest : string }

type config = {
  rate : float;  (** fraction of accepted shards to audit, in [0,1] *)
  seed : int64;  (** selection seed, derived from the campaign fingerprint *)
  ttl_s : float;  (** audit lease TTL before the obligation is re-offered *)
}

type t

val default_ttl_s : float
(** 60s — matches the coordinator's default shard-lease TTL. *)

val selected_pure : rate:float -> seed:int64 -> shard:int -> bool
(** The bare selection predicate: is [shard] audited under this (rate,
    seed)? Pure and restart-stable; [create]/[restore] use the same
    draw, so a resumed coordinator audits exactly the same shards. *)

val create : config -> nshards:int -> t
(** Raises [Invalid_argument] if [rate] is outside [0,1]. *)

val rate : t -> float
val selected : t -> shard:int -> bool

val note_accept : t -> shard:int -> worker:string -> digest:string -> bool
(** Record the primary (first accepted) execution of [shard]. Returns
    [true] iff the shard is selected for audit — it is now due for
    re-execution by a different worker. Re-noting a shard (after
    {!invalidate}) replaces the primary and re-draws the same
    selection. *)

val next_due : t -> worker:string -> allow_self:bool -> int option
(** Lowest-numbered shard due for audit that [worker] has not already
    executed. [allow_self] lifts the different-worker requirement (used
    when the fleet has only one live worker, where an audit still
    catches nondeterminism if not collusion). *)

val lease : t -> shard:int -> auditor:string -> epoch:int -> now:float -> unit
(** Move a due shard to auditing under lease [epoch] (the caller bumps
    the shard's lease-table epoch and hands it out as a normal
    assignment). Raises [Invalid_argument] if the shard is not due. *)

val audit_epoch : t -> shard:int -> epoch:int -> bool
(** Does a completion under [epoch] belong to an in-flight audit (as
    opposed to a primary lease)? Routes the coordinator's accept path. *)

val heartbeat : t -> shard:int -> epoch:int -> now:float -> bool
val release : t -> shard:int -> epoch:int -> unit
(** Put an in-flight audit back to due (auditor disconnected or sent a
    corrupt result). No-op unless [epoch] matches. *)

val sweep : t -> now:float -> int
(** Expire overdue audit leases back to due; returns how many. *)

type verdict = {
  vd_liars : string list;
      (** minority executors to quarantine ("" entries are dropped) *)
  vd_replace : bool;
      (** the primary blob was the lie: the arriving (arbiter's) result
          is the honest one and must replace it *)
}

val complete :
  t ->
  shard:int ->
  epoch:int ->
  worker:string ->
  digest:string ->
  [ `Pass  (** re-execution matched the primary *)
  | `Dispute  (** two executions disagree; lease a third to arbitrate *)
  | `Verdict of verdict  (** quorum reached *)
  | `Stale  (** epoch fenced off — duplicate or superseded audit *) ]

val invalidate : t -> shard:int -> unit
(** Forget everything about [shard] (its primary came from a liar); the
    caller reopens the shard's lease for honest re-execution. *)

val victims : t -> worker:string -> int list
(** Shards whose accepted primary came from [worker] and which no audit
    has yet vindicated — exactly the set to invalidate when [worker] is
    quarantined. Sorted ascending. *)

val pending : t -> int
(** Audits due or in flight. The campaign is not finished (reports must
    not be served) until this reaches zero. *)

val finished : t -> bool

(** Durable form for checkpoints: one entry per accepted shard. *)
type entry = { au_shard : int; au_worker : string; au_digest : string; au_passed : bool }

val export : t -> entry list
(** Sorted by shard. In-flight audit leases are not persisted — on
    restart a selected, unvindicated shard is simply due again. *)

val restore : config -> nshards:int -> entry list -> t

module Check : sig
  val result_digest : tally:string -> quarantined:Fmc.Campaign.quarantine_entry list -> string
  (** The canonical shard-result digest: MD5 hex over the tally's
      canonical encoding ([Ssf.Tally.to_string]) followed by each
      quarantine entry's canonical line. Worker and coordinator compute
      this identically; it is what audits compare. *)
end
