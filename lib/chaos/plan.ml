(* Declarative fault plans for the chaos proxy.

   A plan is an ordered list of fault clauses; the proxy consults them
   in order for every forwarded chunk (and, for partitions, for every
   accept). The grammar is one clause per line (or ';'-separated),
   keyword first, then key=value parameters:

     delay p=0.1 min=0.005 max=0.05
     bitflip p=0.02
     truncate p=0.01
     dup p=0.02
     drop p=0.005
     partition every=5 for=1
     lie p=0.3
     # comments and blank lines are ignored

   Probabilities are per forwarded chunk, evaluated against the
   connection's seeded RNG substream — the same (seed, plan) pair
   replays the same fault decisions. *)

type fault =
  | Delay of { prob : float; min_s : float; max_s : float }
  | Drop of { prob : float }
  | Truncate of { prob : float }
  | Bit_flip of { prob : float }
  | Duplicate of { prob : float }
  | Partition of { every_s : float; open_s : float }
  | Lie of { prob : float }
      (* adversarial payload mutation: rewrite a result frame's tally
         while keeping the framing and CRC-32 valid (Fmc_audit's threat
         model, DESIGN.md §16) *)

type t = { faults : fault list }

let empty = { faults = [] }
let is_empty t = t.faults = []

let fault_name = function
  | Delay _ -> "delay"
  | Drop _ -> "drop"
  | Truncate _ -> "truncate"
  | Bit_flip _ -> "bitflip"
  | Duplicate _ -> "dup"
  | Partition _ -> "partition"
  | Lie _ -> "lie"

let fault_to_string = function
  | Delay { prob; min_s; max_s } -> Printf.sprintf "delay p=%g min=%g max=%g" prob min_s max_s
  | Drop { prob } -> Printf.sprintf "drop p=%g" prob
  | Truncate { prob } -> Printf.sprintf "truncate p=%g" prob
  | Bit_flip { prob } -> Printf.sprintf "bitflip p=%g" prob
  | Duplicate { prob } -> Printf.sprintf "dup p=%g" prob
  | Partition { every_s; open_s } -> Printf.sprintf "partition every=%g for=%g" every_s open_s
  | Lie { prob } -> Printf.sprintf "lie p=%g" prob

let to_string t = String.concat "\n" (List.map fault_to_string t.faults)

(* -- parsing ------------------------------------------------------------- *)

let ( let* ) = Result.bind

let split_clauses s =
  String.split_on_char '\n' s
  |> List.concat_map (String.split_on_char ';')
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let parse_params tokens =
  let rec go acc = function
    | [] -> Ok acc
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" tok)
        | Some i -> (
            let key = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            match float_of_string_opt v with
            | None -> Error (Printf.sprintf "parameter %s: not a number: %S" key v)
            | Some f -> go ((key, f) :: acc) rest))
  in
  go [] tokens

let get params key =
  match List.assoc_opt key params with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing parameter %s" key)

let prob params =
  let* p = get params "p" in
  if p < 0. || p > 1. then Error (Printf.sprintf "p=%g outside [0, 1]" p) else Ok p

let parse_clause line =
  let annotate r = Result.map_error (fun e -> Printf.sprintf "%S: %s" line e) r in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] -> Error "empty clause"
  | keyword :: rest ->
      annotate
        (let* params = parse_params rest in
         match keyword with
         | "delay" ->
             let* p = prob params in
             let* min_s = get params "min" in
             let* max_s = get params "max" in
             if min_s < 0. || max_s < min_s then Error "need 0 <= min <= max"
             else Ok (Delay { prob = p; min_s; max_s })
         | "drop" ->
             let* p = prob params in
             Ok (Drop { prob = p })
         | "truncate" ->
             let* p = prob params in
             Ok (Truncate { prob = p })
         | "bitflip" ->
             let* p = prob params in
             Ok (Bit_flip { prob = p })
         | "dup" ->
             let* p = prob params in
             Ok (Duplicate { prob = p })
         | "partition" ->
             let* every_s = get params "every" in
             let* open_s = get params "for" in
             if every_s <= 0. then Error "need every > 0"
             else if open_s <= 0. || open_s >= every_s then
               Error "need 0 < for < every (the link must heal between windows)"
             else Ok (Partition { every_s; open_s })
         | "lie" ->
             let* p = prob params in
             Ok (Lie { prob = p })
         | _ -> Error (Printf.sprintf "unknown fault %S" keyword))

let parse s =
  let rec go acc = function
    | [] -> Ok { faults = List.rev acc }
    | clause :: rest -> (
        match parse_clause clause with Ok f -> go (f :: acc) rest | Error _ as e -> e)
  in
  go [] (split_clauses s)

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> parse s
  | exception Sys_error msg -> Error msg
