(** Declarative fault plans for {!Proxy} (DESIGN.md §11).

    A plan is an ordered list of fault clauses the proxy evaluates
    against each forwarded chunk (partitions: against each accept and
    chunk). Combined with a seed, a plan is a complete, replayable
    description of the injected faults: the proxy draws every decision
    from [Rng.substream]s of the seed, one per connection direction.

    Text grammar — one clause per line or [;]-separated, [#] comments:
    {v
    delay p=PROB min=SECONDS max=SECONDS   delay a chunk
    bitflip p=PROB                          flip one random payload bit
    truncate p=PROB                         forward a prefix, then sever
    dup p=PROB                              deliver a chunk twice
    drop p=PROB                             sever the connection
    partition every=SECONDS for=SECONDS     periodic full-partition window
    lie p=PROB                              adversarially mutate a result frame
    v}

    [lie] models a lying (not merely faulty) worker: the proxy
    reassembles protocol frames and, on a result frame
    (Shard_done/Job_done), rewrites the tally payload while recomputing
    the CRC-32 — the frame arrives intact by every transport check and
    only {!Fmc_audit}'s digest/quorum defenses can catch it. *)

type fault =
  | Delay of { prob : float; min_s : float; max_s : float }
  | Drop of { prob : float }
  | Truncate of { prob : float }
  | Bit_flip of { prob : float }
  | Duplicate of { prob : float }
  | Partition of { every_s : float; open_s : float }
  | Lie of { prob : float }

type t = { faults : fault list }

val empty : t
val is_empty : t -> bool

val fault_name : fault -> string
(** The grammar keyword ([delay], [drop], [truncate], [bitflip], [dup],
    [partition]) — also the key in {!Proxy.fault_counts}. *)

val parse : string -> (t, string) result
(** Parse the grammar above. Validates ranges: probabilities in [0, 1],
    [0 <= min <= max], [0 < for < every]. *)

val load : path:string -> (t, string) result

val to_string : t -> string
(** Canonical text form; [parse (to_string t)] round-trips. *)
