(* Deterministic fault-injection TCP/Unix-socket proxy.

   The proxy sits between workers and the coordinator and executes a
   declarative fault plan against the byte stream: every accepted
   connection gets two pump threads (client->upstream, upstream->client),
   each with its own RNG substream of the proxy seed, and every
   forwarded chunk runs the plan's clauses in order — delay, bit flip,
   truncation, duplication, severing, and periodic full partitions.

   Determinism scope (documented in DESIGN.md §11): the DECISION stream
   is replayable — connection k's direction d draws the same fault
   sequence for a given (seed, plan) — but TCP chunk boundaries and
   thread interleavings are timing-dependent, so the exact byte offsets
   faults land on can vary run to run. The invariant the chaos suite
   asserts is stronger anyway: whatever the faults hit, the merged
   campaign report is byte-identical to the fault-free reference,
   because the protocol layer (CRC frames, epoch fencing, reconnects)
   absorbs every injected failure. *)

open Fmc_prelude
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics
module Clock = Fmc_obs.Clock
module Wire = Fmc_dist.Wire

type t = {
  listen_addr : Wire.addr;
  upstream : Wire.addr;
  plan : Plan.t;
  seed : int64;
  obs : Obs.t;
  on_event : string -> unit;
  listen_fd : Unix.file_descr;
  mutex : Mutex.t;
  counts : (string, int) Hashtbl.t;  (* fault keyword -> injections *)
  mutable conn_seq : int;
  mutable severs : (unit -> unit) list;  (* close-once per live connection *)
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  started : float;
  faults_mx : Metrics.counter option;
  conns_mx : Metrics.counter option;
}

exception Severed

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let count t ~conn_id ~dir fault detail =
  let name = Plan.fault_name fault in
  locked t (fun () ->
      Hashtbl.replace t.counts name (1 + Option.value (Hashtbl.find_opt t.counts name) ~default:0));
  Option.iter Metrics.inc t.faults_mx;
  t.on_event
    (Printf.sprintf "t=%.3f conn=%d dir=%s fault=%s%s"
       (Clock.now () -. t.started)
       conn_id dir name
       (if detail = "" then "" else " " ^ detail))

(* Is any partition window open at [now]? Evaluated per accept and per
   chunk; during an open window new connections are refused and live
   ones severed — a full bidirectional partition. *)
let in_partition t ~now =
  List.exists
    (function
      | Plan.Partition { every_s; open_s } ->
          Float.rem (now -. t.started) every_s < open_s
      | _ -> false)
    t.plan.Plan.faults

let partition_clause t =
  List.find_opt (function Plan.Partition _ -> true | _ -> false) t.plan.Plan.faults

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_all fd buf ~len =
  let off = ref 0 in
  while !off < len do
    match Unix.write fd buf !off (len - !off) with
    | 0 -> raise Severed
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> raise Severed
  done

(* -- the lie fault -------------------------------------------------------
   Adversarial payload mutation: given a complete wire frame
   ([len u32][tag][crc u32][payload], Fmc_dist.Wire's v2 layout), rewrite
   a result frame's tally so it still parses and re-seal the CRC-32. The
   frame passes every transport check — only the audit layer's digests
   can tell it lied. The mutation flips the low bit of the last byte of
   the tally blob's first line ("samples N"): digits pair up under
   [lxor 1], so the payload stays wire- and tally-codec-valid while the
   decoded result differs. *)

let get_u32 buf off = Int32.to_int (Bytes.get_int32_be buf off) land 0xffffffff
let put_u32 buf off v = Bytes.set_int32_be buf off (Int32.of_int v)

let lie_rewrite frame =
  let word = get_u32 frame 0 in
  let tag = Bytes.get frame 4 in
  if (tag <> 'D' && tag <> 'j') || word < 4 then None
  else begin
    let payload = Bytes.sub_string frame 9 (word - 4) in
    (* Locate the "tally N" header line, then the line after it. *)
    let target =
      let rec find_header pos =
        if pos >= String.length payload then None
        else
          let line_end =
            match String.index_from_opt payload pos '\n' with
            | Some i -> i
            | None -> String.length payload
          in
          let line = String.sub payload pos (line_end - pos) in
          if String.length line > 6 && String.sub line 0 6 = "tally " then
            (* First blob line: (line_end+1) .. next '\n'. *)
            match String.index_from_opt payload (line_end + 1) '\n' with
            | Some e when e > line_end + 1 -> Some (e - 1)
            | _ -> None
          else if line_end >= String.length payload then None
          else find_header (line_end + 1)
      in
      find_header 0
    in
    match target with
    | None -> None
    | Some idx ->
        let mutated = Bytes.of_string payload in
        Bytes.set mutated idx (Char.chr (Char.code (Bytes.get mutated idx) lxor 1));
        let mutated = Bytes.unsafe_to_string mutated in
        let crc = Fmc_dist.Crc32.extend (Fmc_dist.Crc32.string (String.make 1 tag)) mutated in
        Bytes.blit_string mutated 0 frame 9 (String.length mutated);
        put_u32 frame 5 crc;
        Some idx
  end

(* One pump direction: read a chunk, run the plan over it, forward.
   With a [lie] clause in the plan the pump reassembles complete frames
   first (the mutation must land inside one frame's payload and re-seal
   its CRC); the other clauses then apply per frame instead of per raw
   chunk. An unframeable stream (v1 peer, garbage, oversized length
   word) falls back to raw forwarding for the rest of the connection. *)
let pump t ~conn_id ~dir ~sever rng src dst =
  let buf = Bytes.create 4096 in
  let forward fbuf len =
    (* Mutable per-chunk fault state threaded through the clauses. *)
    let len = ref len in
    let sever_after = ref false in
    let copies = ref 1 in
    let apply fault =
      match fault with
      | Plan.Delay { prob; min_s; max_s } ->
          if Rng.float rng 1.0 < prob then begin
            let d = min_s +. Rng.float rng (max_s -. min_s) in
            count t ~conn_id ~dir fault (Printf.sprintf "sleep=%.4f" d);
            Unix.sleepf d
          end
      | Plan.Bit_flip { prob } ->
          if !len > 0 && Rng.float rng 1.0 < prob then begin
            let byte = Rng.int rng !len in
            let bit = Rng.int rng 8 in
            Bytes.set fbuf byte (Char.chr (Char.code (Bytes.get fbuf byte) lxor (1 lsl bit)));
            count t ~conn_id ~dir fault (Printf.sprintf "byte=%d bit=%d" byte bit)
          end
      | Plan.Truncate { prob } ->
          if !len > 1 && Rng.float rng 1.0 < prob then begin
            let keep = 1 + Rng.int rng (!len - 1) in
            count t ~conn_id ~dir fault (Printf.sprintf "keep=%d of=%d" keep !len);
            len := keep;
            sever_after := true
          end
      | Plan.Duplicate { prob } ->
          if Rng.float rng 1.0 < prob then begin
            count t ~conn_id ~dir fault "";
            copies := 2
          end
      | Plan.Drop { prob } ->
          if Rng.float rng 1.0 < prob then begin
            count t ~conn_id ~dir fault "";
            raise Severed
          end
      | Plan.Partition _ ->
          if in_partition t ~now:(Clock.now ()) then begin
            count t ~conn_id ~dir fault "window";
            raise Severed
          end
      | Plan.Lie { prob } ->
          if !len > 9 && Rng.float rng 1.0 < prob then begin
            match lie_rewrite fbuf with
            | Some idx -> count t ~conn_id ~dir fault (Printf.sprintf "byte=%d" idx)
            | None -> ()
          end
    in
    List.iter apply t.plan.Plan.faults;
    for _ = 1 to !copies do
      write_all dst fbuf ~len:!len
    done;
    if !sever_after then raise Severed
  in
  let has_lie = List.exists (function Plan.Lie _ -> true | _ -> false) t.plan.Plan.faults in
  let rec raw_loop () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        forward buf n;
        raw_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> raw_loop ()
    | exception Unix.Unix_error _ -> ()
  in
  let framed_loop () =
    let pending = Buffer.create 8192 in
    let degraded = ref false in
    let flush_raw () =
      let data = Buffer.contents pending in
      Buffer.clear pending;
      if data <> "" then forward (Bytes.of_string data) (String.length data)
    in
    let rec drain () =
      if !degraded then flush_raw ()
      else
        let n = Buffer.length pending in
        if n >= 5 then begin
          let head = Bytes.of_string (Buffer.sub pending 0 (min n 5)) in
          let word = get_u32 head 0 in
          if word > Wire.max_frame + 4 then begin
            (* Not a v2 stream we can reframe; stop pretending. *)
            degraded := true;
            flush_raw ()
          end
          else if n >= 5 + word then begin
            let frame = Bytes.of_string (Buffer.sub pending 0 (5 + word)) in
            let rest = Buffer.sub pending (5 + word) (n - 5 - word) in
            Buffer.clear pending;
            Buffer.add_string pending rest;
            forward frame (Bytes.length frame);
            drain ()
          end
        end
    in
    let rec loop () =
      match Unix.read src buf 0 (Bytes.length buf) with
      | 0 -> flush_raw ()
      | n ->
          Buffer.add_subbytes pending buf 0 n;
          drain ();
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
    in
    loop ()
  in
  let run = if has_lie then framed_loop else raw_loop in
  (try Obs.span t.obs ~cat:"chaos" ("pump." ^ dir) run with Severed -> ());
  sever ()

let handle_client t client =
  let conn_id =
    locked t (fun () ->
        t.conn_seq <- t.conn_seq + 1;
        t.conn_seq)
  in
  Option.iter Metrics.inc t.conns_mx;
  (* Accepts during an open partition window are refused outright. *)
  match partition_clause t with
  | Some fault when in_partition t ~now:(Clock.now ()) ->
      count t ~conn_id ~dir:"accept" fault "refused";
      close_quietly client
  | _ -> (
      match Wire.connect ~attempts:1 t.upstream with
      | exception _ ->
          t.on_event (Printf.sprintf "conn=%d upstream unreachable" conn_id);
          close_quietly client
      | server ->
          let closed = ref false in
          let cm = Mutex.create () in
          let sever () =
            Mutex.lock cm;
            let first = not !closed in
            closed := true;
            Mutex.unlock cm;
            if first then begin
              close_quietly client;
              close_quietly server
            end
          in
          locked t (fun () -> t.severs <- sever :: t.severs);
          let rng_up = Rng.substream ~seed:t.seed ~shard:(2 * conn_id) in
          let rng_down = Rng.substream ~seed:t.seed ~shard:((2 * conn_id) + 1) in
          ignore (Thread.create (fun () -> pump t ~conn_id ~dir:"up" ~sever rng_up client server) ());
          ignore
            (Thread.create (fun () -> pump t ~conn_id ~dir:"down" ~sever rng_down server client) ()))

let accept_loop t =
  while not (locked t (fun () -> t.stopping)) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [ _ ], _, _ -> (
        match Unix.accept t.listen_fd with
        | client, _ -> handle_client t client
        | exception Unix.Unix_error _ -> ())
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> locked t (fun () -> t.stopping <- true)
  done

let start ?(obs = Obs.disabled) ?(on_event = fun _ -> ()) ~listen ~upstream ~plan ~seed () =
  let listen_fd = Wire.listen listen in
  let faults_mx, conns_mx =
    match obs.Obs.metrics with
    | None -> (None, None)
    | Some r ->
        ( Some (Metrics.counter r ~help:"chaos faults injected" "fmc_chaos_faults_total"),
          Some (Metrics.counter r ~help:"connections through the chaos proxy" "fmc_chaos_connections_total")
        )
  in
  let t =
    {
      listen_addr = listen;
      upstream;
      plan;
      seed;
      obs;
      on_event;
      listen_fd;
      mutex = Mutex.create ();
      counts = Hashtbl.create 8;
      conn_seq = 0;
      severs = [];
      stopping = false;
      accept_thread = None;
      started = Clock.now ();
      faults_mx;
      conns_mx;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let addr t = t.listen_addr

let fault_counts t =
  locked t (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let connections t = locked t (fun () -> t.conn_seq)

let stop t =
  let severs =
    locked t (fun () ->
        t.stopping <- true;
        let s = t.severs in
        t.severs <- [];
        s)
  in
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  close_quietly t.listen_fd;
  (match t.listen_addr with
  | Wire.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Wire.Tcp _ -> ());
  List.iter (fun sever -> sever ()) severs
