(** Deterministic fault-injection proxy (DESIGN.md §11).

    An in-process TCP/Unix-socket proxy that forwards bytes between
    clients (workers, report fetchers) and an upstream (the
    coordinator) while executing a {!Plan} against the stream. Every
    fault decision is drawn from an [Rng.substream] of the proxy seed —
    one stream per connection direction — so a (seed, plan) pair is a
    complete, replayable description of the injected chaos. (TCP chunk
    boundaries remain timing-dependent; what the chaos suite asserts is
    invariance of the merged campaign report, which holds regardless.)

    Faults: [delay] sleeps before forwarding; [bitflip] flips one
    payload bit (downstream the CRC layer flags the frame); [truncate]
    forwards a prefix then severs; [dup] forwards a chunk twice
    (desynchronizing the stream); [drop] severs outright; [partition]
    opens a periodic window during which new connections are refused
    and live ones severed.

    Threading: one accept thread plus two pump threads per connection;
    {!stop} joins the accept thread and severs everything live. *)

type t

val start :
  ?obs:Fmc_obs.Obs.t ->
  ?on_event:(string -> unit) ->
  listen:Fmc_dist.Wire.addr ->
  upstream:Fmc_dist.Wire.addr ->
  plan:Plan.t ->
  seed:int64 ->
  unit ->
  t
(** Bind [listen], start forwarding to [upstream]. [on_event] receives
    one line per injected fault
    ([t=SECONDS conn=N dir=up|down fault=NAME ...] — the chaos event
    log); it is called from pump threads and must be thread-safe. Under
    [obs], counts [fmc_chaos_faults_total] / [fmc_chaos_connections_total]
    and wraps each pump in a ["chaos"] span. *)

val addr : t -> Fmc_dist.Wire.addr
(** The address clients should dial (the [listen] argument). *)

val fault_counts : t -> (string * int) list
(** Injected faults by {!Plan.fault_name} keyword, sorted. *)

val connections : t -> int
(** Connections accepted so far. *)

val stop : t -> unit
(** Stop accepting, sever every live connection, release the socket. *)
