module Arch = Fmc_cpu.Arch
module Programs = Fmc_isa.Programs

let evaluate ~program ~corrupted =
  match (program.Programs.attack, program.Programs.user_code_range) with
  | None, _ | _, None -> false
  | Some (addr, perm), Some (lo, hi) ->
      let perm =
        match perm with
        | Programs.Attack_read -> Arch.Read
        | Programs.Attack_write -> Arch.Write
        | Programs.Attack_exec -> Arch.Exec
      in
      let access_granted = Arch.mpu_allows corrupted ~addr ~perm in
      let code_executable =
        let ok = ref true in
        for pc = lo to hi do
          if not (Arch.mpu_allows corrupted ~addr:pc ~perm:Arch.Exec) then ok := false
        done;
        !ok
      in
      access_granted && code_executable
