(** Analytical outcome evaluation for memory-type register errors
    (paper §4, Observation 3; §5.2).

    When every flipped register is memory-type, the error sits still until
    the target cycle, so no simulation is needed: the attack outcome is a
    pure function of the corrupted system configuration and the benchmark.
    Concretely, the attack succeeds iff the corrupted MPU configuration now
    {e grants} the benchmark's malicious access while the user program
    remains executable (otherwise the fetch traps first and the payload
    never runs). Flips confined to memory-type registers outside the MPU
    bank cannot reach the responding signals (zero contamination) and fail. *)

val evaluate : program:Fmc_isa.Programs.t -> corrupted:Fmc_cpu.Arch.t -> bool
(** [corrupted] is the architectural state right after the injection cycle
    (flips applied). Returns the attack-success indicator [e]. Benchmarks
    without attack metadata always evaluate to [false]. *)
