module N = Fmc_netlist.Netlist
module Placement = Fmc_layout.Placement

type spatial = Uniform_cells of N.node array | Delta_cell of N.node

type t = {
  temporal : Dist.int_dist;
  spatial : spatial;
  radius : Dist.float_dist;
  width : Dist.float_dist;
}

let spatial_cells = function
  | Uniform_cells cells -> cells
  | Delta_cell c -> [| c |]

let pmf_spatial spatial cell =
  match spatial with
  | Uniform_cells cells ->
      if Array.exists (fun c -> c = cell) cells then 1. /. float_of_int (Array.length cells) else 0.
  | Delta_cell c -> if c = cell then 1. else 0.

let block_around placement ~roots ~fraction =
  if fraction <= 0. || fraction > 1. then invalid_arg "Attack.block_around: fraction out of (0, 1]";
  let placed_roots = List.filter (Placement.is_placed placement) roots in
  if placed_roots = [] then invalid_arg "Attack.block_around: no placed root";
  let cx, cy =
    let n = float_of_int (List.length placed_roots) in
    let sx, sy =
      List.fold_left
        (fun (sx, sy) r ->
          let x, y = Placement.position placement r in
          (sx +. x, sy +. y))
        (0., 0.) placed_roots
    in
    (sx /. n, sy /. n)
  in
  let cells = Placement.cells placement in
  let keyed =
    Array.map
      (fun c ->
        let x, y = Placement.position placement c in
        (Float.hypot (x -. cx) (y -. cy), c))
      cells
  in
  Array.sort compare keyed;
  let keep = max 1 (int_of_float (ceil (fraction *. float_of_int (Array.length cells)))) in
  let block = Array.map snd (Array.sub keyed 0 (min keep (Array.length keyed))) in
  Array.sort compare block;
  block

let default _placement ~block =
  {
    temporal = Dist.Uniform_int (0, 49);
    spatial = Uniform_cells block;
    radius = Dist.Uniform_float (0.8, 2.2);
    width = Dist.Uniform_float (100., 350.);
  }

let validate t =
  Dist.validate_int t.temporal;
  (* Negative timing distances mean the shot lands after the target cycle —
     a wasted attempt under poor temporal accuracy, not an error. *)
  (match Dist.support_int t.temporal with
  | [] -> invalid_arg "Attack.validate: empty temporal support"
  | _ -> ());
  match t.spatial with
  | Uniform_cells [||] -> invalid_arg "Attack.validate: empty target block"
  | Uniform_cells _ | Delta_cell _ -> ()
