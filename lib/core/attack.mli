(** The attack model (paper §3.1–3.2).

    An attack sample is [(t, p)] with [p = \[g, r\]]: timing distance
    [t = Tt - Te], radiation center cell [g] and radius [r]. The nominal
    (attacker-intended) distribution [f_{T,P}] is the product of a temporal
    distribution, a spatial distribution over a target block of cells, and
    a radius distribution; the strike's pulse width and intra-cycle start
    time are additional technique-variation parameters, sampled identically
    under every strategy (they cancel in importance weights). *)

type spatial =
  | Uniform_cells of Fmc_netlist.Netlist.node array
      (** aim uniformly anywhere in a block of placed cells *)
  | Delta_cell of Fmc_netlist.Netlist.node  (** perfectly aimed *)

type t = {
  temporal : Dist.int_dist;  (** timing distance [t >= 0] *)
  spatial : spatial;
  radius : Dist.float_dist;
  width : Dist.float_dist;  (** transient pulse width, ps *)
}

val spatial_cells : spatial -> Fmc_netlist.Netlist.node array

val pmf_spatial : spatial -> Fmc_netlist.Netlist.node -> float
(** [f_P]-side probability of aiming at a given cell. *)

val block_around :
  Fmc_layout.Placement.t ->
  roots:Fmc_netlist.Netlist.node list ->
  fraction:float ->
  Fmc_netlist.Netlist.node array
(** The cells nearest (in placement distance) to the centroid of [roots],
    covering [fraction] of all placed cells — the paper's "sub-block of
    around 1/8 of the MPU". Raises [Invalid_argument] if [fraction] is not
    in (0, 1\] or [roots] has no placed member. *)

val default : Fmc_layout.Placement.t -> block:Fmc_netlist.Netlist.node array -> t
(** Paper-like defaults: [t ~ U\[0, 49\]], uniform aim over [block],
    radius [U\[0.8, 2.2\]] placement units, width [U\[80, 220\]] ps. *)

val validate : t -> unit
