module Rng = Fmc_prelude.Rng
module System = Fmc_cpu.System
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics

type disposition = Crashed of string | Timed_out

type quarantine_entry = {
  q_index : int;
  q_disposition : disposition;
  q_stratum : Sampler.stratum;
  q_t : int;
  q_center : Fmc_netlist.Netlist.node;
  q_radius : float;
  q_width : float;
  q_time_frac : float;
  q_weight : float;
}

type config = {
  checkpoint_path : string option;
  checkpoint_every : int;
  journal_path : string option;
  sample_budget : int option;
  handle_signals : bool;
}

let default_config =
  {
    checkpoint_path = None;
    checkpoint_every = 1000;
    journal_path = None;
    sample_budget = None;
    handle_signals = true;
  }

type status = Completed | Interrupted

type result = {
  report : Ssf.report;
  status : status;
  quarantined : quarantine_entry list;
  elapsed_s : float;
  samples_per_sec : float;
}

let checkpoint_version = 5

(* ------------------------------------------------------------------ *)
(* Checkpoint serialization: a line-oriented, versioned text format.
   Since v3 the whole tally state is the shared {!Ssf.Tally.to_string}
   codec (the same serializer the distributed wire protocol ships shard
   results with); the checkpoint adds a campaign header (strategy, seed,
   RNG state) around it. v4 appends a "crc %08x" trailer line — the
   CRC-32 of every byte up to and including the "end" marker — so a
   truncated or bit-flipped checkpoint is detected before any of it is
   parsed. v5 adds a "model" header line carrying the canonical fault
   model; v3/v4 files (no model line) are read as disc-transient, the
   only model that existed when they were written. Floats are hex float
   literals ("%h"), which round-trip bit-exactly through
   [float_of_string]; the RNG state is the SplitMix64 int64 word. The
   file is written to a sibling ".tmp" and atomically renamed into
   place, so a kill mid-write can never destroy the previous good
   checkpoint. *)

exception Checkpoint_corrupt of { path : string; reason : string }

let () =
  Printexc.register_printer (function
    | Checkpoint_corrupt { path; reason } ->
        Some (Printf.sprintf "Campaign.Checkpoint_corrupt(%s: %s)" path reason)
    | _ -> None)

let corrupt_at path fmt =
  Printf.ksprintf (fun reason -> raise (Checkpoint_corrupt { path; reason })) fmt

let hexf = Printf.sprintf "%h"

let checkpoint_body ~seed ~strategy ~model ~rng_state (s : Ssf.Tally.snapshot) =
  let body = Buffer.create 1024 in
  Printf.bprintf body "faultmc-campaign %d\n" checkpoint_version;
  Printf.bprintf body "strategy %s\n" strategy;
  Printf.bprintf body "model %s\n" model;
  Printf.bprintf body "seed %d\n" seed;
  Printf.bprintf body "rng %Ld\n" rng_state;
  Buffer.add_string body (Ssf.Tally.to_string s);
  Buffer.add_string body "end\n";
  Buffer.contents body

let write_checkpoint path ~seed ~strategy ~model ~rng_state (s : Ssf.Tally.snapshot) =
  let body = checkpoint_body ~seed ~strategy ~model ~rng_state s in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc body;
     Printf.fprintf oc "crc %08x\n" (Fmc_prelude.Crc32.string body)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

type checkpoint = {
  ck_strategy : string;
  ck_model : string;
  ck_seed : int;
  ck_rng : int64;
  ck_snapshot : Ssf.Tally.snapshot;
}

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* Strip and verify the v4 "crc %08x" trailer, returning the covered
   body. Any framing defect — no trailing newline, no trailer line, a
   malformed word, a digest mismatch — means the file was truncated or
   corrupted after it was sealed, and is reported as such rather than as
   whatever parse error the damaged body would have produced. *)
let verify_crc_trailer path raw =
  let corrupt fmt = corrupt_at path fmt in
  let n = String.length raw in
  if n = 0 || raw.[n - 1] <> '\n' then corrupt "truncated: missing CRC trailer";
  let tl_start =
    match String.rindex_from_opt raw (n - 2) '\n' with Some i -> i + 1 | None -> 0
  in
  let trailer = String.sub raw tl_start (n - tl_start - 1) in
  let stored =
    match String.split_on_char ' ' trailer with
    | [ "crc"; v ] when String.length v = 8 -> (
        match int_of_string_opt ("0x" ^ v) with
        | Some c -> c
        | None -> corrupt "malformed CRC trailer %S" trailer)
    | _ -> corrupt "truncated: missing CRC trailer (last line %S)" trailer
  in
  let body = String.sub raw 0 tl_start in
  let computed = Fmc_prelude.Crc32.string body in
  if computed <> stored then
    corrupt "CRC mismatch: stored %08x, computed %08x (truncated or corrupted)" stored computed;
  body

let read_checkpoint path =
  let corrupt fmt = corrupt_at path fmt in
  let raw =
    try read_whole_file path with Sys_error msg -> corrupt "unreadable: %s" msg
  in
  let header =
    match String.index_opt raw '\n' with
    | Some i -> String.sub raw 0 i
    | None -> corrupt "missing header line"
  in
  let version =
    match String.split_on_char ' ' header with
    | [ "faultmc-campaign"; v ] -> (
        match int_of_string_opt v with
        | Some n -> n
        | None -> corrupt "malformed version %S" v)
    | _ -> corrupt "malformed header %S" header
  in
  let body =
    if version = checkpoint_version || version = 4 then verify_crc_trailer path raw
    else if version = 3 then raw (* pre-CRC format, still readable *)
    else
      corrupt "unsupported checkpoint version %d (this binary reads v3-v%d)" version
        checkpoint_version
  in
  let lines = ref (String.split_on_char '\n' body) in
  let lineno = ref 0 in
  let line () =
    incr lineno;
    match !lines with
    | [] | [ "" ] -> corrupt "truncated checkpoint at line %d" !lineno
    | l :: rest ->
        lines := rest;
        l
  in
  let fields key =
    let l = line () in
    match String.split_on_char ' ' l with
    | k :: rest when k = key -> rest
    | k :: _ -> corrupt "line %d: expected %S, found %S" !lineno key k
    | [] -> corrupt "line %d: empty line, expected %S" !lineno key
  in
  let one key =
    match fields key with [ v ] -> v | l -> corrupt "line %d: %s wants 1 field, got %d" !lineno key (List.length l)
  in
  let int_of key v = try int_of_string v with _ -> corrupt "line %d: bad int %S in %s" !lineno v key in
  ignore (fields "faultmc-campaign" : string list);
  let strategy = one "strategy" in
  (* v3/v4 checkpoints predate fault-model plurality: no model line
     means the only model that existed then, the native disc transient. *)
  let model = if version >= 5 then one "model" else "disc-transient" in
  let seed = int_of "seed" (one "seed") in
  let rng =
    let v = one "rng" in
    try Int64.of_string v with _ -> corrupt "line %d: bad rng state %S" !lineno v
  in
  (* The rest of the body up to the "end" marker is the shared tally codec. *)
  let buf = Buffer.create 1024 in
  let rec collect () =
    match line () with
    | "end" -> ()
    | l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n';
        collect ()
  in
  collect ();
  let snapshot =
    match Ssf.Tally.of_string (Buffer.contents buf) with
    | Ok s -> s
    | Error msg -> corrupt "tally state: %s" msg
  in
  { ck_strategy = strategy; ck_model = model; ck_seed = seed; ck_rng = rng; ck_snapshot = snapshot }

(* ------------------------------------------------------------------ *)
(* Failure journal: one JSON object per quarantined sample, appended and
   flushed immediately so the journal survives the very crash it logs. *)

let json_string s = "\"" ^ Export.json_escape s ^ "\""

let journal_line (q : quarantine_entry) =
  let disposition, error =
    match q.q_disposition with
    | Timed_out -> ("timed_out", "per-sample cycle budget exhausted")
    | Crashed msg -> ("crashed", msg)
  in
  Printf.sprintf
    "{\"index\":%d,\"disposition\":%s,\"error\":%s,\"sample\":{\"stratum\":%s,\"t\":%d,\"center\":%d,\"radius\":%.17g,\"width\":%.17g,\"time_frac\":%.17g,\"weight\":%.17g}}"
    q.q_index (json_string disposition) (json_string error)
    (json_string (Sampler.stratum_name q.q_stratum))
    q.q_t q.q_center q.q_radius q.q_width q.q_time_frac q.q_weight

(* Compact single-line quarantine-entry codec, shared by the distributed
   wire protocol and the coordinator checkpoint. Numeric fields are fixed
   position; a crash message is the (possibly space-containing) tail of
   the line, with newlines flattened so the entry stays one line. *)

let quarantine_entry_to_string (q : quarantine_entry) =
  let base =
    Printf.sprintf "%d %s %s %d %d %s %s %s %s" q.q_index
      (match q.q_disposition with Timed_out -> "timed_out" | Crashed _ -> "crashed")
      (Sampler.stratum_name q.q_stratum)
      q.q_t q.q_center (hexf q.q_radius) (hexf q.q_width) (hexf q.q_time_frac) (hexf q.q_weight)
  in
  match q.q_disposition with
  | Timed_out -> base
  | Crashed msg -> base ^ " " ^ String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) msg

let quarantine_entry_of_string line =
  let bad msg = Error (Printf.sprintf "quarantine entry %S: %s" line msg) in
  match String.split_on_char ' ' line with
  | index :: disposition :: stratum :: t :: center :: radius :: width :: time_frac :: weight :: rest
    -> (
      match
        ( int_of_string_opt index,
          Sampler.stratum_of_name stratum,
          int_of_string_opt t,
          int_of_string_opt center,
          float_of_string_opt radius,
          float_of_string_opt width,
          float_of_string_opt time_frac,
          float_of_string_opt weight )
      with
      | Some index, Some stratum, Some t, Some center, Some radius, Some width, Some time_frac,
        Some weight -> (
          let entry disposition =
            Ok
              {
                q_index = index;
                q_disposition = disposition;
                q_stratum = stratum;
                q_t = t;
                q_center = center;
                q_radius = radius;
                q_width = width;
                q_time_frac = time_frac;
                q_weight = weight;
              }
          in
          match (disposition, rest) with
          | "timed_out", [] -> entry Timed_out
          | "timed_out", _ -> bad "unexpected trailing fields on a timed_out entry"
          | "crashed", rest -> entry (Crashed (String.concat " " rest))
          | d, _ -> bad (Printf.sprintf "unknown disposition %S" d))
      | _ -> bad "malformed numeric or stratum field")
  | _ -> bad "too few fields"

(* ------------------------------------------------------------------ *)
(* Supervised per-sample evaluation. *)

(* Pruning under a non-native fault model would silently bias the tally
   (the certificates prove masking of the disc transient only); refuse
   the combination at every campaign entry point. *)
let check_inject_compat ~who prune inject =
  match (prune, inject) with
  | Some _, Some (inj : Ssf.inject) ->
      invalid_arg
        (Printf.sprintf
           "%s: ?prune cannot be combined with fault model %s (analytical masking certificates \
            are only sound for disc-transient)"
           who inj.Ssf.inj_model)
  | _ -> ()

let evaluate_guarded ~causal ?sample_budget ?fault_hook ?prune ?inject engine rng i sample =
  match
    match prune with
    | Some covered when covered sample ->
        (* Certified masked (see Ssf.estimate): skip the simulation, tally
           analytically. The fault hook is an evaluation-crash injection
           point, so a skipped evaluation also skips it. *)
        (Ssf.pruned_result engine sample, [])
    | _ ->
        (match fault_hook with Some h -> h i sample | None -> ());
        let result =
          match inject with
          | None -> Engine.run_sample engine ?cycle_budget:sample_budget rng sample
          | Some (inj : Ssf.inject) -> inj.Ssf.inj_run engine ?cycle_budget:sample_budget rng sample
        in
        let attributed =
          if result.Engine.success && causal then
            match inject with
            | None -> Engine.causal_flips engine result
            | Some inj -> inj.Ssf.inj_causal engine result
          else result.Engine.flips
        in
        (result, attributed)
  with
  | r -> Ok r
  | exception System.Cycle_budget_exhausted _ -> Error Timed_out
  | exception Sys.Break -> raise Sys.Break
  | exception e -> Error (Crashed (Printexc.to_string e))

let install_handlers flag =
  let install s =
    try Some (s, Sys.signal s (Sys.Signal_handle (fun _ -> flag := true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  List.filter_map install [ Sys.sigint; Sys.sigterm ]

let restore_handlers saved =
  List.iter (fun (s, old) -> try Sys.set_signal s old with Invalid_argument _ | Sys_error _ -> ()) saved

let run_loop config ~obs ~causal ?fault_hook ?prune ?inject ?stop engine prepared ~tally ~rng ~seed =
  if config.checkpoint_every <= 0 then invalid_arg "Campaign: non-positive checkpoint_every";
  let samples = Ssf.Tally.total tally in
  let strategy = Sampler.name prepared in
  let t_start = Fmc_obs.Clock.now () in
  let base_processed = Ssf.Tally.processed tally in
  let ck_counter =
    match obs.Obs.metrics with
    | None -> None
    | Some reg ->
        Some (Metrics.counter reg ~help:"durable campaign checkpoints written" "fmc_checkpoints_total")
  in
  let journal_oc =
    Option.map (fun p -> open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 p)
      config.journal_path
  in
  let flush_checkpoint () =
    match config.checkpoint_path with
    | None -> ()
    | Some path ->
        Option.iter Metrics.inc ck_counter;
        Obs.span obs ~cat:"campaign" "checkpoint_write" (fun () ->
            write_checkpoint path ~seed ~strategy ~model:(Ssf.inject_model inject)
              ~rng_state:(Rng.state rng) (Ssf.Tally.snapshot tally))
  in
  let quarantines = ref [] in
  let interrupted = ref false in
  let saved = if config.handle_signals then install_handlers interrupted else [] in
  (* Engine phase spans land in the same sinks for the campaign's duration. *)
  let saved_obs = if Obs.enabled obs then Some (Engine.obs engine) else None in
  Option.iter (fun _ -> Engine.set_obs engine obs) saved_obs;
  Fun.protect
    ~finally:(fun () ->
      Option.iter (Engine.set_obs engine) saved_obs;
      restore_handlers saved;
      Option.iter close_out_noerr journal_oc)
  @@ fun () ->
  let should_stop () =
    !interrupted || (match stop with Some f -> f (Ssf.Tally.processed tally) | None -> false)
  in
  let stopped = ref false in
  while (not !stopped) && Ssf.Tally.processed tally < samples do
    if should_stop () then stopped := true
    else begin
      let i = Ssf.Tally.processed tally + 1 in
      let sample = Sampler.draw ~obs prepared rng in
      (match
         evaluate_guarded ~causal ?sample_budget:config.sample_budget ?fault_hook ?prune ?inject
           engine rng i sample
       with
      | Ok (result, attributed) -> Ssf.Tally.record tally sample result ~attributed
      | Error disposition ->
          let reason =
            match disposition with Timed_out -> Ssf.Q_timed_out | Crashed _ -> Ssf.Q_crashed
          in
          Ssf.Tally.quarantine tally sample ~reason;
          let entry =
            {
              q_index = i;
              q_disposition = disposition;
              q_stratum = sample.Sampler.stratum;
              q_t = sample.Sampler.t;
              q_center = sample.Sampler.center;
              q_radius = sample.Sampler.radius;
              q_width = sample.Sampler.width;
              q_time_frac = sample.Sampler.time_frac;
              q_weight = sample.Sampler.weight;
            }
          in
          quarantines := entry :: !quarantines;
          Option.iter
            (fun oc ->
              output_string oc (journal_line entry);
              output_char oc '\n';
              flush oc)
            journal_oc);
      (* The checkpoint is taken after the sample's draws and statistics
         landed, so the stored RNG state resumes with the next sample and
         the continuation is bit-exact. *)
      if i mod config.checkpoint_every = 0 then flush_checkpoint ()
    end
  done;
  flush_checkpoint ();
  let elapsed_s = Fmc_obs.Clock.now () -. t_start in
  let done_here = Ssf.Tally.processed tally - base_processed in
  {
    report = Ssf.Tally.report tally ~strategy;
    status = (if Ssf.Tally.processed tally >= samples then Completed else Interrupted);
    quarantined = List.rev !quarantines;
    elapsed_s;
    samples_per_sec = (if elapsed_s > 0. then float_of_int done_here /. elapsed_s else 0.);
  }

let run ?(config = default_config) ?(obs = Obs.disabled) ?trace_every ?(causal = true) ?fault_hook
    ?prune ?inject ?stop engine prepared ~samples ~seed =
  if samples <= 0 then invalid_arg "Campaign.run: non-positive sample count";
  check_inject_compat ~who:"Campaign.run" prune inject;
  let rng = Rng.create seed in
  let tally = Ssf.Tally.create ~obs ?trace_every prepared ~total:samples in
  run_loop config ~obs ~causal ?fault_hook ?prune ?inject ?stop engine prepared ~tally ~rng ~seed

(* ------------------------------------------------------------------ *)
(* Shard-seeded execution: the unit of work of a distributed campaign.
   A shard is a contiguous sample-index range [start, start+len) of the
   plan {!Ssf.shard_plan} cuts a campaign into; its draws come from the
   dedicated SplitMix64 substream [Rng.substream ~seed ~shard], so the
   evaluated samples depend only on (seed, shard) — never on which
   process runs the shard, how often its lease was re-issued, or what the
   other shards are doing. Re-running a shard is therefore always safe:
   it reproduces the identical snapshot. *)

type shard_result = {
  sh_shard : int;
  sh_start : int;
  sh_len : int;
  sh_snapshot : Ssf.Tally.snapshot;
  sh_quarantined : quarantine_entry list;
}

let run_shard ?(obs = Obs.disabled) ?trace_every ?(causal = true) ?sample_budget ?fault_hook
    ?prune ?inject ?on_sample engine prepared ~seed ~shard ~start ~len =
  if len <= 0 then invalid_arg "Campaign.run_shard: non-positive shard length";
  if start < 0 then invalid_arg "Campaign.run_shard: negative shard start";
  check_inject_compat ~who:"Campaign.run_shard" prune inject;
  let rng = Rng.substream ~seed:(Int64.of_int seed) ~shard in
  let tally = Ssf.Tally.create ~obs ?trace_every prepared ~total:len in
  let quarantines = ref [] in
  let saved_obs = if Obs.enabled obs then Some (Engine.obs engine) else None in
  Option.iter (fun _ -> Engine.set_obs engine obs) saved_obs;
  Fun.protect ~finally:(fun () -> Option.iter (Engine.set_obs engine) saved_obs) @@ fun () ->
  Obs.span obs ~cat:"dist" "shard" (fun () ->
      for i = 1 to len do
        let gi = start + i in
        let sample = Sampler.draw ~obs prepared rng in
        (match
           evaluate_guarded ~causal ?sample_budget ?fault_hook ?prune ?inject engine rng gi sample
         with
        | Ok (result, attributed) -> Ssf.Tally.record tally sample result ~attributed
        | Error disposition ->
            let reason =
              match disposition with Timed_out -> Ssf.Q_timed_out | Crashed _ -> Ssf.Q_crashed
            in
            Ssf.Tally.quarantine tally sample ~reason;
            quarantines :=
              {
                q_index = gi;
                q_disposition = disposition;
                q_stratum = sample.Sampler.stratum;
                q_t = sample.Sampler.t;
                q_center = sample.Sampler.center;
                q_radius = sample.Sampler.radius;
                q_width = sample.Sampler.width;
                q_time_frac = sample.Sampler.time_frac;
                q_weight = sample.Sampler.weight;
              }
              :: !quarantines);
        (* The progress hook runs outside the crash guard: an exception it
           raises (e.g. a worker abandoning a lost lease) aborts the shard
           instead of quarantining the current sample. *)
        match on_sample with Some h -> h i | None -> ()
      done);
  {
    sh_shard = shard;
    sh_start = start;
    sh_len = len;
    sh_snapshot = Ssf.Tally.snapshot tally;
    sh_quarantined = List.rev !quarantines;
  }

let shard_report ~strategy (s : Ssf.Tally.snapshot) =
  Ssf.Tally.report (Ssf.Tally.restore s) ~strategy

let estimate_sharded ?(obs = Obs.disabled) ?trace_every ?(causal = true) ?sample_budget ?fault_hook
    ?prune ?inject ?(shard_size = 1000) engine prepared ~samples ~seed =
  if samples <= 0 then invalid_arg "Campaign.estimate_sharded: non-positive sample count";
  let plan = Ssf.shard_plan ~samples ~shard_size in
  let t_start = Fmc_obs.Clock.now () in
  let shards =
    Array.to_list
      (Array.mapi
         (fun shard (start, len) ->
           run_shard ~obs ?trace_every ~causal ?sample_budget ?fault_hook ?prune ?inject engine
             prepared ~seed ~shard ~start ~len)
         plan)
  in
  let strategy = Sampler.name prepared in
  let report =
    Ssf.merge_reports (List.map (fun sh -> shard_report ~strategy sh.sh_snapshot) shards)
  in
  let elapsed_s = Fmc_obs.Clock.now () -. t_start in
  {
    report;
    status = Completed;
    quarantined = List.concat_map (fun sh -> sh.sh_quarantined) shards;
    elapsed_s;
    samples_per_sec = (if elapsed_s > 0. then float_of_int samples /. elapsed_s else 0.);
  }

let resume ?config ?(obs = Obs.disabled) ?(causal = true) ?fault_hook ?prune ?inject ?stop engine
    prepared ~path =
  check_inject_compat ~who:"Campaign.resume" prune inject;
  let ck = read_checkpoint path in
  if ck.ck_strategy <> Sampler.name prepared then
    corrupt_at path
      "checkpoint was taken under strategy %S, not %S (the sample stream would diverge)"
      ck.ck_strategy (Sampler.name prepared);
  if ck.ck_model <> Ssf.inject_model inject then
    corrupt_at path
      "checkpoint was taken under fault model %S, not %S (the evaluated outcomes would diverge)"
      ck.ck_model (Ssf.inject_model inject);
  let config =
    let c = Option.value config ~default:default_config in
    (* Keep writing to the checkpoint we resumed from unless redirected. *)
    if c.checkpoint_path = None then { c with checkpoint_path = Some path } else c
  in
  let rng = Rng.of_state ck.ck_rng in
  let tally = Ssf.Tally.restore ~obs ck.ck_snapshot in
  run_loop config ~obs ~causal ?fault_hook ?prune ?inject ?stop engine prepared ~tally ~rng
    ~seed:ck.ck_seed
