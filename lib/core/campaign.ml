module Rng = Fmc_prelude.Rng
module System = Fmc_cpu.System
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics

type disposition = Crashed of string | Timed_out

type quarantine_entry = {
  q_index : int;
  q_disposition : disposition;
  q_stratum : Sampler.stratum;
  q_t : int;
  q_center : Fmc_netlist.Netlist.node;
  q_radius : float;
  q_width : float;
  q_time_frac : float;
  q_weight : float;
}

type config = {
  checkpoint_path : string option;
  checkpoint_every : int;
  journal_path : string option;
  sample_budget : int option;
  handle_signals : bool;
}

let default_config =
  {
    checkpoint_path = None;
    checkpoint_every = 1000;
    journal_path = None;
    sample_budget = None;
    handle_signals = true;
  }

type status = Completed | Interrupted

type result = {
  report : Ssf.report;
  status : status;
  quarantined : quarantine_entry list;
  elapsed_s : float;
  samples_per_sec : float;
}

let checkpoint_version = 2

(* ------------------------------------------------------------------ *)
(* Checkpoint serialization: a line-oriented, versioned text format.
   Floats are written as hex float literals ("%h"), which round-trip
   bit-exactly through [float_of_string]; the RNG state is the SplitMix64
   int64 word. The file is written to a sibling ".tmp" and atomically
   renamed into place, so a kill mid-write can never destroy the previous
   good checkpoint. *)

exception Corrupt_checkpoint of string

let () =
  Printexc.register_printer (function
    | Corrupt_checkpoint msg -> Some (Printf.sprintf "Campaign.Corrupt_checkpoint(%s)" msg)
    | _ -> None)

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt_checkpoint msg)) fmt

let stratum_name = function
  | Sampler.All -> "all"
  | Sampler.Vulnerable -> "vulnerable"
  | Sampler.Rest -> "rest"

let stratum_of_name = function
  | "all" -> Sampler.All
  | "vulnerable" -> Sampler.Vulnerable
  | "rest" -> Sampler.Rest
  | s -> corrupt "unknown stratum %S" s

let hexf = Printf.sprintf "%h"

let write_checkpoint path ~seed ~strategy ~rng_state (s : Ssf.Tally.snapshot) =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     let pr fmt = Printf.fprintf oc fmt in
     pr "faultmc-campaign %d\n" checkpoint_version;
     pr "strategy %s\n" strategy;
     pr "seed %d\n" seed;
     pr "samples %d\n" s.Ssf.Tally.snap_total;
     pr "trace_every %d\n" s.Ssf.Tally.snap_trace_every;
     pr "rng %Ld\n" rng_state;
     pr "processed %d\n" s.Ssf.Tally.snap_processed;
     pr "counts %d %d %d %d %d %d %d %d %d\n" s.Ssf.Tally.snap_masked s.Ssf.Tally.snap_mem_only
       s.Ssf.Tally.snap_resumed s.Ssf.Tally.snap_quarantined s.Ssf.Tally.snap_q_crashed
       s.Ssf.Tally.snap_q_timed_out s.Ssf.Tally.snap_successes s.Ssf.Tally.snap_by_direct
       s.Ssf.Tally.snap_by_comb;
     pr "weights %s %s\n" (hexf s.Ssf.Tally.snap_sum_w) (hexf s.Ssf.Tally.snap_sum_w2);
     pr "strata %d\n" (List.length s.Ssf.Tally.snap_strata);
     List.iter2
       (fun (stratum, mass) ((n, mean, m2), (pn, pmean, pm2)) ->
         pr "stratum %s %s %d %s %s %d %s %s\n" (stratum_name stratum) (hexf mass) n (hexf mean)
           (hexf m2) pn (hexf pmean) (hexf pm2))
       s.Ssf.Tally.snap_strata
       (List.combine s.Ssf.Tally.snap_accs s.Ssf.Tally.snap_pess);
     pr "contributions %d\n" (List.length s.Ssf.Tally.snap_contributions);
     List.iter
       (fun ((group, bit), w) -> pr "contribution %s %d %s\n" group bit (hexf w))
       s.Ssf.Tally.snap_contributions;
     pr "trace %d\n" (List.length s.Ssf.Tally.snap_trace);
     List.iter (fun (i, e) -> pr "tracepoint %d %s\n" i (hexf e)) s.Ssf.Tally.snap_trace;
     pr "end\n"
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

type checkpoint = {
  ck_strategy : string;
  ck_seed : int;
  ck_rng : int64;
  ck_snapshot : Ssf.Tally.snapshot;
}

let read_checkpoint path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let lineno = ref 0 in
  let line () =
    incr lineno;
    try input_line ic with End_of_file -> corrupt "truncated checkpoint at line %d" !lineno
  in
  let fields key =
    let l = line () in
    match String.split_on_char ' ' l with
    | k :: rest when k = key -> rest
    | k :: _ -> corrupt "line %d: expected %S, found %S" !lineno key k
    | [] -> corrupt "line %d: empty line, expected %S" !lineno key
  in
  let one key =
    match fields key with [ v ] -> v | l -> corrupt "line %d: %s wants 1 field, got %d" !lineno key (List.length l)
  in
  let int_of key v = try int_of_string v with _ -> corrupt "line %d: bad int %S in %s" !lineno v key in
  let float_of key v = try float_of_string v with _ -> corrupt "line %d: bad float %S in %s" !lineno v key in
  (match fields "faultmc-campaign" with
  | [ v ] when int_of "version" v = checkpoint_version -> ()
  | [ v ] -> corrupt "unsupported checkpoint version %s (this binary reads v%d)" v checkpoint_version
  | _ -> corrupt "malformed header");
  let strategy = one "strategy" in
  let seed = int_of "seed" (one "seed") in
  let samples = int_of "samples" (one "samples") in
  let trace_every = int_of "trace_every" (one "trace_every") in
  let rng =
    let v = one "rng" in
    try Int64.of_string v with _ -> corrupt "line %d: bad rng state %S" !lineno v
  in
  let processed = int_of "processed" (one "processed") in
  let masked, mem_only, resumed, quarantined, q_crashed, q_timed_out, successes, by_direct, by_comb =
    match fields "counts" with
    | [ a; b; c; d; e; f; g; h; i ] ->
        ( int_of "counts" a, int_of "counts" b, int_of "counts" c, int_of "counts" d,
          int_of "counts" e, int_of "counts" f, int_of "counts" g, int_of "counts" h,
          int_of "counts" i )
    | _ -> corrupt "line %d: counts wants 9 fields" !lineno
  in
  let sum_w, sum_w2 =
    match fields "weights" with
    | [ a; b ] -> (float_of "weights" a, float_of "weights" b)
    | _ -> corrupt "line %d: weights wants 2 fields" !lineno
  in
  let n_strata = int_of "strata" (one "strata") in
  let strata = ref [] and accs = ref [] and pess = ref [] in
  for _ = 1 to n_strata do
    match fields "stratum" with
    | [ name; mass; n; mean; m2; pn; pmean; pm2 ] ->
        strata := (stratum_of_name name, float_of "stratum" mass) :: !strata;
        accs := (int_of "stratum" n, float_of "stratum" mean, float_of "stratum" m2) :: !accs;
        pess := (int_of "stratum" pn, float_of "stratum" pmean, float_of "stratum" pm2) :: !pess
    | _ -> corrupt "line %d: stratum wants 8 fields" !lineno
  done;
  let n_contrib = int_of "contributions" (one "contributions") in
  let contribs = ref [] in
  for _ = 1 to n_contrib do
    match fields "contribution" with
    | [ group; bit; w ] ->
        contribs := ((group, int_of "contribution" bit), float_of "contribution" w) :: !contribs
    | _ -> corrupt "line %d: contribution wants 3 fields" !lineno
  done;
  let n_trace = int_of "trace" (one "trace") in
  let trace = ref [] in
  for _ = 1 to n_trace do
    match fields "tracepoint" with
    | [ i; e ] -> trace := (int_of "tracepoint" i, float_of "tracepoint" e) :: !trace
    | _ -> corrupt "line %d: tracepoint wants 2 fields" !lineno
  done;
  (match fields "end" with [] -> () | _ -> corrupt "line %d: trailing fields after end" !lineno);
  {
    ck_strategy = strategy;
    ck_seed = seed;
    ck_rng = rng;
    ck_snapshot =
      {
        Ssf.Tally.snap_total = samples;
        snap_trace_every = trace_every;
        snap_processed = processed;
        snap_strata = List.rev !strata;
        snap_accs = List.rev !accs;
        snap_pess = List.rev !pess;
        snap_masked = masked;
        snap_mem_only = mem_only;
        snap_resumed = resumed;
        snap_quarantined = quarantined;
        snap_q_crashed = q_crashed;
        snap_q_timed_out = q_timed_out;
        snap_successes = successes;
        snap_by_direct = by_direct;
        snap_by_comb = by_comb;
        snap_sum_w = sum_w;
        snap_sum_w2 = sum_w2;
        snap_contributions = List.rev !contribs;
        snap_trace = List.rev !trace;
      };
  }

(* ------------------------------------------------------------------ *)
(* Failure journal: one JSON object per quarantined sample, appended and
   flushed immediately so the journal survives the very crash it logs. *)

let json_string s = "\"" ^ Export.json_escape s ^ "\""

let journal_line (q : quarantine_entry) =
  let disposition, error =
    match q.q_disposition with
    | Timed_out -> ("timed_out", "per-sample cycle budget exhausted")
    | Crashed msg -> ("crashed", msg)
  in
  Printf.sprintf
    "{\"index\":%d,\"disposition\":%s,\"error\":%s,\"sample\":{\"stratum\":%s,\"t\":%d,\"center\":%d,\"radius\":%.17g,\"width\":%.17g,\"time_frac\":%.17g,\"weight\":%.17g}}"
    q.q_index (json_string disposition) (json_string error)
    (json_string (stratum_name q.q_stratum))
    q.q_t q.q_center q.q_radius q.q_width q.q_time_frac q.q_weight

(* ------------------------------------------------------------------ *)
(* Supervised per-sample evaluation. *)

let evaluate_guarded ~causal ?sample_budget ?fault_hook engine rng i sample =
  match
    (match fault_hook with Some h -> h i sample | None -> ());
    let result = Engine.run_sample engine ?cycle_budget:sample_budget rng sample in
    let attributed =
      if result.Engine.success && causal then Engine.causal_flips engine result
      else result.Engine.flips
    in
    (result, attributed)
  with
  | r -> Ok r
  | exception System.Cycle_budget_exhausted _ -> Error Timed_out
  | exception Sys.Break -> raise Sys.Break
  | exception e -> Error (Crashed (Printexc.to_string e))

let install_handlers flag =
  let install s =
    try Some (s, Sys.signal s (Sys.Signal_handle (fun _ -> flag := true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  List.filter_map install [ Sys.sigint; Sys.sigterm ]

let restore_handlers saved =
  List.iter (fun (s, old) -> try Sys.set_signal s old with Invalid_argument _ | Sys_error _ -> ()) saved

let run_loop config ~obs ~causal ?fault_hook ?stop engine prepared ~tally ~rng ~seed =
  if config.checkpoint_every <= 0 then invalid_arg "Campaign: non-positive checkpoint_every";
  let samples = Ssf.Tally.total tally in
  let strategy = Sampler.name prepared in
  let t_start = Fmc_obs.Clock.now () in
  let base_processed = Ssf.Tally.processed tally in
  let ck_counter =
    match obs.Obs.metrics with
    | None -> None
    | Some reg ->
        Some (Metrics.counter reg ~help:"durable campaign checkpoints written" "fmc_checkpoints_total")
  in
  let journal_oc =
    Option.map (fun p -> open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 p)
      config.journal_path
  in
  let flush_checkpoint () =
    match config.checkpoint_path with
    | None -> ()
    | Some path ->
        Option.iter Metrics.inc ck_counter;
        Obs.span obs ~cat:"campaign" "checkpoint_write" (fun () ->
            write_checkpoint path ~seed ~strategy ~rng_state:(Rng.state rng)
              (Ssf.Tally.snapshot tally))
  in
  let quarantines = ref [] in
  let interrupted = ref false in
  let saved = if config.handle_signals then install_handlers interrupted else [] in
  (* Engine phase spans land in the same sinks for the campaign's duration. *)
  let saved_obs = if Obs.enabled obs then Some (Engine.obs engine) else None in
  Option.iter (fun _ -> Engine.set_obs engine obs) saved_obs;
  Fun.protect
    ~finally:(fun () ->
      Option.iter (Engine.set_obs engine) saved_obs;
      restore_handlers saved;
      Option.iter close_out_noerr journal_oc)
  @@ fun () ->
  let should_stop () =
    !interrupted || (match stop with Some f -> f (Ssf.Tally.processed tally) | None -> false)
  in
  let stopped = ref false in
  while (not !stopped) && Ssf.Tally.processed tally < samples do
    if should_stop () then stopped := true
    else begin
      let i = Ssf.Tally.processed tally + 1 in
      let sample = Sampler.draw ~obs prepared rng in
      (match
         evaluate_guarded ~causal ?sample_budget:config.sample_budget ?fault_hook engine rng i
           sample
       with
      | Ok (result, attributed) -> Ssf.Tally.record tally sample result ~attributed
      | Error disposition ->
          let reason =
            match disposition with Timed_out -> Ssf.Q_timed_out | Crashed _ -> Ssf.Q_crashed
          in
          Ssf.Tally.quarantine tally sample ~reason;
          let entry =
            {
              q_index = i;
              q_disposition = disposition;
              q_stratum = sample.Sampler.stratum;
              q_t = sample.Sampler.t;
              q_center = sample.Sampler.center;
              q_radius = sample.Sampler.radius;
              q_width = sample.Sampler.width;
              q_time_frac = sample.Sampler.time_frac;
              q_weight = sample.Sampler.weight;
            }
          in
          quarantines := entry :: !quarantines;
          Option.iter
            (fun oc ->
              output_string oc (journal_line entry);
              output_char oc '\n';
              flush oc)
            journal_oc);
      (* The checkpoint is taken after the sample's draws and statistics
         landed, so the stored RNG state resumes with the next sample and
         the continuation is bit-exact. *)
      if i mod config.checkpoint_every = 0 then flush_checkpoint ()
    end
  done;
  flush_checkpoint ();
  let elapsed_s = Fmc_obs.Clock.now () -. t_start in
  let done_here = Ssf.Tally.processed tally - base_processed in
  {
    report = Ssf.Tally.report tally ~strategy;
    status = (if Ssf.Tally.processed tally >= samples then Completed else Interrupted);
    quarantined = List.rev !quarantines;
    elapsed_s;
    samples_per_sec = (if elapsed_s > 0. then float_of_int done_here /. elapsed_s else 0.);
  }

let run ?(config = default_config) ?(obs = Obs.disabled) ?trace_every ?(causal = true) ?fault_hook
    ?stop engine prepared ~samples ~seed =
  if samples <= 0 then invalid_arg "Campaign.run: non-positive sample count";
  let rng = Rng.create seed in
  let tally = Ssf.Tally.create ~obs ?trace_every prepared ~total:samples in
  run_loop config ~obs ~causal ?fault_hook ?stop engine prepared ~tally ~rng ~seed

let resume ?config ?(obs = Obs.disabled) ?(causal = true) ?fault_hook ?stop engine prepared ~path =
  let ck = read_checkpoint path in
  if ck.ck_strategy <> Sampler.name prepared then
    corrupt "checkpoint was taken under strategy %S, not %S (the sample stream would diverge)"
      ck.ck_strategy (Sampler.name prepared);
  let config =
    let c = Option.value config ~default:default_config in
    (* Keep writing to the checkpoint we resumed from unless redirected. *)
    if c.checkpoint_path = None then { c with checkpoint_path = Some path } else c
  in
  let rng = Rng.of_state ck.ck_rng in
  let tally = Ssf.Tally.restore ~obs ck.ck_snapshot in
  run_loop config ~obs ~causal ?fault_hook ?stop engine prepared ~tally ~rng ~seed:ck.ck_seed
