(** Fault-tolerant campaign runner: a supervised, resumable wrapper around
    the {!Ssf} estimator for long Monte Carlo campaigns.

    Three failure modes of a long campaign are handled:

    + {b process death} — the accumulated statistics are periodically
      serialized to a durable checkpoint (atomic rename-on-write), and
      {!resume} continues a campaign {e bit-exactly}: an interrupted +
      resumed run produces the same report as an uninterrupted one;
    + {b pathological samples} — a sample whose evaluation raises or blows
      a configurable cycle budget is quarantined (recorded in the failure
      journal, excluded from the honest estimate, folded into the
      conservative [ssf_upper] bound) instead of killing the campaign;
    + {b operator interruption} — SIGINT/SIGTERM request a graceful stop:
      the in-flight sample finishes, a final checkpoint is flushed, and
      the partial report is returned with status {!Interrupted}.

    {2 Checkpoint format}

    A versioned line-oriented text file (header [faultmc-campaign 5];
    v3 factored the whole tally state out into the shared
    {!Ssf.Tally.to_string} codec — the same serializer the distributed
    campaign service ([Fmc_dist]) ships shard results and coordinator
    state with — leaving the checkpoint a campaign header (strategy,
    seed, RNG state) around that blob; v4 seals the file with a
    [crc %08x] trailer line (CRC-32 of every byte up to and including
    the [end] marker), so truncation or bit rot is detected before any
    of the body is parsed; v5 adds a [model] header line carrying the
    canonical fault model ({!Ssf.inject_model}), refused on resume
    mismatch exactly like the strategy. v3/v4 files are still read (no
    model line means disc-transient, the only model that existed when
    they were written); older versions are refused rather than
    silently misread. Every float is a
    hex float literal ([%h]) so the round-trip through
    [float_of_string] is bit-exact; the RNG state is the raw SplitMix64
    int64 word. Checkpoints are written to [path ^ ".tmp"] and renamed
    into place, so a crash mid-write never corrupts the previous
    checkpoint. Unknown versions, CRC mismatches and malformed files
    raise {!Checkpoint_corrupt} carrying the offending path.

    {2 Failure journal}

    One JSON object per quarantined sample (JSON Lines), appended and
    flushed immediately:
    [{"index":..,"disposition":"crashed"|"timed_out","error":..,
      "sample":{"stratum":..,"t":..,"center":..,"radius":..,"width":..,
      "time_frac":..,"weight":..}}]. *)

type disposition =
  | Crashed of string  (** the evaluation raised; payload: the exception *)
  | Timed_out  (** the per-sample cycle budget was exhausted *)

type quarantine_entry = {
  q_index : int;  (** 1-based sample index within the campaign *)
  q_disposition : disposition;
  q_stratum : Sampler.stratum;
  q_t : int;
  q_center : Fmc_netlist.Netlist.node;
  q_radius : float;
  q_width : float;
  q_time_frac : float;
  q_weight : float;
}

type config = {
  checkpoint_path : string option;  (** where to durably snapshot state *)
  checkpoint_every : int;  (** snapshot period in samples (default 1000) *)
  journal_path : string option;  (** JSONL failure journal, append mode *)
  sample_budget : int option;
      (** per-sample RTL cycle budget; exceeding it quarantines the sample
          as [Timed_out] (see {!Engine.run_sample}'s [cycle_budget]) *)
  handle_signals : bool;
      (** install SIGINT/SIGTERM handlers for graceful stop (default true;
          disable inside tests or when the host owns signal handling) *)
}

val default_config : config
(** No checkpointing, no journal, no budget, signals handled. *)

type status =
  | Completed  (** all requested samples were consumed *)
  | Interrupted  (** stopped early by a signal or the [stop] predicate *)

type result = {
  report : Ssf.report;  (** quarantined samples count in [n] and [outcomes.quarantined] *)
  status : status;
  quarantined : quarantine_entry list;  (** chronological *)
  elapsed_s : float;  (** wall-clock duration of this run/resume segment *)
  samples_per_sec : float;
      (** throughput of this segment: samples processed here over
          [elapsed_s] (a resumed campaign does not count the samples or
          downtime before its checkpoint); 0 when [elapsed_s] is 0 *)
}

exception Checkpoint_corrupt of { path : string; reason : string }
(** A checkpoint file that cannot be trusted: unreadable, truncated,
    failing its CRC-32 trailer, malformed, an unsupported version, or
    taken under a different sampling strategy. [path] is the offending
    file. *)

val run :
  ?config:config ->
  ?obs:Fmc_obs.Obs.t ->
  ?trace_every:int ->
  ?causal:bool ->
  ?fault_hook:(int -> Sampler.sample -> unit) ->
  ?prune:(Sampler.sample -> bool) ->
  ?inject:Ssf.inject ->
  ?stop:(int -> bool) ->
  Engine.t ->
  Sampler.prepared ->
  samples:int ->
  seed:int ->
  result
(** Run a fresh campaign. With no quarantines and no interruption the
    report is identical to [Ssf.estimate ~causal engine prepared ~samples
    ~seed]. [inject] evaluates every sample under a pluggable fault model
    instead of the native disc transient (see {!Ssf.inject}); it is
    recorded in the checkpoint header and refused in combination with
    [prune] (masking certificates are disc-transient-only).
    [stop] is polled with the processed-sample count before each
    draw (a [true] stops the campaign exactly like a signal would);
    [fault_hook] runs inside the per-sample guard before evaluation — an
    exception it raises quarantines that sample (test fault-injection
    point). [prune] is the analytical masking oracle of [Ssf.estimate]:
    a covered sample skips evaluation (and the fault hook) and is tallied
    as masked with its original weight, keeping the report byte-identical
    to the unpruned campaign. [obs] (default disabled) attaches observability: the tally's
    convergence telemetry, a ["checkpoint_write"] span plus
    [fmc_checkpoints_total] counter per durable checkpoint, and the
    engine's phase spans (the handle is installed on [engine] for the
    campaign's duration, restoring the previous one after). Observability
    never touches the RNG — the report stays bit-identical. Raises
    [Invalid_argument] on a non-positive sample count or checkpoint
    period. *)

val journal_line : quarantine_entry -> string
(** The failure journal's JSON rendering of one entry (no trailing
    newline) — exposed so the distributed coordinator can journal entries
    reported by remote workers in the exact format local campaigns use. *)

val quarantine_entry_to_string : quarantine_entry -> string
(** Compact single-line text codec for a quarantine entry, shared by the
    distributed wire protocol and the coordinator checkpoint. A crash
    message survives verbatim except that newlines are flattened to
    spaces. *)

val quarantine_entry_of_string :
  string -> (quarantine_entry, string) Stdlib.result
(** Decode {!quarantine_entry_to_string}'s encoding. *)

(** {2 Shard-seeded execution}

    The unit of work of a distributed campaign ([Fmc_dist]). A shard is a
    contiguous sample-index range of the {!Ssf.shard_plan} cut, evaluated
    under its own SplitMix64 substream [Rng.substream ~seed ~shard] — so
    the drawn samples depend only on [(seed, shard)], never on which
    process runs the shard or how often its lease was re-issued, and
    re-running a shard reproduces the bit-identical snapshot. *)

type shard_result = {
  sh_shard : int;
  sh_start : int;  (** global index of the shard's first sample *)
  sh_len : int;
  sh_snapshot : Ssf.Tally.snapshot;
  sh_quarantined : quarantine_entry list;
      (** chronological; [q_index] values are global sample indices *)
}

val run_shard :
  ?obs:Fmc_obs.Obs.t ->
  ?trace_every:int ->
  ?causal:bool ->
  ?sample_budget:int ->
  ?fault_hook:(int -> Sampler.sample -> unit) ->
  ?prune:(Sampler.sample -> bool) ->
  ?inject:Ssf.inject ->
  ?on_sample:(int -> unit) ->
  Engine.t ->
  Sampler.prepared ->
  seed:int ->
  shard:int ->
  start:int ->
  len:int ->
  shard_result
(** Evaluate one shard with the same per-sample supervision as {!run}
    (crash guard, cycle-budget watchdog, quarantine accounting).
    [on_sample] is called with the within-shard sample count (1-based)
    after every consumed sample, {e outside} the crash guard — a worker
    uses it to send heartbeats, and may raise from it to abandon the
    shard (e.g. on a lost lease) without quarantining the current sample.
    Raises [Invalid_argument] on a non-positive [len] or negative
    [start]. *)

val shard_report : strategy:string -> Ssf.Tally.snapshot -> Ssf.report
(** [Ssf.Tally.report] of a restored snapshot: how both the coordinator
    and {!estimate_sharded} turn a shard's (possibly wire-decoded)
    snapshot into a mergeable report. Restoring then reporting is
    bit-exact, so the merged campaign report cannot depend on whether a
    snapshot crossed a process boundary. *)

val estimate_sharded :
  ?obs:Fmc_obs.Obs.t ->
  ?trace_every:int ->
  ?causal:bool ->
  ?sample_budget:int ->
  ?fault_hook:(int -> Sampler.sample -> unit) ->
  ?prune:(Sampler.sample -> bool) ->
  ?inject:Ssf.inject ->
  ?shard_size:int ->
  Engine.t ->
  Sampler.prepared ->
  samples:int ->
  seed:int ->
  result
(** The single-process reference for a distributed campaign: run every
    shard of [Ssf.shard_plan ~samples ~shard_size] (default 1000) in
    order, then pool the per-shard reports with {!Ssf.merge_reports}. A
    distributed run with the same [(samples, seed, shard_size)] produces
    the bit-identical report — same [ssf], [variance], [sum_w], [sum_w2],
    outcome counts, trace and contributions — independent of worker
    count, scheduling or mid-campaign worker deaths. Raises
    [Invalid_argument] on non-positive [samples] or [shard_size]. *)

val resume :
  ?config:config ->
  ?obs:Fmc_obs.Obs.t ->
  ?causal:bool ->
  ?fault_hook:(int -> Sampler.sample -> unit) ->
  ?prune:(Sampler.sample -> bool) ->
  ?inject:Ssf.inject ->
  ?stop:(int -> bool) ->
  Engine.t ->
  Sampler.prepared ->
  path:string ->
  result
(** Continue a checkpointed campaign from [path]. The engine, prepared
    sampler and fault model must be reconstructed identically to the
    original run (same benchmark, strategy and parameters) — the
    checkpoint carries the strategy name and canonical fault model and
    refuses a mismatch of either, but cannot verify the rest.
    Unless [config] overrides [checkpoint_path], further checkpoints are
    written back to [path]. Raises {!Checkpoint_corrupt} on a malformed,
    truncated, CRC-failing or version-mismatched file. *)
