(** Fault-tolerant campaign runner: a supervised, resumable wrapper around
    the {!Ssf} estimator for long Monte Carlo campaigns.

    Three failure modes of a long campaign are handled:

    + {b process death} — the accumulated statistics are periodically
      serialized to a durable checkpoint (atomic rename-on-write), and
      {!resume} continues a campaign {e bit-exactly}: an interrupted +
      resumed run produces the same report as an uninterrupted one;
    + {b pathological samples} — a sample whose evaluation raises or blows
      a configurable cycle budget is quarantined (recorded in the failure
      journal, excluded from the honest estimate, folded into the
      conservative [ssf_upper] bound) instead of killing the campaign;
    + {b operator interruption} — SIGINT/SIGTERM request a graceful stop:
      the in-flight sample finishes, a final checkpoint is flushed, and
      the partial report is returned with status {!Interrupted}.

    {2 Checkpoint format}

    A versioned line-oriented text file (header [faultmc-campaign 2];
    v2 added the per-reason quarantine counts to the [counts] line —
    older checkpoints are refused rather than silently misread).
    Every float is a hex float literal ([%h]) so the round-trip through
    [float_of_string] is bit-exact; the RNG state is the raw SplitMix64
    int64 word. Checkpoints are written to [path ^ ".tmp"] and renamed into
    place, so a crash mid-write never corrupts the previous checkpoint.
    Unknown versions and malformed files raise {!Corrupt_checkpoint}.

    {2 Failure journal}

    One JSON object per quarantined sample (JSON Lines), appended and
    flushed immediately:
    [{"index":..,"disposition":"crashed"|"timed_out","error":..,
      "sample":{"stratum":..,"t":..,"center":..,"radius":..,"width":..,
      "time_frac":..,"weight":..}}]. *)

type disposition =
  | Crashed of string  (** the evaluation raised; payload: the exception *)
  | Timed_out  (** the per-sample cycle budget was exhausted *)

type quarantine_entry = {
  q_index : int;  (** 1-based sample index within the campaign *)
  q_disposition : disposition;
  q_stratum : Sampler.stratum;
  q_t : int;
  q_center : Fmc_netlist.Netlist.node;
  q_radius : float;
  q_width : float;
  q_time_frac : float;
  q_weight : float;
}

type config = {
  checkpoint_path : string option;  (** where to durably snapshot state *)
  checkpoint_every : int;  (** snapshot period in samples (default 1000) *)
  journal_path : string option;  (** JSONL failure journal, append mode *)
  sample_budget : int option;
      (** per-sample RTL cycle budget; exceeding it quarantines the sample
          as [Timed_out] (see {!Engine.run_sample}'s [cycle_budget]) *)
  handle_signals : bool;
      (** install SIGINT/SIGTERM handlers for graceful stop (default true;
          disable inside tests or when the host owns signal handling) *)
}

val default_config : config
(** No checkpointing, no journal, no budget, signals handled. *)

type status =
  | Completed  (** all requested samples were consumed *)
  | Interrupted  (** stopped early by a signal or the [stop] predicate *)

type result = {
  report : Ssf.report;  (** quarantined samples count in [n] and [outcomes.quarantined] *)
  status : status;
  quarantined : quarantine_entry list;  (** chronological *)
  elapsed_s : float;  (** wall-clock duration of this run/resume segment *)
  samples_per_sec : float;
      (** throughput of this segment: samples processed here over
          [elapsed_s] (a resumed campaign does not count the samples or
          downtime before its checkpoint); 0 when [elapsed_s] is 0 *)
}

exception Corrupt_checkpoint of string

val run :
  ?config:config ->
  ?obs:Fmc_obs.Obs.t ->
  ?trace_every:int ->
  ?causal:bool ->
  ?fault_hook:(int -> Sampler.sample -> unit) ->
  ?stop:(int -> bool) ->
  Engine.t ->
  Sampler.prepared ->
  samples:int ->
  seed:int ->
  result
(** Run a fresh campaign. With no quarantines and no interruption the
    report is identical to [Ssf.estimate ~causal engine prepared ~samples
    ~seed]. [stop] is polled with the processed-sample count before each
    draw (a [true] stops the campaign exactly like a signal would);
    [fault_hook] runs inside the per-sample guard before evaluation — an
    exception it raises quarantines that sample (test fault-injection
    point). [obs] (default disabled) attaches observability: the tally's
    convergence telemetry, a ["checkpoint_write"] span plus
    [fmc_checkpoints_total] counter per durable checkpoint, and the
    engine's phase spans (the handle is installed on [engine] for the
    campaign's duration, restoring the previous one after). Observability
    never touches the RNG — the report stays bit-identical. Raises
    [Invalid_argument] on a non-positive sample count or checkpoint
    period. *)

val resume :
  ?config:config ->
  ?obs:Fmc_obs.Obs.t ->
  ?causal:bool ->
  ?fault_hook:(int -> Sampler.sample -> unit) ->
  ?stop:(int -> bool) ->
  Engine.t ->
  Sampler.prepared ->
  path:string ->
  result
(** Continue a checkpointed campaign from [path]. The engine and prepared
    sampler must be reconstructed identically to the original run (same
    benchmark, strategy and parameters) — the checkpoint carries the
    strategy name and refuses a mismatch, but cannot verify the rest.
    Unless [config] overrides [checkpoint_path], further checkpoints are
    written back to [path]. Raises {!Corrupt_checkpoint} on a malformed,
    truncated or version-mismatched file. *)
