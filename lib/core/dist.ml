module Rng = Fmc_prelude.Rng
module Wdist = Fmc_prelude.Wdist

type int_dist =
  | Uniform_int of int * int
  | Delta_int of int
  | Discrete of int array * float array

type float_dist = Uniform_float of float * float

let validate_int = function
  | Uniform_int (lo, hi) -> if hi < lo then invalid_arg "Dist: empty uniform range"
  | Delta_int _ -> ()
  | Discrete (values, weights) ->
      if Array.length values = 0 || Array.length values <> Array.length weights then
        invalid_arg "Dist: ill-formed discrete distribution";
      ignore (Wdist.create weights)

let sample_int d rng =
  match d with
  | Uniform_int (lo, hi) -> Rng.int_in rng lo hi
  | Delta_int v -> v
  | Discrete (values, weights) -> values.(Wdist.sample (Wdist.create weights) rng)

let pmf_int d v =
  match d with
  | Uniform_int (lo, hi) -> if v >= lo && v <= hi then 1. /. float_of_int (hi - lo + 1) else 0.
  | Delta_int x -> if v = x then 1. else 0.
  | Discrete (values, weights) ->
      let w = Wdist.create weights in
      let total = ref 0. in
      Array.iteri (fun i x -> if x = v then total := !total +. Wdist.pmf w i) values;
      !total

let support_int = function
  | Uniform_int (lo, hi) -> List.init (hi - lo + 1) (fun i -> lo + i)
  | Delta_int v -> [ v ]
  | Discrete (values, weights) ->
      let w = Wdist.create weights in
      Array.to_list values
      |> List.filteri (fun i _ -> Wdist.pmf w i > 0.)
      |> List.sort_uniq compare

let sample_float (Uniform_float (lo, hi)) rng =
  if hi <= lo then lo else lo +. Rng.float rng (hi -. lo)
