(** Elementary distributions of the holistic fault-injection model
    (paper §3.2).

    The attack parameters — timing distance [T] and technique parameters
    [P = \[g, r\]] — are random variables. Temporal accuracy and
    cycle-to-cycle technique variation are expressed by the spread of these
    distributions; Fig. 11 of the paper sweeps them from wide uniform to a
    delta. *)

type int_dist =
  | Uniform_int of int * int  (** inclusive bounds *)
  | Delta_int of int
  | Discrete of int array * float array  (** values, weights *)

type float_dist = Uniform_float of float * float  (** \[lo, hi); lo when degenerate *)

val sample_int : int_dist -> Fmc_prelude.Rng.t -> int
val pmf_int : int_dist -> int -> float
(** Probability of a value (0 outside the support). *)

val support_int : int_dist -> int list

val sample_float : float_dist -> Fmc_prelude.Rng.t -> float

val validate_int : int_dist -> unit
(** Raises [Invalid_argument] on an empty/ill-formed distribution. *)
