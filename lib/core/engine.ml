module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind
module Placement = Fmc_layout.Placement
module Transient = Fmc_gatesim.Transient
module Glitch = Fmc_gatesim.Glitch
module Cycle_sim = Fmc_gatesim.Cycle_sim
module Circuit = Fmc_cpu.Circuit
module Netsys = Fmc_cpu.Netsys
module System = Fmc_cpu.System
module Arch = Fmc_cpu.Arch
module Programs = Fmc_isa.Programs
module Rng = Fmc_prelude.Rng
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics

(* Pre-resolved metric cells for the engine's phase counters (rebuilt by
   [set_obs]; hot paths touch plain record fields only). *)
type einst = {
  e_restores : Metrics.counter;
  e_rtl_cycles : Metrics.counter;
  e_gate_cycles : Metrics.counter;
  e_sample_us : Metrics.histogram;
}

let make_einst (obs : Obs.t) =
  match obs.Obs.metrics with
  | None -> None
  | Some reg ->
      Some
        {
          e_restores =
            Metrics.counter reg ~help:"golden checkpoint restores" "fmc_restores_total";
          e_rtl_cycles =
            Metrics.counter reg ~help:"RTL cycles stepped (replay windows and resumes)"
              "fmc_rtl_cycles_total";
          e_gate_cycles =
            Metrics.counter reg ~help:"gate-level injection cycles evaluated"
              "fmc_gate_cycles_total";
          e_sample_us =
            Metrics.histogram reg ~help:"end-to-end run_sample latency (us)"
              ~buckets:[| 10.; 30.; 100.; 300.; 1000.; 3000.; 10000.; 100000. |]
              "fmc_sample_duration_us";
        }

type t = {
  precharac : Precharac.t;
  circuit : Circuit.t;
  placement : Placement.t;
  pindex : Placement.index;  (* same query results as [placement], O(disc area) *)
  tconfig : Transient.config;
  timing : Glitch.timing;
  program : Programs.t;
  golden : Golden.t;
  netsys : Netsys.t;  (* reused across samples; state rewritten per run *)
  (* Mutable so cached/shared engines (e.g. Experiments' per-benchmark
     cache) can be instrumented per run; [Ssf.estimate] installs its
     handle for the duration of a run and restores the previous one. *)
  mutable obs : Obs.t;
  mutable einst : einst option;
}

let obs t = t.obs

let set_obs t obs =
  t.obs <- obs;
  t.einst <- make_einst obs

let create ?(checkpoint_every = 16) ?(placement_seed = 1) ~precharac program =
  let circuit = Precharac.circuit precharac in
  let placement = Placement.place ~seed:placement_seed circuit.Circuit.net in
  let tconfig = Transient.default_config circuit.Circuit.net in
  let golden = Golden.run ~checkpoint_every program in
  let netsys = Netsys.create circuit program in
  let timing = Glitch.static_timing circuit.Circuit.net tconfig in
  {
    precharac;
    circuit;
    placement;
    pindex = Placement.index placement;
    tconfig;
    timing;
    program;
    golden;
    netsys;
    obs = Obs.disabled;
    einst = None;
  }

let golden t = t.golden
let placement t = t.placement
let precharac t = t.precharac
let circuit t = t.circuit
let transient_config t = t.tconfig
let program t = t.program

type outcome = Masked | Analytical of bool | Resumed of bool

type run_result = {
  sample : Sampler.sample;
  te : int;
  outcome : outcome;
  success : bool;
  flips : (string * int) list;
  direct : N.node array;
  latched : N.node array;
  struck_cells : int;
}

(* Evaluate the injection cycle at gate level: [sys] stands at [Te] with
   direct flips already applied. Returns the latched-error flip-flops; [sys]
   is advanced one cycle (state and memory reflect the gate-level cycle). *)
let gate_level_cycle t sys (sample : Sampler.sample) gate_strikes =
  let net_dmem = Netsys.dmem t.netsys in
  Array.blit (System.dmem sys) 0 net_dmem 0 (Array.length net_dmem);
  Netsys.load_arch t.netsys (System.state sys);
  Netsys.settle t.netsys;
  let strikes =
    List.map
      (fun g ->
        {
          Transient.node = g;
          time = sample.Sampler.time_frac *. t.tconfig.Transient.clock_period;
          width = sample.Sampler.width;
        })
      gate_strikes
  in
  (* The external memory's write port is a synchronous sample point too:
     transients reaching dmem_we / dmem_addr / dmem_wdata in the latch
     window are captured by the RAM exactly like a flip-flop would — this
     is the same-cycle channel a classic fault attack uses to commit a
     store whose violation flag was suppressed. *)
  let we_node = t.circuit.Circuit.dmem_we in
  let addr_nodes = t.circuit.Circuit.dmem_addr in
  let wdata_nodes = t.circuit.Circuit.dmem_wdata in
  let watch = Array.concat [ [| we_node |]; addr_nodes; wdata_nodes ] in
  let result = Transient.inject ~watch (Netsys.sim t.netsys) t.tconfig ~strikes in
  let hit node = Array.mem node result.Transient.watched_hits in
  let sim = Netsys.sim t.netsys in
  let corrupted_bus nodes =
    let v = ref 0 in
    Array.iteri
      (fun i node ->
        let bit = Cycle_sim.value sim node <> hit node in
        if bit then v := !v lor (1 lsl i))
      nodes;
    !v
  in
  let we_eff = Cycle_sim.value sim we_node <> hit we_node in
  (if we_eff then begin
     let addr = corrupted_bus addr_nodes in
     net_dmem.(addr land (Array.length net_dmem - 1)) <- corrupted_bus wdata_nodes
   end);
  Cycle_sim.latch sim;
  (* Write the (fault-free-latched) next state and memory back to RTL. *)
  let next = Netsys.read_arch t.netsys in
  let st = System.state sys in
  List.iter (fun (name, _) -> Arch.set_group st name (Arch.get_group next name)) Arch.groups;
  Array.blit net_dmem 0 (System.dmem sys) 0 (Array.length net_dmem);
  System.advance_externally sys;
  result.Transient.latched

let partition_disc ?(cell_filter = fun _ -> true) t center radius =
  let cells =
    Array.of_list
      (List.filter cell_filter
         (Array.to_list (Placement.within_indexed t.pindex ~center ~radius)))
  in
  let dffs = ref [] and gates = ref [] in
  Array.iter
    (fun c ->
      match N.kind t.circuit.Circuit.net c with
      | K.Dff _ -> dffs := c :: !dffs
      | K.Gate _ -> gates := c :: !gates
      | K.Input | K.Const _ -> ())
    cells;
  (List.rev !dffs, List.rev !gates, Array.length cells)

let apply_flip sys net dff =
  let group, bit = N.dff_group net dff in
  let st = System.state sys in
  Arch.set_group st group (Arch.get_group st group lxor (1 lsl bit))

let observables_differ t sys =
  System.observable_values sys <> Golden.final_observables t.golden

(* Exact register-error extraction: compare the post-injection-cycle state
   against the golden state at [te + 1] bit by bit. (A direct flip that the
   cycle's own register write overwrote is thereby correctly dropped.) *)
let state_bit_diffs faulty golden_state =
  List.concat_map
    (fun (name, _) ->
      let diff = Arch.get_group faulty name lxor Arch.get_group golden_state name in
      let rec bits b acc = if diff lsr b = 0 then List.rev acc
        else bits (b + 1) (if (diff lsr b) land 1 = 1 then (name, b) :: acc else acc)
      in
      bits 0 [])
    Arch.groups

let run_sample t ?cell_filter ?(impact_cycles = 1) ?(hardened = fun _ -> false) ?(resilience = 10.)
    ?cycle_budget rng (sample : Sampler.sample) =
  if impact_cycles < 1 then invalid_arg "Engine.run_sample: impact_cycles must be >= 1";
  let te = Golden.target_cycle t.golden - sample.Sampler.t in
  if te < 1 then
    {
      sample;
      te;
      outcome = Masked;
      success = false;
      flips = [];
      direct = [||];
      latched = [||];
      struck_cells = 0;
    }
  else begin
    let t_begin = match t.einst with None -> 0. | Some _ -> Fmc_obs.Clock.now_us () in
    let on_step =
      match t.einst with
      | None -> None
      | Some ei -> Some (fun () -> Metrics.inc ei.e_rtl_cycles)
    in
    let restore cycle =
      (match t.einst with None -> () | Some ei -> Metrics.inc ei.e_restores);
      Obs.span t.obs ~cat:"engine" "restore" (fun () ->
          Golden.restore_at ?on_step t.golden cycle)
    in
    let net = t.circuit.Circuit.net in
    let sys = restore te in
    let dff_hits, gate_hits, struck_cells = partition_disc ?cell_filter t sample.Sampler.center sample.Sampler.radius in
    let survives dff = (not (hardened dff)) || Rng.float rng 1.0 < 1. /. resilience in
    let direct = List.filter survives dff_hits in
    (* A sustained (multi-cycle) radiation event deposits the single-event
       upsets once and fresh combinational transients on every impacted
       cycle (paper §3.2: "our framework can easily incorporate multi-cycle
       impact"). *)
    List.iter (apply_flip sys net) direct;
    let latched = ref [] in
    for _ = 1 to impact_cycles do
      let latched_raw =
        (match t.einst with None -> () | Some ei -> Metrics.inc ei.e_gate_cycles);
        Obs.span t.obs ~cat:"engine" "gate_cycle" (fun () ->
            gate_level_cycle t sys sample gate_hits)
      in
      let survivors = List.filter survives (Array.to_list latched_raw) in
      (* Latched errors corrupt the post-cycle state before the next
         impacted cycle executes. *)
      List.iter (apply_flip sys net) survivors;
      latched := !latched @ survivors
    done;
    let latched = List.sort_uniq compare !latched in
    (* Exact error set vs the golden run just past the impact window. *)
    let flips, mem_clean =
      Obs.span t.obs ~cat:"engine" "masking" (fun () ->
          let golden_ref = restore (te + impact_cycles) in
          ( state_bit_diffs (System.state sys) (System.state golden_ref),
            System.dmem sys = System.dmem golden_ref ))
    in
    let flip_nodes = List.map (fun (g, b) -> (N.register_group net g).(b)) flips in
    let outcome, success =
      if flips = [] && mem_clean then (Masked, false)
      else if
        flips <> [] && mem_clean
        && List.for_all (Precharac.memory_type t.precharac) flip_nodes
      then begin
        let e =
          Obs.span t.obs ~cat:"engine" "analytical" (fun () ->
              Analytical.evaluate ~program:t.program ~corrupted:(System.state sys))
        in
        (Analytical e, e)
      end
      else begin
        let budget = t.program.Fmc_isa.Programs.max_cycles + 100 in
        (* The optional watchdog bounds the RTL resume loop so a pathological
           sample raises [System.Cycle_budget_exhausted] instead of running
           away; the campaign runner quarantines it. *)
        let e =
          Obs.span t.obs ~cat:"engine" "rtl_resume" (fun () ->
              System.set_watchdog sys cycle_budget;
              ignore (System.run sys ~max_cycles:(max 1 (budget - System.cycle sys)));
              System.set_watchdog sys None;
              observables_differ t sys)
        in
        (Resumed e, e)
      end
    in
    (match t.einst with
    | None -> ()
    | Some ei -> Metrics.observe ei.e_sample_us (Fmc_obs.Clock.now_us () -. t_begin));
    {
      sample;
      te;
      outcome;
      success;
      flips;
      direct = Array.of_list direct;
      latched = Array.of_list latched;
      struck_cells;
    }
  end

type glitch_result = { g_te : int; g_success : bool; g_stale : (string * int) list }

let run_glitch t ~te ~period =
  if te < 1 then { g_te = te; g_success = false; g_stale = [] }
  else begin
    let net = t.circuit.Circuit.net in
    let sys = Golden.restore_at t.golden te in
    (* Evaluate the glitched cycle at gate level: settle, commit the memory
       write at the nominal edge, clock with the shortened period. *)
    let net_dmem = Netsys.dmem t.netsys in
    Array.blit (System.dmem sys) 0 net_dmem 0 (Array.length net_dmem);
    Netsys.load_arch t.netsys (System.state sys);
    Netsys.settle t.netsys;
    let sim = Netsys.sim t.netsys in
    (if Cycle_sim.value sim t.circuit.Circuit.dmem_we then begin
       let addr = Cycle_sim.read_bus sim t.circuit.Circuit.dmem_addr in
       net_dmem.(addr land (Array.length net_dmem - 1)) <-
         Cycle_sim.read_bus sim t.circuit.Circuit.dmem_wdata
     end);
    let stale = Glitch.latch_with_glitch t.timing t.tconfig sim ~period in
    let next = Netsys.read_arch t.netsys in
    let st = System.state sys in
    List.iter (fun (name, _) -> Arch.set_group st name (Arch.get_group next name)) Arch.groups;
    Array.blit net_dmem 0 (System.dmem sys) 0 (Array.length net_dmem);
    System.advance_externally sys;
    let budget = t.program.Programs.max_cycles + 100 in
    ignore (System.run sys ~max_cycles:(max 1 (budget - System.cycle sys)));
    {
      g_te = te;
      g_success = observables_differ t sys;
      g_stale = Array.to_list (Array.map (N.dff_group net) stale);
    }
  end

let glitch_critical_path t = Glitch.critical_path t.timing

(* Leave-one-out counterfactual attribution: replay the injection cycle
   deterministically, then for each flipped bit resume the RTL run with that
   one bit restored; the bits whose restoration defeats the attack are the
   causal ones. Falls back to the full flip set when no single bit is
   individually necessary (jointly caused successes) or the run failed. *)
let causal_flips t (r : run_result) =
  if (not r.success) || r.flips = [] || r.te < 1 then r.flips
  else
    Obs.span t.obs ~cat:"engine" "causal" @@ fun () ->
    begin
    let net = t.circuit.Circuit.net in
    let sys = Golden.restore_at t.golden r.te in
    Array.iter (apply_flip sys net) r.direct;
    let _, gate_hits, _ = partition_disc t r.sample.Sampler.center r.sample.Sampler.radius in
    ignore (gate_level_cycle t sys r.sample gate_hits);
    Array.iter (apply_flip sys net) r.latched;
    let cp = System.checkpoint sys in
    let budget = t.program.Programs.max_cycles + 100 in
    let fails_without (group, bit) =
      let trial = System.create t.program in
      System.restore trial cp;
      let st = System.state trial in
      Arch.set_group st group (Arch.get_group st group lxor (1 lsl bit));
      ignore (System.run trial ~max_cycles:(max 1 (budget - System.cycle trial)));
      not (observables_differ t trial)
    in
    match List.filter fails_without r.flips with
    | [] -> r.flips
    | causal -> causal
  end

let static_vulnerable t =
  let net = t.circuit.Circuit.net in
  let vulnerable = Hashtbl.create 32 in
  (match (t.program.Programs.attack, t.program.Programs.user_code_range) with
  | Some (addr, perm), Some (lo, hi) ->
      let perm =
        match perm with
        | Programs.Attack_read -> Arch.Read
        | Programs.Attack_write -> Arch.Write
        | Programs.Attack_exec -> Arch.Exec
      in
      let base = Golden.state_at t.golden (Golden.target_cycle t.golden) in
      Array.iter
        (fun dff ->
          let group, bit = N.dff_group net dff in
          let corrupted = Arch.copy base in
          Arch.set_group corrupted group (Arch.get_group corrupted group lxor (1 lsl bit));
          let privileged = corrupted.Arch.mode = 1 in
          let access = privileged || Arch.mpu_allows corrupted ~addr ~perm in
          let executable =
            privileged
            ||
            let ok = ref true in
            for pc = lo to hi do
              if not (Arch.mpu_allows corrupted ~addr:pc ~perm:Arch.Exec) then ok := false
            done;
            !ok
          in
          if access && executable then Hashtbl.replace vulnerable dff ())
        (N.dffs net)
  | _ -> ());
  fun dff -> Hashtbl.mem vulnerable dff

let gate_flips_only t rng (sample : Sampler.sample) =
  ignore rng;
  let te = max 1 (Golden.target_cycle t.golden - sample.Sampler.t) in
  let sys = Golden.restore_at t.golden te in
  let dff_hits, gate_hits, _ = partition_disc t sample.Sampler.center sample.Sampler.radius in
  List.iter (apply_flip sys t.circuit.Circuit.net) dff_hits;
  let latched = gate_level_cycle t sys sample gate_hits in
  (latched, Array.of_list dff_hits)
