(** The cross-level fault-propagation engine (paper §5, Fig. 5).

    One fault-attack run:
    + restart RTL simulation from the golden checkpoint nearest to the
      injection cycle [Te = Tt - t] and warm up to [Te];
    + resolve the radiated disc [(g, r)] on the placement; flip struck
      flip-flops directly (direct SEUs);
    + switch to gate level for the injection cycle: transfer the
      architectural state into the netlist, settle, propagate the voltage
      transients ([Fmc_gatesim.Transient]), and collect the registers that
      latch errors;
    + classify: no flips — masked; flips confined to memory-type
      registers — analytical evaluation; otherwise inject the flips back
      into the RTL state and resume RTL simulation to completion;
    + the attack succeeded iff a benchmark observable differs from the
      golden run.

    Hardened registers (paper §6) drop each would-be flip with probability
    [1 - 1/resilience]. *)

type t

val create :
  ?checkpoint_every:int ->
  ?placement_seed:int ->
  precharac:Precharac.t ->
  Fmc_isa.Programs.t ->
  t
(** Builds the golden run, placement and transient-timing configuration for
    a benchmark, sharing the (benchmark-independent) pre-characterization. *)

val obs : t -> Fmc_obs.Obs.t
(** The engine's observability handle ({!Fmc_obs.Obs.disabled} until
    {!set_obs}). *)

val set_obs : t -> Fmc_obs.Obs.t -> unit
(** Install an observability handle: subsequent {!run_sample} calls record
    phase spans (restore / gate_cycle / masking / analytical / rtl_resume)
    and bump the engine counters ([fmc_restores_total],
    [fmc_rtl_cycles_total], [fmc_gate_cycles_total],
    [fmc_sample_duration_us]). Callers rarely need this directly:
    {!Ssf.estimate} installs its [?obs] on the engine for the run's
    duration and restores the previous handle afterwards. Observability
    never consumes randomness — results are bit-identical either way. *)

val golden : t -> Golden.t
val placement : t -> Fmc_layout.Placement.t
val precharac : t -> Precharac.t
val circuit : t -> Fmc_cpu.Circuit.t
val transient_config : t -> Fmc_gatesim.Transient.config
val program : t -> Fmc_isa.Programs.t

type outcome =
  | Masked  (** no register error at the end of the injection cycle *)
  | Analytical of bool  (** memory-type-only flips, evaluated without simulation *)
  | Resumed of bool  (** RTL simulation resumed; payload of both: success *)

type run_result = {
  sample : Sampler.sample;
  te : int;  (** injection cycle *)
  outcome : outcome;
  success : bool;
  flips : (string * int) list;  (** (group, bit) register errors after [Te] *)
  direct : Fmc_netlist.Netlist.node array;  (** directly struck flip-flops (post-hardening) *)
  latched : Fmc_netlist.Netlist.node array;  (** flip-flops that latched transients (post-hardening) *)
  struck_cells : int;  (** cells inside the radiated disc *)
}

val run_sample :
  t ->
  ?cell_filter:(Fmc_netlist.Netlist.node -> bool) ->
  ?impact_cycles:int ->
  ?hardened:(Fmc_netlist.Netlist.node -> bool) ->
  ?resilience:float ->
  ?cycle_budget:int ->
  Fmc_prelude.Rng.t ->
  Sampler.sample ->
  run_result
(** [cell_filter] restricts which struck cells take effect (used by the
    comb-vs-seq population studies of Fig. 10). [impact_cycles] (default 1)
    models a sustained radiation event: direct upsets land once, fresh
    transients are injected on each of the impacted cycles (paper §3.2's
    multi-cycle extension point). [resilience] defaults to 10 (a hardened
    flip keeps 1/10 of flips); only consulted for registers selected by
    [hardened]. [cycle_budget] arms a watchdog on the RTL resume phase:
    when the resumed run consumes more than that many cycles the sample
    raises {!Fmc_cpu.System.Cycle_budget_exhausted} — the campaign runner
    ({!Campaign}) turns this into a [Timed_out] quarantine instead of an
    aborted run. Unset means the benchmark's own [max_cycles + 100] cap
    alone bounds the resume. *)

(** {2 Injection building blocks}

    The primitive steps {!run_sample} is composed of, exported so
    pluggable fault models ([Fmc_fault]) can assemble alternative
    injection scenarios (direct SEU bursts, instruction skips, temporal
    double strikes) against the same golden run, placement and
    netlist-transfer machinery. All are deterministic. *)

val partition_disc :
  ?cell_filter:(Fmc_netlist.Netlist.node -> bool) ->
  t ->
  Fmc_netlist.Netlist.node ->
  float ->
  Fmc_netlist.Netlist.node list * Fmc_netlist.Netlist.node list * int
(** [partition_disc t center radius] resolves the radiated disc on the
    placement: [(struck flip-flops, struck gates, total struck cells)],
    each list in deterministic placement-index order. *)

val apply_flip : Fmc_cpu.System.t -> Fmc_netlist.Netlist.t -> Fmc_netlist.Netlist.node -> unit
(** XOR one flip-flop's bit into the system's architectural state. *)

val observables_differ : t -> Fmc_cpu.System.t -> bool
(** Compare the system's observable memory values against the golden
    run's final observables — the attack-success criterion. *)

val state_bit_diffs : Fmc_cpu.Arch.t -> Fmc_cpu.Arch.t -> (string * int) list
(** [(group, bit)] positions where the two architectural states differ,
    in canonical group order — the exact register-error extraction
    {!run_sample} performs against the golden reference. *)

val gate_level_cycle :
  t -> Fmc_cpu.System.t -> Sampler.sample -> Fmc_netlist.Netlist.node list -> Fmc_netlist.Netlist.node array
(** Evaluate one injection cycle at gate level: transfer the system's
    state into the netlist, settle, propagate voltage transients at the
    struck gates ([sample]'s intra-cycle time and pulse width apply),
    capture the memory write port, latch, and write the next state back.
    The system is advanced one cycle; returns the flip-flops that
    latched errors. *)

type glitch_result = {
  g_te : int;
  g_success : bool;
  g_stale : (string * int) list;  (** register bits that kept stale state *)
}

val run_glitch : t -> te:int -> period:float -> glitch_result
(** Clock-glitch attack run (the paper's alternative injection technique):
    the cycle at [te] is clocked with a shortened [period]; flip-flops on
    paths longer than [period - setup] keep stale state ({!Fmc_gatesim.Glitch}),
    then the RTL run resumes and the usual observable comparison decides
    success. The memory port samples at the nominal edge. Deterministic. *)

val glitch_critical_path : t -> float
(** Longest-path delay of the netlist under the engine's timing config. *)

val causal_flips : t -> run_result -> (string * int) list
(** Leave-one-out counterfactual attribution for a successful run: replay
    the injection deterministically and resume the RTL run once per flipped
    bit with that bit restored; returns the bits whose restoration defeats
    the attack. Falls back to the full flip set for failed runs and for
    jointly-caused successes (no single bit necessary). Only valid for
    results produced without hardening (the replay is deterministic). *)

val static_vulnerable : t -> Fmc_netlist.Netlist.node -> bool
(** Analytical single-bit vulnerability scan (pre-characterization step 3,
    "considering the system configuration, faulty registers and
    benchmarks"): true for a flip-flop whose lone flip, applied to the
    golden state at the target cycle, lets the benchmark's malicious
    access pass the hardware check (privilege-mode escalation or an MPU
    region widened over the protected address) while the user program
    stays executable. These bits are deterministic attack wins whenever
    the error persists to [Tt]; the importance sampler uses them as a
    vulnerability prior. *)

val gate_flips_only :
  t -> Fmc_prelude.Rng.t -> Sampler.sample -> Fmc_netlist.Netlist.node array * Fmc_netlist.Netlist.node array
(** Gate-level-only evaluation of a strike at the injection cycle:
    [(latched, direct)] flip sets with no downstream run — the error-pattern
    studies of Fig. 7 use this. *)
