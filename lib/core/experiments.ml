module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind
module Unroll = Fmc_netlist.Unroll
module Circuit = Fmc_cpu.Circuit
module Programs = Fmc_isa.Programs
module Pattern = Fmc_gatesim.Pattern
module Rng = Fmc_prelude.Rng
module Histogram = Fmc_prelude.Stats.Histogram

type context = {
  circuit : Circuit.t;
  precharac : Precharac.t;
  engines : (string, Engine.t) Hashtbl.t;
}

let context ?(seed = 2017) () =
  let circuit = Circuit.build () in
  let rng = Rng.create seed in
  let precharac = Precharac.run circuit ~rng in
  { circuit; precharac; engines = Hashtbl.create 4 }

let circuit ctx = ctx.circuit
let precharac ctx = ctx.precharac

let engine_for ctx (program : Programs.t) =
  match Hashtbl.find_opt ctx.engines program.Programs.name with
  | Some e -> e
  | None ->
      let e = Engine.create ~precharac:ctx.precharac program in
      Hashtbl.replace ctx.engines program.Programs.name e;
      e

let default_block ctx =
  let engine = engine_for ctx Programs.illegal_write in
  Attack.block_around (Engine.placement engine)
    ~roots:(Circuit.responding_signals ctx.circuit)
    ~fraction:0.5

let default_attack ctx =
  let engine = engine_for ctx Programs.illegal_write in
  Attack.default (Engine.placement engine) ~block:(default_block ctx)

(* ------------------------------------------------------------------ *)
(* Figure 4 *)

type fig4 = {
  lifetime_hist : (float * float) array;
  contamination_hist : (float * float) array;
  memory_fraction : float;
}

let fig4 ctx =
  let stats = Lifetime.all (Precharac.lifetimes ctx.precharac) in
  let lh = Histogram.create ~lo:0. ~hi:200. ~bins:20 in
  let ch = Histogram.create ~lo:0. ~hi:20. ~bins:20 in
  Array.iter
    (fun (s : Lifetime.stats) ->
      Histogram.add lh s.Lifetime.lifetime;
      Histogram.add ch s.Lifetime.contamination)
    stats;
  let points h = Array.mapi (fun i p -> (Histogram.bin_center h i, p)) (Histogram.probabilities h) in
  {
    lifetime_hist = points lh;
    contamination_hist = points ch;
    memory_fraction = Lifetime.memory_fraction (Precharac.lifetimes ctx.precharac);
  }

(* ------------------------------------------------------------------ *)
(* Figure 7 *)

type fig7 = {
  strikes : int;
  with_errors : int;
  single_bit : float;
  single_byte : float;
  multi_byte : float;
  full_byte : int;
  comb_only_patterns : int;
  seq_only_patterns : int;
  common_patterns : int;
}

let fig7 ?(strikes = 3000) ?(seed = 7) ctx =
  let engine = engine_for ctx Programs.illegal_write in
  let placement = Engine.placement engine in
  let net = ctx.circuit.Circuit.net in
  let block = default_block ctx in
  let comb_cells =
    Array.of_list
      (List.filter (fun c -> match N.kind net c with K.Gate _ -> true | _ -> false) (Array.to_list block))
  in
  let seq_cells =
    Array.of_list
      (List.filter (fun c -> match N.kind net c with K.Dff _ -> true | _ -> false) (Array.to_list block))
  in
  let rng = Rng.create seed in
  let sb = ref 0 and sby = ref 0 and mb = ref 0 and full = ref 0 and with_errors = ref 0 in
  let comb_keys = Hashtbl.create 256 and seq_keys = Hashtbl.create 256 in
  let attack = default_attack ctx in
  let one cells keys count_stats =
    let prep =
      Sampler.prepare Sampler.Random { attack with Attack.spatial = Attack.Uniform_cells cells }
        ctx.precharac ~placement
    in
    for _ = 1 to strikes do
      let sample = Sampler.draw prep rng in
      let latched, direct = Engine.gate_flips_only engine rng sample in
      let flips = Array.of_list (List.sort_uniq compare (Array.to_list latched @ Array.to_list direct)) in
      if Array.length flips > 0 then Hashtbl.replace keys (Pattern.key net ~flips) ();
      if count_stats then begin
        match Pattern.classify net ~flips with
        | None -> ()
        | Some cls ->
            incr with_errors;
            (match cls with
            | Pattern.Single_bit -> incr sb
            | Pattern.Single_byte ->
                incr sby;
                if Pattern.fills_whole_byte net ~flips then incr full
            | Pattern.Multi_byte -> incr mb)
      end
    done
  in
  (* Pattern-class statistics over strikes on the whole block (comb and seq
     mixed, like a real radiation event); the comb-vs-seq pattern-set
     comparison uses class-restricted strikes. *)
  let all_keys = Hashtbl.create 256 in
  one block all_keys true;
  one comb_cells comb_keys false;
  one seq_cells seq_keys false;
  let total = max 1 !with_errors in
  let inter = Hashtbl.fold (fun k () acc -> if Hashtbl.mem seq_keys k then acc + 1 else acc) comb_keys 0 in
  {
    strikes = 3 * strikes;
    with_errors = !with_errors;
    single_bit = float_of_int !sb /. float_of_int total;
    single_byte = float_of_int !sby /. float_of_int total;
    multi_byte = float_of_int !mb /. float_of_int total;
    full_byte = !full;
    comb_only_patterns = Hashtbl.length comb_keys - inter;
    seq_only_patterns = Hashtbl.length seq_keys - inter;
    common_patterns = inter;
  }

(* ------------------------------------------------------------------ *)
(* Figure 8 *)

type fig8 = {
  g_t : (int * float) list;
  per_depth : (int * int * int * int) list;
}

let fig8 ctx =
  let engine = engine_for ctx Programs.illegal_write in
  let placement = Engine.placement engine in
  let attack = default_attack ctx in
  let prep =
    Sampler.prepare
      ~static_vuln:(Engine.static_vulnerable engine)
      Sampler.default_importance attack ctx.precharac ~placement
  in
  let total_regs = Array.length (N.dffs ctx.circuit.Circuit.net) in
  let lifetimes = Precharac.lifetimes ctx.precharac in
  let per_depth =
    List.init (Precharac.depth ctx.precharac + 1) (fun d ->
        let level = Precharac.level ctx.precharac d in
        let cone = Array.length level.Unroll.registers in
        let comp =
          Array.length
            (Array.of_list
               (List.filter
                  (fun r -> not (Lifetime.memory_type lifetimes r))
                  (Array.to_list level.Unroll.registers)))
        in
        (d, total_regs, cone, comp))
  in
  { g_t = Sampler.temporal_pmf prep; per_depth }

(* ------------------------------------------------------------------ *)
(* Figure 9 *)

type fig9_row = {
  strategy : string;
  ssf : float;
  variance : float;
  successes : int;
  trace : (int * float) list;
}

type fig9 = { rows : fig9_row list; speedup_vs_random : (string * float) list }

let fig9 ?(samples = 10_000) ?(seed = 7) ?(benchmark = Programs.illegal_write) ctx =
  let engine = engine_for ctx benchmark in
  let placement = Engine.placement engine in
  let attack = default_attack ctx in
  let static_vuln = Engine.static_vulnerable engine in
  let rows =
    List.map
      (fun strategy ->
        let prep = Sampler.prepare ~static_vuln strategy attack ctx.precharac ~placement in
        let r = Ssf.estimate engine prep ~samples ~seed in
        {
          strategy = r.Ssf.strategy;
          ssf = r.Ssf.ssf;
          variance = r.Ssf.variance;
          successes = r.Ssf.successes;
          trace = r.Ssf.trace;
        })
      [ Sampler.Random; Sampler.Fanin_cone; Sampler.default_mixed ]
  in
  let random_var =
    match rows with { variance; _ } :: _ -> variance | [] -> assert false
  in
  let speedup_vs_random =
    List.map
      (fun row -> (row.strategy, if row.variance > 0. then random_var /. row.variance else infinity))
      rows
  in
  { rows; speedup_vs_random }

(* ------------------------------------------------------------------ *)
(* Figure 10 *)

type fig10 = {
  comb_masked : float;
  comb_mem_only : float;
  comb_resumed : float;
  reg_successes : int;
  reg_ssf : float;
  comb_successes : int;
  comb_ssf : float;
  samples_each : int;
}

let fig10 ?(samples = 8000) ?(seed = 11) ctx =
  let engine = engine_for ctx Programs.illegal_write in
  let placement = Engine.placement engine in
  let net = ctx.circuit.Circuit.net in
  let block = default_block ctx in
  let cells_of_kind p =
    Array.of_list (List.filter (fun c -> p (N.kind net c)) (Array.to_list block))
  in
  let comb_cells = cells_of_kind (function K.Gate _ -> true | _ -> false) in
  let seq_cells = cells_of_kind (function K.Dff _ -> true | _ -> false) in
  let attack = default_attack ctx in
  (* Disc strikes centered on one population with the effect restricted to
     that population: "attacks on combinational gates" vs "attacks on
     sequential elements", exactly the paper's separation. *)
  let run cells keep =
    let a = { attack with Attack.spatial = Attack.Uniform_cells cells } in
    let prep = Sampler.prepare Sampler.Random a ctx.precharac ~placement in
    let cell_filter c = keep (N.kind net c) in
    Ssf.estimate ~cell_filter engine prep ~samples ~seed
  in
  let comb = run comb_cells (function K.Gate _ -> true | _ -> false) in
  let seq = run seq_cells (function K.Dff _ -> true | _ -> false) in
  let f n = float_of_int n /. float_of_int samples in
  {
    comb_masked = f comb.Ssf.outcomes.Ssf.masked;
    comb_mem_only = f comb.Ssf.outcomes.Ssf.mem_only;
    comb_resumed = f comb.Ssf.outcomes.Ssf.resumed;
    reg_successes = seq.Ssf.successes;
    reg_ssf = seq.Ssf.ssf;
    comb_successes = comb.Ssf.successes;
    comb_ssf = comb.Ssf.ssf;
    samples_each = samples;
  }

(* ------------------------------------------------------------------ *)
(* Figure 11 *)

type fig11 = {
  temporal : (int * float * float) list;
  spatial : (string * float * float) list;
}

let fig11 ?(samples = 4000) ?(seed = 13) ctx =
  let attack = default_attack ctx in
  let block = default_block ctx in
  let ssf_of benchmark a =
    let engine = engine_for ctx benchmark in
    let prep = Sampler.prepare Sampler.Random a ctx.precharac ~placement:(Engine.placement engine) in
    (Ssf.estimate engine prep ~samples ~seed).Ssf.ssf
  in
  (* Temporal accuracy: the attacker aims at timing distance 1 (inject the
     cycle before the malicious access); poor accuracy widens the window
     symmetrically, so part of the shots land after the target cycle and
     are wasted. *)
  let ranges = [ 1; 2; 5; 10; 20; 50; 100 ] in
  let temporal_raw =
    List.map
      (fun w ->
        let lo = 1 - (w / 2) in
        let temporal = Dist.Uniform_int (lo, lo + w - 1) in
        let a = { attack with Attack.temporal } in
        (w, ssf_of Programs.illegal_write a, ssf_of Programs.illegal_read a))
      ranges
  in
  let wN, wrefw, wrefr = List.nth temporal_raw (List.length temporal_raw - 1) in
  ignore wN;
  let temporal =
    List.map
      (fun (w, sw, sr) ->
        (w, (if wrefw > 0. then sw /. wrefw else 0.), if wrefr > 0. then sr /. wrefr else 0.))
      temporal_raw
  in
  (* Spatial accuracy: from uniform over the block down to a delta at the
     attacker's best target cell (an analytically vulnerable register). *)
  let engine = engine_for ctx Programs.illegal_write in
  let placement = Engine.placement engine in
  let vuln = Engine.static_vulnerable engine in
  let target =
    match List.find_opt vuln (Array.to_list (N.dffs ctx.circuit.Circuit.net)) with
    | Some d -> d
    | None -> (N.dffs ctx.circuit.Circuit.net).(0)
  in
  let shrink fraction =
    Attack.Uniform_cells (Attack.block_around placement ~roots:[ target ] ~fraction)
  in
  let variants =
    [
      ("uniform", Attack.Uniform_cells block);
      ("1/4 block", shrink 0.125);
      ("1/16 block", shrink 0.03125);
      ("1/64 block", shrink 0.0078125);
      ("delta", Attack.Delta_cell target);
    ]
  in
  let spatial_raw =
    List.map
      (fun (label, spatial) ->
        let a = { attack with Attack.spatial } in
        (label, ssf_of Programs.illegal_write a, ssf_of Programs.illegal_read a))
      variants
  in
  let _, urw, urr = List.hd spatial_raw in
  let spatial =
    List.map
      (fun (label, sw, sr) ->
        (label, (if urw > 0. then sw /. urw else 0.), if urr > 0. then sr /. urr else 0.))
      spatial_raw
  in
  { temporal; spatial }

(* ------------------------------------------------------------------ *)
(* Headline *)

type headline = {
  critical : ((string * int) * float) list;
  critical_fraction : float;
  coverage : float;
  plans : (float * Harden.evaluation) list;
}

let headline ?(samples = 10_000) ?(seed = 7) ctx =
  let engine = engine_for ctx Programs.illegal_write in
  let placement = Engine.placement engine in
  let attack = default_attack ctx in
  let static_vuln = Engine.static_vulnerable engine in
  let prep = Sampler.prepare ~static_vuln Sampler.default_mixed attack ctx.precharac ~placement in
  let report = Ssf.estimate engine prep ~samples ~seed in
  let critical = Ssf.contribution_coverage report ~fraction:0.95 in
  let net = ctx.circuit.Circuit.net in
  (* Hardening plans of increasing coverage: the sweet spot sits where the
     plan covers the causal bits but not yet the co-flip noise. *)
  let plans =
    List.map
      (fun coverage ->
        let plan = Harden.default_plan net report ~coverage in
        (coverage, Harden.evaluate engine prep ~plan ~samples ~seed:(seed + 1)))
      [ 0.5; 0.75; 0.95 ]
  in
  let covered = List.fold_left (fun acc (_, w) -> acc +. w) 0. critical in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. report.Ssf.contributions in
  {
    critical;
    critical_fraction =
      float_of_int (List.length critical) /. float_of_int (Array.length (N.dffs net));
    coverage = (if total > 0. then covered /. total else 0.);
    plans;
  }
