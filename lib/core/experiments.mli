(** Drivers that regenerate every table and figure of the paper's
    evaluation section (§6). Each function returns plain data; printing
    lives in {!Report}. The shared {!context} carries the one-time work
    (processor netlist, pre-characterization, placement).

    Experiment index (see DESIGN.md):
    - {!fig4} — error-lifetime / contamination histograms;
    - {!fig7} — bit-error patterns and comb-vs-seq pattern counts;
    - {!fig8} — importance-sampling distribution over timing distances and
      sample-space reduction per unrolled depth;
    - {!fig9} — convergence and variance of the three strategies;
    - {!fig10} — outcome breakdown of combinational strikes and the
      register-vs-comb SSF comparison;
    - {!fig11} — SSF vs temporal and spatial accuracy of the attack;
    - {!headline} — critical-register identification and hardening. *)

type context

val context : ?seed:int -> unit -> context
(** Builds the processor, runs pre-characterization. Deterministic. *)

val circuit : context -> Fmc_cpu.Circuit.t
val precharac : context -> Precharac.t

val engine_for : context -> Fmc_isa.Programs.t -> Engine.t
(** Cached per benchmark. *)

val default_block : context -> Fmc_netlist.Netlist.node array
(** The paper's target sub-block: cells around the responding signals
    (half of the placed die by default). *)

val default_attack : context -> Attack.t

(** {2 Figure 4} *)

type fig4 = {
  lifetime_hist : (float * float) array;  (** (bin center, probability) *)
  contamination_hist : (float * float) array;
  memory_fraction : float;
}

val fig4 : context -> fig4

(** {2 Figure 7} *)

type fig7 = {
  strikes : int;
  with_errors : int;  (** strikes leaving at least one register error *)
  single_bit : float;  (** fractions of error patterns, summing to 1 *)
  single_byte : float;
  multi_byte : float;
  full_byte : int;  (** single-byte patterns covering all 8 bits *)
  comb_only_patterns : int;  (** distinct patterns: comb strikes only *)
  seq_only_patterns : int;
  common_patterns : int;
}

val fig7 : ?strikes:int -> ?seed:int -> context -> fig7

(** {2 Figure 8} *)

type fig8 = {
  g_t : (int * float) list;  (** importance temporal sampling distribution *)
  per_depth : (int * int * int * int) list;
      (** (depth, total registers, fan-in-cone registers, fan-in-cone
          computation-type registers) *)
}

val fig8 : context -> fig8

(** {2 Figure 9} *)

type fig9_row = {
  strategy : string;
  ssf : float;
  variance : float;
  successes : int;
  trace : (int * float) list;
}

type fig9 = { rows : fig9_row list; speedup_vs_random : (string * float) list }

val fig9 :
  ?samples:int -> ?seed:int -> ?benchmark:Fmc_isa.Programs.t -> context -> fig9

(** {2 Figure 10} *)

type fig10 = {
  comb_masked : float;  (** outcome fractions of comb-cell strikes *)
  comb_mem_only : float;
  comb_resumed : float;
  reg_successes : int;  (** register-cell strikes: successes and SSF *)
  reg_ssf : float;
  comb_successes : int;
  comb_ssf : float;
  samples_each : int;
}

val fig10 : ?samples:int -> ?seed:int -> context -> fig10

(** {2 Figure 11} *)

type fig11 = {
  temporal : (int * float * float) list;
      (** (range, normalized SSF write, normalized SSF read); normalized to
          the widest range *)
  spatial : (string * float * float) list;
      (** (label from uniform to delta, normalized SSF write / read);
          normalized to uniform *)
}

val fig11 : ?samples:int -> ?seed:int -> context -> fig11

(** {2 Headline: critical registers and hardening} *)

type headline = {
  critical : ((string * int) * float) list;  (** bits covering 95% of SSF *)
  critical_fraction : float;  (** |critical| / all flip-flops *)
  coverage : float;  (** fraction of success weight they carry *)
  plans : (float * Harden.evaluation) list;
      (** hardening evaluated at several attribution-coverage points *)
}

val headline : ?samples:int -> ?seed:int -> context -> headline
