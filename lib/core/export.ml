let buf_csv header rows render =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render r ^ "\n")) rows;
  Buffer.contents buf

let trace_csv (r : Ssf.report) =
  buf_csv "samples,ssf" r.Ssf.trace (fun (n, e) -> Printf.sprintf "%d,%.8f" n e)

let contributions_csv (r : Ssf.report) =
  buf_csv "register,bit,weight" r.Ssf.contributions (fun ((group, bit), w) ->
      Printf.sprintf "%s,%d,%.8f" group bit w)

(* Minimal JSON rendering: we control every string (register group names:
   [a-z0-9_]), so escaping is a formality. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_json (r : Ssf.report) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{";
  Buffer.add_string buf (Printf.sprintf "\"strategy\":\"%s\"," (json_escape r.Ssf.strategy));
  Buffer.add_string buf (Printf.sprintf "\"samples\":%d," r.Ssf.n);
  Buffer.add_string buf (Printf.sprintf "\"ssf\":%.8f," r.Ssf.ssf);
  Buffer.add_string buf (Printf.sprintf "\"ssf_upper_bound\":%.8f," r.Ssf.ssf_upper);
  Buffer.add_string buf (Printf.sprintf "\"variance\":%.8e," r.Ssf.variance);
  Buffer.add_string buf (Printf.sprintf "\"successes\":%d," r.Ssf.successes);
  Buffer.add_string buf (Printf.sprintf "\"effective_samples\":%.2f," r.Ssf.ess);
  Buffer.add_string buf
    (Printf.sprintf
       "\"outcomes\":{\"masked\":%d,\"analytical\":%d,\"resumed\":%d,\"quarantined\":%d,\"quarantined_crashed\":%d,\"quarantined_timed_out\":%d},"
       r.Ssf.outcomes.Ssf.masked r.Ssf.outcomes.Ssf.mem_only r.Ssf.outcomes.Ssf.resumed
       r.Ssf.outcomes.Ssf.quarantined r.Ssf.outcomes.Ssf.q_crashed
       r.Ssf.outcomes.Ssf.q_timed_out);
  Buffer.add_string buf
    (Printf.sprintf "\"success_by_direct\":%d,\"success_by_comb\":%d," r.Ssf.success_by_direct
       r.Ssf.success_by_comb);
  Buffer.add_string buf "\"trace\":[";
  List.iteri
    (fun i (n, e) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%d,%.8f]" n e))
    r.Ssf.trace;
  Buffer.add_string buf "],\"contributions\":[";
  List.iteri
    (fun i ((group, bit), w) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"register\":\"%s\",\"bit\":%d,\"weight\":%.8f}" (json_escape group) bit w))
    r.Ssf.contributions;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let fig11_csv (f : Experiments.fig11) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "sweep,point,normalized_ssf_write,normalized_ssf_read\n";
  List.iter
    (fun (w, sw, sr) ->
      Buffer.add_string buf (Printf.sprintf "temporal,%d,%.6f,%.6f\n" w sw sr))
    f.Experiments.temporal;
  List.iter
    (fun (label, sw, sr) ->
      Buffer.add_string buf (Printf.sprintf "spatial,%s,%.6f,%.6f\n" label sw sr))
    f.Experiments.spatial;
  Buffer.contents buf
