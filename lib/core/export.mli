(** Machine-readable export of SSF reports (CSV for plotting the paper's
    figures with external tools, JSON for pipelines). No external
    dependencies — the JSON is hand-rendered (flat structure, numbers and
    strings only). *)

val trace_csv : Ssf.report -> string
(** ["samples,ssf\n"] rows — the convergence series of Fig. 9(a). *)

val contributions_csv : Ssf.report -> string
(** ["register,bit,weight\n"] rows, descending weight. *)

val report_json : Ssf.report -> string
(** The full report as a JSON object (trace, contributions, outcome
    breakdown including the campaign runner's [quarantined] bucket, and the
    conservative [ssf_upper_bound]). *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (quotes,
    backslashes, control characters). Shared with {!Campaign}'s failure
    journal. *)

val fig11_csv : Experiments.fig11 -> string
(** Both sweeps as one CSV with a [sweep] discriminator column. *)
