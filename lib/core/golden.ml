module System = Fmc_cpu.System
module Model = Fmc_cpu.Model
module Programs = Fmc_isa.Programs

type t = {
  program : Programs.t;
  checkpoints : System.checkpoint array;  (* checkpoints.(i) at cycle i * interval *)
  interval : int;
  target_cycle : int;
  halt_cycle : int;
  final_observables : int list;
  final_state : Fmc_cpu.Arch.t;
}

let run ?(checkpoint_every = 16) (program : Programs.t) =
  if checkpoint_every <= 0 then invalid_arg "Golden.run: non-positive checkpoint interval";
  let sys = System.create program in
  let checkpoints = ref [ System.checkpoint sys ] in
  let target = ref (-1) in
  let steps = ref 0 in
  while (not (System.halted sys)) && !steps < program.Programs.max_cycles do
    let cycle_before = System.cycle sys in
    let outcome = System.step sys in
    let viol = outcome.Model.data_viol || outcome.Model.instr_viol || outcome.Model.priv_viol in
    if viol && !target < 0 then target := cycle_before;
    incr steps;
    if System.cycle sys mod checkpoint_every = 0 then checkpoints := System.checkpoint sys :: !checkpoints
  done;
  let halt_cycle = System.cycle sys in
  (match program.Programs.attack with
  | Some _ when !target < 0 ->
      failwith (Printf.sprintf "Golden.run: benchmark %s never raised its violation" program.Programs.name)
  | _ -> ());
  {
    program;
    checkpoints = Array.of_list (List.rev !checkpoints);
    interval = checkpoint_every;
    target_cycle = (if !target >= 0 then !target else halt_cycle);
    halt_cycle;
    final_observables = System.observable_values sys;
    final_state = Fmc_cpu.Arch.copy (System.state sys);
  }

let program t = t.program
let target_cycle t = t.target_cycle
let halt_cycle t = t.halt_cycle
let final_observables t = t.final_observables
let final_state t = Fmc_cpu.Arch.copy t.final_state

let nearest_checkpoint t cycle =
  let idx = max 0 (min (cycle / t.interval) (Array.length t.checkpoints - 1)) in
  (* Guard against a final partial interval: checkpoints are at exact
     multiples, so index idx is at cycle idx * interval <= cycle. *)
  t.checkpoints.(idx)

let restore_at ?on_step t cycle =
  if cycle < 0 then invalid_arg "Golden.restore_at: negative cycle";
  let sys = System.create t.program in
  (* Hook installed before the replay window so the warm-up cycles count. *)
  (match on_step with None -> () | Some _ -> System.set_on_step sys on_step);
  System.restore sys (nearest_checkpoint t cycle);
  System.run_to_cycle sys cycle;
  sys

let state_at t cycle =
  let sys = restore_at t cycle in
  Fmc_cpu.Arch.copy (System.state sys)
