(** RTL-level golden run with checkpoints (paper §5.1).

    One complete fault-free run per benchmark: dumps register+memory
    checkpoints at fixed intervals (so each fault-attack run restarts at the
    nearest one instead of from reset), detects the target cycle [Tt] (the
    cycle the malicious access is attempted, i.e. the first assertion of the
    data-violation responding signal) and records the final observable
    values against which attack outcomes are judged. *)

type t

val run : ?checkpoint_every:int -> Fmc_isa.Programs.t -> t
(** Raises [Failure] if the benchmark declares an attack but the golden run
    never raises the data violation (a broken benchmark). Default
    checkpoint interval: 16 cycles. *)

val program : t -> Fmc_isa.Programs.t

val target_cycle : t -> int
(** [Tt]. For benchmarks without an attack (synthetic), the halt cycle. *)

val halt_cycle : t -> int

val final_observables : t -> int list

val final_state : t -> Fmc_cpu.Arch.t
(** A copy of the architectural state at the end of the golden run. *)

val nearest_checkpoint : t -> int -> Fmc_cpu.System.checkpoint
(** The latest checkpoint at or before the given cycle. *)

val restore_at : ?on_step:(unit -> unit) -> t -> int -> Fmc_cpu.System.t
(** A fresh system advanced to exactly the given cycle via the nearest
    checkpoint. [on_step] (an observability hook, see
    {!Fmc_cpu.System.set_on_step}) is installed before the replay window,
    so it also counts the warm-up cycles and stays armed on the returned
    system for any later resume. Raises [Invalid_argument] on a negative
    cycle. *)

val state_at : t -> int -> Fmc_cpu.Arch.t
(** Architectural state at the start of a cycle (copy). *)
