module N = Fmc_netlist.Netlist
module Area = Fmc_layout.Area

type plan = { registers : N.node array; resilience : float; area_factor : float }

let critical_registers net report ~coverage =
  let prefix = Ssf.contribution_coverage report ~fraction:coverage in
  prefix
  |> List.map (fun ((group, bit), _) -> (N.register_group net group).(bit))
  |> List.sort_uniq compare
  |> Array.of_list

let default_plan net report ~coverage =
  { registers = critical_registers net report ~coverage; resilience = 10.; area_factor = 3. }

type evaluation = {
  plan : plan;
  baseline : Ssf.report;
  hardened : Ssf.report;
  ssf_reduction : float;
  area_overhead : float;
  register_fraction : float;
}

let evaluate engine prepared ~plan ~samples ~seed =
  let baseline = Ssf.estimate engine prepared ~samples ~seed in
  let set = Hashtbl.create (Array.length plan.registers) in
  Array.iter (fun d -> Hashtbl.replace set d ()) plan.registers;
  let hardened_pred d = Hashtbl.mem set d in
  let hardened =
    Ssf.estimate ~hardened:hardened_pred ~resilience:plan.resilience engine prepared ~samples ~seed
  in
  let net = (Engine.circuit engine).Fmc_cpu.Circuit.net in
  let extra = Area.hardened_overhead net ~hardened:plan.registers ~factor:plan.area_factor in
  let area_overhead = extra /. Area.total net in
  let register_fraction =
    float_of_int (Array.length plan.registers) /. float_of_int (Array.length (N.dffs net))
  in
  let ssf_reduction =
    if hardened.Ssf.ssf <= 0. then infinity else baseline.Ssf.ssf /. hardened.Ssf.ssf
  in
  { plan; baseline; hardened; ssf_reduction; area_overhead; register_fraction }
