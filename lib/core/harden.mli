(** Countermeasure evaluation (paper §6).

    From an SSF report's per-register success attribution, pick the
    critical registers (the few that carry almost all the SSF), replace
    them with error-resilient cells — modeled after the built-in
    soft-error-resilience designs the paper cites: [resilience]× fewer
    retained flips at [area_factor]× cell area — and re-estimate SSF to
    quantify the security-vs-area trade-off. *)

type plan = {
  registers : Fmc_netlist.Netlist.node array;  (** flip-flops to harden *)
  resilience : float;  (** flips survive with probability 1/resilience *)
  area_factor : float;
}

val critical_registers :
  Fmc_netlist.Netlist.t -> Ssf.report -> coverage:float -> Fmc_netlist.Netlist.node array
(** Flip-flop nodes of the smallest contribution prefix covering
    [coverage] of the success weight. *)

val default_plan : Fmc_netlist.Netlist.t -> Ssf.report -> coverage:float -> plan
(** [resilience = 10], [area_factor = 3] (paper's cited numbers). *)

type evaluation = {
  plan : plan;
  baseline : Ssf.report;
  hardened : Ssf.report;
  ssf_reduction : float;  (** baseline SSF / hardened SSF; [infinity] if hardened SSF is 0 *)
  area_overhead : float;  (** extra area / total block area *)
  register_fraction : float;  (** hardened / total flip-flops *)
}

val evaluate :
  Engine.t -> Sampler.prepared -> plan:plan -> samples:int -> seed:int -> evaluation
(** Runs the baseline and hardened estimates with the same seed (common
    random numbers, so the comparison is low-variance). *)
