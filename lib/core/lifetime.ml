module N = Fmc_netlist.Netlist
module System = Fmc_cpu.System
module Arch = Fmc_cpu.Arch
module Rng = Fmc_prelude.Rng

type stats = {
  dff : N.node;
  group : string;
  bit : int;
  lifetime : float;
  contamination : float;
  memory_type : bool;
}

type t = { by_dff : (N.node, stats) Hashtbl.t; total : int; memory : int }

type config = {
  trials : int;
  horizon : int;
  lifetime_threshold : float;
  contamination_threshold : float;
}

let default_config = { trials = 3; horizon = 200; lifetime_threshold = 50.; contamination_threshold = 0.5 }

(* One injection trial: flip (group, bit) at [cycle], co-simulate vs golden,
   return (lifetime, contamination). *)
let trial config golden ~group ~bit ~cycle =
  let gold = Golden.restore_at golden cycle in
  let fault = Golden.restore_at golden cycle in
  let st = System.state fault in
  Arch.set_group st group (Arch.get_group st group lxor (1 lsl bit));
  let contaminated = Hashtbl.create 8 in
  let lifetime = ref config.horizon in
  (try
     for step = 1 to config.horizon do
       ignore (System.step gold);
       ignore (System.step fault);
       let gs = System.state gold and fs = System.state fault in
       let converged = ref true in
       List.iter
         (fun (g, _) ->
           let diff = Arch.get_group gs g lxor Arch.get_group fs g in
           if diff <> 0 then begin
             converged := false;
             let b = ref 0 and d = ref diff in
             while !d <> 0 do
               if !d land 1 = 1 && not (g = group && !b = bit) then
                 Hashtbl.replace contaminated (g, !b) ();
               d := !d lsr 1;
               incr b
             done
           end)
         Arch.groups;
       if !converged then begin
         lifetime := step;
         raise Exit
       end
     done
   with Exit -> ());
  (float_of_int !lifetime, float_of_int (Hashtbl.length contaminated))

let characterize ?(config = default_config) net ~golden ~dffs ~rng =
  if config.trials <= 0 || config.horizon <= 0 then invalid_arg "Lifetime.characterize: bad config";
  let by_dff = Hashtbl.create (Array.length dffs) in
  let memory = ref 0 in
  let last_cycle = max 1 (Golden.halt_cycle golden - 1) in
  Array.iter
    (fun dff ->
      let group, bit = N.dff_group net dff in
      let lsum = ref 0. and csum = ref 0. in
      for _ = 1 to config.trials do
        let cycle = Rng.int_in rng 1 last_cycle in
        let l, c = trial config golden ~group ~bit ~cycle in
        lsum := !lsum +. l;
        csum := !csum +. c
      done;
      let lifetime = !lsum /. float_of_int config.trials in
      let contamination = !csum /. float_of_int config.trials in
      let memory_type =
        lifetime >= config.lifetime_threshold && contamination <= config.contamination_threshold
      in
      if memory_type then incr memory;
      Hashtbl.replace by_dff dff { dff; group; bit; lifetime; contamination; memory_type })
    dffs;
  { by_dff; total = Array.length dffs; memory = !memory }

let stats t dff = Hashtbl.find t.by_dff dff

let all t =
  let out = Hashtbl.fold (fun _ s acc -> s :: acc) t.by_dff [] in
  Array.of_list (List.sort (fun a b -> compare a.dff b.dff) out)

let memory_type t dff = match Hashtbl.find_opt t.by_dff dff with Some s -> s.memory_type | None -> false

let lifetime t dff = match Hashtbl.find_opt t.by_dff dff with Some s -> s.lifetime | None -> 0.

let memory_fraction t = if t.total = 0 then 0. else float_of_int t.memory /. float_of_int t.total
