(** Error lifetime and contamination measurement (paper §4, Observation 3
    and pre-characterization step 3).

    For each flip-flop of interest, a single-bit error is injected at
    several cycles of the synthetic benchmark's RTL run; the faulty run is
    co-simulated against the golden run and two parameters are collected:

    - {e error lifetime}: cycles until the architectural states re-converge
      (capped at [horizon]; the cap means "effectively forever");
    - {e error contamination number}: how many {e other} flip-flops ever
      differ from the golden run within the horizon.

    Registers with long lifetime and ~zero contamination are
    {e memory-type} (their errors sit still: evaluate analytically);
    the rest are {e computation-type} (sampled). *)

type stats = {
  dff : Fmc_netlist.Netlist.node;
  group : string;
  bit : int;
  lifetime : float;  (** mean over trials, cycles; [horizon] = never masked *)
  contamination : float;  (** mean over trials *)
  memory_type : bool;
}

type t

type config = {
  trials : int;  (** injection cycles per flip-flop *)
  horizon : int;  (** co-simulation window, cycles *)
  lifetime_threshold : float;  (** memory-type needs lifetime >= this *)
  contamination_threshold : float;  (** ... and contamination <= this *)
}

val default_config : config
(** 3 trials, horizon 200, thresholds 50 / 0.5. *)

val characterize :
  ?config:config ->
  Fmc_netlist.Netlist.t ->
  golden:Golden.t ->
  dffs:Fmc_netlist.Netlist.node array ->
  rng:Fmc_prelude.Rng.t ->
  t
(** Injection cycles are drawn uniformly from the golden run's active
    window (cycle 1 .. halt). *)

val stats : t -> Fmc_netlist.Netlist.node -> stats
(** Raises [Not_found] for an uncharacterized flip-flop. *)

val all : t -> stats array

val memory_type : t -> Fmc_netlist.Netlist.node -> bool
(** False for uncharacterized flip-flops (conservative: sampled, not
    analytical). *)

val lifetime : t -> Fmc_netlist.Netlist.node -> float
(** 0 for uncharacterized flip-flops. *)

val memory_fraction : t -> float
(** Fraction of characterized flip-flops classified memory-type. *)
