module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind
module Unroll = Fmc_netlist.Unroll
module Circuit = Fmc_cpu.Circuit
module Netsys = Fmc_cpu.Netsys
module Programs = Fmc_isa.Programs

type t = {
  circuit : Circuit.t;
  unroll : Unroll.t;
  sigrec : Sigrec.t;
  lifetimes : Lifetime.t;
  rs_nodes : N.node list;
  gate_lifetime : float array;
  depth : int;
}

let compute_gate_lifetimes net lifetimes =
  let n = N.num_nodes net in
  let l = Array.make n 0. in
  Array.iter (fun d -> l.(d) <- Lifetime.lifetime lifetimes d) (N.dffs net);
  (* Reverse topological sweep: a gate inherits the max over its fan-outs —
     the flip-flops its glitch could reach within the cycle. *)
  let gates = N.gates net in
  for i = Array.length gates - 1 downto 0 do
    let g = gates.(i) in
    let best = ref 0. in
    Array.iter
      (fun f ->
        match N.kind net f with
        | K.Dff _ | K.Gate _ -> if l.(f) > !best then best := l.(f)
        | K.Input | K.Const _ -> ())
      (N.fanouts net g);
    l.(g) <- !best
  done;
  l

let run ?(depth = 50) ?(fanout_depth = 3) ?(sig_cycles = 600) ?lifetime_config circuit ~rng =
  let net = circuit.Circuit.net in
  let rs_nodes = Circuit.responding_signals circuit in
  let unroll = Unroll.compute net ~roots:rs_nodes ~depth ~fanout_depth in
  (* Step 2: signatures over the synthetic benchmark at gate level. *)
  let golden = Golden.run Programs.synthetic in
  let cycles = max 2 (min sig_cycles (Golden.halt_cycle golden)) in
  let netsys = Netsys.create circuit Programs.synthetic in
  let sigrec = Sigrec.record netsys ~cycles in
  (* Step 3: lifetime / contamination on every cone register. *)
  let cone_regs = Unroll.all_registers unroll in
  let lifetimes =
    Lifetime.characterize ?config:lifetime_config net ~golden ~dffs:cone_regs ~rng
  in
  let gate_lifetime = compute_gate_lifetimes net lifetimes in
  { circuit; unroll; sigrec; lifetimes; rs_nodes; gate_lifetime; depth }

let circuit t = t.circuit
let unroll t = t.unroll
let lifetimes t = t.lifetimes
let responding_signals t = t.rs_nodes
let depth t = t.depth

let level t i =
  if i >= 0 && i > t.depth then { Unroll.gates = [||]; registers = [||] }
  else
    try Unroll.level_at t.unroll i
    with Invalid_argument _ -> { Unroll.gates = [||]; registers = [||] }

let correlation t node ~shift =
  List.fold_left (fun acc rs -> Float.max acc (Sigrec.correlation t.sigrec ~node ~rs ~shift)) 0. t.rs_nodes

let gate_lifetime t node = t.gate_lifetime.(node)

let memory_type t node = Lifetime.memory_type t.lifetimes node

let memory_type_registers t =
  Array.of_list
    (List.filter (memory_type t) (Array.to_list (Unroll.all_registers t.unroll)))

let cone_registers t = Unroll.all_registers t.unroll
