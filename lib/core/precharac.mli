(** System pre-characterization (paper §4): the three steps that feed the
    importance-sampling distribution.

    1. {e Responding-signal cones}: identify the violation-flag nodes and
       compute their fan-in/fan-out cones per unrolled depth
       ([Omega_i] sample-space slices).
    2. {e Switching signatures}: gate-level simulation of the synthetic
       benchmark; per-node signatures and bit-flip correlations with the
       responding signals.
    3. {e Error lifetime / contamination}: RTL fault-injection on every
       cone register; memory- vs computation-type classification.

    Pre-characterization runs once per system and is reused across
    benchmarks, strategies and sweeps. *)

type t

val run :
  ?depth:int ->
  ?fanout_depth:int ->
  ?sig_cycles:int ->
  ?lifetime_config:Lifetime.config ->
  Fmc_cpu.Circuit.t ->
  rng:Fmc_prelude.Rng.t ->
  t
(** Defaults: [depth] 50 unrolled cycles, [fanout_depth] 3,
    [sig_cycles] 600 (clamped to the synthetic benchmark's golden length). *)

val circuit : t -> Fmc_cpu.Circuit.t
val unroll : t -> Fmc_netlist.Unroll.t
val lifetimes : t -> Lifetime.t
val responding_signals : t -> Fmc_netlist.Netlist.node list

val level : t -> int -> Fmc_netlist.Unroll.level
(** [Omega_i] slice; empty beyond the computed depth rather than raising. *)

val depth : t -> int

val correlation : t -> Fmc_netlist.Netlist.node -> shift:int -> float
(** [max_rs Corr_shift(node, rs)] over the responding signals. *)

val gate_lifetime : t -> Fmc_netlist.Netlist.node -> float
(** The paper's [L(g)]: a flip-flop's own error lifetime; for a
    combinational gate, the maximum lifetime over the flip-flops in its
    same-cycle fan-out cone. *)

val memory_type : t -> Fmc_netlist.Netlist.node -> bool

val memory_type_registers : t -> Fmc_netlist.Netlist.node array

val cone_registers : t -> Fmc_netlist.Netlist.node array
(** All registers of all fan-in/fan-out levels. *)
