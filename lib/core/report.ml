let bar fraction =
  let f = Float.max 0. (Float.min 1. fraction) in
  let n = int_of_float (f *. 40.) in
  String.make n '#'

let fig4 ppf (r : Experiments.fig4) =
  Format.fprintf ppf "@[<v>== Fig 4(a): error-lifetime distribution (probability per bin) ==@,";
  Array.iter
    (fun (center, p) -> Format.fprintf ppf "  %6.1f | %-40s %.3f@," center (bar p) p)
    r.Experiments.lifetime_hist;
  Format.fprintf ppf "== Fig 4(b): error-contamination distribution ==@,";
  Array.iter
    (fun (center, p) -> Format.fprintf ppf "  %6.1f | %-40s %.3f@," center (bar p) p)
    r.Experiments.contamination_hist;
  Format.fprintf ppf "memory-type register fraction: %.1f%%@,@]" (100. *. r.Experiments.memory_fraction)

let fig7 ppf (r : Experiments.fig7) =
  Format.fprintf ppf
    "@[<v>== Fig 7(a): bit-error patterns at the end of the injection cycle ==@,\
     strikes: %d (with register errors: %d)@,\
     \  single-bit : %5.1f%%  %s@,\
     \  single-byte: %5.1f%%  %s@,\
     \  multi-byte : %5.1f%%  %s@,\
     single-byte patterns covering a whole byte: %d@,\
     == Fig 7(b): distinct error patterns, comb vs sequential strikes ==@,"
    r.Experiments.strikes r.Experiments.with_errors
    (100. *. r.Experiments.single_bit)
    (bar r.Experiments.single_bit)
    (100. *. r.Experiments.single_byte)
    (bar r.Experiments.single_byte)
    (100. *. r.Experiments.multi_byte)
    (bar r.Experiments.multi_byte)
    r.Experiments.full_byte;
  let total =
    max 1 (r.Experiments.comb_only_patterns + r.Experiments.seq_only_patterns + r.Experiments.common_patterns)
  in
  let pct n = 100. *. float_of_int n /. float_of_int total in
  Format.fprintf ppf
    "  comb-only: %d (%.1f%%)@,  common   : %d (%.1f%%)@,  seq-only : %d (%.1f%%)@,@]"
    r.Experiments.comb_only_patterns
    (pct r.Experiments.comb_only_patterns)
    r.Experiments.common_patterns
    (pct r.Experiments.common_patterns)
    r.Experiments.seq_only_patterns
    (pct r.Experiments.seq_only_patterns)

let fig8 ppf (r : Experiments.fig8) =
  Format.fprintf ppf "@[<v>== Fig 8(a): sampling distribution g_T over timing distance ==@,";
  let peak = List.fold_left (fun acc (_, p) -> Float.max acc p) 1e-12 r.Experiments.g_t in
  List.iter
    (fun (t, p) ->
      if t <= 20 || p > 0.001 then
        Format.fprintf ppf "  t=%2d | %-40s %.4f@," t (bar (p /. peak)) p)
    r.Experiments.g_t;
  Format.fprintf ppf "== Fig 8(b): sample-space reduction per unrolled depth ==@,";
  Format.fprintf ppf "  depth | total regs | fan-in cone | cone comp-type@,";
  List.iter
    (fun (d, total, cone, comp) ->
      if d <= 20 then Format.fprintf ppf "  %5d | %10d | %11d | %14d@," d total cone comp)
    r.Experiments.per_depth;
  Format.fprintf ppf "@]"

let fig9 ppf (r : Experiments.fig9) =
  Format.fprintf ppf "@[<v>== Fig 9: convergence of the sampling strategies ==@,";
  List.iter
    (fun (row : Experiments.fig9_row) ->
      Format.fprintf ppf "-- %s: running estimate --@," row.Experiments.strategy;
      let every = max 1 (List.length row.Experiments.trace / 10) in
      List.iteri
        (fun i (n, est) ->
          if i mod every = 0 || i = List.length row.Experiments.trace - 1 then
            Format.fprintf ppf "   n=%6d  SSF=%.5f@," n est)
        row.Experiments.trace)
    r.Experiments.rows;
  Format.fprintf ppf "-- Fig 9(b): statistics --@,";
  Format.fprintf ppf "  %-12s %10s %12s %10s %14s@," "strategy" "SSF" "sample var" "successes" "var speedup";
  List.iter2
    (fun (row : Experiments.fig9_row) (_, speedup) ->
      Format.fprintf ppf "  %-12s %10.5f %12.3e %10d %13.1fx@," row.Experiments.strategy
        row.Experiments.ssf row.Experiments.variance row.Experiments.successes speedup)
    r.Experiments.rows r.Experiments.speedup_vs_random;
  Format.fprintf ppf "@]"

let fig10 ppf (r : Experiments.fig10) =
  Format.fprintf ppf
    "@[<v>== Fig 10(a): outcomes of combinational-gate strikes ==@,\
     \  masked          : %5.1f%%  %s@,\
     \  mem-type only   : %5.1f%%  %s@,\
     \  RTL resume      : %5.1f%%  %s@,\
     == Fig 10(b): SSF by strike population (%d samples each) ==@,\
     \  %-12s %10s %8s@,\
     \  %-12s %10d %8.4f@,\
     \  %-12s %10d %8.4f@,\
     \  comb / register SSF ratio: %.2f@,@]"
    (100. *. r.Experiments.comb_masked)
    (bar r.Experiments.comb_masked)
    (100. *. r.Experiments.comb_mem_only)
    (bar r.Experiments.comb_mem_only)
    (100. *. r.Experiments.comb_resumed)
    (bar r.Experiments.comb_resumed)
    r.Experiments.samples_each "population" "# success" "SSF" "registers" r.Experiments.reg_successes
    r.Experiments.reg_ssf "comb gates" r.Experiments.comb_successes r.Experiments.comb_ssf
    (if r.Experiments.reg_ssf > 0. then r.Experiments.comb_ssf /. r.Experiments.reg_ssf else 0.)

let fig11 ppf (r : Experiments.fig11) =
  Format.fprintf ppf "@[<v>== Fig 11(a): normalized SSF vs temporal-accuracy range ==@,";
  Format.fprintf ppf "  range | mem-write | mem-read@,";
  List.iter
    (fun (w, sw, sr) -> Format.fprintf ppf "  %5d | %9.2f | %8.2f@," w sw sr)
    r.Experiments.temporal;
  Format.fprintf ppf "== Fig 11(b): normalized SSF vs spatial accuracy ==@,";
  Format.fprintf ppf "  %-10s | mem-write | mem-read@," "aim";
  List.iter
    (fun (label, sw, sr) -> Format.fprintf ppf "  %-10s | %9.2f | %8.2f@," label sw sr)
    r.Experiments.spatial;
  Format.fprintf ppf "@]"

let headline ppf (r : Experiments.headline) =
  Format.fprintf ppf "@[<v>== Critical registers and hardening (paper §6 headline) ==@,";
  Format.fprintf ppf "critical register bits (cover %.1f%% of SSF): %d (%.1f%% of all flip-flops)@,"
    (100. *. r.Experiments.coverage)
    (List.length r.Experiments.critical)
    (100. *. r.Experiments.critical_fraction);
  List.iteri
    (fun i ((group, bit), w) ->
      if i < 15 then Format.fprintf ppf "  %-14s contribution %.4f@," (Printf.sprintf "%s[%d]" group bit) w)
    r.Experiments.critical;
  Format.fprintf ppf "hardening plans (10x resilient cells at 3x area):@,";
  Format.fprintf ppf "  %-9s %-6s %-7s %-11s %-11s %-10s %-8s@," "coverage" "#regs" "reg %"
    "SSF before" "SSF after" "reduction" "area +%";
  List.iter
    (fun (coverage, (h : Harden.evaluation)) ->
      Format.fprintf ppf "  %-9.2f %-6d %-7.1f %-11.5f %-11.5f %-9.1fx %-8.2f@," coverage
        (Array.length h.Harden.plan.Harden.registers)
        (100. *. h.Harden.register_fraction)
        h.Harden.baseline.Ssf.ssf h.Harden.hardened.Ssf.ssf h.Harden.ssf_reduction
        (100. *. h.Harden.area_overhead))
    r.Experiments.plans;
  Format.fprintf ppf "@]"

let ssf_report ppf (r : Ssf.report) =
  Format.fprintf ppf
    "@[<v>strategy: %s@,samples: %d (effective: %.0f)@,SSF: %.5f@,sample variance: %.3e@,\
     successes: %d@,outcomes: masked %d / analytical %d / resumed %d / quarantined %d@,\
     successes via direct register strikes: %d, via transients only: %d@,"
    r.Ssf.strategy r.Ssf.n r.Ssf.ess r.Ssf.ssf r.Ssf.variance r.Ssf.successes
    r.Ssf.outcomes.Ssf.masked r.Ssf.outcomes.Ssf.mem_only r.Ssf.outcomes.Ssf.resumed
    r.Ssf.outcomes.Ssf.quarantined r.Ssf.success_by_direct r.Ssf.success_by_comb;
  if r.Ssf.outcomes.Ssf.quarantined > 0 then begin
    Format.fprintf ppf "quarantine reasons: crashed %d / cycle-budget timeout %d@,"
      r.Ssf.outcomes.Ssf.q_crashed r.Ssf.outcomes.Ssf.q_timed_out;
    Format.fprintf ppf "SSF upper bound (quarantined counted as successes): %.5f@,"
      r.Ssf.ssf_upper
  end;
  Format.fprintf ppf "top contributing register bits:@,";
  List.iteri
    (fun i ((group, bit), w) ->
      if i < 10 then Format.fprintf ppf "  %-14s %.4f@," (Printf.sprintf "%s[%d]" group bit) w)
    r.Ssf.contributions;
  Format.fprintf ppf "@]"
