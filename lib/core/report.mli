(** Plain-text rendering of experiment results, shaped like the paper's
    tables and figure series (ASCII bars for distributions, aligned tables
    for the statistics). All printers write to a [Format] formatter. *)

val fig4 : Format.formatter -> Experiments.fig4 -> unit
val fig7 : Format.formatter -> Experiments.fig7 -> unit
val fig8 : Format.formatter -> Experiments.fig8 -> unit
val fig9 : Format.formatter -> Experiments.fig9 -> unit
val fig10 : Format.formatter -> Experiments.fig10 -> unit
val fig11 : Format.formatter -> Experiments.fig11 -> unit
val headline : Format.formatter -> Experiments.headline -> unit

val ssf_report : Format.formatter -> Ssf.report -> unit
(** Generic SSF report (used by the CLI and examples). *)

val bar : float -> string
(** A proportional ASCII bar for a value in [\[0, 1\]]. *)
