module N = Fmc_netlist.Netlist
module Placement = Fmc_layout.Placement
module Unroll = Fmc_netlist.Unroll
module Rng = Fmc_prelude.Rng
module Wdist = Fmc_prelude.Wdist

type strategy =
  | Random
  | Fanin_cone
  | Importance of { alpha : float; beta : float; dead_weight : float; gamma : float }
  | Mixed of { alpha : float; beta : float; dead_weight : float; v_allocation : float }

let strategy_name = function
  | Random -> "random"
  | Fanin_cone -> "fanin-cone"
  | Importance _ -> "importance"
  | Mixed _ -> "mixed"

let default_importance = Importance { alpha = 8.; beta = 1.; dead_weight = 0.1; gamma = 60. }

let default_mixed = Mixed { alpha = 8.; beta = 1.; dead_weight = 0.1; v_allocation = 0.5 }

type stratum = All | Vulnerable | Rest

let stratum_name = function All -> "all" | Vulnerable -> "vulnerable" | Rest -> "rest"

let stratum_of_name = function
  | "all" -> Some All
  | "vulnerable" -> Some Vulnerable
  | "rest" -> Some Rest
  | _ -> None

type sample = {
  t : int;
  center : N.node;
  radius : float;
  width : float;
  time_frac : float;
  weight : float;
  stratum : stratum;
}

type cone_level = {
  candidates : N.node array;  (* Omega_t intersected with the target block *)
  cell_dist : Wdist.t;  (* g_{P|T} over candidates *)
  cell_pmf : (N.node, float) Hashtbl.t;
}

type cone_machinery = {
  support : int array;  (* temporal support with non-zero g_T *)
  g_t : Wdist.t;  (* over support indices *)
  levels : cone_level array;  (* per support index *)
}

type mode =
  | P_random
  | P_cone of cone_machinery
  | P_mixed of {
      v_cells : N.node array;  (* block cells whose disc can flip a vulnerable bit *)
      m_v : float;  (* f-mass of the vulnerable stratum *)
      rest : cone_machinery;
      v_alloc : float;
    }

type prepared = {
  strategy : strategy;
  attack : Attack.t;
  mode : mode;
  block_pmf : N.node -> float;
  f_t : int -> float;
}

(* Build the per-depth candidate/weight tables of a cone-restricted sampler
   over [eligible] block cells, scoring cells with [cell_score]. *)
let build_cone_machinery precharac ~temporal_support ~eligible ~cell_score =
  let per_t =
    Array.map
      (fun t ->
        let slice = Precharac.level precharac t in
        let candidates =
          Array.append slice.Unroll.gates slice.Unroll.registers
          |> Array.to_list
          |> List.filter (Hashtbl.mem eligible)
          |> Array.of_list
        in
        if Array.length candidates = 0 then (t, None, 0.)
        else begin
          let weights = Array.map (cell_score t) candidates in
          let omega = Array.fold_left ( +. ) 0. weights in
          if omega <= 0. then (t, None, 0.)
          else begin
            let cell_dist = Wdist.create weights in
            let cell_pmf = Hashtbl.create (Array.length candidates) in
            Array.iteri (fun i c -> Hashtbl.replace cell_pmf c (Wdist.pmf cell_dist i)) candidates;
            (t, Some { candidates; cell_dist; cell_pmf }, omega)
          end
        end)
      temporal_support
  in
  let nonempty = Array.of_list (List.filter (fun (_, l, _) -> l <> None) (Array.to_list per_t)) in
  if Array.length nonempty = 0 then None
  else begin
    let support = Array.map (fun (t, _, _) -> t) nonempty in
    let omegas = Array.map (fun (_, _, w) -> w) nonempty in
    let levels = Array.map (fun (_, l, _) -> Option.get l) nonempty in
    Some { support; g_t = Wdist.create omegas; levels }
  end

let prepare ?(static_vuln = fun _ -> false) strategy attack precharac ~placement =
  Attack.validate attack;
  let block = Attack.spatial_cells attack.Attack.spatial in
  let block_set = Hashtbl.create (Array.length block) in
  Array.iter (fun c -> Hashtbl.replace block_set c ()) block;
  let f_t t = Dist.pmf_int attack.Attack.temporal t in
  let block_pmf c = Attack.pmf_spatial attack.Attack.spatial c in
  let temporal_support = Array.of_list (Dist.support_int attack.Attack.temporal) in
  (* A strike at center [g] radiates a disc: its success potential is that
     of the best cell it can cover, so importance scores are smoothed over
     the neighborhood reachable with the attack's largest radius. Without
     this, a disc centered on an uninteresting cell covering a critical
     neighbor would carry a huge corrective weight when it succeeds,
     blowing up the estimator variance. *)
  let max_radius = match attack.Attack.radius with Dist.Uniform_float (_, hi) -> hi in
  let neighborhood = Hashtbl.create 1024 in
  let neighbors_of cell =
    match Hashtbl.find_opt neighborhood cell with
    | Some ns -> ns
    | None ->
        let ns =
          if Placement.is_placed placement cell then
            Placement.within placement ~center:cell ~radius:max_radius
          else [| cell |]
        in
        Hashtbl.replace neighborhood cell ns;
        ns
  in
  let importance_score ~alpha ~beta ~dead_weight ~gamma t cell =
    let corr = Precharac.correlation precharac cell ~shift:t in
    let l = Precharac.gate_lifetime precharac cell in
    let alive = l >= beta *. float_of_int t in
    let vuln = if gamma > 0. && static_vuln cell then gamma else 0. in
    let base = 1. +. vuln +. (alpha *. corr *. if alive then 1. else 0.) in
    if alive then base else base *. dead_weight
  in
  (* Two smoothing modes over the radiated neighborhood: [max] guarantees a
     disc covering a critical cell is never under-sampled (used when the
     score carries the static-vulnerability prior); [mean] preserves more
     discrimination for the diffuse correlation signal. *)
  let smoothed_max score t cell =
    Array.fold_left (fun acc n -> Float.max acc (score t n)) 0. (neighbors_of cell)
  in
  let smoothed_mean score t cell =
    let ns = neighbors_of cell in
    Array.fold_left (fun acc n -> acc +. score t n) 0. ns /. float_of_int (Array.length ns)
  in
  let mode =
    match strategy with
    | Random -> P_random
    | Fanin_cone -> begin
        match
          build_cone_machinery precharac ~temporal_support ~eligible:block_set
            ~cell_score:(fun _ _ -> 1.)
        with
        | Some m -> P_cone m
        | None -> invalid_arg "Sampler.prepare: empty sample space (target block misses every cone slice)"
      end
    | Importance { alpha; beta; dead_weight; gamma } -> begin
        let score = importance_score ~alpha ~beta ~dead_weight ~gamma in
        match
          build_cone_machinery precharac ~temporal_support ~eligible:block_set
            ~cell_score:(smoothed_max score)
        with
        | Some m -> P_cone m
        | None -> invalid_arg "Sampler.prepare: empty sample space (target block misses every cone slice)"
      end
    | Mixed { alpha; beta; dead_weight; v_allocation } ->
        if v_allocation <= 0. || v_allocation >= 1. then
          invalid_arg "Sampler.prepare: v_allocation must be in (0, 1)";
        (* Vulnerable stratum: block cells whose largest disc reaches an
           analytically vulnerable register bit. *)
        let v_cells =
          Array.of_list
            (List.filter
               (fun c -> Array.exists static_vuln (neighbors_of c))
               (Array.to_list block))
        in
        let m_v = Array.fold_left (fun acc c -> acc +. block_pmf c) 0. v_cells in
        if m_v <= 0. || m_v >= 1. then
          invalid_arg "Sampler.prepare: Mixed needs a non-trivial vulnerable stratum (got none or all)";
        let rest_set = Hashtbl.copy block_set in
        Array.iter (fun c -> Hashtbl.remove rest_set c) v_cells;
        (* Rest-stratum bonus: transients seeded close (in logic levels) to a
           vulnerable register's D input are the ones that can latch a
           decisive stale/flipped value — the dominant rest-stratum success
           channel. Mark the last few levels of those cones. *)
        let near_vuln = Hashtbl.create 128 in
        let net = (Precharac.circuit precharac).Fmc_cpu.Circuit.net in
        let rec mark node depth =
          if depth >= 0 && not (Hashtbl.mem near_vuln node) then begin
            match N.kind net node with
            | Fmc_netlist.Kind.Gate _ ->
                Hashtbl.replace near_vuln node ();
                Array.iter (fun f -> mark f (depth - 1)) (N.fanins net node)
            | _ -> ()
          end
        in
        Array.iter (fun d -> if static_vuln d then mark (N.dff_d net d) 6) (N.dffs net);
        let base_score = importance_score ~alpha ~beta ~dead_weight ~gamma:0. in
        let score t cell =
          base_score t cell +. (if Hashtbl.mem near_vuln cell then 12. else 0.)
        in
        let rest =
          match
            build_cone_machinery precharac ~temporal_support ~eligible:rest_set
              ~cell_score:(smoothed_mean score)
          with
          | Some m -> m
          | None -> invalid_arg "Sampler.prepare: Mixed rest stratum is empty"
        in
        P_mixed { v_cells; m_v; rest; v_alloc = v_allocation }
  in
  { strategy; attack; mode; block_pmf; f_t }

(* Draw from a cone machinery; [stratum_mass] conditions f on the stratum. *)
let draw_cone p (m : cone_machinery) rng ~stratum ~stratum_mass ~radius ~width ~time_frac =
  let idx = Wdist.sample m.g_t rng in
  let t = m.support.(idx) in
  let level = m.levels.(idx) in
  let ci = Wdist.sample level.cell_dist rng in
  let center = level.candidates.(ci) in
  let g_t = Wdist.pmf m.g_t idx in
  let g_cell = Hashtbl.find level.cell_pmf center in
  let f = p.f_t t *. p.block_pmf center /. stratum_mass in
  { t; center; radius; width; time_frac; weight = f /. (g_t *. g_cell); stratum }

let draw_raw p rng =
  let radius = Dist.sample_float p.attack.Attack.radius rng in
  let width = Dist.sample_float p.attack.Attack.width rng in
  let time_frac = Rng.float rng 1.0 in
  match p.mode with
  | P_random ->
      let t = Dist.sample_int p.attack.Attack.temporal rng in
      let cells = Attack.spatial_cells p.attack.Attack.spatial in
      let center = Rng.choose rng cells in
      { t; center; radius; width; time_frac; weight = 1.; stratum = All }
  | P_cone m -> draw_cone p m rng ~stratum:All ~stratum_mass:1. ~radius ~width ~time_frac
  | P_mixed { v_cells; m_v; rest; v_alloc } ->
      if Rng.float rng 1.0 < v_alloc then begin
        (* Within the vulnerable stratum: t from the nominal temporal
           distribution, center uniform over the stratum cells; the weight
           is f(t, c | V) / g(t, c). *)
        let t = Dist.sample_int p.attack.Attack.temporal rng in
        let center = Rng.choose rng v_cells in
        let f_cond = p.block_pmf center /. m_v in
        let g_cell = 1. /. float_of_int (Array.length v_cells) in
        { t; center; radius; width; time_frac; weight = f_cond /. g_cell; stratum = Vulnerable }
      end
      else draw_cone p rest rng ~stratum:Rest ~stratum_mass:(1. -. m_v) ~radius ~width ~time_frac

let draw ?(obs = Fmc_obs.Obs.disabled) p rng =
  (* The RNG stream is consumed entirely inside [draw_raw], so tracing the
     draw (or not) cannot perturb the sample sequence. *)
  match obs.Fmc_obs.Obs.tracer with
  | None -> draw_raw p rng
  | Some _ -> Fmc_obs.Obs.span obs ~cat:"sampler" "draw" (fun () -> draw_raw p rng)

let name p = strategy_name p.strategy

let strata p =
  match p.mode with
  | P_random | P_cone _ -> [ (All, 1.) ]
  | P_mixed { m_v; _ } -> [ (Vulnerable, m_v); (Rest, 1. -. m_v) ]

let temporal_pmf p =
  match p.mode with
  | P_random -> List.map (fun t -> (t, p.f_t t)) (Dist.support_int p.attack.Attack.temporal)
  | P_cone m -> Array.to_list (Array.mapi (fun i t -> (t, Wdist.pmf m.g_t i)) m.support)
  | P_mixed { rest; v_alloc; _ } ->
      (* Marginal of the realized draw distribution over both strata. *)
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun t -> Hashtbl.replace tbl t (v_alloc *. p.f_t t))
        (Dist.support_int p.attack.Attack.temporal);
      Array.iteri
        (fun i t ->
          let cur = try Hashtbl.find tbl t with Not_found -> 0. in
          Hashtbl.replace tbl t (cur +. ((1. -. v_alloc) *. Wdist.pmf rest.g_t i)))
        rest.support;
      Hashtbl.fold (fun t pr acc -> (t, pr) :: acc) tbl [] |> List.sort compare

let sample_space_size p =
  match p.mode with
  | P_random ->
      List.length (Dist.support_int p.attack.Attack.temporal)
      * Array.length (Attack.spatial_cells p.attack.Attack.spatial)
  | P_cone m -> Array.fold_left (fun acc l -> acc + Array.length l.candidates) 0 m.levels
  | P_mixed { v_cells; rest; _ } ->
      (List.length (Dist.support_int p.attack.Attack.temporal) * Array.length v_cells)
      + Array.fold_left (fun acc l -> acc + Array.length l.candidates) 0 rest.levels
