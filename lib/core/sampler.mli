(** Sampling strategies over the attack-parameter space (paper §3.3, §4).

    - [Random]: draw directly from the attacker model [f_{T,P}]
      (plain Monte Carlo, the baseline of Fig. 9);
    - [Fanin_cone]: restrict the center-cell choice to the responding
      signals' cone slice [Omega_t] (pre-characterization step 1 only);
    - [Importance]: the paper's full two-step scheme,
      [g_T(t) = omega_t / sum omega] with
      [omega_t = sum_{g in Omega_t} (1 + alpha Corr_t(g, rs)
      delta(L(g) >= beta t))], then [g_{P|T}] proportional to the same
      per-cell weights.

    Radius, pulse width and intra-cycle strike time are technique
    variation, sampled identically under every strategy, so they cancel in
    the importance weights. Draws carry the exact weight
    [f_{T,P} / g_{T,P}] so that the weighted estimator stays unbiased over
    the cone-restricted support (outside it the attack cannot reach the
    responding signals — paper Observation 1). *)

type strategy =
  | Random
  | Fanin_cone
  | Importance of { alpha : float; beta : float; dead_weight : float; gamma : float }
  | Mixed of { alpha : float; beta : float; dead_weight : float; v_allocation : float }
      (** the paper's full "Our" scheme: hybrid of importance Monte Carlo
          and the analytical pre-characterization, realized as a stratified
          estimator. Block cells whose disc can flip an analytically
          vulnerable register bit form the {e vulnerable} stratum (sampled
          with probability [v_allocation], uniformly within); the rest is
          sampled with the correlation/lifetime importance scheme. The
          estimator combines strata by their exact [f]-masses, so the
          near-deterministic analytical component contributes almost no
          variance. *)
      (** [alpha] scales the correlation bonus, [beta] the lifetime
          threshold [delta(L(g) >= beta t)] — both per the paper's formula.
          [dead_weight] (in (0, 1]) additionally scales down cells whose
          measured error lifetime cannot reach the target cycle
          ([L(g) < beta t]); the paper leaves those at baseline weight,
          but Observation 3 says their attacks fail, so sampling them
          rarely (with the exact [f/g] correction keeping the estimator
          unbiased) is a strict refinement. Set [dead_weight = 1.] for the
          paper's literal formula. [gamma] is the bonus for register bits
          the analytical pre-characterization marks as single-flip policy
          defeats ([Engine.static_vulnerable]); 0 disables the prior. *)

val strategy_name : strategy -> string

val default_importance : strategy
(** [Importance { alpha = 8.; beta = 1.; dead_weight = 0.1; gamma = 60. }]. *)

val default_mixed : strategy
(** [Mixed { alpha = 8.; beta = 1.; dead_weight = 0.1; v_allocation = 0.5 }]. *)

type stratum = All | Vulnerable | Rest

val stratum_name : stratum -> string
(** Stable lowercase name, shared by the checkpoint/wire codecs and the
    failure journal. *)

val stratum_of_name : string -> stratum option
(** Inverse of {!stratum_name}; [None] for an unknown name. *)

type sample = {
  t : int;  (** timing distance *)
  center : Fmc_netlist.Netlist.node;
  radius : float;
  width : float;  (** transient pulse width, ps *)
  time_frac : float;  (** strike start as a fraction of the clock period *)
  weight : float;
      (** importance weight: [f/g] for single-stratum strategies, the
          within-stratum [f(.|s)/g] for [Mixed] *)
  stratum : stratum;  (** [All] except under [Mixed] *)
}

type prepared

val prepare :
  ?static_vuln:(Fmc_netlist.Netlist.node -> bool) ->
  strategy ->
  Attack.t ->
  Precharac.t ->
  placement:Fmc_layout.Placement.t ->
  prepared
(** Precomputes the per-depth candidate sets and weight tables. Importance
    scores are smoothed over each center's radiated neighborhood (largest
    attack radius) so that a disc covering a critical cell is never
    under-sampled. Raises [Invalid_argument] if a cone-based strategy has
    an empty sample space (no overlap between the target block and any
    [Omega_t]). *)

val draw : ?obs:Fmc_obs.Obs.t -> prepared -> Fmc_prelude.Rng.t -> sample
(** [obs] (default {!Fmc_obs.Obs.disabled}) wraps the draw in a ["draw"]
    span when a tracer is attached; it never touches the RNG stream, so an
    instrumented run draws the identical sample sequence. *)

val name : prepared -> string
(** {!strategy_name} of the prepared strategy. *)

val strata : prepared -> (stratum * float) list
(** The strata and their exact [f]-masses: [\[(All, 1.)\]] except under
    [Mixed]. The estimator combines per-stratum means with these masses. *)

val temporal_pmf : prepared -> (int * float) list
(** The realized sampling distribution [g_T] over timing distances
    (Fig. 8a). For [Random] this is just [f_T]. *)

val sample_space_size : prepared -> int
(** Total number of (t, center) pairs with non-zero sampling probability. *)
