module Netsys = Fmc_cpu.Netsys
module Cycle_sim = Fmc_gatesim.Cycle_sim
module N = Fmc_netlist.Netlist
module Bitvec = Fmc_prelude.Bitvec

type t = { cycles : int; switches : Bitvec.t array }

let record net ~cycles =
  if cycles <= 0 then invalid_arg "Sigrec.record: cycles must be positive";
  let sim = Netsys.sim net in
  let netlist = Cycle_sim.netlist sim in
  let n = N.num_nodes netlist in
  let switches = Array.init n (fun _ -> Bitvec.create cycles) in
  let prev = Array.make n false in
  for c = 0 to cycles - 1 do
    Netsys.settle net;
    for node = 0 to n - 1 do
      let v = Cycle_sim.value sim node in
      if c > 0 && v <> prev.(node) then Bitvec.set switches.(node) c true;
      prev.(node) <- v
    done;
    (* Commit memory effects and clock, like Netsys.step after settle. *)
    if Cycle_sim.value sim (Netsys.circuit net).Fmc_cpu.Circuit.dmem_we then begin
      let addr = Cycle_sim.read_bus sim (Netsys.circuit net).Fmc_cpu.Circuit.dmem_addr in
      let dmem = Netsys.dmem net in
      dmem.(addr land (Array.length dmem - 1)) <-
        Cycle_sim.read_bus sim (Netsys.circuit net).Fmc_cpu.Circuit.dmem_wdata
    end;
    Cycle_sim.latch sim
  done;
  { cycles; switches }

let cycles t = t.cycles
let switches t node = t.switches.(node)

let correlation t ~node ~rs ~shift = Bitvec.correlation t.switches.(node) t.switches.(rs) ~shift

let activity t node = float_of_int (Bitvec.popcount t.switches.(node)) /. float_of_int t.cycles
