(** Switching-signature recording over a full gate-level system run
    (paper §4, pre-characterization step 2).

    Runs the netlist system on the synthetic benchmark, recording the
    settled value of {e every} node at every cycle, and derives per-node
    switching signatures. Correlations [Corr_i(g, rs)] against a responding
    signal are then word-parallel popcount operations. *)

type t

val record : Fmc_cpu.Netsys.t -> cycles:int -> t
(** Advances the system [cycles] cycles (or until halt, whichever is
    first; remaining cycles repeat the halted state, which switches
    nothing). *)

val cycles : t -> int

val switches : t -> Fmc_netlist.Netlist.node -> Fmc_prelude.Bitvec.t

val correlation : t -> node:Fmc_netlist.Netlist.node -> rs:Fmc_netlist.Netlist.node -> shift:int -> float
(** The paper's [Corr_shift(node, rs)]. *)

val activity : t -> Fmc_netlist.Netlist.node -> float
(** Fraction of cycles the node switched (its signature weight / cycles). *)
