module Welford = Fmc_prelude.Stats.Welford
module Rng = Fmc_prelude.Rng

type outcome_counts = { masked : int; mem_only : int; resumed : int }

type report = {
  strategy : string;
  n : int;
  ssf : float;
  variance : float;
  successes : int;
  ess : float;
  trace : (int * float) list;
  outcomes : outcome_counts;
  contributions : ((string * int) * float) list;
  success_by_direct : int;
  success_by_comb : int;
}

let estimate ?(trace_every = 50) ?(causal = true) ?cell_filter ?impact_cycles ?hardened ?resilience
    engine prepared ~samples ~seed =
  if samples <= 0 then invalid_arg "Ssf.estimate: non-positive sample count";
  let rng = Rng.create seed in
  let strata = Sampler.strata prepared in
  (* One accumulator per stratum; the stratified estimate combines the
     per-stratum means with their exact f-masses, and the reported variance
     is the effective per-sample variance n * Var(estimate) so it is
     directly comparable to plain Monte Carlo's indicator variance. *)
  let accs = List.map (fun (s, m) -> (s, m, Welford.create ())) strata in
  let acc_of stratum =
    let _, _, w = List.find (fun (s, _, _) -> s = stratum) accs in
    w
  in
  let current_estimate () =
    List.fold_left (fun acc (_, m, w) -> acc +. (m *. Welford.mean w)) 0. accs
  in
  let trace = ref [] in
  let masked = ref 0 and mem_only = ref 0 and resumed = ref 0 in
  let successes = ref 0 in
  let by_direct = ref 0 and by_comb = ref 0 in
  let sum_w = ref 0. and sum_w2 = ref 0. in
  let contributions = Hashtbl.create 64 in
  for i = 1 to samples do
    let sample = Sampler.draw prepared rng in
    let result = Engine.run_sample engine ?cell_filter ?impact_cycles ?hardened ?resilience rng sample in
    let e = if result.Engine.success then 1. else 0. in
    (* Kish effective sample size over the drawn weights (f-mass scaled so
       strata weigh in proportionally). *)
    let w = List.assoc sample.Sampler.stratum strata *. sample.Sampler.weight in
    sum_w := !sum_w +. w;
    sum_w2 := !sum_w2 +. (w *. w);
    Welford.add (acc_of sample.Sampler.stratum) (sample.Sampler.weight *. e);
    (match result.Engine.outcome with
    | Engine.Masked -> incr masked
    | Engine.Analytical _ -> incr mem_only
    | Engine.Resumed _ -> incr resumed);
    if result.Engine.success then begin
      incr successes;
      if Array.length result.Engine.direct > 0 then incr by_direct else incr by_comb;
      (* Contribution mass in f-terms: within-stratum weight times the
         stratum mass, split evenly across the run's flipped bits so that
         incidental co-flips don't each collect full credit. *)
      let mass = List.assoc sample.Sampler.stratum strata in
      let attributed =
        (* Leave-one-out causal attribution strips incidental co-flips; it
           replays deterministically, so it is disabled when hardening
           randomness is in play, and also under a cell filter (the replay
           would not see the filter). *)
        if causal && hardened = None && cell_filter = None && impact_cycles = None then
          Engine.causal_flips engine result
        else result.Engine.flips
      in
      let share = mass *. sample.Sampler.weight /. float_of_int (max 1 (List.length attributed)) in
      List.iter
        (fun key ->
          let cur = try Hashtbl.find contributions key with Not_found -> 0. in
          Hashtbl.replace contributions key (cur +. share))
        attributed
    end;
    if i mod trace_every = 0 || i = samples then trace := (i, current_estimate ()) :: !trace
  done;
  let ssf_value = current_estimate () in
  let variance_value =
    (* n * Var(stratified estimator); collapses to the plain sample
       variance when there is a single stratum. *)
    let n = float_of_int samples in
    List.fold_left
      (fun acc (_, m, w) ->
        let n_s = float_of_int (max 1 (Welford.count w)) in
        acc +. (m *. m *. Welford.variance w /. n_s))
      0. accs
    *. n
  in
  let contributions =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) contributions []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    strategy = Sampler.name prepared;
    n = samples;
    ssf = ssf_value;
    variance = variance_value;
    successes = !successes;
    ess = (if !sum_w2 > 0. then !sum_w *. !sum_w /. !sum_w2 else float_of_int samples);
    trace = List.rev !trace;
    outcomes = { masked = !masked; mem_only = !mem_only; resumed = !resumed };
    contributions;
    success_by_direct = !by_direct;
    success_by_comb = !by_comb;
  }

let merge_reports (reports : report list) =
  match reports with
  | [] -> invalid_arg "Ssf.merge_reports: empty"
  | first :: _ ->
      let n = List.fold_left (fun acc r -> acc + r.n) 0 reports in
      (* Recombine the stratified estimate: per-sample weighted values are
         not retained, so merge via the variance-weighted formulas on the
         per-report summaries (each report is a stratified estimate over
         the same strata with the same masses; averaging the estimates with
         sample-count weights is exact for the mean, and the pooled
         effective variance follows the same weighting). *)
      let ssf = List.fold_left (fun acc r -> acc +. (float_of_int r.n *. r.ssf)) 0. reports /. float_of_int n in
      let variance =
        List.fold_left (fun acc r -> acc +. (float_of_int r.n *. r.variance)) 0. reports
        /. float_of_int n
      in
      let successes = List.fold_left (fun acc r -> acc + r.successes) 0 reports in
      let outcomes =
        List.fold_left
          (fun acc r ->
            {
              masked = acc.masked + r.outcomes.masked;
              mem_only = acc.mem_only + r.outcomes.mem_only;
              resumed = acc.resumed + r.outcomes.resumed;
            })
          { masked = 0; mem_only = 0; resumed = 0 } reports
      in
      let contributions =
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun r ->
            List.iter
              (fun (k, w) ->
                let cur = try Hashtbl.find tbl k with Not_found -> 0. in
                Hashtbl.replace tbl k (cur +. w))
              r.contributions)
          reports;
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      let trace =
        (* Per-domain partial traces laid out at cumulative sample offsets:
           x stays in [0, n], y is the owning domain's running estimate. *)
        let _, rev =
          List.fold_left
            (fun (offset, acc) r ->
              (offset + r.n, List.rev_append (List.map (fun (k, e) -> (offset + k, e)) r.trace) acc))
            (0, []) reports
        in
        List.sort compare rev
      in
      {
        strategy = first.strategy;
        n;
        ssf;
        variance;
        successes;
        trace;
        outcomes;
        contributions;
        success_by_direct = List.fold_left (fun acc r -> acc + r.success_by_direct) 0 reports;
        success_by_comb = List.fold_left (fun acc r -> acc + r.success_by_comb) 0 reports;
        ess = List.fold_left (fun acc r -> acc +. r.ess) 0. reports;
      }

let estimate_parallel ?domains ?causal ~engine_factory prepared ~samples ~seed =
  let domains =
    match domains with Some d -> max 1 d | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  if samples <= 0 then invalid_arg "Ssf.estimate_parallel: non-positive sample count";
  let per = samples / domains and extra = samples mod domains in
  let spawned =
    List.init domains (fun i ->
        let n = per + (if i < extra then 1 else 0) in
        Domain.spawn (fun () ->
            if n = 0 then None
            else begin
              let engine = engine_factory () in
              Some (estimate ?causal engine prepared ~samples:n ~seed:(seed + (7919 * (i + 1))))
            end))
  in
  let reports = List.filter_map Domain.join spawned in
  merge_reports reports

let confidence_interval report ~z =
  let half = z *. sqrt (report.variance /. float_of_int (max 1 report.n)) in
  (Float.max 0. (report.ssf -. half), Float.min 1. (report.ssf +. half))

let estimate_until ?trace_every ?causal ?(batch = 500) ?(max_samples = 200_000) engine prepared
    ~half_width ~z ~seed =
  if half_width <= 0. then invalid_arg "Ssf.estimate_until: non-positive half_width";
  if batch <= 0 then invalid_arg "Ssf.estimate_until: non-positive batch";
  (* Deterministic growth: re-estimate with a growing sample count so the
     stream stays reproducible (estimation cost is linear in the final n,
     and the doubling schedule keeps the total within ~4x of one pass). *)
  let rec go n =
    let report = estimate ?trace_every ?causal engine prepared ~samples:n ~seed in
    let lo, hi = confidence_interval report ~z in
    if (hi -. lo) /. 2. <= half_width || n >= max_samples then report
    else go (min max_samples (max (n + batch) (2 * n)))
  in
  go batch

let contribution_coverage report ~fraction =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. report.contributions in
  if total <= 0. then []
  else begin
    let rec take acc covered = function
      | [] -> List.rev acc
      | (k, w) :: rest ->
          let covered = covered +. w in
          let acc = (k, w) :: acc in
          if covered >= fraction *. total then List.rev acc else take acc covered rest
    in
    take [] 0. report.contributions
  end
