module Welford = Fmc_prelude.Stats.Welford
module Rng = Fmc_prelude.Rng
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics

type quarantine_reason = Q_crashed | Q_timed_out

type outcome_counts = {
  masked : int;
  mem_only : int;
  resumed : int;
  quarantined : int;
  q_crashed : int;
  q_timed_out : int;
}

type report = {
  strategy : string;
  n : int;
  ssf : float;
  ssf_upper : float;
  variance : float;
  successes : int;
  ess : float;
  sum_w : float;
  sum_w2 : float;
  trace : (int * float) list;
  outcomes : outcome_counts;
  contributions : ((string * int) * float) list;
  success_by_direct : int;
  success_by_comb : int;
}

(* Weight-descending with a deterministic key tie-break, so the final list
   does not depend on hash-table iteration order (which differs between an
   uninterrupted run and a checkpoint-resumed one). *)
let sort_contributions l =
  List.sort
    (fun ((ka : string * int), a) (kb, b) ->
      match compare (b : float) a with 0 -> compare ka kb | c -> c)
    l

module Tally = struct
  (* Pre-resolved metric cells, so the per-sample cost with metrics enabled
     is plain field updates — no hashtable lookups in the hot loop. *)
  type inst = {
    i_samples : Metrics.counter;
    i_successes : Metrics.counter;
    i_masked : Metrics.counter;
    i_analytical : Metrics.counter;
    i_resumed : Metrics.counter;
    i_quarantined : Metrics.counter;
    i_q_crashed : Metrics.counter;
    i_q_timed_out : Metrics.counter;
    i_draws_all : Metrics.counter;
    i_draws_vulnerable : Metrics.counter;
    i_draws_rest : Metrics.counter;
    i_weights : Metrics.histogram;
    i_ssf : Metrics.gauge;
    i_ess : Metrics.gauge;
  }

  let make_inst (obs : Obs.t) =
    match obs.Obs.metrics with
    | None -> None
    | Some reg ->
        Some
          {
            i_samples = Metrics.counter reg ~help:"samples folded into the campaign" "fmc_samples_total";
            i_successes = Metrics.counter reg ~help:"successful fault attacks" "fmc_successes_total";
            i_masked =
              Metrics.counter reg ~help:"samples with no surviving register error"
                "fmc_outcome_masked_total";
            i_analytical =
              Metrics.counter reg ~help:"samples settled by analytical evaluation"
                "fmc_outcome_analytical_total";
            i_resumed =
              Metrics.counter reg ~help:"samples that resumed RTL simulation"
                "fmc_outcome_resumed_total";
            i_quarantined =
              Metrics.counter reg ~help:"samples quarantined by the campaign runner"
                "fmc_outcome_quarantined_total";
            i_q_crashed =
              Metrics.counter reg ~help:"quarantines from the crash guard"
                "fmc_quarantine_crashed_total";
            i_q_timed_out =
              Metrics.counter reg ~help:"quarantines from the cycle-budget watchdog"
                "fmc_quarantine_timed_out_total";
            i_draws_all =
              Metrics.counter reg ~help:"draws from the unstratified space" "fmc_draws_all_total";
            i_draws_vulnerable =
              Metrics.counter reg ~help:"draws from the vulnerable stratum"
                "fmc_draws_vulnerable_total";
            i_draws_rest =
              Metrics.counter reg ~help:"draws from the rest stratum" "fmc_draws_rest_total";
            i_weights =
              Metrics.histogram reg ~help:"drawn importance weights f/g"
                ~buckets:[| 0.01; 0.03; 0.1; 0.3; 1.; 3.; 10.; 100. |]
                "fmc_is_weight";
            i_ssf = Metrics.gauge reg ~help:"running SSF estimate" "fmc_ssf_estimate";
            i_ess = Metrics.gauge reg ~help:"Kish effective sample size" "fmc_ess";
          }

  type t = {
    total : int;
    trace_every : int;
    strata : (Sampler.stratum * float) array;
    (* One accumulator per stratum; the stratified estimate combines the
       per-stratum means with their exact f-masses, and the reported
       variance is the effective per-sample variance n * Var(estimate) so it
       is directly comparable to plain Monte Carlo's indicator variance. *)
    accs : Welford.t array;
    (* Pessimistic shadow accumulators: identical to [accs] except that
       quarantined samples are counted as full-weight successes. Their
       combined mean is the conservative SSF upper bound. *)
    pess : Welford.t array;
    index : int array;  (* stratum tag -> position in [strata]/[accs] *)
    mutable processed : int;
    mutable masked : int;
    mutable mem_only : int;
    mutable resumed : int;
    mutable quarantined : int;
    mutable q_crashed : int;
    mutable q_timed_out : int;
    mutable successes : int;
    mutable by_direct : int;
    mutable by_comb : int;
    mutable sum_w : float;
    mutable sum_w2 : float;
    contributions : (string * int, float) Hashtbl.t;
    mutable trace : (int * float) list;  (* newest first *)
    obs : Obs.t;
    inst : inst option;
    start : float;  (* wall clock at tally creation/restore (segment start) *)
    base : int;  (* [processed] at segment start; >0 for resumed campaigns *)
  }

  type snapshot = {
    snap_total : int;
    snap_trace_every : int;
    snap_processed : int;
    snap_strata : (Sampler.stratum * float) list;
    snap_accs : (int * float * float) list;
    snap_pess : (int * float * float) list;
    snap_masked : int;
    snap_mem_only : int;
    snap_resumed : int;
    snap_quarantined : int;
    snap_q_crashed : int;
    snap_q_timed_out : int;
    snap_successes : int;
    snap_by_direct : int;
    snap_by_comb : int;
    snap_sum_w : float;
    snap_sum_w2 : float;
    snap_contributions : ((string * int) * float) list;
    snap_trace : (int * float) list;  (* chronological *)
  }

  let tag = function Sampler.All -> 0 | Sampler.Vulnerable -> 1 | Sampler.Rest -> 2

  let make_index strata =
    let index = Array.make 3 (-1) in
    Array.iteri (fun i (s, _) -> index.(tag s) <- i) strata;
    index

  let of_strata ?(obs = Obs.disabled) ?(trace_every = 50) strata_list ~total =
    let strata = Array.of_list strata_list in
    {
      total;
      trace_every;
      strata;
      accs = Array.map (fun _ -> Welford.create ()) strata;
      pess = Array.map (fun _ -> Welford.create ()) strata;
      index = make_index strata;
      processed = 0;
      masked = 0;
      mem_only = 0;
      resumed = 0;
      quarantined = 0;
      q_crashed = 0;
      q_timed_out = 0;
      successes = 0;
      by_direct = 0;
      by_comb = 0;
      sum_w = 0.;
      sum_w2 = 0.;
      contributions = Hashtbl.create 64;
      trace = [];
      obs;
      inst = make_inst obs;
      start = Fmc_obs.Clock.now ();
      base = 0;
    }

  let create ?obs ?trace_every prepared ~total =
    of_strata ?obs ?trace_every (Sampler.strata prepared) ~total

  let slot t stratum =
    let i = t.index.(tag stratum) in
    if i < 0 then invalid_arg "Ssf.Tally: sample from a stratum unknown to this tally";
    i

  let combined t accs =
    let acc = ref 0. in
    Array.iteri (fun i (_, m) -> acc := !acc +. (m *. Welford.mean accs.(i))) t.strata;
    !acc

  let current_estimate t = combined t t.accs

  let processed t = t.processed
  let total t = t.total
  let quarantined t = t.quarantined

  let kish t = if t.sum_w2 > 0. then t.sum_w *. t.sum_w /. t.sum_w2 else float_of_int t.processed

  (* n * Var(stratified estimator); collapses to the plain sample variance
     when there is a single stratum. Shared by [report] and the running
     CI half-width of the convergence telemetry. *)
  let effective_variance t =
    let acc = ref 0. in
    Array.iteri
      (fun i (_, m) ->
        let w = t.accs.(i) in
        let n_s = float_of_int (max 1 (Welford.count w)) in
        acc := !acc +. (m *. m *. Welford.variance w /. n_s))
      t.strata;
    !acc *. float_of_int t.processed

  let emit_progress t est =
    (match t.inst with
    | Some i ->
        Metrics.set i.i_ssf est;
        Metrics.set i.i_ess (kish t)
    | None -> ());
    match t.obs.Obs.progress with
    | None -> ()
    | Some _ ->
        let n = t.processed in
        let nf = float_of_int (max 1 n) in
        let elapsed = Float.max 0. (Fmc_obs.Clock.now () -. t.start) in
        let here = n - t.base in
        Obs.emit t.obs
          {
            Fmc_obs.Progress.n;
            total = t.total;
            estimate = est;
            half_width = 1.96 *. sqrt (Float.max 0. (effective_variance t) /. nf);
            ess = kish t;
            accept_rate = float_of_int (n - t.quarantined) /. nf;
            quarantine_rate = float_of_int t.quarantined /. nf;
            samples_per_sec = (if elapsed > 0. then float_of_int here /. elapsed else 0.);
            elapsed_s = elapsed;
          }

  let bump_trace t =
    if t.processed mod t.trace_every = 0 || t.processed = t.total then begin
      let est = current_estimate t in
      t.trace <- (t.processed, est) :: t.trace;
      if Obs.enabled t.obs then emit_progress t est
    end

  let bump_draw inst (sample : Sampler.sample) =
    Metrics.inc inst.i_samples;
    Metrics.observe inst.i_weights sample.Sampler.weight;
    match sample.Sampler.stratum with
    | Sampler.All -> Metrics.inc inst.i_draws_all
    | Sampler.Vulnerable -> Metrics.inc inst.i_draws_vulnerable
    | Sampler.Rest -> Metrics.inc inst.i_draws_rest

  let record t (sample : Sampler.sample) (result : Engine.run_result) ~attributed =
    t.processed <- t.processed + 1;
    (match t.inst with
    | Some inst ->
        bump_draw inst sample;
        if result.Engine.success then Metrics.inc inst.i_successes;
        Metrics.inc
          (match result.Engine.outcome with
          | Engine.Masked -> inst.i_masked
          | Engine.Analytical _ -> inst.i_analytical
          | Engine.Resumed _ -> inst.i_resumed)
    | None -> ());
    let i = slot t sample.Sampler.stratum in
    let _, mass = t.strata.(i) in
    let e = if result.Engine.success then 1. else 0. in
    (* Kish effective sample size over the drawn weights (f-mass scaled so
       strata weigh in proportionally). *)
    let w = mass *. sample.Sampler.weight in
    t.sum_w <- t.sum_w +. w;
    t.sum_w2 <- t.sum_w2 +. (w *. w);
    Welford.add t.accs.(i) (sample.Sampler.weight *. e);
    Welford.add t.pess.(i) (sample.Sampler.weight *. e);
    (match result.Engine.outcome with
    | Engine.Masked -> t.masked <- t.masked + 1
    | Engine.Analytical _ -> t.mem_only <- t.mem_only + 1
    | Engine.Resumed _ -> t.resumed <- t.resumed + 1);
    if result.Engine.success then begin
      t.successes <- t.successes + 1;
      if Array.length result.Engine.direct > 0 then t.by_direct <- t.by_direct + 1
      else t.by_comb <- t.by_comb + 1;
      (* Contribution mass in f-terms: within-stratum weight times the
         stratum mass, split evenly across the run's flipped bits so that
         incidental co-flips don't each collect full credit. *)
      let share = mass *. sample.Sampler.weight /. float_of_int (max 1 (List.length attributed)) in
      List.iter
        (fun key ->
          let cur = try Hashtbl.find t.contributions key with Not_found -> 0. in
          Hashtbl.replace t.contributions key (cur +. share))
        attributed
    end;
    bump_trace t

  let quarantine t (sample : Sampler.sample) ~reason =
    t.processed <- t.processed + 1;
    t.quarantined <- t.quarantined + 1;
    (match reason with
    | Q_crashed -> t.q_crashed <- t.q_crashed + 1
    | Q_timed_out -> t.q_timed_out <- t.q_timed_out + 1);
    (match t.inst with
    | Some inst ->
        bump_draw inst sample;
        Metrics.inc inst.i_quarantined;
        Metrics.inc (match reason with Q_crashed -> inst.i_q_crashed | Q_timed_out -> inst.i_q_timed_out)
    | None -> ());
    let i = slot t sample.Sampler.stratum in
    (* The honest accumulators skip the sample entirely (it is reported in
       its own outcome bucket); the pessimistic shadow counts it as a
       success with its full weight, giving the conservative bound. *)
    Welford.add t.pess.(i) sample.Sampler.weight;
    bump_trace t

  let report t ~strategy =
    let n = t.processed in
    let ssf_value = current_estimate t in
    let variance_value = effective_variance t in
    let contributions =
      sort_contributions (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.contributions [])
    in
    {
      strategy;
      n;
      ssf = ssf_value;
      ssf_upper = (if t.quarantined = 0 then ssf_value else combined t t.pess);
      variance = variance_value;
      successes = t.successes;
      ess = kish t;
      sum_w = t.sum_w;
      sum_w2 = t.sum_w2;
      trace = List.rev t.trace;
      outcomes =
        {
          masked = t.masked;
          mem_only = t.mem_only;
          resumed = t.resumed;
          quarantined = t.quarantined;
          q_crashed = t.q_crashed;
          q_timed_out = t.q_timed_out;
        };
      contributions;
      success_by_direct = t.by_direct;
      success_by_comb = t.by_comb;
    }

  let snapshot t =
    {
      snap_total = t.total;
      snap_trace_every = t.trace_every;
      snap_processed = t.processed;
      snap_strata = Array.to_list t.strata;
      snap_accs = Array.to_list (Array.map Welford.state t.accs);
      snap_pess = Array.to_list (Array.map Welford.state t.pess);
      snap_masked = t.masked;
      snap_mem_only = t.mem_only;
      snap_resumed = t.resumed;
      snap_quarantined = t.quarantined;
      snap_q_crashed = t.q_crashed;
      snap_q_timed_out = t.q_timed_out;
      snap_successes = t.successes;
      snap_by_direct = t.by_direct;
      snap_by_comb = t.by_comb;
      snap_sum_w = t.sum_w;
      snap_sum_w2 = t.sum_w2;
      snap_contributions = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.contributions [];
      snap_trace = List.rev t.trace;
    }

  let restore ?(obs = Obs.disabled) s =
    if List.length s.snap_accs <> List.length s.snap_strata
       || List.length s.snap_pess <> List.length s.snap_strata
    then invalid_arg "Ssf.Tally.restore: accumulator/strata arity mismatch";
    let strata = Array.of_list s.snap_strata in
    let contributions = Hashtbl.create 64 in
    List.iter (fun (k, v) -> Hashtbl.replace contributions k v) s.snap_contributions;
    {
      total = s.snap_total;
      trace_every = s.snap_trace_every;
      strata;
      accs = Array.of_list (List.map Welford.of_state s.snap_accs);
      pess = Array.of_list (List.map Welford.of_state s.snap_pess);
      index = make_index strata;
      processed = s.snap_processed;
      masked = s.snap_masked;
      mem_only = s.snap_mem_only;
      resumed = s.snap_resumed;
      quarantined = s.snap_quarantined;
      q_crashed = s.snap_q_crashed;
      q_timed_out = s.snap_q_timed_out;
      successes = s.snap_successes;
      by_direct = s.snap_by_direct;
      by_comb = s.snap_by_comb;
      sum_w = s.snap_sum_w;
      sum_w2 = s.snap_sum_w2;
      contributions;
      trace = List.rev s.snap_trace;
      obs;
      inst = make_inst obs;
      start = Fmc_obs.Clock.now ();
      (* Throughput telemetry covers this segment only: a resumed campaign
         should not average in the wall-clock gap since the checkpoint. *)
      base = s.snap_processed;
    }

  (* ---------------------------------------------------------------- *)
  (* Snapshot codec: the line-oriented text encoding shared verbatim by
     the durable campaign checkpoint (Campaign, v3) and the distributed
     wire protocol (Fmc_dist). Floats are hex float literals ("%h"),
     which round-trip bit-exactly through [float_of_string], so a
     decoded snapshot restores the identical accumulator. *)

  let hexf = Printf.sprintf "%h"

  let to_string (s : snapshot) =
    let buf = Buffer.create 1024 in
    let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pr "samples %d\n" s.snap_total;
    pr "trace_every %d\n" s.snap_trace_every;
    pr "processed %d\n" s.snap_processed;
    pr "counts %d %d %d %d %d %d %d %d %d\n" s.snap_masked s.snap_mem_only s.snap_resumed
      s.snap_quarantined s.snap_q_crashed s.snap_q_timed_out s.snap_successes s.snap_by_direct
      s.snap_by_comb;
    pr "weights %s %s\n" (hexf s.snap_sum_w) (hexf s.snap_sum_w2);
    pr "strata %d\n" (List.length s.snap_strata);
    List.iter2
      (fun (stratum, mass) ((n, mean, m2), (pn, pmean, pm2)) ->
        pr "stratum %s %s %d %s %s %d %s %s\n" (Sampler.stratum_name stratum) (hexf mass) n
          (hexf mean) (hexf m2) pn (hexf pmean) (hexf pm2))
      s.snap_strata
      (List.combine s.snap_accs s.snap_pess);
    pr "contributions %d\n" (List.length s.snap_contributions);
    List.iter
      (fun ((group, bit), w) -> pr "contribution %s %d %s\n" group bit (hexf w))
      s.snap_contributions;
    pr "trace %d\n" (List.length s.snap_trace);
    List.iter (fun (i, e) -> pr "tracepoint %d %s\n" i (hexf e)) s.snap_trace;
    Buffer.contents buf

  exception Bad of string

  let of_string text =
    let lines = String.split_on_char '\n' text in
    (* Tolerate a trailing newline but nothing else after the trace block. *)
    let lines = ref (List.filter (fun l -> l <> "") lines) in
    let lineno = ref 0 in
    let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
    let fields key =
      match !lines with
      | [] -> bad "truncated snapshot: expected %S" key
      | l :: rest -> (
          incr lineno;
          lines := rest;
          match String.split_on_char ' ' l with
          | k :: v when k = key -> v
          | k :: _ -> bad "line %d: expected %S, found %S" !lineno key k
          | [] -> bad "line %d: empty line, expected %S" !lineno key)
    in
    let one key =
      match fields key with
      | [ v ] -> v
      | l -> bad "line %d: %s wants 1 field, got %d" !lineno key (List.length l)
    in
    let int_of key v =
      try int_of_string v with _ -> bad "line %d: bad int %S in %s" !lineno v key
    in
    let float_of key v =
      try float_of_string v with _ -> bad "line %d: bad float %S in %s" !lineno v key
    in
    match
      let total = int_of "samples" (one "samples") in
      let trace_every = int_of "trace_every" (one "trace_every") in
      let processed = int_of "processed" (one "processed") in
      let masked, mem_only, resumed, quarantined, q_crashed, q_timed_out, successes, by_direct, by_comb
          =
        match fields "counts" with
        | [ a; b; c; d; e; f; g; h; i ] ->
            ( int_of "counts" a, int_of "counts" b, int_of "counts" c, int_of "counts" d,
              int_of "counts" e, int_of "counts" f, int_of "counts" g, int_of "counts" h,
              int_of "counts" i )
        | _ -> bad "line %d: counts wants 9 fields" !lineno
      in
      let sum_w, sum_w2 =
        match fields "weights" with
        | [ a; b ] -> (float_of "weights" a, float_of "weights" b)
        | _ -> bad "line %d: weights wants 2 fields" !lineno
      in
      let n_strata = int_of "strata" (one "strata") in
      let strata = ref [] and accs = ref [] and pess = ref [] in
      for _ = 1 to n_strata do
        match fields "stratum" with
        | [ name; mass; n; mean; m2; pn; pmean; pm2 ] ->
            let stratum =
              match Sampler.stratum_of_name name with
              | Some s -> s
              | None -> bad "line %d: unknown stratum %S" !lineno name
            in
            strata := (stratum, float_of "stratum" mass) :: !strata;
            accs := (int_of "stratum" n, float_of "stratum" mean, float_of "stratum" m2) :: !accs;
            pess := (int_of "stratum" pn, float_of "stratum" pmean, float_of "stratum" pm2) :: !pess
        | _ -> bad "line %d: stratum wants 8 fields" !lineno
      done;
      let n_contrib = int_of "contributions" (one "contributions") in
      let contribs = ref [] in
      for _ = 1 to n_contrib do
        match fields "contribution" with
        | [ group; bit; w ] ->
            contribs := ((group, int_of "contribution" bit), float_of "contribution" w) :: !contribs
        | _ -> bad "line %d: contribution wants 3 fields" !lineno
      done;
      let n_trace = int_of "trace" (one "trace") in
      let trace = ref [] in
      for _ = 1 to n_trace do
        match fields "tracepoint" with
        | [ i; e ] -> trace := (int_of "tracepoint" i, float_of "tracepoint" e) :: !trace
        | _ -> bad "line %d: tracepoint wants 2 fields" !lineno
      done;
      if !lines <> [] then bad "line %d: trailing data after the trace block" !lineno;
      {
        snap_total = total;
        snap_trace_every = trace_every;
        snap_processed = processed;
        snap_strata = List.rev !strata;
        snap_accs = List.rev !accs;
        snap_pess = List.rev !pess;
        snap_masked = masked;
        snap_mem_only = mem_only;
        snap_resumed = resumed;
        snap_quarantined = quarantined;
        snap_q_crashed = q_crashed;
        snap_q_timed_out = q_timed_out;
        snap_successes = successes;
        snap_by_direct = by_direct;
        snap_by_comb = by_comb;
        snap_sum_w = sum_w;
        snap_sum_w2 = sum_w2;
        snap_contributions = List.rev !contribs;
        snap_trace = List.rev !trace;
      }
    with
    | s -> Ok s
    | exception Bad msg -> Error msg

  (* Because [to_string] is canonical (one serializer, hex floats, fixed
     line order), hashing the encoding hashes the statistics: equal
     digests iff bit-identical accumulators. *)
  let digest_hex blob = Stdlib.Digest.to_hex (Stdlib.Digest.string blob)
end

(* The analytical result a pruned sample is tallied with: exactly what
   [Engine.run_sample] returns for a provably masked sample. The pruner's
   certificate guarantees outcome/success/flips; [direct]/[latched]/
   [struck_cells] are only read by [Tally.record] on successful samples,
   which a masked one never is. *)
let pruned_result engine (sample : Sampler.sample) =
  {
    Engine.sample;
    te = Golden.target_cycle (Engine.golden engine) - sample.Sampler.t;
    outcome = Engine.Masked;
    success = false;
    flips = [];
    direct = [||];
    latched = [||];
    struck_cells = 0;
  }

(* A pluggable per-sample injector (a fault model other than the
   engine's native disc transient). The record is plain functions so
   [lib/core] stays independent of the model registry ([Fmc_fault]
   constructs these). [inj_model] is the canonical model string
   ("name:k=v,...") recorded in campaign checkpoints and error
   messages. *)
type inject = {
  inj_model : string;
  inj_run : Engine.t -> ?cycle_budget:int -> Fmc_prelude.Rng.t -> Sampler.sample -> Engine.run_result;
  inj_causal : Engine.t -> Engine.run_result -> (string * int) list;
}

let inject_model = function None -> "disc-transient" | Some i -> i.inj_model

let check_prune_compat ~who prune ~cell_filter ~impact_cycles ~hardened ~inject =
  if prune <> None && (cell_filter <> None || impact_cycles <> None || hardened <> None) then
    invalid_arg
      (who ^ ": ?prune cannot be combined with ?cell_filter/?impact_cycles/?hardened (the \
              certificates assume the unmodified single-cycle fault model)");
  match (prune, inject) with
  | Some _, Some inj ->
      invalid_arg
        (Printf.sprintf
           "%s: ?prune cannot be combined with fault model %s (analytical masking certificates \
            are only sound for disc-transient)"
           who inj.inj_model)
  | _ -> ()

let estimate ?(obs = Obs.disabled) ?(trace_every = 50) ?(causal = true) ?cell_filter ?impact_cycles
    ?hardened ?resilience ?prune ?inject engine prepared ~samples ~seed =
  if samples <= 0 then invalid_arg "Ssf.estimate: non-positive sample count";
  check_prune_compat ~who:"Ssf.estimate" prune ~cell_filter ~impact_cycles ~hardened ~inject;
  let rng = Rng.create seed in
  let tally = Tally.create ~obs ~trace_every prepared ~total:samples in
  (* Route the handle into the engine's phase instrumentation for the
     duration of this run (restoring whatever the engine carried before),
     so callers only ever thread one [?obs]. *)
  let saved = if Obs.enabled obs then Some (Engine.obs engine) else None in
  Option.iter (fun _ -> Engine.set_obs engine obs) saved;
  Fun.protect ~finally:(fun () -> Option.iter (Engine.set_obs engine) saved) @@ fun () ->
  for _ = 1 to samples do
    let sample = Sampler.draw ~obs prepared rng in
    match prune with
    | Some covered when covered sample ->
        (* Certified masked: skip the simulation and tally analytically
           with the original weight. [run_sample] consumes no randomness
           without ?hardened, so the RNG stream — and hence every later
           draw and the final report — is untouched by the skip. *)
        Tally.record tally sample (pruned_result engine sample) ~attributed:[]
    | _ ->
        let result =
          match inject with
          | None ->
              Engine.run_sample engine ?cell_filter ?impact_cycles ?hardened ?resilience rng sample
          | Some inj -> inj.inj_run engine rng sample
        in
        let attributed =
          (* Leave-one-out causal attribution strips incidental co-flips; it
             replays deterministically, so it is disabled when hardening
             randomness is in play, and also under a cell filter (the replay
             would not see the filter). *)
          if result.Engine.success
             && causal && hardened = None && cell_filter = None && impact_cycles = None
          then
            match inject with
            | None -> Engine.causal_flips engine result
            | Some inj -> inj.inj_causal engine result
          else result.Engine.flips
        in
        Tally.record tally sample result ~attributed
  done;
  Tally.report tally ~strategy:(Sampler.name prepared)

(* Permutation-invariant float reduction: sort the addends before folding.
   IEEE addition is commutative, so any two argument lists that are
   permutations of each other produce the bit-identical sum — which makes
   a merged report independent of the order its parts arrived in (worker
   completion order in a distributed campaign, batch completion order in
   {!estimate_parallel}). *)
let canonical_sum xs = List.fold_left ( +. ) 0. (List.sort compare xs)

(* Merge the running-estimate traces by {e local sample index}: sweep the
   union of the per-report trace indices in ascending order, keep each
   report's latest (count, estimate) pair, and emit the pooled running
   estimate at every step. The x coordinate is the total number of samples
   finished across all parts at that step, so a distributed convergence
   plot lines up with the single-process one — and, unlike offsetting each
   trace by the cumulative n of the reports before it, the result does not
   depend on the order of the report list. *)
let merge_traces (reports : report list) =
  let parts = Array.of_list (List.map (fun r -> Array.of_list r.trace) reports) in
  let cursor = Array.make (Array.length parts) 0 in
  let cur = Array.make (Array.length parts) (0, 0.) in
  let indices =
    List.sort_uniq compare (List.concat_map (fun r -> List.map fst r.trace) reports)
  in
  List.map
    (fun k ->
      Array.iteri
        (fun p points ->
          (* Per-part traces are chronological, so a cursor sweep visits
             every point exactly once across the whole merge. *)
          while cursor.(p) < Array.length points && fst points.(cursor.(p)) <= k do
            cur.(p) <- points.(cursor.(p));
            cursor.(p) <- cursor.(p) + 1
          done)
        parts;
      let total = Array.fold_left (fun acc (c, _) -> acc + c) 0 cur in
      let est =
        canonical_sum (Array.to_list (Array.map (fun (c, e) -> float_of_int c *. e) cur))
        /. float_of_int (max 1 total)
      in
      (total, est))
    indices

let merge_reports (reports : report list) =
  match reports with
  | [] -> invalid_arg "Ssf.merge_reports: empty"
  | first :: _ ->
      let n = List.fold_left (fun acc r -> acc + r.n) 0 reports in
      (* Recombine the stratified estimate: per-sample weighted values are
         not retained, so merge via the variance-weighted formulas on the
         per-report summaries (each report is a stratified estimate over
         the same strata with the same masses; averaging the estimates with
         sample-count weights is exact for the mean, and the pooled
         effective variance follows the same weighting). Every float
         reduction goes through {!canonical_sum}, so the merged report is
         bit-identical under any permutation of [reports]. *)
      let csum f = canonical_sum (List.map f reports) in
      let ssf = csum (fun r -> float_of_int r.n *. r.ssf) /. float_of_int n in
      let ssf_upper = csum (fun r -> float_of_int r.n *. r.ssf_upper) /. float_of_int n in
      let variance = csum (fun r -> float_of_int r.n *. r.variance) /. float_of_int n in
      let successes = List.fold_left (fun acc r -> acc + r.successes) 0 reports in
      let outcomes =
        List.fold_left
          (fun acc r ->
            {
              masked = acc.masked + r.outcomes.masked;
              mem_only = acc.mem_only + r.outcomes.mem_only;
              resumed = acc.resumed + r.outcomes.resumed;
              quarantined = acc.quarantined + r.outcomes.quarantined;
              q_crashed = acc.q_crashed + r.outcomes.q_crashed;
              q_timed_out = acc.q_timed_out + r.outcomes.q_timed_out;
            })
          { masked = 0; mem_only = 0; resumed = 0; quarantined = 0; q_crashed = 0; q_timed_out = 0 }
          reports
      in
      (* Pool the Kish ESS from the raw weight sums: per-report ESS values
         are not additive when weight scales differ across reports, but the
         defining sums are. *)
      let sum_w = csum (fun r -> r.sum_w) in
      let sum_w2 = csum (fun r -> r.sum_w2) in
      let contributions =
        (* Collect every report's weight per key and canonical-sum each
           bucket, so a key credited by several reports pools to the same
           float no matter the report order. *)
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun r ->
            List.iter
              (fun (k, w) ->
                let cur = try Hashtbl.find tbl k with Not_found -> [] in
                Hashtbl.replace tbl k (w :: cur))
              r.contributions)
          reports;
        sort_contributions (Hashtbl.fold (fun k ws acc -> (k, canonical_sum ws) :: acc) tbl [])
      in
      let trace = merge_traces reports in
      {
        strategy = first.strategy;
        n;
        ssf;
        ssf_upper;
        variance;
        successes;
        trace;
        outcomes;
        contributions;
        success_by_direct = List.fold_left (fun acc r -> acc + r.success_by_direct) 0 reports;
        success_by_comb = List.fold_left (fun acc r -> acc + r.success_by_comb) 0 reports;
        ess = (if sum_w2 > 0. then sum_w *. sum_w /. sum_w2 else float_of_int n);
        sum_w;
        sum_w2;
      }

let shard_plan ~samples ~shard_size =
  if samples <= 0 then invalid_arg "Ssf.shard_plan: non-positive sample count";
  if shard_size <= 0 then invalid_arg "Ssf.shard_plan: non-positive shard size";
  let shards = (samples + shard_size - 1) / shard_size in
  Array.init shards (fun i ->
      let start = i * shard_size in
      (start, min shard_size (samples - start)))

let estimate_parallel ?domains ?causal ?(batch = 500) ?(max_batch_retries = 2) ?batch_hook
    ?(obs = Obs.disabled) ~engine_factory prepared ~samples ~seed =
  let domains =
    match domains with Some d -> max 1 d | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  if samples <= 0 then invalid_arg "Ssf.estimate_parallel: non-positive sample count";
  if batch <= 0 then invalid_arg "Ssf.estimate_parallel: non-positive batch";
  let n_batches = (samples + batch - 1) / batch in
  let size b = if b = n_batches - 1 then samples - (batch * (n_batches - 1)) else batch in
  (* Supervised work queue: per-batch seeds depend only on the batch index,
     so the merged result is deterministic no matter which domain ends up
     running which batch, and a crashed domain's completed batches survive
     (each lives in its own slot of [results]). A failed batch is re-queued
     with bounded retries; the worker that crashed continues on a fresh
     engine, since an exception may have left the shared simulator state of
     its old one poisoned. *)
  let mutex = Mutex.create () in
  let pending = Queue.create () in
  for b = 0 to n_batches - 1 do
    Queue.add b pending
  done;
  let attempts = Array.make n_batches 0 in
  let results = Array.make n_batches None in
  let failures = ref [] in
  let pop () =
    Mutex.protect mutex (fun () -> if Queue.is_empty pending then None else Some (Queue.pop pending))
  in
  let backoff k =
    (* Exponential backoff before handing the batch back to the queue. *)
    for _ = 1 to (1 lsl min k 10) * 4096 do
      Domain.cpu_relax ()
    done
  in
  (* Workers observe into private forks (registries and tracers are
     single-domain); the supervisor absorbs them after the join, so the
     merged metrics cover all batches and the trace carries one tid per
     worker. The progress sink intentionally does not fork. *)
  let forked = ref [] in
  let worker widx () =
    let wobs =
      if not (Obs.enabled obs) then Obs.disabled
      else begin
        let o = Obs.fork obs ~tid:(widx + 1) in
        Mutex.protect mutex (fun () -> forked := o :: !forked);
        o
      end
    in
    let engine = ref (engine_factory ()) in
    let rec loop () =
      match pop () with
      | None -> ()
      | Some b ->
          (match
             (match batch_hook with Some h -> h b | None -> ());
             estimate ~obs:wobs ?causal !engine prepared ~samples:(size b)
               ~seed:(seed + (7919 * (b + 1)))
           with
          | r ->
              Mutex.protect mutex (fun () -> results.(b) <- Some r);
              loop ()
          | exception e ->
              let msg = Printexc.to_string e in
              let retry =
                Mutex.protect mutex (fun () ->
                    attempts.(b) <- attempts.(b) + 1;
                    failures := (b, msg) :: !failures;
                    attempts.(b) <= max_batch_retries)
              in
              engine := engine_factory ();
              if retry then begin
                backoff attempts.(b);
                Mutex.protect mutex (fun () -> Queue.add b pending)
              end;
              loop ())
    in
    loop ()
  in
  let spawned = List.init (min domains n_batches) (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join spawned;
  List.iter (Obs.absorb obs) (List.rev !forked);
  let reports = List.filter_map Fun.id (Array.to_list results) in
  if reports = [] then
    failwith
      (Printf.sprintf "Ssf.estimate_parallel: every batch failed permanently (last error: %s)"
         (match !failures with (_, m) :: _ -> m | [] -> "unknown"));
  merge_reports reports

let confidence_interval report ~z =
  let half = z *. sqrt (report.variance /. float_of_int (max 1 report.n)) in
  (Float.max 0. (report.ssf -. half), Float.min 1. (report.ssf +. half))

let estimate_until ?obs ?trace_every ?causal ?prune ?inject ?(batch = 500)
    ?(max_samples = 200_000) engine prepared ~half_width ~z ~seed =
  if half_width <= 0. then invalid_arg "Ssf.estimate_until: non-positive half_width";
  if batch <= 0 then invalid_arg "Ssf.estimate_until: non-positive batch";
  (* Deterministic growth: re-estimate with a growing sample count so the
     stream stays reproducible (estimation cost is linear in the final n,
     and the doubling schedule keeps the total within ~4x of one pass).
     Metrics and spans accumulate over every pass — they report the work
     actually done, which for the doubling schedule exceeds the final n. *)
  let rec go n =
    let report = estimate ?obs ?trace_every ?causal ?prune ?inject engine prepared ~samples:n ~seed in
    let lo, hi = confidence_interval report ~z in
    if (hi -. lo) /. 2. <= half_width || n >= max_samples then report
    else go (min max_samples (max (n + batch) (2 * n)))
  in
  go batch

let contribution_coverage report ~fraction =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. report.contributions in
  if total <= 0. then []
  else begin
    let rec take acc covered = function
      | [] -> List.rev acc
      | (k, w) :: rest ->
          let covered = covered +. w in
          let acc = (k, w) :: acc in
          if covered >= fraction *. total then List.rev acc else take acc covered rest
    in
    take [] 0. report.contributions
  end
