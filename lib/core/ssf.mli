(** System Security Factor estimation (paper §3.3).

    [SSF = E_{T,P}(E)], estimated by the finite-sample mean of the
    (importance-weighted) success indicator. The report carries everything
    the paper's evaluation section reads off a run: the estimate, the
    sample variance (the convergence-rate driver of the LLN bound), the
    running-estimate trace (Fig. 9a), the outcome breakdown (Fig. 10a) and
    per-register success attribution (the "3% registers, 95% SSF"
    analysis). *)

type outcome_counts = {
  masked : int;  (** no register error survived the injection cycle *)
  mem_only : int;  (** analytical evaluation sufficed *)
  resumed : int;  (** RTL simulation had to resume *)
}

type report = {
  strategy : string;
  n : int;
  ssf : float;
  variance : float;  (** unbiased sample variance of the weighted indicator *)
  successes : int;  (** raw count of successful attack runs *)
  ess : float;
      (** Kish effective sample size of the drawn importance weights,
          [n] under plain Monte Carlo; a low [ess/n] warns that the
          sampling distribution is poorly matched to [f] *)
  trace : (int * float) list;  (** (samples so far, running estimate) *)
  outcomes : outcome_counts;
  contributions : ((string * int) * float) list;
      (** per register bit: summed weight over successful runs it was
          corrupted in, descending *)
  success_by_direct : int;  (** successes whose strike flipped a register directly *)
  success_by_comb : int;  (** successes caused purely by combinational transients *)
}

val estimate :
  ?trace_every:int ->
  ?causal:bool ->
  ?cell_filter:(Fmc_netlist.Netlist.node -> bool) ->
  ?impact_cycles:int ->
  ?hardened:(Fmc_netlist.Netlist.node -> bool) ->
  ?resilience:float ->
  Engine.t ->
  Sampler.prepared ->
  samples:int ->
  seed:int ->
  report
(** Deterministic for fixed arguments. [causal] (default true) applies
    leave-one-out counterfactual attribution to successful runs so that the
    contribution list reflects causal bits rather than incidental co-flips;
    it is automatically disabled when [hardened] is supplied. Raises
    [Invalid_argument] on a non-positive sample count. *)

val estimate_parallel :
  ?domains:int ->
  ?causal:bool ->
  engine_factory:(unit -> Engine.t) ->
  Sampler.prepared ->
  samples:int ->
  seed:int ->
  report
(** Multicore estimation: splits the samples across [domains] (default: the
    machine's recommended domain count) OCaml domains, each with its own
    engine instance and an independent RNG stream, then merges the
    per-domain accumulators. [engine_factory] MUST build a fresh engine on
    every call (engines carry mutable simulator state; sharing one across
    domains races) — e.g.
    [fun () -> Engine.create ~precharac program]. The
    result is deterministic for a fixed [(domains, samples, seed)] triple —
    but differs from the sequential {!estimate} stream, and the trace is
    coarser (per-domain checkpoints). *)

val confidence_interval : report -> z:float -> float * float
(** Normal-approximation confidence interval for the SSF estimate:
    [estimate -/+ z * sqrt(variance / n)] clamped to [\[0, 1\]]. [z = 1.96]
    for 95%. *)

val estimate_until :
  ?trace_every:int ->
  ?causal:bool ->
  ?batch:int ->
  ?max_samples:int ->
  Engine.t ->
  Sampler.prepared ->
  half_width:float ->
  z:float ->
  seed:int ->
  report
(** The paper's stopping rule made concrete: keep sampling (in batches,
    default 500) until the confidence interval's half-width drops below
    [half_width], or [max_samples] (default 200_000) is reached. The
    returned report covers all samples taken. Raises [Invalid_argument] on
    a non-positive [half_width]. *)

val contribution_coverage : report -> fraction:float -> ((string * int) * float) list
(** The smallest prefix of [contributions] covering at least [fraction] of
    the total success weight. *)
