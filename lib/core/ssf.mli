(** System Security Factor estimation (paper §3.3).

    [SSF = E_{T,P}(E)], estimated by the finite-sample mean of the
    (importance-weighted) success indicator. The report carries everything
    the paper's evaluation section reads off a run: the estimate, the
    sample variance (the convergence-rate driver of the LLN bound), the
    running-estimate trace (Fig. 9a), the outcome breakdown (Fig. 10a) and
    per-register success attribution (the "3% registers, 95% SSF"
    analysis). *)

type quarantine_reason =
  | Q_crashed  (** the evaluation raised (crash guard) *)
  | Q_timed_out  (** the per-sample cycle budget ran out (watchdog) *)

type outcome_counts = {
  masked : int;  (** no register error survived the injection cycle *)
  mem_only : int;  (** analytical evaluation sufficed *)
  resumed : int;  (** RTL simulation had to resume *)
  quarantined : int;
      (** samples whose evaluation crashed or timed out and was isolated by
          the campaign runner ({!Campaign}); always 0 for direct
          {!estimate} runs. The four buckets partition the [n] samples. *)
  q_crashed : int;  (** quarantines attributed to the crash guard *)
  q_timed_out : int;
      (** quarantines attributed to the cycle-budget watchdog;
          [q_crashed + q_timed_out = quarantined] *)
}

type report = {
  strategy : string;
  n : int;
  ssf : float;
  ssf_upper : float;
      (** conservative SSF bound that counts every quarantined sample as a
          full-weight success; equals [ssf] when nothing was quarantined *)
  variance : float;  (** unbiased sample variance of the weighted indicator *)
  successes : int;  (** raw count of successful attack runs *)
  ess : float;
      (** Kish effective sample size of the drawn importance weights,
          [n] under plain Monte Carlo; a low [ess/n] warns that the
          sampling distribution is poorly matched to [f] *)
  sum_w : float;  (** raw sum of drawn f-scaled weights, [ess]'s numerator root *)
  sum_w2 : float;
      (** raw sum of squared weights; carried so {!merge_reports} can pool
          ESS exactly as [(Σw)² / Σw²] instead of summing per-report ESS
          values (wrong whenever weight scales differ across reports) *)
  trace : (int * float) list;  (** (samples so far, running estimate) *)
  outcomes : outcome_counts;
  contributions : ((string * int) * float) list;
      (** per register bit: summed weight over successful runs it was
          corrupted in, descending *)
  success_by_direct : int;  (** successes whose strike flipped a register directly *)
  success_by_comb : int;  (** successes caused purely by combinational transients *)
}

(** The incremental estimator state behind {!estimate}, exposed so the
    fault-tolerant campaign runner ({!Campaign}) can drive the same
    statistics one sample at a time, quarantine pathological samples, and
    durably snapshot/restore the whole accumulator mid-run. A tally fed the
    same (sample, result, attribution) stream as {!estimate} produces a
    bit-identical report. *)
module Tally : sig
  type t

  (** The complete, serializable accumulator state. Every float must be
      persisted exactly (e.g. hex float formatting) for a resumed campaign
      to be bit-identical to an uninterrupted one. [snap_accs] /
      [snap_pess] are Welford [(count, mean, m2)] triples aligned with
      [snap_strata]; [snap_trace] is chronological. *)
  type snapshot = {
    snap_total : int;
    snap_trace_every : int;
    snap_processed : int;
    snap_strata : (Sampler.stratum * float) list;
    snap_accs : (int * float * float) list;
    snap_pess : (int * float * float) list;
    snap_masked : int;
    snap_mem_only : int;
    snap_resumed : int;
    snap_quarantined : int;
    snap_q_crashed : int;
    snap_q_timed_out : int;
    snap_successes : int;
    snap_by_direct : int;
    snap_by_comb : int;
    snap_sum_w : float;
    snap_sum_w2 : float;
    snap_contributions : ((string * int) * float) list;
    snap_trace : (int * float) list;
  }

  val create : ?obs:Fmc_obs.Obs.t -> ?trace_every:int -> Sampler.prepared -> total:int -> t
  (** Fresh tally for a campaign of [total] samples ([trace_every]
      defaults to 50, matching {!estimate}). [obs] (default disabled)
      attaches observability: per-outcome counters, the importance-weight
      histogram and running SSF/ESS gauges in the metrics registry, and a
      convergence {!Fmc_obs.Progress.point} pushed at every trace bump.
      Observability never touches the statistics — an instrumented tally
      produces a bit-identical report. *)

  val processed : t -> int
  (** Samples consumed so far, including quarantined ones. *)

  val total : t -> int
  val quarantined : t -> int

  val record : t -> Sampler.sample -> Engine.run_result -> attributed:(string * int) list -> unit
  (** Fold one evaluated sample into the estimate. [attributed] is the flip
      list credited in the contribution table (the caller decides between
      causal attribution and the raw flip set, exactly as {!estimate}
      does). *)

  val quarantine : t -> Sampler.sample -> reason:quarantine_reason -> unit
  (** Consume one sample slot without folding it into the honest estimate:
      the sample counts in [n], the [quarantined] bucket and the [reason]'s
      sub-bucket, and enters the pessimistic accumulators as a full-weight
      success so [ssf_upper] stays a sound conservative bound. *)

  val report : t -> strategy:string -> report

  val snapshot : t -> snapshot

  val restore : ?obs:Fmc_obs.Obs.t -> snapshot -> t
  (** Rebuild a tally that continues exactly where [snapshot] left off.
      Observability starts fresh (metrics count this segment's work;
      throughput telemetry excludes the downtime since the snapshot).
      Raises [Invalid_argument] on an internally inconsistent snapshot. *)

  val to_string : snapshot -> string
  (** The canonical line-oriented text encoding of a snapshot, shared
      verbatim by the durable campaign checkpoint ({!Campaign}, format v3)
      and the distributed wire protocol ([Fmc_dist]) — one serializer, not
      two. Floats are hex float literals ([%h]), so
      [of_string (to_string s) = Ok s] round-trips every accumulator
      bit-exactly. *)

  val of_string : string -> (snapshot, string) result
  (** Decode {!to_string}'s encoding. [Error msg] names the first offending
      line of a truncated, reordered or malformed snapshot. *)

  val digest_hex : string -> string
  (** MD5 hex of a {!to_string} blob. Because the encoding is canonical
      (one serializer, hex-float literals, fixed line order), equal
      digests mean bit-identical accumulator states — the primitive the
      distributed result audit ([Fmc_audit]) is built on. *)
end

(** {2 Pluggable fault models}

    A per-sample injector substituted for the engine's native
    disc-transient path. The estimator stays model-agnostic: it draws
    the sample stream exactly as before and hands each drawn sample to
    [inj_run] instead of {!Engine.run_sample}. [lib/core] deliberately
    knows nothing about the model registry — [Fmc_fault] builds these
    records; [None] everywhere means the native disc-transient model
    and produces byte-identical reports to the pre-subsystem code. *)
type inject = {
  inj_model : string;
      (** canonical model string ([name\[:k=v,...\]]) recorded in
          campaign checkpoints and error messages *)
  inj_run :
    Engine.t -> ?cycle_budget:int -> Fmc_prelude.Rng.t -> Sampler.sample -> Engine.run_result;
      (** evaluate one drawn sample under this model. Must be
          deterministic for a fixed (engine, sample) pair up to its
          declared RNG draws; [cycle_budget] arms the RTL-resume
          watchdog exactly as in {!Engine.run_sample} *)
  inj_causal : Engine.t -> Engine.run_result -> (string * int) list;
      (** contribution attribution for a successful run (the model's
          analogue of {!Engine.causal_flips}; returning
          [result.flips] is always sound) *)
}

val inject_model : inject option -> string
(** The canonical model string an injector option denotes:
    ["disc-transient"] for [None]. *)

val shard_plan : samples:int -> shard_size:int -> (int * int) array
(** Cut a campaign into contiguous sample-index shards: [(start, len)]
    pairs covering [\[0, samples)] in order, every shard of size
    [shard_size] except a possibly shorter last one. Shard [i] of a
    campaign with seed [s] is always evaluated under
    [Rng.substream ~seed:(Int64.of_int s) ~shard:i]
    (see {!Campaign.run_shard}), so the plan — not the process layout —
    determines every draw. Raises [Invalid_argument] on non-positive
    arguments. *)

val pruned_result : Engine.t -> Sampler.sample -> Engine.run_result
(** The analytical result a certified-masked sample is tallied with:
    field-for-field what {!Engine.run_sample} returns on its masked path
    ([outcome = Masked], [success = false], no flips). Shared by
    {!estimate} and [Campaign]'s pruned paths so both stay bit-identical
    to the simulated run. *)

val estimate :
  ?obs:Fmc_obs.Obs.t ->
  ?trace_every:int ->
  ?causal:bool ->
  ?cell_filter:(Fmc_netlist.Netlist.node -> bool) ->
  ?impact_cycles:int ->
  ?hardened:(Fmc_netlist.Netlist.node -> bool) ->
  ?resilience:float ->
  ?prune:(Sampler.sample -> bool) ->
  ?inject:inject ->
  Engine.t ->
  Sampler.prepared ->
  samples:int ->
  seed:int ->
  report
(** [inject] substitutes a pluggable fault model for the native
    disc-transient evaluation (the sample stream is unchanged); it
    cannot be combined with [prune] — masking certificates are only
    sound for disc-transient — nor is [cell_filter]/[impact_cycles]/
    [hardened] applied to an injected model (those modify the native
    path only).

    [prune] is an analytical masking oracle (e.g.
    [Fmc_sva.Pruner.check]): when it returns true the sample {e must} be
    one the engine would classify as exactly [Masked] — the simulation is
    skipped and the sample is tallied analytically as a masked failure
    with its original weight, leaving the report byte-identical to the
    unpruned run (an unsound oracle silently biases the estimate; use the
    certified pruner). Raises [Invalid_argument] when combined with
    [cell_filter]/[impact_cycles]/[hardened], whose modified fault models
    the certificates do not cover.

    Deterministic for fixed arguments, including under [obs]:
    observability reads the sample stream but never the RNG, so an
    instrumented run returns the bit-identical report. While the run is in
    flight the handle is also installed on [engine] (its previous handle is
    restored afterwards), so the engine's phase spans and cycle counters
    land in the same sinks. [causal] (default true) applies
    leave-one-out counterfactual attribution to successful runs so that the
    contribution list reflects causal bits rather than incidental co-flips;
    it is automatically disabled when [hardened] is supplied. Raises
    [Invalid_argument] on a non-positive sample count. *)

val merge_reports : report list -> report
(** Pool split-run reports (parallel domains, checkpointed shards,
    distributed workers) into one: sample-count-weighted means for the
    estimates, summed counters, summed contribution tables, and the ESS
    recomputed from the pooled weight sums [(Σw)² / Σw²]. Every float
    reduction sorts its addends first, so the merged report is
    {e bit-identical under any permutation} of the input list — worker or
    batch completion order cannot change the result. The running-estimate
    [trace] is merged by local sample index (each point is the pooled
    estimate over every part's latest trace entry, plotted at the total
    number of samples finished across parts), so distributed and local
    convergence plots agree. Raises [Invalid_argument] on an empty
    list. *)

val estimate_parallel :
  ?domains:int ->
  ?causal:bool ->
  ?batch:int ->
  ?max_batch_retries:int ->
  ?batch_hook:(int -> unit) ->
  ?obs:Fmc_obs.Obs.t ->
  engine_factory:(unit -> Engine.t) ->
  Sampler.prepared ->
  samples:int ->
  seed:int ->
  report
(** Supervised multicore estimation. The samples are cut into batches of
    [batch] (default 500) whose seeds depend only on the batch index;
    [domains] worker domains (default: the machine's recommended domain
    count) pull batches from a shared queue and stream finished reports
    back to the supervisor. A batch that raises is re-queued with
    exponential backoff up to [max_batch_retries] (default 2) extra
    attempts, and the worker that crashed continues on a freshly built
    engine — completed batches are never lost to a crashed domain, and a
    permanently failing batch is dropped from the pooled report rather
    than aborting the run (the run only fails if {e every} batch fails).
    [engine_factory] MUST build a fresh engine on every call (engines carry
    mutable simulator state; sharing one across domains races) — e.g.
    [fun () -> Engine.create ~precharac program]. [batch_hook] runs at the
    start of every batch attempt and is a fault-injection point for tests.
    The result is deterministic for a fixed [(batch, samples, seed)] triple
    independent of [domains] and scheduling — but differs from the
    sequential {!estimate} stream, and the trace is coarser (per-batch
    checkpoints). Under [obs], every worker observes into a private fork of
    the handle (tid = worker index + 1) that the supervisor merges back
    after the join: counters and histograms sum across workers, trace
    events interleave with per-worker tids, and the progress sink stays
    supervisor-only (no interleaved emission). *)

val confidence_interval : report -> z:float -> float * float
(** Normal-approximation confidence interval for the SSF estimate:
    [estimate -/+ z * sqrt(variance / n)] clamped to [\[0, 1\]]. [z = 1.96]
    for 95%. *)

val estimate_until :
  ?obs:Fmc_obs.Obs.t ->
  ?trace_every:int ->
  ?causal:bool ->
  ?prune:(Sampler.sample -> bool) ->
  ?inject:inject ->
  ?batch:int ->
  ?max_samples:int ->
  Engine.t ->
  Sampler.prepared ->
  half_width:float ->
  z:float ->
  seed:int ->
  report
(** The paper's stopping rule made concrete: keep sampling (in batches,
    default 500) until the confidence interval's half-width drops below
    [half_width], or [max_samples] (default 200_000) is reached. The
    returned report covers all samples taken. Raises [Invalid_argument] on
    a non-positive [half_width]. *)

val contribution_coverage : report -> fraction:float -> ((string * int) * float) list
(** The smallest prefix of [contributions] covering at least [fraction] of
    the total success weight. *)
