module Isa = Fmc_isa.Isa

type t = {
  mutable pc : int;
  regs : int array;
  mutable mode : int;
  mutable epc : int;
  mutable cause : int;
  mutable halted : bool;
  mpu_base : int array;
  mpu_limit : int array;
  mpu_ctrl : int array;
}

let create () =
  {
    pc = 0;
    regs = Array.make 8 0;
    mode = 1;
    epc = 0;
    cause = 0;
    halted = false;
    mpu_base = Array.make 2 0;
    mpu_limit = Array.make 2 0;
    mpu_ctrl = Array.make 2 0;
  }

let copy t =
  {
    pc = t.pc;
    regs = Array.copy t.regs;
    mode = t.mode;
    epc = t.epc;
    cause = t.cause;
    halted = t.halted;
    mpu_base = Array.copy t.mpu_base;
    mpu_limit = Array.copy t.mpu_limit;
    mpu_ctrl = Array.copy t.mpu_ctrl;
  }

let equal a b =
  a.pc = b.pc && a.regs = b.regs && a.mode = b.mode && a.epc = b.epc && a.cause = b.cause
  && a.halted = b.halted && a.mpu_base = b.mpu_base && a.mpu_limit = b.mpu_limit
  && a.mpu_ctrl = b.mpu_ctrl

let groups =
  [ ("pc", 16) ]
  @ List.init 8 (fun i -> (Printf.sprintf "reg%d" i, 16))
  @ [
      ("mode", 1);
      ("epc", 16);
      ("cause", 2);
      ("halted", 1);
      ("mpu_base0", 16);
      ("mpu_limit0", 16);
      ("mpu_ctrl0", 4);
      ("mpu_base1", 16);
      ("mpu_limit1", 16);
      ("mpu_ctrl1", 4);
    ]

let total_bits = List.fold_left (fun acc (_, w) -> acc + w) 0 groups

let width_of name =
  match List.assoc_opt name groups with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Arch: unknown register group %s" name)

let mask name v = v land ((1 lsl width_of name) - 1)

let get_group t name =
  match name with
  | "pc" -> t.pc
  | "mode" -> t.mode
  | "epc" -> t.epc
  | "cause" -> t.cause
  | "halted" -> if t.halted then 1 else 0
  | "mpu_base0" -> t.mpu_base.(0)
  | "mpu_base1" -> t.mpu_base.(1)
  | "mpu_limit0" -> t.mpu_limit.(0)
  | "mpu_limit1" -> t.mpu_limit.(1)
  | "mpu_ctrl0" -> t.mpu_ctrl.(0)
  | "mpu_ctrl1" -> t.mpu_ctrl.(1)
  | name when String.length name = 4 && String.sub name 0 3 = "reg" ->
      let i = Char.code name.[3] - Char.code '0' in
      if i < 0 || i > 7 then invalid_arg ("Arch: unknown register group " ^ name) else t.regs.(i)
  | name -> invalid_arg ("Arch: unknown register group " ^ name)

let set_group t name v =
  let v = mask name v in
  match name with
  | "pc" -> t.pc <- v
  | "mode" -> t.mode <- v
  | "epc" -> t.epc <- v
  | "cause" -> t.cause <- v
  | "halted" -> t.halted <- v = 1
  | "mpu_base0" -> t.mpu_base.(0) <- v
  | "mpu_base1" -> t.mpu_base.(1) <- v
  | "mpu_limit0" -> t.mpu_limit.(0) <- v
  | "mpu_limit1" -> t.mpu_limit.(1) <- v
  | "mpu_ctrl0" -> t.mpu_ctrl.(0) <- v
  | "mpu_ctrl1" -> t.mpu_ctrl.(1) <- v
  | name when String.length name = 4 && String.sub name 0 3 = "reg" ->
      let i = Char.code name.[3] - Char.code '0' in
      if i < 0 || i > 7 then invalid_arg ("Arch: unknown register group " ^ name)
      else t.regs.(i) <- v
  | name -> invalid_arg ("Arch: unknown register group " ^ name)

let diff a b =
  List.filter_map
    (fun (name, _) -> if get_group a name <> get_group b name then Some name else None)
    groups

type perm = Read | Write | Exec

let perm_bit = function Read -> Isa.ctrl_read | Write -> Isa.ctrl_write | Exec -> Isa.ctrl_exec

let mpu_allows t ~addr ~perm =
  let bit = perm_bit perm in
  let region i =
    t.mpu_ctrl.(i) land Isa.ctrl_enable <> 0
    && t.mpu_base.(i) <= addr && addr <= t.mpu_limit.(i)
    && t.mpu_ctrl.(i) land bit <> 0
  in
  region 0 || region 1

let access_allowed t ~addr ~perm = t.mode = 1 || mpu_allows t ~addr ~perm
