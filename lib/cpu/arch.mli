(** Architectural register state shared by the two implementation levels.

    The RTL model ({!Model}) mutates a value of this type directly; the gate
    netlist ({!Circuit}) declares one flip-flop group per field with exactly
    the names and widths listed by {!groups}. That naming contract is what
    the cross-level engine uses to transfer state between levels
    (paper §5: restart RTL simulation from gate-level register errors). *)

type t = {
  mutable pc : int;
  regs : int array;  (** r0..r7 *)
  mutable mode : int;  (** 1 = privileged, 0 = user *)
  mutable epc : int;
  mutable cause : int;  (** last trap cause, 2 bits *)
  mutable halted : bool;
  mpu_base : int array;  (** 2 regions *)
  mpu_limit : int array;
  mpu_ctrl : int array;  (** 4-bit: enable, read, write, exec *)
}

val create : unit -> t
(** Reset state: everything 0, [mode = 1] (boot runs privileged). *)

val copy : t -> t
val equal : t -> t -> bool

val groups : (string * int) list
(** [(group name, bit width)] for every architectural register, in a fixed
    canonical order. The netlist uses the same names. *)

val get_group : t -> string -> int
(** Raises [Invalid_argument] on an unknown group. *)

val set_group : t -> string -> int -> unit
(** Values are masked to the group width. *)

val total_bits : int
(** Sum of group widths (the processor's flip-flop count). *)

val diff : t -> t -> string list
(** Names of groups whose values differ (for error-lifetime tracking). *)

type perm = Read | Write | Exec

val mpu_allows : t -> addr:int -> perm:perm -> bool
(** Pure MPU region check, ignoring the privilege mode — also used by the
    analytical evaluator on corrupted configurations. *)

val access_allowed : t -> addr:int -> perm:perm -> bool
(** [mpu_allows] or privileged. *)
