module Isa = Fmc_isa.Isa
module Hdl = Fmc_hdl.Hdl
module Vec = Fmc_hdl.Vec
open Hdl

type t = {
  net : Fmc_netlist.Netlist.t;
  instr : Fmc_netlist.Netlist.node array;
  dmem_rdata : Fmc_netlist.Netlist.node array;
  pc : Fmc_netlist.Netlist.node array;
  dmem_addr : Fmc_netlist.Netlist.node array;
  dmem_wdata : Fmc_netlist.Netlist.node array;
  dmem_we : Fmc_netlist.Netlist.node;
  dmem_re : Fmc_netlist.Netlist.node;
  halted : Fmc_netlist.Netlist.node;
  data_viol : Fmc_netlist.Netlist.node;
  instr_viol : Fmc_netlist.Netlist.node;
  priv_viol : Fmc_netlist.Netlist.node;
}

let build () =
  let ctx = Hdl.create () in
  let instr = Hdl.input ctx "instr" 16 in
  let rdata = Hdl.input ctx "dmem_rdata" 16 in

  (* Architectural registers — names and widths must match Arch.groups. *)
  let pc_r = Hdl.reg ctx ~group:"pc" ~width:16 ~init:0 in
  let regs = Array.init 8 (fun i -> Hdl.reg ctx ~group:(Printf.sprintf "reg%d" i) ~width:16 ~init:0) in
  let mode_r = Hdl.reg ctx ~group:"mode" ~width:1 ~init:1 in
  let epc_r = Hdl.reg ctx ~group:"epc" ~width:16 ~init:0 in
  let cause_r = Hdl.reg ctx ~group:"cause" ~width:2 ~init:0 in
  let halted_r = Hdl.reg ctx ~group:"halted" ~width:1 ~init:0 in
  let base_r = Array.init 2 (fun i -> Hdl.reg ctx ~group:(Printf.sprintf "mpu_base%d" i) ~width:16 ~init:0) in
  let limit_r = Array.init 2 (fun i -> Hdl.reg ctx ~group:(Printf.sprintf "mpu_limit%d" i) ~width:16 ~init:0) in
  let ctrl_r = Array.init 2 (fun i -> Hdl.reg ctx ~group:(Printf.sprintf "mpu_ctrl%d" i) ~width:4 ~init:0) in

  let pcv = Hdl.q pc_r in
  let modev = (Hdl.q mode_r).(0) in
  let haltedv = (Hdl.q halted_r).(0) in
  let epcv = Hdl.q epc_r in
  let causev = Hdl.q cause_r in
  let regq = Array.map Hdl.q regs in

  (* Decode fields. *)
  let opv = Vec.bits instr ~lo:12 ~hi:16 in
  let is_op = Vec.decode opv in
  let rd_idx = Vec.bits instr ~lo:9 ~hi:12 in
  let ra_idx = Vec.bits instr ~lo:6 ~hi:9 in
  let rb_idx = Vec.bits instr ~lo:3 ~hi:6 in
  let imm8 = Vec.bits instr ~lo:0 ~hi:8 in
  let imm6 = Vec.bits instr ~lo:0 ~hi:6 in
  let imm9 = Vec.bits instr ~lo:0 ~hi:9 in
  let syscode = Vec.bits instr ~lo:0 ~hi:4 in
  let sys_dec = Vec.decode syscode in
  let is_sys = is_op.(0x0) in
  let is_halt_i = is_sys &: sys_dec.(0) in
  let is_trapret = is_sys &: sys_dec.(1) in
  let is_retu = is_sys &: sys_dec.(3) in
  let is_ld = is_op.(0xA) and is_st = is_op.(0xB) in
  let is_brz = is_op.(0xC) and is_brnz = is_op.(0xD) in
  let is_jalr = is_op.(0xE) and is_mpuw = is_op.(0xF) in

  (* Register-file read ports. *)
  let val_rd = Vec.mux_tree ~sel:rd_idx regq in
  let val_ra = Vec.mux_tree ~sel:ra_idx regq in
  let val_rb = Vec.mux_tree ~sel:rb_idx regq in

  (* MPU region check: ctrl bits are [enable; read; write; exec]. *)
  let allows addr perm_bit =
    let region i =
      let ctrl = Hdl.q ctrl_r.(i) in
      Hdl.and_reduce
        [| ctrl.(0); Vec.uge addr (Hdl.q base_r.(i)); Vec.ule addr (Hdl.q limit_r.(i)); ctrl.(perm_bit) |]
    in
    region 0 |: region 1
  in

  let user = ~:modev in
  let running = ~:haltedv in
  let exec_ok = modev |: allows pcv 3 in
  let instr_viol = running &: ~:exec_ok in
  let exec_active = running &: exec_ok in

  let mem_addr = Vec.add val_ra (Vec.zext imm6 16) in
  let read_ok = modev |: allows mem_addr 1 in
  let write_ok = modev |: allows mem_addr 2 in
  let data_viol = exec_active &: ((is_ld &: ~:read_ok) |: (is_st &: ~:write_ok)) in
  let is_priv_instr = is_mpuw |: is_trapret |: is_retu in
  let priv_viol = exec_active &: (user &: is_priv_instr) in
  let viol = instr_viol |: data_viol |: priv_viol in
  let effective = exec_active &: ~:viol in

  (* ALU / result computation. *)
  let add_res = Vec.add val_ra val_rb in
  let sub_res = Vec.sub val_ra val_rb in
  let and_res = Vec.and_v val_ra val_rb in
  let or_res = Vec.or_v val_ra val_rb in
  let xor_res = Vec.xor_v val_ra val_rb in
  let shamt = Vec.bits val_rb ~lo:0 ~hi:4 in
  let shl_res = Vec.sll val_ra ~amount:shamt in
  let shr_res = Vec.srl val_ra ~amount:shamt in
  let ldi_res = Vec.zext imm8 16 in
  let lui_res = Vec.concat [ Vec.bits val_rd ~lo:0 ~hi:8; imm8 ] in
  let pc1 = Vec.add pcv (Vec.of_int ctx ~width:16 1) in
  let result =
    Vec.mux_tree ~sel:opv
      [|
        val_rd (* 0x0 sys: don't care *);
        ldi_res;
        lui_res;
        add_res;
        sub_res;
        and_res;
        or_res;
        xor_res;
        shl_res;
        shr_res;
        rdata (* 0xA ld *);
        val_rd (* 0xB st: don't care *);
        val_rd (* 0xC brz *);
        val_rd (* 0xD brnz *);
        pc1 (* 0xE jalr link *);
        val_rd (* 0xF mpuw *);
      |]
  in
  let writes_rd =
    Hdl.or_reduce
      [|
        is_op.(0x1); is_op.(0x2); is_op.(0x3); is_op.(0x4); is_op.(0x5); is_op.(0x6); is_op.(0x7);
        is_op.(0x8); is_op.(0x9); is_ld; is_jalr;
      |]
  in
  let rd_we = effective &: writes_rd in
  let rd_onehot = Vec.decode rd_idx in
  Array.iteri
    (fun i r -> Hdl.connect r (Vec.mux2v (rd_we &: rd_onehot.(i)) regq.(i) result))
    regs;

  (* Branch / next-pc. The branch source register lives in the rd slot. *)
  let rd_zero = Vec.is_zero val_rd in
  let br_taken = (is_brz &: rd_zero) |: (is_brnz &: ~:rd_zero) in
  let br_target = Vec.add pc1 (Vec.sext imm9 16) in
  let epc1 = Vec.add epcv (Vec.of_int ctx ~width:16 1) in
  let pc_exec =
    (* Mutually exclusive selectors; cascade of 2:1 muxes. *)
    let sel c a b = Vec.mux2v c b a in
    sel ((is_brz |: is_brnz) &: br_taken) br_target
      (sel is_jalr val_ra (sel is_trapret epc1 (sel is_halt_i pcv pc1)))
  in
  let trap_pc = Vec.of_int ctx ~width:16 Isa.trap_vector in
  let pc_next = Vec.mux2v haltedv (Vec.mux2v viol pc_exec trap_pc) pcv in
  Hdl.connect pc_r pc_next;

  (* Trap bookkeeping and privilege mode. *)
  let halted_next = [| haltedv |: (effective &: is_halt_i) |] in
  Hdl.connect halted_r halted_next;
  let drop_mode = effective &: (is_trapret |: is_retu) in
  let mode_next = [| mux2 viol (mux2 drop_mode modev (Hdl.gnd ctx)) (Hdl.vdd ctx) |] in
  Hdl.connect mode_r mode_next;
  Hdl.connect epc_r (Vec.mux2v viol epcv pcv);
  (* Cause encoding: data=01, instr=10, priv=11 — the viols are mutually
     exclusive so plain ORs give the priority-free exact code. *)
  let cause_code = [| data_viol |: priv_viol; instr_viol |: priv_viol |] in
  Hdl.connect cause_r (Vec.mux2v viol causev cause_code);

  (* MPU configuration writes. *)
  let mpuw_eff = effective &: is_mpuw in
  let fld_onehot = Vec.decode rd_idx in
  let connect_field r fld width_src =
    let en = mpuw_eff &: fld_onehot.(fld) in
    Hdl.connect r (Vec.mux2v en (Hdl.q r) width_src)
  in
  connect_field base_r.(0) Isa.fld_base0 val_ra;
  connect_field limit_r.(0) Isa.fld_limit0 val_ra;
  connect_field ctrl_r.(0) Isa.fld_ctrl0 (Vec.bits val_ra ~lo:0 ~hi:4);
  connect_field base_r.(1) Isa.fld_base1 val_ra;
  connect_field limit_r.(1) Isa.fld_limit1 val_ra;
  connect_field ctrl_r.(1) Isa.fld_ctrl1 (Vec.bits val_ra ~lo:0 ~hi:4);

  (* Memory port. *)
  let dmem_re = effective &: is_ld in
  let dmem_we = effective &: is_st in

  (* Primary outputs. *)
  Hdl.output ctx "pc" pcv;
  Hdl.output ctx "dmem_addr" mem_addr;
  Hdl.output ctx "dmem_wdata" val_rd;
  Hdl.output1 ctx "dmem_we" dmem_we;
  Hdl.output1 ctx "dmem_re" dmem_re;
  Hdl.output1 ctx "halted" haltedv;
  Hdl.output1 ctx "mode" modev;
  Hdl.output ctx "cause" causev;
  Hdl.output1 ctx "data_viol" data_viol;
  Hdl.output1 ctx "instr_viol" instr_viol;
  Hdl.output1 ctx "priv_viol" priv_viol;

  let net = Hdl.elaborate ctx in
  let n = Hdl.node_of_signal in
  {
    net;
    instr = Array.map n instr;
    dmem_rdata = Array.map n rdata;
    pc = Array.map n pcv;
    dmem_addr = Array.map n mem_addr;
    dmem_wdata = Array.map n val_rd;
    dmem_we = n dmem_we;
    dmem_re = n dmem_re;
    halted = n haltedv;
    data_viol = n data_viol;
    instr_viol = n instr_viol;
    priv_viol = n priv_viol;
  }

let responding_signals t = [ t.data_viol; t.instr_viol; t.priv_viol ]
