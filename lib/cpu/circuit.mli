(** The processor as a gate-level netlist.

    Structurally identical in behaviour to {!Model} (enforced by the
    co-simulation test suite): same architectural registers (flip-flop
    groups named per {!Arch.groups}), same next-state functions, same
    memory-port protocol. This is the level the radiation strikes hit
    (paper §5.3): combinational MPU checks, regfile muxes, ALU — all real
    gates that transients traverse.

    Ports (netlist inputs/outputs):
    - in  [instr\[16\]] — instruction word at the current [pc];
    - in  [dmem_rdata\[16\]] — data-memory read value at [dmem_addr];
    - out [pc\[16\]], [dmem_addr\[16\]], [dmem_wdata\[16\]], [dmem_we],
      [dmem_re], [halted], [mode];
    - out [data_viol], [instr_viol], [priv_viol] — the responding signals
      of the security mechanism (paper §4, Observation 1). *)

type t = {
  net : Fmc_netlist.Netlist.t;
  instr : Fmc_netlist.Netlist.node array;
  dmem_rdata : Fmc_netlist.Netlist.node array;
  pc : Fmc_netlist.Netlist.node array;
  dmem_addr : Fmc_netlist.Netlist.node array;
  dmem_wdata : Fmc_netlist.Netlist.node array;
  dmem_we : Fmc_netlist.Netlist.node;
  dmem_re : Fmc_netlist.Netlist.node;
  halted : Fmc_netlist.Netlist.node;
  data_viol : Fmc_netlist.Netlist.node;
  instr_viol : Fmc_netlist.Netlist.node;
  priv_viol : Fmc_netlist.Netlist.node;
}

val build : unit -> t
(** Elaborate a fresh processor netlist. *)

val responding_signals : t -> Fmc_netlist.Netlist.node list
(** The violation-flag nodes, the roots of the pre-characterization cones. *)
