module Isa = Fmc_isa.Isa

type outcome = {
  data_viol : bool;
  instr_viol : bool;
  priv_viol : bool;
  store : (int * int) option;
  load_addr : int option;
}

let quiet = { data_viol = false; instr_viol = false; priv_viol = false; store = None; load_addr = None }

let mask16 v = v land 0xffff

let trap (st : Arch.t) cause =
  st.epc <- st.pc;
  st.cause <- cause;
  st.mode <- 1;
  st.pc <- Isa.trap_vector

let step (st : Arch.t) ~fetch ~load ~store =
  if st.halted then quiet
  else begin
    let word = fetch st.pc in
    let user = st.mode = 0 in
    if user && not (Arch.mpu_allows st ~addr:st.pc ~perm:Arch.Exec) then begin
      trap st Isa.cause_instr;
      { quiet with instr_viol = true }
    end
    else begin
      let pc1 = mask16 (st.pc + 1) in
      match Isa.decode word with
      | Isa.Halt ->
          st.halted <- true;
          quiet
      | Isa.Nop ->
          st.pc <- pc1;
          quiet
      | Isa.Trapret ->
          if user then begin
            trap st Isa.cause_priv;
            { quiet with priv_viol = true }
          end
          else begin
            st.pc <- mask16 (st.epc + 1);
            st.mode <- 0;
            quiet
          end
      | Isa.Retu ->
          if user then begin
            trap st Isa.cause_priv;
            { quiet with priv_viol = true }
          end
          else begin
            st.mode <- 0;
            st.pc <- pc1;
            quiet
          end
      | Isa.Ldi (rd, imm) ->
          st.regs.(rd) <- imm;
          st.pc <- pc1;
          quiet
      | Isa.Lui (rd, imm) ->
          st.regs.(rd) <- mask16 ((imm lsl 8) lor (st.regs.(rd) land 0xff));
          st.pc <- pc1;
          quiet
      | Isa.Add (rd, ra, rb) ->
          st.regs.(rd) <- mask16 (st.regs.(ra) + st.regs.(rb));
          st.pc <- pc1;
          quiet
      | Isa.Sub (rd, ra, rb) ->
          st.regs.(rd) <- mask16 (st.regs.(ra) - st.regs.(rb));
          st.pc <- pc1;
          quiet
      | Isa.And_ (rd, ra, rb) ->
          st.regs.(rd) <- st.regs.(ra) land st.regs.(rb);
          st.pc <- pc1;
          quiet
      | Isa.Or_ (rd, ra, rb) ->
          st.regs.(rd) <- st.regs.(ra) lor st.regs.(rb);
          st.pc <- pc1;
          quiet
      | Isa.Xor_ (rd, ra, rb) ->
          st.regs.(rd) <- st.regs.(ra) lxor st.regs.(rb);
          st.pc <- pc1;
          quiet
      | Isa.Shl (rd, ra, rb) ->
          st.regs.(rd) <- mask16 (st.regs.(ra) lsl (st.regs.(rb) land 15));
          st.pc <- pc1;
          quiet
      | Isa.Shr (rd, ra, rb) ->
          st.regs.(rd) <- mask16 st.regs.(ra) lsr (st.regs.(rb) land 15);
          st.pc <- pc1;
          quiet
      | Isa.Ld (rd, ra, off) ->
          let addr = mask16 (st.regs.(ra) + off) in
          if user && not (Arch.mpu_allows st ~addr ~perm:Arch.Read) then begin
            trap st Isa.cause_data;
            { quiet with data_viol = true }
          end
          else begin
            st.regs.(rd) <- mask16 (load addr);
            st.pc <- pc1;
            { quiet with load_addr = Some addr }
          end
      | Isa.St (rd, ra, off) ->
          let addr = mask16 (st.regs.(ra) + off) in
          if user && not (Arch.mpu_allows st ~addr ~perm:Arch.Write) then begin
            trap st Isa.cause_data;
            { quiet with data_viol = true }
          end
          else begin
            store addr st.regs.(rd);
            st.pc <- pc1;
            { quiet with store = Some (addr, st.regs.(rd)) }
          end
      | Isa.Brz (r, off) ->
          st.pc <- (if st.regs.(r) = 0 then mask16 (pc1 + off) else pc1);
          quiet
      | Isa.Brnz (r, off) ->
          st.pc <- (if st.regs.(r) <> 0 then mask16 (pc1 + off) else pc1);
          quiet
      | Isa.Jalr (rd, ra) ->
          let target = st.regs.(ra) in
          st.regs.(rd) <- pc1;
          st.pc <- target;
          quiet
      | Isa.Mpuw (fld, ra) ->
          if user then begin
            trap st Isa.cause_priv;
            { quiet with priv_viol = true }
          end
          else begin
            let v = st.regs.(ra) in
            (match fld with
            | 0 -> st.mpu_base.(0) <- v
            | 1 -> st.mpu_limit.(0) <- v
            | 2 -> st.mpu_ctrl.(0) <- v land 0xf
            | 3 -> st.mpu_base.(1) <- v
            | 4 -> st.mpu_limit.(1) <- v
            | 5 -> st.mpu_ctrl.(1) <- v land 0xf
            | _ -> ());
            st.pc <- pc1;
            quiet
          end
    end
  end
