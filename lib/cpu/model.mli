(** Behavioral (RTL-level) single-cycle processor model.

    One call to {!step} is one clock cycle and mirrors, bit for bit, the
    next-state functions of the gate netlist in {!Circuit} — the
    co-simulation test in the test suite enforces the equivalence. This is
    the fast simulator the cross-level engine uses for golden runs,
    checkpoints, warm-up to the injection cycle and post-injection
    propagation (the paper's Synopsys VCS role). *)

type outcome = {
  data_viol : bool;  (** responding signal: illegal data access detected *)
  instr_viol : bool;  (** responding signal: illegal fetch detected *)
  priv_viol : bool;  (** responding signal: privileged instr in user mode *)
  store : (int * int) option;  (** performed data-memory write *)
  load_addr : int option;  (** performed data-memory read *)
}

val step :
  Arch.t -> fetch:(int -> int) -> load:(int -> int) -> store:(int -> int -> unit) -> outcome
(** Execute one cycle. When halted, nothing happens (no fetch) and the
    outcome is all-quiet. On a violation the instruction is squashed and
    the trap state update occurs instead. *)
