module Cycle_sim = Fmc_gatesim.Cycle_sim

type t = {
  circuit : Circuit.t;
  sim : Cycle_sim.t;
  imem : int array;
  dmem : int array;
  mutable cycle : int;
}

let create circuit (program : Fmc_isa.Programs.t) =
  System.validate_dmem_size ~who:"Netsys.create" program.Fmc_isa.Programs.dmem_size;
  let dmem = Array.make program.Fmc_isa.Programs.dmem_size 0 in
  List.iter (fun (a, v) -> dmem.(a) <- v land 0xffff) program.Fmc_isa.Programs.dmem_init;
  { circuit; sim = Cycle_sim.create circuit.Circuit.net; imem = program.Fmc_isa.Programs.imem; dmem; cycle = 0 }

let circuit t = t.circuit
let sim t = t.sim
let dmem t = t.dmem
let cycle t = t.cycle

let halted t = Cycle_sim.read_group t.sim "halted" = 1

let load_arch t st =
  List.iter (fun (name, _) -> Cycle_sim.write_group t.sim name (Arch.get_group st name)) Arch.groups

let read_arch t =
  let st = Arch.create () in
  List.iter (fun (name, _) -> Arch.set_group st name (Cycle_sim.read_group t.sim name)) Arch.groups;
  st

let dmask t addr = addr land (Array.length t.dmem - 1)

let settle t =
  let pc = Cycle_sim.read_group t.sim "pc" in
  let word = if pc >= 0 && pc < Array.length t.imem then t.imem.(pc) else 0 in
  Cycle_sim.set_input_bus t.sim t.circuit.Circuit.instr word;
  (* First pass resolves the data address (which never depends on rdata);
     second pass folds the memory answer back in. *)
  Cycle_sim.set_input_bus t.sim t.circuit.Circuit.dmem_rdata 0;
  Cycle_sim.eval_comb t.sim;
  let addr = Cycle_sim.read_bus t.sim t.circuit.Circuit.dmem_addr in
  Cycle_sim.set_input_bus t.sim t.circuit.Circuit.dmem_rdata t.dmem.(dmask t addr);
  Cycle_sim.eval_comb t.sim

let step t =
  settle t;
  if Cycle_sim.value t.sim t.circuit.Circuit.dmem_we then begin
    let addr = Cycle_sim.read_bus t.sim t.circuit.Circuit.dmem_addr in
    t.dmem.(dmask t addr) <- Cycle_sim.read_bus t.sim t.circuit.Circuit.dmem_wdata
  end;
  Cycle_sim.latch t.sim;
  t.cycle <- t.cycle + 1

let read_output t name =
  if Cycle_sim.value t.sim (Fmc_netlist.Netlist.output t.circuit.Circuit.net name) then 1 else 0
