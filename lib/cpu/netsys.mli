(** Gate-level full system: the {!Circuit} netlist driven cycle-by-cycle
    with the same behavioral memories as {!System}.

    Used for (a) the RTL-vs-gate co-simulation equivalence tests and (b) the
    single injection cycle of the cross-level engine, where the
    architectural state is transferred into the netlist registers, the
    cycle is evaluated at gate level, and the (possibly corrupted) next
    state is read back. *)

type t

val create : Circuit.t -> Fmc_isa.Programs.t -> t
(** The circuit can be shared across instances (the simulator state is
    per-[t]). *)

val circuit : t -> Circuit.t
val sim : t -> Fmc_gatesim.Cycle_sim.t
val dmem : t -> int array
val cycle : t -> int
val halted : t -> bool

val load_arch : t -> Arch.t -> unit
(** Write an architectural state into the netlist registers. *)

val read_arch : t -> Arch.t
(** Read the netlist registers back into a fresh architectural state. *)

val settle : t -> unit
(** Drive [instr] from the current [pc], resolve the data-memory read
    (two-pass combinational evaluation), leaving all combinational values
    settled for probing — the pre-injection point of the cross-level
    engine. *)

val step : t -> unit
(** {!settle}, commit the data-memory write if any, clock the registers. *)

val read_output : t -> string -> int
(** Settled value of a single-bit named output (e.g. ["data_viol"]). *)
