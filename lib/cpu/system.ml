type t = {
  program : Fmc_isa.Programs.t;
  st : Arch.t;
  imem : int array;
  dmem : int array;
  mutable cycle : int;
  mutable watchdog : int;  (* remaining step budget; negative = unlimited *)
  mutable on_step : (unit -> unit) option;  (* observability hook; not checkpointed *)
  mutable fetch_override : (pc:int -> int -> int) option;
      (* fault-injection hook on the fetch path; not checkpointed *)
}

exception Cycle_budget_exhausted of int

let () =
  Printexc.register_printer (function
    | Cycle_budget_exhausted cycle ->
        Some (Printf.sprintf "Fmc_cpu.System.Cycle_budget_exhausted(cycle %d)" cycle)
    | _ -> None)

let validate_dmem_size ~who size =
  (* Memory addresses are masked with [addr land (size - 1)] throughout the
     framework (RTL and gate level); any other size silently aliases. *)
  if size <= 0 || size land (size - 1) <> 0 then
    invalid_arg
      (Printf.sprintf
         "%s: dmem_size %d is not a positive power of two (address masking would silently alias)"
         who size)

let create (program : Fmc_isa.Programs.t) =
  validate_dmem_size ~who:"System.create" program.Fmc_isa.Programs.dmem_size;
  let dmem = Array.make program.Fmc_isa.Programs.dmem_size 0 in
  List.iter (fun (a, v) -> dmem.(a) <- v land 0xffff) program.Fmc_isa.Programs.dmem_init;
  {
    program;
    st = Arch.create ();
    imem = program.Fmc_isa.Programs.imem;
    dmem;
    cycle = 0;
    watchdog = -1;
    on_step = None;
    fetch_override = None;
  }

let program t = t.program
let state t = t.st
let dmem t = t.dmem
let cycle t = t.cycle
let halted t = t.st.Arch.halted

let fetch t pc =
  let word = if pc >= 0 && pc < Array.length t.imem then t.imem.(pc) else 0 in
  match t.fetch_override with None -> word | Some f -> f ~pc word

let dmask t addr = addr land (Array.length t.dmem - 1)

let load t addr = t.dmem.(dmask t addr)
let store t addr v = t.dmem.(dmask t addr) <- v land 0xffff

let set_watchdog t budget =
  match budget with
  | None -> t.watchdog <- -1
  | Some n when n < 0 -> invalid_arg "System.set_watchdog: negative budget"
  | Some n -> t.watchdog <- n

let set_on_step t hook = t.on_step <- hook
let set_fetch_override t hook = t.fetch_override <- hook

let step t =
  if t.watchdog = 0 then raise (Cycle_budget_exhausted t.cycle);
  if t.watchdog > 0 then t.watchdog <- t.watchdog - 1;
  (match t.on_step with None -> () | Some f -> f ());
  let outcome = Model.step t.st ~fetch:(fetch t) ~load:(load t) ~store:(store t) in
  t.cycle <- t.cycle + 1;
  outcome

let run t ~max_cycles =
  let used = ref 0 in
  while (not (halted t)) && !used < max_cycles do
    ignore (step t);
    incr used
  done;
  !used

let run_to_cycle t target =
  if target < t.cycle then invalid_arg "System.run_to_cycle: target cycle is in the past";
  while t.cycle < target do
    ignore (step t)
  done

let advance_externally t = t.cycle <- t.cycle + 1

type checkpoint = { cp_cycle : int; cp_state : Arch.t; cp_dmem : int array }

let checkpoint t = { cp_cycle = t.cycle; cp_state = Arch.copy t.st; cp_dmem = Array.copy t.dmem }

let restore t cp =
  t.cycle <- cp.cp_cycle;
  Array.blit cp.cp_dmem 0 t.dmem 0 (Array.length t.dmem);
  let src = cp.cp_state in
  List.iter (fun (name, _) -> Arch.set_group t.st name (Arch.get_group src name)) Arch.groups

let checkpoint_cycle cp = cp.cp_cycle
let checkpoint_state cp = Arch.copy cp.cp_state

let observable_values t = List.map (fun a -> t.dmem.(dmask t a)) t.program.Fmc_isa.Programs.observable
