(** RTL-level full system: processor model + instruction/data memories,
    running a {!Fmc_isa.Programs.t} benchmark.

    Memories are behavioral (testbench-side), as in the paper's VCS setup;
    a checkpoint therefore bundles the architectural registers, the data
    memory image and the cycle number. Fetch from an address outside the
    program image returns 0, which decodes as HALT — a runaway faulty
    execution self-terminates. *)

type t

val create : Fmc_isa.Programs.t -> t
(** Fresh system at reset with [dmem_init] applied. *)

val program : t -> Fmc_isa.Programs.t
val state : t -> Arch.t
(** The live architectural state (mutable; mutations take effect). *)

val dmem : t -> int array
(** The live data memory (mutable). *)

val cycle : t -> int
val halted : t -> bool

val fetch : t -> int -> int
val load : t -> int -> int
val store : t -> int -> int -> unit

val step : t -> Model.outcome
(** One cycle (no-op when halted, but still counts a cycle). *)

val run : t -> max_cycles:int -> int
(** Step until halted or the budget is exhausted; returns cycles consumed
    by this call. *)

val run_to_cycle : t -> int -> unit
(** Advance to an absolute cycle number. Raises [Invalid_argument] if the
    target is in the past. *)

val advance_externally : t -> unit
(** Count one cycle that was executed outside this system (the cross-level
    engine evaluates the injection cycle at gate level and writes the
    resulting state/memory back). *)

type checkpoint

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit
val checkpoint_cycle : checkpoint -> int
val checkpoint_state : checkpoint -> Arch.t
(** A copy — safe to inspect. *)

val observable_values : t -> int list
(** Values at the benchmark's observable dmem addresses, in order. *)
