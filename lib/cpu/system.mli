(** RTL-level full system: processor model + instruction/data memories,
    running a {!Fmc_isa.Programs.t} benchmark.

    Memories are behavioral (testbench-side), as in the paper's VCS setup;
    a checkpoint therefore bundles the architectural registers, the data
    memory image and the cycle number. Fetch from an address outside the
    program image returns 0, which decodes as HALT — a runaway faulty
    execution self-terminates. *)

type t

exception Cycle_budget_exhausted of int
(** Raised by {!step} (and therefore {!run} / {!run_to_cycle}) when the
    watchdog budget set via {!set_watchdog} runs out; carries the cycle at
    exhaustion. Used by the campaign runner to quarantine pathological
    samples instead of letting them monopolize a domain. *)

val validate_dmem_size : who:string -> int -> unit
(** Reject a data-memory size that is not a positive power of two with a
    clear [Invalid_argument] ([who] prefixes the message). Shared by every
    component that allocates a masked dmem image. *)

val create : Fmc_isa.Programs.t -> t
(** Fresh system at reset with [dmem_init] applied. Raises
    [Invalid_argument] when the benchmark's [dmem_size] is not a positive
    power of two — memory addresses are masked with
    [addr land (dmem_size - 1)] across the framework, which silently
    aliases for any other size. *)

val program : t -> Fmc_isa.Programs.t
val state : t -> Arch.t
(** The live architectural state (mutable; mutations take effect). *)

val dmem : t -> int array
(** The live data memory (mutable). *)

val cycle : t -> int
val halted : t -> bool

val fetch : t -> int -> int
val load : t -> int -> int
val store : t -> int -> int -> unit

val set_watchdog : t -> int option -> unit
(** [set_watchdog t (Some n)] arms a step budget: the next [n] calls to
    {!step} proceed normally, after which {!step} raises
    {!Cycle_budget_exhausted}. [None] disarms (the default). The budget is
    transient execution state — it is not part of a {!checkpoint}. Raises
    [Invalid_argument] on a negative budget. *)

val set_on_step : t -> (unit -> unit) option -> unit
(** Install (or clear) a per-step observability hook, invoked once at the
    start of every {!step} that passes the watchdog. Like the watchdog it
    is transient execution state: not part of a {!checkpoint}, and the
    default ([None]) costs a single branch per cycle. *)

val set_fetch_override : t -> (pc:int -> int -> int) option -> unit
(** Install (or clear) a fault-injection hook on the instruction fetch
    path: every fetch passes the raw instruction word through the hook
    (with the fetching [pc]) and executes the returned word instead —
    the ISS-level substrate for instruction skip/corrupt fault models.
    Like the watchdog it is transient execution state: not part of a
    {!checkpoint}, and the default ([None]) costs one branch per
    fetch. *)

val step : t -> Model.outcome
(** One cycle (no-op when halted, but still counts a cycle). *)

val run : t -> max_cycles:int -> int
(** Step until halted or the budget is exhausted; returns cycles consumed
    by this call. *)

val run_to_cycle : t -> int -> unit
(** Advance to an absolute cycle number. Raises [Invalid_argument] if the
    target is in the past. *)

val advance_externally : t -> unit
(** Count one cycle that was executed outside this system (the cross-level
    engine evaluates the injection cycle at gate level and writes the
    resulting state/memory back). *)

type checkpoint

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit
val checkpoint_cycle : checkpoint -> int
val checkpoint_state : checkpoint -> Arch.t
(** A copy — safe to inspect. *)

val observable_values : t -> int list
(** Values at the benchmark's observable dmem addresses, in order. *)
