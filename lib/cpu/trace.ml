module Isa = Fmc_isa.Isa

type entry = {
  cycle : int;
  pc : int;
  instr : Fmc_isa.Isa.t option;
  mode : int;
  data_viol : bool;
  instr_viol : bool;
  priv_viol : bool;
  store : (int * int) option;
  load_addr : int option;
}

let record_from sys ~cycles =
  let entries = ref [] in
  let n = ref 0 in
  while !n < cycles && not (System.halted sys) do
    let cycle = System.cycle sys in
    let st = System.state sys in
    let pc = st.Arch.pc in
    let mode = st.Arch.mode in
    let word = System.fetch sys pc in
    let outcome = System.step sys in
    entries :=
      {
        cycle;
        pc;
        instr = Some (Isa.decode word);
        mode;
        data_viol = outcome.Model.data_viol;
        instr_viol = outcome.Model.instr_viol;
        priv_viol = outcome.Model.priv_viol;
        store = outcome.Model.store;
        load_addr = outcome.Model.load_addr;
      }
      :: !entries;
    incr n
  done;
  List.rev !entries

let record program ~cycles = record_from (System.create program) ~cycles

let pp_entry ppf e =
  let viol =
    match (e.data_viol, e.instr_viol, e.priv_viol) with
    | true, _, _ -> " !DATA-VIOL"
    | _, true, _ -> " !INSTR-VIOL"
    | _, _, true -> " !PRIV-VIOL"
    | _ -> ""
  in
  let mem =
    match (e.store, e.load_addr) with
    | Some (a, v), _ -> Printf.sprintf "  M[%04x] <- %04x" a v
    | _, Some a -> Printf.sprintf "  <- M[%04x]" a
    | _ -> ""
  in
  Format.fprintf ppf "%5d  %c %04x  %-20s%s%s" e.cycle
    (if e.mode = 1 then 'P' else 'U')
    e.pc
    (match e.instr with Some i -> Isa.to_string i | None -> "(halted)")
    mem viol

let pp ppf entries =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) entries
