(** Per-cycle execution tracing of the RTL system (debugging aid).

    Records, for each cycle: the program counter, the fetched instruction
    (disassembled), the privilege mode, any responding-signal assertion and
    the performed memory access. Render with {!pp} for a classic simulator
    log. *)

type entry = {
  cycle : int;
  pc : int;
  instr : Fmc_isa.Isa.t option;  (** [None] once halted *)
  mode : int;  (** privilege at the start of the cycle *)
  data_viol : bool;
  instr_viol : bool;
  priv_viol : bool;
  store : (int * int) option;
  load_addr : int option;
}

val record : Fmc_isa.Programs.t -> cycles:int -> entry list
(** Run a fresh system for up to [cycles] cycles (stops after halt) and
    return the trace. *)

val record_from : System.t -> cycles:int -> entry list
(** Continue tracing an existing system (useful after an injection). *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> entry list -> unit
