let rounds = 4

let sbox = [| 0xC; 0x5; 0x6; 0xB; 0x9; 0x0; 0xA; 0xD; 0x3; 0xE; 0xF; 0x8; 0x4; 0x7; 0x1; 0x2 |]

let inv_sbox =
  let inv = Array.make 16 0 in
  Array.iteri (fun i v -> inv.(v) <- i) sbox;
  inv

let permute_bit i = if i = 15 then 15 else 4 * i mod 15

let mask16 v = v land 0xffff

let sbox_layer v =
  let out = ref 0 in
  for nib = 0 to 3 do
    out := !out lor (sbox.((v lsr (4 * nib)) land 0xf) lsl (4 * nib))
  done;
  !out

let inv_sbox_layer v =
  let out = ref 0 in
  for nib = 0 to 3 do
    out := !out lor (inv_sbox.((v lsr (4 * nib)) land 0xf) lsl (4 * nib))
  done;
  !out

let permute v =
  let out = ref 0 in
  for i = 0 to 15 do
    if (v lsr i) land 1 = 1 then out := !out lor (1 lsl permute_bit i)
  done;
  !out

let inv_permute v =
  let out = ref 0 in
  for i = 0 to 15 do
    if (v lsr permute_bit i) land 1 = 1 then out := !out lor (1 lsl i)
  done;
  !out

let rotl16 v n =
  let n = n land 15 in
  mask16 ((v lsl n) lor (v lsr (16 - n)))

let round_key ~key r = rotl16 key r lxor r

let whitening_key ~key = rotl16 key rounds lxor rounds

let encrypt ~key pt =
  let s = ref (mask16 pt) in
  for r = 0 to rounds - 2 do
    s := permute (sbox_layer (!s lxor round_key ~key r))
  done;
  sbox_layer (!s lxor round_key ~key (rounds - 1)) lxor whitening_key ~key

let decrypt ~key ct =
  let s = ref (inv_sbox_layer (mask16 ct lxor whitening_key ~key) lxor round_key ~key (rounds - 1)) in
  for r = rounds - 2 downto 0 do
    s := inv_sbox_layer (inv_permute !s) lxor round_key ~key r
  done;
  !s

let last_round_input ~key ~plaintext =
  let s = ref (mask16 plaintext) in
  for r = 0 to rounds - 2 do
    s := permute (sbox_layer (!s lxor round_key ~key r))
  done;
  !s lxor round_key ~key (rounds - 1)
