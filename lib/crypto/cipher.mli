(** TOYSPN — a 16-bit, 4-round substitution–permutation cipher.

    The paper's second attack scenario targets information leakage from
    cryptographic modules (differential fault analysis on AES/DES/RC4 in
    its references). TOYSPN is this repo's stand-in: small enough to build
    as a netlist and to break by hand, structured like the real targets —
    PRESENT's 4-bit S-box, a bit permutation, XOR round keys, and a final
    whitening key, so the classic last-round DFA applies verbatim.

    One encryption:
    {v
    s_0     = plaintext
    s_{r+1} = P(S(s_r xor rk_r))          r = 0 .. rounds-2
    cipher  = S(s_{R-1} xor rk_{R-1}) xor wk
    v}
    with [rk_r = rotl16(key, r) xor r] and the whitening key
    [wk = rotl16(key, rounds) xor rounds]. All values are 16-bit; S applies
    the S-box to each nibble; P is a fixed bit permutation. *)

val rounds : int
(** 4. *)

val sbox : int array
(** PRESENT's S-box, 16 entries. *)

val inv_sbox : int array

val permute_bit : int -> int
(** Destination position of bit [i] under P (a PRESENT-style
    [4*i mod 15] spread; bit 15 fixed). *)

val sbox_layer : int -> int
val inv_sbox_layer : int -> int
val permute : int -> int
val inv_permute : int -> int

val rotl16 : int -> int -> int

val round_key : key:int -> int -> int
(** [round_key ~key r] is [rk_r]. *)

val whitening_key : key:int -> int
(** [wk]. *)

val encrypt : key:int -> int -> int
(** Reference encryption of one 16-bit block. *)

val decrypt : key:int -> int -> int

val last_round_input : key:int -> plaintext:int -> int
(** The value [s_{R-1} xor rk_{R-1}] entering the final S-box layer — the
    state a last-round DFA fault perturbs. *)
