module Hdl = Fmc_hdl.Hdl
module Vec = Fmc_hdl.Vec
open Hdl

type t = {
  net : Fmc_netlist.Netlist.t;
  load : Fmc_netlist.Netlist.node;
  pt : Fmc_netlist.Netlist.node array;
  key_in : Fmc_netlist.Netlist.node array;
  ct : Fmc_netlist.Netlist.node array;
  done_ : Fmc_netlist.Netlist.node;
  busy : Fmc_netlist.Netlist.node;
}

(* One 4-bit S-box as four 16:1 mux trees over constant bits. *)
let sbox4 ctx nib =
  Array.init 4 (fun out_bit ->
      let cases =
        Array.init 16 (fun v -> [| Hdl.const ctx ((Cipher.sbox.(v) lsr out_bit) land 1 = 1) |])
      in
      (Vec.mux_tree ~sel:nib cases).(0))

let sbox_layer ctx state =
  let out = Array.make 16 (Hdl.gnd ctx) in
  for nib = 0 to 3 do
    let inp = Array.sub state (4 * nib) 4 in
    let res = sbox4 ctx inp in
    Array.blit res 0 out (4 * nib) 4
  done;
  out

let permute state = Array.init 16 (fun j ->
    (* out bit j comes from the input bit i with permute_bit i = j *)
    let rec find i = if Cipher.permute_bit i = j then i else find (i + 1) in
    state.(find 0))

let build () =
  let ctx = Hdl.create () in
  let load = Hdl.input1 ctx "load" in
  let pt = Hdl.input ctx "pt" 16 in
  let key_in = Hdl.input ctx "key_in" 16 in
  let state_r = Hdl.reg ctx ~group:"cstate" ~width:16 ~init:0 in
  let key_r = Hdl.reg ctx ~group:"ckey" ~width:16 ~init:0 in
  let round_r = Hdl.reg ctx ~group:"round" ~width:3 ~init:0 in
  let busy_r = Hdl.reg ctx ~group:"busy" ~width:1 ~init:0 in
  let done_r = Hdl.reg ctx ~group:"done" ~width:1 ~init:0 in
  let state = Hdl.q state_r and key = Hdl.q key_r and round = Hdl.q round_r in
  let busy = (Hdl.q busy_r).(0) and done_q = (Hdl.q done_r).(0) in

  (* Round key: rk = rotl16(key, round) xor round, selected by the round
     counter (8 wiring-only cases xored with the round constant). *)
  let rk_cases =
    Array.init 8 (fun r ->
        let rotated = Array.init 16 (fun j -> key.((j - r + 16) mod 16)) in
        Vec.xor_v rotated (Vec.of_int ctx ~width:16 r))
  in
  let rk = Vec.mux_tree ~sel:round rk_cases in
  let wk =
    let rotated = Array.init 16 (fun j -> key.((j - Cipher.rounds + 16) mod 16)) in
    Vec.xor_v rotated (Vec.of_int ctx ~width:16 Cipher.rounds)
  in

  let xored = Vec.xor_v state rk in
  let sboxed = sbox_layer ctx xored in
  let middle = permute sboxed in
  let final = Vec.xor_v sboxed wk in
  let last = Vec.eq round (Vec.of_int ctx ~width:3 (Cipher.rounds - 1)) in
  let round_out = Vec.mux2v last middle final in

  let state_next = Vec.mux2v load (Vec.mux2v busy state round_out) pt in
  let key_next = Vec.mux2v load key key_in in
  let round_next =
    Vec.mux2v load
      (Vec.mux2v busy round (Vec.add round (Vec.of_int ctx ~width:3 1)))
      (Vec.zero ctx 3)
  in
  let busy_next = [| mux2 load (busy &: ~:last) (Hdl.vdd ctx) |] in
  let done_next = [| mux2 load (done_q |: (busy &: last)) (Hdl.gnd ctx) |] in
  Hdl.connect state_r state_next;
  Hdl.connect key_r key_next;
  Hdl.connect round_r round_next;
  Hdl.connect busy_r busy_next;
  Hdl.connect done_r done_next;

  Hdl.output ctx "ct" state;
  Hdl.output1 ctx "done" done_q;
  Hdl.output1 ctx "busy" busy;
  (* Expose the xor layer for DFA-targeted injection. *)
  Array.iteri (fun i s -> Hdl.output1 ctx (Printf.sprintf "xr[%d]" i) s) xored;

  let net = Hdl.elaborate ctx in
  let n = Hdl.node_of_signal in
  {
    net;
    load = n load;
    pt = Array.map n pt;
    key_in = Array.map n key_in;
    ct = Array.map n state;
    done_ = n done_q;
    busy = n busy;
  }

let last_round_xor_gates t =
  Array.init 16 (fun i -> Fmc_netlist.Netlist.output t.net (Printf.sprintf "xr[%d]" i))
