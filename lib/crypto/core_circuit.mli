(** The TOYSPN core as a gate-level netlist (one round per cycle),
    bit-exact with {!Core_model}.

    Ports: inputs [load], [pt\[16\]], [key_in\[16\]]; outputs [ct\[16\]]
    (the state register — the ciphertext once [done] is high), [done],
    [busy]. Register groups as in {!Core_model.groups}. *)

type t = {
  net : Fmc_netlist.Netlist.t;
  load : Fmc_netlist.Netlist.node;
  pt : Fmc_netlist.Netlist.node array;
  key_in : Fmc_netlist.Netlist.node array;
  ct : Fmc_netlist.Netlist.node array;
  done_ : Fmc_netlist.Netlist.node;
  busy : Fmc_netlist.Netlist.node;
}

val build : unit -> t

val last_round_xor_gates : t -> Fmc_netlist.Netlist.node array
(** The gates of the state-xor-roundkey layer — the classic DFA injection
    surface (perturbing the last S-box layer's input). *)
