type t = {
  mutable state : int;
  mutable key : int;
  mutable round : int;
  mutable busy : bool;
  mutable done_ : bool;
}

let create () = { state = 0; key = 0; round = 0; busy = false; done_ = false }

let copy t = { state = t.state; key = t.key; round = t.round; busy = t.busy; done_ = t.done_ }

let equal a b =
  a.state = b.state && a.key = b.key && a.round = b.round && a.busy = b.busy && a.done_ = b.done_

let groups = [ ("cstate", 16); ("ckey", 16); ("round", 3); ("busy", 1); ("done", 1) ]

let get_group t = function
  | "cstate" -> t.state
  | "ckey" -> t.key
  | "round" -> t.round
  | "busy" -> if t.busy then 1 else 0
  | "done" -> if t.done_ then 1 else 0
  | name -> invalid_arg ("Core_model: unknown group " ^ name)

let set_group t name v =
  match name with
  | "cstate" -> t.state <- v land 0xffff
  | "ckey" -> t.key <- v land 0xffff
  | "round" -> t.round <- v land 0x7
  | "busy" -> t.busy <- v land 1 = 1
  | "done" -> t.done_ <- v land 1 = 1
  | name -> invalid_arg ("Core_model: unknown group " ^ name)

let step t ~load ~plaintext ~key_in =
  if load then begin
    t.state <- plaintext land 0xffff;
    t.key <- key_in land 0xffff;
    t.round <- 0;
    t.busy <- true;
    t.done_ <- false
  end
  else if t.busy then begin
    let rk = Cipher.round_key ~key:t.key t.round in
    let last = t.round = Cipher.rounds - 1 in
    if last then begin
      t.state <- Cipher.sbox_layer (t.state lxor rk) lxor Cipher.whitening_key ~key:t.key;
      t.busy <- false;
      t.done_ <- true
    end
    else t.state <- Cipher.permute (Cipher.sbox_layer (t.state lxor rk));
    t.round <- (t.round + 1) land 0x7
  end

let encrypt t ~key pt =
  step t ~load:true ~plaintext:pt ~key_in:key;
  while t.busy do
    step t ~load:false ~plaintext:0 ~key_in:0
  done;
  t.state
