(** Behavioral (RTL-level) model of the TOYSPN core.

    One {!step} is one clock cycle, bit-exact with {!Core_circuit} (enforced
    by the co-simulation tests). The core is a one-round-per-cycle engine:
    pulse [load] with plaintext and key, then [Cipher.rounds] cycles later
    [done_] rises and [state] holds the ciphertext. *)

type t = {
  mutable state : int;  (** 16-bit working state / ciphertext *)
  mutable key : int;  (** 16-bit key register *)
  mutable round : int;  (** 3-bit round counter *)
  mutable busy : bool;
  mutable done_ : bool;
}

val create : unit -> t
(** All-zero reset. *)

val copy : t -> t
val equal : t -> t -> bool

val groups : (string * int) list
(** Register groups shared with the netlist: [cstate], [ckey], [round],
    [busy], [done]. *)

val get_group : t -> string -> int
val set_group : t -> string -> int -> unit

val step : t -> load:bool -> plaintext:int -> key_in:int -> unit

val encrypt : t -> key:int -> int -> int
(** Drive a full encryption (load + rounds cycles); returns the
    ciphertext. The model is left in the done state. *)
