let popcount4 v =
  let v = (v land 0x5) + ((v lsr 1) land 0x5) in
  (v land 0x3) + ((v lsr 2) land 0x3)

let nibble_candidates ~correct ~faulty ~nibble =
  let c = (correct lsr (4 * nibble)) land 0xf in
  let c' = (faulty lsr (4 * nibble)) land 0xf in
  if c = c' then List.init 16 Fun.id
  else
    List.filter
      (fun k ->
        let delta = Cipher.inv_sbox.(c lxor k) lxor Cipher.inv_sbox.(c' lxor k) in
        popcount4 delta = 1)
      (List.init 16 Fun.id)

type state = { correct : int; sets : int list array }

let start ~correct = { correct; sets = Array.init 4 (fun _ -> List.init 16 Fun.id) }

let observe st ~faulty =
  let sets =
    Array.mapi
      (fun nibble set ->
        let cand = nibble_candidates ~correct:st.correct ~faulty ~nibble in
        List.filter (fun k -> List.mem k cand) set)
      st.sets
  in
  { st with sets }

let candidates st = Array.map (fun s -> s) st.sets

let informative ~correct ~faulty =
  faulty <> correct
  && List.exists
       (fun nibble -> List.length (nibble_candidates ~correct ~faulty ~nibble) < 16)
       [ 0; 1; 2; 3 ]

let recovered_whitening_key st =
  let rec build nibble acc =
    if nibble = 4 then Some acc
    else
      match st.sets.(nibble) with
      | [ k ] -> build (nibble + 1) (acc lor (k lsl (4 * nibble)))
      | _ -> None
  in
  build 0 0

let master_key_of_whitening wk = Cipher.rotl16 (wk lxor Cipher.rounds) (16 - Cipher.rounds)
