(** Last-round differential fault analysis on TOYSPN.

    The attacker knows a correct ciphertext [c] and faulty ciphertexts
    [c'] produced by perturbing the input of the final S-box layer (the
    paper's scenario 2: [Te] = injection during encryption, [Tt] =
    ciphertext observation). Under the standard single-bit fault model,
    for each nibble the whitening-key candidates [k] are those for which

    {v inv_sbox(c xor k) xor inv_sbox(c' xor k) v}

    has Hamming weight 1. Intersecting candidate sets over several faulty
    ciphertexts pins the key nibble; four nibbles give the whitening key,
    which inverts to the master key. *)

val nibble_candidates : correct:int -> faulty:int -> nibble:int -> int list
(** Whitening-key candidates (0..15) for one nibble, or all 16 when the
    nibble is unaffected ([c' = c] there — no information). *)

type state
(** Accumulated knowledge: per-nibble candidate sets. *)

val start : correct:int -> state

val observe : state -> faulty:int -> state
(** Fold in one faulty ciphertext. Faulty ciphertexts equal to the correct
    one carry no information. *)

val candidates : state -> int list array
(** Current per-nibble candidate sets (4 entries). *)

val informative : correct:int -> faulty:int -> bool
(** Does this faulty ciphertext narrow at least one nibble below 16
    candidates? The per-strike leakage indicator of the evaluation. *)

val recovered_whitening_key : state -> int option
(** The whitening key once every nibble is pinned to one candidate. *)

val master_key_of_whitening : int -> int
(** Invert the key schedule: [wk -> key]. *)
