module Cycle_sim = Fmc_gatesim.Cycle_sim
module Transient = Fmc_gatesim.Transient
module N = Fmc_netlist.Netlist

type t = { circuit : Core_circuit.t; sim : Cycle_sim.t }

let create circuit = { circuit; sim = Cycle_sim.create circuit.Core_circuit.net }

let circuit t = t.circuit
let sim t = t.sim

let drive t ~load ~pt ~key =
  Cycle_sim.set_input t.sim t.circuit.Core_circuit.load load;
  Cycle_sim.set_input_bus t.sim t.circuit.Core_circuit.pt pt;
  Cycle_sim.set_input_bus t.sim t.circuit.Core_circuit.key_in key

let encrypt t ~key pt =
  Cycle_sim.reset t.sim;
  drive t ~load:true ~pt ~key;
  Cycle_sim.eval_comb t.sim;
  Cycle_sim.latch t.sim;
  let budget = Cipher.rounds + 2 in
  let cycle = ref 0 in
  while (not (Cycle_sim.read_group t.sim "done" = 1)) && !cycle < budget do
    drive t ~load:false ~pt:0 ~key:0;
    Cycle_sim.eval_comb t.sim;
    Cycle_sim.latch t.sim;
    incr cycle
  done;
  Cycle_sim.read_group t.sim "cstate"

let encrypt_with_strikes t ~key ~plaintext ~cycle ~strikes config =
  Cycle_sim.reset t.sim;
  let budget = (2 * Cipher.rounds) + 4 in
  let c = ref 0 in
  let finished = ref false in
  while (not !finished) && !c < budget do
    drive t ~load:(!c = 0) ~pt:plaintext ~key;
    if !c = cycle then begin
      (* Direct flip-flop strikes flip stored state before the cycle
         settles; combinational strikes become transients. *)
      let direct, comb =
        List.partition
          (fun s ->
            match N.kind t.circuit.Core_circuit.net s.Transient.node with
            | Fmc_netlist.Kind.Dff _ -> true
            | _ -> false)
          strikes
      in
      List.iter (fun s -> Cycle_sim.flip t.sim s.Transient.node) direct;
      Cycle_sim.eval_comb t.sim;
      let result = Transient.inject t.sim config ~strikes:comb in
      Cycle_sim.latch t.sim;
      Array.iter (fun d -> Cycle_sim.flip t.sim d) result.Transient.latched
    end
    else begin
      Cycle_sim.eval_comb t.sim;
      Cycle_sim.latch t.sim
    end;
    incr c;
    if Cycle_sim.value t.sim t.circuit.Core_circuit.done_ then finished := true
  done;
  Cycle_sim.read_group t.sim "cstate"
