(** Gate-level execution harness for the TOYSPN core, with optional
    transient injection — the crypto counterpart of the processor's
    cross-level engine (gate level only: an encryption is just
    [Cipher.rounds + 1] cycles, so there is nothing to checkpoint). *)

type t

val create : Core_circuit.t -> t
(** The circuit may be shared; simulation state is per-[t]. *)

val circuit : t -> Core_circuit.t
val sim : t -> Fmc_gatesim.Cycle_sim.t

val encrypt : t -> key:int -> int -> int
(** Fault-free netlist encryption. *)

val encrypt_with_strikes :
  t ->
  key:int ->
  plaintext:int ->
  cycle:int ->
  strikes:Fmc_gatesim.Transient.strike list ->
  Fmc_gatesim.Transient.config ->
  int
(** Run an encryption, injecting [strikes] during cycle [cycle]
    (0 = the load cycle, 1 = round 0, ...; direct flip-flop strikes flip
    state at the start of that cycle). Returns the (possibly faulty)
    ciphertext after the core reports done, or the state after a bounded
    number of cycles if the fault derails the control FSM. *)
