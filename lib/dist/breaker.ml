(* Three-state circuit breaker over an injected clock. The coordinator
   keeps one per worker name: misbehaving transports (corrupt frames,
   protocol garbage, heartbeat gaps) trip it, and while it is open that
   worker's connections are refused with Retry_later so the campaign
   continues on healthy workers instead of burning the listener loop on
   a flapping peer. *)

type config = { failure_threshold : int; cooldown_s : float }

let default_config = { failure_threshold = 5; cooldown_s = 10. }

type state = Closed | Open | Half_open

type phase =
  | P_closed of { failures : int }
  | P_open of { until : float }
  | P_half_open of { probing : bool }

type t = { config : config; mutable phase : phase; mutable trips : int }

let create config =
  if config.failure_threshold <= 0 then invalid_arg "Breaker.create: non-positive threshold";
  if config.cooldown_s <= 0. then invalid_arg "Breaker.create: non-positive cooldown";
  { config; phase = P_closed { failures = 0 }; trips = 0 }

(* An open breaker whose cooldown elapsed becomes half-open lazily, on
   the next observation — there is no timer to fire. *)
let settle t ~now =
  match t.phase with
  | P_open { until } when now >= until -> t.phase <- P_half_open { probing = false }
  | _ -> ()

let state t ~now =
  settle t ~now;
  match t.phase with
  | P_closed _ -> Closed
  | P_open _ -> Open
  | P_half_open _ -> Half_open

let allow t ~now =
  settle t ~now;
  match t.phase with
  | P_closed _ -> true
  | P_open _ -> false
  | P_half_open { probing } ->
      if probing then false
      else begin
        t.phase <- P_half_open { probing = true };
        true
      end

let trip t ~now =
  t.phase <- P_open { until = now +. t.config.cooldown_s };
  t.trips <- t.trips + 1

let record_failure t ~now =
  settle t ~now;
  match t.phase with
  | P_closed { failures } ->
      let failures = failures + 1 in
      if failures >= t.config.failure_threshold then trip t ~now
      else t.phase <- P_closed { failures }
  | P_half_open _ -> trip t ~now
  | P_open _ -> ()

let record_success t ~now =
  settle t ~now;
  match t.phase with
  | P_closed _ -> t.phase <- P_closed { failures = 0 }
  | P_half_open _ -> t.phase <- P_closed { failures = 0 }
  | P_open _ -> ()

let cooldown_remaining t ~now =
  settle t ~now;
  match t.phase with P_open { until } -> Float.max 0. (until -. now) | _ -> 0.

let trips t = t.trips
