(** Per-worker circuit breaker (DESIGN.md §11).

    Classic three-state breaker over an injected clock, like {!Lease}:
    [Closed] (healthy) counts consecutive failures; reaching the
    threshold trips to [Open] for a cooldown window during which every
    {!allow} is refused; after the cooldown the breaker is [Half_open]
    and admits a single probe — a success closes it, a failure re-opens
    it for a fresh cooldown. Pure state over [now] parameters so the
    transition logic is unit-testable without timers; thread safety is
    the caller's job (the coordinator holds its mutex around calls). *)

type config = {
  failure_threshold : int;  (** consecutive failures that trip the breaker *)
  cooldown_s : float;  (** how long an open breaker refuses connections *)
}

val default_config : config
(** 5 consecutive failures, 10 s cooldown. *)

type state = Closed | Open | Half_open

type t

val create : config -> t
(** Raises [Invalid_argument] on a non-positive threshold or cooldown. *)

val state : t -> now:float -> state
(** Current state; an [Open] breaker whose cooldown has elapsed reports
    (and becomes) [Half_open]. *)

val allow : t -> now:float -> bool
(** May this worker be served? [Closed]: always. [Open]: no, until the
    cooldown elapses. [Half_open]: yes for the first caller (the probe),
    no for the rest until the probe resolves. *)

val record_failure : t -> now:float -> unit
(** A protocol error, corrupt frame, or heartbeat-gap lease expiry
    attributed to this worker. May trip [Closed -> Open] or
    [Half_open -> Open]. *)

val record_success : t -> now:float -> unit
(** A well-formed, accepted interaction (valid heartbeat, accepted shard
    completion). Resets the consecutive-failure count; a [Half_open]
    probe success closes the breaker. *)

val trip : t -> now:float -> unit
(** Force the breaker open immediately, regardless of the consecutive
    failure count — the audit quarantine path, where one proven lie
    outweighs any success history. The cooldown still applies; callers
    that quarantine permanently must also track the worker themselves
    (the coordinator's quarantined-workers set). *)

val cooldown_remaining : t -> now:float -> float
(** Seconds until an [Open] breaker admits a probe; 0 otherwise. The
    number the coordinator puts in [Retry_later]. *)

val trips : t -> int
(** Times this breaker has transitioned to [Open] over its lifetime. *)
