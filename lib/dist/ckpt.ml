(* Durable coordinator state: the campaign fingerprint plus every
   accepted shard result, written with the same atomic tmp+rename
   discipline and the same embedded serializers (Ssf.Tally.to_string,
   Campaign.quarantine_entry_to_string) as the single-process campaign
   checkpoint. v2 seals the file with a "crc %08x" trailer (CRC-32 of
   every byte up to and including the "end" marker), mirroring the
   campaign checkpoint's v4 trailer; v1 files are still read. Restoring
   seeds the lease table's Done set, so a crashed coordinator resumes
   without re-running finished shards — and because shard results depend
   only on (seed, shard), the resumed campaign's merged report is still
   bit-identical. *)

open Fmc

let format_version = 3

type audit_entry = {
  au_shard : int;
  au_worker : string;
  au_digest : string;
  au_passed : bool;
}

type audit = { au_entries : audit_entry list; au_banned : string list }

type state = {
  st_fingerprint : string;
  st_shards : (int * string) list;  (* ascending shard id, tally blobs *)
  st_quarantined : Campaign.quarantine_entry list;
  st_audit : audit option;
}

let blob_lines blob =
  match List.rev (String.split_on_char '\n' blob) with
  | "" :: rest -> List.rev rest
  | parts -> List.rev parts

let body_of state =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.bprintf buf fmt in
  (* An unaudited campaign writes a byte-identical v2 file, so enabling
     the audit subsystem never perturbs existing checkpoints. *)
  let version = match state.st_audit with None -> 2 | Some _ -> format_version in
  pr "faultmc-dist %d\n" version;
  pr "fingerprint %s\n" state.st_fingerprint;
  pr "shards %d\n" (List.length state.st_shards);
  List.iter
    (fun (i, blob) ->
      let ls = blob_lines blob in
      pr "shard %d %d\n" i (List.length ls);
      List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) ls)
    state.st_shards;
  pr "quarantined %d\n" (List.length state.st_quarantined);
  List.iter
    (fun e -> Buffer.add_string buf (Campaign.quarantine_entry_to_string e ^ "\n"))
    state.st_quarantined;
  (match state.st_audit with
  | None -> ()
  | Some a ->
      pr "audits %d\n" (List.length a.au_entries);
      List.iter
        (fun e ->
          (* worker last: names may contain spaces, the rest parse as
             single fields *)
          pr "audit %d %d %s %s\n" e.au_shard
            (if e.au_passed then 1 else 0)
            e.au_digest e.au_worker)
        a.au_entries;
      pr "banned %d\n" (List.length a.au_banned);
      List.iter (fun w -> Buffer.add_string buf (w ^ "\n")) a.au_banned);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let save ~path state =
  let body = body_of state in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc body;
      Printf.fprintf oc "crc %08x\n" (Crc32.string body);
      flush oc);
  Sys.rename tmp path

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* Strip and verify the v2 trailer; the returned body is what the line
   parser below consumes. *)
let verify_trailer raw =
  let n = String.length raw in
  if n = 0 || raw.[n - 1] <> '\n' then bad "truncated: missing CRC trailer";
  let tl_start =
    match String.rindex_from_opt raw (n - 2) '\n' with Some i -> i + 1 | None -> 0
  in
  let trailer = String.sub raw tl_start (n - tl_start - 1) in
  let stored =
    match String.split_on_char ' ' trailer with
    | [ "crc"; v ] when String.length v = 8 -> (
        match int_of_string_opt ("0x" ^ v) with
        | Some c -> c
        | None -> bad "malformed CRC trailer %S" trailer)
    | _ -> bad "truncated: missing CRC trailer (last line %S)" trailer
  in
  let body = String.sub raw 0 tl_start in
  let computed = Crc32.string body in
  if computed <> stored then
    bad "CRC mismatch: stored %08x, computed %08x (truncated or corrupted)" stored computed;
  body

let load ~path =
  let parse_raw raw =
    let version =
      let header =
        match String.index_opt raw '\n' with
        | Some i -> String.sub raw 0 i
        | None -> bad "missing header line"
      in
      match String.split_on_char ' ' header with
      | [ "faultmc-dist"; v ] -> (
          match int_of_string_opt v with
          | Some n when n >= 1 && n <= format_version -> n
          | _ -> bad "unsupported faultmc-dist version %S (this binary reads v1-v%d)" v format_version)
      | _ -> bad "not a faultmc-dist checkpoint"
    in
    let body = if version >= 2 then verify_trailer raw else raw in
    let lines = ref (String.split_on_char '\n' body) in
    let next () =
      match !lines with
      | [] | [ "" ] -> bad "truncated checkpoint"
      | l :: rest ->
          lines := rest;
          l
    in
    ignore (next () : string);
    let fp_line = next () in
    let st_fingerprint =
      if String.length fp_line >= 12 && String.sub fp_line 0 12 = "fingerprint " then
        String.sub fp_line 12 (String.length fp_line - 12)
      else bad "expected fingerprint line"
    in
    let count kw =
      match String.split_on_char ' ' (next ()) with
      | [ k; n ] when k = kw -> (
          match int_of_string_opt n with Some i when i >= 0 -> i | _ -> bad "bad %s count" kw)
      | _ -> bad "expected %s line" kw
    in
    let nshards = count "shards" in
    let st_shards =
      List.init nshards (fun _ ->
          match String.split_on_char ' ' (next ()) with
          | [ "shard"; i; n ] -> (
              match (int_of_string_opt i, int_of_string_opt n) with
              | Some i, Some n when n >= 0 ->
                  let buf = Buffer.create 1024 in
                  for _ = 1 to n do
                    Buffer.add_string buf (next ());
                    Buffer.add_char buf '\n'
                  done;
                  (i, Buffer.contents buf)
              | _ -> bad "bad shard header")
          | _ -> bad "expected shard line")
    in
    let nq = count "quarantined" in
    let st_quarantined =
      List.init nq (fun _ ->
          match Campaign.quarantine_entry_of_string (next ()) with
          | Ok e -> e
          | Error m -> bad "quarantine entry: %s" m)
    in
    let st_audit =
      if version < 3 then None
      else
        let na = count "audits" in
        let au_entries =
          List.init na (fun _ ->
              match String.split_on_char ' ' (next ()) with
              | "audit" :: shard :: passed :: digest :: worker ->
                  let au_shard =
                    match int_of_string_opt shard with
                    | Some i when i >= 0 -> i
                    | _ -> bad "bad audit shard"
                  in
                  let au_passed =
                    match passed with
                    | "1" -> true
                    | "0" -> false
                    | _ -> bad "bad audit passed flag"
                  in
                  { au_shard; au_passed; au_digest = digest;
                    au_worker = String.concat " " worker }
              | _ -> bad "expected audit line")
        in
        let nb = count "banned" in
        let au_banned = List.init nb (fun _ -> next ()) in
        Some { au_entries; au_banned }
    in
    if next () <> "end" then bad "missing end marker";
    { st_fingerprint; st_shards; st_quarantined; st_audit }
  in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | raw -> ( match parse_raw raw with s -> Ok s | exception Bad m -> Error m)
  | exception Sys_error m -> Error m
