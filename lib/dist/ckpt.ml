(* Durable coordinator state: the campaign fingerprint plus every
   accepted shard result, written with the same atomic tmp+rename
   discipline and the same embedded serializers (Ssf.Tally.to_string,
   Campaign.quarantine_entry_to_string) as the single-process campaign
   checkpoint. Restoring seeds the lease table's Done set, so a crashed
   coordinator resumes without re-running finished shards — and because
   shard results depend only on (seed, shard), the resumed campaign's
   merged report is still bit-identical. *)

open Fmc

let format_version = 1

type state = {
  st_fingerprint : string;
  st_shards : (int * string) list;  (* ascending shard id, tally blobs *)
  st_quarantined : Campaign.quarantine_entry list;
}

let blob_lines blob =
  match List.rev (String.split_on_char '\n' blob) with
  | "" :: rest -> List.rev rest
  | parts -> List.rev parts

let save ~path state =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "faultmc-dist %d\n" format_version;
      Printf.fprintf oc "fingerprint %s\n" state.st_fingerprint;
      Printf.fprintf oc "shards %d\n" (List.length state.st_shards);
      List.iter
        (fun (i, blob) ->
          let ls = blob_lines blob in
          Printf.fprintf oc "shard %d %d\n" i (List.length ls);
          List.iter (fun l -> output_string oc (l ^ "\n")) ls)
        state.st_shards;
      Printf.fprintf oc "quarantined %d\n" (List.length state.st_quarantined);
      List.iter
        (fun e -> output_string oc (Campaign.quarantine_entry_to_string e ^ "\n"))
        state.st_quarantined;
      output_string oc "end\n";
      flush oc);
  Sys.rename tmp path

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let load ~path =
  let ic = open_in path in
  let next () = try input_line ic with End_of_file -> bad "truncated checkpoint" in
  let parse () =
    (match String.split_on_char ' ' (next ()) with
    | [ "faultmc-dist"; v ] when int_of_string_opt v = Some format_version -> ()
    | _ -> bad "not a faultmc-dist v%d checkpoint" format_version);
    let fp_line = next () in
    let st_fingerprint =
      if String.length fp_line >= 12 && String.sub fp_line 0 12 = "fingerprint " then
        String.sub fp_line 12 (String.length fp_line - 12)
      else bad "expected fingerprint line"
    in
    let count kw =
      match String.split_on_char ' ' (next ()) with
      | [ k; n ] when k = kw -> (
          match int_of_string_opt n with Some i when i >= 0 -> i | _ -> bad "bad %s count" kw)
      | _ -> bad "expected %s line" kw
    in
    let nshards = count "shards" in
    let st_shards =
      List.init nshards (fun _ ->
          match String.split_on_char ' ' (next ()) with
          | [ "shard"; i; n ] -> (
              match (int_of_string_opt i, int_of_string_opt n) with
              | Some i, Some n when n >= 0 ->
                  let buf = Buffer.create 1024 in
                  for _ = 1 to n do
                    Buffer.add_string buf (next ());
                    Buffer.add_char buf '\n'
                  done;
                  (i, Buffer.contents buf)
              | _ -> bad "bad shard header")
          | _ -> bad "expected shard line")
    in
    let nq = count "quarantined" in
    let st_quarantined =
      List.init nq (fun _ ->
          match Campaign.quarantine_entry_of_string (next ()) with
          | Ok e -> e
          | Error m -> bad "quarantine entry: %s" m)
    in
    if next () <> "end" then bad "missing end marker";
    { st_fingerprint; st_shards; st_quarantined }
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> match parse () with s -> Ok s | exception Bad m -> Error m)
