(** Durable coordinator checkpoint: fingerprint + accepted shard results.

    Written atomically ([path ^ ".tmp"] then rename) after every
    accepted shard, embedding the shared [Ssf.Tally.to_string] and
    quarantine-entry serializers, and sealed (since v2) with a
    [crc %08x] CRC-32 trailer so truncation or corruption surfaces as a
    load error instead of a misparse; v1 files (no trailer) still load.
    A restarted coordinator whose checkpoint fingerprint matches its
    campaign resumes with those shards pre-completed; since shard
    results depend only on [(seed, shard)], the final merged report is
    unchanged. *)

open Fmc

val format_version : int
(** 3. An unaudited state ([st_audit = None]) is written as a
    byte-identical v2 file; audit bookkeeping adds v3's trailing
    [audits]/[banned] sections. v1 and v2 files still load. *)

(** One accepted shard's audit bookkeeping: who produced the accepted
    result, its canonical digest, and whether an audit has vindicated
    it. In-flight audit leases are deliberately not persisted — on
    restart a selected, unvindicated shard is due again (the selection
    is a pure function of the fingerprint-derived seed). *)
type audit_entry = {
  au_shard : int;
  au_worker : string;
  au_digest : string;
  au_passed : bool;
}

type audit = {
  au_entries : audit_entry list;  (** ascending shard id *)
  au_banned : string list;  (** quarantined worker names *)
}

type state = {
  st_fingerprint : string;
  st_shards : (int * string) list;
      (** [(shard id, tally blob)], ascending shard id *)
  st_quarantined : Campaign.quarantine_entry list;
  st_audit : audit option;
}

val save : path:string -> state -> unit
val load : path:string -> (state, string) result
