(** Durable coordinator checkpoint: fingerprint + accepted shard results.

    Written atomically ([path ^ ".tmp"] then rename) after every
    accepted shard, embedding the shared [Ssf.Tally.to_string] and
    quarantine-entry serializers, and sealed (since v2) with a
    [crc %08x] CRC-32 trailer so truncation or corruption surfaces as a
    load error instead of a misparse; v1 files (no trailer) still load.
    A restarted coordinator whose checkpoint fingerprint matches its
    campaign resumes with those shards pre-completed; since shard
    results depend only on [(seed, shard)], the final merged report is
    unchanged. *)

open Fmc

val format_version : int

type state = {
  st_fingerprint : string;
  st_shards : (int * string) list;
      (** [(shard id, tally blob)], ascending shard id *)
  st_quarantined : Campaign.quarantine_entry list;
}

val save : path:string -> state -> unit
val load : path:string -> (state, string) result
