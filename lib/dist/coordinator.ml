(* The campaign coordinator: owns the sample plan, leases shards to
   workers, fences stale completions, merges accepted results.

   Concurrency model: one listener loop (the caller's thread) accepting
   connections and sweeping expired leases on a short tick; one thread
   per connection running the request/reply protocol. All shared state
   (lease table, accepted blobs, quarantine log, metrics) lives behind
   one mutex — the critical sections are table lookups and small writes,
   far off the hot path (workers do the actual Monte Carlo work).

   Exactly-once: Lease.complete is the single gate. A Shard_done whose
   epoch is stale is counted, acked negatively and dropped; a duplicate
   of the accepted epoch is acked positively (the worker may have missed
   the first ack) but not re-merged. Since shard results depend only on
   (seed, shard), any accepted result for a shard is THE result. *)

open Fmc
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics

type config = {
  addr : Wire.addr;
  ttl_s : float;  (* lease deadline without a heartbeat *)
  checkpoint_path : string option;
  linger_s : float;  (* keep serving Fetch_report after completion *)
}

let default_config addr =
  { addr; ttl_s = 30.; checkpoint_path = None; linger_s = 5. }

type outcome = {
  oc_shards : (int * string) list;
  oc_quarantined : Campaign.quarantine_entry list;
  oc_elapsed_s : float;
}

(* -- metrics ------------------------------------------------------------ *)

type mx = {
  registry : Metrics.registry option;
  leases_issued : Metrics.counter option;
  leases_expired : Metrics.counter option;
  stale_results : Metrics.counter option;
  shards_completed : Metrics.counter option;
  heartbeats : Metrics.counter option;
  bytes_sent : Metrics.counter option;
  bytes_received : Metrics.counter option;
  in_flight : Metrics.gauge option;
  workers_connected : Metrics.gauge option;
}

let mx_create (obs : Obs.t) =
  match obs.Obs.metrics with
  | None ->
      {
        registry = None;
        leases_issued = None;
        leases_expired = None;
        stale_results = None;
        shards_completed = None;
        heartbeats = None;
        bytes_sent = None;
        bytes_received = None;
        in_flight = None;
        workers_connected = None;
      }
  | Some r ->
      let c ?help name = Some (Metrics.counter r ?help name) in
      let g ?help name = Some (Metrics.gauge r ?help name) in
      {
        registry = Some r;
        leases_issued = c ~help:"shard leases handed out" "fmc_dist_leases_issued_total";
        leases_expired = c ~help:"leases lost to missed heartbeats" "fmc_dist_leases_expired_total";
        stale_results = c ~help:"shard results rejected by epoch fencing" "fmc_dist_stale_results_total";
        shards_completed = c ~help:"shard results accepted into the merge" "fmc_dist_shards_completed_total";
        heartbeats = c ~help:"heartbeats received" "fmc_dist_heartbeats_total";
        bytes_sent = c ~help:"protocol bytes sent" "fmc_dist_bytes_sent_total";
        bytes_received = c ~help:"protocol bytes received" "fmc_dist_bytes_received_total";
        in_flight = g ~help:"shards currently leased" "fmc_dist_shards_in_flight";
        workers_connected = g ~help:"open worker connections" "fmc_dist_workers_connected";
      }

let cinc c = Option.iter Metrics.inc c
let cadd c v = Option.iter (fun c -> Metrics.add c (float_of_int v)) c
let gset g v = Option.iter (fun g -> Metrics.set g (float_of_int v)) g

let sanitize_metric_part s =
  String.map
    (fun ch ->
      match ch with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch | _ -> '_')
    s

(* -- shared state ------------------------------------------------------- *)

type state = {
  mutex : Mutex.t;
  lease : Lease.t;
  blobs : (int, string) Hashtbl.t;
  mutable quarantined : Campaign.quarantine_entry list;  (* reverse arrival *)
  mutable connected : int;
  mutable finished_at : float option;
  started_at : float;
  fingerprint : string;
  config : config;
  mx : mx;
  (* worker -> (last heartbeat time, shard, epoch, samples_done) for the
     per-worker throughput gauge *)
  rates : (string, float * int * int * int) Hashtbl.t;
}

let locked st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

let checkpoint_locked st =
  match st.config.checkpoint_path with
  | None -> ()
  | Some path ->
      let shards =
        Hashtbl.fold (fun i b acc -> (i, b) :: acc) st.blobs []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      in
      Ckpt.save ~path
        {
          Ckpt.st_fingerprint = st.fingerprint;
          st_shards = shards;
          st_quarantined = List.rev st.quarantined;
        }

let sorted_quarantined st =
  List.sort
    (fun a b -> compare a.Campaign.q_index b.Campaign.q_index)
    (List.rev st.quarantined)

let report_msg st =
  let shards =
    Hashtbl.fold (fun i b acc -> (i, b) :: acc) st.blobs []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  Protocol.Report
    {
      shards;
      quarantined = sorted_quarantined st;
      elapsed_s = Unix.gettimeofday () -. st.started_at;
    }

let note_heartbeat_rate st ~worker ~now ~shard ~epoch ~samples_done =
  match st.mx.registry with
  | None -> ()
  | Some r ->
      (match Hashtbl.find_opt st.rates worker with
      | Some (t0, s0, e0, d0)
        when s0 = shard && e0 = epoch && samples_done > d0 && now > t0 ->
          let rate = float_of_int (samples_done - d0) /. (now -. t0) in
          Metrics.set
            (Metrics.gauge r
               ~help:"per-worker throughput from heartbeat deltas"
               ("fmc_dist_worker_samples_per_sec:" ^ sanitize_metric_part worker))
            rate
      | _ -> ());
      Hashtbl.replace st.rates worker (now, shard, epoch, samples_done)

(* -- per-connection protocol -------------------------------------------- *)

exception Done_serving

let handle_msg st ~worker msg =
  let now = Unix.gettimeofday () in
  match (msg : Protocol.client_msg) with
  | Protocol.Hello _ -> Protocol.Reject { reason = "duplicate hello" }
  | Protocol.Request_shard ->
      locked st (fun () ->
          let expired = Lease.sweep st.lease ~now in
          if expired > 0 then cadd st.mx.leases_expired expired;
          let reply =
            match Lease.acquire st.lease ~now ~worker with
            | `Assign { Lease.shard; epoch; start; len } ->
                cinc st.mx.leases_issued;
                Protocol.Assign { shard; epoch; start; len }
            | `Finished -> Protocol.No_work { finished = true }
            | `Wait -> Protocol.No_work { finished = false }
          in
          gset st.mx.in_flight (Lease.in_flight st.lease);
          reply)
  | Protocol.Heartbeat { shard; epoch; samples_done } ->
      locked st (fun () ->
          cinc st.mx.heartbeats;
          match Lease.heartbeat st.lease ~now ~shard ~epoch with
          | `Ok ->
              note_heartbeat_rate st ~worker ~now ~shard ~epoch ~samples_done;
              Protocol.Ack { accepted = true; reason = "" }
          | `Stale -> Protocol.Ack { accepted = false; reason = "lease lost" })
  | Protocol.Shard_done { shard; epoch; tally; quarantined } ->
      locked st (fun () ->
          (* Validate before committing: a blob that does not decode must
             not consume the shard's one accepted completion. *)
          match Ssf.Tally.of_string tally with
          | Error msg ->
              Protocol.Ack { accepted = false; reason = "undecodable tally: " ^ msg }
          | Ok _ -> (
              match Lease.complete st.lease ~shard ~epoch with
              | `Accepted ->
                  Hashtbl.replace st.blobs shard tally;
                  st.quarantined <- List.rev_append quarantined st.quarantined;
                  cinc st.mx.shards_completed;
                  gset st.mx.in_flight (Lease.in_flight st.lease);
                  checkpoint_locked st;
                  if Lease.finished st.lease && st.finished_at = None then
                    st.finished_at <- Some now;
                  Protocol.Ack { accepted = true; reason = "" }
              | `Duplicate -> Protocol.Ack { accepted = true; reason = "duplicate" }
              | `Stale ->
                  cinc st.mx.stale_results;
                  Protocol.Ack { accepted = false; reason = "stale epoch" }
              | `Unknown -> Protocol.Ack { accepted = false; reason = "unknown shard" }))
  | Protocol.Fetch_report ->
      locked st (fun () ->
          if Lease.finished st.lease then report_msg st else Protocol.Report_pending)
  | Protocol.Goodbye -> raise Done_serving

let send conn msg =
  let tag, payload = Protocol.encode_server msg in
  Wire.write_frame conn ~tag payload

let handle_conn st fd =
  let conn =
    Wire.conn fd
      ~on_sent:(fun n -> locked st (fun () -> cadd st.mx.bytes_sent n))
      ~on_recv:(fun n -> locked st (fun () -> cadd st.mx.bytes_received n))
  in
  let finally () =
    Wire.close conn;
    locked st (fun () ->
        st.connected <- st.connected - 1;
        gset st.mx.workers_connected st.connected)
  in
  locked st (fun () ->
      st.connected <- st.connected + 1;
      gset st.mx.workers_connected st.connected);
  Fun.protect ~finally (fun () ->
      try
        (* First frame must be a valid, matching Hello. *)
        let tag, payload = Wire.read_frame conn in
        let worker =
          match Protocol.decode_client tag payload with
          | Ok (Protocol.Hello { version; worker; fingerprint }) ->
              if version <> Protocol.version then begin
                send conn
                  (Protocol.Reject
                     { reason = Printf.sprintf "protocol version %d, want %d" version Protocol.version });
                raise Done_serving
              end
              else if fingerprint <> st.fingerprint then begin
                send conn (Protocol.Reject { reason = "campaign fingerprint mismatch" });
                raise Done_serving
              end
              else begin
                send conn (Protocol.Welcome { version = Protocol.version });
                worker
              end
          | Ok _ | Error _ ->
              send conn (Protocol.Reject { reason = "expected hello" });
              raise Done_serving
        in
        let rec loop () =
          let tag, payload = Wire.read_frame conn in
          (match Protocol.decode_client tag payload with
          | Ok msg -> send conn (handle_msg st ~worker msg)
          | Error msg -> send conn (Protocol.Reject { reason = msg }));
          loop ()
        in
        loop ()
      with Done_serving | Wire.Closed | Unix.Unix_error _ | Sys_error _ -> ())

(* -- the serve loop ----------------------------------------------------- *)

let serve ?(obs = Obs.disabled) config ~fingerprint ~plan =
  if Array.length plan = 0 then invalid_arg "Coordinator.serve: empty plan";
  let lease = Lease.create ~plan ~ttl:config.ttl_s in
  let st =
    {
      mutex = Mutex.create ();
      lease;
      blobs = Hashtbl.create 64;
      quarantined = [];
      connected = 0;
      finished_at = None;
      started_at = Unix.gettimeofday ();
      fingerprint;
      config;
      mx = mx_create obs;
      rates = Hashtbl.create 8;
    }
  in
  (* Resume: pre-complete every checkpointed shard whose fingerprint
     matches. A mismatched checkpoint is a hard error — silently starting
     a different campaign over it would discard durable results. *)
  (match config.checkpoint_path with
  | Some path when Sys.file_exists path -> (
      match Ckpt.load ~path with
      | Error msg -> failwith (Printf.sprintf "corrupt coordinator checkpoint %s: %s" path msg)
      | Ok ck ->
          if ck.Ckpt.st_fingerprint <> fingerprint then
            failwith
              (Printf.sprintf "checkpoint %s belongs to a different campaign (fingerprint mismatch)" path);
          List.iter
            (fun (i, blob) ->
              if i >= 0 && i < Array.length plan then begin
                Hashtbl.replace st.blobs i blob;
                Lease.force_complete st.lease ~shard:i
              end)
            ck.Ckpt.st_shards;
          st.quarantined <- List.rev ck.Ckpt.st_quarantined;
          if Lease.finished st.lease then st.finished_at <- Some st.started_at)
  | _ -> ());
  let sock = Wire.listen config.addr in
  let finally () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    match config.addr with
    | Wire.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Wire.Tcp _ -> ()
  in
  Fun.protect ~finally (fun () ->
      Obs.span obs ~cat:"dist" "serve" (fun () ->
          let running = ref true in
          while !running do
            let readable, _, _ =
              try Unix.select [ sock ] [] [] 0.2
              with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            in
            (match readable with
            | [ _ ] ->
                let fd, _ = Unix.accept sock in
                ignore (Thread.create (fun () -> handle_conn st fd) ())
            | _ -> ());
            let now = Unix.gettimeofday () in
            locked st (fun () ->
                let expired = Lease.sweep st.lease ~now in
                if expired > 0 then cadd st.mx.leases_expired expired;
                gset st.mx.in_flight (Lease.in_flight st.lease);
                match st.finished_at with
                | Some t when now -. t >= config.linger_s && st.connected = 0 -> running := false
                | Some t when now -. t >= 4. *. config.linger_s ->
                    (* Workers that never said goodbye do not hold the
                       coordinator hostage forever. *)
                    running := false
                | _ -> ())
          done));
  locked st (fun () ->
      let shards =
        Hashtbl.fold (fun i b acc -> (i, b) :: acc) st.blobs []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      in
      {
        oc_shards = shards;
        oc_quarantined = sorted_quarantined st;
        oc_elapsed_s = Unix.gettimeofday () -. st.started_at;
      })
