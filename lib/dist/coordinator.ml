(* The campaign coordinator: owns the sample plan, leases shards to
   workers, fences stale completions, merges accepted results.

   Concurrency model: one listener loop (the caller's thread) accepting
   connections and sweeping expired leases on a short tick; one thread
   per connection running the request/reply protocol. All shared state
   (lease table, accepted blobs, quarantine log, worker health, metrics)
   lives behind one mutex — the critical sections are table lookups and
   small writes, far off the hot path (workers do the actual Monte Carlo
   work).

   Exactly-once: Lease.complete is the single gate. A Shard_done whose
   epoch is stale is counted, acked negatively and dropped; a duplicate
   of the accepted epoch is acked positively (the worker may have missed
   the first ack) but not re-merged. Since shard results depend only on
   (seed, shard), any accepted result for a shard is THE result.

   Graceful degradation: every post-Hello connection is attributed to a
   worker name, and a per-worker circuit breaker accumulates protocol
   errors, corrupt frames and heartbeat-gap lease expiries. A tripped
   breaker answers that worker's frames (and re-Hellos) with Retry_later
   for a cooldown window while the campaign continues on healthy
   workers; an optional fleet floor (require_workers) pauses leasing —
   visible on the fmc_dist_leasing_paused gauge — rather than spinning
   shards onto a collapsed fleet. All time reads go through the
   Fmc_obs.Clock seam so tests can drive the sweep with a fake clock. *)

open Fmc
module Audit = Fmc_audit.Audit
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics
module Clock = Fmc_obs.Clock
module Span = Fmc_obs.Span
module Rate = Fmc_obs.Rate
module Fleet = Fmc_obs.Fleet
module Telemetry = Fmc_obs.Telemetry
module Traceid = Fmc_obs.Traceid

type config = {
  addr : Wire.addr;
  ttl_s : float;  (* lease deadline without a heartbeat *)
  checkpoint_path : string option;
  linger_s : float;  (* keep serving Fetch_report after completion *)
  io_deadline_s : float;  (* per-connection socket read/write deadline *)
  require_workers : int;  (* pause leasing below this many connected workers *)
  max_idle_s : float;  (* give up when unfinished and workerless this long; 0 = wait forever *)
  breaker : Breaker.config;  (* per-worker circuit breaker *)
  audit_rate : float;  (* fraction of accepted shards re-executed for audit; 0 = off *)
  speculate_factor : float;
      (* duplicate a shard when its holder's projected time exceeds this
         multiple of the fleet's per-shard EWMA; 0 = off *)
}

let default_config addr =
  {
    addr;
    ttl_s = 30.;
    checkpoint_path = None;
    linger_s = 5.;
    io_deadline_s = 120.;
    require_workers = 0;
    max_idle_s = 0.;
    breaker = Breaker.default_config;
    audit_rate = 0.;
    speculate_factor = 0.;
  }

type outcome = {
  oc_shards : (int * string) list;
  oc_quarantined : Campaign.quarantine_entry list;
  oc_elapsed_s : float;
}

(* -- fleet view (scrape endpoint surface) -------------------------------- *)

type health = {
  h_finished : bool;
  h_shards_done : int;
  h_shards_total : int;
  h_in_flight : int;
  h_connected : int;
  h_healthy_workers : int;
  h_breakers_open : int;
  h_leasing_paused : bool;
  h_audits_pending : int;
  h_quarantined_workers : int;
}

type worker_view = {
  w_name : string;
  w_breaker : Breaker.state;
  w_rate : float;
  w_connections : int;
  w_last_wall : float;
  w_spans : int;
  w_quarantined : bool;
  w_mismatches : int;
}

type view = {
  vw_fingerprint : string;
  vw_trace_id : string;
  vw_metrics : unit -> string;
  vw_health : unit -> health;
  vw_status : unit -> Protocol.status_entry;
  vw_workers : unit -> worker_view list;
  vw_trace_json : unit -> string;
}

(* -- metrics ------------------------------------------------------------ *)

type mx = {
  registry : Metrics.registry option;
  leases_issued : Metrics.counter option;
  leases_expired : Metrics.counter option;
  stale_results : Metrics.counter option;
  shards_completed : Metrics.counter option;
  heartbeats : Metrics.counter option;
  bytes_sent : Metrics.counter option;
  bytes_received : Metrics.counter option;
  frames_corrupt : Metrics.counter option;
  breaker_trips : Metrics.counter option;
  in_flight : Metrics.gauge option;
  workers_connected : Metrics.gauge option;
  circuit_open : Metrics.gauge option;
  leasing_paused : Metrics.gauge option;
  roundtrip : Metrics.histogram option;
  audit_mismatches : Metrics.counter option;
  audit_audits : Metrics.counter option;
  audit_disputes : Metrics.counter option;
  audit_invalidated : Metrics.counter option;
  audit_speculations : Metrics.counter option;
  audit_quarantined : Metrics.gauge option;
}

let roundtrip_buckets = [| 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 30.; 60.; 120. |]

let mx_create (obs : Obs.t) =
  match obs.Obs.metrics with
  | None ->
      {
        registry = None;
        leases_issued = None;
        leases_expired = None;
        stale_results = None;
        shards_completed = None;
        heartbeats = None;
        bytes_sent = None;
        bytes_received = None;
        frames_corrupt = None;
        breaker_trips = None;
        in_flight = None;
        workers_connected = None;
        circuit_open = None;
        leasing_paused = None;
        roundtrip = None;
        audit_mismatches = None;
        audit_audits = None;
        audit_disputes = None;
        audit_invalidated = None;
        audit_speculations = None;
        audit_quarantined = None;
      }
  | Some r ->
      let c ?help name = Some (Metrics.counter r ?help name) in
      let g ?help name = Some (Metrics.gauge r ?help name) in
      {
        registry = Some r;
        leases_issued = c ~help:"shard leases handed out" "fmc_dist_leases_issued_total";
        leases_expired = c ~help:"leases lost to missed heartbeats" "fmc_dist_leases_expired_total";
        stale_results = c ~help:"shard results rejected by epoch fencing" "fmc_dist_stale_results_total";
        shards_completed = c ~help:"shard results accepted into the merge" "fmc_dist_shards_completed_total";
        heartbeats = c ~help:"heartbeats received" "fmc_dist_heartbeats_total";
        bytes_sent = c ~help:"protocol bytes sent" "fmc_dist_bytes_sent_total";
        bytes_received = c ~help:"protocol bytes received" "fmc_dist_bytes_received_total";
        frames_corrupt =
          c ~help:"frames dropped for CRC or framing violations" "fmc_dist_frames_corrupt_total";
        breaker_trips =
          c ~help:"circuit-breaker open transitions" "fmc_dist_breaker_opened_total";
        in_flight = g ~help:"shards currently leased" "fmc_dist_shards_in_flight";
        workers_connected = g ~help:"open worker connections" "fmc_dist_workers_connected";
        circuit_open = g ~help:"workers behind an open circuit breaker" "fmc_dist_circuit_open";
        leasing_paused =
          g ~help:"1 while leasing is paused below the require-workers floor"
            "fmc_dist_leasing_paused";
        roundtrip =
          Some
            (Metrics.histogram r ~help:"assign-to-accepted latency per shard"
               ~buckets:roundtrip_buckets "fmc_dist_shard_roundtrip_seconds");
        audit_mismatches =
          c ~help:"shard results whose digest did not match the payload"
            "fmc_audit_mismatches_total";
        audit_audits = c ~help:"audit re-executions leased" "fmc_audit_audits_total";
        audit_disputes =
          c ~help:"audits escalated to a third arbitrating execution"
            "fmc_audit_disputes_total";
        audit_invalidated =
          c ~help:"accepted shards invalidated by a quarantine verdict"
            "fmc_audit_invalidated_total";
        audit_speculations =
          c ~help:"speculative duplicate leases opened on stragglers"
            "fmc_audit_speculations_total";
        audit_quarantined =
          g ~help:"workers quarantined by the result audit" "fmc_audit_quarantined_workers";
      }

let cinc c = Option.iter Metrics.inc c
let cadd c v = Option.iter (fun c -> Metrics.add c (float_of_int v)) c
let gset g v = Option.iter (fun g -> Metrics.set g (float_of_int v)) g

let sanitize_metric_part s =
  String.map
    (fun ch ->
      match ch with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch | _ -> '_')
    s

(* -- shared state ------------------------------------------------------- *)

type state = {
  mutex : Mutex.t;
  lease : Lease.t;
  plan : (int * int) array;
  blobs : (int, string) Hashtbl.t;
  (* per-shard quarantine entries, so invalidating a liar's shard also
     retracts the quarantine lines it reported *)
  quarantines : (int, Campaign.quarantine_entry list) Hashtbl.t;
  mutable audit : Audit.t;  (* replaced wholesale on checkpoint resume *)
  mutable quarantined_workers : string list;
  (* worker -> digest mismatches; repeat offenders are quarantined even
     without an audit verdict *)
  mismatches : (string, int) Hashtbl.t;
  mutable shard_ewma : float option;  (* EWMA of accepted shard roundtrips *)
  mutable connected : int;
  mutable finished_at : float option;
  mutable last_worker_at : float;  (* most recent moment a connection was open *)
  started_at : float;
  fingerprint : string;
  trace_id : string;  (* Traceid.trace_id of the fingerprint *)
  config : config;
  mx : mx;
  fleet : Fleet.t;  (* absorbed v4 worker telemetry; has its own lock *)
  rate : Rate.t;  (* accepted samples/sec, for /campaigns progress *)
  (* shard -> (epoch, assign time) for the roundtrip histogram; replaced
     when an expired lease is re-issued under a bumped epoch *)
  assigned : (int, int * float) Hashtbl.t;
  (* worker -> (last heartbeat time, shard, epoch, samples_done) for the
     per-worker throughput gauge *)
  rates : (string, float * int * int * int) Hashtbl.t;
  (* worker -> circuit breaker; entries are created on first sighting
     and live for the whole campaign (a worker's bad reputation survives
     its reconnects). *)
  health : (string, Breaker.t) Hashtbl.t;
  (* worker -> live post-Hello connection count, for the fleet floor *)
  conn_workers : (string, int) Hashtbl.t;
}

let locked st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

let sorted_quarantined st =
  Hashtbl.fold (fun _ es acc -> List.rev_append es acc) st.quarantines []
  |> List.sort (fun a b -> compare a.Campaign.q_index b.Campaign.q_index)

let audit_enabled st = Audit.rate st.audit > 0.

let checkpoint_locked st =
  match st.config.checkpoint_path with
  | None -> ()
  | Some path ->
      let shards =
        Hashtbl.fold (fun i b acc -> (i, b) :: acc) st.blobs []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      in
      let st_audit =
        (* Audit off writes the pre-v3 byte-identical checkpoint. *)
        if not (audit_enabled st) && st.quarantined_workers = [] then None
        else
          Some
            {
              Ckpt.au_entries =
                List.map
                  (fun (e : Audit.entry) ->
                    {
                      Ckpt.au_shard = e.Audit.au_shard;
                      au_worker = e.Audit.au_worker;
                      au_digest = e.Audit.au_digest;
                      au_passed = e.Audit.au_passed;
                    })
                  (Audit.export st.audit);
              au_banned = List.rev st.quarantined_workers;
            }
      in
      Ckpt.save ~path
        {
          Ckpt.st_fingerprint = st.fingerprint;
          st_shards = shards;
          st_quarantined = sorted_quarantined st;
          st_audit;
        }

let report_msg st =
  let shards =
    Hashtbl.fold (fun i b acc -> (i, b) :: acc) st.blobs []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  Protocol.Report
    {
      shards;
      quarantined = sorted_quarantined st;
      elapsed_s = Clock.now () -. st.started_at;
    }

(* -- worker health (call under the lock) -------------------------------- *)

let breaker_for st worker =
  match Hashtbl.find_opt st.health worker with
  | Some b -> b
  | None ->
      let b = Breaker.create st.config.breaker in
      Hashtbl.add st.health worker b;
      b

let open_breakers st ~now =
  Hashtbl.fold
    (fun _ b n -> if Breaker.state b ~now = Breaker.Open then n + 1 else n)
    st.health 0

let refresh_circuit_gauge st ~now = gset st.mx.circuit_open (open_breakers st ~now)

let note_worker_failure st ~worker ~now =
  let b = breaker_for st worker in
  let trips_before = Breaker.trips b in
  Breaker.record_failure b ~now;
  if Breaker.trips b > trips_before then cinc st.mx.breaker_trips;
  refresh_circuit_gauge st ~now

let note_worker_success st ~worker ~now =
  Breaker.record_success (breaker_for st worker) ~now;
  refresh_circuit_gauge st ~now

(* Distinct worker names with a live connection and no open breaker —
   the population the require_workers floor is measured against. *)
let healthy_workers st ~now =
  Hashtbl.fold
    (fun worker refs n ->
      if refs > 0 && Breaker.state (breaker_for st worker) ~now <> Breaker.Open then n + 1
      else n)
    st.conn_workers 0

let leasing_pause st ~now =
  let paused =
    st.config.require_workers > 0 && healthy_workers st ~now < st.config.require_workers
  in
  gset st.mx.leasing_paused (if paused then 1 else 0);
  paused

let sweep_locked st ~now =
  let expired = Lease.sweep_expired st.lease ~now in
  if expired <> [] then begin
    cadd st.mx.leases_expired (List.length expired);
    (* A heartbeat gap big enough to lose the lease is a health event
       for the worker that was holding it. *)
    List.iter (fun (_, worker) -> note_worker_failure st ~worker ~now) expired
  end;
  ignore (Audit.sweep st.audit ~now : int);
  gset st.mx.in_flight (Lease.in_flight st.lease)

(* -- result auditing (call under the lock) ------------------------------- *)

let campaign_finished st = Lease.finished st.lease && Audit.finished st.audit

let maybe_finish st ~now =
  if campaign_finished st then begin
    if st.finished_at = None then st.finished_at <- Some now
  end
  else st.finished_at <- None

let is_quarantined st worker = List.mem worker st.quarantined_workers

(* A proven liar: force its breaker open, remember it for the rest of
   the campaign (breakers half-open after cooldown; quarantine does
   not), throw away every accepted-but-unvindicated result it produced
   and put those shards back up for honest re-execution. *)
let quarantine_worker st ~now worker =
  if worker <> "" && not (is_quarantined st worker) then begin
    st.quarantined_workers <- worker :: st.quarantined_workers;
    let b = breaker_for st worker in
    if Breaker.state b ~now <> Breaker.Open then cinc st.mx.breaker_trips;
    Breaker.trip b ~now;
    gset st.mx.audit_quarantined (List.length st.quarantined_workers);
    refresh_circuit_gauge st ~now;
    let victims = Audit.victims st.audit ~worker in
    List.iter
      (fun shard ->
        Hashtbl.remove st.blobs shard;
        Hashtbl.remove st.quarantines shard;
        Audit.invalidate st.audit ~shard;
        Lease.reopen st.lease ~shard)
      victims;
    cadd st.mx.audit_invalidated (List.length victims);
    ignore (Lease.release_worker st.lease ~worker : int list);
    gset st.mx.in_flight (Lease.in_flight st.lease);
    maybe_finish st ~now
  end

let note_digest_mismatch st ~worker ~now =
  cinc st.mx.audit_mismatches;
  cinc st.mx.frames_corrupt;
  note_worker_failure st ~worker ~now;
  let n = 1 + Option.value (Hashtbl.find_opt st.mismatches worker) ~default:0 in
  Hashtbl.replace st.mismatches worker n;
  (* Three strikes: repeated mismatches are not line noise. *)
  if n >= 3 then quarantine_worker st ~now worker

(* Offer an audit re-execution to an otherwise idle worker. The audited
   shard stays Done in the lease table; the re-run rides a fresh epoch
   from the same fence, so its completion can never be mistaken for a
   primary result. *)
let audit_offer st ~worker ~now =
  let allow_self = healthy_workers st ~now <= 1 in
  match Audit.next_due st.audit ~worker ~allow_self with
  | None -> None
  | Some shard ->
      let epoch = Lease.bump_epoch st.lease ~shard in
      Audit.lease st.audit ~shard ~auditor:worker ~epoch ~now;
      cinc st.mx.audit_audits;
      Hashtbl.replace st.assigned shard (epoch, now);
      let start, len = Lease.range st.lease ~shard in
      Some (Protocol.Assign { shard; epoch; start; len })

(* Speculatively duplicate the worst straggler: a leased shard whose
   holder's projected completion time exceeds k x the fleet's per-shard
   EWMA (projected from heartbeat progress when we have it, lease age
   otherwise). First valid completion wins; the loser fences. *)
let speculate_offer st ~worker ~now =
  let k = st.config.speculate_factor in
  match st.shard_ewma with
  | Some mean when k > 0. && mean > 0. && not (is_quarantined st worker) ->
      let candidate = ref None in
      Hashtbl.iter
        (fun shard (epoch, t0) ->
          match Lease.holder st.lease ~shard with
          | Some holder when holder <> worker && not (is_quarantined st holder) ->
              let age = now -. t0 in
              let projected =
                match Hashtbl.find_opt st.rates holder with
                | Some (_, s, e, samples_done)
                  when s = shard && e = epoch && samples_done > 0
                       && shard >= 0
                       && shard < Array.length st.plan ->
                    age *. float_of_int (snd st.plan.(shard))
                    /. float_of_int samples_done
                | _ -> age
              in
              if projected > k *. mean then (
                match !candidate with
                | Some (_, worst) when worst >= projected -> ()
                | _ -> candidate := Some (shard, projected))
          | _ -> ())
        st.assigned;
      Option.bind !candidate (fun (shard, _) ->
          match Lease.speculate st.lease ~now ~shard ~worker with
          | Some { Lease.shard; epoch; start; len } ->
              cinc st.mx.audit_speculations;
              Some (Protocol.Assign { shard; epoch; start; len })
          | None -> None)
  | _ -> None

let note_heartbeat_rate st ~worker ~now ~shard ~epoch ~samples_done =
  match st.mx.registry with
  | None -> ()
  | Some r ->
      (match Hashtbl.find_opt st.rates worker with
      | Some (t0, s0, e0, d0)
        when s0 = shard && e0 = epoch && samples_done > d0 && now > t0 ->
          let rate = float_of_int (samples_done - d0) /. (now -. t0) in
          Metrics.set
            (Metrics.gauge r
               ~help:"per-worker throughput from heartbeat deltas"
               ("fmc_dist_worker_samples_per_sec:" ^ sanitize_metric_part worker))
            rate
      | _ -> ());
      Hashtbl.replace st.rates worker (now, shard, epoch, samples_done)

(* -- per-connection protocol -------------------------------------------- *)

exception Done_serving

let handle_msg st ~worker ~digest msg =
  let now = Clock.now () in
  match (msg : Protocol.client_msg) with
  | Protocol.Hello _ -> Protocol.Reject { reason = "duplicate hello" }
  | Protocol.Request_shard ->
      locked st (fun () ->
          sweep_locked st ~now;
          if leasing_pause st ~now || is_quarantined st worker then
            Protocol.No_work { finished = false }
          else
            let reply =
              match Lease.acquire st.lease ~now ~worker with
              | `Assign { Lease.shard; epoch; start; len } ->
                  cinc st.mx.leases_issued;
                  Hashtbl.replace st.assigned shard (epoch, now);
                  Protocol.Assign { shard; epoch; start; len }
              | (`Finished | `Wait) as r -> (
                  (* No primary work: offer an audit re-execution, then
                     a speculative duplicate of the worst straggler. *)
                  match audit_offer st ~worker ~now with
                  | Some assign -> assign
                  | None -> (
                      match
                        if r = `Wait then speculate_offer st ~worker ~now else None
                      with
                      | Some assign -> assign
                      | None -> Protocol.No_work { finished = campaign_finished st }))
            in
            gset st.mx.in_flight (Lease.in_flight st.lease);
            reply)
  | Protocol.Heartbeat { shard; epoch; samples_done } ->
      locked st (fun () ->
          cinc st.mx.heartbeats;
          if Audit.heartbeat st.audit ~shard ~epoch ~now then begin
            note_worker_success st ~worker ~now;
            Protocol.Ack { accepted = true; reason = "" }
          end
          else
            match Lease.heartbeat st.lease ~now ~shard ~epoch with
            | `Ok ->
                note_worker_success st ~worker ~now;
                note_heartbeat_rate st ~worker ~now ~shard ~epoch ~samples_done;
                Protocol.Ack { accepted = true; reason = "" }
            | `Stale -> Protocol.Ack { accepted = false; reason = "lease lost" })
  | Protocol.Shard_done { shard; epoch; tally; quarantined } ->
      locked st (fun () ->
          (* The canonical digest of what actually arrived. Checked
             against the worker's claim before anything is committed:
             a mismatch means the payload was corrupted or forged
             between tallying and framing, and is charged like a
             corrupt frame. *)
          let computed = Audit.Check.result_digest ~tally ~quarantined in
          match digest with
          | Some d when d <> computed ->
              note_digest_mismatch st ~worker ~now;
              Audit.release st.audit ~shard ~epoch;
              Lease.release st.lease ~shard ~epoch;
              Protocol.Ack { accepted = false; reason = "result digest mismatch" }
          | _ -> (
              (* Validate before committing: a blob that does not decode
                 must not consume the shard's one accepted completion. *)
              match Ssf.Tally.of_string tally with
              | Error msg ->
                  note_worker_failure st ~worker ~now;
                  Protocol.Ack { accepted = false; reason = "undecodable tally: " ^ msg }
              | Ok _ when Audit.audit_epoch st.audit ~shard ~epoch -> (
                  match
                    Audit.complete st.audit ~shard ~epoch ~worker ~digest:computed
                  with
                  | `Pass ->
                      note_worker_success st ~worker ~now;
                      checkpoint_locked st;
                      maybe_finish st ~now;
                      Protocol.Ack { accepted = true; reason = "audit pass" }
                  | `Dispute ->
                      (* Somebody is lying, but we cannot yet say who:
                         a third execution arbitrates. *)
                      cinc st.mx.audit_disputes;
                      Protocol.Ack { accepted = true; reason = "audit dispute" }
                  | `Verdict { Audit.vd_liars; vd_replace } ->
                      if vd_replace then begin
                        (* The accepted primary was the lie; the
                           arriving majority result replaces it. *)
                        Hashtbl.replace st.blobs shard tally;
                        Hashtbl.replace st.quarantines shard quarantined
                      end;
                      List.iter (quarantine_worker st ~now) vd_liars;
                      if not (List.mem worker vd_liars) then
                        note_worker_success st ~worker ~now;
                      checkpoint_locked st;
                      maybe_finish st ~now;
                      Protocol.Ack { accepted = true; reason = "audit verdict" }
                  | `Stale ->
                      cinc st.mx.stale_results;
                      Protocol.Ack { accepted = false; reason = "stale epoch" })
              | Ok _ -> (
                  match Lease.complete st.lease ~shard ~epoch with
                  | `Accepted ->
                      Hashtbl.replace st.blobs shard tally;
                      Hashtbl.replace st.quarantines shard quarantined;
                      cinc st.mx.shards_completed;
                      (match Hashtbl.find_opt st.assigned shard with
                      | Some (e, t0) when e = epoch ->
                          let dt = Float.max 0. (now -. t0) in
                          Option.iter (fun h -> Metrics.observe h dt) st.mx.roundtrip;
                          st.shard_ewma <-
                            Some
                              (match st.shard_ewma with
                              | Some m -> (0.7 *. m) +. (0.3 *. dt)
                              | None -> dt);
                          Hashtbl.remove st.assigned shard
                      | _ -> ());
                      if shard >= 0 && shard < Array.length st.plan then
                        Rate.observe st.rate ~now (float_of_int (snd st.plan.(shard)));
                      note_worker_success st ~worker ~now;
                      ignore
                        (Audit.note_accept st.audit ~shard ~worker ~digest:computed
                          : bool);
                      gset st.mx.in_flight (Lease.in_flight st.lease);
                      checkpoint_locked st;
                      maybe_finish st ~now;
                      Protocol.Ack { accepted = true; reason = "" }
                  | `Duplicate -> Protocol.Ack { accepted = true; reason = "duplicate" }
                  | `Stale ->
                      cinc st.mx.stale_results;
                      Protocol.Ack { accepted = false; reason = "stale epoch" }
                  | `Unknown -> Protocol.Ack { accepted = false; reason = "unknown shard" })))
  | Protocol.Fetch_report ->
      locked st (fun () ->
          if campaign_finished st then report_msg st else Protocol.Report_pending)
  | Protocol.Goodbye -> raise Done_serving
  | Protocol.Submit _ | Protocol.Status_req _ | Protocol.Cancel _ | Protocol.Job_heartbeat _
  | Protocol.Job_done _ ->
      (* Scheduler-only traffic; this is a single-campaign coordinator. *)
      Protocol.Reject { reason = "not a scheduler (single-campaign serve)" }

let send ?ext conn msg =
  let tag, payload = Protocol.encode_server_ext ?ext msg in
  Wire.write_frame conn ~tag payload

(* Outside the state mutex: the fleet store has its own lock and the
   blob decode is pure. Telemetry is observation-only — an undecodable
   blob is dropped, never an error the worker sees. *)
let absorb_telemetry st ~worker (ext : Protocol.extension) =
  match ext.Protocol.ext_telemetry with
  | None -> ()
  | Some blob -> (
      match Telemetry.decode blob with
      | Ok tm -> Fleet.absorb st.fleet ~worker tm
      | Error _ -> ())

(* The first frame must be a valid, matching v2 Hello. Corrupt first
   frames are sniffed for a legacy v1 Hello so old workers get a
   rejection they can decode instead of a silent hangup; a worker behind
   an open circuit breaker is parked with Retry_later. Returns the
   worker name and the negotiated protocol version, or raises
   Done_serving after answering. *)
let expect_hello st conn =
  let reject reason =
    send conn (Protocol.Reject { reason });
    raise Done_serving
  in
  match Wire.read_frame_raw conn with
  | `Corrupt (tag, raw) -> (
      locked st (fun () -> cinc st.mx.frames_corrupt);
      match Protocol.v1_hello ~tag raw with
      | Some v ->
          let _, payload =
            Protocol.encode_server
              (Protocol.Reject
                 {
                   reason =
                     Printf.sprintf
                       "protocol version %d is no longer supported: this coordinator speaks \
                        v%d (frames carry CRC-32 trailers); upgrade the worker"
                       v Protocol.version;
                 })
          in
          Wire.write_frame_v1 conn ~tag:'X' payload;
          raise Done_serving
      | None -> raise Done_serving)
  | `Ok (tag, payload) -> (
      match Protocol.decode_client tag payload with
      | Ok (Protocol.Hello { version; worker; fingerprint }) ->
          if not (Protocol.accepts_version version) then
            reject
              (Printf.sprintf "protocol version %d, want %d" version Protocol.version)
          else if fingerprint <> st.fingerprint then
            reject "campaign fingerprint mismatch"
          else if locked st (fun () -> is_quarantined st worker) then
            reject "worker quarantined: failed result audit"
          else begin
            let now = Clock.now () in
            let admitted =
              locked st (fun () ->
                  let b = breaker_for st worker in
                  if Breaker.allow b ~now then Ok ()
                  else Error (Float.max 0.1 (Breaker.cooldown_remaining b ~now)))
            in
            match admitted with
            | Error cooldown_s ->
                send conn (Protocol.Retry_later { cooldown_s });
                raise Done_serving
            | Ok () ->
                let negotiated = Protocol.negotiate ~peer:version in
                send conn (Protocol.Welcome { version = negotiated });
                (worker, negotiated)
          end
      | Ok _ | Error _ -> reject "expected hello")

let handle_conn st fd =
  let conn =
    Wire.conn fd ~deadline_s:st.config.io_deadline_s
      ~on_sent:(fun n -> locked st (fun () -> cadd st.mx.bytes_sent n))
      ~on_recv:(fun n -> locked st (fun () -> cadd st.mx.bytes_received n))
  in
  let worker_name = ref None in
  let finally () =
    Wire.close conn;
    locked st (fun () ->
        st.connected <- st.connected - 1;
        gset st.mx.workers_connected st.connected;
        match !worker_name with
        | None -> ()
        | Some w ->
            let refs = Option.value (Hashtbl.find_opt st.conn_workers w) ~default:1 in
            Hashtbl.replace st.conn_workers w (refs - 1))
  in
  locked st (fun () ->
      st.connected <- st.connected + 1;
      gset st.mx.workers_connected st.connected);
  Fun.protect ~finally (fun () ->
      try
        let worker, negotiated = expect_hello st conn in
        worker_name := Some worker;
        locked st (fun () ->
            let refs = Option.value (Hashtbl.find_opt st.conn_workers worker) ~default:0 in
            Hashtbl.replace st.conn_workers worker (refs + 1));
        let rec loop () =
          (match Wire.read_frame_raw conn with
          | `Corrupt _ ->
              (* Framing survived (the length word is checksummed by
                 construction of the read), but the content cannot be
                 trusted; charge the worker, answer with a typed
                 Retry_later so it knows to reconnect, and hang up. *)
              let now = Clock.now () in
              let cooldown_s =
                locked st (fun () ->
                    cinc st.mx.frames_corrupt;
                    note_worker_failure st ~worker ~now;
                    Float.max 0.05
                      (Breaker.cooldown_remaining (breaker_for st worker) ~now))
              in
              send conn (Protocol.Retry_later { cooldown_s });
              raise Done_serving
          | `Ok (tag, payload) -> (
              match Protocol.decode_client_ext tag payload with
              | Ok (msg, ext) ->
                  if negotiated >= 4 then absorb_telemetry st ~worker ext;
                  if locked st (fun () -> is_quarantined st worker) then begin
                    (* A quarantine verdict mid-connection: terminal
                       reject, not Retry_later — the worker must not
                       come back. *)
                    send conn
                      (Protocol.Reject
                         { reason = "worker quarantined: failed result audit" });
                    raise Done_serving
                  end;
                  let reply = handle_msg st ~worker ~digest:ext.Protocol.ext_digest msg in
                  let ext =
                    match reply with
                    | Protocol.Assign { shard; _ } when negotiated >= 4 ->
                        {
                          Protocol.no_extension with
                          Protocol.ext_trace =
                            Some
                              ( st.trace_id,
                                Traceid.span_id ~fingerprint:st.fingerprint ~shard );
                        }
                    | _ -> Protocol.no_extension
                  in
                  send ~ext conn reply
              | Error msg ->
                  let now = Clock.now () in
                  locked st (fun () -> note_worker_failure st ~worker ~now);
                  send conn (Protocol.Reject { reason = msg })));
          loop ()
        in
        loop ()
      with
      | Done_serving | Wire.Closed | Wire.Protocol_error _ | Wire.Timeout
      | Unix.Unix_error _ | Sys_error _
      ->
        ())

(* -- the fleet view ------------------------------------------------------ *)

let samples_total plan = Array.fold_left (fun acc (_, len) -> acc + len) 0 plan

let make_view st (obs : Obs.t) =
  let base_snapshot () =
    match st.mx.registry with None -> [] | Some r -> Metrics.snapshot r
  in
  let vw_metrics () =
    Metrics.to_prometheus (Fleet.merged_snapshot st.fleet ~base:(base_snapshot ()))
  in
  let vw_health () =
    let now = Clock.now () in
    locked st (fun () ->
        {
          h_finished = campaign_finished st;
          h_shards_done = Lease.completed st.lease;
          h_shards_total = Lease.total st.lease;
          h_in_flight = Lease.in_flight st.lease;
          h_connected = st.connected;
          h_healthy_workers = healthy_workers st ~now;
          h_breakers_open = open_breakers st ~now;
          h_leasing_paused = leasing_pause st ~now;
          h_audits_pending = Audit.pending st.audit;
          h_quarantined_workers = List.length st.quarantined_workers;
        })
  in
  let vw_status () =
    let now = Clock.now () in
    locked st (fun () ->
        let total = samples_total st.plan in
        let done_ =
          Hashtbl.fold
            (fun i _ acc ->
              if i >= 0 && i < Array.length st.plan then acc + snd st.plan.(i) else acc)
            st.blobs 0
        in
        let finished = campaign_finished st in
        {
          Protocol.st_fingerprint = st.fingerprint;
          st_state = (if finished then Protocol.Finished else Protocol.Running);
          st_position = 0;
          st_queue_len = 1;
          st_samples_done = done_;
          st_samples_total = total;
          st_rate = Rate.per_sec st.rate ~now;
          st_eta_s =
            (if finished then 0.
             else
               match Rate.eta_s st.rate ~now ~remaining:(total - done_) with
               | Some s -> s
               | None -> -1.);
          st_detail = "";
        })
  in
  let vw_workers () =
    let now = Clock.now () in
    let fleet = Fleet.workers st.fleet in
    let base = base_snapshot () in
    let rate_of w =
      match
        Metrics.find base ("fmc_dist_worker_samples_per_sec:" ^ sanitize_metric_part w)
      with
      | Some (Metrics.Gauge v) -> v
      | _ -> 0.
    in
    locked st (fun () ->
        (* Every name the coordinator has seen by any channel:
           connections, breakers, absorbed telemetry. *)
        let names = Hashtbl.create 8 in
        Hashtbl.iter (fun w _ -> Hashtbl.replace names w ()) st.conn_workers;
        Hashtbl.iter (fun w _ -> Hashtbl.replace names w ()) st.health;
        List.iter (fun (w, _) -> Hashtbl.replace names w ()) fleet;
        Hashtbl.fold (fun w () acc -> w :: acc) names []
        |> List.sort compare
        |> List.map (fun w ->
               let info = List.assoc_opt w fleet in
               {
                 w_name = w;
                 w_breaker =
                   (match Hashtbl.find_opt st.health w with
                   | Some b -> Breaker.state b ~now
                   | None -> Breaker.Closed);
                 w_rate = rate_of w;
                 w_connections =
                   Option.value (Hashtbl.find_opt st.conn_workers w) ~default:0;
                 w_last_wall =
                   (match info with Some i -> i.Fleet.wi_last_wall | None -> 0.);
                 w_spans =
                   (match info with Some i -> i.Fleet.wi_span_count | None -> 0);
                 w_quarantined = is_quarantined st w;
                 w_mismatches =
                   Option.value (Hashtbl.find_opt st.mismatches w) ~default:0;
               }))
  in
  let vw_trace_json () =
    let own_events =
      match obs.Obs.tracer with Some tr -> Span.events tr | None -> []
    in
    Fleet.to_chrome_json ~own_label:"coordinator" ~own_events st.fleet
  in
  {
    vw_fingerprint = st.fingerprint;
    vw_trace_id = st.trace_id;
    vw_metrics;
    vw_health;
    vw_status;
    vw_workers;
    vw_trace_json;
  }

(* -- the serve loop ----------------------------------------------------- *)

(* The audit selection seed: any stable function of the fingerprint
   works; CRC-32 keeps it cheap and dependency-free. Engine sample
   streams never see this seed, so auditing cannot perturb results. *)
let audit_seed ~fingerprint = Int64.of_int (Crc32.string fingerprint)

let serve ?(obs = Obs.disabled) ?on_view config ~fingerprint ~plan =
  if Array.length plan = 0 then invalid_arg "Coordinator.serve: empty plan";
  if config.require_workers < 0 then
    invalid_arg "Coordinator.serve: negative require_workers";
  if config.audit_rate < 0. || config.audit_rate > 1. then
    invalid_arg "Coordinator.serve: audit_rate outside [0,1]";
  if config.speculate_factor < 0. then
    invalid_arg "Coordinator.serve: negative speculate_factor";
  let lease = Lease.create ~plan ~ttl:config.ttl_s in
  let audit =
    Audit.create
      {
        Audit.rate = config.audit_rate;
        seed = audit_seed ~fingerprint;
        ttl_s = config.ttl_s;
      }
      ~nshards:(Array.length plan)
  in
  let st =
    {
      mutex = Mutex.create ();
      lease;
      plan;
      blobs = Hashtbl.create 64;
      quarantines = Hashtbl.create 64;
      audit;
      quarantined_workers = [];
      mismatches = Hashtbl.create 8;
      shard_ewma = None;
      connected = 0;
      finished_at = None;
      last_worker_at = Clock.now ();
      started_at = Clock.now ();
      fingerprint;
      trace_id = Traceid.trace_id ~fingerprint;
      config;
      mx = mx_create obs;
      fleet = Fleet.create ();
      rate = Rate.create ~now:(Clock.now ()) ();
      assigned = Hashtbl.create 16;
      rates = Hashtbl.create 8;
      health = Hashtbl.create 8;
      conn_workers = Hashtbl.create 8;
    }
  in
  (* Resume: pre-complete every checkpointed shard whose fingerprint
     matches. A mismatched checkpoint is a hard error — silently starting
     a different campaign over it would discard durable results. *)
  (match config.checkpoint_path with
  | Some path when Sys.file_exists path -> (
      match Ckpt.load ~path with
      | Error msg -> failwith (Printf.sprintf "corrupt coordinator checkpoint %s: %s" path msg)
      | Ok ck ->
          if ck.Ckpt.st_fingerprint <> fingerprint then
            failwith
              (Printf.sprintf "checkpoint %s belongs to a different campaign (fingerprint mismatch)" path);
          List.iter
            (fun (i, blob) ->
              if i >= 0 && i < Array.length plan then begin
                Hashtbl.replace st.blobs i blob;
                Lease.force_complete st.lease ~shard:i
              end)
            ck.Ckpt.st_shards;
          (* Re-attribute the flat quarantine log to shards by global
             sample index (1-based), so a later invalidation retracts
             the right entries. *)
          List.iter
            (fun e ->
              let qi = e.Campaign.q_index in
              Array.iteri
                (fun i (start, len) ->
                  if qi > start && qi <= start + len then
                    Hashtbl.replace st.quarantines i
                      (Option.value (Hashtbl.find_opt st.quarantines i) ~default:[]
                      @ [ e ]))
                plan)
            ck.Ckpt.st_quarantined;
          (match ck.Ckpt.st_audit with
          | Some a ->
              st.quarantined_workers <- List.rev a.Ckpt.au_banned;
              gset st.mx.audit_quarantined (List.length st.quarantined_workers);
              List.iter
                (fun w -> Breaker.trip (breaker_for st w) ~now:st.started_at)
                st.quarantined_workers;
              st.audit <-
                Audit.restore
                  {
                    Audit.rate = config.audit_rate;
                    seed = audit_seed ~fingerprint;
                    ttl_s = config.ttl_s;
                  }
                  ~nshards:(Array.length plan)
                  (List.map
                     (fun (e : Ckpt.audit_entry) ->
                       {
                         Audit.au_shard = e.Ckpt.au_shard;
                         au_worker = e.Ckpt.au_worker;
                         au_digest = e.Ckpt.au_digest;
                         au_passed = e.Ckpt.au_passed;
                       })
                     a.Ckpt.au_entries)
          | None ->
              if config.audit_rate > 0. then
                (* Pre-audit (v2) checkpoint: recompute digests from the
                   stored blobs. Producers are unknown, so every
                   selected shard is simply due for audit again. *)
                Hashtbl.iter
                  (fun i blob ->
                    let quarantined =
                      Option.value (Hashtbl.find_opt st.quarantines i) ~default:[]
                    in
                    ignore
                      (Audit.note_accept st.audit ~shard:i ~worker:""
                         ~digest:(Audit.Check.result_digest ~tally:blob ~quarantined)
                        : bool))
                  st.blobs);
          if campaign_finished st then st.finished_at <- Some st.started_at)
  | _ -> ());
  Option.iter (fun f -> f (make_view st obs)) on_view;
  let sock = Wire.listen config.addr in
  let finally () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    match config.addr with
    | Wire.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Wire.Tcp _ -> ()
  in
  Fun.protect ~finally (fun () ->
      Obs.span obs ~cat:"dist" "serve" (fun () ->
          let running = ref true in
          while !running do
            let readable, _, _ =
              try Unix.select [ sock ] [] [] 0.2
              with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            in
            (match readable with
            | [ _ ] ->
                let fd, _ = Unix.accept sock in
                ignore (Thread.create (fun () -> handle_conn st fd) ())
            | _ -> ());
            let now = Clock.now () in
            locked st (fun () ->
                sweep_locked st ~now;
                refresh_circuit_gauge st ~now;
                ignore (leasing_pause st ~now);
                if st.connected > 0 then st.last_worker_at <- now;
                match st.finished_at with
                | Some t when now -. t >= config.linger_s && st.connected = 0 -> running := false
                | Some t when now -. t >= 4. *. config.linger_s ->
                    (* Workers that never said goodbye do not hold the
                       coordinator hostage forever. *)
                    running := false
                | Some _ -> ()
                | None ->
                    if config.max_idle_s > 0. && now -. st.last_worker_at >= config.max_idle_s
                    then
                      failwith
                        (Printf.sprintf
                           "no worker connected for %.0f s with the campaign unfinished (--max-idle)"
                           config.max_idle_s))
          done));
  locked st (fun () ->
      let shards =
        Hashtbl.fold (fun i b acc -> (i, b) :: acc) st.blobs []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      in
      {
        oc_shards = shards;
        oc_quarantined = sorted_quarantined st;
        oc_elapsed_s = Clock.now () -. st.started_at;
      })
