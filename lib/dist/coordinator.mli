(** The distributed campaign coordinator ([faultmc serve]).

    Owns the sample plan and the lease table; workers connect, lease
    shards, stream heartbeats and shard results back. Completions fence
    on lease epochs (see {!Lease}) so exactly one result per shard
    enters the merge — the merged report is bit-identical to
    [Campaign.estimate_sharded] over the same plan, independent of
    worker count, scheduling or mid-campaign deaths.

    Degradation (DESIGN.md §11): every post-Hello connection is
    attributed to a worker name, and a per-worker {!Breaker} accumulates
    corrupt frames, protocol errors and heartbeat-gap lease expiries.
    While a breaker is open that worker is parked with
    [Protocol.Retry_later] instead of served; [require_workers] pauses
    leasing entirely (visible on the [fmc_dist_leasing_paused] gauge)
    when the healthy fleet shrinks below the floor. All time reads go
    through {!Fmc_obs.Clock} so tests can drive sweeps and breaker
    cooldowns with a fake clock.

    Threading: {!serve} runs the accept/sweep loop on the calling thread
    and spawns one thread per connection; shared state sits behind one
    mutex. The coordinator does no Monte Carlo work itself and never
    needs an engine — it validates, fences, stores and merges. *)

open Fmc

type config = {
  addr : Wire.addr;
  ttl_s : float;
      (** lease lifetime without a heartbeat; an expired lease is
          re-issued under a bumped epoch *)
  checkpoint_path : string option;
      (** durable coordinator state ({!Ckpt}), written after every
          accepted shard; an existing matching checkpoint is resumed *)
  linger_s : float;
      (** after the last shard completes, keep answering [Fetch_report]
          this long (and until the last client disconnects, capped at
          4x) so report clients and goodbyes drain *)
  io_deadline_s : float;
      (** per-connection socket read/write deadline; a peer that stalls
          a frame longer than this gets a typed [Wire.Timeout] and its
          connection closed. Generous by default — workers legitimately
          go quiet between heartbeats. *)
  require_workers : int;
      (** minimum healthy connected workers before shards are leased;
          0 disables the floor. While below it, [Request_shard] answers
          [No_work {finished = false}] and [fmc_dist_leasing_paused]
          reads 1. *)
  max_idle_s : float;
      (** while the campaign is unfinished, abort ([Failure]) after this
          long with zero connections — an abandoned coordinator frees
          its port instead of waiting forever; 0 disables *)
  breaker : Breaker.config;  (** per-worker circuit breaker tuning *)
  audit_rate : float;
      (** fraction of accepted shards re-executed on a different worker
          and digest-compared ([Fmc_audit], DESIGN.md §16). Selection is
          a pure function of the fingerprint-derived seed — restart
          stable, zero engine-stream randomness. 0 disables auditing and
          restores pre-v5 behavior bit-for-bit. *)
  speculate_factor : float;
      (** straggler speculation: duplicate a leased shard onto an idle
          worker when its holder's projected completion time exceeds
          this multiple of the fleet's per-shard EWMA; first valid
          completion wins, the loser fences. 0 disables. *)
}

val default_config : Wire.addr -> config
(** ttl 30s, no checkpoint, linger 5s, io deadline 120s, no worker
    floor, no idle limit, {!Breaker.default_config}, audit and
    speculation off. *)

type outcome = {
  oc_shards : (int * string) list;
      (** accepted [(shard, tally blob)] results, ascending shard id —
          feed {!Merge.report_of_blobs} *)
  oc_quarantined : Campaign.quarantine_entry list;
      (** sorted by global sample index *)
  oc_elapsed_s : float;  (** wall clock of this serve segment *)
}

(** {2 Fleet view}

    The read-only surface [faultmc serve --http-port] mounts on its
    scrape endpoint ({!Fmc_obs.Httpd}). {!serve} hands the caller a
    {!view} — a bundle of thunks over the live coordinator state — via
    [?on_view] just before it starts accepting connections; each thunk
    is thread-safe (takes the state mutex, or reads the lock-protected
    fleet store) and cheap enough to call per scrape. Everything here is
    observation-only: nothing a scrape does can perturb the campaign. *)

type health = {
  h_finished : bool;
  h_shards_done : int;
  h_shards_total : int;
  h_in_flight : int;
  h_connected : int;  (** open connections (any state) *)
  h_healthy_workers : int;  (** connected workers without an open breaker *)
  h_breakers_open : int;
  h_leasing_paused : bool;  (** below the [require_workers] floor *)
  h_audits_pending : int;  (** audit re-executions due or in flight *)
  h_quarantined_workers : int;
}

type worker_view = {
  w_name : string;
  w_breaker : Breaker.state;
  w_rate : float;  (** samples/s from heartbeat deltas; 0 before the first *)
  w_connections : int;  (** live post-Hello connections *)
  w_last_wall : float;  (** wall clock of the last absorbed telemetry; 0 if none *)
  w_spans : int;  (** span summaries absorbed from this worker *)
  w_quarantined : bool;  (** permanently banned by a result-audit verdict *)
  w_mismatches : int;  (** digest mismatches charged to this worker *)
}

type view = {
  vw_fingerprint : string;
  vw_trace_id : string;  (** {!Fmc_obs.Traceid.trace_id} of the fingerprint *)
  vw_metrics : unit -> string;
      (** Prometheus text: the coordinator registry merged with every
          worker's latest absorbed snapshot *)
  vw_health : unit -> health;
  vw_status : unit -> Protocol.status_entry;
      (** single-entry campaign status: progress, EWMA rate, ETA *)
  vw_workers : unit -> worker_view list;  (** sorted by name *)
  vw_trace_json : unit -> string;
      (** the stitched fleet trace ({!Fmc_obs.Fleet.to_chrome_json}):
          coordinator spans on pid 1, each worker on its own track *)
}

val serve :
  ?obs:Fmc_obs.Obs.t ->
  ?on_view:(view -> unit) ->
  config ->
  fingerprint:string ->
  plan:(int * int) array ->
  outcome
(** Serve the campaign to completion. [fingerprint]
    ({!Protocol.fingerprint}) gates worker hellos; [plan] is
    [Ssf.shard_plan ~samples ~shard_size] — the same cut every worker
    and the single-process reference use. Under [obs], exposes the
    [fmc_dist_*] counters/gauges (leases issued/expired, stale results,
    shards completed, heartbeats, wire bytes both ways, corrupt frames,
    breaker trips, in-flight shards, connected workers, open circuits,
    leasing-paused flag, per-worker samples/sec), the
    [fmc_dist_shard_roundtrip_seconds] assign-to-accepted histogram and
    a ["serve"] span. [on_view] (called once, before the listener binds)
    receives the scrape surface described above. Workers that Hello with
    protocol v4 get trace/span ids stamped on every [Assign] and their
    piggybacked telemetry absorbed into the fleet store; v3 workers are
    served identically minus the observability. Workers that Hello with
    v5 attach result digests, checked on every accept; with
    [audit_rate] > 0 accepted shards are re-executed and compared per
    DESIGN.md §16 ([Fetch_report] answers [Report_pending] until every
    audit drains, so a finished report is always an audited one). Raises
    [Failure] on a corrupt or mismatched checkpoint and
    [Invalid_argument] on an empty plan, negative [require_workers],
    [audit_rate] outside [0,1] or negative [speculate_factor]. *)
