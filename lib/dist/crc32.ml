(* The CRC-32 implementation lives in Fmc_prelude (the durable campaign
   checkpoint and the scheduler WAL checksum with it too); this alias
   keeps the historical Fmc_dist.Crc32 path working for the wire layer
   and its tests. *)

include Fmc_prelude.Crc32
