(** Alias of {!Fmc_prelude.Crc32}, the CRC-32 (IEEE 802.3) digest shared
    by the wire frame codec, the durable checkpoints and the scheduler
    WAL. Kept under [Fmc_dist] for source compatibility. *)

val string : string -> int
(** CRC-32 of a whole string. [string "123456789" = 0xCBF43926]. *)

val extend : int -> string -> int
(** Continue a running digest: [extend (string a) b = string (a ^ b)]. *)

val extend_sub : int -> Bytes.t -> pos:int -> len:int -> int
(** [extend] over a byte range, for the read path's frame buffer. *)
