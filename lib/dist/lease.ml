(* Shard lease table with epoch fencing.

   Every shard moves through Unleased -> Leased -> Done. A lease carries
   an epoch number that only ever grows for its shard: when a lease
   expires (no heartbeat before the deadline) the shard returns to
   Unleased and the next assignment is issued under a bumped epoch, so a
   completion arriving later from the presumed-dead worker fences on the
   stale epoch and is rejected. Exactly one completion is ever accepted
   per shard, which is what makes the merged report independent of
   worker deaths and re-deliveries.

   The table is pure state over an injected clock (`now` parameters), so
   the fencing logic is unit-testable without timers. Thread safety is
   the caller's job (the coordinator holds its mutex around calls). *)

type assignment = { shard : int; epoch : int; start : int; len : int }

type slot =
  | Unleased
  | Leased of {
      epoch : int;
      worker : string;
      deadline : float;
      spare : (int * string * float) option;
          (* speculative duplicate (epoch, worker, deadline): a second
             live lease on the same shard, under its own (higher) epoch.
             First valid completion wins; the other fences as stale. *)
    }
  | Done of { epoch : int }

type t = {
  plan : (int * int) array;
  ttl : float;
  slots : slot array;
  epochs : int array;  (* highest epoch ever issued per shard *)
  mutable done_count : int;
}

let create ~plan ~ttl =
  if ttl <= 0. then invalid_arg "Lease.create: non-positive ttl";
  if Array.length plan = 0 then invalid_arg "Lease.create: empty plan";
  {
    plan;
    ttl;
    slots = Array.make (Array.length plan) Unleased;
    epochs = Array.make (Array.length plan) 0;
    done_count = 0;
  }

let total t = Array.length t.plan
let completed t = t.done_count
let finished t = t.done_count = total t

let in_flight t =
  Array.fold_left (fun n -> function Leased _ -> n + 1 | _ -> n) 0 t.slots

let sweep_expired t ~now =
  let expired = ref [] in
  Array.iteri
    (fun i slot ->
      match slot with
      | Leased l ->
          (* Expire the speculative duplicate independently of the
             primary; a live spare is promoted when the primary dies. *)
          let spare =
            match l.spare with
            | Some (_, w, d) when d < now ->
                expired := (i, w) :: !expired;
                None
            | s -> s
          in
          if l.deadline < now then begin
            expired := (i, l.worker) :: !expired;
            t.slots.(i) <-
              (match spare with
              | Some (epoch, worker, deadline) ->
                  Leased { epoch; worker; deadline; spare = None }
              | None -> Unleased)
          end
          else if spare != l.spare then t.slots.(i) <- Leased { l with spare }
      | _ -> ())
    t.slots;
  List.rev !expired

let sweep t ~now = List.length (sweep_expired t ~now)

let acquire t ~now ~worker =
  ignore (sweep t ~now);
  if finished t then `Finished
  else begin
    let free = ref None in
    Array.iteri
      (fun i slot -> if !free = None && slot = Unleased then free := Some i)
      t.slots;
    match !free with
    | None -> `Wait
    | Some i ->
        let epoch = t.epochs.(i) + 1 in
        t.epochs.(i) <- epoch;
        t.slots.(i) <- Leased { epoch; worker; deadline = now +. t.ttl; spare = None };
        let start, len = t.plan.(i) in
        `Assign { shard = i; epoch; start; len }
  end

let heartbeat t ~now ~shard ~epoch =
  if shard < 0 || shard >= total t then `Stale
  else
    match t.slots.(shard) with
    | Leased l when l.epoch = epoch ->
        t.slots.(shard) <- Leased { l with deadline = now +. t.ttl };
        `Ok
    | Leased ({ spare = Some (e, w, _); _ } as l) when e = epoch ->
        t.slots.(shard) <- Leased { l with spare = Some (e, w, now +. t.ttl) };
        `Ok
    | _ -> `Stale

let complete t ~shard ~epoch =
  if shard < 0 || shard >= total t then `Unknown
  else
    match t.slots.(shard) with
    | Leased { epoch = e; _ } when e = epoch ->
        t.slots.(shard) <- Done { epoch };
        t.done_count <- t.done_count + 1;
        `Accepted
    | Leased { spare = Some (e, _, _); _ } when e = epoch ->
        (* The speculative duplicate finished first; the straggling
           primary now fences as stale. *)
        t.slots.(shard) <- Done { epoch };
        t.done_count <- t.done_count + 1;
        `Accepted
    | Done { epoch = e } when e = epoch -> `Duplicate
    | Done _ | Leased _ | Unleased -> `Stale

let force_complete t ~shard =
  if shard < 0 || shard >= total t then invalid_arg "Lease.force_complete: bad shard";
  (match t.slots.(shard) with
  | Done _ -> ()
  | Unleased | Leased _ ->
      t.slots.(shard) <- Done { epoch = t.epochs.(shard) };
      t.done_count <- t.done_count + 1)

let holder t ~shard =
  if shard < 0 || shard >= total t then None
  else match t.slots.(shard) with Leased { worker; _ } -> Some worker | _ -> None

let bump_epoch t ~shard =
  if shard < 0 || shard >= total t then invalid_arg "Lease.bump_epoch: bad shard";
  t.epochs.(shard) <- t.epochs.(shard) + 1;
  t.epochs.(shard)

let range t ~shard =
  if shard < 0 || shard >= total t then invalid_arg "Lease.range: bad shard";
  t.plan.(shard)

let reopen t ~shard =
  if shard < 0 || shard >= total t then invalid_arg "Lease.reopen: bad shard";
  match t.slots.(shard) with
  | Done _ ->
      t.slots.(shard) <- Unleased;
      t.done_count <- t.done_count - 1
  | Unleased | Leased _ -> ()

let release t ~shard ~epoch =
  if shard < 0 || shard >= total t then ()
  else
    match t.slots.(shard) with
    | Leased l when l.epoch = epoch ->
        t.slots.(shard) <-
          (match l.spare with
          | Some (epoch, worker, deadline) ->
              Leased { epoch; worker; deadline; spare = None }
          | None -> Unleased)
    | Leased ({ spare = Some (e, _, _); _ } as l) when e = epoch ->
        t.slots.(shard) <- Leased { l with spare = None }
    | _ -> ()

let release_worker t ~worker =
  let released = ref [] in
  Array.iteri
    (fun i slot ->
      match slot with
      | Leased l ->
          let spare =
            match l.spare with Some (_, w, _) when w = worker -> None | s -> s
          in
          if l.worker = worker then begin
            released := i :: !released;
            t.slots.(i) <-
              (match spare with
              | Some (epoch, worker, deadline) ->
                  Leased { epoch; worker; deadline; spare = None }
              | None -> Unleased)
          end
          else if spare != l.spare then t.slots.(i) <- Leased { l with spare }
      | _ -> ())
    t.slots;
  List.rev !released

let speculate t ~now ~shard ~worker =
  if shard < 0 || shard >= total t then None
  else
    match t.slots.(shard) with
    | Leased l when l.spare = None && l.worker <> worker ->
        let epoch = t.epochs.(shard) + 1 in
        t.epochs.(shard) <- epoch;
        t.slots.(shard) <- Leased { l with spare = Some (epoch, worker, now +. t.ttl) };
        let start, len = t.plan.(shard) in
        Some { shard; epoch; start; len }
    | _ -> None
