(** Shard lease table with epoch fencing (DESIGN.md §10).

    State machine per shard: [Unleased -> Leased -> Done], with
    [Leased -> Unleased] on expiry. Each (re-)assignment bumps the
    shard's epoch, and {!complete} only accepts the currently-leased
    epoch — a completion from an expired lease returns [`Stale] and is
    discarded, so exactly one result per shard ever enters the merge.

    Time is injected ([now] parameters, same clock everywhere), making
    the fencing logic deterministic under test. Not thread-safe: the
    coordinator serializes access under its state mutex. *)

type assignment = { shard : int; epoch : int; start : int; len : int }

type t

val create : plan:(int * int) array -> ttl:float -> t
(** [plan] is [Ssf.shard_plan]'s [(start, len)] array; [ttl] the
    heartbeat deadline in the [now] clock's units. Raises
    [Invalid_argument] on an empty plan or non-positive ttl. *)

val acquire : t -> now:float -> worker:string -> [ `Assign of assignment | `Finished | `Wait ]
(** Lease the first available shard (expiring overdue leases first).
    [`Wait]: nothing available but the campaign is unfinished —
    every remaining shard is in flight. *)

val heartbeat : t -> now:float -> shard:int -> epoch:int -> [ `Ok | `Stale ]
(** Extend a live lease's deadline to [now + ttl]. [`Stale] means the
    lease was lost (expired and possibly re-issued) — the worker must
    abandon the shard. *)

val complete : t -> shard:int -> epoch:int -> [ `Accepted | `Duplicate | `Stale | `Unknown ]
(** Record a shard result. [`Accepted] exactly once per shard;
    [`Duplicate] for a re-delivery of the accepted epoch (safe to ack —
    the result is bit-identical by construction); [`Stale] for a fenced
    epoch; [`Unknown] for a shard outside the plan. *)

val sweep : t -> now:float -> int
(** Expire overdue leases; returns how many expired (for the
    [fmc_dist_leases_expired_total] counter). *)

val sweep_expired : t -> now:float -> (int * string) list
(** Like {!sweep}, but returns the expired [(shard, holding worker)]
    pairs so the coordinator can charge the heartbeat gap to the right
    worker's circuit breaker. *)

val force_complete : t -> shard:int -> unit
(** Mark a shard done without a lease — checkpoint restore only. *)

val finished : t -> bool
val completed : t -> int
val in_flight : t -> int
val total : t -> int

val holder : t -> shard:int -> string option
(** The worker currently holding the shard's lease, if any. *)

val bump_epoch : t -> shard:int -> int
(** Issue and return a fresh (strictly higher) epoch for [shard]
    without touching its slot. Audit re-executions ride on this: the
    shard stays [Done] while the audit runs under the fresh epoch, so
    the audited completion can never be mistaken for a primary result.
    Raises [Invalid_argument] on a shard outside the plan. *)

val range : t -> shard:int -> int * int
(** The plan's [(start, len)] for [shard]. *)

val reopen : t -> shard:int -> unit
(** [Done -> Unleased]: the accepted result was invalidated (its
    producer got quarantined) and the shard must be honestly re-run.
    No-op unless the shard is [Done]. *)

val release : t -> shard:int -> epoch:int -> unit
(** Drop the live lease matching [epoch] without expiring it (its
    holder sent a corrupt or digest-mismatched result). A primary
    release promotes any live speculative duplicate; a spare release
    just drops the spare. No-op on a non-matching epoch. *)

val release_worker : t -> worker:string -> int list
(** Release every lease (primary or spare) held by [worker] —
    quarantine path. Returns the shards whose primary lease dropped. *)

val speculate : t -> now:float -> shard:int -> worker:string -> assignment option
(** Open a speculative duplicate lease on a shard whose primary holder
    is straggling: a second worker runs the same shard under a fresh
    epoch, first valid completion wins, the loser fences as stale
    (DESIGN.md §16). [None] if the shard is not leased, already has a
    spare, or [worker] is the primary holder. *)
