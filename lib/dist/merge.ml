(* From wire/checkpoint tally blobs to the final campaign report: decode
   every shard snapshot, turn each into a report under the campaign's
   strategy, and pool through Ssf.merge_reports. merge_reports is
   permutation-invariant and Tally.of_string round-trips bit-exactly, so
   this merge produces the bit-identical report to a single-process
   Campaign.estimate_sharded run over the same plan — the whole
   correctness claim of the distributed service reduces to this one
   function being deterministic. *)

open Fmc

let snapshots_of_blobs blobs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare (a : int) b) blobs in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (i, blob) :: tl -> (
        match Ssf.Tally.of_string blob with
        | Ok s -> go ((i, s) :: acc) tl
        | Error msg -> Error (Printf.sprintf "shard %d: %s" i msg))
  in
  go [] sorted

let report_of_blobs ~strategy blobs =
  if blobs = [] then Error "no shard results to merge"
  else
    match snapshots_of_blobs blobs with
    | Error _ as e -> e
    | Ok snaps ->
        Ok
          (Ssf.merge_reports
             (List.map (fun (_, s) -> Campaign.shard_report ~strategy s) snaps))
