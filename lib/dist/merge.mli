(** Bit-exact cross-process merging: wire/checkpoint blobs to one report.

    Used identically by [faultmc serve] (printing the final report),
    [faultmc evaluate --connect] (rendering a fetched report) and the
    tests — one merge path, so a report cannot depend on where it was
    assembled. *)

open Fmc

val snapshots_of_blobs :
  (int * string) list -> ((int * Ssf.Tally.snapshot) list, string) result
(** Decode [(shard id, Ssf.Tally.to_string blob)] pairs, sorted into
    ascending shard order. [Error] names the first undecodable shard. *)

val report_of_blobs : strategy:string -> (int * string) list -> (Ssf.report, string) result
(** The merged campaign report: each decoded snapshot becomes a report
    via {!Campaign.shard_report} and the list pools through
    {!Ssf.merge_reports}. Bit-identical to
    [Campaign.estimate_sharded] over the same [(samples, seed,
    shard_size)] regardless of which processes produced the blobs. *)
