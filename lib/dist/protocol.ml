(* Message layer of the coordinator/worker protocol: typed messages and
   their (tag, payload) encoding over Wire frames.

   Payloads are line-oriented text, reusing the repo's serializers where
   state crosses the wire: tally snapshots travel as verbatim
   Ssf.Tally.to_string blobs (line-counted so they embed safely) and
   quarantine entries as Campaign.quarantine_entry_to_string lines — the
   same codecs the durable checkpoints use, so a snapshot is bit-exact no
   matter how many process boundaries it crossed. *)

open Fmc

(* v2: frames carry a CRC-32 trailer (Wire), and the server can answer a
   Hello with Retry_later (circuit breaker open / fleet floor not met)
   instead of a terminal Reject. v1 peers are detected by their
   checksum-less frames and refused with a readable v1-framed Reject. *)
let version = 2

type client_msg =
  | Hello of { version : int; worker : string; fingerprint : string }
  | Request_shard
  | Heartbeat of { shard : int; epoch : int; samples_done : int }
  | Shard_done of {
      shard : int;
      epoch : int;
      tally : string;
      quarantined : Campaign.quarantine_entry list;
    }
  | Fetch_report
  | Goodbye

type server_msg =
  | Welcome of { version : int }
  | Assign of { shard : int; epoch : int; start : int; len : int }
  | No_work of { finished : bool }
  | Ack of { accepted : bool; reason : string }
  | Report of {
      shards : (int * string) list;
      quarantined : Campaign.quarantine_entry list;
      elapsed_s : float;
    }
  | Report_pending
  | Reject of { reason : string }
  | Retry_later of { cooldown_s : float }

let fingerprint ~strategy ~benchmark ~samples ~seed ~shard_size ~sample_budget =
  Printf.sprintf "v%d strategy=%s benchmark=%s samples=%d seed=%d shard_size=%d budget=%s"
    version strategy benchmark samples seed shard_size
    (match sample_budget with Some b -> string_of_int b | None -> "-")

(* -- payload helpers ---------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* Split into lines, dropping a trailing empty line (the artifact of a
   final '\n'), but keeping interior empties so line counts stay honest. *)
let lines_of s =
  match String.split_on_char '\n' s with
  | [] -> []
  | parts -> (
      match List.rev parts with
      | "" :: rest -> List.rev rest
      | _ -> parts)

let blob_lines blob = lines_of blob

let restore_blob lines = String.concat "\n" lines ^ "\n"

(* Cursor over a line list. *)
type cursor = { mutable rest : string list }

let next c =
  match c.rest with
  | [] -> bad "truncated payload"
  | l :: tl ->
      c.rest <- tl;
      l

let take c n = List.init n (fun _ -> next c)

let int_of what s =
  match int_of_string_opt s with Some i -> i | None -> bad "bad %s %S" what s

let float_of what s =
  match float_of_string_opt s with Some f -> f | None -> bad "bad %s %S" what s

let fields line = String.split_on_char ' ' line

let expect_kw kw line =
  match fields line with
  | k :: rest when k = kw -> rest
  | _ -> bad "expected %S line, got %S" kw line

let rest_of_line kw line =
  let plen = String.length kw + 1 in
  if String.length line >= plen && String.sub line 0 plen = kw ^ " " then
    String.sub line plen (String.length line - plen)
  else if line = kw then ""
  else bad "expected %S line, got %S" kw line

let quarantine_of_line line =
  match Campaign.quarantine_entry_of_string line with
  | Ok e -> e
  | Error msg -> bad "quarantine entry: %s" msg

let emit_blob buf label blob =
  let ls = blob_lines blob in
  Buffer.add_string buf (Printf.sprintf "%s %d\n" label (List.length ls));
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    ls

let emit_quarantined buf entries =
  Buffer.add_string buf (Printf.sprintf "quarantined %d\n" (List.length entries));
  List.iter
    (fun e ->
      Buffer.add_string buf (Campaign.quarantine_entry_to_string e);
      Buffer.add_char buf '\n')
    entries

let read_quarantined c =
  match expect_kw "quarantined" (next c) with
  | [ n ] -> List.init (int_of "quarantine count" n) (fun _ -> quarantine_of_line (next c))
  | _ -> bad "malformed quarantined line"

(* -- client messages ---------------------------------------------------- *)

let encode_client = function
  | Hello { version; worker; fingerprint } ->
      ( 'H',
        Printf.sprintf "version %d\nworker %s\nfingerprint %s\n" version
          (one_line worker) (one_line fingerprint) )
  | Request_shard -> ('R', "")
  | Heartbeat { shard; epoch; samples_done } ->
      ('B', Printf.sprintf "%d %d %d\n" shard epoch samples_done)
  | Shard_done { shard; epoch; tally; quarantined } ->
      let buf = Buffer.create (String.length tally + 256) in
      Buffer.add_string buf (Printf.sprintf "shard %d epoch %d\n" shard epoch);
      emit_blob buf "tally" tally;
      emit_quarantined buf quarantined;
      ('D', Buffer.contents buf)
  | Fetch_report -> ('F', "")
  | Goodbye -> ('G', "")

let decode_client tag payload =
  let c = { rest = lines_of payload } in
  match tag with
  | 'H' -> (
      match expect_kw "version" (next c) with
      | [ v ] ->
          let worker = rest_of_line "worker" (next c) in
          let fingerprint = rest_of_line "fingerprint" (next c) in
          Ok (Hello { version = int_of "version" v; worker; fingerprint })
      | _ -> bad "malformed version line")
  | 'R' -> Ok Request_shard
  | 'B' -> (
      match fields (next c) with
      | [ s; e; d ] ->
          Ok
            (Heartbeat
               {
                 shard = int_of "shard" s;
                 epoch = int_of "epoch" e;
                 samples_done = int_of "samples_done" d;
               })
      | _ -> bad "malformed heartbeat")
  | 'D' -> (
      match fields (next c) with
      | [ "shard"; s; "epoch"; e ] -> (
          match expect_kw "tally" (next c) with
          | [ n ] ->
              let tally = restore_blob (take c (int_of "tally line count" n)) in
              let quarantined = read_quarantined c in
              Ok
                (Shard_done
                   { shard = int_of "shard" s; epoch = int_of "epoch" e; tally; quarantined })
          | _ -> bad "malformed tally line")
      | _ -> bad "malformed shard_done header")
  | 'F' -> Ok Fetch_report
  | 'G' -> Ok Goodbye
  | t -> bad "unknown client tag %C" t

let decode_client tag payload =
  match decode_client tag payload with
  | r -> r
  | exception Bad msg -> Error msg

(* -- server messages ---------------------------------------------------- *)

let encode_server = function
  | Welcome { version } -> ('W', Printf.sprintf "version %d\n" version)
  | Assign { shard; epoch; start; len } ->
      ('A', Printf.sprintf "%d %d %d %d\n" shard epoch start len)
  | No_work { finished } -> ('N', if finished then "finished\n" else "wait\n")
  | Ack { accepted; reason } ->
      ('K', Printf.sprintf "%s %s\n" (if accepted then "ok" else "no") (one_line reason))
  | Report { shards; quarantined; elapsed_s } ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf (Printf.sprintf "elapsed %h\n" elapsed_s);
      Buffer.add_string buf (Printf.sprintf "shards %d\n" (List.length shards));
      List.iter (fun (i, blob) -> emit_blob buf (Printf.sprintf "shard %d" i) blob) shards;
      emit_quarantined buf quarantined;
      ('P', Buffer.contents buf)
  | Report_pending -> ('Y', "")
  | Reject { reason } -> ('X', one_line reason ^ "\n")
  | Retry_later { cooldown_s } -> ('L', Printf.sprintf "%h\n" cooldown_s)

let decode_server tag payload =
  let c = { rest = lines_of payload } in
  match tag with
  | 'W' -> (
      match expect_kw "version" (next c) with
      | [ v ] -> Ok (Welcome { version = int_of "version" v })
      | _ -> bad "malformed version line")
  | 'A' -> (
      match fields (next c) with
      | [ s; e; st; l ] ->
          Ok
            (Assign
               {
                 shard = int_of "shard" s;
                 epoch = int_of "epoch" e;
                 start = int_of "start" st;
                 len = int_of "len" l;
               })
      | _ -> bad "malformed assign")
  | 'N' -> (
      match next c with
      | "finished" -> Ok (No_work { finished = true })
      | "wait" -> Ok (No_work { finished = false })
      | l -> bad "malformed no_work %S" l)
  | 'K' -> (
      match fields (next c) with
      | verdict :: reason ->
          Ok (Ack { accepted = verdict = "ok"; reason = String.concat " " reason })
      | [] -> bad "malformed ack")
  | 'P' -> (
      match expect_kw "elapsed" (next c) with
      | [ e ] -> (
          let elapsed_s = float_of "elapsed" e in
          match expect_kw "shards" (next c) with
          | [ n ] ->
              let shards =
                List.init (int_of "shard count" n) (fun _ ->
                    match fields (next c) with
                    | [ "shard"; i; lines ] ->
                        ( int_of "shard id" i,
                          restore_blob (take c (int_of "shard line count" lines)) )
                    | _ -> bad "malformed shard header")
              in
              let quarantined = read_quarantined c in
              Ok (Report { shards; quarantined; elapsed_s })
          | _ -> bad "malformed shards line")
      | _ -> bad "malformed elapsed line")
  | 'Y' -> Ok Report_pending
  | 'X' -> Ok (Reject { reason = String.concat " " (fields (next c)) })
  | 'L' -> Ok (Retry_later { cooldown_s = float_of "cooldown" (next c) })
  | t -> bad "unknown server tag %C" t

let decode_server tag payload =
  match decode_server tag payload with
  | r -> r
  | exception Bad msg -> Error msg

(* -- legacy (v1) peer detection ----------------------------------------- *)

(* A v1 peer's checksum-less frames surface from Wire.read_frame_raw as
   `Corrupt (tag, raw_v1_payload). A v1 Hello is recognizable by its
   plain-text payload (the Hello payload layout is unchanged since v1),
   so the coordinator can answer with a v1-framed Reject the old peer
   can actually decode, instead of hanging up silently. *)
let v1_hello ~tag raw =
  if tag <> 'H' then None
  else
    match decode_client 'H' raw with
    | Ok (Hello { version; _ }) when version < 2 -> Some version
    | Ok _ | Error _ -> None
