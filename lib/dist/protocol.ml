(* Message layer of the coordinator/worker protocol: typed messages and
   their (tag, payload) encoding over Wire frames.

   Payloads are line-oriented text, reusing the repo's serializers where
   state crosses the wire: tally snapshots travel as verbatim
   Ssf.Tally.to_string blobs (line-counted so they embed safely) and
   quarantine entries as Campaign.quarantine_entry_to_string lines — the
   same codecs the durable checkpoints use, so a snapshot is bit-exact no
   matter how many process boundaries it crossed. *)

open Fmc

(* v2: frames carry a CRC-32 trailer (Wire), and the server can answer a
   Hello with Retry_later (circuit breaker open / fleet floor not met)
   instead of a terminal Reject. v1 peers are detected by their
   checksum-less frames and refused with a readable v1-framed Reject.
   v3: the multi-campaign scheduler — campaign specs travel in Submit
   and Job messages, pool-scope connections (fingerprint "*") lease
   shards from any queued campaign via Job/Job_heartbeat/Job_done, and
   Status carries queue positions and ETAs.
   v4: fleet observability — purely additive trailing sections carried
   by the `extension` side-channel: Assign/Job may end with a
   "trace <trace_id> <span_id>" line and Heartbeat/Shard_done/
   Job_heartbeat/Job_done with a line-counted "telemetry" blob
   (Fmc_obs.Telemetry, opaque here). v3 peers are still accepted: their
   decoders use the same non-exhaustive line cursor as ours, so the
   extra lines are invisible to them, and Welcome negotiates
   min(peer, ours) so a v4 worker talking to a v3 coordinator sends
   plain v3 messages.
   v5: result auditing — Shard_done/Job_done may end with a
   "digest <hex>" line (before any telemetry section): the canonical
   result digest (Fmc_audit.Check.result_digest) computed worker-side
   so the coordinator can cheaply detect corrupt-in-transit or lying
   payloads. Same additive-trailing-section scheme as v4; v3/v4 peers
   negotiate down and run unaudited (the coordinator recomputes digests
   itself on their results). *)
let version = 5

(* The campaign fingerprint predates v4 and hashes only things that
   change per-sample outcomes; v4 added no such thing, so the embedded
   version stays 3 and v3 peers' fingerprints still match. *)
let fingerprint_version = 3

let accepts_version v = v = 3 || v = 4 || v = version
let negotiate ~peer = min peer version

(* The full identity of a campaign: every parameter that must agree
   between the submitting client and the evaluating worker for the shard
   results to be meaningful. This is what a Submit enqueues and a Job
   hands to a pool worker. *)
type spec = {
  sp_benchmark : string;
  sp_strategy : string;
  sp_samples : int;
  sp_seed : int;
  sp_shard_size : int;
  sp_sample_budget : int option;
  sp_fault_model : string;
      (* canonical fault-model string; "disc-transient" for every spec
         written before the field existed *)
}

type campaign_state = Queued | Running | Finished | Parked | Cancelled

type status_entry = {
  st_fingerprint : string;
  st_state : campaign_state;
  st_position : int;
  st_queue_len : int;
  st_samples_done : int;
  st_samples_total : int;
  st_rate : float;
  st_eta_s : float;
  st_detail : string;
}

type client_msg =
  | Hello of { version : int; worker : string; fingerprint : string }
  | Request_shard
  | Heartbeat of { shard : int; epoch : int; samples_done : int }
  | Shard_done of {
      shard : int;
      epoch : int;
      tally : string;
      quarantined : Campaign.quarantine_entry list;
    }
  | Fetch_report
  | Goodbye
  | Submit of { spec : spec }
  | Status_req of { fingerprint : string }
  | Cancel of { fingerprint : string }
  | Job_heartbeat of { fingerprint : string; shard : int; epoch : int; samples_done : int }
  | Job_done of {
      fingerprint : string;
      shard : int;
      epoch : int;
      tally : string;
      quarantined : Campaign.quarantine_entry list;
    }

type server_msg =
  | Welcome of { version : int }
  | Assign of { shard : int; epoch : int; start : int; len : int }
  | No_work of { finished : bool }
  | Ack of { accepted : bool; reason : string }
  | Report of {
      shards : (int * string) list;
      quarantined : Campaign.quarantine_entry list;
      elapsed_s : float;
    }
  | Report_pending
  | Reject of { reason : string }
  | Retry_later of { cooldown_s : float }
  | Job of { spec : spec; shard : int; epoch : int; start : int; len : int }
  | Submitted of { fingerprint : string; position : int; cached : bool }
  | Sched_rejected of { retry_after_s : float; reason : string }
  | Status of { entries : status_entry list }

let fingerprint ?(fault_model = "disc-transient") ~strategy ~benchmark ~samples ~seed
    ~shard_size ~sample_budget () =
  let base =
    Printf.sprintf "v%d strategy=%s benchmark=%s samples=%d seed=%d shard_size=%d budget=%s"
      fingerprint_version strategy benchmark samples seed shard_size
      (match sample_budget with Some b -> string_of_int b | None -> "-")
  in
  (* Default-model fingerprints must stay byte-identical to what pre-
     fault-model peers compute, so the model component only appears when
     it deviates. Differing models still hash apart, which is all the
     handshake's opaque string equality needs to reject a mismatch. *)
  if fault_model = "disc-transient" then base else base ^ " model=" ^ fault_model

(* The scope a pool worker or control client announces in Hello instead
   of a concrete campaign fingerprint. *)
let pool_fingerprint = "*"

let spec_fingerprint sp =
  fingerprint ~fault_model:sp.sp_fault_model ~strategy:sp.sp_strategy
    ~benchmark:sp.sp_benchmark ~samples:sp.sp_samples ~seed:sp.sp_seed
    ~shard_size:sp.sp_shard_size ~sample_budget:sp.sp_sample_budget ()

let budget_word = function Some b -> string_of_int b | None -> "-"

let spec_line sp =
  Printf.sprintf "benchmark=%s strategy=%s samples=%d seed=%d shard_size=%d budget=%s model=%s"
    sp.sp_benchmark sp.sp_strategy sp.sp_samples sp.sp_seed sp.sp_shard_size
    (budget_word sp.sp_sample_budget) sp.sp_fault_model

let spec_of_line line =
  let err msg = Error (Printf.sprintf "campaign spec %S: %s" line msg) in
  let kv key word =
    let plen = String.length key + 1 in
    if String.length word > plen && String.sub word 0 plen = key ^ "=" then
      Ok (String.sub word plen (String.length word - plen))
    else Error (Printf.sprintf "expected %s=..., found %S" key word)
  in
  let parse6 b st sa se sh bu ~model =
    let ( let* ) = Result.bind in
    match
      let* sp_benchmark = kv "benchmark" b in
      let* sp_strategy = kv "strategy" st in
      let* sa = kv "samples" sa in
      let* se = kv "seed" se in
      let* sh = kv "shard_size" sh in
      let* bu = kv "budget" bu in
      let* sp_fault_model = match model with None -> Ok "disc-transient" | Some m -> kv "model" m in
      let num what v =
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "bad %s %S" what v)
      in
      let* sp_samples = num "samples" sa in
      let* sp_seed = num "seed" se in
      let* sp_shard_size = num "shard_size" sh in
      let* sp_sample_budget =
        if bu = "-" then Ok None else Result.map Option.some (num "budget" bu)
      in
      Ok
        {
          sp_benchmark;
          sp_strategy;
          sp_samples;
          sp_seed;
          sp_shard_size;
          sp_sample_budget;
          sp_fault_model;
        }
    with
    | Ok sp -> Ok sp
    | Error msg -> err msg
  in
  match String.split_on_char ' ' line with
  (* 6-field lines predate the fault-model field (WALs written before
     the bump replay as the default model). *)
  | [ b; st; sa; se; sh; bu ] -> parse6 b st sa se sh bu ~model:None
  | [ b; st; sa; se; sh; bu; m ] -> parse6 b st sa se sh bu ~model:(Some m)
  | _ -> err "wants 6 or 7 space-separated key=value fields"

let state_token = function
  | Queued -> "queued"
  | Running -> "running"
  | Finished -> "finished"
  | Parked -> "parked"
  | Cancelled -> "cancelled"

let state_of_token = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "finished" -> Some Finished
  | "parked" -> Some Parked
  | "cancelled" -> Some Cancelled
  | _ -> None

(* -- payload helpers ---------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* Split into lines, dropping a trailing empty line (the artifact of a
   final '\n'), but keeping interior empties so line counts stay honest. *)
let lines_of s =
  match String.split_on_char '\n' s with
  | [] -> []
  | parts -> (
      match List.rev parts with
      | "" :: rest -> List.rev rest
      | _ -> parts)

let blob_lines blob = lines_of blob

let restore_blob lines = String.concat "\n" lines ^ "\n"

(* Cursor over a line list. *)
type cursor = { mutable rest : string list }

let next c =
  match c.rest with
  | [] -> bad "truncated payload"
  | l :: tl ->
      c.rest <- tl;
      l

let take c n = List.init n (fun _ -> next c)

let int_of what s =
  match int_of_string_opt s with Some i -> i | None -> bad "bad %s %S" what s

let float_of what s =
  match float_of_string_opt s with Some f -> f | None -> bad "bad %s %S" what s

let fields line = String.split_on_char ' ' line

let expect_kw kw line =
  match fields line with
  | k :: rest when k = kw -> rest
  | _ -> bad "expected %S line, got %S" kw line

let rest_of_line kw line =
  let plen = String.length kw + 1 in
  if String.length line >= plen && String.sub line 0 plen = kw ^ " " then
    String.sub line plen (String.length line - plen)
  else if line = kw then ""
  else bad "expected %S line, got %S" kw line

let quarantine_of_line line =
  match Campaign.quarantine_entry_of_string line with
  | Ok e -> e
  | Error msg -> bad "quarantine entry: %s" msg

let emit_blob buf label blob =
  let ls = blob_lines blob in
  Buffer.add_string buf (Printf.sprintf "%s %d\n" label (List.length ls));
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    ls

let emit_quarantined buf entries =
  Buffer.add_string buf (Printf.sprintf "quarantined %d\n" (List.length entries));
  List.iter
    (fun e ->
      Buffer.add_string buf (Campaign.quarantine_entry_to_string e);
      Buffer.add_char buf '\n')
    entries

let read_quarantined c =
  match expect_kw "quarantined" (next c) with
  | [ n ] -> List.init (int_of "quarantine count" n) (fun _ -> quarantine_of_line (next c))
  | _ -> bad "malformed quarantined line"

(* -- v4 extension sections ----------------------------------------------- *)

(* The v4 additions ride as trailing sections after a message's v3
   payload, carried out-of-band of the message variants so every v3
   construction and match site keeps compiling unchanged. *)
type extension = {
  ext_trace : (string * string) option;
      (* (trace_id, span_id) stamped on Assign/Job *)
  ext_telemetry : string option;
      (* encoded Fmc_obs.Telemetry blob on Heartbeat/Shard_done/
         Job_heartbeat/Job_done; opaque at this layer *)
  ext_digest : string option;
      (* v5: canonical result digest on Shard_done/Job_done; opaque
         here (Fmc_audit computes and compares it) *)
}

let no_extension = { ext_trace = None; ext_telemetry = None; ext_digest = None }

let starts_with ~prefix line =
  let n = String.length prefix in
  String.length line >= n && String.sub line 0 n = prefix

let read_ext_trace c =
  match c.rest with
  | line :: _ when starts_with ~prefix:"trace " line -> (
      match fields (next c) with
      | [ "trace"; t; s ] -> Some (t, s)
      | _ -> bad "malformed trace line")
  | _ -> None

let read_ext_telemetry c =
  match c.rest with
  | line :: _ when starts_with ~prefix:"telemetry " line -> (
      match expect_kw "telemetry" (next c) with
      | [ n ] -> Some (restore_blob (take c (int_of "telemetry line count" n)))
      | _ -> bad "malformed telemetry line")
  | _ -> None

let read_ext_digest c =
  match c.rest with
  | line :: _ when starts_with ~prefix:"digest " line -> (
      match fields (next c) with
      | [ "digest"; d ] -> Some d
      | _ -> bad "malformed digest line")
  | _ -> None

let emit_ext_trace buf = function
  | None -> ()
  | Some (t, s) ->
      Buffer.add_string buf (Printf.sprintf "trace %s %s\n" (one_line t) (one_line s))

let emit_ext_telemetry buf = function
  | None -> ()
  | Some blob -> emit_blob buf "telemetry" blob

let emit_ext_digest buf = function
  | None -> ()
  | Some d -> Buffer.add_string buf (Printf.sprintf "digest %s\n" (one_line d))

(* -- client messages ---------------------------------------------------- *)

let encode_client = function
  | Hello { version; worker; fingerprint } ->
      ( 'H',
        Printf.sprintf "version %d\nworker %s\nfingerprint %s\n" version
          (one_line worker) (one_line fingerprint) )
  | Request_shard -> ('R', "")
  | Heartbeat { shard; epoch; samples_done } ->
      ('B', Printf.sprintf "%d %d %d\n" shard epoch samples_done)
  | Shard_done { shard; epoch; tally; quarantined } ->
      let buf = Buffer.create (String.length tally + 256) in
      Buffer.add_string buf (Printf.sprintf "shard %d epoch %d\n" shard epoch);
      emit_blob buf "tally" tally;
      emit_quarantined buf quarantined;
      ('D', Buffer.contents buf)
  | Fetch_report -> ('F', "")
  | Goodbye -> ('G', "")
  | Submit { spec } -> ('S', Printf.sprintf "spec %s\n" (spec_line spec))
  | Status_req { fingerprint } -> ('Q', Printf.sprintf "fingerprint %s\n" (one_line fingerprint))
  | Cancel { fingerprint } -> ('C', Printf.sprintf "fingerprint %s\n" (one_line fingerprint))
  | Job_heartbeat { fingerprint; shard; epoch; samples_done } ->
      ( 'h',
        Printf.sprintf "fingerprint %s\n%d %d %d\n" (one_line fingerprint) shard epoch
          samples_done )
  | Job_done { fingerprint; shard; epoch; tally; quarantined } ->
      let buf = Buffer.create (String.length tally + 256) in
      Buffer.add_string buf (Printf.sprintf "fingerprint %s\n" (one_line fingerprint));
      Buffer.add_string buf (Printf.sprintf "shard %d epoch %d\n" shard epoch);
      emit_blob buf "tally" tally;
      emit_quarantined buf quarantined;
      ('j', Buffer.contents buf)

let encode_client_ext ?(ext = no_extension) msg =
  let tag, payload = encode_client msg in
  let digest =
    (* The digest section only rides on result messages. *)
    match msg with Shard_done _ | Job_done _ -> ext.ext_digest | _ -> None
  in
  match msg with
  | Heartbeat _ | Shard_done _ | Job_heartbeat _ | Job_done _
    when ext.ext_telemetry <> None || digest <> None ->
      let buf = Buffer.create (String.length payload + 256) in
      Buffer.add_string buf payload;
      emit_ext_digest buf digest;
      emit_ext_telemetry buf ext.ext_telemetry;
      (tag, Buffer.contents buf)
  | _ -> (tag, payload)

let decode_client_raising c tag =
  match tag with
  | 'H' -> (
      match expect_kw "version" (next c) with
      | [ v ] ->
          let worker = rest_of_line "worker" (next c) in
          let fingerprint = rest_of_line "fingerprint" (next c) in
          Ok (Hello { version = int_of "version" v; worker; fingerprint })
      | _ -> bad "malformed version line")
  | 'R' -> Ok Request_shard
  | 'B' -> (
      match fields (next c) with
      | [ s; e; d ] ->
          Ok
            (Heartbeat
               {
                 shard = int_of "shard" s;
                 epoch = int_of "epoch" e;
                 samples_done = int_of "samples_done" d;
               })
      | _ -> bad "malformed heartbeat")
  | 'D' -> (
      match fields (next c) with
      | [ "shard"; s; "epoch"; e ] -> (
          match expect_kw "tally" (next c) with
          | [ n ] ->
              let tally = restore_blob (take c (int_of "tally line count" n)) in
              let quarantined = read_quarantined c in
              Ok
                (Shard_done
                   { shard = int_of "shard" s; epoch = int_of "epoch" e; tally; quarantined })
          | _ -> bad "malformed tally line")
      | _ -> bad "malformed shard_done header")
  | 'F' -> Ok Fetch_report
  | 'G' -> Ok Goodbye
  | 'S' -> (
      match spec_of_line (rest_of_line "spec" (next c)) with
      | Ok spec -> Ok (Submit { spec })
      | Error msg -> bad "%s" msg)
  | 'Q' -> Ok (Status_req { fingerprint = rest_of_line "fingerprint" (next c) })
  | 'C' -> Ok (Cancel { fingerprint = rest_of_line "fingerprint" (next c) })
  | 'h' -> (
      let fingerprint = rest_of_line "fingerprint" (next c) in
      match fields (next c) with
      | [ s; e; d ] ->
          Ok
            (Job_heartbeat
               {
                 fingerprint;
                 shard = int_of "shard" s;
                 epoch = int_of "epoch" e;
                 samples_done = int_of "samples_done" d;
               })
      | _ -> bad "malformed job heartbeat")
  | 'j' -> (
      let fingerprint = rest_of_line "fingerprint" (next c) in
      match fields (next c) with
      | [ "shard"; s; "epoch"; e ] -> (
          match expect_kw "tally" (next c) with
          | [ n ] ->
              let tally = restore_blob (take c (int_of "tally line count" n)) in
              let quarantined = read_quarantined c in
              Ok
                (Job_done
                   {
                     fingerprint;
                     shard = int_of "shard" s;
                     epoch = int_of "epoch" e;
                     tally;
                     quarantined;
                   })
          | _ -> bad "malformed tally line")
      | _ -> bad "malformed job_done header")
  | t -> bad "unknown client tag %C" t

let decode_client_ext tag payload =
  let c = { rest = lines_of payload } in
  match decode_client_raising c tag with
  | Ok msg ->
      let ext =
        match msg with
        | Shard_done _ | Job_done _ ->
            (* Section order is fixed: digest, then telemetry. *)
            let digest = read_ext_digest c in
            { no_extension with ext_digest = digest; ext_telemetry = read_ext_telemetry c }
        | Heartbeat _ | Job_heartbeat _ ->
            { no_extension with ext_telemetry = read_ext_telemetry c }
        | _ -> no_extension
      in
      Ok (msg, ext)
  | Error msg -> Error msg
  | exception Bad msg -> Error msg

let decode_client tag payload = Result.map fst (decode_client_ext tag payload)

(* -- server messages ---------------------------------------------------- *)

let encode_server = function
  | Welcome { version } -> ('W', Printf.sprintf "version %d\n" version)
  | Assign { shard; epoch; start; len } ->
      ('A', Printf.sprintf "%d %d %d %d\n" shard epoch start len)
  | No_work { finished } -> ('N', if finished then "finished\n" else "wait\n")
  | Ack { accepted; reason } ->
      ('K', Printf.sprintf "%s %s\n" (if accepted then "ok" else "no") (one_line reason))
  | Report { shards; quarantined; elapsed_s } ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf (Printf.sprintf "elapsed %h\n" elapsed_s);
      Buffer.add_string buf (Printf.sprintf "shards %d\n" (List.length shards));
      List.iter (fun (i, blob) -> emit_blob buf (Printf.sprintf "shard %d" i) blob) shards;
      emit_quarantined buf quarantined;
      ('P', Buffer.contents buf)
  | Report_pending -> ('Y', "")
  | Reject { reason } -> ('X', one_line reason ^ "\n")
  | Retry_later { cooldown_s } -> ('L', Printf.sprintf "%h\n" cooldown_s)
  | Job { spec; shard; epoch; start; len } ->
      ('J', Printf.sprintf "spec %s\n%d %d %d %d\n" (spec_line spec) shard epoch start len)
  | Submitted { fingerprint; position; cached } ->
      ( 'U',
        Printf.sprintf "fingerprint %s\nposition %d cached %s\n" (one_line fingerprint) position
          (if cached then "yes" else "no") )
  | Sched_rejected { retry_after_s; reason } ->
      ('E', Printf.sprintf "%h %s\n" retry_after_s (one_line reason))
  | Status { entries } ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf (Printf.sprintf "entries %d\n" (List.length entries));
      List.iter
        (fun e ->
          Buffer.add_string buf (Printf.sprintf "fingerprint %s\n" (one_line e.st_fingerprint));
          Buffer.add_string buf
            (Printf.sprintf "state %s position %d queue %d done %d total %d rate %h eta %h\n"
               (state_token e.st_state) e.st_position e.st_queue_len e.st_samples_done
               e.st_samples_total e.st_rate e.st_eta_s);
          Buffer.add_string buf (Printf.sprintf "detail %s\n" (one_line e.st_detail)))
        entries;
      ('T', Buffer.contents buf)

let encode_server_ext ?(ext = no_extension) msg =
  let tag, payload = encode_server msg in
  match msg with
  | (Assign _ | Job _) when ext.ext_trace <> None ->
      let buf = Buffer.create (String.length payload + 64) in
      Buffer.add_string buf payload;
      emit_ext_trace buf ext.ext_trace;
      (tag, Buffer.contents buf)
  | _ -> (tag, payload)

let decode_server_raising c tag =
  match tag with
  | 'W' -> (
      match expect_kw "version" (next c) with
      | [ v ] -> Ok (Welcome { version = int_of "version" v })
      | _ -> bad "malformed version line")
  | 'A' -> (
      match fields (next c) with
      | [ s; e; st; l ] ->
          Ok
            (Assign
               {
                 shard = int_of "shard" s;
                 epoch = int_of "epoch" e;
                 start = int_of "start" st;
                 len = int_of "len" l;
               })
      | _ -> bad "malformed assign")
  | 'N' -> (
      match next c with
      | "finished" -> Ok (No_work { finished = true })
      | "wait" -> Ok (No_work { finished = false })
      | l -> bad "malformed no_work %S" l)
  | 'K' -> (
      match fields (next c) with
      | verdict :: reason ->
          Ok (Ack { accepted = verdict = "ok"; reason = String.concat " " reason })
      | [] -> bad "malformed ack")
  | 'P' -> (
      match expect_kw "elapsed" (next c) with
      | [ e ] -> (
          let elapsed_s = float_of "elapsed" e in
          match expect_kw "shards" (next c) with
          | [ n ] ->
              let shards =
                List.init (int_of "shard count" n) (fun _ ->
                    match fields (next c) with
                    | [ "shard"; i; lines ] ->
                        ( int_of "shard id" i,
                          restore_blob (take c (int_of "shard line count" lines)) )
                    | _ -> bad "malformed shard header")
              in
              let quarantined = read_quarantined c in
              Ok (Report { shards; quarantined; elapsed_s })
          | _ -> bad "malformed shards line")
      | _ -> bad "malformed elapsed line")
  | 'Y' -> Ok Report_pending
  | 'X' -> Ok (Reject { reason = String.concat " " (fields (next c)) })
  | 'L' -> Ok (Retry_later { cooldown_s = float_of "cooldown" (next c) })
  | 'J' -> (
      match spec_of_line (rest_of_line "spec" (next c)) with
      | Error msg -> bad "%s" msg
      | Ok spec -> (
          match fields (next c) with
          | [ s; e; st; l ] ->
              Ok
                (Job
                   {
                     spec;
                     shard = int_of "shard" s;
                     epoch = int_of "epoch" e;
                     start = int_of "start" st;
                     len = int_of "len" l;
                   })
          | _ -> bad "malformed job assignment"))
  | 'U' -> (
      let fingerprint = rest_of_line "fingerprint" (next c) in
      match fields (next c) with
      | [ "position"; p; "cached"; cd ] ->
          Ok
            (Submitted
               {
                 fingerprint;
                 position = int_of "position" p;
                 cached =
                   (match cd with
                   | "yes" -> true
                   | "no" -> false
                   | w -> bad "bad cached flag %S" w);
               })
      | _ -> bad "malformed submitted line")
  | 'E' -> (
      match fields (next c) with
      | retry :: reason ->
          Ok
            (Sched_rejected
               { retry_after_s = float_of "retry_after" retry; reason = String.concat " " reason })
      | [] -> bad "malformed sched_rejected")
  | 'T' -> (
      match expect_kw "entries" (next c) with
      | [ n ] ->
          let entries =
            List.init (int_of "entry count" n) (fun _ ->
                let st_fingerprint = rest_of_line "fingerprint" (next c) in
                match fields (next c) with
                | [ "state"; tok; "position"; p; "queue"; q; "done"; d; "total"; t; "rate"; r;
                    "eta"; eta ] ->
                    let st_state =
                      match state_of_token tok with
                      | Some s -> s
                      | None -> bad "unknown campaign state %S" tok
                    in
                    {
                      st_fingerprint;
                      st_state;
                      st_position = int_of "position" p;
                      st_queue_len = int_of "queue" q;
                      st_samples_done = int_of "done" d;
                      st_samples_total = int_of "total" t;
                      st_rate = float_of "rate" r;
                      st_eta_s = float_of "eta" eta;
                      st_detail = rest_of_line "detail" (next c);
                    }
                | _ -> bad "malformed status entry")
          in
          Ok (Status { entries })
      | _ -> bad "malformed entries line")
  | t -> bad "unknown server tag %C" t

let decode_server_ext tag payload =
  let c = { rest = lines_of payload } in
  match decode_server_raising c tag with
  | Ok msg ->
      let ext =
        match msg with
        | Assign _ | Job _ -> { no_extension with ext_trace = read_ext_trace c }
        | _ -> no_extension
      in
      Ok (msg, ext)
  | Error msg -> Error msg
  | exception Bad msg -> Error msg

let decode_server tag payload = Result.map fst (decode_server_ext tag payload)

(* -- legacy (v1) peer detection ----------------------------------------- *)

(* A v1 peer's checksum-less frames surface from Wire.read_frame_raw as
   `Corrupt (tag, raw_v1_payload). A v1 Hello is recognizable by its
   plain-text payload (the Hello payload layout is unchanged since v1),
   so the coordinator can answer with a v1-framed Reject the old peer
   can actually decode, instead of hanging up silently. *)
let v1_hello ~tag raw =
  if tag <> 'H' then None
  else
    match decode_client 'H' raw with
    | Ok (Hello { version; _ }) when version < 2 -> Some version
    | Ok _ | Error _ -> None
