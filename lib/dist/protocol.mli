(** Typed messages of the coordinator/worker protocol and their
    (tag byte, payload) codec over {!Wire} frames.

    The protocol is versioned: a {!Hello} carrying a different
    {!version}, or a campaign fingerprint the coordinator does not
    recognise, is answered with {!Reject} and the connection is closed.
    Tally snapshots travel as verbatim [Ssf.Tally.to_string] blobs and
    quarantine entries as [Campaign.quarantine_entry_to_string] lines —
    the same serializers the durable checkpoint uses, so shard state is
    bit-exact across process boundaries. *)

open Fmc

val version : int
(** 2 since the CRC-framed wire format; v1 peers are refused at Hello
    with a v1-framed {!Reject} they can decode (see {!v1_hello}). *)

type client_msg =
  | Hello of { version : int; worker : string; fingerprint : string }
      (** must be the first message on every connection *)
  | Request_shard
  | Heartbeat of { shard : int; epoch : int; samples_done : int }
      (** renews the lease; answered with {!Ack} — [accepted = false]
          means the lease was lost and the worker must abandon the
          shard *)
  | Shard_done of {
      shard : int;
      epoch : int;
      tally : string;  (** [Ssf.Tally.to_string] of the shard snapshot *)
      quarantined : Campaign.quarantine_entry list;
    }
  | Fetch_report
  | Goodbye

type server_msg =
  | Welcome of { version : int }
  | Assign of { shard : int; epoch : int; start : int; len : int }
  | No_work of { finished : bool }
      (** [finished]: the campaign is complete; otherwise every remaining
          shard is leased out — retry after a delay *)
  | Ack of { accepted : bool; reason : string }
  | Report of {
      shards : (int * string) list;
          (** [(shard id, tally blob)] in ascending shard order *)
      quarantined : Campaign.quarantine_entry list;
      elapsed_s : float;
    }
  | Report_pending  (** campaign not finished yet — poll again *)
  | Reject of { reason : string }
      (** terminal: version/fingerprint mismatch — do not retry *)
  | Retry_later of { cooldown_s : float }
      (** transient refusal (the worker's circuit breaker is open, or
          the coordinator is holding the fleet floor): reconnect after
          at least [cooldown_s] seconds *)

val fingerprint :
  strategy:string ->
  benchmark:string ->
  samples:int ->
  seed:int ->
  shard_size:int ->
  sample_budget:int option ->
  string
(** The campaign identity compared on {!Hello}: every parameter that
    must agree between coordinator and worker for the shard results to
    be meaningful (the sample plan, the seed, and the evaluation knobs
    that change per-sample outcomes). Includes the protocol version. *)

val encode_client : client_msg -> char * string
val decode_client : char -> string -> (client_msg, string) result
val encode_server : server_msg -> char * string
val decode_server : char -> string -> (server_msg, string) result

val v1_hello : tag:char -> string -> int option
(** Recognize a protocol-v1 Hello in a corrupt-frame body
    ([Wire.read_frame_raw]'s [`Corrupt] payload): returns the peer's
    claimed version when the bytes parse as a pre-v2 Hello. The
    coordinator answers such peers with a v1-framed Reject naming the
    version gap, because a v1 peer cannot decode v2 frames. *)
