(** Typed messages of the coordinator/worker protocol and their
    (tag byte, payload) codec over {!Wire} frames.

    The protocol is versioned: a {!Hello} carrying a different
    {!version}, or a campaign fingerprint the coordinator does not
    recognise, is answered with {!Reject} and the connection is closed.
    Tally snapshots travel as verbatim [Ssf.Tally.to_string] blobs and
    quarantine entries as [Campaign.quarantine_entry_to_string] lines —
    the same serializers the durable checkpoint uses, so shard state is
    bit-exact across process boundaries. *)

open Fmc

val version : int
(** 5 since the result-audit digests (v2 introduced the CRC-framed wire
    format, v3 the multi-campaign scheduler messages, v4 the
    fleet-observability extensions). The v4/v5 additions are purely
    additive trailing sections (see {!extension}), so v3 and v4 peers
    are still served: {!accepts_version} admits all three and {!Welcome}
    carries the {!negotiate}d version. v1 peers are refused at Hello
    with a v1-framed {!Reject} they can decode (see {!v1_hello}). *)

val fingerprint_version : int
(** The version embedded in campaign fingerprints — still 3: v4/v5
    changed no per-sample semantics, so v3..v5 peers agree on campaign
    identity. *)

val accepts_version : int -> bool
(** Hello versions a v5 server serves (3, 4 and 5). *)

val negotiate : peer:int -> int
(** [min peer version] — what {!Welcome} answers; both sides only use
    v4/v5 extensions when the negotiated version reaches them. *)

type spec = {
  sp_benchmark : string;
  sp_strategy : string;
  sp_samples : int;
  sp_seed : int;
  sp_shard_size : int;
  sp_sample_budget : int option;
  sp_fault_model : string;
      (** canonical fault-model string ({!Fmc_fault.Model.canonical}
          upstream); specs decoded from pre-field 6-word lines get
          ["disc-transient"] *)
}
(** The full identity of a campaign — what a {!Submit} enqueues and a
    {!Job} hands to a pool worker. Benchmark, strategy and model strings
    must not contain spaces (they never do; the codec would garble
    them). *)

type campaign_state = Queued | Running | Finished | Parked | Cancelled

type status_entry = {
  st_fingerprint : string;
  st_state : campaign_state;
  st_position : int;
      (** 0-based position in the scheduler's queue (0 = next to run, or
          currently leasing shards); -1 when not applicable *)
  st_queue_len : int;  (** total campaigns queued or running *)
  st_samples_done : int;
  st_samples_total : int;
  st_rate : float;  (** pool-wide throughput, samples/second *)
  st_eta_s : float;
      (** estimated seconds until this campaign's report is ready,
          counting the backlog ahead of it; negative when unknown (no
          throughput observed yet) *)
  st_detail : string;  (** human-readable note (park reason, ...) *)
}

type client_msg =
  | Hello of { version : int; worker : string; fingerprint : string }
      (** must be the first message on every connection; the scheduler
          accepts {!pool_fingerprint} for pool-worker and control
          connections *)
  | Request_shard
  | Heartbeat of { shard : int; epoch : int; samples_done : int }
      (** renews the lease; answered with {!Ack} — [accepted = false]
          means the lease was lost and the worker must abandon the
          shard *)
  | Shard_done of {
      shard : int;
      epoch : int;
      tally : string;  (** [Ssf.Tally.to_string] of the shard snapshot *)
      quarantined : Campaign.quarantine_entry list;
    }
  | Fetch_report
  | Goodbye
  | Submit of { spec : spec }
      (** enqueue a campaign; answered with {!Submitted} or
          {!Sched_rejected} *)
  | Status_req of { fingerprint : string }
      (** [""] asks for every campaign the scheduler knows; a concrete
          fingerprint for just that one (unknown → {!Reject}) *)
  | Cancel of { fingerprint : string }  (** answered with {!Ack} *)
  | Job_heartbeat of { fingerprint : string; shard : int; epoch : int; samples_done : int }
      (** pool-scope {!Heartbeat}: names the campaign the lease belongs
          to *)
  | Job_done of {
      fingerprint : string;
      shard : int;
      epoch : int;
      tally : string;
      quarantined : Campaign.quarantine_entry list;
    }  (** pool-scope {!Shard_done} *)

type server_msg =
  | Welcome of { version : int }
  | Assign of { shard : int; epoch : int; start : int; len : int }
  | No_work of { finished : bool }
      (** [finished]: the campaign is complete; otherwise every remaining
          shard is leased out — retry after a delay *)
  | Ack of { accepted : bool; reason : string }
  | Report of {
      shards : (int * string) list;
          (** [(shard id, tally blob)] in ascending shard order *)
      quarantined : Campaign.quarantine_entry list;
      elapsed_s : float;
    }
  | Report_pending  (** campaign not finished yet — poll again *)
  | Reject of { reason : string }
      (** terminal: version/fingerprint mismatch — do not retry *)
  | Retry_later of { cooldown_s : float }
      (** transient refusal (the worker's circuit breaker is open, or
          the coordinator is holding the fleet floor): reconnect after
          at least [cooldown_s] seconds *)
  | Job of { spec : spec; shard : int; epoch : int; start : int; len : int }
      (** pool-scope {!Assign}: carries the campaign spec so the worker
          can build (or reuse) the right engine and sampler *)
  | Submitted of { fingerprint : string; position : int; cached : bool }
      (** the campaign is queued at [position] (0 = front), or [cached]:
          its report is already durable — fetch it for free *)
  | Sched_rejected of { retry_after_s : float; reason : string }
      (** typed admission-control refusal (queue full): resubmit after
          at least [retry_after_s] seconds *)
  | Status of { entries : status_entry list }
      (** answer to {!Status_req}, and to {!Fetch_report} for a campaign
          that is not finished (the entry carries queue position and
          ETA) *)

val fingerprint :
  ?fault_model:string ->
  strategy:string ->
  benchmark:string ->
  samples:int ->
  seed:int ->
  shard_size:int ->
  sample_budget:int option ->
  unit ->
  string
(** The campaign identity compared on {!Hello}: every parameter that
    must agree between coordinator and worker for the shard results to
    be meaningful (the sample plan, the seed, and the evaluation knobs
    that change per-sample outcomes). Includes the protocol version.
    [fault_model] (canonical string, default ["disc-transient"]) is
    appended only when non-default, so default-model fingerprints stay
    byte-identical to pre-field peers while cross-model mismatches
    still fail the handshake's string equality. *)

val pool_fingerprint : string
(** ["*"] — the Hello scope of a connection that is not bound to one
    campaign: pool workers (leased shards from any queued campaign) and
    control clients (submit/status/cancel). *)

val spec_fingerprint : spec -> string
(** {!fingerprint} of a spec — the key campaigns are deduplicated and
    their reports cached under. *)

val spec_line : spec -> string
(** Single-line spec codec ([key=value] words), embedded in Submit and
    Job payloads and in the scheduler's WAL records. Emits 7 words
    ([model=] last). *)

val spec_of_line : string -> (spec, string) result
(** Accepts both the current 7-word form and the pre-fault-model 6-word
    form (→ [sp_fault_model = "disc-transient"]), so WALs written
    before the field replay unchanged. *)

val state_token : campaign_state -> string
(** Wire word for a campaign state ([queued], [running], ...), also
    used verbatim in CLI status output. *)

val state_of_token : string -> campaign_state option

val encode_client : client_msg -> char * string
val decode_client : char -> string -> (client_msg, string) result
val encode_server : server_msg -> char * string
val decode_server : char -> string -> (server_msg, string) result

(** {2 v4 extensions}

    Fleet-observability data rides as trailing payload sections carried
    out-of-band of the message variants, so v3 code (and the plain
    codec above) neither sees nor breaks on them: every decoder in this
    module reads payloads through a line cursor that ignores trailing
    lines it does not consume. *)

type extension = {
  ext_trace : (string * string) option;
      (** [(trace_id, span_id)] ({!Fmc_obs.Traceid}) stamped by the
          coordinator on {!Assign}/{!Job} *)
  ext_telemetry : string option;
      (** encoded [Fmc_obs.Telemetry] blob attached by workers to
          {!Heartbeat}/{!Shard_done}/{!Job_heartbeat}/{!Job_done};
          opaque at this layer *)
  ext_digest : string option;
      (** v5: canonical result digest ([Fmc_audit.Check.result_digest])
          attached by workers to {!Shard_done}/{!Job_done}; the server
          recomputes and compares, treating a mismatch as a corrupt
          frame. Opaque at this layer. *)
}

val no_extension : extension

val encode_client_ext : ?ext:extension -> client_msg -> char * string
(** {!encode_client} plus any applicable extension sections. Fields
    that do not apply to the message type are silently dropped. Only
    send extensions on connections that negotiated v4 — a v3 peer
    ignores them on the wire, but there is no point paying for them. *)

val decode_client_ext : char -> string -> (client_msg * extension, string) result
val encode_server_ext : ?ext:extension -> server_msg -> char * string
val decode_server_ext : char -> string -> (server_msg * extension, string) result

val v1_hello : tag:char -> string -> int option
(** Recognize a protocol-v1 Hello in a corrupt-frame body
    ([Wire.read_frame_raw]'s [`Corrupt] payload): returns the peer's
    claimed version when the bytes parse as a pre-v2 Hello. The
    coordinator answers such peers with a v1-framed Reject naming the
    version gap, because a v1 peer cannot decode v2 frames. *)
