(* Byte-level transport for the distributed campaign service: address
   parsing/listening/connecting plus the length-prefixed frame codec.
   Everything above this layer deals in (tag, payload) pairs; everything
   below is Unix. *)

exception Closed

(* A frame is 4 bytes of big-endian payload length, 1 tag byte, then the
   payload. The length covers the payload only. The cap is far above any
   legitimate message (the largest frames carry tally snapshots, tens of
   kilobytes) and exists so a corrupt or hostile length word cannot make
   us allocate gigabytes. *)
let max_frame = 64 * 1024 * 1024

type conn = {
  fd : Unix.file_descr;
  on_sent : int -> unit;
  on_recv : int -> unit;
}

let ignore_count (_ : int) = ()

let conn ?(on_sent = ignore_count) ?(on_recv = ignore_count) fd =
  { fd; on_sent; on_recv }

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let rec read_all fd buf off len =
  if len > 0 then begin
    let n = Unix.read fd buf off len in
    if n = 0 then raise Closed;
    read_all fd buf (off + n) (len - n)
  end

let write_frame t ~tag payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Wire.write_frame: oversized frame";
  let buf = Bytes.create (5 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.set buf 4 tag;
  Bytes.blit_string payload 0 buf 5 len;
  write_all t.fd buf 0 (Bytes.length buf);
  t.on_sent (Bytes.length buf)

let read_frame t =
  let header = Bytes.create 5 in
  read_all t.fd header 0 5;
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len < 0 || len > max_frame then raise Closed;
  let tag = Bytes.get header 4 in
  let payload = Bytes.create len in
  read_all t.fd payload 0 len;
  t.on_recv (5 + len);
  (tag, Bytes.unsafe_to_string payload)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* -- addresses ---------------------------------------------------------- *)

type addr = Tcp of string * int | Unix_path of string

let parse_addr s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S: expected HOST:PORT or unix:PATH" s)
  | Some i ->
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      if scheme = "unix" then
        if rest = "" then Error "bad address: empty unix socket path"
        else Ok (Unix_path rest)
      else begin
        match int_of_string_opt rest with
        | Some port when port > 0 && port < 65536 -> Ok (Tcp (scheme, port))
        | _ -> Error (Printf.sprintf "bad address %S: invalid port %S" s rest)
      end

let addr_to_string = function
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port
  | Unix_path path -> "unix:" ^ path

let sockaddr_of = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      Unix.ADDR_INET (ip, port)

let listen addr =
  let domain = match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true);
  Unix.bind sock (sockaddr_of addr);
  Unix.listen sock 16;
  sock

let connect ?(attempts = 1) ?(delay_s = 0.5) addr =
  let domain = match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
  let rec go n =
    let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect sock (sockaddr_of addr) with
    | () -> sock
    | exception e ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        if n >= attempts then raise e
        else begin
          Unix.sleepf delay_s;
          go (n + 1)
        end
  in
  go 1
