(* Byte-level transport for the distributed campaign service: address
   parsing/listening/connecting plus the CRC-protected length-prefixed
   frame codec. Everything above this layer deals in (tag, payload)
   pairs; everything below is Unix.

   Failure taxonomy (all typed, nothing escapes as a bare Unix error
   from the frame codec's own checks):
     Closed          — peer EOF (mid-frame counts)
     Protocol_error  — the bytes violate the framing: bad length word,
                       CRC mismatch, short frame
     Timeout         — a read/write deadline expired (SO_RCVTIMEO /
                       SO_SNDTIMEO on the socket) *)

exception Closed
exception Protocol_error of string
exception Timeout

(* A peer severed mid-write (which the chaos proxy does on purpose and
   flaky networks do by accident) must surface as EPIPE — mapped to
   Closed below — not as a process-killing SIGPIPE. Linking this module
   implies owning sockets, so claiming the disposition here is safe. *)
let () =
  if Sys.os_type = "Unix" then
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

(* v2 frame layout:

     [4-byte BE word = 4 + |payload|][1 tag byte][4-byte BE CRC32][payload]

   The leading word counts everything after the tag byte (checksum
   included), so a reader always consumes exactly the bytes the sender
   wrote — even when the checksum turns out wrong — and stream framing
   survives payload corruption. The CRC covers tag ++ payload. A legacy
   v1 frame ([word = |payload|][tag][payload]) therefore parses as a
   short/CRC-failing v2 frame without ever desynchronizing the stream,
   which is what lets the handshake reject v1 peers with a readable
   message instead of hanging (see read_frame_raw / write_frame_v1).

   The cap is far above any legitimate message (the largest frames carry
   tally snapshots, tens of kilobytes) and exists so a corrupt or
   hostile length word cannot make us allocate gigabytes. *)
let max_frame = 64 * 1024 * 1024

type conn = {
  fd : Unix.file_descr;
  on_sent : int -> unit;
  on_recv : int -> unit;
}

let ignore_count (_ : int) = ()

let set_deadline fd s =
  if s > 0. then begin
    (* Unix sockets on some platforms reject these options; a transport
       without deadlines is degraded, not broken. *)
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s with Unix.Unix_error _ -> ());
    try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s with Unix.Unix_error _ -> ()
  end

let conn ?(on_sent = ignore_count) ?(on_recv = ignore_count) ?(deadline_s = 0.) fd =
  set_deadline fd deadline_s;
  { fd; on_sent; on_recv }

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> raise Timeout
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Closed
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

let rec read_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.read fd buf off len with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> raise Timeout
      | Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Closed
      | Unix.Unix_error (Unix.EINTR, _, _) -> -1
    in
    if n = 0 then raise Closed;
    if n < 0 then read_all fd buf off len else read_all fd buf (off + n) (len - n)
  end

let put_u32 buf off v = Bytes.set_int32_be buf off (Int32.of_int v)
let get_u32 buf off = Int32.to_int (Bytes.get_int32_be buf off) land 0xffffffff

let frame_crc ~tag payload = Crc32.extend (Crc32.string (String.make 1 tag)) payload

let write_frame t ~tag payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Wire.write_frame: oversized frame";
  let buf = Bytes.create (9 + len) in
  put_u32 buf 0 (4 + len);
  Bytes.set buf 4 tag;
  put_u32 buf 5 (frame_crc ~tag payload);
  Bytes.blit_string payload 0 buf 9 len;
  write_all t.fd buf 0 (Bytes.length buf);
  t.on_sent (Bytes.length buf)

(* A bare v1 frame ([len][tag][payload], no checksum) — kept only so a
   v2 endpoint can deliver a readable Reject to a v1 peer before
   hanging up. *)
let write_frame_v1 t ~tag payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Wire.write_frame_v1: oversized frame";
  let buf = Bytes.create (5 + len) in
  put_u32 buf 0 len;
  Bytes.set buf 4 tag;
  Bytes.blit_string payload 0 buf 5 len;
  write_all t.fd buf 0 (Bytes.length buf);
  t.on_sent (Bytes.length buf)

let read_frame_raw t =
  let header = Bytes.create 5 in
  read_all t.fd header 0 5;
  let word = get_u32 header 0 in
  if word > max_frame + 4 then
    raise (Protocol_error (Printf.sprintf "frame length %d exceeds the %d-byte cap" word max_frame));
  let tag = Bytes.get header 4 in
  let body = Bytes.create word in
  read_all t.fd body 0 word;
  t.on_recv (5 + word);
  if word < 4 then
    (* Too short to carry a checksum: a v1 peer's tiny frame (empty
       payloads are common: Request_shard, Goodbye) or plain garbage. *)
    `Corrupt (tag, Bytes.unsafe_to_string body)
  else begin
    let claimed = get_u32 body 0 in
    let actual = Crc32.extend_sub (Crc32.string (String.make 1 tag)) body ~pos:4 ~len:(word - 4) in
    if claimed = actual then `Ok (tag, Bytes.sub_string body 4 (word - 4))
    else `Corrupt (tag, Bytes.unsafe_to_string body)
  end

let read_frame t =
  match read_frame_raw t with
  | `Ok (tag, payload) -> (tag, payload)
  | `Corrupt (tag, _) ->
      raise (Protocol_error (Printf.sprintf "frame checksum mismatch (tag %C)" tag))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* -- addresses ---------------------------------------------------------- *)

type addr = Tcp of string * int | Unix_path of string

let parse_addr s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S: expected HOST:PORT or unix:PATH" s)
  | Some i ->
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      if scheme = "unix" then
        if rest = "" then Error "bad address: empty unix socket path"
        else Ok (Unix_path rest)
      else begin
        match int_of_string_opt rest with
        | Some port when port > 0 && port < 65536 -> Ok (Tcp (scheme, port))
        | _ -> Error (Printf.sprintf "bad address %S: invalid port %S" s rest)
      end

let addr_to_string = function
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port
  | Unix_path path -> "unix:" ^ path

let sockaddr_of = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      Unix.ADDR_INET (ip, port)

let listen addr =
  let domain = match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true);
  Unix.bind sock (sockaddr_of addr);
  Unix.listen sock 16;
  sock

let connect ?(attempts = 1) ?(delay_s = 0.5) addr =
  let domain = match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
  let rec go n =
    let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect sock (sockaddr_of addr) with
    | () -> sock
    | exception e ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        if n >= attempts then raise e
        else begin
          Unix.sleepf delay_s;
          go (n + 1)
        end
  in
  go 1
