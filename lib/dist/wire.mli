(** Byte transport for the distributed campaign service (DESIGN.md §10–11).

    A v2 frame is
    [[4-byte BE word = 4 + payload length][1 tag byte][4-byte BE CRC-32][payload]].
    The tag identifies the message ({!Protocol} owns the tag space); the
    payload is an opaque string; the checksum covers tag ++ payload. The
    length word counts everything after the tag byte, so a reader
    consumes exactly the sender's bytes even when the checksum fails —
    payload corruption can never desynchronize the stream. Length words
    above {!max_frame} tear the connection down rather than allocating
    attacker-controlled amounts. *)

exception Closed
(** Peer closed the connection (EOF mid-frame counts). *)

exception Protocol_error of string
(** The byte stream violates the framing: oversized length word, frame
    too short to carry its checksum, or CRC mismatch. The connection
    must be abandoned ({!read_frame} consumed the frame, but its content
    cannot be trusted). *)

exception Timeout
(** A socket deadline expired ([deadline_s] on {!conn}) mid-read or
    mid-write. *)

val max_frame : int

type conn

val conn :
  ?on_sent:(int -> unit) ->
  ?on_recv:(int -> unit) ->
  ?deadline_s:float ->
  Unix.file_descr ->
  conn
(** Wrap a connected socket. [on_sent]/[on_recv] observe the exact wire
    byte counts (header included) of each frame — the hook the metrics
    counters ([fmc_dist_bytes_sent_total] / [..._received_total]) hang
    off. [deadline_s > 0] bounds every subsequent read and write
    ([SO_RCVTIMEO]/[SO_SNDTIMEO]); an expired deadline raises
    {!Timeout}. Default: unbounded. *)

val write_frame : conn -> tag:char -> string -> unit

val write_frame_v1 : conn -> tag:char -> string -> unit
(** Emit a legacy checksum-less v1 frame. Only used to deliver a
    readable [Reject] to a protocol-v1 peer before closing — v1 peers
    cannot parse v2 frames. *)

val read_frame : conn -> char * string
(** Raises {!Protocol_error} on a corrupt frame. *)

val read_frame_raw : conn -> [ `Ok of char * string | `Corrupt of char * string ]
(** Like {!read_frame}, but surfaces a corrupt frame's tag and raw body
    (checksum bytes included) instead of raising. A v1 peer's frame
    always lands here as [`Corrupt (tag, v1_payload)] — the handshake
    uses this to detect v1 Hellos and answer them in kind. *)

val close : conn -> unit

(** {2 Addresses} *)

type addr =
  | Tcp of string * int
  | Unix_path of string  (** a filesystem Unix-domain socket *)

val parse_addr : string -> (addr, string) result
(** ["HOST:PORT"] or ["unix:PATH"]. *)

val addr_to_string : addr -> string
(** Inverse of {!parse_addr}. *)

val listen : addr -> Unix.file_descr
(** Bound, listening socket. A stale Unix socket path is unlinked first;
    TCP sockets get [SO_REUSEADDR]. *)

val connect : ?attempts:int -> ?delay_s:float -> addr -> Unix.file_descr
(** Connect, retrying up to [attempts] times (default 1) [delay_s] apart
    (default 0.5) — lets a worker start before its coordinator is
    listening. Raises the last connection error. *)
