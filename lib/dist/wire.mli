(** Byte transport for the distributed campaign service (DESIGN.md §10).

    A frame is [4-byte big-endian payload length][1 tag byte][payload].
    The tag identifies the message ({!Protocol} owns the tag space); the
    payload is an opaque string. Length words above {!max_frame} tear the
    connection down rather than allocating attacker-controlled amounts. *)

exception Closed
(** Peer closed the connection (EOF mid-frame counts) or sent a frame
    violating the length cap. *)

val max_frame : int

type conn

val conn : ?on_sent:(int -> unit) -> ?on_recv:(int -> unit) -> Unix.file_descr -> conn
(** Wrap a connected socket. [on_sent]/[on_recv] observe the exact wire
    byte counts (header included) of each frame — the hook the metrics
    counters ([fmc_dist_bytes_sent_total] / [..._received_total]) hang
    off. *)

val write_frame : conn -> tag:char -> string -> unit
val read_frame : conn -> char * string
val close : conn -> unit

(** {2 Addresses} *)

type addr =
  | Tcp of string * int
  | Unix_path of string  (** a filesystem Unix-domain socket *)

val parse_addr : string -> (addr, string) result
(** ["HOST:PORT"] or ["unix:PATH"]. *)

val addr_to_string : addr -> string
(** Inverse of {!parse_addr}. *)

val listen : addr -> Unix.file_descr
(** Bound, listening socket. A stale Unix socket path is unlinked first;
    TCP sockets get [SO_REUSEADDR]. *)

val connect : ?attempts:int -> ?delay_s:float -> addr -> Unix.file_descr
(** Connect, retrying up to [attempts] times (default 1) [delay_s] apart
    (default 0.5) — lets a worker start before its coordinator is
    listening. Raises the last connection error. *)
