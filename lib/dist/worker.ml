(* The distributed campaign worker ([faultmc worker]): connect, lease
   shards, run them on the local engine, stream results back.

   Heartbeats ride the run_shard on_sample hook (every heartbeat_every
   samples), synchronously over the protocol connection; a negative ack
   means the coordinator expired our lease, so the shard is abandoned
   mid-run by raising Lease_lost out of the hook — run_shard invokes the
   hook outside its crash guard precisely so this aborts the shard
   instead of quarantining a sample. The abandoned work is harmless: the
   re-issued lease re-runs the shard from its substream and produces the
   bit-identical snapshot.

   Reconnect state machine (DESIGN.md §11): a session is one
   connect/handshake/lease loop. Any transport-level failure mid-session
   (peer gone, corrupt stream, socket deadline, mid-session reject,
   Retry_later parking) abandons the in-flight shard and re-enters
   connecting with exponential backoff and decorrelated jitter — the
   sleep is drawn from the worker's own RNG substream, so a given
   (seed, worker name) retries on a replayable schedule. Epoch fencing
   on the coordinator makes the abandon/retry loop safe: whichever lease
   epoch completes first wins, every other completion is fenced. Only a
   handshake Reject (version/fingerprint mismatch) is terminal. *)

open Fmc
open Fmc_prelude
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics
module Clock = Fmc_obs.Clock
module Span = Fmc_obs.Span
module Telemetry = Fmc_obs.Telemetry

exception Lease_lost
exception Rejected of string

(* Internal: mid-session protocol trouble that should tear the session
   down and reconnect rather than kill the worker. *)
exception Session_error of string

(* Internal: the coordinator parked us (circuit breaker open); reconnect
   no earlier than the given cooldown. *)
exception Parked of float

type retry = {
  base_s : float;
  cap_s : float;
  max_attempts : int;
  budget_s : float;
}

let default_retry = { base_s = 0.2; cap_s = 10.; max_attempts = 10; budget_s = 300. }

type config = {
  addr : Wire.addr;
  worker_name : string;
  heartbeat_every : int;  (* samples between heartbeats; 0 disables *)
  retry_delay_s : float;  (* poll delay when every shard is leased out *)
  connect_attempts : int;  (* TCP connect retries within one session attempt *)
  io_deadline_s : float;  (* socket read/write deadline *)
  retry : retry;  (* reconnect state-machine tuning *)
  send_digest : bool;  (* attach the v5 result digest to completions *)
}

let default_config ~addr ~worker_name =
  {
    addr;
    worker_name;
    heartbeat_every = 100;
    retry_delay_s = 0.5;
    connect_attempts = 20;
    io_deadline_s = 120.;
    retry = default_retry;
    send_digest = true;
  }

type mx = {
  reconnects : Metrics.counter option;
  backoff : Metrics.histogram option;
}

let mx_create (obs : Obs.t) =
  match obs.Obs.metrics with
  | None -> { reconnects = None; backoff = None }
  | Some r ->
      {
        reconnects =
          Some
            (Metrics.counter r ~help:"session teardowns that re-entered connecting"
               "fmc_dist_reconnects_total");
        backoff =
          Some
            (Metrics.histogram r ~help:"reconnect backoff sleeps"
               ~buckets:[| 0.05; 0.1; 0.25; 0.5; 1.; 2.; 5.; 10.; 30. |]
               "fmc_dist_reconnect_backoff_seconds");
      }

let protocol_error what = raise (Session_error ("unexpected reply to " ^ what))

let wire_conn (obs : Obs.t) ~deadline_s fd =
  match obs.Obs.metrics with
  | None -> Wire.conn ~deadline_s fd
  | Some r ->
      let sent = Metrics.counter r ~help:"protocol bytes sent" "fmc_dist_bytes_sent_total" in
      let received =
        Metrics.counter r ~help:"protocol bytes received" "fmc_dist_bytes_received_total"
      in
      Wire.conn ~deadline_s fd
        ~on_sent:(fun n -> Metrics.add sent (float_of_int n))
        ~on_recv:(fun n -> Metrics.add received (float_of_int n))

let send ?ext conn msg =
  let tag, payload = Protocol.encode_client_ext ?ext msg in
  Wire.write_frame conn ~tag payload

let recv_ext conn what =
  let tag, payload = Wire.read_frame conn in
  match Protocol.decode_server_ext tag payload with
  | Ok (Protocol.Retry_later { cooldown_s }, _) -> raise (Parked cooldown_s)
  | Ok pair -> pair
  | Error msg -> raise (Session_error (msg ^ " (reply to " ^ what ^ ")"))

let recv conn what = fst (recv_ext conn what)

(* A handshake Reject is terminal (wrong version or wrong campaign — no
   amount of retrying fixes that); any Reject after the Welcome is a
   session-level complaint and goes through the reconnect machinery.
   Returns the negotiated protocol version — telemetry piggybacks and
   trace stamps only flow when it is >= 4. *)
let handshake conn ~worker ~fingerprint =
  send conn (Protocol.Hello { version = Protocol.version; worker; fingerprint });
  match recv conn "hello" with
  | Protocol.Welcome { version } -> version
  | Protocol.Reject { reason } -> raise (Rejected reason)
  | _ -> protocol_error "hello"

let connect ?(obs = Obs.disabled) config ~fingerprint =
  let fd =
    Wire.connect ~attempts:config.connect_attempts ~delay_s:config.retry_delay_s config.addr
  in
  let conn = wire_conn obs ~deadline_s:config.io_deadline_s fd in
  match handshake conn ~worker:config.worker_name ~fingerprint with
  | negotiated -> (conn, negotiated)
  | exception e ->
      Wire.close conn;
      raise e

(* The v4 telemetry piggyback: the worker's full registry snapshot
   (cumulative — the receiver replaces its previous copy rather than
   adding) plus any newly completed shard span. Built fresh per message;
   consumes no RNG and never touches sampling state, so attaching it
   cannot perturb the campaign. *)
let telemetry_ext (obs : Obs.t) ~trace_id ~spans =
  let metrics =
    match obs.Obs.metrics with Some r -> Metrics.snapshot r | None -> []
  in
  {
    Protocol.no_extension with
    Protocol.ext_telemetry =
      Some (Telemetry.encode (Telemetry.make ~trace_id ~metrics ~spans ()));
  }

(* The v5 digest piggyback: stamp the canonical result digest onto a
   completion's extension so the server can verify the payload survived
   the trip (and use it as the audit comparison key). *)
let digest_ext config ~negotiated ~tally ~quarantined ext =
  if negotiated >= 5 && config.send_digest then
    let base = Option.value ext ~default:Protocol.no_extension in
    Some
      {
        base with
        Protocol.ext_digest =
          Some (Fmc_audit.Audit.Check.result_digest ~tally ~quarantined);
      }
  else ext

let shard_span (obs : Obs.t) ~span_id ~shard ~t0 =
  {
    Telemetry.ss_span_id = span_id;
    ss_event =
      {
        Span.ev_name = Printf.sprintf "shard-%d" shard;
        ev_cat = "dist";
        ev_tid = (match obs.Obs.tracer with Some tr -> Span.tid tr | None -> 0);
        ev_ts_us = t0;
        ev_dur_us = Clock.now_us () -. t0;
      };
  }

(* -- the reconnect state machine ---------------------------------------- *)

let transient_reason = function
  | Wire.Closed -> Some "connection closed"
  | Wire.Timeout -> Some "socket deadline"
  | Wire.Protocol_error msg -> Some msg
  | Session_error msg -> Some msg
  | Parked cooldown_s -> Some (Printf.sprintf "parked for %.1fs by the coordinator" cooldown_s)
  | Unix.Unix_error (e, _, _) -> Some (Unix.error_message e)
  | Sys_error msg -> Some msg
  | _ -> None

(* Decorrelated jitter (base grows multiplicatively but each sleep is a
   fresh uniform draw in [base, prev * 3]), capped per-sleep. *)
let next_backoff rng retry ~prev =
  let hi = Float.max (retry.base_s *. 1.5) (prev *. 3.) in
  Float.min retry.cap_s (retry.base_s +. Rng.float rng (hi -. retry.base_s))

(* Drive [session] to completion through the reconnect state machine:
   any transient failure sleeps a decorrelated-jitter backoff and
   retries; [progress] is sampled around each session so a session that
   accomplished something resets the consecutive-attempt counter (the
   total sleep budget never resets). *)
let with_reconnects ~obs ~mx ~rng ~retry ~on_reconnect ~progress session =
  let attempt = ref 0 in
  let slept = ref 0. in
  let prev = ref retry.base_s in
  let finished = ref false in
  while not !finished do
    let before = progress () in
    match session () with
    | () -> finished := true
    | exception e -> (
        match transient_reason e with
        | None -> raise e
        | Some reason ->
            (* A session that completed at least one shard was real
               progress: the consecutive-attempt count restarts (the
               total sleep budget never does, so a terminally flapping
               link still terminates). *)
            if progress () > before then attempt := 1 else incr attempt;
            if !attempt > retry.max_attempts then
              failwith
                (Printf.sprintf "giving up after %d reconnect attempts (last: %s)"
                   retry.max_attempts reason);
            let sleep_s = next_backoff rng retry ~prev:!prev in
            (* A Parked cooldown is a floor, not a suggestion: coming
               back early just burns another breaker probe. *)
            let sleep_s =
              match e with Parked cooldown_s -> Float.max sleep_s cooldown_s | _ -> sleep_s
            in
            if !slept +. sleep_s > retry.budget_s then
              failwith
                (Printf.sprintf "reconnect budget (%.1fs) exhausted after %d attempts (last: %s)"
                   retry.budget_s !attempt reason);
            prev := sleep_s;
            slept := !slept +. sleep_s;
            Option.iter Metrics.inc mx.reconnects;
            Option.iter (fun h -> Metrics.observe h sleep_s) mx.backoff;
            on_reconnect ~attempt:!attempt ~sleep_s ~reason;
            Obs.span obs ~cat:"dist" "reconnect-backoff" (fun () -> Unix.sleepf sleep_s))
  done

let run ?(obs = Obs.disabled) ?causal ?sample_budget ?inject
    ?(on_reconnect = fun ~attempt:_ ~sleep_s:_ ~reason:_ -> ()) config ~fingerprint engine
    prepared ~seed =
  let mx = mx_create obs in
  let completed = ref 0 in
  (* One session: serve leases until the campaign finishes. Raises on
     any transport trouble; returns on No_work{finished}. *)
  let session () =
    let conn, negotiated = connect ~obs config ~fingerprint in
    let v4 = negotiated >= 4 in
    let run_one ((a : Protocol.server_msg), (aext : Protocol.extension)) =
      match a with
      | Protocol.Assign { shard; epoch; start; len } ->
          let trace_id, span_id =
            match aext.Protocol.ext_trace with
            | Some (t, s) when v4 -> (t, s)
            | _ -> ("", "")
          in
          let piggyback spans =
            if v4 then Some (telemetry_ext obs ~trace_id ~spans) else None
          in
          let on_sample i =
            if config.heartbeat_every > 0 && i mod config.heartbeat_every = 0 then begin
              send ?ext:(piggyback []) conn
                (Protocol.Heartbeat { shard; epoch; samples_done = i });
              match recv conn "heartbeat" with
              | Protocol.Ack { accepted = true; _ } -> ()
              | Protocol.Ack { accepted = false; _ } -> raise Lease_lost
              | _ -> protocol_error "heartbeat"
            end
          in
          let t0 = Clock.now_us () in
          (match
             Campaign.run_shard ~obs ?causal ?sample_budget ?inject ~on_sample engine prepared
               ~seed ~shard ~start ~len
           with
          | sh ->
              let tally = Ssf.Tally.to_string sh.Campaign.sh_snapshot in
              let quarantined = sh.Campaign.sh_quarantined in
              send
                ?ext:
                  (digest_ext config ~negotiated ~tally ~quarantined
                     (piggyback [ shard_span obs ~span_id ~shard ~t0 ]))
                conn
                (Protocol.Shard_done { shard; epoch; tally; quarantined });
              (match recv conn "shard_done" with
              | Protocol.Ack { accepted; _ } -> if accepted then incr completed
              | _ -> protocol_error "shard_done")
          | exception Lease_lost -> ());
          `Continue
      | Protocol.No_work { finished = true } -> `Finished
      | Protocol.No_work { finished = false } ->
          Unix.sleepf config.retry_delay_s;
          `Continue
      | Protocol.Reject { reason } -> raise (Session_error ("rejected: " ^ reason))
      | _ -> protocol_error "request_shard"
    in
    Fun.protect
      ~finally:(fun () -> Wire.close conn)
      (fun () ->
        let rec loop () =
          send conn Protocol.Request_shard;
          match run_one (recv_ext conn "request_shard") with
          | `Continue -> loop ()
          | `Finished -> (
              try send conn Protocol.Goodbye
              with Wire.Closed | Wire.Timeout | Unix.Unix_error _ -> ())
        in
        loop ())
  in
  (* The worker's backoff schedule is drawn from its own substream of
     the campaign seed, so a (seed, worker name) pair retries on a
     replayable schedule under the chaos harness. *)
  let rng =
    Rng.substream ~seed:(Int64.of_int seed)
      ~shard:(Hashtbl.hash config.worker_name land 0x3FFFFFFF)
  in
  with_reconnects ~obs ~mx ~rng ~retry:config.retry ~on_reconnect
    ~progress:(fun () -> !completed)
    session;
  !completed

(* -- pool mode: serve every campaign the scheduler holds ----------------- *)

let run_pool ?(obs = Obs.disabled) ?causal
    ?(on_reconnect = fun ~attempt:_ ~sleep_s:_ ~reason:_ -> ()) config ~resolve () =
  let mx = mx_create obs in
  let completed = ref 0 in
  (* Engines are expensive to elaborate; resolve each spec's toolchain
     once and reuse it for every later job of the same campaign (and, in
     the resolver's discretion, across campaigns sharing a benchmark). *)
  let resolved : (string, Engine.t * Sampler.prepared * Ssf.inject option) Hashtbl.t =
    Hashtbl.create 8
  in
  let toolchain_for spec =
    let fp = Protocol.spec_fingerprint spec in
    match Hashtbl.find_opt resolved fp with
    | Some triple -> Ok triple
    | None -> (
        match resolve spec with
        | Ok triple ->
            Hashtbl.replace resolved fp triple;
            Ok triple
        | Error _ as e -> e)
  in
  let session () =
    let conn, negotiated = connect ~obs config ~fingerprint:Protocol.pool_fingerprint in
    let v4 = negotiated >= 4 in
    let run_one ((a : Protocol.server_msg), (aext : Protocol.extension)) =
      match a with
      | Protocol.Job { spec; shard; epoch; start; len } -> (
          let fingerprint = Protocol.spec_fingerprint spec in
          match toolchain_for spec with
          | Error reason ->
              (* We cannot build this campaign (unknown benchmark or
                 strategy on this host). Tear the session down: the
                 abandoned lease expires to another worker, and if every
                 session hits the same wall the reconnect budget turns
                 the misconfiguration into a clear terminal failure. *)
              raise (Session_error ("cannot build campaign: " ^ reason))
          | Ok (engine, prepared, inject) ->
              let trace_id, span_id =
                match aext.Protocol.ext_trace with
                | Some (t, s) when v4 -> (t, s)
                | _ -> ("", "")
              in
              let piggyback spans =
                if v4 then Some (telemetry_ext obs ~trace_id ~spans) else None
              in
              let on_sample i =
                if config.heartbeat_every > 0 && i mod config.heartbeat_every = 0 then begin
                  send ?ext:(piggyback []) conn
                    (Protocol.Job_heartbeat { fingerprint; shard; epoch; samples_done = i });
                  match recv conn "job_heartbeat" with
                  | Protocol.Ack { accepted = true; _ } -> ()
                  | Protocol.Ack { accepted = false; _ } -> raise Lease_lost
                  | _ -> protocol_error "job_heartbeat"
                end
              in
              let t0 = Clock.now_us () in
              (match
                 Campaign.run_shard ~obs ?causal ?sample_budget:spec.Protocol.sp_sample_budget
                   ?inject ~on_sample engine prepared ~seed:spec.Protocol.sp_seed ~shard ~start
                   ~len
               with
              | sh ->
                  let tally = Ssf.Tally.to_string sh.Campaign.sh_snapshot in
                  let quarantined = sh.Campaign.sh_quarantined in
                  send
                    ?ext:
                      (digest_ext config ~negotiated ~tally ~quarantined
                         (piggyback [ shard_span obs ~span_id ~shard ~t0 ]))
                    conn
                    (Protocol.Job_done { fingerprint; shard; epoch; tally; quarantined });
                  (match recv conn "job_done" with
                  | Protocol.Ack { accepted; _ } -> if accepted then incr completed
                  | _ -> protocol_error "job_done")
              | exception Lease_lost -> ());
              `Continue)
      | Protocol.No_work { finished = true } -> `Finished
      | Protocol.No_work { finished = false } ->
          Unix.sleepf config.retry_delay_s;
          `Continue
      | Protocol.Reject { reason } -> raise (Session_error ("rejected: " ^ reason))
      | _ -> protocol_error "request_shard"
    in
    Fun.protect
      ~finally:(fun () -> Wire.close conn)
      (fun () ->
        let rec loop () =
          send conn Protocol.Request_shard;
          match run_one (recv_ext conn "request_shard") with
          | `Continue -> loop ()
          | `Finished -> (
              try send conn Protocol.Goodbye
              with Wire.Closed | Wire.Timeout | Unix.Unix_error _ -> ())
        in
        loop ())
  in
  let rng =
    Rng.substream ~seed:1L ~shard:(Hashtbl.hash config.worker_name land 0x3FFFFFFF)
  in
  with_reconnects ~obs ~mx ~rng ~retry:config.retry ~on_reconnect
    ~progress:(fun () -> !completed)
    session;
  !completed

(* -- report fetching ----------------------------------------------------- *)

type fetch_error =
  | Fetch_timeout of float
  | Fetch_rejected of string
  | Fetch_unreachable of string
  | Fetch_protocol of string

let fetch_error_message = function
  | Fetch_timeout waited ->
      Printf.sprintf "timed out after %.1fs waiting for the campaign to finish" waited
  | Fetch_rejected reason -> "rejected by coordinator: " ^ reason
  | Fetch_unreachable reason -> "cannot reach coordinator: " ^ reason
  | Fetch_protocol reason -> "protocol error: " ^ reason

let fetch_report ?(obs = Obs.disabled) ?(poll_s = 0.25) ?(poll_cap_s = 2.) ?(timeout_s = 600.)
    ?on_pending config ~fingerprint =
  match connect ~obs config ~fingerprint with
  | exception Rejected reason -> Error (Fetch_rejected reason)
  | exception Parked cooldown_s ->
      Error (Fetch_rejected (Printf.sprintf "parked for %.1fs (circuit open)" cooldown_s))
  | exception Unix.Unix_error (e, _, _) -> Error (Fetch_unreachable (Unix.error_message e))
  | exception Failure msg -> Error (Fetch_unreachable msg)
  | exception Wire.Closed -> Error (Fetch_unreachable "connection closed during handshake")
  | exception Wire.Timeout -> Error (Fetch_timeout 0.)
  | exception Wire.Protocol_error msg -> Error (Fetch_protocol msg)
  | exception Session_error msg -> Error (Fetch_protocol msg)
  | conn, _ ->
      let started = Clock.now () in
      Fun.protect
        ~finally:(fun () -> Wire.close conn)
        (fun () ->
          (* The poll interval backs off geometrically to its cap: quick
             answers stay quick, long campaigns do not get hammered. *)
          let rec poll interval =
            send conn Protocol.Fetch_report;
            match recv conn "fetch_report" with
            | Protocol.Report { shards; quarantined; elapsed_s } ->
                (try send conn Protocol.Goodbye with Wire.Closed | Unix.Unix_error _ -> ());
                Ok (shards, quarantined, elapsed_s)
            | Protocol.Report_pending ->
                let waited = Clock.now () -. started in
                if waited > timeout_s then Error (Fetch_timeout waited)
                else begin
                  Unix.sleepf interval;
                  poll (Float.min poll_cap_s (interval *. 1.5))
                end
            (* A scheduler answers a pending fetch with the campaign's
               queue entry instead of a bare Report_pending, so the
               waiting client can show position and ETA. *)
            | Protocol.Status { entries } -> (
                match entries with
                | { Protocol.st_state = Protocol.Cancelled; _ } :: _ ->
                    Error (Fetch_rejected "campaign was cancelled")
                | entry :: _ ->
                    (match on_pending with Some f -> f entry | None -> ());
                    let waited = Clock.now () -. started in
                    if waited > timeout_s then Error (Fetch_timeout waited)
                    else begin
                      Unix.sleepf interval;
                      poll (Float.min poll_cap_s (interval *. 1.5))
                    end
                | [] -> Error (Fetch_rejected "unknown campaign"))
            | Protocol.Reject { reason } -> Error (Fetch_rejected reason)
            | _ -> Error (Fetch_protocol "unexpected reply to fetch_report")
          in
          try poll poll_s with
          | Wire.Closed -> Error (Fetch_unreachable "coordinator closed the connection")
          | Wire.Timeout -> Error (Fetch_timeout (Clock.now () -. started))
          | Wire.Protocol_error msg -> Error (Fetch_protocol msg)
          | Session_error msg -> Error (Fetch_protocol msg)
          | Parked cooldown_s ->
              Error (Fetch_rejected (Printf.sprintf "parked for %.1fs (circuit open)" cooldown_s)))

(* -- scheduler control clients ------------------------------------------- *)

type submit_reply =
  | Submit_queued of int
  | Submit_cached
  | Submit_rejected of { retry_after_s : float; reason : string }

(* One-shot request/reply on a pool-scoped connection; every failure is
   a typed Error string (control commands are run by humans and scripts,
   not the reconnect state machine). *)
let control ?(obs = Obs.disabled) config msg ~what ~reply =
  match connect ~obs config ~fingerprint:Protocol.pool_fingerprint with
  | exception Rejected reason -> Error ("rejected: " ^ reason)
  | exception Parked cooldown_s -> Error (Printf.sprintf "parked for %.1fs (circuit open)" cooldown_s)
  | exception Unix.Unix_error (e, _, _) ->
      Error ("cannot reach scheduler: " ^ Unix.error_message e)
  | exception Failure msg -> Error ("cannot reach scheduler: " ^ msg)
  | exception Wire.Closed -> Error "scheduler closed the connection during handshake"
  | exception Wire.Timeout -> Error "socket deadline expired during handshake"
  | exception Wire.Protocol_error msg -> Error msg
  | exception Session_error msg -> Error msg
  | conn, _ ->
      Fun.protect
        ~finally:(fun () -> Wire.close conn)
        (fun () ->
          try
            send conn msg;
            let r = reply (recv conn what) in
            (try send conn Protocol.Goodbye with Wire.Closed | Unix.Unix_error _ -> ());
            r
          with
          | Wire.Closed -> Error "scheduler closed the connection"
          | Wire.Timeout -> Error "socket deadline expired"
          | Wire.Protocol_error msg | Session_error msg -> Error msg
          | Parked cooldown_s -> Error (Printf.sprintf "parked for %.1fs (circuit open)" cooldown_s))

let submit ?obs config spec =
  control ?obs config (Protocol.Submit { spec }) ~what:"submit" ~reply:(function
    | Protocol.Submitted { cached = true; _ } -> Ok Submit_cached
    | Protocol.Submitted { position; _ } -> Ok (Submit_queued position)
    | Protocol.Sched_rejected { retry_after_s; reason } ->
        Ok (Submit_rejected { retry_after_s; reason })
    | Protocol.Reject { reason } -> Error reason
    | _ -> Error "unexpected reply to submit")

let sched_status ?obs config ~fingerprint =
  control ?obs config
    (Protocol.Status_req { fingerprint })
    ~what:"status" ~reply:(function
    | Protocol.Status { entries } -> Ok entries
    | Protocol.Reject { reason } -> Error reason
    | _ -> Error "unexpected reply to status")

let cancel ?obs config ~fingerprint =
  control ?obs config
    (Protocol.Cancel { fingerprint })
    ~what:"cancel" ~reply:(function
    | Protocol.Ack { accepted; reason } -> Ok (accepted, reason)
    | Protocol.Reject { reason } -> Error reason
    | _ -> Error "unexpected reply to cancel")
