(* The distributed campaign worker ([faultmc worker]): connect, lease
   shards, run them on the local engine, stream results back.

   Heartbeats ride the run_shard on_sample hook (every heartbeat_every
   samples), synchronously over the protocol connection; a negative ack
   means the coordinator expired our lease, so the shard is abandoned
   mid-run by raising Lease_lost out of the hook — run_shard invokes the
   hook outside its crash guard precisely so this aborts the shard
   instead of quarantining a sample. The abandoned work is harmless: the
   re-issued lease re-runs the shard from its substream and produces the
   bit-identical snapshot. *)

open Fmc
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics

exception Lease_lost
exception Rejected of string

type config = {
  addr : Wire.addr;
  worker_name : string;
  heartbeat_every : int;  (* samples between heartbeats; 0 disables *)
  retry_delay_s : float;  (* backoff when every shard is leased out *)
  connect_attempts : int;
}

let default_config ~addr ~worker_name =
  { addr; worker_name; heartbeat_every = 100; retry_delay_s = 0.5; connect_attempts = 20 }

let protocol_error what = failwith ("protocol error: unexpected reply to " ^ what)

let wire_conn (obs : Obs.t) fd =
  match obs.Obs.metrics with
  | None -> Wire.conn fd
  | Some r ->
      let sent = Metrics.counter r ~help:"protocol bytes sent" "fmc_dist_bytes_sent_total" in
      let received =
        Metrics.counter r ~help:"protocol bytes received" "fmc_dist_bytes_received_total"
      in
      Wire.conn fd
        ~on_sent:(fun n -> Metrics.add sent (float_of_int n))
        ~on_recv:(fun n -> Metrics.add received (float_of_int n))

let send conn msg =
  let tag, payload = Protocol.encode_client msg in
  Wire.write_frame conn ~tag payload

let recv conn what =
  let tag, payload = Wire.read_frame conn in
  match Protocol.decode_server tag payload with
  | Ok msg -> msg
  | Error msg -> failwith ("protocol error: " ^ msg ^ " (reply to " ^ what ^ ")")

let handshake conn ~worker ~fingerprint =
  send conn (Protocol.Hello { version = Protocol.version; worker; fingerprint });
  match recv conn "hello" with
  | Protocol.Welcome _ -> ()
  | Protocol.Reject { reason } -> raise (Rejected reason)
  | _ -> protocol_error "hello"

let connect ?(obs = Obs.disabled) config ~fingerprint =
  let fd =
    Wire.connect ~attempts:config.connect_attempts ~delay_s:config.retry_delay_s config.addr
  in
  let conn = wire_conn obs fd in
  (match handshake conn ~worker:config.worker_name ~fingerprint with
  | () -> ()
  | exception e ->
      Wire.close conn;
      raise e);
  conn

let run ?(obs = Obs.disabled) ?causal ?sample_budget config ~fingerprint engine prepared
    ~seed =
  let conn = connect ~obs config ~fingerprint in
  let completed = ref 0 in
  let run_one (a : Protocol.server_msg) =
    match a with
    | Protocol.Assign { shard; epoch; start; len } ->
        let on_sample i =
          if config.heartbeat_every > 0 && i mod config.heartbeat_every = 0 then begin
            send conn (Protocol.Heartbeat { shard; epoch; samples_done = i });
            match recv conn "heartbeat" with
            | Protocol.Ack { accepted = true; _ } -> ()
            | Protocol.Ack { accepted = false; _ } -> raise Lease_lost
            | _ -> protocol_error "heartbeat"
          end
        in
        (match
           Campaign.run_shard ~obs ?causal ?sample_budget ~on_sample engine prepared ~seed
             ~shard ~start ~len
         with
        | sh ->
            send conn
              (Protocol.Shard_done
                 {
                   shard;
                   epoch;
                   tally = Ssf.Tally.to_string sh.Campaign.sh_snapshot;
                   quarantined = sh.Campaign.sh_quarantined;
                 });
            (match recv conn "shard_done" with
            | Protocol.Ack { accepted; _ } -> if accepted then incr completed
            | _ -> protocol_error "shard_done")
        | exception Lease_lost -> ());
        `Continue
    | Protocol.No_work { finished = true } -> `Finished
    | Protocol.No_work { finished = false } ->
        Unix.sleepf config.retry_delay_s;
        `Continue
    | Protocol.Reject { reason } -> raise (Rejected reason)
    | _ -> protocol_error "request_shard"
  in
  Fun.protect
    ~finally:(fun () -> Wire.close conn)
    (fun () ->
      let rec loop () =
        send conn Protocol.Request_shard;
        match run_one (recv conn "request_shard") with
        | `Continue -> loop ()
        | `Finished -> send conn Protocol.Goodbye
      in
      loop ());
  !completed

let fetch_report ?(obs = Obs.disabled) ?(poll_s = 0.5) ?(timeout_s = 600.) config
    ~fingerprint =
  match connect ~obs config ~fingerprint with
  | exception Rejected reason -> Error ("rejected by coordinator: " ^ reason)
  | exception Unix.Unix_error (e, _, _) ->
      Error ("cannot reach coordinator: " ^ Unix.error_message e)
  | conn ->
      let deadline = Unix.gettimeofday () +. timeout_s in
      Fun.protect
        ~finally:(fun () -> Wire.close conn)
        (fun () ->
          let rec poll () =
            send conn Protocol.Fetch_report;
            match recv conn "fetch_report" with
            | Protocol.Report { shards; quarantined; elapsed_s } ->
                (try send conn Protocol.Goodbye with Wire.Closed | Unix.Unix_error _ -> ());
                Ok (shards, quarantined, elapsed_s)
            | Protocol.Report_pending ->
                if Unix.gettimeofday () > deadline then
                  Error "timed out waiting for the campaign to finish"
                else begin
                  Unix.sleepf poll_s;
                  poll ()
                end
            | Protocol.Reject { reason } -> Error ("rejected: " ^ reason)
            | _ -> Error "protocol error: unexpected reply to fetch_report"
          in
          try poll () with Wire.Closed -> Error "coordinator closed the connection")
