(** The distributed campaign worker ([faultmc worker]) and the report
    client ([faultmc evaluate --connect]).

    A worker builds its engine/prepared sampler locally (the same way a
    local campaign would), connects, and loops: lease a shard, run it
    under the shard's RNG substream via {!Campaign.run_shard}, stream
    the tally snapshot + quarantine entries back. Heartbeats are sent
    from the per-sample hook; a negatively-acked heartbeat (lost lease)
    abandons the shard mid-run — the re-issued lease reproduces the
    bit-identical result elsewhere.

    Reconnects (DESIGN.md §11): a transport failure mid-campaign
    (connection drop, corrupt stream, socket deadline, mid-session
    reject, [Retry_later] parking) no longer kills the worker. The
    in-flight shard is abandoned to epoch fencing and the worker
    re-enters connecting with exponential backoff and decorrelated
    jitter, bounded by {!retry.max_attempts} consecutive attempts and a
    {!retry.budget_s} total-sleep budget. The backoff schedule draws
    from the worker's own RNG substream of the campaign seed, so it
    replays under the chaos harness. Only a handshake [Reject]
    (version or fingerprint mismatch) is terminal.

    Fleet observability (protocol v4): when the handshake negotiates
    v4, the worker reads the trace/span ids the coordinator stamps on
    each [Assign]/[Job] and piggybacks a {!Fmc_obs.Telemetry} batch on
    its existing messages — metrics-snapshot-only on heartbeats, the
    snapshot plus one span summary covering the shard's wall time on
    [Shard_done]/[Job_done]. The piggyback consumes no RNG and touches
    no sampling state, so reports stay byte-identical with or without
    it; against a v3 coordinator nothing extra is sent. *)

open Fmc

exception Lease_lost
(** Raised (internally) out of the heartbeat hook when the coordinator
    fenced our lease; exposed for tests that drive the hook directly. *)

exception Rejected of string
(** The coordinator refused the handshake (protocol version or campaign
    fingerprint mismatch). Terminal: retrying cannot help. *)

type retry = {
  base_s : float;  (** first backoff sleep *)
  cap_s : float;  (** per-sleep ceiling *)
  max_attempts : int;  (** consecutive failed sessions before giving up *)
  budget_s : float;  (** total backoff sleep across the whole run *)
}

val default_retry : retry
(** base 0.2s, cap 10s, 10 attempts, 300s budget. *)

val next_backoff : Fmc_prelude.Rng.t -> retry -> prev:float -> float
(** One decorrelated-jitter draw: uniform in
    [\[base_s, max (1.5 * base_s) (3 * prev)\]], capped at [cap_s].
    Exposed so the jitter bounds are testable; {!run} feeds each sleep
    back as the next [prev]. *)

type config = {
  addr : Wire.addr;
  worker_name : string;
  heartbeat_every : int;  (** samples between heartbeats; 0 disables *)
  retry_delay_s : float;  (** poll delay when all shards are leased out *)
  connect_attempts : int;  (** TCP connect retries within one session *)
  io_deadline_s : float;  (** socket read/write deadline ({!Wire.conn}) *)
  retry : retry;  (** reconnect state-machine tuning *)
  send_digest : bool;
      (** attach the canonical result digest to Shard_done/Job_done on
          v5 connections (default). Disabling simulates a pre-v5 worker;
          the server then recomputes digests itself. *)
}

val default_config : addr:Wire.addr -> worker_name:string -> config
(** heartbeat every 100 samples, 0.5s retry, 20 connect attempts, 120s
    io deadline, {!default_retry}. *)

val run :
  ?obs:Fmc_obs.Obs.t ->
  ?causal:bool ->
  ?sample_budget:int ->
  ?inject:Ssf.inject ->
  ?on_reconnect:(attempt:int -> sleep_s:float -> reason:string -> unit) ->
  config ->
  fingerprint:string ->
  Engine.t ->
  Sampler.prepared ->
  seed:int ->
  int
(** Work until the coordinator reports the campaign finished; returns
    the number of shard results this worker got accepted. [causal],
    [sample_budget], [inject] (the campaign's fault-model injector,
    omitted for disc-transient) and [seed] must match the fingerprint's
    campaign (the fingerprint encodes them — a mismatch is rejected at
    hello).
    [on_reconnect] fires before each backoff sleep (CLI logging).
    Under [obs], counts wire bytes, [fmc_dist_reconnects_total], the
    [fmc_dist_reconnect_backoff_seconds] histogram, and inherits
    {!Campaign.run_shard}'s spans and tally metrics. Raises {!Rejected}
    on a handshake refusal and [Failure] once the reconnect attempt cap
    or time budget is exhausted. *)

val run_pool :
  ?obs:Fmc_obs.Obs.t ->
  ?causal:bool ->
  ?on_reconnect:(attempt:int -> sleep_s:float -> reason:string -> unit) ->
  config ->
  resolve:(Protocol.spec -> (Engine.t * Sampler.prepared * Ssf.inject option, string) result) ->
  unit ->
  int
(** Pool mode ([faultmc worker --pool]): hello with
    {!Protocol.pool_fingerprint} and lease shards from whichever
    campaign the scheduler wants run, until it answers
    [No_work {finished = true}] (drained and told to exit). Each
    {!Protocol.Job} carries its campaign's {!Protocol.spec}; [resolve]
    turns a spec into the local engine and prepared sampler (typically
    by elaborating the named benchmark) — resolutions are cached by
    fingerprint for the process lifetime, and a resolution [Error]
    tears the session down (the lease expires to another worker; a
    worker that can never resolve exhausts its reconnect budget and
    fails loudly). Seed and sample budget come from the spec itself.
    Returns the number of accepted shard results; shares {!run}'s
    reconnect machinery, metrics and terminal failures. *)

type fetch_error =
  | Fetch_timeout of float  (** waited this many seconds *)
  | Fetch_rejected of string
  | Fetch_unreachable of string
  | Fetch_protocol of string

val fetch_error_message : fetch_error -> string

val fetch_report :
  ?obs:Fmc_obs.Obs.t ->
  ?poll_s:float ->
  ?poll_cap_s:float ->
  ?timeout_s:float ->
  ?on_pending:(Protocol.status_entry -> unit) ->
  config ->
  fingerprint:string ->
  ((int * string) list * Campaign.quarantine_entry list * float, fetch_error) result
(** Poll the coordinator until the campaign finishes; returns the
    per-shard tally blobs (ascending shard id), the quarantine log
    (sorted by global sample index) and the coordinator's elapsed
    seconds — feed the blobs to {!Merge.report_of_blobs}. The poll
    interval starts at [poll_s] (default 0.25s) and backs off
    geometrically to [poll_cap_s] (default 2s); after [timeout_s]
    (default 600) of pending replies the result is [Fetch_timeout].
    A scheduler answers a pending fetch with the campaign's
    {!Protocol.status_entry} (queue position, ETA) instead of a bare
    [Report_pending]; [on_pending] observes each such reply (progress
    display), and a [Cancelled] entry ends the wait as
    [Fetch_rejected]. All failures are typed ({!fetch_error}), never
    raised. *)

(** {2 Scheduler control clients}

    One-shot pool-scoped requests against a multi-campaign scheduler
    ([faultmc sched]); transport and protocol failures come back as
    [Error] strings, never exceptions. *)

type submit_reply =
  | Submit_queued of int  (** accepted at this queue position *)
  | Submit_cached  (** finished earlier — fetch the report right away *)
  | Submit_rejected of { retry_after_s : float; reason : string }
      (** admission control shed the submission; retry after the hint *)

val submit :
  ?obs:Fmc_obs.Obs.t -> config -> Protocol.spec -> (submit_reply, string) result

val sched_status :
  ?obs:Fmc_obs.Obs.t ->
  config ->
  fingerprint:string ->
  (Protocol.status_entry list, string) result
(** [""] lists every campaign in submission order. *)

val cancel :
  ?obs:Fmc_obs.Obs.t -> config -> fingerprint:string -> (bool * string, string) result
(** [(accepted, reason)] from the scheduler's ack. *)
