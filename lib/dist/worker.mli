(** The distributed campaign worker ([faultmc worker]) and the report
    client ([faultmc evaluate --connect]).

    A worker builds its engine/prepared sampler locally (the same way a
    local campaign would), connects, and loops: lease a shard, run it
    under the shard's RNG substream via {!Campaign.run_shard}, stream
    the tally snapshot + quarantine entries back. Heartbeats are sent
    from the per-sample hook; a negatively-acked heartbeat (lost lease)
    abandons the shard mid-run — the re-issued lease reproduces the
    bit-identical result elsewhere. *)

open Fmc

exception Rejected of string
(** The coordinator refused the connection (protocol version or campaign
    fingerprint mismatch). *)

type config = {
  addr : Wire.addr;
  worker_name : string;
  heartbeat_every : int;  (** samples between heartbeats; 0 disables *)
  retry_delay_s : float;  (** backoff when all shards are leased out *)
  connect_attempts : int;  (** connect retries (worker may start first) *)
}

val default_config : addr:Wire.addr -> worker_name:string -> config
(** heartbeat every 100 samples, 0.5s retry, 20 connect attempts. *)

val run :
  ?obs:Fmc_obs.Obs.t ->
  ?causal:bool ->
  ?sample_budget:int ->
  config ->
  fingerprint:string ->
  Engine.t ->
  Sampler.prepared ->
  seed:int ->
  int
(** Work until the coordinator reports the campaign finished; returns
    the number of shard results this worker got accepted. [causal],
    [sample_budget] and [seed] must match the fingerprint's campaign
    (the fingerprint encodes them — a mismatch is rejected at hello).
    Under [obs], counts wire bytes and inherits {!Campaign.run_shard}'s
    spans and tally metrics. Raises {!Rejected} or [Failure] on protocol
    errors, [Unix.Unix_error] if the coordinator is unreachable. *)

val fetch_report :
  ?obs:Fmc_obs.Obs.t ->
  ?poll_s:float ->
  ?timeout_s:float ->
  config ->
  fingerprint:string ->
  ((int * string) list * Campaign.quarantine_entry list * float, string) result
(** Poll the coordinator (every [poll_s], default 0.5s, up to
    [timeout_s], default 600) until the campaign finishes; returns the
    per-shard tally blobs (ascending shard id), the quarantine log
    (sorted by global sample index) and the coordinator's elapsed
    seconds — feed the blobs to {!Merge.report_of_blobs}. *)
