type t = {
  name : string;
  params : (string * string) list;
  doc : string;
  rng_draws : int;
  prunable : bool;
  inject : Fmc.Ssf.inject option;
}

let canonical t =
  match t.params with
  | [] -> t.name
  | params ->
      t.name ^ ":" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) params)

let metric_name t =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    (canonical t)
