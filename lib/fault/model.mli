(** A first-class fault model: the physical attack scenario one Monte
    Carlo sample is evaluated under.

    The estimator ({!Fmc.Ssf}) stays model-agnostic — it draws the same
    spatial/temporal sample stream regardless — and a model supplies the
    per-sample injector that turns a drawn sample into a run result. The
    native model, [disc-transient] (the paper's radiation disc inducing
    voltage transients), carries no injector at all: its evaluation is
    the engine's own {!Fmc.Engine.run_sample} path, so a campaign under
    the default model is byte-identical to the pre-subsystem code.

    Every model declares its RNG budget ([rng_draws], an upper bound on
    randomness consumed per sample); all built-in models consume zero,
    which is what makes per-model campaigns deterministic and shard
    merging bit-exact. [prunable] marks whether {!Fmc_sva} masking
    certificates are sound for the model — only the disc transient they
    were proved against. *)

type t = {
  name : string;  (** registry name, e.g. ["seu-burst"] *)
  params : (string * string) list;
      (** non-default parameters, sorted by key — what {!canonical}
          appends after the name *)
  doc : string;  (** one-line description for [--list-fault-models] *)
  rng_draws : int;  (** upper bound on RNG draws per sample (0 for all builtins) *)
  prunable : bool;  (** analytical masking certificates sound for this model *)
  inject : Fmc.Ssf.inject option;
      (** the per-sample injector; [None] means the engine's native
          disc-transient path (and byte-identical reports) *)
}

val canonical : t -> string
(** The canonical model string: [name] alone when every parameter is at
    its default, else [name:k=v,...] with parameters sorted by key.
    This is the form recorded in campaign checkpoints, embedded in
    distributed-campaign fingerprints and accepted back by
    {!Registry.parse} — explicitly spelling a default parameter
    canonicalizes away, so equal configurations always fingerprint
    equally. *)

val metric_name : t -> string
(** The model's per-model metric component: the canonical string with
    every character outside [[A-Za-z0-9_]] mapped to ['_'] (the metrics
    registry accepts no other characters), e.g.
    ["seu_burst_bits_4"]. *)
