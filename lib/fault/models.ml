module Engine = Fmc.Engine
module Golden = Fmc.Golden
module Ssf = Fmc.Ssf
module Sampler = Fmc.Sampler
module System = Fmc_cpu.System
module Circuit = Fmc_cpu.Circuit
module Metrics = Fmc_obs.Metrics
module Obs = Fmc_obs.Obs

(* ------------------------------------------------------------------ *)
(* Parameter plumbing shared by the builders: defaults, typed parsing,
   unknown/duplicate-key rejection, canonical (sorted, non-default)
   parameter lists. *)

let ( let* ) = Result.bind

let check_keys ~valid params =
  let rec go seen = function
    | [] -> Ok ()
    | (k, _) :: rest ->
        if not (List.mem k valid) then
          Error
            (Printf.sprintf "unknown parameter %S (valid: %s)" k (String.concat ", " valid))
        else if List.mem k seen then Error (Printf.sprintf "duplicate parameter %S" k)
        else go (k :: seen) rest
  in
  go [] params

let int_param params key ~default ~min ~max =
  match List.assoc_opt key params with
  | None -> Ok default
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= min && n <= max -> Ok n
      | Some n -> Error (Printf.sprintf "%s=%d out of range [%d, %d]" key n min max)
      | None -> Error (Printf.sprintf "bad integer %s=%S" key v))

(* Canonical parameter list: only values that differ from the default,
   rendered in decimal, sorted by key — so "seu-burst:bits=2" and plain
   "seu-burst" canonicalize (and fingerprint) identically. *)
let nondefault params = List.sort compare (List.filter_map (fun p -> p) params)

let int_nondefault key v ~default = if v = default then None else Some (key, string_of_int v)

(* ------------------------------------------------------------------ *)
(* Injection scaffolding shared by the synthetic models. *)

let masked_result te ~struck_cells (sample : Sampler.sample) =
  {
    Engine.sample;
    te;
    outcome = Engine.Masked;
    success = false;
    flips = [];
    direct = [||];
    latched = [||];
    struck_cells;
  }

(* Resume the RTL run to completion under the optional watchdog and
   judge success by the benchmark observables — the same resume phase
   [Engine.run_sample] ends with. *)
let resume_and_judge engine ?cycle_budget sys =
  let budget = (Engine.program engine).Fmc_isa.Programs.max_cycles + 100 in
  System.set_watchdog sys cycle_budget;
  ignore (System.run sys ~max_cycles:(max 1 (budget - System.cycle sys)));
  System.set_watchdog sys None;
  Engine.observables_differ engine sys

(* Exact register-error set just past the injection window, against a
   fresh golden reference at the same cycle (as the native engine
   computes it), plus whether the data memory stayed clean. *)
let diffs_vs_golden engine sys at =
  let golden_ref = Golden.restore_at (Engine.golden engine) at in
  ( Engine.state_bit_diffs (System.state sys) (System.state golden_ref),
    System.dmem sys = System.dmem golden_ref )

let classify engine ?cycle_budget sys te ~struck_cells ~direct ~latched ~at
    (sample : Sampler.sample) =
  let flips, mem_clean = diffs_vs_golden engine sys at in
  if flips = [] && mem_clean then masked_result te ~struck_cells sample
  else begin
    let success = resume_and_judge engine ?cycle_budget sys in
    {
      Engine.sample;
      te;
      outcome = Engine.Resumed success;
      success;
      flips;
      direct;
      latched;
      struck_cells;
    }
  end

(* Per-model sample counters, resolved from the engine's observability
   handle (disabled handles cost one branch). Observation-only: the
   counters never touch the sample stream or the RNG. *)
let count_run ~metric engine =
  match (Engine.obs engine).Obs.metrics with
  | None -> ()
  | Some reg ->
      Metrics.inc
        (Metrics.counter reg ~help:"fault-model sample evaluations" "fmc_fault_runs_total");
      Metrics.inc
        (Metrics.counter reg ~help:"per-model sample evaluations"
           ("fmc_fault_" ^ metric ^ "_runs_total"))

let injected ~name ~params ~doc ~prunable make_run =
  let stub = { Model.name; params; doc; rng_draws = 0; prunable; inject = None } in
  let metric = Model.metric_name stub in
  {
    stub with
    Model.inject =
      Some
        {
          Ssf.inj_model = Model.canonical stub;
          inj_run =
            (fun engine ?cycle_budget _rng sample ->
              count_run ~metric engine;
              make_run engine ?cycle_budget sample);
          inj_causal = (fun _engine (r : Engine.run_result) -> r.Engine.flips);
        };
  }

(* ------------------------------------------------------------------ *)
(* disc-transient: the engine's own path — no injector at all. *)

let disc_transient params =
  let* () = check_keys ~valid:[] params in
  Ok
    {
      Model.name = "disc-transient";
      params = [];
      doc = "radiation disc: direct SEUs + gate-level voltage transients (the paper's native model)";
      rng_draws = 0;
      prunable = true;
      inject = None;
    }

(* ------------------------------------------------------------------ *)
(* seu-burst: direct multi-bit state flips, no combinational transients. *)

let seu_burst params =
  let* () = check_keys ~valid:[ "bits" ] params in
  let* bits = int_param params "bits" ~default:2 ~min:1 ~max:64 in
  let run engine ?cycle_budget (sample : Sampler.sample) =
    let golden = Engine.golden engine in
    let te = Golden.target_cycle golden - sample.Sampler.t in
    if te < 1 then masked_result te ~struck_cells:0 sample
    else begin
      let net = (Engine.circuit engine).Circuit.net in
      let dffs, _gates, struck_cells =
        Engine.partition_disc engine sample.Sampler.center sample.Sampler.radius
      in
      let direct = List.filteri (fun i _ -> i < bits) dffs in
      if direct = [] then masked_result te ~struck_cells sample
      else begin
        let sys = Golden.restore_at golden te in
        List.iter (Engine.apply_flip sys net) direct;
        classify engine ?cycle_budget sys te ~struck_cells ~direct:(Array.of_list direct)
          ~latched:[||] ~at:te sample
      end
    end
  in
  Ok
    (injected ~name:"seu-burst"
       ~params:(nondefault [ int_nondefault "bits" bits ~default:2 ])
       ~doc:
         (Printf.sprintf
            "direct multi-bit SEU burst: up to %d struck flip-flops take state flips, no \
             transients"
            bits)
       ~prunable:false run)

(* ------------------------------------------------------------------ *)
(* instr-skip: ISS-level skip/corrupt of the fetched instruction. *)

type skip_mode = Skip | Corrupt

let instr_skip params =
  let* () = check_keys ~valid:[ "mode"; "mask" ] params in
  let* mode =
    match List.assoc_opt "mode" params with
    | None | Some "skip" -> Ok Skip
    | Some "corrupt" -> Ok Corrupt
    | Some v -> Error (Printf.sprintf "bad mode=%S (expected skip|corrupt)" v)
  in
  let* mask = int_param params "mask" ~default:0xffff ~min:1 ~max:0xffff in
  let* () =
    if mode = Skip && List.mem_assoc "mask" params then
      Error "mask only applies to mode=corrupt"
    else Ok ()
  in
  let nop = Fmc_isa.Isa.encode Fmc_isa.Isa.Nop in
  let run engine ?cycle_budget (sample : Sampler.sample) =
    let golden = Engine.golden engine in
    let te = Golden.target_cycle golden - sample.Sampler.t in
    if te < 1 then masked_result te ~struck_cells:0 sample
    else begin
      let sys = Golden.restore_at golden te in
      System.set_fetch_override sys
        (Some
           (fun ~pc:_ word ->
             match mode with Skip -> nop | Corrupt -> (word lxor mask) land 0xffff));
      ignore (System.step sys);
      System.set_fetch_override sys None;
      classify engine ?cycle_budget sys te ~struck_cells:0 ~direct:[||] ~latched:[||]
        ~at:(te + 1) sample
    end
  in
  Ok
    (injected ~name:"instr-skip"
       ~params:
         (nondefault
            [
              (match mode with Skip -> None | Corrupt -> Some ("mode", "corrupt"));
              int_nondefault "mask" mask ~default:0xffff;
            ])
       ~doc:
         (match mode with
         | Skip -> "ISS-level instruction skip: the fetched instruction executes as NOP"
         | Corrupt ->
             Printf.sprintf
               "ISS-level instruction corruption: the fetched word is XORed with 0x%04x" mask)
       ~prunable:false run)

(* ------------------------------------------------------------------ *)
(* double-strike: the native strike, repeated at the same location after
   a parameterized gap. *)

let double_strike params =
  let* () = check_keys ~valid:[ "gap" ] params in
  let* gap = int_param params "gap" ~default:2 ~min:1 ~max:64 in
  let run engine ?cycle_budget (sample : Sampler.sample) =
    let golden = Engine.golden engine in
    let te = Golden.target_cycle golden - sample.Sampler.t in
    if te < 1 then masked_result te ~struck_cells:0 sample
    else begin
      let net = (Engine.circuit engine).Circuit.net in
      let dffs, gates, struck_cells =
        Engine.partition_disc engine sample.Sampler.center sample.Sampler.radius
      in
      let sys = Golden.restore_at golden te in
      let strike () =
        List.iter (Engine.apply_flip sys net) dffs;
        let latched = Engine.gate_level_cycle engine sys sample gates in
        (* [gate_level_cycle] writes the fault-free-latched next state
           back; latched errors are applied as corrections, exactly as
           the native engine does. *)
        Array.iter (Engine.apply_flip sys net) latched;
        latched
      in
      let latched1 = strike () in
      System.run_to_cycle sys (te + gap);
      let latched2 = strike () in
      let latched =
        Array.of_list
          (List.sort_uniq compare (Array.to_list latched1 @ Array.to_list latched2))
      in
      classify engine ?cycle_budget sys te ~struck_cells ~direct:(Array.of_list dffs) ~latched
        ~at:(te + gap + 1) sample
    end
  in
  Ok
    (injected ~name:"double-strike"
       ~params:(nondefault [ int_nondefault "gap" gap ~default:2 ])
       ~doc:
         (Printf.sprintf
            "temporal double strike: the sampled disc strikes twice, %d cycle(s) apart" gap)
       ~prunable:false run)
