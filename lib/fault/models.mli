(** The four built-in fault models.

    Each builder takes the parsed [k=v] parameter overrides and returns
    the configured model, or a human-readable message naming the
    offending parameter. All builders reject unknown and duplicate keys,
    so a typo never silently configures the default.

    Every built-in injector is deterministic (zero RNG draws): the same
    (engine, sample) pair always produces the same result, which is what
    keeps per-model campaigns bit-exact across shards, resumes and
    distributed workers. *)

val disc_transient : (string * string) list -> (Model.t, string) result
(** The paper's native model — radiation disc, direct SEUs plus
    gate-level voltage transients at the injection cycle. No
    parameters; carries no injector ([Model.inject = None]), so the
    evaluation is the engine's own path and reports stay byte-identical
    to the pre-subsystem code. The only model masking certificates are
    sound for. *)

val seu_burst : (string * string) list -> (Model.t, string) result
(** Direct multi-bit SEU burst: up to [bits] (default 2, 1..64) of the
    disc's struck flip-flops take direct state flips at the injection
    cycle — no combinational transients, the SET→SEU RTL
    representation. The RTL run then resumes to completion. *)

val instr_skip : (string * string) list -> (Model.t, string) result
(** ISS-level instruction fault at the injection cycle:
    [mode=skip] (default) replaces the fetched instruction with NOP,
    [mode=corrupt] XORs [mask] (default 0xffff, 1..0xffff; only
    accepted with [mode=corrupt]) into the fetched word. The corrupted
    instruction executes for exactly one cycle; the run then resumes. *)

val double_strike : (string * string) list -> (Model.t, string) result
(** Temporal double strike: the sampled disc strikes at the injection
    cycle exactly like the native model (direct SEUs + transients),
    then strikes the same location again [gap] cycles later
    (default 2, 1..64) — the repeated-fault scenario of the SoK's
    multi-strike catalogue. *)
