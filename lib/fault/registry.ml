type error = Unknown_model of string | Bad_params of { model : string; msg : string }

let error_message = function
  | Unknown_model name ->
      Printf.sprintf "unknown fault model %S (try --list-fault-models)" name
  | Bad_params { model; msg } -> Printf.sprintf "fault model %s: %s" model msg

let builtins =
  [
    ("disc-transient", Models.disc_transient);
    ("seu-burst", Models.seu_burst);
    ("instr-skip", Models.instr_skip);
    ("double-strike", Models.double_strike);
  ]

let names = List.map fst builtins

let default = "disc-transient"

(* "name[:k=v,...]" — the name up to the first ':', then comma-separated
   k=v pairs split on their first '='. A pair with no '=' is a parameter
   error on the named model, not an unknown model. *)
let split_spec spec =
  match String.index_opt spec ':' with
  | None -> (spec, Ok [])
  | Some i ->
      let name = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let params =
        List.fold_right
          (fun pair acc ->
            match acc with
            | Error _ -> acc
            | Ok params -> (
                match String.index_opt pair '=' with
                | None when pair = "" -> Error "empty parameter"
                | None -> Error (Printf.sprintf "bad parameter %S (expected k=v)" pair)
                | Some j ->
                    let k = String.sub pair 0 j in
                    let v = String.sub pair (j + 1) (String.length pair - j - 1) in
                    if k = "" then Error (Printf.sprintf "bad parameter %S (empty key)" pair)
                    else Ok ((k, v) :: params)))
          (String.split_on_char ',' rest) (Ok [])
      in
      (name, params)

let parse spec =
  let name, params = split_spec spec in
  match List.assoc_opt name builtins with
  | None -> Error (Unknown_model name)
  | Some build -> (
      match params with
      | Error msg -> Error (Bad_params { model = name; msg })
      | Ok params -> (
          match build params with
          | Ok model -> Ok model
          | Error msg -> Error (Bad_params { model = name; msg })))

let parse_exn spec =
  match parse spec with Ok m -> m | Error e -> invalid_arg (error_message e)

let list () =
  List.map
    (fun (name, build) ->
      match build [] with
      | Ok m -> (name, m.Model.doc)
      | Error _ -> (name, "(defaults invalid — registry bug)"))
    builtins

let valid spec = match parse spec with Ok _ -> true | Error _ -> false
