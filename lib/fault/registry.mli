(** The fault-model registry: name → configured {!Model.t}.

    Model specs are ["name"] or ["name:k=v,..."] — the same canonical
    form {!Model.canonical} produces, so parsing a canonical string
    round-trips to an equal model. Parsing is total over the error type:
    an unrecognized name and a malformed/out-of-range parameter are
    distinguished so the CLI can exit with a precise message. *)

type error =
  | Unknown_model of string  (** the name before [':'] is not registered *)
  | Bad_params of { model : string; msg : string }
      (** the model exists but rejected its parameters *)

val error_message : error -> string
(** Human-readable one-liner, suitable for stderr. *)

val default : string
(** ["disc-transient"] — the model every pre-subsystem campaign ran. *)

val names : string list
(** Registered model names, registration order. *)

val parse : string -> (Model.t, error) result
(** Parse and configure ["name[:k=v,...]"]. Accepts every string
    {!Model.canonical} can produce and returns an equal model for it. *)

val parse_exn : string -> Model.t
(** {!parse}, raising [Invalid_argument] with {!error_message} on
    error — for trusted inputs (validated specs replayed from a WAL or
    checkpoint). *)

val valid : string -> bool
(** [valid spec] is [true] iff {!parse} succeeds — scheduler-side spec
    validation. *)

val list : unit -> (string * string) list
(** [(name, doc)] per registered model at default parameters, for
    [--list-fault-models]. *)
