module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind

type t = {
  net : N.t;
  values : bool array;  (* settled value per node after eval_comb *)
  dff_index : int array;  (* node id -> position in N.dffs, or -1 *)
  scratch : bool array;  (* fan-in value buffer reused across gates *)
}

let create net =
  let n = N.num_nodes net in
  let values = Array.make n false in
  Array.iter (fun c -> values.(c) <- (match N.kind net c with K.Const b -> b | _ -> false)) (N.consts net);
  Array.iter (fun d -> values.(d) <- N.dff_init net d) (N.dffs net);
  let dff_index = Array.make n (-1) in
  Array.iteri (fun i d -> dff_index.(d) <- i) (N.dffs net);
  let max_arity =
    Array.fold_left (fun acc g -> max acc (Array.length (N.fanins net g))) 1 (N.gates net)
  in
  { net; values; dff_index; scratch = Array.make max_arity false }

let netlist t = t.net

let set_input t node b =
  (match N.kind t.net node with
  | K.Input -> ()
  | _ -> invalid_arg "Cycle_sim.set_input: not a primary input");
  t.values.(node) <- b

let set_input_bus t nodes v =
  Array.iteri (fun i node -> set_input t node ((v lsr i) land 1 = 1)) nodes

let eval_comb t =
  let values = t.values in
  Array.iter
    (fun g ->
      match N.kind t.net g with
      | K.Gate kind ->
          let fanins = N.fanins t.net g in
          let n = Array.length fanins in
          for i = 0 to n - 1 do
            t.scratch.(i) <- values.(fanins.(i))
          done;
          (* Inline the common cases; fall back to Kind.eval for the rest. *)
          values.(g) <-
            (match kind with
            | K.Not -> not t.scratch.(0)
            | K.Buf -> t.scratch.(0)
            | K.And when n = 2 -> t.scratch.(0) && t.scratch.(1)
            | K.Or when n = 2 -> t.scratch.(0) || t.scratch.(1)
            | K.Xor when n = 2 -> t.scratch.(0) <> t.scratch.(1)
            | K.Xnor when n = 2 -> t.scratch.(0) = t.scratch.(1)
            | K.Nand when n = 2 -> not (t.scratch.(0) && t.scratch.(1))
            | K.Nor when n = 2 -> not (t.scratch.(0) || t.scratch.(1))
            | K.Mux -> if t.scratch.(0) then t.scratch.(2) else t.scratch.(1)
            | kind -> K.eval kind (Array.sub t.scratch 0 n))
      | _ -> assert false)
    (N.gates t.net)

let value t node = t.values.(node)

let read_bus t nodes =
  let v = ref 0 in
  Array.iteri (fun i node -> if t.values.(node) then v := !v lor (1 lsl i)) nodes;
  !v

let latch t =
  let dffs = N.dffs t.net in
  let next = Array.map (fun d -> t.values.(N.dff_d t.net d)) dffs in
  Array.iteri (fun i d -> t.values.(d) <- next.(i)) dffs

let step t =
  eval_comb t;
  latch t

let flip t node =
  if t.dff_index.(node) < 0 then invalid_arg "Cycle_sim.flip: not a flip-flop";
  t.values.(node) <- not t.values.(node)

let read_group t name =
  let members = N.register_group t.net name in
  let v = ref 0 in
  Array.iteri (fun bit d -> if t.values.(d) then v := !v lor (1 lsl bit)) members;
  !v

let write_group t name v =
  let members = N.register_group t.net name in
  Array.iteri (fun bit d -> t.values.(d) <- (v lsr bit) land 1 = 1) members

let snapshot t = Array.map (fun d -> t.values.(d)) (N.dffs t.net)

let restore t bits =
  let dffs = N.dffs t.net in
  if Array.length bits <> Array.length dffs then
    invalid_arg "Cycle_sim.restore: snapshot length mismatch";
  Array.iteri (fun i d -> t.values.(d) <- bits.(i)) dffs

let reset t = Array.iter (fun d -> t.values.(d) <- N.dff_init t.net d) (N.dffs t.net)
