(** Two-valued cycle-accurate simulation of a frozen netlist.

    The per-cycle protocol is:
    + drive primary inputs ({!set_input} / {!set_input_bus});
    + {!eval_comb} to settle combinational values;
    + read outputs / probe nodes;
    + {!latch} to clock every flip-flop ([Q <- value at D]).

    {!step} performs eval+latch. Register state is exposed both as a raw
    per-flip-flop snapshot (for checkpoints) and by register group name (for
    the RTL/netlist state mapping of the cross-level engine). *)

type t

val create : Fmc_netlist.Netlist.t -> t
(** Registers start at their declared init values; inputs at 0. *)

val netlist : t -> Fmc_netlist.Netlist.t

val set_input : t -> Fmc_netlist.Netlist.node -> bool -> unit
(** Raises [Invalid_argument] if the node is not a primary input. *)

val set_input_bus : t -> Fmc_netlist.Netlist.node array -> int -> unit
(** LSB-first. *)

val eval_comb : t -> unit

val value : t -> Fmc_netlist.Netlist.node -> bool
(** Settled value after {!eval_comb} (a flip-flop node reads its stored Q;
    an input reads its driven value). *)

val read_bus : t -> Fmc_netlist.Netlist.node array -> int

val latch : t -> unit
(** Clock edge: every flip-flop stores the settled value of its D node.
    Assumes {!eval_comb} ran since the last input change. *)

val step : t -> unit

val flip : t -> Fmc_netlist.Netlist.node -> unit
(** Invert a flip-flop's stored bit (direct SEU). Raises [Invalid_argument]
    on a non-flip-flop node. *)

val read_group : t -> string -> int
(** Current value of a register group as an unsigned integer. *)

val write_group : t -> string -> int -> unit

val snapshot : t -> bool array
(** Stored bits of all flip-flops, indexed like [Netlist.dffs]. *)

val restore : t -> bool array -> unit
(** Raises [Invalid_argument] on a length mismatch. *)

val reset : t -> unit
(** Back to declared init values. *)
