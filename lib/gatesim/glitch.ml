module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind

type timing = { net : N.t; arrivals : float array }

let static_timing net config =
  let arrivals = Array.make (N.num_nodes net) 0. in
  Array.iter
    (fun g ->
      match N.kind net g with
      | K.Gate gate ->
          let latest = Array.fold_left (fun acc f -> Float.max acc arrivals.(f)) 0. (N.fanins net g) in
          arrivals.(g) <- latest +. Transient.gate_delay config gate
      | K.Input | K.Const _ | K.Dff _ -> ())
    (N.gates net);
  { net; arrivals }

let arrival t node = t.arrivals.(node)

let critical_path t = Array.fold_left Float.max 0. t.arrivals

let violated t config sim ~period =
  if period <= 0. then invalid_arg "Glitch.violated: non-positive period";
  let deadline = period -. config.Transient.setup_time in
  let out = ref [] in
  Array.iter
    (fun d ->
      let dnode = N.dff_d t.net d in
      if t.arrivals.(dnode) > deadline && Cycle_sim.value sim dnode <> Cycle_sim.value sim d then
        out := d :: !out)
    (N.dffs t.net);
  Array.of_list (List.rev !out)

let latch_with_glitch t config sim ~period =
  let stale = violated t config sim ~period in
  let keep = Array.map (fun d -> Cycle_sim.value sim d) stale in
  Cycle_sim.latch sim;
  Array.iteri
    (fun i d -> if Cycle_sim.value sim d <> keep.(i) then Cycle_sim.flip sim d)
    stale;
  stale
