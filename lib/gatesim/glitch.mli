(** Clock-glitch (timing-violation) fault injection.

    The paper's holistic model (§3.2) covers clock-modification attacks:
    for those, the technique parameters are the amplitude/duration of the
    glitch — here, the {e effective period} of the one shortened cycle.
    A glitch makes the capture edge arrive early; every flip-flop whose
    data arrives later than [period - setup_time] misses the new value and
    retains its previous state (the classic setup-violation model used by
    TVVF-style analyses).

    Static per-node arrival times come from the same delay model as the
    transient engine, so the two techniques are directly comparable. The
    model only affects register capture; the external memory port is
    assumed to sample at the nominal edge (see DESIGN.md). *)

type timing

val static_timing : Fmc_netlist.Netlist.t -> Transient.config -> timing
(** Longest-path arrival time of every node under the config's delay
    model (computed once per netlist). *)

val arrival : timing -> Fmc_netlist.Netlist.node -> float

val critical_path : timing -> float
(** Arrival of the slowest node — glitch periods above
    [critical_path + setup] are harmless. *)

val violated : timing -> Transient.config -> Cycle_sim.t -> period:float -> Fmc_netlist.Netlist.node array
(** Flip-flops that would miss the glitched edge {e and} whose D value
    differs from their current Q (a violation with an unchanged value is
    harmless). Call after [Cycle_sim.eval_comb]. Ascending node order.
    Raises [Invalid_argument] if [period <= 0]. *)

val latch_with_glitch : timing -> Transient.config -> Cycle_sim.t -> period:float -> Fmc_netlist.Netlist.node array
(** Clock the simulator with a glitched edge: violated flip-flops keep
    their old value, the rest latch normally. Returns the flip-flops that
    kept stale state (same set as {!violated}). *)
