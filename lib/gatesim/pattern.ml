module N = Fmc_netlist.Netlist

type t = Single_bit | Single_byte | Multi_byte

let byte_of net d =
  let group, bit = N.dff_group net d in
  (group, bit / 8)

let classify net ~flips =
  match Array.length flips with
  | 0 -> None
  | 1 -> Some Single_bit
  | _ ->
      let first = byte_of net flips.(0) in
      if Array.for_all (fun d -> byte_of net d = first) flips then Some Single_byte
      else Some Multi_byte

let to_string = function
  | Single_bit -> "single-bit"
  | Single_byte -> "single-byte"
  | Multi_byte -> "multi-byte"

let fills_whole_byte net ~flips =
  match Array.length flips with
  | 0 -> false
  | _ ->
      let group, byte = byte_of net flips.(0) in
      if not (Array.for_all (fun d -> byte_of net d = (group, byte)) flips) then false
      else begin
        let members = N.register_group net group in
        let width = Array.length members in
        let byte_bits = min 8 (width - (byte * 8)) in
        Array.length flips = byte_bits
      end

let key net ~flips =
  let names =
    Array.to_list flips
    |> List.map (fun d ->
           let group, bit = N.dff_group net d in
           Printf.sprintf "%s[%d]" group bit)
    |> List.sort compare
  in
  String.concat "," names
