(** Bit-error pattern classification (paper Fig. 7).

    After one injection cycle the set of flipped flip-flops forms an error
    pattern. The paper buckets patterns as single-bit, single-byte (all
    flips within one aligned 8-bit byte of one architectural register) and
    multi-byte, and separately compares patterns caused by strikes on
    combinational gates vs on sequential cells. *)

type t = Single_bit | Single_byte | Multi_byte

val classify : Fmc_netlist.Netlist.t -> flips:Fmc_netlist.Netlist.node array -> t option
(** [None] when [flips] is empty. Flips must be flip-flop nodes. *)

val to_string : t -> string

val byte_of : Fmc_netlist.Netlist.t -> Fmc_netlist.Netlist.node -> string * int
(** [(group, bit / 8)] of a flip-flop: its architectural byte. *)

val fills_whole_byte : Fmc_netlist.Netlist.t -> flips:Fmc_netlist.Netlist.node array -> bool
(** True iff the flips cover {e every} bit of the byte they share (only
    meaningful for single-byte patterns; used for the paper's observation
    that no single-byte error covers all 8 bits). *)

val key : Fmc_netlist.Netlist.t -> flips:Fmc_netlist.Netlist.node array -> string
(** Canonical string identity of a pattern (sorted [group\[bit\]] list), for
    counting distinct patterns across runs. *)
