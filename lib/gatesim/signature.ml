module N = Fmc_netlist.Netlist
module Bitvec = Fmc_prelude.Bitvec

type t = {
  cycles : int;
  values : Bitvec.t array;  (* per node: settled value at each cycle *)
  switches : Bitvec.t array;  (* per node: value.(c) <> value.(c-1) *)
}

let record sim ~cycles ~drive =
  if cycles <= 0 then invalid_arg "Signature.record: cycles must be positive";
  let net = Cycle_sim.netlist sim in
  let n = N.num_nodes net in
  let values = Array.init n (fun _ -> Bitvec.create cycles) in
  let switches = Array.init n (fun _ -> Bitvec.create cycles) in
  let prev = Array.make n false in
  for c = 0 to cycles - 1 do
    drive c sim;
    Cycle_sim.eval_comb sim;
    for node = 0 to n - 1 do
      let v = Cycle_sim.value sim node in
      Bitvec.set values.(node) c v;
      if c > 0 && v <> prev.(node) then Bitvec.set switches.(node) c true;
      prev.(node) <- v
    done;
    Cycle_sim.latch sim
  done;
  { cycles; values; switches }

let cycles t = t.cycles
let signature t node = t.switches.(node)
let values t node = t.values.(node)

let correlation t ~node ~rs ~shift = Bitvec.correlation t.switches.(node) t.switches.(rs) ~shift
