(** Switching-signature recording (paper §4, Observation 2).

    The switching signature of a circuit node is a bit vector over simulated
    cycles: bit [i] is set iff the node's settled logic value changed
    between cycle [i-1] and cycle [i] (bit 0 is always clear). Signatures
    feed the bit-flip correlation [Corr_i(g, rs)] computed with
    [Fmc_prelude.Bitvec.correlation]. *)

type t

val record :
  Cycle_sim.t -> cycles:int -> drive:(int -> Cycle_sim.t -> unit) -> t
(** [record sim ~cycles ~drive] runs [cycles] steps; before each cycle [c],
    [drive c sim] must set the primary inputs (the simulator then evaluates
    and latches). The register state of [sim] advances. Raises
    [Invalid_argument] if [cycles <= 0]. *)

val cycles : t -> int

val signature : t -> Fmc_netlist.Netlist.node -> Fmc_prelude.Bitvec.t
(** Switching signature of any node (gate, flip-flop, input). *)

val values : t -> Fmc_netlist.Netlist.node -> Fmc_prelude.Bitvec.t
(** Recorded settled value per cycle, same indexing. *)

val correlation : t -> node:Fmc_netlist.Netlist.node -> rs:Fmc_netlist.Netlist.node -> shift:int -> float
(** [Corr_shift(node, rs)] per the paper's formula. *)
