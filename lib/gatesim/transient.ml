module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind

type config = {
  clock_period : float;
  setup_time : float;
  hold_time : float;
  delay_inv : float;
  delay_simple : float;
  delay_complex : float;
  attenuation : float;
  attenuation_threshold : float;
  min_width : float;
  max_pulses_per_net : int;
}

let gate_delay config = function
  | K.Not | K.Buf -> config.delay_inv
  | K.And | K.Or | K.Nand | K.Nor -> config.delay_simple
  | K.Xor | K.Xnor | K.Mux -> config.delay_complex

let default_config net =
  let base =
    {
      clock_period = 0.;
      setup_time = 30.;
      hold_time = 20.;
      delay_inv = 40.;
      delay_simple = 60.;
      delay_complex = 90.;
      attenuation = 20.;
      attenuation_threshold = 120.;
      min_width = 30.;
      max_pulses_per_net = 8;
    }
  in
  (* True critical path: longest accumulated gate delay over the topological
     order (a signed-off design meets timing with ~20% slack on top). *)
  let arrival = Array.make (N.num_nodes net) 0. in
  let critical = ref 0. in
  Array.iter
    (fun g ->
      match N.kind net g with
      | K.Gate gate ->
          let latest = Array.fold_left (fun acc f -> Float.max acc arrival.(f)) 0. (N.fanins net g) in
          arrival.(g) <- latest +. gate_delay base gate;
          if arrival.(g) > !critical then critical := arrival.(g)
      | K.Input | K.Const _ | K.Dff _ -> ())
    (N.gates net);
  { base with clock_period = (!critical *. 1.2) +. base.setup_time +. base.hold_time }

type strike = { node : N.node; time : float; width : float }

type pulse = { start : float; width : float }

type result = {
  latched : N.node array;
  direct : N.node array;
  seeded : int;
  reached_dff : int;
  watched_hits : N.node array;
}

(* Merge a pulse into a per-net list, coalescing overlaps and bounding the
   list length (drop the narrowest pulse when full). *)
let add_pulse config pulses p =
  let overlaps a b = a.start <= b.start +. b.width && b.start <= a.start +. a.width in
  let merged, rest =
    List.partition (fun existing -> overlaps existing p) pulses
  in
  let p =
    List.fold_left
      (fun acc e ->
        let start = Float.min acc.start e.start in
        let stop = Float.max (acc.start +. acc.width) (e.start +. e.width) in
        { start; width = stop -. start })
      p merged
  in
  let out = p :: rest in
  if List.length out <= config.max_pulses_per_net then out
  else begin
    let sorted = List.sort (fun a b -> compare b.width a.width) out in
    List.filteri (fun i _ -> i < config.max_pulses_per_net) sorted
  end

(* Does a pulse on fan-in [idx] of gate [g] propagate, given settled values? *)
let sensitized sim net g idx =
  let fanins = N.fanins net g in
  match N.kind net g with
  | K.Gate gate -> begin
      match gate with
      | K.Not | K.Buf -> true
      | K.Xor | K.Xnor -> true
      | K.And | K.Nand | K.Or | K.Nor -> begin
          match K.controlling_value gate with
          | Some c ->
              let blocked = ref false in
              Array.iteri
                (fun j f -> if j <> idx && Cycle_sim.value sim f = c then blocked := true)
                fanins;
              not !blocked
          | None -> true
        end
      | K.Mux ->
          let sel = Cycle_sim.value sim fanins.(0) in
          if idx = 0 then Cycle_sim.value sim fanins.(1) <> Cycle_sim.value sim fanins.(2)
          else if idx = 1 then not sel
          else sel
    end
  | _ -> false

let attenuate config p =
  if p.width >= config.attenuation_threshold then Some p
  else begin
    let width = p.width -. config.attenuation in
    if width < config.min_width then None else Some { p with width }
  end

let inject ?(watch = [||]) sim config ~strikes =
  let net = Cycle_sim.netlist sim in
  let n = N.num_nodes net in
  let pulses : pulse list array = Array.make n [] in
  let direct = ref [] in
  let seeded = ref 0 in
  List.iter
    (fun { node; time; width } ->
      if width <= 0. then invalid_arg "Transient.inject: non-positive strike width";
      if time < 0. then invalid_arg "Transient.inject: negative strike time";
      match N.kind net node with
      | K.Dff _ -> direct := node :: !direct
      | K.Gate _ ->
          pulses.(node) <- add_pulse config pulses.(node) { start = time; width };
          incr seeded
      | K.Input | K.Const _ -> ())
    strikes;
  (* Topological sweep: prepend pulses arriving from fan-ins to each gate's
     own (seeded) pulses. Seeded pulses on a gate are treated as born at the
     gate output, so they are not re-delayed. *)
  Array.iter
    (fun g ->
      match N.kind net g with
      | K.Gate gate ->
          let fanins = N.fanins net g in
          Array.iteri
            (fun idx f ->
              match pulses.(f) with
              | [] -> ()
              | incoming ->
                  if sensitized sim net g idx then
                    List.iter
                      (fun p ->
                        match attenuate config p with
                        | None -> ()
                        | Some p ->
                            let p = { p with start = p.start +. gate_delay config gate } in
                            pulses.(g) <- add_pulse config pulses.(g) p)
                      incoming)
            fanins
      | _ -> ())
    (N.gates net);
  (* Latching-window check at every flip-flop's D input. *)
  let win_lo = config.clock_period -. config.setup_time in
  let win_hi = config.clock_period +. config.hold_time in
  let latched = ref [] in
  let reached = ref 0 in
  Array.iter
    (fun d ->
      let dnode = N.dff_d net d in
      match pulses.(dnode) with
      | [] -> ()
      | ps ->
          reached := !reached + List.length ps;
          let hits p = p.start < win_hi && p.start +. p.width > win_lo in
          if List.exists hits ps then latched := d :: !latched)
    (N.dffs net);
  let hits p = p.start < win_hi && p.start +. p.width > win_lo in
  let watched_hits =
    Array.to_list watch |> List.filter (fun node -> List.exists hits pulses.(node))
  in
  let sort_nodes l = Array.of_list (List.sort_uniq compare l) in
  {
    latched = sort_nodes !latched;
    direct = sort_nodes !direct;
    seeded = !seeded;
    reached_dff = !reached;
    watched_hits = sort_nodes watched_hits;
  }
