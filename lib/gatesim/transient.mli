(** Gate-level voltage-transient (SET) injection and propagation
    (paper §3.2 and §5.3).

    A radiation strike deposits a voltage pulse at the output of every
    impacted gate. Pulses travel through the combinational netlist in
    topological order and are subject to the three classic masking effects:

    - {e logical masking} — a pulse dies at a gate whose other inputs hold a
      controlling value (for a mux: an unselected data input, or a select
      pulse when both data inputs agree);
    - {e electrical masking} — pulses narrower than
      [attenuation_threshold] lose [attenuation] of width per traversed
      gate and die below [min_width];
    - {e latching-window masking} — a pulse reaching a flip-flop's D input
      flips the stored bit only if it overlaps the setup/hold window around
      the next clock edge.

    A strike that lands on a flip-flop cell itself is a direct SEU and is
    reported in [direct] rather than simulated as a pulse.

    [inject] must be called after [Cycle_sim.eval_comb] so that settled
    fault-free values are available for the sensitization tests; it does not
    modify the simulator. *)

type config = {
  clock_period : float;  (** ps; the latch window sits at its end *)
  setup_time : float;
  hold_time : float;
  delay_inv : float;  (** Not/Buf propagation delay *)
  delay_simple : float;  (** And/Or/Nand/Nor *)
  delay_complex : float;  (** Xor/Xnor/Mux *)
  attenuation : float;  (** width lost per gate when below threshold *)
  attenuation_threshold : float;
  min_width : float;
  max_pulses_per_net : int;
}

val default_config : Fmc_netlist.Netlist.t -> config
(** Sizes [clock_period] so the longest combinational path meets timing with
    ~20% slack — i.e., the circuit "meets timing", as a signed-off design
    would. *)

val gate_delay : config -> Fmc_netlist.Kind.gate -> float

type strike = {
  node : Fmc_netlist.Netlist.node;
  time : float;  (** pulse start, within [\[0, clock_period)] *)
  width : float;
}

type result = {
  latched : Fmc_netlist.Netlist.node array;
      (** flip-flops whose D input latched a pulse, ascending id *)
  direct : Fmc_netlist.Netlist.node array;
      (** flip-flops struck directly, ascending id *)
  seeded : int;  (** pulses deposited on combinational gates *)
  reached_dff : int;  (** pulses that arrived at some D input (latched or not) *)
  watched_hits : Fmc_netlist.Netlist.node array;
      (** watched nodes with a pulse overlapping the latch window *)
}

val inject : ?watch:Fmc_netlist.Netlist.node array -> Cycle_sim.t -> config -> strikes:strike list -> result
(** Raises [Invalid_argument] on a strike with non-positive width or
    negative time. Strikes on inputs/constants are ignored (the paper's
    model only radiates cells).

    [watch] nodes model additional synchronous sample points outside the
    netlist's flip-flops — e.g. the write port of an external memory, which
    commits on the same clock edge: a watched node is reported in
    [watched_hits] when a pulse on it overlaps the setup/hold window, i.e.
    when the external element would capture the corrupted value. *)
