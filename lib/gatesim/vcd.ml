type signal = { name : string; nodes : Fmc_netlist.Netlist.node array }

(* VCD identifier characters: printable ASCII '!' .. '~'. *)
let ident i =
  let base = 94 and first = 33 in
  let rec go i acc =
    if i < base then Char.chr (first + i) :: acc
    else go (i / base) (Char.chr (first + (i mod base)) :: acc)
  in
  let chars = go i [] in
  String.init (List.length chars) (List.nth chars)

let bus_value sim nodes =
  (* MSB-first bit string, as VCD wants. *)
  String.init (Array.length nodes) (fun i ->
      if Cycle_sim.value sim nodes.(Array.length nodes - 1 - i) then '1' else '0')

let record ?(before_latch = fun _ _ -> ()) sim ~cycles ~drive ~signals =
  if cycles <= 0 then invalid_arg "Vcd.record: cycles must be positive";
  if signals = [] then invalid_arg "Vcd.record: no signals";
  let names = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if Hashtbl.mem names s.name then invalid_arg "Vcd.record: duplicate signal name";
      Hashtbl.replace names s.name ())
    signals;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date faultmc $end\n$version fmc_gatesim.Vcd $end\n$timescale 1ns $end\n";
  Buffer.add_string buf "$scope module top $end\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" (Array.length s.nodes) (ident i)
           (if Array.length s.nodes > 1 then
              Printf.sprintf "%s [%d:0]" s.name (Array.length s.nodes - 1)
            else s.name)))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let last = Hashtbl.create 16 in
  for c = 0 to cycles - 1 do
    drive c sim;
    Cycle_sim.eval_comb sim;
    Buffer.add_string buf (Printf.sprintf "#%d\n" c);
    List.iteri
      (fun i s ->
        let v = bus_value sim s.nodes in
        let changed = match Hashtbl.find_opt last i with Some prev -> prev <> v | None -> true in
        if changed then begin
          Hashtbl.replace last i v;
          if Array.length s.nodes > 1 then
            Buffer.add_string buf (Printf.sprintf "b%s %s\n" v (ident i))
          else Buffer.add_string buf (Printf.sprintf "%s%s\n" v (ident i))
        end)
      signals;
    before_latch c sim;
    Cycle_sim.latch sim
  done;
  Buffer.add_string buf (Printf.sprintf "#%d\n" cycles);
  Buffer.contents buf
