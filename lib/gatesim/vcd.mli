(** VCD (Value Change Dump) waveform export.

    Records selected buses over a cycle simulation and renders a standard
    VCD file loadable by GTKWave & co. — the debugging companion every
    simulator release needs. One timestep per clock cycle. *)

type signal = { name : string; nodes : Fmc_netlist.Netlist.node array }
(** A named bus (LSB first); single-bit signals are 1-element arrays. *)

val record :
  ?before_latch:(int -> Cycle_sim.t -> unit) ->
  Cycle_sim.t ->
  cycles:int ->
  drive:(int -> Cycle_sim.t -> unit) ->
  signals:signal list ->
  string
(** Run [cycles] steps (driving inputs via [drive] before each), sampling
    the settled value of every signal each cycle; returns the VCD document.
    [before_latch] runs after sampling and before the clock edge — the hook
    for testbench-side effects such as committing a memory write. The
    simulator state advances. Raises [Invalid_argument] on an empty signal
    list, a non-positive cycle count, or duplicate signal names. *)
