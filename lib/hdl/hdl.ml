module B = Fmc_netlist.Builder
module K = Fmc_netlist.Kind

type t = { builder : B.t; uid : int }

type signal = { ctx : t; node : B.node }

let next_uid = ref 0

let create () =
  incr next_uid;
  { builder = B.create (); uid = !next_uid }

let same_ctx a b =
  if a.ctx.uid <> b.ctx.uid then invalid_arg "Hdl: signals from different contexts"

let wrap ctx node = { ctx; node }

let input1 ctx name = wrap ctx (B.add_input ctx.builder ~name)

let input ctx name width =
  if width <= 0 then invalid_arg "Hdl.input: width must be positive";
  Array.init width (fun i -> input1 ctx (Printf.sprintf "%s[%d]" name i))

let const ctx b = wrap ctx (B.add_const ctx.builder b)
let vdd ctx = const ctx true
let gnd ctx = const ctx false

let gate1 kind a = wrap a.ctx (B.add_gate a.ctx.builder kind [| a.node |])

let gate2 kind a b =
  same_ctx a b;
  wrap a.ctx (B.add_gate a.ctx.builder kind [| a.node; b.node |])

let ( ~: ) a = gate1 K.Not a
let ( &: ) a b = gate2 K.And a b
let ( |: ) a b = gate2 K.Or a b
let ( ^: ) a b = gate2 K.Xor a b
let xnor2 a b = gate2 K.Xnor a b
let nand2 a b = gate2 K.Nand a b
let nor2 a b = gate2 K.Nor a b

let mux2 sel d0 d1 =
  same_ctx sel d0;
  same_ctx sel d1;
  wrap sel.ctx (B.add_gate sel.ctx.builder K.Mux [| sel.node; d0.node; d1.node |])

let reduce op a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Hdl.reduce: empty array";
  (* Balanced tree keeps logic depth logarithmic, which matters for the
     transient-propagation timing model. *)
  let rec go lo hi =
    if hi - lo = 1 then a.(lo)
    else begin
      let mid = (lo + hi) / 2 in
      op (go lo mid) (go mid hi)
    end
  in
  go 0 n

let and_reduce a = reduce ( &: ) a
let or_reduce a = reduce ( |: ) a
let xor_reduce a = reduce ( ^: ) a

type reg = { ctx : t; dffs : B.node array; qs : signal array; mutable connected : bool }

let reg ctx ~group ~width ~init =
  if width <= 0 then invalid_arg "Hdl.reg: width must be positive";
  if init < 0 || (width < 63 && init lsr width <> 0) then
    invalid_arg (Printf.sprintf "Hdl.reg: init %d does not fit in %d bits" init width);
  let dffs =
    Array.init width (fun bit ->
        B.add_dff ctx.builder ~group ~bit ~init:((init lsr bit) land 1 = 1))
  in
  { ctx; dffs; qs = Array.map (wrap ctx) dffs; connected = false }

let q r = r.qs

let connect r d =
  if r.connected then invalid_arg "Hdl.connect: register already connected";
  if Array.length d <> Array.length r.dffs then
    invalid_arg
      (Printf.sprintf "Hdl.connect: width mismatch (%d flip-flops, %d bits)" (Array.length r.dffs)
         (Array.length d));
  Array.iteri
    (fun i s ->
      same_ctx r.qs.(0) s;
      B.connect_dff r.ctx.builder r.dffs.(i) ~d:s.node)
    d;
  r.connected <- true

let output1 ctx name (s : signal) =
  if s.ctx.uid <> ctx.uid then invalid_arg "Hdl.output1: signal from different context";
  B.set_output ctx.builder ~name s.node

let output ctx name v =
  Array.iteri (fun i s -> output1 ctx (Printf.sprintf "%s[%d]" name i) s) v

let elaborate ctx = Fmc_netlist.Netlist.of_builder ctx.builder

let input_bus net name width =
  Array.init width (fun i -> Fmc_netlist.Netlist.input_by_name net (Printf.sprintf "%s[%d]" name i))

let output_bus net name width =
  Array.init width (fun i -> Fmc_netlist.Netlist.output net (Printf.sprintf "%s[%d]" name i))

let node_of_signal s = s.node

let ctx_of (s : signal) = s.ctx
