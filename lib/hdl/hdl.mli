(** Structural hardware construction eDSL.

    A thin, width-unchecked scalar layer over [Fmc_netlist.Builder]: signals
    are single-bit nets tied to a construction context. Multi-bit buses are
    arrays of signals (LSB first) and live in {!Vec}. The eDSL is how the
    processor netlist (and any user circuit) is described; [elaborate]
    freezes everything into an [Fmc_netlist.Netlist.t].

    Conventions:
    - bit [i] of a multi-bit input/output named ["x"] becomes the netlist
      input/output named ["x\[i\]"];
    - registers are declared with {!reg} (giving their Q outputs) and get
      their next-state value with {!connect}, enabling feedback;
    - all signals of one circuit must come from the same context; mixing
      contexts raises [Invalid_argument]. *)

type t
(** Construction context. *)

type signal
(** A single-bit net. *)

val create : unit -> t

val input1 : t -> string -> signal
val input : t -> string -> int -> signal array
(** [input ctx name width] declares a [width]-bit input bus, LSB first. *)

val const : t -> bool -> signal
val vdd : t -> signal
val gnd : t -> signal

val ( ~: ) : signal -> signal
val ( &: ) : signal -> signal -> signal
val ( |: ) : signal -> signal -> signal
val ( ^: ) : signal -> signal -> signal
val xnor2 : signal -> signal -> signal
val nand2 : signal -> signal -> signal
val nor2 : signal -> signal -> signal

val mux2 : signal -> signal -> signal -> signal
(** [mux2 sel d0 d1] is [d1] when [sel] else [d0]. *)

val and_reduce : signal array -> signal
(** Balanced AND tree. Raises [Invalid_argument] on an empty array. *)

val or_reduce : signal array -> signal
val xor_reduce : signal array -> signal

type reg
(** A declared register bank: Q outputs available immediately, D connected
    later. *)

val reg : t -> group:string -> width:int -> init:int -> reg
(** Declares [width] flip-flops in register group [group] with reset value
    [init] (bit [i] of [init] initializes flip-flop [i]). Raises
    [Invalid_argument] if a group name is reused or [init] does not fit. *)

val q : reg -> signal array
(** Q outputs, LSB first. *)

val connect : reg -> signal array -> unit
(** Set the next-state bus. Raises [Invalid_argument] on width mismatch or
    double connection. *)

val output1 : t -> string -> signal -> unit
val output : t -> string -> signal array -> unit

val elaborate : t -> Fmc_netlist.Netlist.t
(** Freeze. Raises like [Fmc_netlist.Netlist.of_builder] (unconnected
    registers, combinational cycles). *)

(** {2 Netlist-side helpers} *)

val input_bus : Fmc_netlist.Netlist.t -> string -> int -> Fmc_netlist.Netlist.node array
(** [input_bus net name width] resolves the node ids of a bus declared with
    {!input}. Raises [Invalid_argument] (naming the missing bit and the
    available inputs) if any bit is missing. *)

val output_bus : Fmc_netlist.Netlist.t -> string -> int -> Fmc_netlist.Netlist.node array

val node_of_signal : signal -> Fmc_netlist.Netlist.node
(** The underlying builder/netlist node id (stable across {!elaborate}). *)

val ctx_of : signal -> t
(** The context a signal belongs to (for combinators that need to mint
    constants). *)
