open Hdl

type t = Hdl.signal array

let width = Array.length

let check_nonempty v op = if Array.length v = 0 then invalid_arg ("Vec." ^ op ^ ": empty bus")

let check_same a b op =
  check_nonempty a op;
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: width mismatch (%d vs %d)" op (Array.length a) (Array.length b))

let of_int ctx ~width:w v =
  if w <= 0 then invalid_arg "Vec.of_int: width must be positive";
  if v < 0 || (w < 62 && v lsr w <> 0) then
    invalid_arg (Printf.sprintf "Vec.of_int: %d does not fit in %d bits" v w);
  Array.init w (fun i -> const ctx ((v lsr i) land 1 = 1))

let zero ctx w = of_int ctx ~width:w 0
let ones ctx w = Array.init w (fun _ -> vdd ctx)

let not_v a = Array.map ( ~: ) a

let map2 op a b name =
  check_same a b name;
  Array.init (Array.length a) (fun i -> op a.(i) b.(i))

let and_v a b = map2 ( &: ) a b "and_v"
let or_v a b = map2 ( |: ) a b "or_v"
let xor_v a b = map2 ( ^: ) a b "xor_v"

let mux2v sel d0 d1 = map2 (fun a b -> mux2 sel a b) d0 d1 "mux2v"

let add_c a b ~cin =
  check_same a b "add_c";
  let w = Array.length a in
  let sum = Array.make w cin in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let axb = a.(i) ^: b.(i) in
    sum.(i) <- axb ^: !carry;
    carry := a.(i) &: b.(i) |: (!carry &: axb)
  done;
  (sum, !carry)

let add a b =
  check_same a b "add";
  let ctx = ctx_of a.(0) in
  fst (add_c a b ~cin:(gnd ctx))

let sub a b =
  check_same a b "sub";
  let ctx = ctx_of a.(0) in
  fst (add_c a (not_v b) ~cin:(vdd ctx))

let eq a b =
  check_same a b "eq";
  and_reduce (Array.init (Array.length a) (fun i -> xnor2 a.(i) b.(i)))

let neq a b = ~:(eq a b)

let ult a b =
  check_same a b "ult";
  (* a < b  <=>  no carry out of a + ~b + 1, i.e. borrow set. *)
  let ctx = ctx_of a.(0) in
  let _, carry = add_c a (not_v b) ~cin:(vdd ctx) in
  ~:carry

let uge a b = ~:(ult a b)
let ugt a b = ult b a
let ule a b = ~:(ult b a)

let is_zero a =
  check_nonempty a "is_zero";
  ~:(or_reduce a)

let bits v ~lo ~hi =
  if lo < 0 || hi > Array.length v || lo >= hi then
    invalid_arg (Printf.sprintf "Vec.bits: bad range [%d, %d) of %d" lo hi (Array.length v));
  Array.sub v lo (hi - lo)

let bit v i =
  if i < 0 || i >= Array.length v then invalid_arg "Vec.bit: index out of range";
  v.(i)

let concat parts =
  let v = Array.concat parts in
  check_nonempty v "concat";
  v

let repeat s n =
  if n <= 0 then invalid_arg "Vec.repeat: count must be positive";
  Array.make n s

let zext v w =
  check_nonempty v "zext";
  let cur = Array.length v in
  if w < cur then invalid_arg "Vec.zext: target narrower than bus"
  else if w = cur then v
  else begin
    let ctx = ctx_of v.(0) in
    Array.append v (Array.init (w - cur) (fun _ -> gnd ctx))
  end

let sext v w =
  check_nonempty v "sext";
  let cur = Array.length v in
  if w < cur then invalid_arg "Vec.sext: target narrower than bus"
  else if w = cur then v
  else Array.append v (Array.make (w - cur) v.(cur - 1))

let sll_const v n =
  check_nonempty v "sll_const";
  if n < 0 then invalid_arg "Vec.sll_const: negative shift";
  let w = Array.length v in
  let ctx = ctx_of v.(0) in
  Array.init w (fun i -> if i < n then gnd ctx else v.(i - n))

let srl_const v n =
  check_nonempty v "srl_const";
  if n < 0 then invalid_arg "Vec.srl_const: negative shift";
  let w = Array.length v in
  let ctx = ctx_of v.(0) in
  Array.init w (fun i -> if i + n < w then v.(i + n) else gnd ctx)

let barrel shift_stage v ~amount =
  check_nonempty v "barrel";
  check_nonempty amount "barrel";
  (* Stage k shifts by 2^k when amount bit k is set. *)
  let acc = ref v in
  Array.iteri (fun k sel -> acc := mux2v sel !acc (shift_stage !acc (1 lsl k))) amount;
  !acc

let sll v ~amount = barrel sll_const v ~amount
let srl v ~amount = barrel srl_const v ~amount

let mux_tree ~sel cases =
  check_nonempty sel "mux_tree";
  let k = Array.length sel in
  if Array.length cases <> 1 lsl k then
    invalid_arg
      (Printf.sprintf "Vec.mux_tree: %d cases for %d select bits" (Array.length cases) k);
  let w = Array.length cases.(0) in
  Array.iter
    (fun c -> if Array.length c <> w then invalid_arg "Vec.mux_tree: case width mismatch")
    cases;
  (* Fold select bits LSB first, halving the case count each level. *)
  let rec go cases bit =
    if Array.length cases = 1 then cases.(0)
    else begin
      let half = Array.length cases / 2 in
      let next = Array.init half (fun i -> mux2v sel.(bit) cases.(2 * i) cases.((2 * i) + 1)) in
      go next (bit + 1)
    end
  in
  go cases 0

let decode sel =
  check_nonempty sel "decode";
  let k = Array.length sel in
  let n = 1 lsl k in
  Array.init n (fun v ->
      and_reduce (Array.init k (fun b -> if (v lsr b) land 1 = 1 then sel.(b) else ~:(sel.(b)))))
