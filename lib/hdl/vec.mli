(** Width-checked multi-bit combinators over {!Hdl} signals.

    A bus is a [Hdl.signal array], LSB first. All binary operations check
    that widths match and raise [Invalid_argument] otherwise. Arithmetic is
    unsigned, modulo [2^width] (ripple-carry), matching the semantics of the
    RTL processor model so the two levels agree bit-for-bit. *)

type t = Hdl.signal array

val width : t -> int

val of_int : Hdl.t -> width:int -> int -> t
(** Constant bus. Raises [Invalid_argument] if the value does not fit. *)

val zero : Hdl.t -> int -> t
val ones : Hdl.t -> int -> t

val not_v : t -> t
val and_v : t -> t -> t
val or_v : t -> t -> t
val xor_v : t -> t -> t

val mux2v : Hdl.signal -> t -> t -> t
(** [mux2v sel d0 d1] per-bit. *)

val add : t -> t -> t
(** Sum modulo [2^width]. *)

val add_c : t -> t -> cin:Hdl.signal -> t * Hdl.signal
(** Ripple-carry sum with carry-in; returns (sum, carry-out). *)

val sub : t -> t -> t
(** Difference modulo [2^width] (two's complement). *)

val eq : t -> t -> Hdl.signal
val neq : t -> t -> Hdl.signal

val ult : t -> t -> Hdl.signal
(** Unsigned [a < b]. *)

val ule : t -> t -> Hdl.signal
val uge : t -> t -> Hdl.signal
val ugt : t -> t -> Hdl.signal

val is_zero : t -> Hdl.signal

val bits : t -> lo:int -> hi:int -> t
(** Slice [\[lo, hi)]. Raises [Invalid_argument] on a bad range. *)

val bit : t -> int -> Hdl.signal

val concat : t list -> t
(** LSB-first concatenation: [concat \[low; high\]]. *)

val repeat : Hdl.signal -> int -> t

val zext : t -> int -> t
(** Zero-extend to a wider width (identity if already that width). *)

val sext : t -> int -> t

val sll_const : t -> int -> t
(** Shift left by a constant, zero-filling; width preserved. *)

val srl_const : t -> int -> t

val sll : t -> amount:t -> t
(** Barrel shifter: shift left by a bus value (zero fill, width preserved). *)

val srl : t -> amount:t -> t

val mux_tree : sel:t -> t array -> t
(** [mux_tree ~sel cases] selects [cases.(sel)]; [cases] must have exactly
    [2^width sel] entries of equal width. *)

val decode : t -> Hdl.signal array
(** One-hot decode: output [i] is high iff the bus value equals [i];
    [2^width] outputs. *)
