type item =
  | I of Isa.t
  | Label of string
  | Brz_to of Isa.reg * string
  | Brnz_to of Isa.reg * string
  | Li16 of Isa.reg * int

let size = function
  | Label _ -> 0
  | Li16 _ -> 2
  | I _ | Brz_to _ | Brnz_to _ -> 1

let assemble items =
  (* Pass 1: label addresses. *)
  let labels = Hashtbl.create 16 in
  let addr = ref 0 in
  List.iter
    (fun item ->
      (match item with
      | Label name ->
          if Hashtbl.mem labels name then
            invalid_arg (Printf.sprintf "Asm.assemble: duplicate label %s" name)
          else Hashtbl.replace labels name !addr
      | _ -> ());
      addr := !addr + size item)
    items;
  let resolve name here =
    match Hashtbl.find_opt labels name with
    | Some target -> target - (here + 1)
    | None -> invalid_arg (Printf.sprintf "Asm.assemble: undefined label %s" name)
  in
  (* Pass 2: encode. *)
  let words = ref [] in
  let addr = ref 0 in
  let emit instr =
    words := Isa.encode instr :: !words;
    incr addr
  in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | I instr -> emit instr
      | Brz_to (ra, name) -> emit (Isa.Brz (ra, resolve name !addr))
      | Brnz_to (ra, name) -> emit (Isa.Brnz (ra, resolve name !addr))
      | Li16 (rd, v) ->
          if v < 0 || v > 0xffff then
            invalid_arg (Printf.sprintf "Asm.assemble: li16 value %d out of range" v);
          emit (Isa.Ldi (rd, v land 0xff));
          emit (Isa.Lui (rd, (v lsr 8) land 0xff)))
    items;
  Array.of_list (List.rev !words)

let disassemble words = Array.map Isa.decode words
