(** Two-pass combinator assembler with symbolic labels.

    Programs are lists of {!item}s; labels mark addresses, and branch items
    reference them symbolically (offsets are resolved in the second pass).
    [li16] expands to the LDI/LUI pair that loads a full 16-bit constant. *)

type item =
  | I of Isa.t  (** a concrete instruction *)
  | Label of string
  | Brz_to of Isa.reg * string
  | Brnz_to of Isa.reg * string
  | Li16 of Isa.reg * int  (** expands to 2 instructions (LDI + LUI) *)

val size : item -> int
(** Words the item occupies (0 for labels). *)

val assemble : item list -> int array
(** Encoded program, one 16-bit word per instruction. Raises
    [Invalid_argument] on duplicate or undefined labels, out-of-range
    branch offsets, or encoding errors. *)

val disassemble : int array -> Isa.t array
