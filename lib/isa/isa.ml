type reg = int

type t =
  | Halt
  | Trapret
  | Nop
  | Retu
  | Ldi of reg * int
  | Lui of reg * int
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor_ of reg * reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg
  | Ld of reg * reg * int
  | St of reg * reg * int
  | Brz of reg * int
  | Brnz of reg * int
  | Jalr of reg * reg
  | Mpuw of int * reg

let fld_base0 = 0
let fld_limit0 = 1
let fld_ctrl0 = 2
let fld_base1 = 3
let fld_limit1 = 4
let fld_ctrl1 = 5

let ctrl_enable = 1
let ctrl_read = 2
let ctrl_write = 4
let ctrl_exec = 8

let trap_vector = 2

let cause_data = 1
let cause_instr = 2
let cause_priv = 3

(* Opcode map. *)
let op_sys = 0x0
let op_ldi = 0x1
let op_lui = 0x2
let op_add = 0x3
let op_sub = 0x4
let op_and = 0x5
let op_or = 0x6
let op_xor = 0x7
let op_shl = 0x8
let op_shr = 0x9
let op_ld = 0xA
let op_st = 0xB
let op_brz = 0xC
let op_brnz = 0xD
let op_jalr = 0xE
let op_mpuw = 0xF

let sys_halt = 0
let sys_trapret = 1
let sys_nop = 2
let sys_retu = 3

let check_reg r =
  if r < 0 || r > 7 then invalid_arg (Printf.sprintf "Isa.encode: register r%d out of range" r)

let check_imm name v width =
  if v < 0 || v lsr width <> 0 then
    invalid_arg (Printf.sprintf "Isa.encode: %s %d does not fit in %d bits" name v width)

let check_simm name v width =
  let lo = -(1 lsl (width - 1)) and hi = (1 lsl (width - 1)) - 1 in
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Isa.encode: %s %d out of [%d, %d]" name v lo hi)

let word op rd ra rb = (op lsl 12) lor (rd lsl 9) lor (ra lsl 6) lor (rb lsl 3)

let alu op rd ra rb =
  check_reg rd;
  check_reg ra;
  check_reg rb;
  word op rd ra rb

let encode = function
  | Halt -> (op_sys lsl 12) lor sys_halt
  | Trapret -> (op_sys lsl 12) lor sys_trapret
  | Nop -> (op_sys lsl 12) lor sys_nop
  | Retu -> (op_sys lsl 12) lor sys_retu
  | Ldi (rd, imm) ->
      check_reg rd;
      check_imm "imm8" imm 8;
      (op_ldi lsl 12) lor (rd lsl 9) lor imm
  | Lui (rd, imm) ->
      check_reg rd;
      check_imm "imm8" imm 8;
      (op_lui lsl 12) lor (rd lsl 9) lor imm
  | Add (rd, ra, rb) -> alu op_add rd ra rb
  | Sub (rd, ra, rb) -> alu op_sub rd ra rb
  | And_ (rd, ra, rb) -> alu op_and rd ra rb
  | Or_ (rd, ra, rb) -> alu op_or rd ra rb
  | Xor_ (rd, ra, rb) -> alu op_xor rd ra rb
  | Shl (rd, ra, rb) -> alu op_shl rd ra rb
  | Shr (rd, ra, rb) -> alu op_shr rd ra rb
  | Ld (rd, ra, off) ->
      check_reg rd;
      check_reg ra;
      check_imm "offset" off 6;
      (op_ld lsl 12) lor (rd lsl 9) lor (ra lsl 6) lor off
  | St (rd, ra, off) ->
      check_reg rd;
      check_reg ra;
      check_imm "offset" off 6;
      (op_st lsl 12) lor (rd lsl 9) lor (ra lsl 6) lor off
  | Brz (ra, off) ->
      check_reg ra;
      check_simm "branch offset" off 9;
      (op_brz lsl 12) lor (ra lsl 9) lor (off land 0x1ff)
  | Brnz (ra, off) ->
      check_reg ra;
      check_simm "branch offset" off 9;
      (op_brnz lsl 12) lor (ra lsl 9) lor (off land 0x1ff)
  | Jalr (rd, ra) ->
      check_reg rd;
      check_reg ra;
      word op_jalr rd ra 0
  | Mpuw (fld, ra) ->
      if fld < 0 || fld > 5 then invalid_arg "Isa.encode: MPU field out of range";
      check_reg ra;
      word op_mpuw fld ra 0

let sext v width = if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let decode w =
  if w < 0 || w > 0xffff then invalid_arg "Isa.decode: not a 16-bit word";
  let op = (w lsr 12) land 0xf in
  let rd = (w lsr 9) land 0x7 in
  let ra = (w lsr 6) land 0x7 in
  let rb = (w lsr 3) land 0x7 in
  let imm8 = w land 0xff in
  let imm6 = w land 0x3f in
  let simm9 = sext (w land 0x1ff) 9 in
  if op = op_sys then begin
    match w land 0xf with
    | c when c = sys_halt -> Halt
    | c when c = sys_trapret -> Trapret
    | c when c = sys_retu -> Retu
    | _ -> Nop
  end
  else if op = op_ldi then Ldi (rd, imm8)
  else if op = op_lui then Lui (rd, imm8)
  else if op = op_add then Add (rd, ra, rb)
  else if op = op_sub then Sub (rd, ra, rb)
  else if op = op_and then And_ (rd, ra, rb)
  else if op = op_or then Or_ (rd, ra, rb)
  else if op = op_xor then Xor_ (rd, ra, rb)
  else if op = op_shl then Shl (rd, ra, rb)
  else if op = op_shr then Shr (rd, ra, rb)
  else if op = op_ld then Ld (rd, ra, imm6)
  else if op = op_st then St (rd, ra, imm6)
  else if op = op_brz then Brz ((w lsr 9) land 0x7, simm9)
  else if op = op_brnz then Brnz ((w lsr 9) land 0x7, simm9)
  else if op = op_jalr then Jalr (rd, ra)
  else Mpuw (rd, ra)

let to_string = function
  | Halt -> "halt"
  | Trapret -> "trapret"
  | Nop -> "nop"
  | Retu -> "retu"
  | Ldi (rd, i) -> Printf.sprintf "ldi r%d, %d" rd i
  | Lui (rd, i) -> Printf.sprintf "lui r%d, %d" rd i
  | Add (rd, ra, rb) -> Printf.sprintf "add r%d, r%d, r%d" rd ra rb
  | Sub (rd, ra, rb) -> Printf.sprintf "sub r%d, r%d, r%d" rd ra rb
  | And_ (rd, ra, rb) -> Printf.sprintf "and r%d, r%d, r%d" rd ra rb
  | Or_ (rd, ra, rb) -> Printf.sprintf "or r%d, r%d, r%d" rd ra rb
  | Xor_ (rd, ra, rb) -> Printf.sprintf "xor r%d, r%d, r%d" rd ra rb
  | Shl (rd, ra, rb) -> Printf.sprintf "shl r%d, r%d, r%d" rd ra rb
  | Shr (rd, ra, rb) -> Printf.sprintf "shr r%d, r%d, r%d" rd ra rb
  | Ld (rd, ra, o) -> Printf.sprintf "ld r%d, %d(r%d)" rd o ra
  | St (rd, ra, o) -> Printf.sprintf "st r%d, %d(r%d)" rd o ra
  | Brz (ra, o) -> Printf.sprintf "brz r%d, %d" ra o
  | Brnz (ra, o) -> Printf.sprintf "brnz r%d, %d" ra o
  | Jalr (rd, ra) -> Printf.sprintf "jalr r%d, r%d" rd ra
  | Mpuw (fld, ra) -> Printf.sprintf "mpuw f%d, r%d" fld ra
