(** The 16-bit instruction set of the evaluation processor.

    This plays the role of the commercial processor's ISA in the paper: big
    enough to host an MPU-protected memory-access security policy and
    realistic workloads, small enough to implement twice (behavioral RTL
    model and gate netlist) with bit-exact agreement.

    Encoding (16-bit words, fields MSB-to-LSB):
    {v
    op(4) | rd(3) | ra(3) | rb(3)  | pad(3)   ALU / JALR / MPUW
    op(4) | rd(3) | pad(1)| imm8(8)           LDI / LUI
    op(4) | rd(3) | ra(3) | imm6(6)           LD / ST
    op(4) | ra(3) | simm9(9)                  BRZ / BRNZ
    op(4) | pad(8)        | imm4(4)           SYS (HALT/TRAPRET/NOP/RETU)
    v}

    Architectural registers: [r0..r7] (16-bit), [pc], [epc], [cause] (2-bit),
    [mode] (1 = privileged), [halted], and the MPU bank: two regions of
    [base], [limit] (inclusive), [ctrl]. All reset to 0 except [mode] which
    resets to privileged.

    Security semantics (the MPU policy under attack):
    - in user mode every data access must be granted by an enabled region
      ([base <= addr <= limit] with the matching permission bit); every
      instruction fetch needs the exec permission;
    - MPUW / TRAPRET / RETU are privileged;
    - a violation raises the responding signal, squashes the instruction's
      architectural effect and traps: [epc <- pc], [cause <- code],
      [mode <- privileged], [pc <- trap_vector]. *)

type reg = int
(** Register index 0..7. *)

type t =
  | Halt
  | Trapret  (** privileged: [pc <- epc + 1; mode <- user] *)
  | Nop
  | Retu  (** privileged: drop to user mode, [pc <- pc + 1] *)
  | Ldi of reg * int  (** [rd <- zext imm8] *)
  | Lui of reg * int  (** [rd <- (imm8 << 8) lor (rd land 0xff)] *)
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor_ of reg * reg * reg
  | Shl of reg * reg * reg  (** [rd <- ra lsl (rb land 15)] *)
  | Shr of reg * reg * reg  (** logical *)
  | Ld of reg * reg * int  (** [rd <- dmem\[ra + imm6\]] *)
  | St of reg * reg * int  (** [dmem\[ra + imm6\] <- rd] *)
  | Brz of reg * int  (** [if ra = 0 then pc <- pc + 1 + simm9] *)
  | Brnz of reg * int
  | Jalr of reg * reg  (** [rd <- pc + 1; pc <- ra] *)
  | Mpuw of int * reg  (** [mpu\[field\] <- ra]; privileged *)

(** MPU register-file field indices for {!Mpuw}. *)

val fld_base0 : int
val fld_limit0 : int
val fld_ctrl0 : int
val fld_base1 : int
val fld_limit1 : int
val fld_ctrl1 : int

(** MPU [ctrl] permission bits. *)

val ctrl_enable : int
val ctrl_read : int
val ctrl_write : int
val ctrl_exec : int

val trap_vector : int
(** PC value loaded on a trap (= 2). *)

(** Trap cause codes. *)

val cause_data : int  (** 1: data-access violation *)

val cause_instr : int  (** 2: instruction-fetch violation *)

val cause_priv : int  (** 3: privileged instruction in user mode *)

val encode : t -> int
(** 16-bit word. Raises [Invalid_argument] when a field is out of range
    (register index, immediate width, branch offset). *)

val decode : int -> t
(** Total: every 16-bit word decodes (unused encodings fall into the
    closest instruction; SYS with an unknown code decodes as {!Nop}).
    Raises [Invalid_argument] outside [\[0, 0xffff\]]. *)

val to_string : t -> string
