open Asm

type attack_perm = Attack_read | Attack_write | Attack_exec

type t = {
  name : string;
  imem : int array;
  dmem_size : int;
  dmem_init : (int * int) list;
  observable : int list;
  max_cycles : int;
  attack : (int * attack_perm) option;
  user_code_range : (int * int) option;
}

let secret_addr = 0x300
let secret_value = 0x5EC7
let out_addr = 0x110
let user_data_base = 0x100
let user_data_limit = 0x1ff

let dmem_size = 1024

(* Pseudo-random but fixed initial contents for the user data window, so the
   busy-work loop creates genuine switching activity. *)
let user_data_init =
  List.init 16 (fun i -> (user_data_base + i, (i * 7919) land 0xffff))

(* Common prologue: reset jump, trap handler, MPU configuration, secret
   initialization, privilege drop. [handler] is the trap-handler body,
   [user] the user-mode program. The user code region is granted execute
   permission via MPU region 1. *)
let with_boot ~handler ~user =
  let prologue_head =
    [ Brz_to (0, "boot"); I Isa.Nop; (* address 2 = trap vector *) Label "trap"; I handler ]
  in
  let boot =
    [
      Label "boot";
      (* Region 0: user data window, read+write. *)
      Li16 (1, user_data_base);
      I (Isa.Mpuw (Isa.fld_base0, 1));
      Li16 (1, user_data_limit);
      I (Isa.Mpuw (Isa.fld_limit0, 1));
      I (Isa.Ldi (1, Isa.ctrl_enable lor Isa.ctrl_read lor Isa.ctrl_write));
      I (Isa.Mpuw (Isa.fld_ctrl0, 1));
      (* Secret value in the protected word. *)
      Li16 (2, secret_addr);
      Li16 (3, secret_value);
      I (Isa.St (3, 2, 0));
      (* Region 1: execute permission over the user program; bounds are
         patched below once layout is known. *)
      Label "patch_base";
      Li16 (1, 0);
      I (Isa.Mpuw (Isa.fld_base1, 1));
      Label "patch_limit";
      Li16 (1, 0);
      I (Isa.Mpuw (Isa.fld_limit1, 1));
      I (Isa.Ldi (1, Isa.ctrl_enable lor Isa.ctrl_exec));
      I (Isa.Mpuw (Isa.fld_ctrl1, 1));
      (* Scrub temporaries and drop to user mode; user code starts at the
         next address. *)
      I (Isa.Ldi (1, 0));
      I (Isa.Ldi (2, 0));
      I (Isa.Ldi (3, 0));
      I Isa.Retu;
      Label "user";
    ]
  in
  let items = prologue_head @ boot @ user in
  (* Two-step assembly: first to learn label addresses, then re-assemble
     with the exec-region bounds patched in. *)
  let addr_of label =
    let a = ref 0 and found = ref (-1) in
    List.iter
      (fun item ->
        (match item with Label l when l = label -> found := !a | _ -> ());
        a := !a + size item)
      items;
    if !found < 0 then invalid_arg ("Programs.with_boot: missing label " ^ label);
    !found
  in
  let user_start = addr_of "user" in
  let total_words = List.fold_left (fun acc i -> acc + size i) 0 items in
  let user_limit =
    (* An explicit "user_end" label bounds the exec region (code after it is
       privileged-only); otherwise the region covers the whole tail. *)
    let a = ref 0 and found = ref (-1) in
    List.iter
      (fun item ->
        (match item with Label "user_end" -> found := !a | _ -> ());
        a := !a + size item)
      items;
    if !found >= 0 then !found - 1 else total_words - 1
  in
  let items =
    let rec rewrite = function
      | Label "patch_base" :: Li16 (r, _) :: rest -> Label "patch_base" :: Li16 (r, user_start) :: rewrite rest
      | Label "patch_limit" :: Li16 (r, _) :: rest ->
          Label "patch_limit" :: Li16 (r, user_limit) :: rewrite rest
      | item :: rest -> item :: rewrite rest
      | [] -> []
    in
    rewrite items
  in
  (assemble items, (user_start, user_limit), addr_of)

(* Busy-work: checksum and write-back over the user data window. Uses
   r1 (pointer), r2 (loop count), r3 (accumulator), r4 (scratch), r5 (one). *)
let busy_work =
  [
    Li16 (1, user_data_base);
    I (Isa.Ldi (2, 12));
    I (Isa.Ldi (3, 0));
    I (Isa.Ldi (5, 1));
    Label "loop";
    I (Isa.Ld (4, 1, 0));
    I (Isa.Add (3, 3, 4));
    I (Isa.Shl (4, 3, 5));
    I (Isa.Xor_ (3, 3, 4));
    I (Isa.St (3, 1, 32));
    I (Isa.Add (1, 1, 5));
    I (Isa.Sub (2, 2, 5));
    Brnz_to (2, "loop");
  ]

let illegal_write =
  let user =
    busy_work
    @ [
        (* The attack payload: store to the protected word. *)
        Li16 (6, secret_addr);
        I (Isa.Ldi (7, 0xAB));
        I (Isa.St (7, 6, 0));
        (* Post-work the attacker would run on success. *)
        I (Isa.St (3, 1, 0));
        I Isa.Halt;
      ]
  in
  let imem, range, _ = with_boot ~handler:Isa.Halt ~user in
  {
    name = "illegal-write";
    imem;
    dmem_size;
    dmem_init = user_data_init;
    observable = [ secret_addr ];
    max_cycles = 400;
    attack = Some (secret_addr, Attack_write);
    user_code_range = Some range;
  }

let illegal_read =
  let user =
    busy_work
    @ [
        (* Load the secret, leak it into the user-visible cell. *)
        Li16 (6, secret_addr);
        I (Isa.Ld (7, 6, 0));
        Li16 (5, out_addr);
        I (Isa.St (7, 5, 0));
        I Isa.Halt;
      ]
  in
  let imem, range, _ = with_boot ~handler:Isa.Halt ~user in
  {
    name = "illegal-read";
    imem;
    dmem_size;
    dmem_init = user_data_init;
    observable = [ out_addr ];
    max_cycles = 400;
    attack = Some (secret_addr, Attack_read);
    user_code_range = Some range;
  }

let synthetic =
  let user =
    [
      Li16 (1, user_data_base);
      I (Isa.Ldi (2, 40));
      I (Isa.Ldi (3, 0x35));
      I (Isa.Ldi (5, 1));
      Li16 (6, secret_addr);
      Label "loop";
      I (Isa.Ld (4, 1, 0));
      I (Isa.Xor_ (3, 3, 4));
      I (Isa.Add (3, 3, 2));
      I (Isa.Shr (4, 3, 5));
      I (Isa.Or_ (3, 3, 4));
      I (Isa.St (3, 1, 32));
      (* Periodic illegal access: the handler skips it via trapret, so the
         responding signal pulses and execution continues. *)
      I (Isa.St (3, 6, 0));
      I (Isa.Ld (4, 6, 0));
      I (Isa.Add (1, 1, 5));
      I (Isa.Sub (2, 2, 5));
      Brnz_to (2, "loop");
      I Isa.Halt;
    ]
  in
  let imem, range, _ = with_boot ~handler:Isa.Trapret ~user in
  {
    name = "synthetic";
    imem;
    dmem_size;
    dmem_init = user_data_init;
    observable = [];
    max_cycles = 1200;
    attack = None;
    user_code_range = Some range;
  }

let service_addr_ref = ref 0

let illegal_exec =
  let user =
    busy_work
    @ [
        (* The attack payload: jump into the privileged service routine,
           which lives outside the user exec region. *)
        Label "load_target";
        Li16 (6, 0);
        I (Isa.Jalr (7, 6));
        I Isa.Halt;
        Label "user_end";
        (* Privileged service routine: writes a completion token to the
           user-visible cell, then halts. Only reachable by defeating the
           exec check. *)
        Label "service";
        Li16 (1, out_addr);
        I (Isa.Ldi (2, 0x77));
        I (Isa.St (2, 1, 0));
        I Isa.Halt;
      ]
  in
  let imem, range, addr_of = with_boot ~handler:Isa.Halt ~user in
  let service = addr_of "service" in
  service_addr_ref := service;
  (* Patch the Li16 at "load_target" with the service address (two-pass like
     the boot bounds): the Li16 occupies the two words at addr_of
     "load_target". *)
  let target = addr_of "load_target" in
  imem.(target) <- Isa.encode (Isa.Ldi (6, service land 0xff));
  imem.(target + 1) <- Isa.encode (Isa.Lui (6, (service lsr 8) land 0xff));
  {
    name = "illegal-exec";
    imem;
    dmem_size;
    dmem_init = user_data_init;
    observable = [ out_addr ];
    max_cycles = 400;
    attack = Some (service, Attack_exec);
    user_code_range = Some range;
  }

let service_addr = !service_addr_ref
