(** Benchmark programs (paper §6).

    Each benchmark bundles an instruction image (boot code that configures
    the MPU and drops to user mode, plus the attacker-chosen user workload),
    an initial data image, and the security-relevant metadata the framework
    needs: which data addresses are observable for the attack-success test
    and how long to run.

    Memory map (dmem, word-addressed):
    - [0x100 .. 0x1ff] — user read/write region (MPU region 0);
    - [0x300] — the protected secret word (no region covers it);
    - [0x110] — [out_addr], the user-writable cell the read benchmark leaks
      into.

    imem: MPU region 1 grants user execute permission exactly over the user
    program. The trap vector (address 2) holds the handler: [Halt] for the
    attack benchmarks (violation detected, system stops), [Trapret] for the
    synthetic characterization workload (skip and continue, so responding
    signals keep switching). *)

type attack_perm = Attack_read | Attack_write | Attack_exec

type t = {
  name : string;
  imem : int array;  (** encoded program, address 0 upward *)
  dmem_size : int;
  dmem_init : (int * int) list;  (** (address, value) words set before reset *)
  observable : int list;
      (** dmem addresses whose final value decides attack success: a
          difference vs the golden run means the security policy was
          bypassed *)
  max_cycles : int;  (** simulation budget (golden runs halt well before) *)
  attack : (int * attack_perm) option;
      (** the malicious access (address, kind) the user program attempts —
          drives the analytical evaluation of memory-type register errors *)
  user_code_range : (int * int) option;
      (** imem range \[first, last\] of the user program (the MPU exec
          region); the analytical evaluator checks it stays executable
          under a corrupted configuration *)
}

val secret_addr : int
val secret_value : int
val out_addr : int
val user_data_base : int
val user_data_limit : int

val illegal_write : t
(** User code attempts [st] to the protected address (paper's "Memory
    Write" benchmark). *)

val illegal_read : t
(** User code attempts [ld] from the protected address and leaks the value
    to [out_addr] ("Memory Read"). *)

val illegal_exec : t
(** User code jumps into a privileged service routine that lives outside
    the user exec region; in the golden run the fetch traps. An attack
    that defeats the exec check (or escalates privilege) runs the routine,
    whose store to [out_addr] is the observable. *)

val service_addr : int
(** imem address of the privileged routine targeted by {!illegal_exec}. *)

val synthetic : t
(** Mixed ALU/memory/branch workload with periodic illegal accesses that
    the handler skips — drives the pre-characterization simulations. *)
