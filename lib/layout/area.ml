module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind

let gate_area = function
  | K.Not | K.Buf -> 1.0
  | K.And | K.Or -> 1.5
  | K.Nand | K.Nor -> 1.25
  | K.Xor | K.Xnor -> 2.5
  | K.Mux -> 2.25

let dff_area = 6.0

let node_area net node =
  match N.kind net node with
  | K.Gate g -> gate_area g
  | K.Dff _ -> dff_area
  | K.Input | K.Const _ -> 0.

let total net =
  let sum = ref 0. in
  for i = 0 to N.num_nodes net - 1 do
    sum := !sum +. node_area net i
  done;
  !sum

let registers_total net =
  Array.fold_left (fun acc d -> acc +. node_area net d) 0. (N.dffs net)

let hardened_overhead net ~hardened ~factor =
  Array.fold_left (fun acc d -> acc +. (node_area net d *. (factor -. 1.))) 0. hardened
