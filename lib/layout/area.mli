(** Unit-area model for overhead accounting (paper §6).

    Only {e relative} area matters for the paper's "<2% area overhead"
    claim, so cells carry unit areas in the spirit of a standard-cell
    library (an inverter is 1, a flip-flop several inverters, a hardened
    flip-flop [hardening_factor] times a normal one). *)

val gate_area : Fmc_netlist.Kind.gate -> float
val dff_area : float

val node_area : Fmc_netlist.Netlist.t -> Fmc_netlist.Netlist.node -> float
(** 0 for inputs and constants. *)

val total : Fmc_netlist.Netlist.t -> float
(** Sum over all cells. *)

val registers_total : Fmc_netlist.Netlist.t -> float

val hardened_overhead :
  Fmc_netlist.Netlist.t -> hardened:Fmc_netlist.Netlist.node array -> factor:float -> float
(** Extra area (in the same units) of replacing [hardened] flip-flops with
    cells [factor] times larger — e.g. [factor = 3.] per the paper's
    built-in soft-error-resilience references. *)
