module N = Fmc_netlist.Netlist
module Rng = Fmc_prelude.Rng

type t = {
  net : N.t;
  xs : float array;  (* per node; NaN when unplaced *)
  ys : float array;
  placed : N.node array;
  width : float;
  height : float;
}

let place ?(seed = 0) net =
  let n = N.num_nodes net in
  let xs = Array.make n nan and ys = Array.make n nan in
  (* Row-major fill of a near-square die. Register groups stay contiguous
     (a placer keeps the bits of one register bit-sliced side by side),
     and those runs are shuffled seed-deterministically into the sea of
     combinational gates — so a radiation disc can cover several bits of
     one register, or registers together with nearby logic (paper Fig. 7
     needs both behaviours). *)
  let cells = Array.append (N.dffs net) (N.gates net) in
  let rng = Rng.create seed in
  let group_runs =
    List.map (fun (_, members) -> Array.copy members) (N.register_groups net)
  in
  let gate_items = Array.to_list (Array.map (fun g -> [| g |]) (N.gates net)) in
  let items = Array.of_list (group_runs @ gate_items) in
  Rng.shuffle rng items;
  let ordered = Array.concat (Array.to_list items) in
  let total = Array.length ordered in
  let cols = max 1 (int_of_float (ceil (sqrt (float_of_int total)))) in
  Array.iteri
    (fun i c ->
      xs.(c) <- float_of_int (i mod cols);
      ys.(c) <- float_of_int (i / cols))
    ordered;
  let width = float_of_int cols in
  let height = float_of_int (max 1 ((total + cols - 1) / cols)) in
  let placed = Array.copy cells in
  Array.sort compare placed;
  { net; xs; ys; placed; width; height }

let netlist t = t.net

let is_placed t node = not (Float.is_nan t.xs.(node))

let position t node =
  if not (is_placed t node) then invalid_arg "Placement.position: unplaced node";
  (t.xs.(node), t.ys.(node))

let cells t = t.placed

let distance t a b =
  let xa, ya = position t a and xb, yb = position t b in
  Float.hypot (xa -. xb) (ya -. yb)

let within t ~center ~radius =
  if radius < 0. then invalid_arg "Placement.within: negative radius";
  let cx, cy = position t center in
  let hit = ref [] in
  Array.iter
    (fun c ->
      if Float.hypot (t.xs.(c) -. cx) (t.ys.(c) -. cy) <= radius then hit := c :: !hit)
    t.placed;
  Array.of_list (List.rev !hit)

(* The placement is a unit lattice with at most one cell per site, so a
   dense site map answers disc queries in O(area) instead of O(cells). *)
type index = {
  base : t;
  cols : int;
  rows : int;
  site : int array;  (* row-major; node id, or -1 for an empty site *)
}

let index t =
  let cols = int_of_float t.width and rows = int_of_float t.height in
  let site = Array.make (cols * rows) (-1) in
  Array.iter
    (fun c -> site.((int_of_float t.ys.(c) * cols) + int_of_float t.xs.(c)) <- c)
    t.placed;
  { base = t; cols; rows; site }

let within_indexed ix ~center ~radius =
  if radius < 0. then invalid_arg "Placement.within_indexed: negative radius";
  let t = ix.base in
  let cx, cy = position t center in
  (* The bounding box over-covers by one site on each edge so that the
     hypot predicate below — bit-identical to [within]'s — is the only
     arbiter even under floating-point rounding. *)
  let x0 = max 0 (int_of_float (Float.floor (cx -. radius)) - 1)
  and x1 = min (ix.cols - 1) (int_of_float (Float.ceil (cx +. radius)) + 1)
  and y0 = max 0 (int_of_float (Float.floor (cy -. radius)) - 1)
  and y1 = min (ix.rows - 1) (int_of_float (Float.ceil (cy +. radius)) + 1) in
  let hit = ref [] in
  for y = y1 downto y0 do
    for x = x1 downto x0 do
      let c = ix.site.((y * ix.cols) + x) in
      if c >= 0 && Float.hypot (t.xs.(c) -. cx) (t.ys.(c) -. cy) <= radius then hit := c :: !hit
    done
  done;
  let arr = Array.of_list !hit in
  Array.sort compare arr;
  arr

let extent t = (t.width, t.height)
