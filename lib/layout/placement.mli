(** Physical placement of the netlist (substitute for the standard-cell
    placement the paper's radiated-region model [18] assumes).

    Cells (combinational gates and flip-flops) are placed on a unit grid:
    column = logic level (dataflow order left-to-right, as a real placer
    tends to produce), rows fill within a column in a deterministic
    seed-controlled order. A radiation strike with center cell [g] and
    radius [r] impacts every cell within Euclidean distance [r] of [g]'s
    position — the paper's [p = \[g, r\]] parameterization. *)

type t

val place : ?seed:int -> Fmc_netlist.Netlist.t -> t
(** Deterministic for a fixed netlist and seed. *)

val netlist : t -> Fmc_netlist.Netlist.t

val position : t -> Fmc_netlist.Netlist.node -> float * float
(** Raises [Invalid_argument] for nodes that are not placed (inputs,
    constants). *)

val is_placed : t -> Fmc_netlist.Netlist.node -> bool

val cells : t -> Fmc_netlist.Netlist.node array
(** All placed cells. *)

val distance : t -> Fmc_netlist.Netlist.node -> Fmc_netlist.Netlist.node -> float

val within : t -> center:Fmc_netlist.Netlist.node -> radius:float -> Fmc_netlist.Netlist.node array
(** Cells within [radius] of [center] (including [center] itself), ascending
    id. Raises [Invalid_argument] if [center] is unplaced or [radius < 0]. *)

type index
(** Dense site map over the placement lattice for fast disc queries. *)

val index : t -> index

val within_indexed :
  index -> center:Fmc_netlist.Netlist.node -> radius:float -> Fmc_netlist.Netlist.node array
(** Same result as {!within} — same cells, same ascending order — in
    O(disc area) rather than O(placed cells). The Monte Carlo hot loop
    and the {!Fmc_sva} pruner both sit on this query. *)

val extent : t -> float * float
(** Bounding box (width, height) of the placement. *)
