type node = int

type entry = {
  kind : Kind.t;
  mutable fanins : node array;
  input_name : string option;
  dff_group : (string * int) option;
  mutable dff_connected : bool;
}

type t = {
  mutable entries : entry array;
  mutable len : int;
  mutable outputs : (string * node) list;
  mutable const0 : node option;
  mutable const1 : node option;
  groups_seen : (string * int, unit) Hashtbl.t;
}

let dummy_entry =
  { kind = Kind.Input; fanins = [||]; input_name = None; dff_group = None; dff_connected = false }

let create () =
  {
    entries = Array.make 64 dummy_entry;
    len = 0;
    outputs = [];
    const0 = None;
    const1 = None;
    groups_seen = Hashtbl.create 16;
  }

let num_nodes t = t.len

let push t entry =
  if t.len = Array.length t.entries then begin
    let bigger = Array.make (2 * t.len) dummy_entry in
    Array.blit t.entries 0 bigger 0 t.len;
    t.entries <- bigger
  end;
  t.entries.(t.len) <- entry;
  t.len <- t.len + 1;
  t.len - 1

let check_node t n op =
  if n < 0 || n >= t.len then invalid_arg (Printf.sprintf "Builder.%s: dangling node id %d" op n)

let add_input t ~name =
  push t { kind = Kind.Input; fanins = [||]; input_name = Some name; dff_group = None; dff_connected = false }

let add_const t b =
  let cached = if b then t.const1 else t.const0 in
  match cached with
  | Some n -> n
  | None ->
      let n =
        push t
          { kind = Kind.Const b; fanins = [||]; input_name = None; dff_group = None; dff_connected = false }
      in
      if b then t.const1 <- Some n else t.const0 <- Some n;
      n

let add_gate t gate fanins =
  let n = Array.length fanins in
  (match Kind.gate_arity gate with
  | Some a when n <> a ->
      invalid_arg (Printf.sprintf "Builder.add_gate: %s expects %d fan-ins, got %d" (Kind.gate_to_string gate) a n)
  | Some _ -> ()
  | None -> if n < 2 then invalid_arg "Builder.add_gate: variadic gate needs >= 2 fan-ins");
  Array.iter (fun f -> check_node t f "add_gate") fanins;
  push t
    { kind = Kind.Gate gate; fanins = Array.copy fanins; input_name = None; dff_group = None; dff_connected = false }

let add_dff t ~group ~bit ~init =
  if Hashtbl.mem t.groups_seen (group, bit) then
    invalid_arg (Printf.sprintf "Builder.add_dff: duplicate register %s[%d]" group bit);
  Hashtbl.add t.groups_seen (group, bit) ();
  push t
    { kind = Kind.Dff { init }; fanins = [||]; input_name = None; dff_group = Some (group, bit); dff_connected = false }

let connect_dff t n ~d =
  check_node t n "connect_dff";
  check_node t d "connect_dff";
  let e = t.entries.(n) in
  (match e.kind with
  | Kind.Dff _ -> ()
  | _ -> invalid_arg "Builder.connect_dff: node is not a flip-flop");
  if e.dff_connected then invalid_arg "Builder.connect_dff: flip-flop already connected";
  e.fanins <- [| d |];
  e.dff_connected <- true

let set_output t ~name n =
  check_node t n "set_output";
  if List.mem_assoc name t.outputs then
    invalid_arg (Printf.sprintf "Builder.set_output: duplicate output name %s" name);
  t.outputs <- (name, n) :: t.outputs

let kind t n =
  check_node t n "kind";
  t.entries.(n).kind

let fanins t n =
  check_node t n "fanins";
  Array.copy t.entries.(n).fanins

let input_name t n =
  check_node t n "input_name";
  t.entries.(n).input_name

let dff_group t n =
  check_node t n "dff_group";
  t.entries.(n).dff_group

let outputs t = List.rev t.outputs
