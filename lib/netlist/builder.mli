(** Mutable netlist construction.

    The builder hands out node ids as integers. Flip-flops are declared
    first (so their outputs can feed logic that computes their own next
    state) and get their D input connected later with {!connect_dff}; the
    two-phase protocol is what lets [Fmc_hdl] describe feedback through
    registers. [Netlist.of_builder] checks that every flip-flop was
    connected and that the combinational part is acyclic. *)

type t

type node = int
(** Node id; dense, starting at 0, in creation order. *)

val create : unit -> t

val num_nodes : t -> int

val add_input : t -> name:string -> node

val add_const : t -> bool -> node
(** Constants are hash-consed: at most one node per polarity. *)

val add_gate : t -> Kind.gate -> node array -> node
(** Raises [Invalid_argument] on an arity violation or a dangling fan-in
    id. *)

val add_dff : t -> group:string -> bit:int -> init:bool -> node
(** Declare a flip-flop belonging to register group [group] at bit position
    [bit]. The pair [(group, bit)] must be unique. *)

val connect_dff : t -> node -> d:node -> unit
(** Set the D input. Raises [Invalid_argument] if the node is not a
    flip-flop or is already connected. *)

val set_output : t -> name:string -> node -> unit
(** Mark a node as a named primary output / observable signal. A name can
    only be set once. *)

(** Read-back accessors used by [Netlist.of_builder]. *)

val kind : t -> node -> Kind.t
val fanins : t -> node -> node array
val input_name : t -> node -> string option
val dff_group : t -> node -> (string * int) option
val outputs : t -> (string * node) list
