type t = {
  gates : Netlist.node array;
  registers : Netlist.node array;
  inputs : Netlist.node array;
}

let of_sets n gates registers inputs =
  let collect mask =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if mask.(i) then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  { gates = collect gates; registers = collect registers; inputs = collect inputs }

let fanin net ~roots =
  let n = Netlist.num_nodes net in
  let visited = Array.make n false in
  let gates = Array.make n false in
  let registers = Array.make n false in
  let inputs = Array.make n false in
  let rec visit i =
    if not visited.(i) then begin
      visited.(i) <- true;
      match Netlist.kind net i with
      | Kind.Gate _ ->
          gates.(i) <- true;
          Array.iter visit (Netlist.fanins net i)
      | Kind.Dff _ -> registers.(i) <- true
      | Kind.Input -> inputs.(i) <- true
      | Kind.Const _ -> ()
    end
  in
  List.iter visit roots;
  of_sets n gates registers inputs

let fanout net ~roots =
  let n = Netlist.num_nodes net in
  let visited = Array.make n false in
  let gates = Array.make n false in
  let registers = Array.make n false in
  let rec visit i =
    if not visited.(i) then begin
      visited.(i) <- true;
      match Netlist.kind net i with
      | Kind.Gate _ ->
          gates.(i) <- true;
          Array.iter visit (Netlist.fanouts net i)
      | Kind.Dff _ -> registers.(i) <- true
      | Kind.Input | Kind.Const _ ->
          (* A root input still spreads forward. *)
          Array.iter visit (Netlist.fanouts net i)
    end
  in
  (* Roots themselves are starting points, not members (unless reached again
     through the graph); spread from their fan-outs, but record a root
     flip-flop's own latching relationship naturally: a root gate is in the
     cone. *)
  List.iter
    (fun r ->
      match Netlist.kind net r with
      | Kind.Gate _ ->
          visited.(r) <- true;
          gates.(r) <- true;
          Array.iter visit (Netlist.fanouts net r)
      | Kind.Dff _ | Kind.Input | Kind.Const _ -> Array.iter visit (Netlist.fanouts net r))
    roots;
  of_sets n gates registers (Array.make n false)

let size t = Array.length t.gates + Array.length t.registers + Array.length t.inputs

let mem_sorted a x =
  let rec go lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true else if a.(mid) < x then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (Array.length a)

let mem_gate t x = mem_sorted t.gates x
let mem_register t x = mem_sorted t.registers x
