(** Combinational cone extraction (paper §4, Observation 1).

    A {e fan-in cone} of a node set is every combinational gate that can
    influence those nodes within a single cycle, plus the {e frontier}:
    the flip-flops and primary inputs at the sequential boundary. The
    {e fan-out cone} is the forward dual: gates reachable in the same cycle
    and the flip-flops that latch any of them. *)

type t = {
  gates : Netlist.node array;  (** combinational gates in the cone, ascending id *)
  registers : Netlist.node array;  (** frontier flip-flops, ascending id *)
  inputs : Netlist.node array;  (** frontier primary inputs, ascending id *)
}

val fanin : Netlist.t -> roots:Netlist.node list -> t
(** Backward cone. A root that is itself a flip-flop or input appears in the
    frontier; a root gate appears in [gates]. *)

val fanout : Netlist.t -> roots:Netlist.node list -> t
(** Forward cone. [registers] are the flip-flops whose D input is inside the
    cone (i.e., that would latch a corrupted value); [inputs] is always
    empty. *)

val size : t -> int
val mem_gate : t -> Netlist.node -> bool
val mem_register : t -> Netlist.node -> bool
