let node_attrs net highlighted n =
  let shape, label =
    match Netlist.kind net n with
    | Kind.Input ->
        let name = match Netlist.input_name net n with Some s -> s | None -> Printf.sprintf "in%d" n in
        ("triangle", name)
    | Kind.Const b -> ("diamond", if b then "1" else "0")
    | Kind.Gate g -> ("ellipse", Kind.gate_to_string g)
    | Kind.Dff _ ->
        let group, bit = Netlist.dff_group net n in
        ("box", Printf.sprintf "%s[%d]" group bit)
  in
  let color = if Hashtbl.mem highlighted n then ", style=filled, fillcolor=\"#ffb3b3\"" else "" in
  Printf.sprintf "  n%d [shape=%s, label=\"%s\"%s];" n shape (String.escaped label) color

let to_dot ?(highlight = []) ?only net =
  let highlighted = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace highlighted n ()) highlight;
  let members = Hashtbl.create 64 in
  let nodes =
    match only with
    | Some ns ->
        List.iter (fun n -> Hashtbl.replace members n ()) ns;
        ns
    | None ->
        let all = List.init (Netlist.num_nodes net) Fun.id in
        List.iter (fun n -> Hashtbl.replace members n ()) all;
        all
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph netlist {\n  rankdir=LR;\n";
  List.iter (fun n -> Buffer.add_string buf (node_attrs net highlighted n ^ "\n")) nodes;
  List.iter
    (fun n ->
      Array.iter
        (fun f ->
          if Hashtbl.mem members f then
            Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" f n))
        (Netlist.fanins net n))
    nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let cone_to_dot net (cone : Cone.t) =
  let only =
    Array.to_list cone.Cone.gates @ Array.to_list cone.Cone.registers
    @ Array.to_list cone.Cone.inputs
  in
  to_dot ~only net
