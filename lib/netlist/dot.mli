(** Graphviz export of a netlist (debugging / documentation aid).

    Renders the gate graph as a [digraph]: inputs as triangles, flip-flops
    as boxes labeled [group\[bit\]], gates as ellipses labeled with their
    kind, constants as diamonds. Optionally highlights a node set (e.g. a
    cone or a radiated disc) in red. Intended for small netlists or cones —
    render with [dot -Tsvg]. *)

val to_dot :
  ?highlight:Netlist.node list ->
  ?only:Netlist.node list ->
  Netlist.t ->
  string
(** [only] restricts the rendering to the given nodes (edges between
    them); by default the whole netlist is emitted. *)

val cone_to_dot : Netlist.t -> Cone.t -> string
(** Render a cone (its gates, frontier registers and inputs). *)
