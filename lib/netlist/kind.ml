type gate = And | Or | Nand | Nor | Xor | Xnor | Not | Buf | Mux

type t = Input | Const of bool | Gate of gate | Dff of { init : bool }

let gate_arity = function
  | Not | Buf -> Some 1
  | Mux -> Some 3
  | And | Or | Nand | Nor | Xor | Xnor -> None

let is_combinational = function Gate _ | Const _ -> true | Input | Dff _ -> false

let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Xor | Xnor | Not | Buf | Mux -> None

let check_arity gate n =
  match gate_arity gate with
  | Some a when n <> a ->
      invalid_arg (Printf.sprintf "Kind.eval: %d fan-ins for arity-%d gate" n a)
  | Some _ -> ()
  | None -> if n < 2 then invalid_arg "Kind.eval: variadic gate needs >= 2 fan-ins"

let eval3 gate (inputs : bool option array) =
  check_arity gate (Array.length inputs);
  let all_known () = Array.for_all Option.is_some inputs in
  let forced v = Array.exists (fun x -> x = Some v) inputs in
  match gate with
  | And -> if forced false then Some false else if all_known () then Some true else None
  | Nand -> if forced false then Some true else if all_known () then Some false else None
  | Or -> if forced true then Some true else if all_known () then Some false else None
  | Nor -> if forced true then Some false else if all_known () then Some true else None
  | Xor | Xnor ->
      if all_known () then
        let x = Array.fold_left (fun acc v -> acc <> Option.get v) false inputs in
        Some (if gate = Xor then x else not x)
      else None
  | Not -> Option.map not inputs.(0)
  | Buf -> inputs.(0)
  | Mux -> (
      match inputs.(0) with
      | Some sel -> if sel then inputs.(2) else inputs.(1)
      | None -> (
          match (inputs.(1), inputs.(2)) with
          | Some a, Some b when a = b -> Some a
          | _ -> None))

let eval gate inputs =
  let n = Array.length inputs in
  check_arity gate n;
  match gate with
  | And -> Array.for_all Fun.id inputs
  | Or -> Array.exists Fun.id inputs
  | Nand -> not (Array.for_all Fun.id inputs)
  | Nor -> not (Array.exists Fun.id inputs)
  | Xor -> Array.fold_left ( <> ) false inputs
  | Xnor -> not (Array.fold_left ( <> ) false inputs)
  | Not -> not inputs.(0)
  | Buf -> inputs.(0)
  | Mux -> if inputs.(0) then inputs.(2) else inputs.(1)

let gate_to_string = function
  | And -> "and"
  | Or -> "or"
  | Nand -> "nand"
  | Nor -> "nor"
  | Xor -> "xor"
  | Xnor -> "xnor"
  | Not -> "not"
  | Buf -> "buf"
  | Mux -> "mux"

let to_string = function
  | Input -> "input"
  | Const b -> if b then "const1" else "const0"
  | Gate g -> gate_to_string g
  | Dff { init } -> Printf.sprintf "dff(init=%b)" init
