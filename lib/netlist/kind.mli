(** Node kinds of the gate-level IR.

    A node is a single-output cell: a primary input, a combinational gate, a
    constant, or a D flip-flop. Multi-bit values are arrays of nodes (see
    [Fmc_hdl]). *)

type gate =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Mux  (** fan-ins [\[| sel; d0; d1 |\]]; output is [d1] when [sel] else [d0] *)

type t =
  | Input
  | Const of bool
  | Gate of gate
  | Dff of { init : bool }
      (** Rising-edge D flip-flop; the clock is implicit (single global
          clock, as in the paper's setting). *)

val gate_arity : gate -> int option
(** [None] means variadic with at least two fan-ins (And/Or/Nand/Nor/Xor/Xnor);
    [Some n] is an exact arity. *)

val is_combinational : t -> bool
(** True for [Gate _] and [Const _]. *)

val controlling_value : gate -> bool option
(** The input value that forces the gate output regardless of other inputs:
    [Some false] for And/Nand, [Some true] for Or/Nor, [None] for
    Xor/Xnor/Not/Buf/Mux. Used by the logical-masking test of the transient
    simulator. *)

val eval : gate -> bool array -> bool
(** Evaluate a gate on concrete fan-in values. Raises [Invalid_argument] on
    an arity violation. *)

val eval3 : gate -> bool option array -> bool option
(** Three-valued (Kleene) evaluation: [None] is unknown/X, [Some b] a
    definite value. Sound over-approximation of {!eval}: whenever [eval3]
    returns [Some b], [eval] returns [b] for every concretization of the
    unknown fan-ins. A known controlling value forces the output through
    unknown siblings (And/Nand/Or/Nor); a mux with an unknown select is
    definite when both data fan-ins agree. Shared by the const-gate lint
    and the {!Fmc_sva} abstract interpreter. Raises [Invalid_argument] on
    an arity violation. *)

val gate_to_string : gate -> string
val to_string : t -> string
