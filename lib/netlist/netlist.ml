type node = int

type t = {
  kinds : Kind.t array;
  fanins : node array array;
  fanouts : node array array;
  inputs : node array;
  dffs : node array;
  gates : node array;  (* topological order *)
  consts : node array;
  outputs : (string * node) list;
  input_names : (string, node) Hashtbl.t;
  groups : (string, node array) Hashtbl.t;
  levels : int array;
  max_level : int;
}

exception Combinational_cycle of node list

let topo_sort_gates kinds fanins fanouts =
  let n = Array.length kinds in
  let is_gate i = match kinds.(i) with Kind.Gate _ -> true | _ -> false in
  (* In-degree counting only combinational-gate fan-ins. *)
  let indeg = Array.make n 0 in
  for i = 0 to n - 1 do
    if is_gate i then
      Array.iter (fun f -> if is_gate f then indeg.(i) <- indeg.(i) + 1) fanins.(i)
  done;
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if is_gate i && indeg.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    incr seen;
    Array.iter
      (fun j ->
        if is_gate j then begin
          indeg.(j) <- indeg.(j) - 1;
          if indeg.(j) = 0 then Queue.add j queue
        end)
      fanouts.(i)
  done;
  let total_gates = ref 0 in
  for i = 0 to n - 1 do
    if is_gate i then incr total_gates
  done;
  if !seen <> !total_gates then begin
    (* Report the nodes still holding positive in-degree as the cycle. *)
    let stuck = ref [] in
    for i = n - 1 downto 0 do
      if is_gate i && indeg.(i) > 0 then stuck := i :: !stuck
    done;
    raise (Combinational_cycle !stuck)
  end;
  Array.of_list (List.rev !order)

let of_builder b =
  let n = Builder.num_nodes b in
  let kinds = Array.init n (Builder.kind b) in
  let fanins = Array.init n (Builder.fanins b) in
  (* Every flip-flop must have been connected. *)
  Array.iteri
    (fun i k ->
      match k with
      | Kind.Dff _ when Array.length fanins.(i) = 0 ->
          let group, bit =
            match Builder.dff_group b i with Some gb -> gb | None -> ("?", -1)
          in
          invalid_arg (Printf.sprintf "Netlist.of_builder: unconnected flip-flop %s[%d]" group bit)
      | _ -> ())
    kinds;
  let fanout_lists = Array.make n [] in
  for i = n - 1 downto 0 do
    Array.iter (fun f -> fanout_lists.(f) <- i :: fanout_lists.(f)) fanins.(i)
  done;
  let fanouts = Array.map Array.of_list fanout_lists in
  let gates = topo_sort_gates kinds fanins fanouts in
  let collect p =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if p kinds.(i) then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  let inputs = collect (function Kind.Input -> true | _ -> false) in
  let dffs = collect (function Kind.Dff _ -> true | _ -> false) in
  let consts = collect (function Kind.Const _ -> true | _ -> false) in
  let input_names = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      match Builder.input_name b i with
      | Some name -> Hashtbl.replace input_names name i
      | None -> ())
    inputs;
  let group_members = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      match Builder.dff_group b i with
      | Some (g, bit) ->
          let cur = try Hashtbl.find group_members g with Not_found -> [] in
          Hashtbl.replace group_members g ((bit, i) :: cur)
      | None -> ())
    dffs;
  let groups = Hashtbl.create 16 in
  Hashtbl.iter
    (fun g members ->
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) members in
      (* Bits must be dense 0..k-1 so group values round-trip as integers. *)
      List.iteri
        (fun expect (bit, _) ->
          if bit <> expect then
            invalid_arg (Printf.sprintf "Netlist.of_builder: group %s has non-dense bit indices" g))
        sorted;
      Hashtbl.replace groups g (Array.of_list (List.map snd sorted)))
    group_members;
  let levels = Array.make n 0 in
  Array.iter
    (fun i ->
      let deepest = Array.fold_left (fun acc f -> max acc levels.(f)) 0 fanins.(i) in
      levels.(i) <- deepest + 1)
    gates;
  let max_level = Array.fold_left max 0 levels in
  {
    kinds;
    fanins;
    fanouts;
    inputs;
    dffs;
    gates;
    consts;
    outputs = Builder.outputs b;
    input_names;
    groups;
    levels;
    max_level;
  }

let num_nodes t = Array.length t.kinds
let kind t i = t.kinds.(i)
let fanins t i = t.fanins.(i)
let fanouts t i = t.fanouts.(i)
let inputs t = t.inputs
let dffs t = t.dffs
let gates t = t.gates
let consts t = t.consts
let outputs t = t.outputs

(* A typo'd signal name used to die as a bare [Not_found]; name the missing
   key and what would have matched instead. *)
let unknown_key fn what name available =
  invalid_arg
    (Printf.sprintf "Netlist.%s: unknown %s %S (available: %s)" fn what name
       (String.concat ", " (List.sort compare available)))

let output t name =
  match List.assoc_opt name t.outputs with
  | Some node -> node
  | None -> unknown_key "output" "output" name (List.map fst t.outputs)

let input_by_name t name =
  match Hashtbl.find_opt t.input_names name with
  | Some node -> node
  | None ->
      unknown_key "input_by_name" "input" name
        (Hashtbl.fold (fun k _ acc -> k :: acc) t.input_names [])
let input_name t i = match t.kinds.(i) with
  | Kind.Input ->
      Hashtbl.fold (fun name id acc -> if id = i then Some name else acc) t.input_names None
  | _ -> None

let dff_init t i =
  match t.kinds.(i) with
  | Kind.Dff { init } -> init
  | _ -> invalid_arg "Netlist.dff_init: not a flip-flop"

let dff_d t i =
  match t.kinds.(i) with
  | Kind.Dff _ -> t.fanins.(i).(0)
  | _ -> invalid_arg "Netlist.dff_d: not a flip-flop"

let dff_group t i =
  match t.kinds.(i) with
  | Kind.Dff _ -> begin
      let found = ref None in
      Hashtbl.iter
        (fun g members -> Array.iteri (fun bit id -> if id = i then found := Some (g, bit)) members)
        t.groups;
      match !found with
      | Some gb -> gb
      | None -> invalid_arg "Netlist.dff_group: flip-flop without a group"
    end
  | _ -> invalid_arg "Netlist.dff_group: not a flip-flop"

let register_group t name =
  match Hashtbl.find_opt t.groups name with
  | Some members -> members
  | None ->
      unknown_key "register_group" "register group" name
        (Hashtbl.fold (fun k _ acc -> k :: acc) t.groups [])

let register_groups t =
  Hashtbl.fold (fun name members acc -> (name, members) :: acc) t.groups []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let level t i = t.levels.(i)
let max_level t = t.max_level

let count_by_kind t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun k ->
      let name =
        match k with
        | Kind.Dff _ -> "dff"
        | Kind.Const _ -> "const"
        | k -> Kind.to_string k
      in
      Hashtbl.replace tbl name (1 + (try Hashtbl.find tbl name with Not_found -> 0)))
    t.kinds;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>nodes: %d (gates %d, dffs %d, inputs %d)@,max logic depth: %d@,"
    (num_nodes t) (Array.length t.gates) (Array.length t.dffs) (Array.length t.inputs) t.max_level;
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-6s %d@," k v) (count_by_kind t);
  Format.fprintf ppf "@]"
