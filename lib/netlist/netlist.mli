(** Frozen (immutable) gate-level netlist.

    Produced from a {!Builder.t}; validates that all flip-flops are
    connected and the combinational part is acyclic, and precomputes the
    structures every downstream pass needs: topological evaluation order,
    fan-out lists, logic levels, and the register-group name map that ties
    netlist flip-flops to the RTL model's architectural registers. *)

type t

type node = int

exception Combinational_cycle of node list
(** Raised by {!of_builder} with (part of) an offending cycle. *)

val of_builder : Builder.t -> t
(** Raises [Invalid_argument] if some flip-flop was never connected, or
    {!Combinational_cycle}. *)

val num_nodes : t -> int
val kind : t -> node -> Kind.t
val fanins : t -> node -> node array
(** Shared array — callers must not mutate. *)

val fanouts : t -> node -> node array
(** Shared array — callers must not mutate. *)

val inputs : t -> node array
val dffs : t -> node array
val gates : t -> node array
(** Combinational gates (excluding constants), in topological order: every
    gate appears after all of its combinational fan-ins. This is the
    evaluation order of the cycle simulator. *)

val consts : t -> node array

val outputs : t -> (string * node) list
val output : t -> string -> node
(** Raises [Invalid_argument] for an unknown output name; the message lists
    the available names. *)

val input_by_name : t -> string -> node
(** Raises [Invalid_argument] for an unknown input name; the message lists
    the available names. *)

val input_name : t -> node -> string option

val dff_init : t -> node -> bool
(** Raises [Invalid_argument] if the node is not a flip-flop. *)

val dff_d : t -> node -> node
(** The D fan-in of a flip-flop. Raises [Invalid_argument] otherwise. *)

val dff_group : t -> node -> string * int
(** [(group, bit)] of a flip-flop. Raises [Invalid_argument] otherwise. *)

val register_group : t -> string -> node array
(** Flip-flops of a group ordered by bit index (bit 0 first). Raises
    [Invalid_argument] for an unknown group; the message lists the
    available group names. *)

val register_groups : t -> (string * node array) list
(** All groups, sorted by name. *)

val level : t -> node -> int
(** Logic depth: 0 for inputs/flip-flops/constants; [1 + max fan-in level]
    for gates. *)

val max_level : t -> int

val count_by_kind : t -> (string * int) list
(** Human-readable structural statistics, sorted by kind name. *)

val pp_summary : Format.formatter -> t -> unit
