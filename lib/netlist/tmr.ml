let voter_suffix k = Printf.sprintf "##tmr%d" k

let protect net ~registers =
  Array.iter
    (fun r ->
      match Netlist.kind net r with
      | Kind.Dff _ -> ()
      | _ -> invalid_arg "Tmr.protect: node is not a flip-flop")
    registers;
  let protected_set = Hashtbl.create (Array.length registers) in
  Array.iter (fun r -> Hashtbl.replace protected_set r ()) registers;
  let b = Builder.create () in
  let n = Netlist.num_nodes net in
  (* First pass: recreate every node (gates get placeholder fan-ins fixed in
     pass two? The builder is append-only, so instead recreate in the
     original id order — fan-ins of combinational nodes always refer to
     already-created nodes except through flip-flops, which are created on
     first reference too. Simplest robust scheme: create all inputs,
     constants and flip-flops first, then gates in topological order. *)
  let map = Array.make n (-1) in
  let shadow1 = Hashtbl.create 16 and shadow2 = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      let name = match Netlist.input_name net i with Some s -> s | None -> Printf.sprintf "in%d" i in
      map.(i) <- Builder.add_input b ~name)
    (Netlist.inputs net);
  Array.iter
    (fun i ->
      match Netlist.kind net i with
      | Kind.Const v -> map.(i) <- Builder.add_const b v
      | _ -> assert false)
    (Netlist.consts net);
  Array.iter
    (fun i ->
      let group, bit = Netlist.dff_group net i in
      let init = Netlist.dff_init net i in
      map.(i) <- Builder.add_dff b ~group ~bit ~init;
      if Hashtbl.mem protected_set i then begin
        Hashtbl.replace shadow1 i (Builder.add_dff b ~group:(group ^ voter_suffix 1) ~bit ~init);
        Hashtbl.replace shadow2 i (Builder.add_dff b ~group:(group ^ voter_suffix 2) ~bit ~init)
      end)
    (Netlist.dffs net);
  (* Voters: consumers of a protected flip-flop read the majority of the
     three copies instead of the primary Q. *)
  let read = Array.make n (-1) in
  Array.iteri (fun i m -> read.(i) <- m) map;
  Array.iter
    (fun i ->
      if Hashtbl.mem protected_set i then begin
        let a = map.(i) and b1 = Hashtbl.find shadow1 i and b2 = Hashtbl.find shadow2 i in
        let ab = Builder.add_gate b Kind.And [| a; b1 |] in
        let ac = Builder.add_gate b Kind.And [| a; b2 |] in
        let bc = Builder.add_gate b Kind.And [| b1; b2 |] in
        read.(i) <- Builder.add_gate b Kind.Or [| ab; ac; bc |]
      end)
    (Netlist.dffs net);
  (* Gates in topological order: every combinational fan-in is already
     mapped; flip-flop fan-ins read through their voter. *)
  Array.iter
    (fun g ->
      match Netlist.kind net g with
      | Kind.Gate kind ->
          let fanins = Array.map (fun f -> read.(f)) (Netlist.fanins net g) in
          map.(g) <- Builder.add_gate b kind fanins;
          read.(g) <- map.(g)
      | _ -> assert false)
    (Netlist.gates net);
  (* Connect D inputs: all three copies latch the same (voted-world) D. *)
  Array.iter
    (fun i ->
      let d = read.(Netlist.dff_d net i) in
      Builder.connect_dff b map.(i) ~d;
      if Hashtbl.mem protected_set i then begin
        Builder.connect_dff b (Hashtbl.find shadow1 i) ~d;
        Builder.connect_dff b (Hashtbl.find shadow2 i) ~d
      end)
    (Netlist.dffs net);
  (* Outputs follow the voted view. *)
  List.iter (fun (name, node) -> Builder.set_output b ~name read.(node)) (Netlist.outputs net);
  Netlist.of_builder b
