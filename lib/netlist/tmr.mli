(** Structural triple-modular-redundancy transform.

    [protect net ~registers] rebuilds the netlist with each selected
    flip-flop triplicated: three copies latch the same D input and a
    majority voter replaces the original Q everywhere it was consumed. A
    single latched upset (or a direct strike on one copy) is then outvoted
    — the structural counterpart of the resilience-factor model used by
    [Fmc.Harden], verifiable with the actual transient engine instead of a
    probability.

    Voter cost: 3 AND gates + one 3-input OR and two extra flip-flops per
    protected bit. Copy k of group [g] is named ["g##tmr<k>"] (k = 1, 2); the
    original group keeps its name, so state mapping by group name still
    addresses the primary copy. *)

val protect : Netlist.t -> registers:Netlist.node array -> Netlist.t
(** Raises [Invalid_argument] if some node in [registers] is not a
    flip-flop. The result preserves all input/output names and register
    groups (plus the shadow groups). Node ids are {e not} preserved. *)

val voter_suffix : int -> string
(** The group-name suffix of shadow copy [k]. *)
