type level = { gates : Netlist.node array; registers : Netlist.node array }

type t = { fanin_levels : level array; fanout_levels : level array }

let compute net ~roots ~depth ~fanout_depth =
  if depth < 0 || fanout_depth < 0 then invalid_arg "Unroll.compute: negative depth";
  (* Level 0 backwards. *)
  let cone0 = Cone.fanin net ~roots in
  let fwd0 = Cone.fanout net ~roots in
  let level0 =
    let gate_set = Hashtbl.create 64 in
    Array.iter (fun g -> Hashtbl.replace gate_set g ()) cone0.Cone.gates;
    Array.iter (fun g -> Hashtbl.replace gate_set g ()) fwd0.Cone.gates;
    let gates = Hashtbl.fold (fun g () acc -> g :: acc) gate_set [] in
    { gates = Array.of_list (List.sort compare gates); registers = [||] }
  in
  (* Backward levels: registers feeding level [i-1]'s logic belong to level
     [i]; the gates computing their D inputs belong to level [i] too. *)
  let fanin_levels = Array.make (depth + 1) level0 in
  let frontier = ref cone0.Cone.registers in
  (try
     for i = 1 to depth do
       let regs = !frontier in
       if Array.length regs = 0 then begin
         for j = i to depth do
           fanin_levels.(j) <- { gates = [||]; registers = [||] }
         done;
         raise Exit
       end;
       let d_roots = Array.to_list (Array.map (Netlist.dff_d net) regs) in
       let cone = Cone.fanin net ~roots:d_roots in
       (* A D input that is directly another flip-flop's output puts that
          flip-flop in the frontier; a D input that is an input/const gives
          no gates. *)
       fanin_levels.(i) <- { gates = cone.Cone.gates; registers = regs };
       frontier := cone.Cone.registers
     done
   with Exit -> ());
  (* Forward levels: flip-flops latching level [-(k)]'s logic belong to level
     [-(k+1)] together with their forward logic. *)
  let fanout_levels = Array.make fanout_depth { gates = [||]; registers = [||] } in
  let fwd_frontier = ref fwd0.Cone.registers in
  (try
     for k = 0 to fanout_depth - 1 do
       let regs = !fwd_frontier in
       if Array.length regs = 0 then begin
         for j = k to fanout_depth - 1 do
           fanout_levels.(j) <- { gates = [||]; registers = [||] }
         done;
         raise Exit
       end;
       let cone = Cone.fanout net ~roots:(Array.to_list regs) in
       fanout_levels.(k) <- { gates = cone.Cone.gates; registers = regs };
       fwd_frontier := cone.Cone.registers
     done
   with Exit -> ());
  { fanin_levels; fanout_levels }

let level_at t i =
  if i >= 0 then begin
    if i >= Array.length t.fanin_levels then invalid_arg "Unroll.level_at: depth out of range";
    t.fanin_levels.(i)
  end
  else begin
    let k = -i - 1 in
    if k >= Array.length t.fanout_levels then invalid_arg "Unroll.level_at: fanout depth out of range";
    t.fanout_levels.(k)
  end

let omega t i =
  let l = level_at t i in
  Array.append l.gates l.registers

let dedup_union proj t =
  let set = Hashtbl.create 256 in
  let add level = Array.iter (fun x -> Hashtbl.replace set x ()) (proj level) in
  Array.iter add t.fanin_levels;
  Array.iter add t.fanout_levels;
  let out = Hashtbl.fold (fun x () acc -> x :: acc) set [] in
  Array.of_list (List.sort compare out)

let all_registers t = dedup_union (fun l -> l.registers) t
let all_gates t = dedup_union (fun l -> l.gates) t
