(** Per-depth cones over the implicitly unrolled netlist (paper §4).

    Level [i >= 0] (fan-in side) holds the circuit elements whose corruption
    [i] cycles before the target cycle can reach the responding signals:

    - [gates]: a voltage transient during cycle [Tt - i] on one of these
      gates can corrupt the responding signal at [Tt];
    - [registers]: a bit flip present in one of these flip-flops during
      cycle [Tt - i] (i.e., latched at the end of [Tt - i - 1] or struck
      directly) does the same.

    Level 0 additionally contains the same-cycle fan-out gates of the
    responding signals, because a transient there can corrupt the latched
    consequence of the responding signal in the same cycle. Negative levels
    ([fanout_levels]) carry the forward side: elements whose corruption
    [|i|] cycles {e after} [Tt] can still suppress the system's reaction. *)

type level = { gates : Netlist.node array; registers : Netlist.node array }

type t = {
  fanin_levels : level array;  (** index = unroll depth [i], length [depth + 1] *)
  fanout_levels : level array;  (** index [k] = depth [-(k+1)] *)
}

val compute :
  Netlist.t -> roots:Netlist.node list -> depth:int -> fanout_depth:int -> t
(** [compute net ~roots ~depth ~fanout_depth] unrolls [depth] cycles
    backwards and [fanout_depth] cycles forwards from the responding-signal
    nodes [roots]. Raises [Invalid_argument] on negative depths. *)

val level_at : t -> int -> level
(** [level_at t i] for [i >= 0] is [fanin_levels.(i)]; for [i < 0] it is
    [fanout_levels.(-i - 1)]. Raises [Invalid_argument] when out of the
    computed range. *)

val omega : t -> int -> Netlist.node array
(** The paper's sample space slice [Omega_i]: gates and registers of level
    [i], concatenated (gates first). *)

val all_registers : t -> Netlist.node array
(** Union of registers over all computed levels, ascending, deduplicated. *)

val all_gates : t -> Netlist.node array
