let source = ref Unix.gettimeofday
let epoch = ref (Unix.gettimeofday ())

let set_source f =
  source := f;
  epoch := f ()

let now () = !source ()
let now_us () = (!source () -. !epoch) *. 1e6
