(* Monotonized time over a swappable source. [Unix.gettimeofday] can step
   backwards under NTP slews; folding every backward step into [offset]
   keeps [now]/[now_us] non-decreasing so rates, ETAs and span timestamps
   never go negative. [wall] stays raw for human-facing timestamps. *)

let mx = Mutex.create ()
let source = ref Unix.gettimeofday
let offset = ref 0.
let last = ref (Unix.gettimeofday ())
let epoch = ref !last

let set_source f =
  Mutex.lock mx;
  source := f;
  offset := 0.;
  last := f ();
  epoch := !last;
  Mutex.unlock mx

let wall () = !source ()

let now () =
  Mutex.lock mx;
  let raw = !source () +. !offset in
  let t =
    if raw < !last then (
      (* the source stepped backwards: absorb the step so callers see
         time holding still, then resuming forward *)
      offset := !offset +. (!last -. raw);
      !last)
    else (
      last := raw;
      raw)
  in
  Mutex.unlock mx;
  t

let now_us () = (now () -. !epoch) *. 1e6
