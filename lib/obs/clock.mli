(** The observability layer's single time source.

    Every timestamp in {!Metrics}, {!Span}, {!Rate} and the telemetry
    sinks flows through this module so tests can substitute a
    deterministic fake clock and assert on exact durations. The default
    source is [Unix.gettimeofday].

    {!now} and {!now_us} are {e monotonized}: a backward step in the
    underlying source (NTP slew, manual clock change) is absorbed into an
    internal offset, so consecutive reads never decrease — rates, ETAs
    and span timestamps cannot go negative. {!wall} bypasses the
    monotonizer for human-facing timestamps that should track the real
    calendar clock. *)

val set_source : (unit -> float) -> unit
(** Replace the clock source (seconds). The microsecond epoch for
    {!now_us} is re-anchored at the source's current value, so a fake
    clock starting at any offset yields span timestamps starting near 0;
    the monotonic offset is reset. *)

val now : unit -> float
(** Current time in seconds from the active source, monotonized: never
    decreases between calls, even if the source steps backwards. *)

val now_us : unit -> float
(** Monotonized microseconds since the source was installed (process
    start for the default source). Kept relative so the double mantissa
    retains sub-microsecond resolution over long campaigns. *)

val wall : unit -> float
(** The raw (non-monotonized) source value — wall-clock seconds for
    human-facing timestamps and for anchoring cross-process telemetry
    batches onto a shared timeline. *)
