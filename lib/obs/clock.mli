(** The observability layer's single time source.

    Every timestamp in {!Metrics}, {!Span} and the telemetry sinks flows
    through this module so tests can substitute a deterministic fake clock
    and assert on exact durations. The default source is
    [Unix.gettimeofday]. *)

val set_source : (unit -> float) -> unit
(** Replace the wall-clock source (seconds, monotonically non-decreasing).
    The microsecond epoch for {!now_us} is re-anchored at the source's
    current value, so a fake clock starting at any offset yields span
    timestamps starting near 0. *)

val now : unit -> float
(** Current time in seconds from the active source. *)

val now_us : unit -> float
(** Microseconds since the source was installed (process start for the
    default source). Kept relative so the double mantissa retains
    sub-microsecond resolution over long campaigns. *)
