(* Fleet-level telemetry store: the coordinator/scheduler side of the v4
   piggyback. Absorbs each worker's latest metrics snapshot and its
   per-shard span summaries (rebased onto this process's timeline at
   absorb time via the batch's wall anchor), and renders the whole fleet
   as one Chrome trace_event JSON with one track (pid) per worker.
   Mutex-protected: connection handler threads absorb while the HTTP
   scrape thread renders. *)

type worker_entry = {
  mutable we_snapshot : Metrics.snapshot;
  mutable we_last_wall : float;
  mutable we_spans : (string * Span.event) list;  (* newest first, rebased *)
  mutable we_span_count : int;
  mutable we_trace_id : string;
}

type t = {
  mx : Mutex.t;
  base_wall : float;  (* wall instant of our own now_us = 0 *)
  max_spans : int;
  workers : (string, worker_entry) Hashtbl.t;
}

type worker_info = {
  wi_last_wall : float;
  wi_span_count : int;
  wi_trace_id : string;
  wi_snapshot : Metrics.snapshot;
}

let create ?(max_spans = 8192) () =
  if max_spans <= 0 then invalid_arg "Fleet.create: non-positive max_spans";
  {
    mx = Mutex.create ();
    base_wall = Clock.wall () -. (Clock.now_us () /. 1e6);
    max_spans;
    workers = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.mx;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mx) f

let entry_for t worker =
  match Hashtbl.find_opt t.workers worker with
  | Some e -> e
  | None ->
      let e =
        {
          we_snapshot = [];
          we_last_wall = 0.;
          we_spans = [];
          we_span_count = 0;
          we_trace_id = "";
        }
      in
      Hashtbl.replace t.workers worker e;
      e

let truncate n l =
  let rec go k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go n l

let absorb t ~worker (tm : Telemetry.t) =
  locked t (fun () ->
      let e = entry_for t worker in
      e.we_last_wall <- Clock.wall ();
      if tm.Telemetry.tm_metrics <> [] then e.we_snapshot <- tm.Telemetry.tm_metrics;
      if tm.Telemetry.tm_trace_id <> "" then e.we_trace_id <- tm.Telemetry.tm_trace_id;
      match tm.Telemetry.tm_spans with
      | [] -> ()
      | spans ->
          let shift_us = (tm.Telemetry.tm_base_wall -. t.base_wall) *. 1e6 in
          let rebased =
            List.rev_map
              (fun { Telemetry.ss_span_id; ss_event = ev } ->
                (ss_span_id, { ev with Span.ev_ts_us = ev.Span.ev_ts_us +. shift_us }))
              spans
          in
          e.we_span_count <- e.we_span_count + List.length rebased;
          e.we_spans <- truncate t.max_spans (rebased @ e.we_spans))

let sorted_workers t =
  Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.workers []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

let merged_snapshot t ~base =
  locked t (fun () ->
      List.fold_left
        (fun acc (_, e) ->
          (* a worker snapshot that clashes with ours (bucket or kind
             mismatch from a heterogeneous fleet) is skipped, not fatal:
             scraping is observation-only *)
          try Metrics.merge acc e.we_snapshot with Invalid_argument _ -> acc)
        base (sorted_workers t))

let workers t =
  locked t (fun () ->
      List.map
        (fun (name, e) ->
          ( name,
            {
              wi_last_wall = e.we_last_wall;
              wi_span_count = e.we_span_count;
              wi_trace_id = e.we_trace_id;
              wi_snapshot = e.we_snapshot;
            } ))
        (sorted_workers t))

let span_count t =
  locked t (fun () -> Hashtbl.fold (fun _ e n -> n + List.length e.we_spans) t.workers 0)

let trace_id t =
  locked t (fun () ->
      List.fold_left
        (fun acc (_, e) -> if acc = "" then e.we_trace_id else acc)
        "" (sorted_workers t))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event stitching *)

let buf_event buf ~first ~pid ~trace_id ~span_id (ev : Span.event) =
  if not first then Buffer.add_char buf ',';
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
       (Jsonx.escape ev.Span.ev_name) (Jsonx.escape ev.Span.ev_cat) pid ev.Span.ev_tid
       ev.Span.ev_ts_us ev.Span.ev_dur_us);
  if span_id <> "" || trace_id <> "" then
    Buffer.add_string buf
      (Printf.sprintf ",\"args\":{\"trace_id\":\"%s\",\"span_id\":\"%s\"}"
         (Jsonx.escape trace_id) (Jsonx.escape span_id));
  Buffer.add_char buf '}'

let buf_process_name buf ~first ~pid label =
  if not first then Buffer.add_char buf ',';
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
       pid (Jsonx.escape label))

let to_chrome_json ?(own_label = "coordinator") ?(own_events = []) t =
  locked t (fun () ->
      let ws = sorted_workers t in
      let trace =
        List.fold_left (fun acc (_, e) -> if acc = "" then e.we_trace_id else acc) "" ws
      in
      let buf = Buffer.create 8192 in
      Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",";
      if trace <> "" then
        Buffer.add_string buf (Printf.sprintf "\"traceId\":\"%s\"," (Jsonx.escape trace));
      Buffer.add_string buf "\"traceEvents\":[";
      let first = ref true in
      let emit f =
        f ~first:!first;
        first := false
      in
      emit (fun ~first -> buf_process_name buf ~first ~pid:1 own_label);
      List.iteri
        (fun i (name, _) ->
          emit (fun ~first -> buf_process_name buf ~first ~pid:(i + 2) ("worker " ^ name)))
        ws;
      List.iter
        (fun ev -> emit (fun ~first -> buf_event buf ~first ~pid:1 ~trace_id:trace ~span_id:"" ev))
        own_events;
      List.iteri
        (fun i (_, e) ->
          List.iter
            (fun (span_id, ev) ->
              emit (fun ~first ->
                  buf_event buf ~first ~pid:(i + 2) ~trace_id:e.we_trace_id ~span_id ev))
            (List.rev e.we_spans))
        ws;
      Buffer.add_string buf "]}";
      Buffer.contents buf)
