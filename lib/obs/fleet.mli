(** Fleet-level telemetry store — the receiving half of the v4 telemetry
    piggyback ({!Telemetry}).

    The coordinator/scheduler absorbs each worker's batches as they
    arrive on heartbeat and shard-result messages: the latest metrics
    snapshot replaces the previous one (snapshots are cumulative), span
    summaries accumulate (bounded per worker, oldest dropped), and every
    span timestamp is rebased onto this process's monotonic timeline
    using the batch's wall-clock anchor. Thread-safe: handler threads
    absorb while the HTTP scrape thread reads. *)

type t

type worker_info = {
  wi_last_wall : float;  (** wall clock of the last absorbed batch *)
  wi_span_count : int;  (** spans ever absorbed (incl. dropped) *)
  wi_trace_id : string;
  wi_snapshot : Metrics.snapshot;  (** latest; [[]] before the first *)
}

val create : ?max_spans:int -> unit -> t
(** [max_spans] (default 8192) bounds the retained span summaries per
    worker. Raises [Invalid_argument] when non-positive. *)

val absorb : t -> worker:string -> Telemetry.t -> unit

val merged_snapshot : t -> base:Metrics.snapshot -> Metrics.snapshot
(** [base] (the local registry) merged with every worker's latest
    snapshot — what [/metrics] serves. A worker snapshot that cannot
    merge (kind/bucket clash) is skipped, never fatal. *)

val workers : t -> (string * worker_info) list
(** Sorted by worker name. *)

val span_count : t -> int
(** Retained span summaries across all workers. *)

val trace_id : t -> string
(** First nonempty campaign trace id seen, or [""]. *)

val to_chrome_json : ?own_label:string -> ?own_events:Span.event list -> t -> string
(** The stitched fleet trace: Chrome trace_event JSON with [own_events]
    (this process's tracer, default label ["coordinator"]) on pid 1 and
    each worker on its own pid with a [process_name] metadata record —
    distinct tracks in Perfetto. Worker span args carry the trace/span
    ids when stamped. *)
