(* Minimal embedded HTTP/1.0 server for the scrape endpoint. Zero
   dependencies beyond Unix + threads: one accept thread, one short-lived
   thread per connection, socket send/receive deadlines so a stalled
   scraper can never wedge the coordinator, [Connection: close] always.
   Deliberately tiny — GET/HEAD on a fixed route table is everything a
   Prometheus scrape or `faultmc top` poll needs. *)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body = { status; content_type = "text/plain; charset=utf-8"; body }
let json ?(status = 200) body = { status; content_type = "application/json"; body }

type route = string * (unit -> response)

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let parse_request line =
  match String.split_on_char ' ' (String.trim line) with
  | [ meth; target; proto ]
    when String.length proto >= 5 && String.sub proto 0 5 = "HTTP/" ->
      if meth = "" || target = "" || target.[0] <> '/' then
        Error (Printf.sprintf "malformed request target %S" target)
      else
        let path =
          match String.index_opt target '?' with
          | Some q -> String.sub target 0 q
          | None -> target
        in
        Ok (meth, path)
  | _ -> Error (Printf.sprintf "malformed request line %S" line)

(* ------------------------------------------------------------------ *)
(* server *)

type t = {
  sock : Unix.file_descr;
  port : int;
  running : bool Atomic.t;
  thread : Thread.t;
}

let default_max_request_bytes = 8192

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write_substring fd s !pos (n - !pos)
  done

let header_end s =
  (* index just past the blank line ending the header block *)
  let n = String.length s in
  let rec find i =
    if i >= n then None
    else if i + 3 < n && String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
    else if i + 1 < n && String.sub s i 2 = "\n\n" then Some (i + 2)
    else find (i + 1)
  in
  find 0

(* Read the full header block (requests are tiny; we never need a
   body) so the close after our response does not race unread data.
   Misbehaving clients get a typed outcome instead of a silent drop:
   a header block over [max_bytes] is [`Too_large] (431) and a socket
   that stalls past the receive deadline is [`Timed_out] (408) — both
   are counted as rejections by the caller. *)
let read_head ~max_bytes fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > max_bytes then `Too_large
    else
      let contents = Buffer.contents buf in
      if header_end contents <> None then `Head contents
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then `Empty else `Head (Buffer.contents buf)
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
          ->
            (* SO_RCVTIMEO fired mid-header: the peer is stalling. *)
            `Timed_out
  in
  go ()

let respond fd ~head_only { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status (reason status) content_type (String.length body)
  in
  write_all fd (if head_only then head else head ^ body)

let handle_client routes deadline_s max_bytes rejected fd =
  let reject status msg =
    Option.iter Metrics.inc rejected;
    respond fd ~head_only:false (text ~status msg)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO deadline_s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO deadline_s;
      match read_head ~max_bytes fd with
      | `Empty -> ()
      | `Too_large ->
          reject 431 (Printf.sprintf "request header block exceeds %d bytes\n" max_bytes)
      | `Timed_out -> reject 408 "request header not received within the read deadline\n"
      | `Head raw -> (
          let line = match String.index_opt raw '\n' with
            | Some i -> String.sub raw 0 i
            | None -> raw
          in
          match parse_request line with
          | Error msg -> reject 400 (msg ^ "\n")
          | Ok (meth, path) when meth = "GET" || meth = "HEAD" -> (
              let head_only = meth = "HEAD" in
              match List.assoc_opt path routes with
              | None -> respond fd ~head_only (text ~status:404 "not found\n")
              | Some handler ->
                  let resp =
                    try handler ()
                    with e -> text ~status:500 (Printexc.to_string e ^ "\n")
                  in
                  respond fd ~head_only resp)
          | Ok (meth, _) ->
              respond fd ~head_only:false
                (text ~status:405 (Printf.sprintf "method %s not allowed\n" meth))))

let accept_loop sock running routes deadline_s max_bytes rejected () =
  while Atomic.get running do
    match Unix.select [ sock ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept sock with
        | fd, _ ->
            ignore
              (Thread.create
                 (fun () -> try handle_client routes deadline_s max_bytes rejected fd with _ -> ())
                 ())
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  done

let start ?(bind_addr = "0.0.0.0") ?(io_deadline_s = 10.)
    ?(max_request_bytes = default_max_request_bytes) ?registry ~port ~routes () =
  if io_deadline_s <= 0. then invalid_arg "Httpd.start: non-positive io_deadline_s";
  if max_request_bytes <= 0 then invalid_arg "Httpd.start: non-positive max_request_bytes";
  let rejected =
    Option.map
      (fun r ->
        Metrics.counter r ~help:"HTTP requests rejected (malformed, oversized, or stalled)"
          "fmc_obs_http_rejected_total")
      registry
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string bind_addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let running = Atomic.make true in
  let thread =
    Thread.create (accept_loop sock running routes io_deadline_s max_request_bytes rejected) ()
  in
  { sock; port; running; thread }

let port t = t.port

let stop t =
  if Atomic.exchange t.running false then begin
    Thread.join t.thread;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* client *)

let get ?(deadline_s = 10.) ~host ~port ~path () =
  let ( let* ) = Result.bind in
  let* addr =
    match Unix.inet_addr_of_string host with
    | a -> Ok a
    | exception Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> Ok a
        | _ -> Error (Printf.sprintf "cannot resolve %s" host)
        | exception Unix.Unix_error _ -> Error (Printf.sprintf "cannot resolve %s" host))
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      try
        Unix.setsockopt_float sock Unix.SO_RCVTIMEO deadline_s;
        Unix.setsockopt_float sock Unix.SO_SNDTIMEO deadline_s;
        Unix.connect sock (Unix.ADDR_INET (addr, port));
        write_all sock
          (Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n" path host);
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 8192 in
        let rec drain () =
          match Unix.read sock chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              if Buffer.length buf < 64 * 1024 * 1024 then drain ()
        in
        drain ();
        let raw = Buffer.contents buf in
        let* code =
          match String.index_opt raw '\n' with
          | None -> Error "empty reply"
          | Some i -> (
              match String.split_on_char ' ' (String.trim (String.sub raw 0 i)) with
              | proto :: code :: _
                when String.length proto >= 5 && String.sub proto 0 5 = "HTTP/" -> (
                  match int_of_string_opt code with
                  | Some c -> Ok c
                  | None -> Error (Printf.sprintf "bad status %S" code))
              | _ -> Error (Printf.sprintf "bad status line %S" (String.sub raw 0 i)))
        in
        let body =
          match header_end raw with
          | Some i -> String.sub raw i (String.length raw - i)
          | None -> ""
        in
        Ok (code, body)
      with
      | Unix.Unix_error (e, fn, _) -> Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
      | Failure msg -> Error msg)
