(** Embedded HTTP/1.0 scrape endpoint (zero-dep: Unix sockets + threads).

    [faultmc serve --http-port] and [faultmc sched --http-port] mount a
    fixed route table ([/metrics], [/healthz], ...) on this server: one
    accept thread, a short-lived thread per connection, send/receive
    deadlines on every socket so a stalled scraper cannot wedge the
    host process, [Connection: close] on every reply. Only GET and HEAD
    are served — everything a Prometheus scrape or a [faultmc top] poll
    needs, and nothing more. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
(** [text/plain; charset=utf-8], default status 200. *)

val json : ?status:int -> string -> response

type route = string * (unit -> response)
(** Exact path (query string already stripped) to handler. A handler
    exception becomes a 500 with the exception text; it never kills the
    server. *)

val parse_request : string -> (string * string, string) result
(** Parse an HTTP request line into [(method, path)], stripping any
    query string. Exposed pure for tests. *)

type t

val start :
  ?bind_addr:string ->
  ?io_deadline_s:float ->
  ?max_request_bytes:int ->
  ?registry:Metrics.registry ->
  port:int ->
  routes:route list ->
  unit ->
  t
(** Bind (default [0.0.0.0], deadline 10s) and start serving. [port] 0
    binds an ephemeral port — read it back with {!port}.
    [max_request_bytes] (default 8192) caps the request header block: an
    oversized request is answered 431, a client that stalls its header
    past the receive deadline 408, and a malformed request line 400 —
    all counted on [fmc_obs_http_rejected_total] when a [registry] is
    supplied. Raises [Unix.Unix_error] when the bind fails and
    [Invalid_argument] on a non-positive deadline or byte cap. *)

val port : t -> int
(** The actually bound port. *)

val stop : t -> unit
(** Stop accepting, join the accept thread, close the socket.
    Idempotent. *)

val get :
  ?deadline_s:float -> host:string -> port:int -> path:string -> unit -> (int * string, string) result
(** Tiny blocking HTTP/1.0 GET client — [(status, body)] — used by
    [faultmc top] and the tests. Transport problems come back as
    [Error], never exceptions. *)
