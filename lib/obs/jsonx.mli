(** Tiny JSON rendering helpers shared by the exporters. Every string in
    the observability layer is program-controlled (metric names, span
    labels, help text), so escaping is a formality — but a correct one. *)

val escape : string -> string
(** Escape a string for inclusion between JSON double quotes. *)

val number : float -> string
(** Render a finite float as a JSON number: integral values print without
    a fractional part ([3] not [3.]), everything else with [%.12g]
    precision. Non-finite values render as [0] (JSON has no Inf/NaN; the
    metrics layer never produces them from finite observations). *)
