type counter = { mutable c : float }
type gauge = { mutable g : float }

type histogram = {
  h_buckets : float array;
  h_counts : int array;  (* length = Array.length h_buckets + 1; last = overflow *)
  mutable h_sum : float;
  mutable h_count : int;
}

type cell = C of counter | G of gauge | H of histogram
type registry = (string, string * cell) Hashtbl.t

let create () = Hashtbl.create 32

let validate_name name =
  if name = "" then invalid_arg "Metrics: empty metric name";
  String.iter
    (function
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name))
    name

let kind_mismatch name = invalid_arg (Printf.sprintf "Metrics: %s already registered with another kind" name)

let counter reg ?(help = "") name =
  validate_name name;
  match Hashtbl.find_opt reg name with
  | Some (_, C c) -> c
  | Some _ -> kind_mismatch name
  | None ->
      let c = { c = 0. } in
      Hashtbl.replace reg name (help, C c);
      c

let gauge reg ?(help = "") name =
  validate_name name;
  match Hashtbl.find_opt reg name with
  | Some (_, G g) -> g
  | Some _ -> kind_mismatch name
  | None ->
      let g = { g = 0. } in
      Hashtbl.replace reg name (help, G g);
      g

let validate_buckets name buckets =
  if Array.length buckets = 0 then
    invalid_arg (Printf.sprintf "Metrics: histogram %s needs at least one bucket" name);
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then
        invalid_arg (Printf.sprintf "Metrics: histogram %s has a non-finite bucket bound" name);
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg (Printf.sprintf "Metrics: histogram %s buckets must be strictly increasing" name))
    buckets

let histogram reg ?(help = "") ~buckets name =
  validate_name name;
  match Hashtbl.find_opt reg name with
  | Some (_, H h) ->
      if h.h_buckets <> buckets then
        invalid_arg (Printf.sprintf "Metrics: histogram %s re-registered with different buckets" name);
      h
  | Some _ -> kind_mismatch name
  | None ->
      validate_buckets name buckets;
      let h =
        {
          h_buckets = Array.copy buckets;
          h_counts = Array.make (Array.length buckets + 1) 0;
          h_sum = 0.;
          h_count = 0;
        }
      in
      Hashtbl.replace reg name (help, H h);
      h

let inc c = c.c <- c.c +. 1.

let add c v =
  if v < 0. then invalid_arg "Metrics.add: negative counter increment";
  c.c <- c.c +. v

let set g v = g.g <- v

let observe h v =
  let n = Array.length h.h_buckets in
  let rec slot i = if i >= n || v <= h.h_buckets.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

type histo_data = { buckets : float array; counts : int array; sum : float; count : int }
type value = Counter of float | Gauge of float | Histo of histo_data
type snapshot = (string * (string * value)) list

let snapshot reg =
  Hashtbl.fold
    (fun name (help, cell) acc ->
      let v =
        match cell with
        | C c -> Counter c.c
        | G g -> Gauge g.g
        | H h ->
            Histo
              {
                buckets = Array.copy h.h_buckets;
                counts = Array.copy h.h_counts;
                sum = h.h_sum;
                count = h.h_count;
              }
      in
      (name, (help, v)) :: acc)
    reg []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

let find (s : snapshot) name = Option.map snd (List.assoc_opt name s)

let merge_value name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x +. y)
  | Gauge x, Gauge y -> Gauge (Float.max x y)
  | Histo x, Histo y ->
      if x.buckets <> y.buckets then
        invalid_arg (Printf.sprintf "Metrics.merge: bucket mismatch for %s" name);
      Histo
        {
          buckets = x.buckets;
          counts = Array.map2 ( + ) x.counts y.counts;
          sum = x.sum +. y.sum;
          count = x.count + y.count;
        }
  | _ -> invalid_arg (Printf.sprintf "Metrics.merge: kind mismatch for %s" name)

let merge (a : snapshot) (b : snapshot) : snapshot =
  (* Both inputs are name-sorted; a sorted-list merge keeps the result
     canonical so merge composes (associativity needs the sorted form). *)
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | ((na, (ha, va)) as ea) :: ta, ((nb, (hb, vb)) as eb) :: tb ->
        if na < nb then go ta b (ea :: acc)
        else if nb < na then go a tb (eb :: acc)
        else
          let help = if (ha : string) >= hb then ha else hb in
          go ta tb ((na, (help, merge_value na va vb)) :: acc)
  in
  go a b []

let absorb reg (s : snapshot) =
  List.iter
    (fun (name, (help, v)) ->
      match v with
      | Counter x ->
          let c = counter reg ~help name in
          c.c <- c.c +. x
      | Gauge x ->
          let g = gauge reg ~help name in
          g.g <- Float.max g.g x
      | Histo d ->
          let h = histogram reg ~help ~buckets:d.buckets name in
          Array.iteri (fun i n -> h.h_counts.(i) <- h.h_counts.(i) + n) d.counts;
          h.h_sum <- h.h_sum +. d.sum;
          h.h_count <- h.h_count + d.count)
    s

let quantile (d : histo_data) q =
  if q < 0. || q > 1. then invalid_arg "Metrics.quantile: q outside [0, 1]";
  if d.count = 0 then 0.
  else begin
    let target = q *. float_of_int d.count in
    let nb = Array.length d.buckets in
    let rec go i cum =
      if i >= nb then d.buckets.(nb - 1) (* overflow bucket: clamp to the last finite bound *)
      else begin
        let c = d.counts.(i) in
        let cum' = cum +. float_of_int c in
        if cum' >= target && c > 0 then begin
          let lo = if i = 0 then 0. else d.buckets.(i - 1) in
          let hi = d.buckets.(i) in
          lo +. ((hi -. lo) *. (target -. cum) /. float_of_int c)
        end
        else go (i + 1) cum'
      end
    in
    go 0 0.
  end

let to_prometheus (s : snapshot) =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, (help, v)) ->
      if help <> "" then pr "# HELP %s %s\n" name help;
      match v with
      | Counter x -> pr "# TYPE %s counter\n%s %s\n" name name (Jsonx.number x)
      | Gauge x -> pr "# TYPE %s gauge\n%s %s\n" name name (Jsonx.number x)
      | Histo d ->
          pr "# TYPE %s histogram\n" name;
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + d.counts.(i);
              pr "%s_bucket{le=\"%s\"} %d\n" name (Jsonx.number bound) !cum)
            d.buckets;
          pr "%s_bucket{le=\"+Inf\"} %d\n" name d.count;
          pr "%s_sum %s\n" name (Jsonx.number d.sum);
          pr "%s_count %d\n" name d.count)
    s;
  Buffer.contents buf

let to_json (s : snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i (name, (help, v)) ->
      if i > 0 then Buffer.add_char buf ',';
      let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      pr "{\"name\":\"%s\",\"help\":\"%s\"," (Jsonx.escape name) (Jsonx.escape help);
      match v with
      | Counter x -> pr "\"type\":\"counter\",\"value\":%s}" (Jsonx.number x)
      | Gauge x -> pr "\"type\":\"gauge\",\"value\":%s}" (Jsonx.number x)
      | Histo d ->
          pr "\"type\":\"histogram\",\"buckets\":[%s],\"counts\":[%s],\"sum\":%s,\"count\":%d}"
            (String.concat "," (Array.to_list (Array.map Jsonx.number d.buckets)))
            (String.concat "," (Array.to_list (Array.map string_of_int d.counts)))
            (Jsonx.number d.sum) d.count)
    s;
  Buffer.add_string buf "]}";
  Buffer.contents buf
