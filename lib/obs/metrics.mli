(** Metrics registry: counters, gauges and fixed-bucket histograms.

    Cells are plain mutable records with no locking — lock-free by
    construction because a registry is only ever touched by the domain
    that owns it. Cross-domain aggregation goes through immutable
    {!snapshot} values: each worker snapshots its private registry and the
    supervisor {!merge}s (or {!absorb}s) the snapshots after the join.
    {!merge} is associative and commutative, so the combined result is
    independent of worker completion order.

    Update costs: counter/gauge — one float store; histogram — a linear
    scan over a handful of buckets. Cheap enough for the Monte Carlo hot
    loop. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val counter : registry -> ?help:string -> string -> counter
(** Register (or re-open) the named counter. Metric names must match
    [[a-zA-Z0-9_:]+]. Registering an existing name returns the existing
    cell; a kind mismatch raises [Invalid_argument]. *)

val gauge : registry -> ?help:string -> string -> gauge

val histogram : registry -> ?help:string -> buckets:float array -> string -> histogram
(** [buckets] are upper bounds, strictly increasing; an implicit [+Inf]
    overflow bucket is always appended. Re-opening an existing histogram
    with different buckets raises [Invalid_argument]. *)

val inc : counter -> unit
val add : counter -> float -> unit
(** Raises [Invalid_argument] on a negative increment (counters are
    monotone). *)

val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {2 Snapshots and aggregation} *)

type histo_data = {
  buckets : float array;  (** upper bounds, as registered *)
  counts : int array;  (** per-bucket (non-cumulative); last entry is overflow *)
  sum : float;
  count : int;
}

type value = Counter of float | Gauge of float | Histo of histo_data

type snapshot = (string * (string * value)) list
(** [(name, (help, value))], sorted by name. *)

val snapshot : registry -> snapshot
(** An immutable copy of the registry's current state. *)

val find : snapshot -> string -> value option
(** Look up the named metric in a snapshot. Convenience for tests and
    tooling that assert on a single series without walking the whole
    association list. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise combination: counters add, gauges keep the max, histograms
    add element-wise (same buckets required), help strings keep the
    lexicographic max. Associative and commutative. Raises
    [Invalid_argument] on a kind or bucket mismatch for a shared name. *)

val absorb : registry -> snapshot -> unit
(** Fold a snapshot into a live registry (counter adds, gauge max,
    histogram element-wise adds), registering any names it does not have
    yet. [absorb r s] leaves [r]'s snapshot equal to
    [merge (snapshot r) s]. *)

val quantile : histo_data -> float -> float
(** Histogram quantile estimate with linear interpolation inside the
    containing bucket (first bucket interpolates from 0). Observations in
    the overflow bucket clamp to the last finite bound. Returns 0 for an
    empty histogram; raises [Invalid_argument] outside [0, 1]. *)

(** {2 Rendering} *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format v0.0.4: [# HELP] / [# TYPE] comments,
    cumulative [le] buckets with a [+Inf] terminator, [_sum] / [_count]
    series. *)

val to_json : snapshot -> string
(** [{"metrics":[{"name":..,"help":..,"type":..,..}]}] — counters/gauges
    carry ["value"], histograms carry ["buckets"], ["counts"] (with the
    overflow last), ["sum"] and ["count"]. *)
