type t = {
  metrics : Metrics.registry option;
  tracer : Span.tracer option;
  progress : Progress.sink option;
}

let disabled = { metrics = None; tracer = None; progress = None }
let create ?metrics ?tracer ?progress () = { metrics; tracer; progress }

(* [progress] holds a closure: Option.is_some, never structural compare. *)
let enabled t = Option.is_some t.metrics || Option.is_some t.tracer || Option.is_some t.progress

let span t ?cat name f =
  match t.tracer with None -> f () | Some tr -> Span.with_span tr ?cat name f

let fork t ~tid =
  {
    metrics = Option.map (fun _ -> Metrics.create ()) t.metrics;
    tracer = Option.map (fun tr -> Span.create ~capacity:(Span.capacity tr) ~tid ()) t.tracer;
    progress = None;
  }

let absorb parent child =
  (match (parent.metrics, child.metrics) with
  | Some reg, Some creg -> Metrics.absorb reg (Metrics.snapshot creg)
  | _ -> ());
  match (parent.tracer, child.tracer) with
  | Some tr, Some ctr -> Span.absorb tr ctr
  | _ -> ()

let emit t p = match t.progress with None -> () | Some sink -> sink p
