(** The observability handle threaded through the Monte Carlo pipeline.

    A single record bundles the three optional sinks so instrumented code
    takes one [?obs] parameter. {!disabled} is the default everywhere: an
    instrumentation site on the disabled path costs a single branch on an
    option (plus, for spans, the closure the call site builds) — no
    registry lookups, no clock reads.

    For multicore runs, {!fork} derives a fresh single-domain handle per
    worker (private registry + tracer under the worker's [tid]; the
    progress sink is dropped — interleaved emission is the supervisor's
    job) and {!absorb} folds the worker handles back after the join. *)

type t = {
  metrics : Metrics.registry option;
  tracer : Span.tracer option;
  progress : Progress.sink option;
}

val disabled : t
(** All sinks off. *)

val create :
  ?metrics:Metrics.registry -> ?tracer:Span.tracer -> ?progress:Progress.sink -> unit -> t

val enabled : t -> bool
(** True if any sink is attached. *)

val span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** [Span.with_span] when a tracer is attached, plain [f ()] otherwise. *)

val fork : t -> tid:int -> t
(** Worker-private handle: a fresh registry if the parent has one, a fresh
    tracer (parent's capacity, the given [tid]) if the parent has one, no
    progress sink. [fork disabled ~tid] is {!disabled}. *)

val absorb : t -> t -> unit
(** [absorb parent child] merges the child's registry snapshot and trace
    events into the parent's corresponding sinks (no-op per sink when
    either side lacks it). *)

val emit : t -> Progress.point -> unit
(** Push a convergence point to the progress sink, if any. *)
