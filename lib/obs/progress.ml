type point = {
  n : int;
  total : int;
  estimate : float;
  half_width : float;
  ess : float;
  accept_rate : float;
  quarantine_rate : float;
  samples_per_sec : float;
  elapsed_s : float;
}

type sink = point -> unit

let to_jsonl p =
  Printf.sprintf
    "{\"n\":%d,\"total\":%d,\"ssf\":%.8f,\"ci_half_width\":%.8f,\"ess\":%.2f,\"accept_rate\":%.6f,\"quarantine_rate\":%.6f,\"samples_per_sec\":%.1f,\"elapsed_s\":%.3f}"
    p.n p.total p.estimate p.half_width p.ess p.accept_rate p.quarantine_rate p.samples_per_sec
    p.elapsed_s

let to_human p =
  Printf.sprintf "[%7.1fs] %d/%d  SSF %.5f ±%.5f  ESS %.0f  %.0f samples/s%s" p.elapsed_s p.n
    p.total p.estimate p.half_width p.ess p.samples_per_sec
    (if p.quarantine_rate > 0. then Printf.sprintf "  (quarantined %.1f%%)" (100. *. p.quarantine_rate)
     else "")

let jsonl_sink oc p =
  output_string oc (to_jsonl p);
  output_char oc '\n';
  flush oc

let human_sink oc p =
  output_string oc (to_human p);
  output_char oc '\n';
  flush oc
