(** Convergence telemetry: one {!point} per [trace_every] samples of an
    estimation run, pushed to a pluggable sink. The JSONL rendering is the
    machine-readable convergence stream ([faultmc --progress jsonl], the
    bench artifacts); the human rendering is a one-line status ticker. *)

type point = {
  n : int;  (** samples processed so far (includes quarantined) *)
  total : int;  (** campaign target *)
  estimate : float;  (** running SSF *)
  half_width : float;  (** 95% normal-approximation CI half-width *)
  ess : float;  (** Kish effective sample size so far *)
  accept_rate : float;  (** fraction of processed samples folded into the estimate *)
  quarantine_rate : float;
  samples_per_sec : float;  (** throughput since this tally (segment) started *)
  elapsed_s : float;
}

type sink = point -> unit

val to_jsonl : point -> string
(** One JSON object, no trailing newline. *)

val to_human : point -> string

val jsonl_sink : out_channel -> sink
(** Writes [to_jsonl] plus a newline and flushes (the stream must survive
    a crash mid-campaign). *)

val human_sink : out_channel -> sink
