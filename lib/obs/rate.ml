(* Exponentially-weighted throughput estimator over an injected clock.

   Each [observe] folds the instantaneous rate of the batch just
   completed (amount / dt) into the running estimate with a weight that
   depends on how much wall clock the batch spanned: a batch covering a
   whole half-life replaces half of the old evidence, a tiny batch
   nudges it. Reading the rate decays the estimate by the silence since
   the last observation, so a stalled producer's ETA grows instead of
   freezing at its last known speed. Everything takes [now] explicitly
   (no wall-clock reads), matching the Clock-seam style of the rest of
   the observability layer, so tests drive it deterministically. *)

type t = {
  halflife_s : float;
  mutable rate : float;  (* units per second, as of [last] *)
  mutable last : float;  (* time of the latest observation *)
  mutable primed : bool;  (* first observation seeds the estimate *)
}

let create ?(halflife_s = 30.) ~now () =
  if halflife_s <= 0. then invalid_arg "Rate.create: non-positive halflife";
  { halflife_s; rate = 0.; last = now; primed = false }

let observe t ~now amount =
  if amount < 0. then invalid_arg "Rate.observe: negative amount";
  let dt = now -. t.last in
  if dt <= 0. then
    (* Same-instant (or clock-skewed) batch: fold it into the current
       estimate as if it took one millisecond — the amount still counts,
       and the estimate stays finite. *)
    t.rate <- t.rate +. (amount /. 1e-3 -. t.rate) *. 1e-3
  else begin
    let inst = amount /. dt in
    if not t.primed then begin
      t.rate <- inst;
      t.primed <- true
    end
    else begin
      let alpha = 1. -. (0.5 ** (dt /. t.halflife_s)) in
      t.rate <- t.rate +. (alpha *. (inst -. t.rate))
    end;
    t.last <- now
  end

let per_sec t ~now =
  let silence = Float.max 0. (now -. t.last) in
  (* Decay only past one half-life of silence: gaps shorter than the
     averaging window are expected (observations arrive in batches). *)
  if silence <= t.halflife_s then t.rate
  else t.rate *. (0.5 ** ((silence -. t.halflife_s) /. t.halflife_s))

let eta_s t ~now ~remaining =
  if remaining <= 0 then Some 0.
  else
    let r = per_sec t ~now in
    if r > 1e-9 then Some (float_of_int remaining /. r) else None
