(** Exponentially-weighted throughput estimator (units/second) over an
    injected clock — the ETA source for scheduler [Status] replies
    (DESIGN.md §12).

    All functions take [now] explicitly (seconds, any epoch, monotone
    non-decreasing); nothing here reads the wall clock, so tests drive
    the estimator deterministically. *)

type t

val create : ?halflife_s:float -> now:float -> unit -> t
(** Fresh estimator reading 0 units/s. [halflife_s] (default 30) is the
    averaging window: an observation spanning one half-life replaces
    half of the accumulated evidence. Raises [Invalid_argument] on a
    non-positive half-life. *)

val observe : t -> now:float -> float -> unit
(** [observe t ~now amount]: [amount] units completed between the
    previous observation and [now]. The first observation seeds the
    estimate with the batch's own rate. Raises [Invalid_argument] on a
    negative amount. *)

val per_sec : t -> now:float -> float
(** Current estimate. Silence beyond one half-life decays the estimate
    exponentially, so a stalled producer reads progressively slower
    instead of freezing at its last known speed. *)

val eta_s : t -> now:float -> remaining:int -> float option
(** Seconds until [remaining] units complete at the current rate;
    [None] while the rate is (effectively) zero, [Some 0.] when nothing
    remains. *)
