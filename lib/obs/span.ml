type event = {
  ev_name : string;
  ev_cat : string;
  ev_tid : int;
  ev_ts_us : float;
  ev_dur_us : float;
}

type tracer = {
  capacity : int;
  tid : int;
  ring : event array;
  mutable total : int;  (* spans ever pushed; ring slot = total mod capacity *)
  totals : (string, int ref * float ref) Hashtbl.t;
}

let dummy = { ev_name = ""; ev_cat = ""; ev_tid = 0; ev_ts_us = 0.; ev_dur_us = 0. }

let create ?(capacity = 65536) ?(tid = 0) () =
  if capacity <= 0 then invalid_arg "Span.create: non-positive capacity";
  { capacity; tid; ring = Array.make capacity dummy; total = 0; totals = Hashtbl.create 16 }

let tid tr = tr.tid
let capacity tr = tr.capacity

let push tr ev =
  tr.ring.(tr.total mod tr.capacity) <- ev;
  tr.total <- tr.total + 1

let bump_totals tr name ~occurrences ~dur_us =
  let c, d =
    match Hashtbl.find_opt tr.totals name with
    | Some p -> p
    | None ->
        let p = (ref 0, ref 0.) in
        Hashtbl.replace tr.totals name p;
        p
  in
  c := !c + occurrences;
  d := !d +. dur_us

let record tr ev =
  push tr ev;
  bump_totals tr ev.ev_name ~occurrences:1 ~dur_us:ev.ev_dur_us

let with_span tr ?(cat = "fmc") name f =
  let t0 = Clock.now_us () in
  let finish () =
    record tr { ev_name = name; ev_cat = cat; ev_tid = tr.tid; ev_ts_us = t0; ev_dur_us = Clock.now_us () -. t0 }
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let recorded tr = tr.total
let dropped tr = max 0 (tr.total - tr.capacity)

let events tr =
  let n = min tr.total tr.capacity in
  let oldest = if tr.total <= tr.capacity then 0 else tr.total mod tr.capacity in
  List.init n (fun i -> tr.ring.((oldest + i) mod tr.capacity))

let totals tr =
  Hashtbl.fold (fun name (c, d) acc -> (name, (!c, !d)) :: acc) tr.totals []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

let absorb parent child =
  List.iter (push parent) (events child);
  Hashtbl.iter
    (fun name (c, d) -> bump_totals parent name ~occurrences:!c ~dur_us:!d)
    child.totals

let to_chrome_json evs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
           (Jsonx.escape ev.ev_name) (Jsonx.escape ev.ev_cat) ev.ev_tid ev.ev_ts_us ev.ev_dur_us))
    evs;
  Buffer.add_string buf "]}";
  Buffer.contents buf
