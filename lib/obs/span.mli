(** Span-based tracing into a fixed-capacity ring buffer, exportable as
    Chrome [trace_event] JSON (loadable in Perfetto / [chrome://tracing]).

    A tracer is single-domain like a metrics registry; parallel workers
    trace into private tracers (distinct [tid]s) that the supervisor
    {!absorb}s after the join. The ring keeps the most recent [capacity]
    spans; per-name aggregate totals are maintained independently, so
    phase timing summaries stay exact even after the ring wraps. *)

type tracer

type event = {
  ev_name : string;
  ev_cat : string;
  ev_tid : int;
  ev_ts_us : float;  (** start, microseconds (see {!Clock.now_us}) *)
  ev_dur_us : float;
}

val create : ?capacity:int -> ?tid:int -> unit -> tracer
(** Default capacity 65536 events, tid 0. Raises [Invalid_argument] on a
    non-positive capacity. *)

val tid : tracer -> int
val capacity : tracer -> int

val with_span : tracer -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** Time [f] and record a completed span (category default ["fmc"]). The
    span is recorded whether [f] returns or raises — a crashed sample
    still shows where its time went. *)

val recorded : tracer -> int
(** Total spans ever recorded (including ones the ring has dropped). *)

val dropped : tracer -> int

val events : tracer -> event list
(** The surviving spans, oldest first. *)

val totals : tracer -> (string * (int * float)) list
(** Per span name: (occurrences, total duration in µs), sorted by name;
    exact over the tracer's whole lifetime regardless of ring wraps. *)

val absorb : tracer -> tracer -> unit
(** [absorb parent child] appends the child's surviving events into the
    parent ring and folds the child's aggregate totals (including spans
    the child ring dropped) into the parent's. *)

val to_chrome_json : event list -> string
(** The Chrome trace_event "JSON object format": complete ([ph:"X"])
    events with µs timestamps, [pid] 1 and the recording tracer's [tid]. *)
