(* Line-oriented codec for the v4 piggyback payload: a metrics snapshot
   plus per-shard span summaries, attached by workers to heartbeat and
   shard-result messages. Floats travel as [%h] hex literals so merged
   values round-trip bit-exactly; free-form strings (metric help, span
   names) are percent-encoded so the payload stays one token per field.
   The codec is self-contained text — the dist protocol embeds it as an
   opaque line-counted blob and never looks inside. *)

type span_summary = { ss_span_id : string; ss_event : Span.event }

type t = {
  tm_trace_id : string;
  tm_base_wall : float;
  tm_metrics : Metrics.snapshot;
  tm_spans : span_summary list;
}

let empty = { tm_trace_id = ""; tm_base_wall = 0.; tm_metrics = []; tm_spans = [] }

let make ?(trace_id = "") ?(metrics = []) ?(spans = []) () =
  (* [base_wall] is the wall-clock instant of the sender's monotonic
     microsecond origin: receivers rebase span timestamps onto their own
     timeline as ts + (sender_base - receiver_base). *)
  let base_wall = Clock.wall () -. (Clock.now_us () /. 1e6) in
  { tm_trace_id = trace_id; tm_base_wall = base_wall; tm_metrics = metrics; tm_spans = spans }

(* ------------------------------------------------------------------ *)
(* token codecs *)

let pct_encode s =
  let must_escape = function
    | '%' | ' ' | '\n' | '\r' | '\t' -> true
    | _ -> false
  in
  if not (String.exists must_escape s) then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char b c)
      s;
    Buffer.contents b
  end

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let pct_decode s =
  let n = String.length s in
  if not (String.contains s '%') then s
  else begin
    let b = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] <> '%' then Buffer.add_char b s.[!i]
       else if !i + 2 >= n then bad "truncated %% escape in %S" s
       else
         match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
         | Some code ->
             Buffer.add_char b (Char.chr code);
             i := !i + 2
         | None -> bad "bad %% escape in %S" s);
      incr i
    done;
    Buffer.contents b
  end

let float_tok v = Printf.sprintf "%h" v

let float_of tok =
  match float_of_string_opt tok with
  | Some v -> v
  | None -> bad "bad float %S" tok

let int_of tok =
  match int_of_string_opt tok with Some v -> v | None -> bad "bad int %S" tok

(* "-" stands for the empty string in fixed-position fields (a bare
   empty token would be ambiguous at the end of a line); a literal "-"
   is pct-escaped by the caller before it gets here. *)
let opt_tok s = if s = "" then "-" else s
let opt_of tok = if tok = "-" then "" else tok

let join_floats a =
  if Array.length a = 0 then "-"
  else String.concat "," (Array.to_list (Array.map float_tok a))

let floats_of tok =
  if tok = "-" then [||]
  else Array.of_list (List.map float_of (String.split_on_char ',' tok))

let join_ints a = String.concat "," (Array.to_list (Array.map string_of_int a))
let ints_of tok = Array.of_list (List.map int_of (String.split_on_char ',' tok))

(* ------------------------------------------------------------------ *)
(* encode *)

let metric_line name help value =
  let help = pct_encode help in
  match value with
  | Metrics.Counter v -> Printf.sprintf "c %s %s %s" name (float_tok v) help
  | Metrics.Gauge v -> Printf.sprintf "g %s %s %s" name (float_tok v) help
  | Metrics.Histo h ->
      Printf.sprintf "h %s %s %d %s %s %s" name (float_tok h.Metrics.sum)
        h.Metrics.count (join_floats h.Metrics.buckets) (join_ints h.Metrics.counts)
        help

let span_line { ss_span_id; ss_event = ev } =
  Printf.sprintf "s %s %d %s %s %s %s"
    (opt_tok ss_span_id)
    ev.Span.ev_tid (float_tok ev.Span.ev_ts_us) (float_tok ev.Span.ev_dur_us)
    (pct_encode ev.Span.ev_name)
    (opt_tok (pct_encode ev.Span.ev_cat))

let encode t =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "trace %s\n" (opt_tok t.tm_trace_id));
  Buffer.add_string b (Printf.sprintf "base %s\n" (float_tok t.tm_base_wall));
  Buffer.add_string b (Printf.sprintf "metrics %d\n" (List.length t.tm_metrics));
  List.iter
    (fun (name, (help, value)) ->
      Buffer.add_string b (metric_line name help value);
      Buffer.add_char b '\n')
    t.tm_metrics;
  Buffer.add_string b (Printf.sprintf "spans %d\n" (List.length t.tm_spans));
  List.iter
    (fun s ->
      Buffer.add_string b (span_line s);
      Buffer.add_char b '\n')
    t.tm_spans;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* decode *)

let fields line = String.split_on_char ' ' line

let metric_of_line line =
  match fields line with
  | [ "c"; name; v; help ] -> (name, (pct_decode help, Metrics.Counter (float_of v)))
  | [ "g"; name; v; help ] -> (name, (pct_decode help, Metrics.Gauge (float_of v)))
  | [ "h"; name; sum; count; bounds; counts; help ] ->
      let buckets = floats_of bounds and counts = ints_of counts in
      if Array.length counts <> Array.length buckets + 1 then
        bad "histogram %s: %d counts for %d buckets" name (Array.length counts)
          (Array.length buckets);
      ( name,
        ( pct_decode help,
          Metrics.Histo
            { Metrics.buckets; counts; sum = float_of sum; count = int_of count } ) )
  | _ -> bad "bad metric line %S" line

let span_of_line line =
  match fields line with
  | [ "s"; id; tid; ts; dur; name; cat ] ->
      {
        ss_span_id = opt_of id;
        ss_event =
          {
            Span.ev_name = pct_decode name;
            ev_cat = pct_decode (opt_of cat);
            ev_tid = int_of tid;
            ev_ts_us = float_of ts;
            ev_dur_us = float_of dur;
          };
      }
  | _ -> bad "bad span line %S" line

let decode blob =
  try
    let lines = String.split_on_char '\n' blob in
    let lines = match List.rev lines with "" :: r -> List.rev r | _ -> lines in
    let cursor = ref lines in
    let next () =
      match !cursor with
      | [] -> bad "truncated telemetry blob"
      | l :: rest ->
          cursor := rest;
          l
    in
    let keyword kw =
      let l = next () in
      match fields l with
      | k :: rest when k = kw -> String.concat " " rest
      | _ -> bad "expected %S line, got %S" kw l
    in
    (* [List.init]'s application order is unspecified; the cursor is
       stateful, so collect lines with an explicit in-order loop. *)
    let take n of_line =
      if n < 0 then bad "negative section count";
      let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (of_line (next ()) :: acc) in
      go n []
    in
    let trace_id = opt_of (keyword "trace") in
    let base = float_of (keyword "base") in
    let metrics = take (int_of (keyword "metrics")) metric_of_line in
    let spans = take (int_of (keyword "spans")) span_of_line in
    if !cursor <> [] then bad "trailing garbage in telemetry blob";
    Ok { tm_trace_id = trace_id; tm_base_wall = base; tm_metrics = metrics; tm_spans = spans }
  with Bad msg -> Error msg
