(** Wire codec for the v4 telemetry piggyback: a metrics snapshot plus
    per-shard span summaries that workers attach to their existing
    heartbeat and shard-result messages.

    The payload is plain lines — one token per field, floats as [%h] hex
    literals (bit-exact round-trip), free-form strings percent-encoded —
    so the dist protocol can embed it as an opaque line-counted blob.
    Decoding never raises: a malformed blob is an [Error], which
    receivers drop (telemetry is observation-only; a garbled snapshot
    must never fail a shard result). *)

type span_summary = {
  ss_span_id : string;  (** {!Traceid.span_id} of the shard; [""] if none *)
  ss_event : Span.event;
}

type t = {
  tm_trace_id : string;  (** campaign {!Traceid.trace_id}; [""] if none *)
  tm_base_wall : float;
      (** wall-clock seconds at the sender's monotonic microsecond
          origin — receivers rebase span timestamps onto their own
          timeline as [ts +. (sender_base -. receiver_base) *. 1e6] *)
  tm_metrics : Metrics.snapshot;
  tm_spans : span_summary list;
}

val empty : t

val make :
  ?trace_id:string -> ?metrics:Metrics.snapshot -> ?spans:span_summary list -> unit -> t
(** Stamp a batch with this process's wall/monotonic anchor
    ({!Clock.wall} minus {!Clock.now_us}). *)

val encode : t -> string
(** Newline-terminated lines; embeddable as a protocol blob. *)

val decode : string -> (t, string) result
(** Total inverse of {!encode}; snapshots and span timestamps round-trip
    bit-exactly. *)
