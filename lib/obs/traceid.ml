(* Deterministic ids, never drawn from the campaign RNG substreams: the
   trace id hashes the campaign fingerprint alone, span ids add the shard
   index. A restarted coordinator (same fingerprint) stamps the same ids,
   so traces stitch across restarts. MD5 ([Digest]) is fine here — this
   is an identifier, not a credential. *)

let hex_of ~len s = String.sub (Digest.to_hex (Digest.string s)) 0 len
let trace_id ~fingerprint = hex_of ~len:32 ("fmc-trace\x00" ^ fingerprint)

let span_id ~fingerprint ~shard =
  if shard < 0 then invalid_arg "Traceid.span_id: negative shard";
  hex_of ~len:16 (Printf.sprintf "fmc-span\x00%s\x00%d" fingerprint shard)

let is_hex s =
  s <> ""
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let valid_trace_id s = String.length s = 32 && is_hex s
let valid_span_id s = String.length s = 16 && is_hex s
