(** Deterministic trace/span identifiers for cross-process stitching.

    The coordinator stamps every shard lease with a trace id (one per
    campaign) and a span id (one per shard). Both are pure functions of
    the campaign fingerprint — {e never} drawn from the RNG substreams,
    so stamping cannot perturb the Monte Carlo estimate — and therefore
    stable across coordinator restarts: the same campaign resumed from a
    checkpoint re-issues the same ids and the stitched trace stays
    coherent. *)

val trace_id : fingerprint:string -> string
(** 32 lowercase hex chars identifying the whole campaign. *)

val span_id : fingerprint:string -> shard:int -> string
(** 16 lowercase hex chars identifying one shard of the campaign.
    Raises [Invalid_argument] on a negative shard index. *)

val valid_trace_id : string -> bool
val valid_span_id : string -> bool
