type t = { len : int; words : int64 array }

let bits_per_word = 64

let words_for len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = Array.make (words_for len) 0L }

let length v = v.len

let check_index v i op =
  if i < 0 || i >= v.len then invalid_arg (Printf.sprintf "Bitvec.%s: index %d out of [0, %d)" op i v.len)

let get v i =
  check_index v i "get";
  Int64.logand (Int64.shift_right_logical v.words.(i / bits_per_word) (i mod bits_per_word)) 1L <> 0L

let set v i b =
  check_index v i "set";
  let w = i / bits_per_word and o = i mod bits_per_word in
  let mask = Int64.shift_left 1L o in
  if b then v.words.(w) <- Int64.logor v.words.(w) mask
  else v.words.(w) <- Int64.logand v.words.(w) (Int64.lognot mask)

let copy v = { len = v.len; words = Array.copy v.words }

(* Bits beyond [len] in the last word are kept at zero by every operation, so
   equality and popcount can work word-wise. *)
let equal a b = a.len = b.len && a.words = b.words

let popcount64 x =
  (* SWAR popcount. *)
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0f0f0f0f0f0f0f0fL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

let popcount v = Array.fold_left (fun acc w -> acc + popcount64 w) 0 v.words

let logand a b =
  if a.len <> b.len then invalid_arg "Bitvec.logand: length mismatch";
  { len = a.len; words = Array.init (Array.length a.words) (fun i -> Int64.logand a.words.(i) b.words.(i)) }

(* Mask off the unused bits of the last word so invariants hold after shifts. *)
let normalize v =
  let n = Array.length v.words in
  if n > 0 then begin
    let used = v.len mod bits_per_word in
    if used <> 0 then
      v.words.(n - 1) <- Int64.logand v.words.(n - 1) (Int64.sub (Int64.shift_left 1L used) 1L)
  end;
  v

let shift_towards_zero v i =
  if i < 0 then invalid_arg "Bitvec.shift_towards_zero: negative shift";
  let r = create v.len in
  let word_shift = i / bits_per_word and bit_shift = i mod bits_per_word in
  let n = Array.length v.words in
  for w = 0 to n - 1 do
    let src = w + word_shift in
    if src < n then begin
      let lo = Int64.shift_right_logical v.words.(src) bit_shift in
      let hi =
        if bit_shift = 0 || src + 1 >= n then 0L
        else Int64.shift_left v.words.(src + 1) (bits_per_word - bit_shift)
      in
      r.words.(w) <- Int64.logor lo hi
    end
  done;
  normalize r

let shift_away_from_zero v i =
  if i < 0 then invalid_arg "Bitvec.shift_away_from_zero: negative shift";
  let r = create v.len in
  let word_shift = i / bits_per_word and bit_shift = i mod bits_per_word in
  let n = Array.length v.words in
  for w = n - 1 downto 0 do
    let src = w - word_shift in
    if src >= 0 then begin
      let lo = Int64.shift_left v.words.(src) bit_shift in
      let hi =
        if bit_shift = 0 || src - 1 < 0 then 0L
        else Int64.shift_right_logical v.words.(src - 1) (bits_per_word - bit_shift)
      in
      r.words.(w) <- Int64.logor lo hi
    end
  done;
  normalize r

let correlation ss_g ss_rs ~shift =
  let denom = popcount ss_g in
  if denom = 0 then 0.
  else
    let shifted =
      if shift >= 0 then shift_towards_zero ss_rs shift
      else shift_away_from_zero ss_rs (-shift)
    in
    float_of_int (popcount (logand ss_g shifted)) /. float_of_int denom

let of_string s =
  let v = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set v i true
      | _ -> invalid_arg "Bitvec.of_string: expected only '0' and '1'")
    s;
  v

let to_string v = String.init v.len (fun i -> if get v i then '1' else '0')

let iter_set v f =
  for i = 0 to v.len - 1 do
    if get v i then f i
  done

let count_range v ~lo ~hi =
  let count = ref 0 in
  for i = max 0 lo to min v.len hi - 1 do
    if get v i then incr count
  done;
  !count
