(** Fixed-length bit vectors packed into [int64] words.

    Used for switching signatures (one bit per simulated cycle) and for the
    bit-flip correlation kernel of the pre-characterization step, where the
    paper's [|ss(g) & (ss(rs) << i)| / |ss(g)|] formula is evaluated with
    word-parallel AND + popcount. Bit [0] is the first cycle. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits. Raises [Invalid_argument]
    if [n < 0]. *)

val length : t -> int

val get : t -> int -> bool
(** Raises [Invalid_argument] on out-of-range index. *)

val set : t -> int -> bool -> unit

val copy : t -> t

val equal : t -> t -> bool

val popcount : t -> int
(** Number of set bits (the Hamming weight [|v|] of the paper). *)

val logand : t -> t -> t
(** Bitwise AND. Raises [Invalid_argument] on length mismatch. *)

val shift_towards_zero : t -> int -> t
(** [shift_towards_zero v i] moves bit [j+i] of [v] to bit [j]; the top [i]
    bits become zero. This realizes the paper's [ss(rs) << i]: aligning the
    responding-signal switch at cycle [c + i] with the internal node's switch
    at cycle [c]. [i] must be [>= 0]. *)

val shift_away_from_zero : t -> int -> t
(** Inverse direction: bit [j] moves to bit [j+i]; bits shifted past the end
    are dropped. Used for fan-out-cone correlation where [i < 0] in the
    paper's convention. *)

val correlation : t -> t -> shift:int -> float
(** [correlation ss_g ss_rs ~shift] is the paper's
    [Corr_i(g, rs) = |ss(g) & (ss(rs) << i)| / |ss(g)|] with [i = shift]
    (negative [shift] uses {!shift_away_from_zero}). Returns [0.] when
    [ss(g)] has no set bits. *)

val of_string : string -> t
(** [of_string "01001101"] reads left-to-right: the leftmost character is
    bit 0 (the first cycle), matching the paper's figures. Raises
    [Invalid_argument] on characters other than ['0'] and ['1']. *)

val to_string : t -> string

val iter_set : t -> (int -> unit) -> unit
(** Iterate over the indices of set bits, in increasing order. *)

val count_range : t -> lo:int -> hi:int -> int
(** Number of set bits with index in [\[lo, hi)]. *)
