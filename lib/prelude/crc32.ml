(* Table-driven CRC-32 (IEEE 802.3), the standard reflected form with
   polynomial 0xEDB88320. Digests live in plain ints (always within 32
   bits, so no boxing and no Int32 churn on the frame hot path). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask = 0xffffffff

let feed_byte c b = (Lazy.force table).((c lxor b) land 0xff) lxor (c lsr 8)

let extend crc s =
  let c = ref (crc lxor mask) in
  String.iter (fun ch -> c := feed_byte !c (Char.code ch)) s;
  !c lxor mask

let extend_sub crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.extend_sub";
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    c := feed_byte !c (Char.code (Bytes.unsafe_get buf i))
  done;
  !c lxor mask

let string s = extend 0 s
