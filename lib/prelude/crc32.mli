(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]) — the
    integrity checksum shared by the wire frame codec (DESIGN.md §11),
    the durable checkpoint trailers and the scheduler write-ahead log
    (DESIGN.md §12).

    The digest is returned as a non-negative [int] in [[0, 2^32)] so it
    stores losslessly in OCaml's 63-bit native int and serializes as a
    4-byte big-endian word. *)

val string : string -> int
(** CRC-32 of a whole string. [string "123456789" = 0xCBF43926]. *)

val extend : int -> string -> int
(** Continue a running digest: [extend (string a) b = string (a ^ b)].
    Lets the frame codec checksum [tag ++ payload] without concatenating
    them. *)

val extend_sub : int -> Bytes.t -> pos:int -> len:int -> int
(** [extend] over a byte range, for the read path's frame buffer. *)
