(* SplitMix64 (Steele, Lea, Flood 2014). Chosen because it is trivially
   seedable, splittable, and has no hidden global state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

(* Shard substreams space their start states along a second Weyl sequence
   (a different odd constant than the per-draw gamma) and scramble with
   mix64, so shard k's stream is not a shifted window of shard j's: the
   start states land pseudo-randomly in the 2^64 state ring and the per-
   draw increment walks each stream from there. Shards of one campaign
   collide only if two start states come within (draw count x gamma) of
   each other, which for realistic campaign sizes has probability
   ~ n_draws / 2^64 per pair. *)
let shard_gamma = 0xd1342543de82ef95L

let substream ~seed ~shard =
  if shard < 0 then invalid_arg "Rng.substream: negative shard";
  let start =
    mix64 (Int64.add (mix64 seed) (Int64.mul shard_gamma (Int64.of_int (shard + 1))))
  in
  { state = start }

let copy t = { state = t.state }

let state t = t.state

let of_state s = { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (int64 t) mask) in
    let v = r mod bound in
    if r - v + (bound - 1) >= 0 then v else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random mantissa bits. *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
