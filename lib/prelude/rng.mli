(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    Every stochastic component of the framework (attack-parameter sampling,
    synthetic workload generation, placement jitter) draws from an explicit
    [Rng.t], so whole experiments replay bit-identically from a seed. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val split : t -> t
(** [split t] returns a statistically independent generator and advances [t].
    Use one split per subsystem so adding draws in one place does not perturb
    another. *)

val copy : t -> t

val substream : seed:int64 -> shard:int -> t
(** [substream ~seed ~shard] is the deterministic generator of shard
    [shard] of campaign [seed]: shard start states are spaced along a
    second Weyl sequence and mix64-scrambled, so the per-shard streams are
    pairwise disjoint with overwhelming probability over any realistic
    draw count. A distributed campaign gives each contiguous sample-index
    shard its own substream; which process evaluates the shard (or how
    often a lease is re-issued) cannot change the draws. Raises
    [Invalid_argument] on a negative [shard]. *)

val state : t -> int64
(** The full generator state (SplitMix64 carries a single 64-bit word).
    Together with {!of_state} this makes the stream durably snapshottable:
    persisting the state and restoring it later continues the exact same
    draw sequence. *)

val of_state : int64 -> t
(** Rebuild a generator from a {!state} snapshot. Unlike {!create}, the
    value is used verbatim (no seed mixing). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)
