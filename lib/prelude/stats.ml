module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let state t = (t.n, t.mean, t.m2)
  let of_state (n, mean, m2) = { n; mean; m2 }

  let merge a b =
    if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
    else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 = a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n) in
      { n; mean; m2 }
    end
end

module Histogram = struct
  type t = { lo : float; hi : float; bins : int; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; bins; counts = Array.make bins 0; total = 0 }

  let add t x =
    let raw = int_of_float (floor ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int t.bins)) in
    let bin = max 0 (min (t.bins - 1) raw) in
    t.counts.(bin) <- t.counts.(bin) + 1;
    t.total <- t.total + 1

  let total t = t.total
  let counts t = Array.copy t.counts

  let probabilities t =
    if t.total = 0 then Array.make t.bins 0.
    else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts

  let bin_center t i =
    let width = (t.hi -. t.lo) /. float_of_int t.bins in
    t.lo +. ((float_of_int i +. 0.5) *. width)
end

let mean a =
  let n = Array.length a in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let sum = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a in
    sum /. float_of_int (n - 1)
  end
