(** Streaming statistics used by the Monte Carlo estimators.

    {!Welford} maintains numerically stable running mean/variance — the SSF
    estimate and its sample variance [sigma_E^2] in the paper's LLN bound.
    {!Histogram} bins the pre-characterization parameters for Fig. 4-style
    summaries. *)

module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** [0.] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two samples. *)

  val stddev : t -> float

  val merge : t -> t -> t
  (** Combine two accumulators as if all samples were added to one. *)

  val state : t -> int * float * float
  (** [(count, mean, m2)] — the complete accumulator state, exact enough to
      persist (e.g. with hex float formatting) and later {!of_state} back
      bit-for-bit. *)

  val of_state : int * float * float -> t
end

module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  (** Uniform bins over [\[lo, hi)]; samples outside are clamped into the
      first/last bin. Raises [Invalid_argument] if [bins <= 0] or
      [hi <= lo]. *)

  val add : t -> float -> unit
  val total : t -> int

  val counts : t -> int array

  val probabilities : t -> float array
  (** Bin counts normalized by the total; all zeros when empty. *)

  val bin_center : t -> int -> float
end

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance of an array; [0.] with fewer than two items. *)
