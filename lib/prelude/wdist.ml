type t = { pmf : float array; cdf : float array }

let create weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Wdist.create: empty weight array";
  Array.iter
    (fun w ->
      if not (Float.is_finite w) || w < 0. then
        invalid_arg "Wdist.create: weights must be finite and non-negative")
    weights;
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Wdist.create: all weights are zero";
  let pmf = Array.map (fun w -> w /. total) weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    pmf;
  cdf.(n - 1) <- 1.0;
  { pmf; cdf }

let length t = Array.length t.pmf

let pmf t i = t.pmf.(i)

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index with cdf.(i) > u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) > u then search lo mid else search (mid + 1) hi
    end
  in
  let i = search 0 (Array.length t.cdf - 1) in
  (* Skip zero-probability indices that share a cdf value with a predecessor. *)
  let rec forward i = if t.pmf.(i) > 0. then i else forward (i + 1) in
  let rec backward i = if t.pmf.(i) > 0. then i else backward (i - 1) in
  if t.pmf.(i) > 0. then i
  else if i + 1 < Array.length t.pmf then forward (i + 1)
  else backward i

let support t =
  let acc = ref [] in
  for i = Array.length t.pmf - 1 downto 0 do
    if t.pmf.(i) > 0. then acc := i :: !acc
  done;
  !acc
