(** Discrete weighted distributions with O(log n) sampling.

    This is the sampling backend for the importance distributions [g_T] and
    [g_{P|T}] of the paper: the omega-weights are loaded once, normalized,
    and then sampled via binary search over the cumulative table. The pmf is
    exposed so that importance weights [f/g] can be computed exactly. *)

type t

val create : float array -> t
(** [create weights] normalizes non-negative weights into a distribution.
    Raises [Invalid_argument] if the array is empty, any weight is negative
    or not finite, or all weights are zero. *)

val length : t -> int

val pmf : t -> int -> float
(** Probability of index [i]. *)

val sample : t -> Rng.t -> int
(** Draw an index according to the distribution. *)

val support : t -> int list
(** Indices with non-zero probability, in increasing order. *)
