(* The multi-campaign scheduler core (DESIGN.md §12): a durable
   submission queue keyed by campaign fingerprint, one lease table per
   campaign, round-robin shard dispatch across every active campaign,
   and report caching.

   Durability is split between two artifacts, each reusing an existing
   codec:

     <dir>/wal/seg-*.wal      the queue itself (Wal): which campaigns
                              were submitted, finished, parked or
                              cancelled — idempotent records, replayed
                              and compacted at startup;
     <dir>/campaigns/<md5>.ckpt
                              per-campaign progress (Fmc_dist.Ckpt v2):
                              every accepted shard blob, written after
                              each completion.

   kill -9 recovery is therefore: replay the WAL to rebuild the queue in
   submission order, then reattach each campaign's checkpoint to seed
   its lease table's Done set. A campaign whose checkpoint holds every
   shard is finished even if the crash beat the "finished" WAL record;
   a campaign whose WAL says finished but whose checkpoint is missing
   shards is quietly re-queued — shard results depend only on
   (seed, shard), so re-running them reproduces the identical report.

   Nothing here reads the wall clock or takes locks: every operation is
   given [now] and the service serializes calls under its own mutex,
   the same split Lease and Coordinator use. *)

open Fmc
module Protocol = Fmc_dist.Protocol
module Lease = Fmc_dist.Lease
module Ckpt = Fmc_dist.Ckpt
module Crc32 = Fmc_dist.Crc32
module Audit = Fmc_audit.Audit
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics
module Rate = Fmc_obs.Rate
module Clock = Fmc_obs.Clock

type config = {
  queue_depth : int;  (* max campaigns queued or running; 0 = unbounded *)
  ttl_s : float;  (* shard lease lifetime without a heartbeat *)
  wall_budget_s : float;  (* running wall clock before a campaign is parked; 0 = off *)
  retry_after_s : float;  (* resubmission hint in admission rejections *)
  rate_halflife_s : float;  (* pool throughput EWMA window *)
  audit_rate : float;  (* fraction of accepted shards re-executed (DESIGN.md §16); 0 = off *)
  speculate_factor : float;  (* straggler duplication threshold over the shard EWMA; 0 = off *)
}

let default_config =
  {
    queue_depth = 16;
    ttl_s = 30.;
    wall_budget_s = 0.;
    retry_after_s = 5.;
    rate_halflife_s = 30.;
    audit_rate = 0.;
    speculate_factor = 0.;
  }

type phase = Active | Finished | Parked of string | Cancelled

type entry = {
  spec : Protocol.spec;
  fp : string;
  key : string;  (* md5 hex of fp: checkpoint filename *)
  plan : (int * int) array;
  lease : Lease.t;
  blobs : (int, string) Hashtbl.t;
  quarantines : (int, Campaign.quarantine_entry list) Hashtbl.t;  (* by producing shard *)
  mutable audit : Audit.t;  (* replaced wholesale on checkpoint reattach *)
  assigned_at : (int, float * string) Hashtbl.t;  (* shard -> (lease t0, holder) *)
  mutable phase : phase;
  mutable started_at : float option;
  mutable done_samples : int;
  mutable elapsed_s : float;  (* start-to-finish wall clock, once Finished *)
}

type mx = {
  submissions : Metrics.counter option;
  rejected : Metrics.counter option;
  cache_hits : Metrics.counter option;
  recoveries : Metrics.counter option;
  finished : Metrics.counter option;
  parked : Metrics.counter option;
  cancelled : Metrics.counter option;
  wal_records : Metrics.counter option;
  wal_torn : Metrics.counter option;
  q_depth : Metrics.gauge option;
  running : Metrics.gauge option;
  in_flight : Metrics.gauge option;
  wal_fsync : Metrics.histogram option;
  audits : Metrics.counter option;
  audit_mismatches : Metrics.counter option;
  audit_disputes : Metrics.counter option;
  audit_invalidated : Metrics.counter option;
  audit_speculations : Metrics.counter option;
  audit_quarantined : Metrics.gauge option;
}

let mx_create (obs : Obs.t) =
  match obs.Obs.metrics with
  | None ->
      {
        submissions = None;
        rejected = None;
        cache_hits = None;
        recoveries = None;
        finished = None;
        parked = None;
        cancelled = None;
        wal_records = None;
        wal_torn = None;
        q_depth = None;
        running = None;
        in_flight = None;
        wal_fsync = None;
        audits = None;
        audit_mismatches = None;
        audit_disputes = None;
        audit_invalidated = None;
        audit_speculations = None;
        audit_quarantined = None;
      }
  | Some r ->
      let c help name = Some (Metrics.counter r ~help name) in
      let g help name = Some (Metrics.gauge r ~help name) in
      {
        submissions = c "campaign submissions accepted" "fmc_sched_submissions_total";
        rejected = c "submissions refused by admission control" "fmc_sched_rejected_total";
        cache_hits = c "submissions answered from the report cache" "fmc_sched_cache_hits_total";
        recoveries = c "campaigns recovered from WAL + checkpoints" "fmc_sched_recoveries_total";
        finished = c "campaigns run to completion" "fmc_sched_campaigns_finished_total";
        parked = c "campaigns parked by quarantine policy" "fmc_sched_parked_total";
        cancelled = c "campaigns cancelled by request" "fmc_sched_cancelled_total";
        wal_records = c "intact WAL records replayed at startup" "fmc_sched_wal_records_total";
        wal_torn = c "torn WAL tails detected at startup" "fmc_sched_wal_torn_records_total";
        q_depth = g "campaigns queued or running" "fmc_sched_queue_depth";
        running = g "campaigns with completed or in-flight shards" "fmc_sched_campaigns_running";
        in_flight = g "shard leases currently live across campaigns" "fmc_sched_shards_in_flight";
        wal_fsync =
          Some
            (Metrics.histogram r ~help:"durable WAL append latency (write + fsync)"
               ~buckets:[| 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1. |]
               "fmc_sched_wal_fsync_seconds");
        audits = c "audit re-executions leased" "fmc_audit_audits_total";
        audit_mismatches = c "shard results whose digest failed verification" "fmc_audit_mismatches_total";
        audit_disputes = c "audits escalated to a third arbitrating execution" "fmc_audit_disputes_total";
        audit_invalidated = c "accepted shards invalidated by a quarantine" "fmc_audit_invalidated_total";
        audit_speculations = c "speculative duplicate leases issued" "fmc_audit_speculations_total";
        audit_quarantined = g "workers quarantined by audit verdicts" "fmc_audit_quarantined_workers";
      }

let cinc = Option.iter Metrics.inc
let cadd c v = Option.iter (fun c -> Metrics.add c v) c
let gset g v = Option.iter (fun g -> Metrics.set g (float_of_int v)) g

type t = {
  config : config;
  dir : string;
  wal : Wal.t;
  entries : (string, entry) Hashtbl.t;
  mutable order : string list;  (* submission order, oldest first *)
  mutable rotation : int;  (* round-robin cursor over active entries *)
  rate : Rate.t;
  mutable draining : bool;
  mutable last_activity : float;
  mutable banned : string list;  (* workers quarantined by audit verdicts, fleet-wide *)
  mismatches : (string, int) Hashtbl.t;  (* digest-mismatch strikes per worker *)
  workers_seen : (string, float) Hashtbl.t;  (* last next_job per worker: fleet-size estimate *)
  mutable shard_ewma : float option;  (* fleet per-shard wall-clock EWMA (speculation) *)
  mx : mx;
}

(* Observation-only exception to the injected-[now] design: the fsync
   stopwatch reads the process clock directly, because callers inject
   logical time (tests drive a fake [now]) while the fsync cost being
   measured is real. *)
let wal_append t payload =
  match t.mx.wal_fsync with
  | None -> Wal.append t.wal payload
  | Some h ->
      let t0 = Clock.now () in
      Wal.append t.wal payload;
      Metrics.observe h (Float.max 0. (Clock.now () -. t0))

(* -- WAL records --------------------------------------------------------- *)

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s
let rec_submit spec = "submit\n" ^ Protocol.spec_line spec
let rec_finished fp elapsed = Printf.sprintf "finished\n%s\n%h" fp elapsed
let rec_parked fp reason = Printf.sprintf "parked\n%s\n%s" fp (one_line reason)
let rec_cancelled fp = "cancelled\n" ^ fp
let rec_quarantine worker = "quarantined\n" ^ one_line worker

type wal_op =
  | Op_submit of Protocol.spec
  | Op_finished of string * float
  | Op_parked of string * string
  | Op_cancelled of string
  | Op_quarantine of string

let parse_record payload =
  match String.split_on_char '\n' payload with
  | [ "submit"; line ] -> (
      match Protocol.spec_of_line line with Ok sp -> Some (Op_submit sp) | Error _ -> None)
  | [ "finished"; fp; e ] ->
      Some (Op_finished (fp, Option.value (float_of_string_opt e) ~default:0.))
  | [ "parked"; fp; reason ] -> Some (Op_parked (fp, reason))
  | [ "cancelled"; fp ] -> Some (Op_cancelled fp)
  | [ "quarantined"; worker ] -> Some (Op_quarantine worker)
  | _ -> None

(* -- entries ------------------------------------------------------------- *)

let ckpt_dir_of dir = Filename.concat dir "campaigns"
let ckpt_dir t = ckpt_dir_of t.dir
let ckpt_path_of dir e = Filename.concat (ckpt_dir_of dir) (e.key ^ ".ckpt")
let ckpt_path t e = ckpt_path_of t.dir e

let audit_seed ~fp = Int64.of_int (Crc32.string fp)

let audit_config config ~fp =
  { Audit.rate = config.audit_rate; seed = audit_seed ~fp; ttl_s = config.ttl_s }

let make_entry config spec =
  let fp = Protocol.spec_fingerprint spec in
  let plan =
    Ssf.shard_plan ~samples:spec.Protocol.sp_samples ~shard_size:spec.Protocol.sp_shard_size
  in
  {
    spec;
    fp;
    key = Digest.to_hex (Digest.string fp);
    plan;
    lease = Lease.create ~plan ~ttl:config.ttl_s;
    blobs = Hashtbl.create 16;
    quarantines = Hashtbl.create 16;
    audit = Audit.create (audit_config config ~fp) ~nshards:(Array.length plan);
    assigned_at = Hashtbl.create 16;
    phase = Active;
    started_at = None;
    done_samples = 0;
    elapsed_s = 0.;
  }

let spec_valid (sp : Protocol.spec) =
  if sp.Protocol.sp_samples <= 0 then Error "non-positive sample count"
  else if sp.Protocol.sp_shard_size <= 0 then Error "non-positive shard size"
  else
    (* Reject unresolvable fault models at submission, not when a pool
       worker fails to build the job (which would burn its reconnect
       budget on a spec that can never run). *)
    match Fmc_fault.Registry.parse sp.Protocol.sp_fault_model with
    | Ok _ -> Ok ()
    | Error e -> Error (Fmc_fault.Registry.error_message e)

let active e = match e.phase with Active -> true | Finished | Parked _ | Cancelled -> false

let iter_ordered t f =
  List.iter (fun fp -> match Hashtbl.find_opt t.entries fp with Some e -> f e | None -> ()) t.order

let active_entries t =
  List.filter_map
    (fun fp ->
      match Hashtbl.find_opt t.entries fp with Some e when active e -> Some e | _ -> None)
    t.order

let refresh_gauges t =
  let act = active_entries t in
  gset t.mx.q_depth (List.length act);
  gset t.mx.running
    (List.length (List.filter (fun e -> e.done_samples > 0 || Lease.in_flight e.lease > 0) act));
  gset t.mx.in_flight (List.fold_left (fun n e -> n + Lease.in_flight e.lease) 0 act)

let sorted_quarantined e =
  Hashtbl.fold (fun _ qs acc -> List.rev_append qs acc) e.quarantines []
  |> List.sort (fun a b -> compare a.Campaign.q_index b.Campaign.q_index)

let save_ckpt t e =
  let shards =
    Hashtbl.fold (fun i b acc -> (i, b) :: acc) e.blobs []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  (if not (Sys.file_exists (ckpt_dir t)) then
     try Unix.mkdir (ckpt_dir t) 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let st_audit =
    (* Quarantined workers live in the WAL, not the per-campaign
       checkpoint, so [au_banned] stays empty here; with auditing off the
       checkpoint is written as a byte-identical v2 file. *)
    if Audit.rate e.audit = 0. then None
    else
      Some
        {
          Ckpt.au_entries =
            List.map
              (fun (a : Audit.entry) ->
                {
                  Ckpt.au_shard = a.Audit.au_shard;
                  au_worker = a.Audit.au_worker;
                  au_digest = a.Audit.au_digest;
                  au_passed = a.Audit.au_passed;
                })
              (Audit.export e.audit);
          au_banned = [];
        }
  in
  Ckpt.save ~path:(ckpt_path t e)
    {
      Ckpt.st_fingerprint = e.fp;
      st_shards = shards;
      st_quarantined = sorted_quarantined e;
      st_audit;
    }

(* -- recovery ------------------------------------------------------------ *)

let shard_len e shard = if shard >= 0 && shard < Array.length e.plan then snd e.plan.(shard) else 0

(* Re-attribute a flat quarantine log to producing shards by global
   sample index over the plan's ranges — v2 checkpoints (and the wire
   protocol) carry the log flat, while invalidation needs to drop
   exactly one shard's entries. *)
let shard_of_qindex e qi =
  let found = ref None in
  Array.iteri
    (fun shard (start, len) -> if !found = None && qi > start && qi <= start + len then found := Some shard)
    e.plan;
  !found

let attach_quarantines e entries =
  Hashtbl.reset e.quarantines;
  List.iter
    (fun q ->
      match shard_of_qindex e q.Campaign.q_index with
      | None -> ()
      | Some shard ->
          let prev = Option.value (Hashtbl.find_opt e.quarantines shard) ~default:[] in
          Hashtbl.replace e.quarantines shard (q :: prev))
    entries

let attach_ckpt ~config ~dir e =
  let path = ckpt_path_of dir e in
  if Sys.file_exists path then
    match Ckpt.load ~path with
    | Error _ -> ()  (* unreadable progress: re-run the campaign from scratch *)
    | Ok st when st.Ckpt.st_fingerprint <> e.fp -> ()
    | Ok st -> (
        List.iter
          (fun (shard, blob) ->
            if shard >= 0 && shard < Array.length e.plan && not (Hashtbl.mem e.blobs shard)
            then begin
              Lease.force_complete e.lease ~shard;
              Hashtbl.replace e.blobs shard blob;
              e.done_samples <- e.done_samples + shard_len e shard
            end)
          st.Ckpt.st_shards;
        attach_quarantines e st.Ckpt.st_quarantined;
        let acfg = audit_config config ~fp:e.fp in
        match st.Ckpt.st_audit with
        | Some au ->
            e.audit <-
              Audit.restore acfg ~nshards:(Array.length e.plan)
                (List.map
                   (fun (a : Ckpt.audit_entry) ->
                     {
                       Audit.au_shard = a.Ckpt.au_shard;
                       au_worker = a.Ckpt.au_worker;
                       au_digest = a.Ckpt.au_digest;
                       au_passed = a.Ckpt.au_passed;
                     })
                   au.Ckpt.au_entries)
        | None ->
            (* Pre-audit (v2) checkpoint under a now-auditing scheduler:
               recompute each accepted shard's digest from its blob. The
               primaries carry no producer name, so a later quarantine
               cannot blame them — they are simply due for audit. *)
            if config.audit_rate > 0. then
              Hashtbl.iter
                (fun shard blob ->
                  let quarantined =
                    Option.value (Hashtbl.find_opt e.quarantines shard) ~default:[]
                  in
                  ignore
                    (Audit.note_accept e.audit ~shard ~worker:""
                       ~digest:(Audit.Check.result_digest ~tally:blob ~quarantined)
                      : bool))
                e.blobs)

let entry_complete e = Lease.finished e.lease && Audit.finished e.audit

(* Drop every accepted-but-unvindicated shard [worker] produced in [e]:
   the quarantine path, and its crash-recovery replay. Returns how many
   shards were invalidated. *)
let invalidate_victims_entry e ~worker =
  let victims = Audit.victims e.audit ~worker in
  List.iter
    (fun shard ->
      if Hashtbl.mem e.blobs shard then begin
        Hashtbl.remove e.blobs shard;
        Hashtbl.remove e.quarantines shard;
        e.done_samples <- e.done_samples - shard_len e shard
      end;
      Audit.invalidate e.audit ~shard;
      Lease.reopen e.lease ~shard;
      Hashtbl.remove e.assigned_at shard)
    victims;
  List.length victims

(* Rebuild the queue from replayed WAL records, then reattach each
   campaign's checkpoint. Runs before the WAL handle exists (the old
   segments must survive until the compacted one is durable), so it
   only touches the entry tables. *)
let recover ~config ~dir ~entries records =
  let order = ref [] in
  let banned = ref [] in
  List.iter
    (fun payload ->
      match parse_record payload with
      | None -> ()
      | Some (Op_quarantine worker) ->
          if not (List.mem worker !banned) then banned := worker :: !banned
      | Some (Op_submit spec) -> (
          match spec_valid spec with
          | Error _ -> ()
          | Ok () -> (
              let fp = Protocol.spec_fingerprint spec in
              match Hashtbl.find_opt entries fp with
              | Some e ->
                  (* Revival after a cancel; duplicates from compaction
                     land here too and change nothing. *)
                  if e.phase = Cancelled then e.phase <- Active
              | None ->
                  let e = make_entry config spec in
                  Hashtbl.replace entries fp e;
                  order := fp :: !order))
      | Some (Op_finished (fp, elapsed)) -> (
          match Hashtbl.find_opt entries fp with
          | Some e ->
              e.phase <- Finished;
              e.elapsed_s <- elapsed
          | None -> ())
      | Some (Op_parked (fp, reason)) -> (
          match Hashtbl.find_opt entries fp with
          | Some e -> if e.phase <> Finished then e.phase <- Parked reason
          | None -> ())
      | Some (Op_cancelled fp) -> (
          match Hashtbl.find_opt entries fp with
          | Some e -> if e.phase <> Finished then e.phase <- Cancelled
          | None -> ()))
    records;
  let order = List.rev !order in
  (* Reconcile phases against the evidence: a complete checkpoint
     finishes the campaign even if the crash beat the "finished" WAL
     record, and a "finished" record without the shards to back it
     re-queues the campaign (re-running is free and bit-exact). *)
  List.iter
    (fun fp ->
      match Hashtbl.find_opt entries fp with
      | None -> ()
      | Some e -> (
          attach_ckpt ~config ~dir e;
          (* The quarantine WAL record is durable before the victims'
             checkpoints are rewritten, so replay the invalidation — a
             no-op when the crash came after it finished. *)
          List.iter
            (fun worker ->
              if not (entry_complete e) || e.phase <> Finished then
                ignore (invalidate_victims_entry e ~worker : int))
            !banned;
          match e.phase with
          | Finished -> if not (entry_complete e) then e.phase <- Active
          | Active -> if entry_complete e then e.phase <- Finished
          | Parked _ -> if entry_complete e then e.phase <- Finished
          | Cancelled -> ()))
    order;
  (order, !banned)

let records_of_state ~entries ~banned order =
  List.concat_map
    (fun fp ->
      match Hashtbl.find_opt entries fp with
      | None -> []
      | Some e -> (
          let base = rec_submit e.spec in
          match e.phase with
          | Active -> [ base ]
          | Finished -> [ base; rec_finished e.fp e.elapsed_s ]
          | Parked reason -> [ base; rec_parked e.fp reason ]
          | Cancelled -> [ base; rec_cancelled e.fp ]))
    order
  @ List.rev_map rec_quarantine banned

let create ?(obs = Obs.disabled) config ~dir ~now =
  if config.ttl_s <= 0. then invalid_arg "Sched.create: non-positive ttl";
  if config.audit_rate < 0. || config.audit_rate > 1. then
    invalid_arg "Sched.create: audit_rate outside [0,1]";
  if config.speculate_factor < 0. then invalid_arg "Sched.create: negative speculate_factor";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let wal_dir = Filename.concat dir "wal" in
  let replayed = Wal.replay ~dir:wal_dir in
  let mx = mx_create obs in
  cadd mx.wal_records (float_of_int (List.length replayed.Wal.records));
  cadd mx.wal_torn (float_of_int replayed.Wal.torn);
  let entries = Hashtbl.create 16 in
  let order, banned = recover ~config ~dir ~entries replayed.Wal.records in
  let recovered = Hashtbl.length entries in
  if recovered > 0 then cadd mx.recoveries (float_of_int recovered);
  (* Compacting here also truncates any torn tail: the next replay reads
     a minimal, tear-free log. *)
  let t =
    {
      config;
      dir;
      wal = Wal.start ~dir:wal_dir ~initial:(records_of_state ~entries ~banned order);
      entries;
      order;
      rotation = 0;
      rate = Rate.create ~halflife_s:config.rate_halflife_s ~now ();
      draining = false;
      last_activity = now;
      banned;
      mismatches = Hashtbl.create 8;
      workers_seen = Hashtbl.create 8;
      shard_ewma = None;
      mx;
    }
  in
  gset t.mx.audit_quarantined (List.length banned);
  refresh_gauges t;
  t

(* -- phase transitions --------------------------------------------------- *)

let finalize t e ~now =
  (* A campaign is not finished until every pending audit drained: a
     report served before its audits settle could carry a lie. *)
  if e.phase <> Finished && entry_complete e then begin
    e.phase <- Finished;
    e.elapsed_s <- (match e.started_at with Some s -> now -. s | None -> 0.);
    wal_append t (rec_finished e.fp e.elapsed_s);
    cinc t.mx.finished;
    refresh_gauges t
  end

let is_banned t ~worker = List.mem worker t.banned

(* Fleet-wide quarantine: record durably, then invalidate every
   unvindicated shard the liar produced in any still-active campaign so
   honest workers re-run them. Finished campaigns keep their reports —
   every shard in them was either audited or produced before auditing
   drained, and reopening a served report would be worse than the
   residual risk. *)
let quarantine_worker t worker =
  if worker <> "" && not (is_banned t ~worker) then begin
    t.banned <- worker :: t.banned;
    wal_append t (rec_quarantine worker);
    gset t.mx.audit_quarantined (List.length t.banned);
    iter_ordered t (fun e ->
        if active e then begin
          let dropped = invalidate_victims_entry e ~worker in
          ignore (Lease.release_worker e.lease ~worker : int list);
          if dropped > 0 then begin
            cadd t.mx.audit_invalidated (float_of_int dropped);
            save_ckpt t e
          end
        end);
    refresh_gauges t
  end

let mismatch_strikes = 3

let note_mismatch t worker =
  cinc t.mx.audit_mismatches;
  let strikes = 1 + Option.value (Hashtbl.find_opt t.mismatches worker) ~default:0 in
  Hashtbl.replace t.mismatches worker strikes;
  if strikes >= mismatch_strikes then quarantine_worker t worker

let park t e reason =
  if active e then begin
    e.phase <- Parked reason;
    wal_append t (rec_parked e.fp reason);
    cinc t.mx.parked;
    refresh_gauges t
  end

(* -- submission ---------------------------------------------------------- *)

let position_of t e =
  let rec go n = function
    | [] -> n
    | fp :: rest ->
        if fp = e.fp then n
        else
          go
            (match Hashtbl.find_opt t.entries fp with
            | Some o when active o -> n + 1
            | _ -> n)
            rest
  in
  go 0 t.order

let submit t ~now spec =
  t.last_activity <- now;
  match spec_valid spec with
  | Error reason -> `Invalid reason
  | Ok () -> (
      let fp = Protocol.spec_fingerprint spec in
      match Hashtbl.find_opt t.entries fp with
      | Some e -> (
          match e.phase with
          | Finished ->
              cinc t.mx.cache_hits;
              `Cached
          | Cancelled ->
              e.phase <- Active;
              wal_append t (rec_submit e.spec);
              cinc t.mx.submissions;
              refresh_gauges t;
              `Queued (position_of t e)
          | Active | Parked _ -> `Queued (position_of t e))
      | None ->
          let live = List.length (active_entries t) in
          if t.config.queue_depth > 0 && live >= t.config.queue_depth then begin
            cinc t.mx.rejected;
            `Rejected t.config.retry_after_s
          end
          else begin
            let e = make_entry t.config spec in
            Hashtbl.replace t.entries fp e;
            t.order <- t.order @ [ fp ];
            wal_append t (rec_submit spec);
            cinc t.mx.submissions;
            refresh_gauges t;
            `Queued (position_of t e)
          end)

let cancel t ~fingerprint =
  match Hashtbl.find_opt t.entries fingerprint with
  | None -> `Unknown
  | Some e -> (
      match e.phase with
      | Finished -> `Already_finished
      | Cancelled -> `Cancelled
      | Active | Parked _ ->
          e.phase <- Cancelled;
          wal_append t (rec_cancelled e.fp);
          cinc t.mx.cancelled;
          refresh_gauges t;
          `Cancelled)

(* -- dispatch ------------------------------------------------------------ *)

let sweep t ~now =
  iter_ordered t (fun e ->
      if active e then begin
        ignore (Lease.sweep e.lease ~now : int);
        ignore (Audit.sweep e.audit ~now : int);
        (match (e.started_at, t.config.wall_budget_s) with
        | Some s, budget when budget > 0. && now -. s > budget ->
            park t e
              (Printf.sprintf "wall-clock budget exhausted (%.1fs > %.1fs)" (now -. s) budget)
        | _ -> ());
        if entry_complete e then finalize t e ~now
      end);
  refresh_gauges t

(* Live-fleet estimate from recent lease requests: with a single live
   worker the different-auditor rule would deadlock the audit queue, so
   self-audit is allowed (it still catches nondeterminism). *)
let fleet_size t ~now =
  Hashtbl.fold
    (fun _ last n -> if now -. last <= 2. *. t.config.ttl_s then n + 1 else n)
    t.workers_seen 0

let audit_offer t e ~now ~worker =
  match Audit.next_due e.audit ~worker ~allow_self:(fleet_size t ~now <= 1) with
  | None -> None
  | Some shard ->
      let epoch = Lease.bump_epoch e.lease ~shard in
      Audit.lease e.audit ~shard ~auditor:worker ~epoch ~now;
      cinc t.mx.audits;
      let start, len = Lease.range e.lease ~shard in
      Some { Lease.shard; epoch; start; len }

let speculate_offer t e ~now ~worker =
  match t.shard_ewma with
  | Some ewma when t.config.speculate_factor > 0. && not (Lease.finished e.lease) ->
      let threshold = t.config.speculate_factor *. ewma in
      let worst = ref None in
      Hashtbl.iter
        (fun shard (t0, holder) ->
          let age = now -. t0 in
          if holder <> worker && age > threshold then
            match !worst with
            | Some (a, _) when a >= age -> ()
            | _ -> worst := Some (age, shard))
        e.assigned_at;
      (match !worst with
      | None -> None
      | Some (_, shard) -> (
          match Lease.speculate e.lease ~now ~shard ~worker with
          | Some a ->
              cinc t.mx.audit_speculations;
              Some a
          | None -> None))
  | _ -> None

let next_job t ~now ~worker ~scope =
  t.last_activity <- now;
  Hashtbl.replace t.workers_seen worker now;
  if is_banned t ~worker then `Banned
  else if t.draining then `Drained
  else
    let try_entry e =
      if not (active e) then None
      else
        match Lease.acquire e.lease ~now ~worker with
        | `Assign a ->
            if e.started_at = None then e.started_at <- Some now;
            Hashtbl.replace e.assigned_at a.Lease.shard (now, worker);
            Some (`Job (e.spec, a))
        | `Finished | `Wait -> (
            match audit_offer t e ~now ~worker with
            | Some a -> Some (`Job (e.spec, a))
            | None -> (
                match speculate_offer t e ~now ~worker with
                | Some a -> Some (`Job (e.spec, a))
                | None ->
                    if entry_complete e then finalize t e ~now;
                    None))
    in
    if scope = Protocol.pool_fingerprint then begin
      let act = active_entries t in
      let n = List.length act in
      if n = 0 then `Wait
      else begin
        (* Round-robin across campaigns: start one past the campaign
           that got the previous lease, so one long campaign cannot
           starve the rest of the queue. *)
        let arr = Array.of_list act in
        let start = t.rotation mod n in
        let rec probe i =
          if i = n then `Wait
          else
            let idx = (start + i) mod n in
            match try_entry arr.(idx) with
            | Some job ->
                t.rotation <- idx + 1;
                refresh_gauges t;
                job
            | None -> probe (i + 1)
        in
        probe 0
      end
    end
    else
      match Hashtbl.find_opt t.entries scope with
      | None -> `Unknown_scope
      | Some e -> (
          match e.phase with
          | Finished -> `Drained
          | Cancelled -> `Drained
          | Parked _ -> `Wait
          | Active -> (
              match try_entry e with
              | Some job ->
                  refresh_gauges t;
                  job
              | None -> if entry_complete e then `Drained else `Wait))

let heartbeat t ~now ~fingerprint ~shard ~epoch =
  t.last_activity <- now;
  match Hashtbl.find_opt t.entries fingerprint with
  | None -> `Stale
  | Some e -> (
      match e.phase with
      | Active | Parked _ ->
          if Audit.heartbeat e.audit ~shard ~epoch ~now then `Ok
          else Lease.heartbeat e.lease ~now ~shard ~epoch
      | Finished | Cancelled -> `Stale)

let complete t ~now ~fingerprint ~shard ~epoch ~worker ~digest ~tally ~quarantined =
  t.last_activity <- now;
  match Hashtbl.find_opt t.entries fingerprint with
  | None -> `Unknown
  | Some e -> (
      match e.phase with
      | Cancelled -> `Unknown
      | Finished | Active | Parked _ -> (
          match Ssf.Tally.of_string tally with
          | Error msg -> `Invalid msg
          | Ok _ -> (
              let computed = Audit.Check.result_digest ~tally ~quarantined in
              match digest with
              | Some d when d <> computed ->
                  (* The worker's own digest disagrees with its payload:
                     corruption or a clumsy lie. Refuse without consuming
                     the shard's completion and put the lease back. *)
                  note_mismatch t worker;
                  Audit.release e.audit ~shard ~epoch;
                  Lease.release e.lease ~shard ~epoch;
                  `Mismatch
              | _ ->
                  if Audit.audit_epoch e.audit ~shard ~epoch then (
                    match Audit.complete e.audit ~shard ~epoch ~worker ~digest:computed with
                    | `Pass ->
                        save_ckpt t e;
                        if e.phase = Active then finalize t e ~now;
                        `Audited "audit pass"
                    | `Dispute ->
                        cinc t.mx.audit_disputes;
                        `Audited "audit dispute: arbitrating"
                    | `Verdict { Audit.vd_liars; vd_replace } ->
                        if vd_replace then begin
                          (* The accepted primary was the lie; the
                             arbiter's result in hand is the honest one. *)
                          Hashtbl.replace e.blobs shard tally;
                          if quarantined = [] then Hashtbl.remove e.quarantines shard
                          else Hashtbl.replace e.quarantines shard quarantined
                        end;
                        List.iter (quarantine_worker t) vd_liars;
                        save_ckpt t e;
                        if e.phase = Active then finalize t e ~now;
                        `Audited "audit verdict"
                    | `Stale -> `Stale)
                  else
                    match Lease.complete e.lease ~shard ~epoch with
                    | `Accepted ->
                        Hashtbl.replace e.blobs shard tally;
                        if quarantined = [] then Hashtbl.remove e.quarantines shard
                        else Hashtbl.replace e.quarantines shard quarantined;
                        e.done_samples <- e.done_samples + shard_len e shard;
                        Rate.observe t.rate ~now (float_of_int (shard_len e shard));
                        (match Hashtbl.find_opt e.assigned_at shard with
                        | Some (t0, _) ->
                            let dt = Float.max 0. (now -. t0) in
                            t.shard_ewma <-
                              Some
                                (match t.shard_ewma with
                                | None -> dt
                                | Some old -> (0.7 *. old) +. (0.3 *. dt));
                            Hashtbl.remove e.assigned_at shard
                        | None -> ());
                        ignore (Audit.note_accept e.audit ~shard ~worker ~digest:computed : bool);
                        save_ckpt t e;
                        if e.phase = Active then finalize t e ~now;
                        refresh_gauges t;
                        `Accepted
                    | (`Duplicate | `Stale | `Unknown) as r -> r)))

(* -- reports and status -------------------------------------------------- *)

let report t ~fingerprint =
  match Hashtbl.find_opt t.entries fingerprint with
  | Some e when e.phase = Finished ->
      let shards =
        Hashtbl.fold (fun i b acc -> (i, b) :: acc) e.blobs []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      in
      Some (shards, sorted_quarantined e, e.elapsed_s)
  | Some _ | None -> None

let status_entry t ~now e =
  let queue_len = List.length (active_entries t) in
  let state, position, detail =
    match e.phase with
    | Finished -> (Protocol.Finished, -1, "")
    | Cancelled -> (Protocol.Cancelled, -1, "")
    | Parked reason -> (Protocol.Parked, -1, reason)
    | Active ->
        let st =
          if e.done_samples > 0 || Lease.in_flight e.lease > 0 then Protocol.Running
          else Protocol.Queued
        in
        (st, position_of t e, "")
  in
  let rate = Rate.per_sec t.rate ~now in
  let eta =
    match e.phase with
    | Finished | Cancelled -> 0.
    | Parked _ -> -1.
    | Active ->
        let own = e.spec.Protocol.sp_samples - e.done_samples in
        (* Everything queued ahead shares the pool, so its backlog is
           in front of ours in expectation. *)
        let ahead =
          List.fold_left
            (fun (acc, seen) fp ->
              if seen || fp = e.fp then (acc, true)
              else
                match Hashtbl.find_opt t.entries fp with
                | Some o when active o ->
                    (acc + (o.spec.Protocol.sp_samples - o.done_samples), false)
                | _ -> (acc, false))
            (0, false) t.order
          |> fst
        in
        (match Rate.eta_s t.rate ~now ~remaining:(own + ahead) with Some s -> s | None -> -1.)
  in
  {
    Protocol.st_fingerprint = e.fp;
    st_state = state;
    st_position = position;
    st_queue_len = queue_len;
    st_samples_done = e.done_samples;
    st_samples_total = e.spec.Protocol.sp_samples;
    st_rate = rate;
    st_eta_s = eta;
    st_detail = detail;
  }

let status t ~now ~fingerprint =
  if fingerprint = "" then
    List.rev
      (List.fold_left
         (fun acc fp ->
           match Hashtbl.find_opt t.entries fp with
           | Some e -> status_entry t ~now e :: acc
           | None -> acc)
         [] t.order)
  else
    match Hashtbl.find_opt t.entries fingerprint with
    | Some e -> [ status_entry t ~now e ]
    | None -> []

(* -- lifecycle ----------------------------------------------------------- *)

let drain t = t.draining <- true
let draining t = t.draining
let in_flight t = List.fold_left (fun n e -> n + Lease.in_flight e.lease) 0 (active_entries t)
let idle t = active_entries t = []
let last_activity t = t.last_activity

let shutdown t =
  (* Rewrite the WAL as one compacted segment of the final state — the
     next startup replays a minimal, tear-free log. *)
  let wal_dir = Wal.dir t.wal in
  Wal.close t.wal;
  let w =
    Wal.start ~dir:wal_dir
      ~initial:(records_of_state ~entries:t.entries ~banned:t.banned t.order)
  in
  Wal.close w
