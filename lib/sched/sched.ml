(* The multi-campaign scheduler core (DESIGN.md §12): a durable
   submission queue keyed by campaign fingerprint, one lease table per
   campaign, round-robin shard dispatch across every active campaign,
   and report caching.

   Durability is split between two artifacts, each reusing an existing
   codec:

     <dir>/wal/seg-*.wal      the queue itself (Wal): which campaigns
                              were submitted, finished, parked or
                              cancelled — idempotent records, replayed
                              and compacted at startup;
     <dir>/campaigns/<md5>.ckpt
                              per-campaign progress (Fmc_dist.Ckpt v2):
                              every accepted shard blob, written after
                              each completion.

   kill -9 recovery is therefore: replay the WAL to rebuild the queue in
   submission order, then reattach each campaign's checkpoint to seed
   its lease table's Done set. A campaign whose checkpoint holds every
   shard is finished even if the crash beat the "finished" WAL record;
   a campaign whose WAL says finished but whose checkpoint is missing
   shards is quietly re-queued — shard results depend only on
   (seed, shard), so re-running them reproduces the identical report.

   Nothing here reads the wall clock or takes locks: every operation is
   given [now] and the service serializes calls under its own mutex,
   the same split Lease and Coordinator use. *)

open Fmc
module Protocol = Fmc_dist.Protocol
module Lease = Fmc_dist.Lease
module Ckpt = Fmc_dist.Ckpt
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics
module Rate = Fmc_obs.Rate
module Clock = Fmc_obs.Clock

type config = {
  queue_depth : int;  (* max campaigns queued or running; 0 = unbounded *)
  ttl_s : float;  (* shard lease lifetime without a heartbeat *)
  wall_budget_s : float;  (* running wall clock before a campaign is parked; 0 = off *)
  retry_after_s : float;  (* resubmission hint in admission rejections *)
  rate_halflife_s : float;  (* pool throughput EWMA window *)
}

let default_config =
  { queue_depth = 16; ttl_s = 30.; wall_budget_s = 0.; retry_after_s = 5.; rate_halflife_s = 30. }

type phase = Active | Finished | Parked of string | Cancelled

type entry = {
  spec : Protocol.spec;
  fp : string;
  key : string;  (* md5 hex of fp: checkpoint filename *)
  plan : (int * int) array;
  lease : Lease.t;
  blobs : (int, string) Hashtbl.t;
  mutable quarantined : Campaign.quarantine_entry list;  (* newest first *)
  mutable phase : phase;
  mutable started_at : float option;
  mutable done_samples : int;
  mutable elapsed_s : float;  (* start-to-finish wall clock, once Finished *)
}

type mx = {
  submissions : Metrics.counter option;
  rejected : Metrics.counter option;
  cache_hits : Metrics.counter option;
  recoveries : Metrics.counter option;
  finished : Metrics.counter option;
  parked : Metrics.counter option;
  cancelled : Metrics.counter option;
  wal_records : Metrics.counter option;
  wal_torn : Metrics.counter option;
  q_depth : Metrics.gauge option;
  running : Metrics.gauge option;
  in_flight : Metrics.gauge option;
  wal_fsync : Metrics.histogram option;
}

let mx_create (obs : Obs.t) =
  match obs.Obs.metrics with
  | None ->
      {
        submissions = None;
        rejected = None;
        cache_hits = None;
        recoveries = None;
        finished = None;
        parked = None;
        cancelled = None;
        wal_records = None;
        wal_torn = None;
        q_depth = None;
        running = None;
        in_flight = None;
        wal_fsync = None;
      }
  | Some r ->
      let c help name = Some (Metrics.counter r ~help name) in
      let g help name = Some (Metrics.gauge r ~help name) in
      {
        submissions = c "campaign submissions accepted" "fmc_sched_submissions_total";
        rejected = c "submissions refused by admission control" "fmc_sched_rejected_total";
        cache_hits = c "submissions answered from the report cache" "fmc_sched_cache_hits_total";
        recoveries = c "campaigns recovered from WAL + checkpoints" "fmc_sched_recoveries_total";
        finished = c "campaigns run to completion" "fmc_sched_campaigns_finished_total";
        parked = c "campaigns parked by quarantine policy" "fmc_sched_parked_total";
        cancelled = c "campaigns cancelled by request" "fmc_sched_cancelled_total";
        wal_records = c "intact WAL records replayed at startup" "fmc_sched_wal_records_total";
        wal_torn = c "torn WAL tails detected at startup" "fmc_sched_wal_torn_records_total";
        q_depth = g "campaigns queued or running" "fmc_sched_queue_depth";
        running = g "campaigns with completed or in-flight shards" "fmc_sched_campaigns_running";
        in_flight = g "shard leases currently live across campaigns" "fmc_sched_shards_in_flight";
        wal_fsync =
          Some
            (Metrics.histogram r ~help:"durable WAL append latency (write + fsync)"
               ~buckets:[| 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1. |]
               "fmc_sched_wal_fsync_seconds");
      }

let cinc = Option.iter Metrics.inc
let cadd c v = Option.iter (fun c -> Metrics.add c v) c
let gset g v = Option.iter (fun g -> Metrics.set g (float_of_int v)) g

type t = {
  config : config;
  dir : string;
  wal : Wal.t;
  entries : (string, entry) Hashtbl.t;
  mutable order : string list;  (* submission order, oldest first *)
  mutable rotation : int;  (* round-robin cursor over active entries *)
  rate : Rate.t;
  mutable draining : bool;
  mutable last_activity : float;
  mx : mx;
}

(* Observation-only exception to the injected-[now] design: the fsync
   stopwatch reads the process clock directly, because callers inject
   logical time (tests drive a fake [now]) while the fsync cost being
   measured is real. *)
let wal_append t payload =
  match t.mx.wal_fsync with
  | None -> Wal.append t.wal payload
  | Some h ->
      let t0 = Clock.now () in
      Wal.append t.wal payload;
      Metrics.observe h (Float.max 0. (Clock.now () -. t0))

(* -- WAL records --------------------------------------------------------- *)

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s
let rec_submit spec = "submit\n" ^ Protocol.spec_line spec
let rec_finished fp elapsed = Printf.sprintf "finished\n%s\n%h" fp elapsed
let rec_parked fp reason = Printf.sprintf "parked\n%s\n%s" fp (one_line reason)
let rec_cancelled fp = "cancelled\n" ^ fp

type wal_op =
  | Op_submit of Protocol.spec
  | Op_finished of string * float
  | Op_parked of string * string
  | Op_cancelled of string

let parse_record payload =
  match String.split_on_char '\n' payload with
  | [ "submit"; line ] -> (
      match Protocol.spec_of_line line with Ok sp -> Some (Op_submit sp) | Error _ -> None)
  | [ "finished"; fp; e ] ->
      Some (Op_finished (fp, Option.value (float_of_string_opt e) ~default:0.))
  | [ "parked"; fp; reason ] -> Some (Op_parked (fp, reason))
  | [ "cancelled"; fp ] -> Some (Op_cancelled fp)
  | _ -> None

(* -- entries ------------------------------------------------------------- *)

let ckpt_dir_of dir = Filename.concat dir "campaigns"
let ckpt_dir t = ckpt_dir_of t.dir
let ckpt_path_of dir e = Filename.concat (ckpt_dir_of dir) (e.key ^ ".ckpt")
let ckpt_path t e = ckpt_path_of t.dir e

let make_entry config spec =
  let fp = Protocol.spec_fingerprint spec in
  let plan =
    Ssf.shard_plan ~samples:spec.Protocol.sp_samples ~shard_size:spec.Protocol.sp_shard_size
  in
  {
    spec;
    fp;
    key = Digest.to_hex (Digest.string fp);
    plan;
    lease = Lease.create ~plan ~ttl:config.ttl_s;
    blobs = Hashtbl.create 16;
    quarantined = [];
    phase = Active;
    started_at = None;
    done_samples = 0;
    elapsed_s = 0.;
  }

let spec_valid (sp : Protocol.spec) =
  if sp.Protocol.sp_samples <= 0 then Error "non-positive sample count"
  else if sp.Protocol.sp_shard_size <= 0 then Error "non-positive shard size"
  else
    (* Reject unresolvable fault models at submission, not when a pool
       worker fails to build the job (which would burn its reconnect
       budget on a spec that can never run). *)
    match Fmc_fault.Registry.parse sp.Protocol.sp_fault_model with
    | Ok _ -> Ok ()
    | Error e -> Error (Fmc_fault.Registry.error_message e)

let active e = match e.phase with Active -> true | Finished | Parked _ | Cancelled -> false

let iter_ordered t f =
  List.iter (fun fp -> match Hashtbl.find_opt t.entries fp with Some e -> f e | None -> ()) t.order

let active_entries t =
  List.filter_map
    (fun fp ->
      match Hashtbl.find_opt t.entries fp with Some e when active e -> Some e | _ -> None)
    t.order

let refresh_gauges t =
  let act = active_entries t in
  gset t.mx.q_depth (List.length act);
  gset t.mx.running
    (List.length (List.filter (fun e -> e.done_samples > 0 || Lease.in_flight e.lease > 0) act));
  gset t.mx.in_flight (List.fold_left (fun n e -> n + Lease.in_flight e.lease) 0 act)

let save_ckpt t e =
  let shards =
    Hashtbl.fold (fun i b acc -> (i, b) :: acc) e.blobs []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  (if not (Sys.file_exists (ckpt_dir t)) then
     try Unix.mkdir (ckpt_dir t) 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Ckpt.save ~path:(ckpt_path t e)
    { Ckpt.st_fingerprint = e.fp; st_shards = shards; st_quarantined = List.rev e.quarantined }

(* -- recovery ------------------------------------------------------------ *)

let shard_len e shard = if shard >= 0 && shard < Array.length e.plan then snd e.plan.(shard) else 0

let attach_ckpt ~dir e =
  let path = ckpt_path_of dir e in
  if Sys.file_exists path then
    match Ckpt.load ~path with
    | Error _ -> ()  (* unreadable progress: re-run the campaign from scratch *)
    | Ok st when st.Ckpt.st_fingerprint <> e.fp -> ()
    | Ok st ->
        List.iter
          (fun (shard, blob) ->
            if shard >= 0 && shard < Array.length e.plan && not (Hashtbl.mem e.blobs shard)
            then begin
              Lease.force_complete e.lease ~shard;
              Hashtbl.replace e.blobs shard blob;
              e.done_samples <- e.done_samples + shard_len e shard
            end)
          st.Ckpt.st_shards;
        e.quarantined <- List.rev st.Ckpt.st_quarantined

(* Rebuild the queue from replayed WAL records, then reattach each
   campaign's checkpoint. Runs before the WAL handle exists (the old
   segments must survive until the compacted one is durable), so it
   only touches the entry tables. *)
let recover ~config ~dir ~entries records =
  let order = ref [] in
  List.iter
    (fun payload ->
      match parse_record payload with
      | None -> ()
      | Some (Op_submit spec) -> (
          match spec_valid spec with
          | Error _ -> ()
          | Ok () -> (
              let fp = Protocol.spec_fingerprint spec in
              match Hashtbl.find_opt entries fp with
              | Some e ->
                  (* Revival after a cancel; duplicates from compaction
                     land here too and change nothing. *)
                  if e.phase = Cancelled then e.phase <- Active
              | None ->
                  let e = make_entry config spec in
                  Hashtbl.replace entries fp e;
                  order := fp :: !order))
      | Some (Op_finished (fp, elapsed)) -> (
          match Hashtbl.find_opt entries fp with
          | Some e ->
              e.phase <- Finished;
              e.elapsed_s <- elapsed
          | None -> ())
      | Some (Op_parked (fp, reason)) -> (
          match Hashtbl.find_opt entries fp with
          | Some e -> if e.phase <> Finished then e.phase <- Parked reason
          | None -> ())
      | Some (Op_cancelled fp) -> (
          match Hashtbl.find_opt entries fp with
          | Some e -> if e.phase <> Finished then e.phase <- Cancelled
          | None -> ()))
    records;
  let order = List.rev !order in
  (* Reconcile phases against the evidence: a complete checkpoint
     finishes the campaign even if the crash beat the "finished" WAL
     record, and a "finished" record without the shards to back it
     re-queues the campaign (re-running is free and bit-exact). *)
  List.iter
    (fun fp ->
      match Hashtbl.find_opt entries fp with
      | None -> ()
      | Some e -> (
          attach_ckpt ~dir e;
          match e.phase with
          | Finished -> if not (Lease.finished e.lease) then e.phase <- Active
          | Active -> if Lease.finished e.lease then e.phase <- Finished
          | Parked _ -> if Lease.finished e.lease then e.phase <- Finished
          | Cancelled -> ()))
    order;
  order

let records_of_state ~entries order =
  List.concat_map
    (fun fp ->
      match Hashtbl.find_opt entries fp with
      | None -> []
      | Some e -> (
          let base = rec_submit e.spec in
          match e.phase with
          | Active -> [ base ]
          | Finished -> [ base; rec_finished e.fp e.elapsed_s ]
          | Parked reason -> [ base; rec_parked e.fp reason ]
          | Cancelled -> [ base; rec_cancelled e.fp ]))
    order

let create ?(obs = Obs.disabled) config ~dir ~now =
  if config.ttl_s <= 0. then invalid_arg "Sched.create: non-positive ttl";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let wal_dir = Filename.concat dir "wal" in
  let replayed = Wal.replay ~dir:wal_dir in
  let mx = mx_create obs in
  cadd mx.wal_records (float_of_int (List.length replayed.Wal.records));
  cadd mx.wal_torn (float_of_int replayed.Wal.torn);
  let entries = Hashtbl.create 16 in
  let order = recover ~config ~dir ~entries replayed.Wal.records in
  let recovered = Hashtbl.length entries in
  if recovered > 0 then cadd mx.recoveries (float_of_int recovered);
  (* Compacting here also truncates any torn tail: the next replay reads
     a minimal, tear-free log. *)
  let t =
    {
      config;
      dir;
      wal = Wal.start ~dir:wal_dir ~initial:(records_of_state ~entries order);
      entries;
      order;
      rotation = 0;
      rate = Rate.create ~halflife_s:config.rate_halflife_s ~now ();
      draining = false;
      last_activity = now;
      mx;
    }
  in
  refresh_gauges t;
  t

(* -- phase transitions --------------------------------------------------- *)

let finalize t e ~now =
  if e.phase <> Finished then begin
    e.phase <- Finished;
    e.elapsed_s <- (match e.started_at with Some s -> now -. s | None -> 0.);
    wal_append t (rec_finished e.fp e.elapsed_s);
    cinc t.mx.finished;
    refresh_gauges t
  end

let park t e reason =
  if active e then begin
    e.phase <- Parked reason;
    wal_append t (rec_parked e.fp reason);
    cinc t.mx.parked;
    refresh_gauges t
  end

(* -- submission ---------------------------------------------------------- *)

let position_of t e =
  let rec go n = function
    | [] -> n
    | fp :: rest ->
        if fp = e.fp then n
        else
          go
            (match Hashtbl.find_opt t.entries fp with
            | Some o when active o -> n + 1
            | _ -> n)
            rest
  in
  go 0 t.order

let submit t ~now spec =
  t.last_activity <- now;
  match spec_valid spec with
  | Error reason -> `Invalid reason
  | Ok () -> (
      let fp = Protocol.spec_fingerprint spec in
      match Hashtbl.find_opt t.entries fp with
      | Some e -> (
          match e.phase with
          | Finished ->
              cinc t.mx.cache_hits;
              `Cached
          | Cancelled ->
              e.phase <- Active;
              wal_append t (rec_submit e.spec);
              cinc t.mx.submissions;
              refresh_gauges t;
              `Queued (position_of t e)
          | Active | Parked _ -> `Queued (position_of t e))
      | None ->
          let live = List.length (active_entries t) in
          if t.config.queue_depth > 0 && live >= t.config.queue_depth then begin
            cinc t.mx.rejected;
            `Rejected t.config.retry_after_s
          end
          else begin
            let e = make_entry t.config spec in
            Hashtbl.replace t.entries fp e;
            t.order <- t.order @ [ fp ];
            wal_append t (rec_submit spec);
            cinc t.mx.submissions;
            refresh_gauges t;
            `Queued (position_of t e)
          end)

let cancel t ~fingerprint =
  match Hashtbl.find_opt t.entries fingerprint with
  | None -> `Unknown
  | Some e -> (
      match e.phase with
      | Finished -> `Already_finished
      | Cancelled -> `Cancelled
      | Active | Parked _ ->
          e.phase <- Cancelled;
          wal_append t (rec_cancelled e.fp);
          cinc t.mx.cancelled;
          refresh_gauges t;
          `Cancelled)

(* -- dispatch ------------------------------------------------------------ *)

let sweep t ~now =
  iter_ordered t (fun e ->
      if active e then begin
        ignore (Lease.sweep e.lease ~now : int);
        (match (e.started_at, t.config.wall_budget_s) with
        | Some s, budget when budget > 0. && now -. s > budget ->
            park t e
              (Printf.sprintf "wall-clock budget exhausted (%.1fs > %.1fs)" (now -. s) budget)
        | _ -> ());
        if Lease.finished e.lease then finalize t e ~now
      end);
  refresh_gauges t

let next_job t ~now ~worker ~scope =
  t.last_activity <- now;
  if t.draining then `Drained
  else
    let try_entry e =
      if not (active e) then None
      else
        match Lease.acquire e.lease ~now ~worker with
        | `Assign a ->
            if e.started_at = None then e.started_at <- Some now;
            Some (`Job (e.spec, a))
        | `Finished ->
            finalize t e ~now;
            None
        | `Wait -> None
    in
    if scope = Protocol.pool_fingerprint then begin
      let act = active_entries t in
      let n = List.length act in
      if n = 0 then `Wait
      else begin
        (* Round-robin across campaigns: start one past the campaign
           that got the previous lease, so one long campaign cannot
           starve the rest of the queue. *)
        let arr = Array.of_list act in
        let start = t.rotation mod n in
        let rec probe i =
          if i = n then `Wait
          else
            let idx = (start + i) mod n in
            match try_entry arr.(idx) with
            | Some job ->
                t.rotation <- idx + 1;
                refresh_gauges t;
                job
            | None -> probe (i + 1)
        in
        probe 0
      end
    end
    else
      match Hashtbl.find_opt t.entries scope with
      | None -> `Unknown_scope
      | Some e -> (
          match e.phase with
          | Finished -> `Drained
          | Cancelled -> `Drained
          | Parked _ -> `Wait
          | Active -> (
              match try_entry e with
              | Some job ->
                  refresh_gauges t;
                  job
              | None -> if Lease.finished e.lease then `Drained else `Wait))

let heartbeat t ~now ~fingerprint ~shard ~epoch =
  t.last_activity <- now;
  match Hashtbl.find_opt t.entries fingerprint with
  | None -> `Stale
  | Some e -> (
      match e.phase with
      | Active | Parked _ -> Lease.heartbeat e.lease ~now ~shard ~epoch
      | Finished | Cancelled -> `Stale)

let complete t ~now ~fingerprint ~shard ~epoch ~tally ~quarantined =
  t.last_activity <- now;
  match Hashtbl.find_opt t.entries fingerprint with
  | None -> `Unknown
  | Some e -> (
      match e.phase with
      | Cancelled -> `Unknown
      | Finished | Active | Parked _ -> (
          match Ssf.Tally.of_string tally with
          | Error msg -> `Invalid msg
          | Ok _ -> (
              match Lease.complete e.lease ~shard ~epoch with
              | `Accepted ->
                  Hashtbl.replace e.blobs shard tally;
                  e.quarantined <- List.rev_append quarantined e.quarantined;
                  e.done_samples <- e.done_samples + shard_len e shard;
                  Rate.observe t.rate ~now (float_of_int (shard_len e shard));
                  save_ckpt t e;
                  if Lease.finished e.lease && e.phase = Active then finalize t e ~now;
                  refresh_gauges t;
                  `Accepted
              | (`Duplicate | `Stale | `Unknown) as r -> r)))

(* -- reports and status -------------------------------------------------- *)

let report t ~fingerprint =
  match Hashtbl.find_opt t.entries fingerprint with
  | Some e when e.phase = Finished ->
      let shards =
        Hashtbl.fold (fun i b acc -> (i, b) :: acc) e.blobs []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      in
      let quarantined =
        List.sort
          (fun a b -> compare a.Campaign.q_index b.Campaign.q_index)
          (List.rev e.quarantined)
      in
      Some (shards, quarantined, e.elapsed_s)
  | Some _ | None -> None

let status_entry t ~now e =
  let queue_len = List.length (active_entries t) in
  let state, position, detail =
    match e.phase with
    | Finished -> (Protocol.Finished, -1, "")
    | Cancelled -> (Protocol.Cancelled, -1, "")
    | Parked reason -> (Protocol.Parked, -1, reason)
    | Active ->
        let st =
          if e.done_samples > 0 || Lease.in_flight e.lease > 0 then Protocol.Running
          else Protocol.Queued
        in
        (st, position_of t e, "")
  in
  let rate = Rate.per_sec t.rate ~now in
  let eta =
    match e.phase with
    | Finished | Cancelled -> 0.
    | Parked _ -> -1.
    | Active ->
        let own = e.spec.Protocol.sp_samples - e.done_samples in
        (* Everything queued ahead shares the pool, so its backlog is
           in front of ours in expectation. *)
        let ahead =
          List.fold_left
            (fun (acc, seen) fp ->
              if seen || fp = e.fp then (acc, true)
              else
                match Hashtbl.find_opt t.entries fp with
                | Some o when active o ->
                    (acc + (o.spec.Protocol.sp_samples - o.done_samples), false)
                | _ -> (acc, false))
            (0, false) t.order
          |> fst
        in
        (match Rate.eta_s t.rate ~now ~remaining:(own + ahead) with Some s -> s | None -> -1.)
  in
  {
    Protocol.st_fingerprint = e.fp;
    st_state = state;
    st_position = position;
    st_queue_len = queue_len;
    st_samples_done = e.done_samples;
    st_samples_total = e.spec.Protocol.sp_samples;
    st_rate = rate;
    st_eta_s = eta;
    st_detail = detail;
  }

let status t ~now ~fingerprint =
  if fingerprint = "" then
    List.rev
      (List.fold_left
         (fun acc fp ->
           match Hashtbl.find_opt t.entries fp with
           | Some e -> status_entry t ~now e :: acc
           | None -> acc)
         [] t.order)
  else
    match Hashtbl.find_opt t.entries fingerprint with
    | Some e -> [ status_entry t ~now e ]
    | None -> []

(* -- lifecycle ----------------------------------------------------------- *)

let drain t = t.draining <- true
let draining t = t.draining
let in_flight t = List.fold_left (fun n e -> n + Lease.in_flight e.lease) 0 (active_entries t)
let idle t = active_entries t = []
let last_activity t = t.last_activity

let shutdown t =
  (* Rewrite the WAL as one compacted segment of the final state — the
     next startup replays a minimal, tear-free log. *)
  let wal_dir = Wal.dir t.wal in
  Wal.close t.wal;
  let w = Wal.start ~dir:wal_dir ~initial:(records_of_state ~entries:t.entries t.order) in
  Wal.close w
