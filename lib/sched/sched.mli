(** Multi-campaign scheduler core (DESIGN.md §12): durable submission
    queue, per-campaign lease tables, round-robin shard dispatch, and
    report caching by campaign fingerprint.

    State lives under one directory: [<dir>/wal/] holds the {!Wal}
    segments describing the queue (submit/finished/parked/cancelled,
    all idempotent), [<dir>/campaigns/<md5>.ckpt] the per-campaign
    {!Fmc_dist.Ckpt} progress written after every accepted shard.
    {!create} recovers both after [kill -9]: the WAL replay rebuilds
    the queue in submission order (counted on
    [fmc_sched_recoveries_total]), checkpoints reattach finished
    shards, and the log is compacted to a fresh tear-free segment.

    Like {!Fmc_dist.Lease}, nothing here reads the wall clock ([now] is
    always injected) and nothing takes locks — the {!Service} wraps
    every call in its connection-handling mutex. *)

open Fmc
module Protocol = Fmc_dist.Protocol
module Lease = Fmc_dist.Lease

type config = {
  queue_depth : int;
      (** max campaigns queued or running before submissions are
          rejected; 0 disables admission control *)
  ttl_s : float;  (** shard lease lifetime without a heartbeat *)
  wall_budget_s : float;
      (** a campaign running (wall clock since its first lease) longer
          than this is parked — it stops consuming the pool but the
          service lives on; 0 disables *)
  retry_after_s : float;  (** resubmission hint carried by rejections *)
  rate_halflife_s : float;  (** pool-throughput EWMA window ({!Fmc_obs.Rate}) *)
  audit_rate : float;
      (** fraction of accepted shards re-executed on a different worker
          and digest-compared ({!Fmc_audit.Audit}, DESIGN.md §16).
          Selection is a pure function of each campaign's
          fingerprint-derived seed — restart-stable across [kill -9].
          0 disables and keeps checkpoints byte-identical to v2. *)
  speculate_factor : float;
      (** duplicate a leased shard onto an idle worker once its lease age
          exceeds this multiple of the fleet per-shard EWMA; first valid
          completion wins, the loser fences. 0 disables. *)
}

val default_config : config
(** depth 16, ttl 30s, no wall budget, retry-after 5s, 30s half-life,
    audit and speculation off. *)

type t

val create : ?obs:Fmc_obs.Obs.t -> config -> dir:string -> now:float -> t
(** Open (creating if needed) the state directory, replay + compact the
    WAL, reattach campaign checkpoints. Under [obs], registers the
    [fmc_sched_*] counters and gauges. *)

val submit :
  t ->
  now:float ->
  Protocol.spec ->
  [ `Queued of int  (** accepted (or already queued) at this position *)
  | `Cached  (** finished earlier — the report is ready to fetch *)
  | `Rejected of float  (** queue full; retry after this many seconds *)
  | `Invalid of string  (** malformed spec (non-positive samples/shard) *) ]

val cancel : t -> fingerprint:string -> [ `Cancelled | `Already_finished | `Unknown ]
(** Cancelled campaigns stop receiving leases and drop in-flight results;
    resubmitting the same spec revives them from scratch. *)

val next_job :
  t ->
  now:float ->
  worker:string ->
  scope:string ->
  [ `Job of Protocol.spec * Lease.assignment
  | `Wait  (** nothing leasable right now — poll again *)
  | `Drained  (** stop asking: draining, or the scoped campaign is done *)
  | `Unknown_scope  (** concrete scope names a campaign never submitted *)
  | `Banned  (** the worker is quarantined: refuse it permanently *) ]
(** [scope] is the connection's Hello fingerprint:
    {!Protocol.pool_fingerprint} draws round-robin from every active
    campaign (expiring overdue leases on the way); a concrete
    fingerprint serves only that campaign, which is how pre-scheduler
    [faultmc worker] processes keep working. With [audit_rate] > 0, a
    campaign whose shards are all done may still hand out audit
    re-executions (under fresh lease epochs); with [speculate_factor]
    > 0, a straggling shard may be speculatively duplicated. *)

val is_banned : t -> worker:string -> bool
(** Quarantined by an audit verdict (or three digest mismatches) —
    durable across restarts via the WAL. *)

val heartbeat :
  t -> now:float -> fingerprint:string -> shard:int -> epoch:int -> [ `Ok | `Stale ]

val complete :
  t ->
  now:float ->
  fingerprint:string ->
  shard:int ->
  epoch:int ->
  worker:string ->
  digest:string option ->
  tally:string ->
  quarantined:Campaign.quarantine_entry list ->
  [ `Accepted
  | `Duplicate
  | `Stale
  | `Unknown
  | `Invalid of string
  | `Mismatch  (** the carried digest disagrees with the payload *)
  | `Audited of string  (** an audit re-execution landed (reason text) *) ]
(** [`Accepted] persists the campaign checkpoint before returning and
    finalizes the campaign (WAL "finished" record, report cached) when
    it was the last shard and no audit is pending. [`Invalid]: the tally
    blob does not decode — refused without consuming the shard's one
    completion. [digest] is the v5 extension's carried digest (if any);
    it is always recomputed server-side, and a disagreement is a
    [`Mismatch] strike against [worker] (three strikes quarantine it).
    Completions under an audit epoch settle the audit instead of the
    lease; a quorum verdict quarantines the minority worker and
    invalidates its unvindicated shards across every active campaign. *)

val report :
  t ->
  fingerprint:string ->
  ((int * string) list * Campaign.quarantine_entry list * float) option
(** The finished campaign's (shard blobs ascending, quarantine log by
    sample index, start-to-finish seconds); [None] until finished. *)

val status : t -> now:float -> fingerprint:string -> Protocol.status_entry list
(** [""] lists every campaign in submission order; a concrete
    fingerprint yields one entry, or [] if unknown. ETAs combine the
    pool {!Fmc_obs.Rate} with the backlog queued ahead. *)

val sweep : t -> now:float -> unit
(** Expire overdue leases and park campaigns over their wall budget —
    the service calls this on its select tick. *)

val drain : t -> unit
(** Stop issuing leases ({!next_job} answers [`Drained]); in-flight
    shards still heartbeat and complete. *)

val draining : t -> bool
val in_flight : t -> int
val idle : t -> bool
(** No campaign is queued or running (finished/parked/cancelled only). *)

val last_activity : t -> float
(** [now] of the most recent submit/lease/heartbeat/complete — the
    idle-exit clock. *)

val shutdown : t -> unit
(** Flush and compact the WAL to a single segment of the final state. *)
