(* The scheduler's socket service ([faultmc sched]): accept loop,
   per-connection threads, and the mapping between Protocol messages and
   Sched operations. Mirrors Fmc_dist.Coordinator's structure — select
   tick + thread per connection + one state mutex — but every connection
   carries a scope (its Hello fingerprint): pool workers and control
   clients announce Protocol.pool_fingerprint, while campaign-scoped
   connections (legacy [faultmc worker], [evaluate --connect], and
   [submit --wait]) name one campaign and speak the pre-scheduler
   message set against it unchanged.

   Shutdown protocol: SIGTERM (or SIGINT, or a test's request_drain)
   sets the drain flag; the tick stops leasing, in-flight shards finish
   and are checkpointed, and once none remain the loop exits, compacts
   the WAL and returns. An idle scheduler (no campaign queued or
   running) exits on its own after [max_idle_s] of no useful work. *)

module Protocol = Fmc_dist.Protocol
module Wire = Fmc_dist.Wire
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics
module Clock = Fmc_obs.Clock
module Span = Fmc_obs.Span
module Fleet = Fmc_obs.Fleet
module Telemetry = Fmc_obs.Telemetry
module Traceid = Fmc_obs.Traceid

type config = {
  addr : Wire.addr;
  state_dir : string;
  sched : Sched.config;
  max_idle_s : float;  (* exit after this long idle with an empty queue; 0 = never *)
  io_deadline_s : float;
  handle_signals : bool;
}

let default_config ~addr ~state_dir =
  {
    addr;
    state_dir;
    sched = Sched.default_config;
    max_idle_s = 0.;
    io_deadline_s = 120.;
    handle_signals = true;
  }

type stop_reason = Drained | Idle

type outcome = { sv_reason : stop_reason }

(* -- fleet view (scrape endpoint surface) -------------------------------- *)

type health = {
  h_draining : bool;
  h_queue_depth : int;  (* campaigns queued or running *)
  h_in_flight : int;  (* live shard leases across campaigns *)
  h_connected : int;
  h_wal_torn : int;  (* torn WAL tails detected at the last startup *)
}

type view = {
  vw_metrics : unit -> string;
  vw_health : unit -> health;
  vw_status : unit -> Protocol.status_entry list;
  vw_workers : unit -> (string * Fmc_obs.Fleet.worker_info) list;
  vw_trace_json : unit -> string;
}

type state = {
  mutex : Mutex.t;
  sched : Sched.t;
  config : config;
  drain_flag : bool Atomic.t;
  mutable connected : int;
  connections : Metrics.gauge option;
  draining_g : Metrics.gauge option;
  fleet : Fleet.t;  (* absorbed v4 pool-worker telemetry; has its own lock *)
}

type control = { request_drain : unit -> unit }

let locked st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

let gset g v = Option.iter (fun g -> Metrics.set g (float_of_int v)) g

exception Done_serving

(* -- message handling (call under the lock) ------------------------------ *)

let complete_reply = function
  | `Accepted -> Protocol.Ack { accepted = true; reason = "" }
  | `Duplicate -> Protocol.Ack { accepted = true; reason = "duplicate" }
  | `Stale -> Protocol.Ack { accepted = false; reason = "stale epoch" }
  | `Unknown -> Protocol.Ack { accepted = false; reason = "unknown shard or campaign" }
  | `Invalid msg -> Protocol.Ack { accepted = false; reason = "undecodable tally: " ^ msg }
  | `Mismatch -> Protocol.Ack { accepted = false; reason = "result digest mismatch" }
  | `Audited reason -> Protocol.Ack { accepted = true; reason }

let handle_msg st ~scope ~worker ~digest msg =
  let now = Clock.now () in
  let sched = st.sched in
  let pool = scope = Protocol.pool_fingerprint in
  match (msg : Protocol.client_msg) with
  | Protocol.Hello _ -> Protocol.Reject { reason = "duplicate hello" }
  | Protocol.Submit { spec } -> (
      match Sched.submit sched ~now spec with
      | `Queued position ->
          Protocol.Submitted
            { fingerprint = Protocol.spec_fingerprint spec; position; cached = false }
      | `Cached ->
          Protocol.Submitted
            { fingerprint = Protocol.spec_fingerprint spec; position = 0; cached = true }
      | `Rejected retry_after_s ->
          Protocol.Sched_rejected { retry_after_s; reason = "queue full" }
      | `Invalid reason -> Protocol.Reject { reason = "invalid campaign spec: " ^ reason })
  | Protocol.Status_req { fingerprint } -> (
      match Sched.status sched ~now ~fingerprint with
      | [] when fingerprint <> "" -> Protocol.Reject { reason = "unknown campaign" }
      | entries -> Protocol.Status { entries })
  | Protocol.Cancel { fingerprint } -> (
      match Sched.cancel sched ~fingerprint with
      | `Cancelled -> Protocol.Ack { accepted = true; reason = "" }
      | `Already_finished ->
          Protocol.Ack { accepted = false; reason = "already finished (report is cached)" }
      | `Unknown -> Protocol.Ack { accepted = false; reason = "unknown campaign" })
  | Protocol.Request_shard -> (
      match Sched.next_job sched ~now ~worker ~scope with
      | `Job (spec, { Sched.Lease.shard; epoch; start; len }) ->
          if pool then Protocol.Job { spec; shard; epoch; start; len }
          else Protocol.Assign { shard; epoch; start; len }
      | `Wait -> Protocol.No_work { finished = false }
      | `Drained -> Protocol.No_work { finished = true }
      | `Unknown_scope -> Protocol.Reject { reason = "unknown campaign" }
      | `Banned -> Protocol.Reject { reason = "worker quarantined: failed result audit" })
  | Protocol.Heartbeat { shard; epoch; samples_done = _ } ->
      if pool then Protocol.Reject { reason = "pool connections heartbeat with job_heartbeat" }
      else (
        match Sched.heartbeat sched ~now ~fingerprint:scope ~shard ~epoch with
        | `Ok -> Protocol.Ack { accepted = true; reason = "" }
        | `Stale -> Protocol.Ack { accepted = false; reason = "lease lost" })
  | Protocol.Job_heartbeat { fingerprint; shard; epoch; samples_done = _ } -> (
      match Sched.heartbeat sched ~now ~fingerprint ~shard ~epoch with
      | `Ok -> Protocol.Ack { accepted = true; reason = "" }
      | `Stale -> Protocol.Ack { accepted = false; reason = "lease lost" })
  | Protocol.Shard_done { shard; epoch; tally; quarantined } ->
      if pool then Protocol.Reject { reason = "pool connections complete with job_done" }
      else
        complete_reply
          (Sched.complete sched ~now ~fingerprint:scope ~shard ~epoch ~worker ~digest ~tally
             ~quarantined)
  | Protocol.Job_done { fingerprint; shard; epoch; tally; quarantined } ->
      complete_reply
        (Sched.complete sched ~now ~fingerprint ~shard ~epoch ~worker ~digest ~tally ~quarantined)
  | Protocol.Fetch_report ->
      if pool then Protocol.Reject { reason = "fetch_report needs a campaign-scoped connection" }
      else (
        match Sched.report sched ~fingerprint:scope with
        | Some (shards, quarantined, elapsed_s) ->
            Protocol.Report { shards; quarantined; elapsed_s }
        | None -> (
            match Sched.status sched ~now ~fingerprint:scope with
            | [] -> Protocol.Reject { reason = "unknown campaign" }
            | entries -> Protocol.Status { entries }))
  | Protocol.Goodbye -> raise Done_serving

(* -- per-connection protocol --------------------------------------------- *)

let send ?ext conn msg =
  let tag, payload = Protocol.encode_server_ext ?ext msg in
  Wire.write_frame conn ~tag payload

(* Outside the state mutex; the fleet store has its own lock. A blob
   that does not decode is dropped — telemetry is observation-only. *)
let absorb_telemetry st ~worker (ext : Protocol.extension) =
  match ext.Protocol.ext_telemetry with
  | None -> ()
  | Some blob -> (
      match Telemetry.decode blob with
      | Ok tm -> Fleet.absorb st.fleet ~worker tm
      | Error _ -> ())

(* Trace/span ids stamped on leases handed to v4 peers: pure functions
   of the campaign fingerprint and shard index, so they agree with what
   any other coordinator of the same campaign would stamp. *)
let trace_ext ~fingerprint ~shard =
  {
    Protocol.no_extension with
    Protocol.ext_trace =
      Some (Traceid.trace_id ~fingerprint, Traceid.span_id ~fingerprint ~shard);
  }

(* First frame must be an accepted-version Hello; any fingerprint is an
   acceptable scope (a concrete one may name a campaign that is about
   to be submitted on this very connection). Quarantined workers are
   refused here, terminally — a handshake Reject is the one refusal a
   worker does not retry. v1 peers get a v1-framed Reject they can
   decode, as the coordinator does. *)
let expect_hello st conn =
  let reject reason =
    send conn (Protocol.Reject { reason });
    raise Done_serving
  in
  match Wire.read_frame_raw conn with
  | `Corrupt (tag, raw) -> (
      match Protocol.v1_hello ~tag raw with
      | Some v ->
          let _, payload =
            Protocol.encode_server
              (Protocol.Reject
                 {
                   reason =
                     Printf.sprintf
                       "protocol version %d is no longer supported: this scheduler speaks v%d; \
                        upgrade the worker"
                       v Protocol.version;
                 })
          in
          Wire.write_frame_v1 conn ~tag:'X' payload;
          raise Done_serving
      | None -> raise Done_serving)
  | `Ok (tag, payload) -> (
      match Protocol.decode_client tag payload with
      | Ok (Protocol.Hello { version; worker; fingerprint }) ->
          if not (Protocol.accepts_version version) then
            reject (Printf.sprintf "protocol version %d, want %d" version Protocol.version)
          else if locked st (fun () -> Sched.is_banned st.sched ~worker) then
            reject "worker quarantined: failed result audit"
          else begin
            let negotiated = Protocol.negotiate ~peer:version in
            send conn (Protocol.Welcome { version = negotiated });
            (worker, fingerprint, negotiated)
          end
      | Ok _ | Error _ -> reject "expected hello")

let handle_conn st fd =
  let conn = Wire.conn fd ~deadline_s:st.config.io_deadline_s in
  let finally () =
    Wire.close conn;
    locked st (fun () ->
        st.connected <- st.connected - 1;
        gset st.connections st.connected)
  in
  locked st (fun () ->
      st.connected <- st.connected + 1;
      gset st.connections st.connected);
  Fun.protect ~finally (fun () ->
      try
        let worker, scope, negotiated = expect_hello st conn in
        let rec loop () =
          (match Wire.read_frame_raw conn with
          | `Corrupt _ ->
              (* The content cannot be trusted; tell the peer to back
                 off and reconnect, then hang up. *)
              send conn (Protocol.Retry_later { cooldown_s = 0.5 });
              raise Done_serving
          | `Ok (tag, payload) -> (
              match Protocol.decode_client_ext tag payload with
              | Ok (msg, ext) ->
                  if negotiated >= 4 then absorb_telemetry st ~worker ext;
                  (* A worker quarantined mid-session gets a terminal
                     reject instead of service. *)
                  if locked st (fun () -> Sched.is_banned st.sched ~worker) then begin
                    send conn
                      (Protocol.Reject { reason = "worker quarantined: failed result audit" });
                    raise Done_serving
                  end;
                  let reply =
                    locked st (fun () ->
                        handle_msg st ~scope ~worker ~digest:ext.Protocol.ext_digest msg)
                  in
                  let ext =
                    match reply with
                    | Protocol.Job { spec; shard; _ } when negotiated >= 4 ->
                        trace_ext ~fingerprint:(Protocol.spec_fingerprint spec) ~shard
                    | Protocol.Assign { shard; _ } when negotiated >= 4 ->
                        trace_ext ~fingerprint:scope ~shard
                    | _ -> Protocol.no_extension
                  in
                  send ~ext conn reply
              | Error msg -> send conn (Protocol.Reject { reason = msg })));
          loop ()
        in
        loop ()
      with
      | Done_serving | Wire.Closed | Wire.Protocol_error _ | Wire.Timeout | Unix.Unix_error _
      | Sys_error _
      ->
        ())

(* -- the fleet view ------------------------------------------------------ *)

let make_view st (obs : Obs.t) =
  let base_snapshot () =
    match obs.Obs.metrics with Some r -> Metrics.snapshot r | None -> []
  in
  let count_int snap name =
    match Metrics.find snap name with
    | Some (Metrics.Counter v) -> int_of_float v
    | _ -> 0
  in
  let vw_metrics () =
    Metrics.to_prometheus (Fleet.merged_snapshot st.fleet ~base:(base_snapshot ()))
  in
  let vw_health () =
    let now = Clock.now () in
    locked st (fun () ->
        let entries = Sched.status st.sched ~now ~fingerprint:"" in
        let active =
          List.length
            (List.filter
               (fun e ->
                 match e.Protocol.st_state with
                 | Protocol.Queued | Protocol.Running -> true
                 | Protocol.Finished | Protocol.Parked | Protocol.Cancelled -> false)
               entries)
        in
        {
          h_draining = Sched.draining st.sched;
          h_queue_depth = active;
          h_in_flight = Sched.in_flight st.sched;
          h_connected = st.connected;
          h_wal_torn = count_int (base_snapshot ()) "fmc_sched_wal_torn_records_total";
        })
  in
  let vw_status () =
    let now = Clock.now () in
    locked st (fun () -> Sched.status st.sched ~now ~fingerprint:"")
  in
  let vw_workers () = Fleet.workers st.fleet in
  let vw_trace_json () =
    let own_events =
      match obs.Obs.tracer with Some tr -> Span.events tr | None -> []
    in
    Fleet.to_chrome_json ~own_label:"scheduler" ~own_events st.fleet
  in
  { vw_metrics; vw_health; vw_status; vw_workers; vw_trace_json }

(* -- the serve loop ------------------------------------------------------ *)

let install_drain_handlers flag =
  let install s =
    try Some (s, Sys.signal s (Sys.Signal_handle (fun _ -> Atomic.set flag true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  List.filter_map install [ Sys.sigterm; Sys.sigint ]

let restore_handlers saved =
  List.iter
    (fun (s, old) -> try Sys.set_signal s old with Invalid_argument _ | Sys_error _ -> ())
    saved

let serve ?(obs = Obs.disabled) ?(on_ready = fun (_ : control) -> ()) ?on_view (config : config) =
  let now = Clock.now () in
  let sched = Sched.create ~obs config.sched ~dir:config.state_dir ~now in
  let connections, draining_g =
    match obs.Obs.metrics with
    | None -> (None, None)
    | Some r ->
        ( Some (Metrics.gauge r ~help:"live scheduler connections" "fmc_sched_connections"),
          Some (Metrics.gauge r ~help:"1 while draining after SIGTERM" "fmc_sched_draining") )
  in
  let st =
    {
      mutex = Mutex.create ();
      sched;
      config;
      drain_flag = Atomic.make false;
      connected = 0;
      connections;
      draining_g;
      fleet = Fleet.create ();
    }
  in
  Option.iter (fun f -> f (make_view st obs)) on_view;
  let saved = if config.handle_signals then install_drain_handlers st.drain_flag else [] in
  let sock = Wire.listen config.addr in
  let finally () =
    restore_handlers saved;
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (match config.addr with
    | Wire.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Wire.Tcp _ -> ());
    locked st (fun () -> Sched.shutdown st.sched)
  in
  Fun.protect ~finally (fun () ->
      on_ready { request_drain = (fun () -> Atomic.set st.drain_flag true) };
      Obs.span obs ~cat:"sched" "serve" (fun () ->
          let reason = ref Drained in
          let running = ref true in
          while !running do
            let readable, _, _ =
              try Unix.select [ sock ] [] [] 0.2
              with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            in
            (match readable with
            | [ _ ] ->
                let fd, _ = Unix.accept sock in
                ignore (Thread.create (fun () -> handle_conn st fd) ())
            | _ -> ());
            let now = Clock.now () in
            locked st (fun () ->
                Sched.sweep st.sched ~now;
                if Atomic.get st.drain_flag && not (Sched.draining st.sched) then begin
                  Sched.drain st.sched;
                  gset st.draining_g 1
                end;
                if Sched.draining st.sched then begin
                  (* Stop leasing, let in-flight shards land, then go. *)
                  if Sched.in_flight st.sched = 0 then begin
                    reason := Drained;
                    running := false
                  end
                end
                else if
                  config.max_idle_s > 0. && Sched.idle st.sched
                  && now -. Sched.last_activity st.sched >= config.max_idle_s
                then begin
                  reason := Idle;
                  running := false
                end)
          done;
          { sv_reason = !reason }))
