(** Socket service for the multi-campaign scheduler ([faultmc sched]).

    Accepts {!Fmc_dist.Wire} connections, reads a v{!Fmc_dist.Protocol.version}
    Hello whose fingerprint becomes the connection's scope —
    {!Fmc_dist.Protocol.pool_fingerprint} for pool workers and control
    clients, a concrete campaign fingerprint for legacy single-campaign
    workers and report fetchers — and serves {!Sched} over it, one
    handler thread per connection, every scheduler call behind one
    mutex.

    SIGTERM/SIGINT (when [handle_signals]) drain: leasing stops,
    in-flight shards finish and checkpoint, the WAL is compacted, and
    {!serve} returns. With [max_idle_s > 0] an idle scheduler — empty
    queue, nothing running — exits on its own. *)

type config = {
  addr : Fmc_dist.Wire.addr;
  state_dir : string;  (** WAL + campaign checkpoints live here *)
  sched : Sched.config;
  max_idle_s : float;  (** exit after this long idle; 0 = serve forever *)
  io_deadline_s : float;  (** per-connection read/write deadline *)
  handle_signals : bool;  (** install SIGTERM/SIGINT drain handlers *)
}

val default_config : addr:Fmc_dist.Wire.addr -> state_dir:string -> config

type stop_reason = Drained | Idle

type outcome = { sv_reason : stop_reason }

type control = { request_drain : unit -> unit }
(** Handed to [on_ready]; lets tests trigger the SIGTERM path without
    signalling the process. *)

(** {2 Fleet view}

    The read-only surface [faultmc sched --http-port] mounts on its
    scrape endpoint — thunks over live scheduler state, each thread-safe
    and cheap enough to call per scrape. Pool workers that negotiate
    protocol v4 get trace/span ids stamped on every [Job]/[Assign]
    (pure functions of campaign fingerprint and shard) and their
    piggybacked {!Fmc_obs.Telemetry} absorbed into a fleet store; the
    view exposes the merged metrics and the stitched trace. *)

type health = {
  h_draining : bool;
  h_queue_depth : int;  (** campaigns queued or running *)
  h_in_flight : int;  (** live shard leases across campaigns *)
  h_connected : int;
  h_wal_torn : int;  (** torn WAL tails detected at the last startup *)
}

type view = {
  vw_metrics : unit -> string;
      (** Prometheus text: the scheduler registry merged with every
          pool worker's latest absorbed snapshot *)
  vw_health : unit -> health;
  vw_status : unit -> Fmc_dist.Protocol.status_entry list;
      (** every campaign, submission order — the [Status_req ""] answer *)
  vw_workers : unit -> (string * Fmc_obs.Fleet.worker_info) list;
      (** sorted by worker name *)
  vw_trace_json : unit -> string;
      (** stitched fleet trace: scheduler spans on pid 1, each pool
          worker on its own track *)
}

val serve :
  ?obs:Fmc_obs.Obs.t ->
  ?on_ready:(control -> unit) ->
  ?on_view:(view -> unit) ->
  config ->
  outcome
(** Blocks until drained or idle-expired. [on_ready] fires once the
    socket is listening, before the first accept; [on_view] fires once
    before that, with the scrape surface above. *)
