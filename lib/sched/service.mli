(** Socket service for the multi-campaign scheduler ([faultmc sched]).

    Accepts {!Fmc_dist.Wire} connections, reads a v{!Fmc_dist.Protocol.version}
    Hello whose fingerprint becomes the connection's scope —
    {!Fmc_dist.Protocol.pool_fingerprint} for pool workers and control
    clients, a concrete campaign fingerprint for legacy single-campaign
    workers and report fetchers — and serves {!Sched} over it, one
    handler thread per connection, every scheduler call behind one
    mutex.

    SIGTERM/SIGINT (when [handle_signals]) drain: leasing stops,
    in-flight shards finish and checkpoint, the WAL is compacted, and
    {!serve} returns. With [max_idle_s > 0] an idle scheduler — empty
    queue, nothing running — exits on its own. *)

type config = {
  addr : Fmc_dist.Wire.addr;
  state_dir : string;  (** WAL + campaign checkpoints live here *)
  sched : Sched.config;
  max_idle_s : float;  (** exit after this long idle; 0 = serve forever *)
  io_deadline_s : float;  (** per-connection read/write deadline *)
  handle_signals : bool;  (** install SIGTERM/SIGINT drain handlers *)
}

val default_config : addr:Fmc_dist.Wire.addr -> state_dir:string -> config

type stop_reason = Drained | Idle

type outcome = { sv_reason : stop_reason }

type control = { request_drain : unit -> unit }
(** Handed to [on_ready]; lets tests trigger the SIGTERM path without
    signalling the process. *)

val serve : ?obs:Fmc_obs.Obs.t -> ?on_ready:(control -> unit) -> config -> outcome
(** Blocks until drained or idle-expired. [on_ready] fires once the
    socket is listening, before the first accept. *)
