(* Write-ahead log for the multi-campaign scheduler (DESIGN.md §12).

   A WAL directory holds numbered segment files (seg-00000001.wal, ...);
   each segment is a sequence of CRC-framed records:

     [u32 BE payload length][u32 BE CRC-32 of payload][payload bytes]

   the same checksum (Fmc_prelude.Crc32) the wire codec and the durable
   checkpoints use. Appends are flushed and fsynced before the mutating
   call returns, so an acknowledged submission survives kill -9 of the
   scheduler the instant after the ack.

   Replay walks the segments in order and stops at the first record that
   does not check out — a short header, a length running past the end of
   the segment, or a CRC mismatch. That is the torn tail a crash
   mid-append leaves behind; everything before it was fsynced and is
   trusted. Compaction ([start]) writes the surviving state into a fresh
   segment under a .tmp name, renames it into place, and only then
   unlinks the older segments — a crash between the rename and the
   unlinks leaves duplicate records, which is why every record type the
   scheduler logs is idempotent under replay. *)

let max_record = 16 * 1024 * 1024

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (n land 0xFF);
  Bytes.unsafe_to_string b

let read_be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let segment_name n = Printf.sprintf "seg-%08d.wal" n

let segment_number name =
  if String.length name = 16 && String.sub name 0 4 = "seg-" && Filename.check_suffix name ".wal"
  then int_of_string_opt (String.sub name 4 8)
  else None

let segments dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun n -> Option.map (fun i -> (i, n)) (segment_number n))
      |> List.sort compare

let ensure_dir dir = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

type replayed = { records : string list; torn : int; segments : int }

(* Decode one segment's records; [`Torn] if the byte stream ends in a
   record that does not check out. *)
let decode_segment raw =
  let n = String.length raw in
  let rec go acc pos =
    if pos = n then (List.rev acc, false)
    else if n - pos < 8 then (List.rev acc, true)
    else
      let len = read_be32 raw pos in
      let crc = read_be32 raw (pos + 4) in
      if len < 0 || len > max_record || len > n - pos - 8 then (List.rev acc, true)
      else
        let payload = String.sub raw (pos + 8) len in
        if Fmc_prelude.Crc32.string payload <> crc then (List.rev acc, true)
        else go (payload :: acc) (pos + 8 + len)
  in
  go [] 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replay ~dir =
  ensure_dir dir;
  let segs = segments dir in
  (* A torn record ends replay entirely: within a segment nothing after
     the tear is trustworthy, and later segments were written after it —
     applying them without their predecessors could resurrect state the
     torn records changed. In practice a tear is always the final append
     of the final segment. *)
  let rec walk acc torn = function
    | [] -> (acc, torn)
    | (_, name) :: rest ->
        let records, is_torn = decode_segment (read_file (Filename.concat dir name)) in
        let acc = List.rev_append records acc in
        if is_torn then (acc, torn + 1) else walk acc torn rest
  in
  let records_rev, torn = walk [] 0 segs in
  { records = List.rev records_rev; torn; segments = List.length segs }

type t = {
  dir : string;
  oc : out_channel;
  fd : Unix.file_descr;
  mutable closed : bool;
}

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_record oc payload =
  output_string oc (be32 (String.length payload));
  output_string oc (be32 (Fmc_prelude.Crc32.string payload));
  output_string oc payload

let start ~dir ~initial =
  ensure_dir dir;
  let segs = segments dir in
  let next = (match List.rev segs with (i, _) :: _ -> i + 1 | [] -> 1) in
  let name = segment_name next in
  let path = Filename.concat dir name in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     List.iter (write_record oc) initial;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path;
  fsync_dir dir;
  (* Only after the compacted segment is durable do the old ones go. *)
  List.iter (fun (_, n) -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ()) segs;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  let oc = Unix.out_channel_of_descr fd in
  { dir; oc; fd; closed = false }

let append t payload =
  if t.closed then invalid_arg "Wal.append: closed";
  if String.length payload > max_record then invalid_arg "Wal.append: oversized record";
  write_record t.oc payload;
  flush t.oc;
  Unix.fsync t.fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try flush t.oc with Sys_error _ -> ());
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    close_out_noerr t.oc
  end

let dir t = t.dir
