(** CRC-framed write-ahead log for the scheduler's submission queue
    (DESIGN.md §12).

    A WAL directory holds numbered segments ([seg-%08d.wal]) of records
    framed as [[u32 BE len][u32 BE CRC-32][payload]]. {!append} fsyncs
    before returning, so an acknowledged record survives [kill -9].
    {!replay} stops at the first torn record (short header, impossible
    length, or CRC mismatch) — the residue of a crash mid-append —
    counting it rather than failing. Record payloads are opaque here;
    the scheduler keeps every record type idempotent under replay
    because compaction can leave duplicates (see {!start}). *)

type replayed = {
  records : string list;  (** every intact record, oldest first *)
  torn : int;  (** 1 if replay stopped at a torn record, else 0 *)
  segments : int;  (** segment files present before compaction *)
}

val replay : dir:string -> replayed
(** Read every segment in order. Creates [dir] if missing. *)

type t

val start : dir:string -> initial:string list -> t
(** Compact: write [initial] (the records describing the current state)
    into a fresh segment — built as a [.tmp], fsynced, renamed — then
    unlink the older segments and return a handle appending to the new
    one. A crash between rename and unlink leaves duplicates, which
    idempotent replay absorbs. *)

val append : t -> string -> unit
(** Frame, write, flush and fsync one record. Raises [Invalid_argument]
    on a closed handle or a record over 16 MiB. *)

val close : t -> unit
val dir : t -> string
