module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind

type v = bool option

let comb_pass ?(forced = fun _ -> false) net (values : v array) =
  Array.iter
    (fun g ->
      if forced g then values.(g) <- None
      else
        match N.kind net g with
        | K.Gate kind ->
            values.(g) <- K.eval3 kind (Array.map (fun f -> values.(f)) (N.fanins net g))
        | _ -> ())
    (N.gates net)

let refutes (abstract : v) (concrete : bool) =
  match abstract with Some b -> b <> concrete | None -> false
