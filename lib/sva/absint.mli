(** Three-valued (Kleene) abstract interpretation over a netlist.

    The lattice per node is [Some false < None > Some true]: [Some b] means
    the node provably carries [b] in every concretization of the unknowns,
    [None] means unknown/X. Gate transfer functions are {!Fmc_netlist.Kind.eval3}
    — a known controlling value forces the output through unknown siblings,
    mirroring the logical-masking rule of the transient simulator
    ({!Fmc_gatesim.Transient}), which is what makes definiteness a sound
    certificate that neither the settled value nor any transient pulse can
    differ from the seed values (see DESIGN.md §13). *)

type v = bool option

val comb_pass : ?forced:(Fmc_netlist.Netlist.node -> bool) -> Fmc_netlist.Netlist.t -> v array -> unit
(** One combinational sweep in topological order: recompute every gate's
    abstract value from its fan-ins. Flip-flop, input and constant entries
    are left untouched (they are the seed). A node for which [forced]
    holds is pinned to unknown regardless of its fan-ins (used to model
    struck gates, whose output carries an injected pulse). Because
    {!Fmc_netlist.Netlist.gates} is topologically sorted, a single pass
    reaches the combinational fixpoint for a fixed seed. *)

val refutes : v -> bool -> bool
(** [refutes a c] is true when the abstract value [a] contradicts the
    concrete value [c] — i.e. [a = Some b] with [b <> c]. Soundness means
    this never happens when the seed agrees with the concrete evaluation;
    the property test in [test/test_sva.ml] checks exactly that. *)
